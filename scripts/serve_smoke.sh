#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the simserve serving layer, run by
# `make serve-smoke` and CI: boot the server, POST 1k generated actions as
# NDJSON over HTTP, assert the seeds query returns a non-empty solution,
# then exit through the SIGTERM drain path.
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:8399}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
SRV_PID=
trap 'kill "${SRV_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$@"
    else
        # wget fallback: supports only the GET and POST-file shapes below.
        if [ "$1" = "--data-binary" ]; then
            wget -q -O - --post-file="${2#@}" "$3"
        else
            wget -q -O - "$1"
        fi
    fi
}

echo "== build"
go build -o "$WORK/simserve" ./cmd/simserve
go build -o "$WORK/simgen" ./cmd/simgen

echo "== boot simserve on $ADDR"
"$WORK/simserve" -addr "$ADDR" -k 5 -window 2000 &
SRV_PID=$!

i=0
until fetch "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "server did not come up" >&2; exit 1; }
    sleep 0.1
done

echo "== ingest 1000 generated actions over HTTP"
"$WORK/simgen" -preset syn-o -users 500 -actions 1000 -window 1000 \
    -format ndjson -out "$WORK/actions.ndjson"
fetch --data-binary "@$WORK/actions.ndjson" "$BASE/v1/trackers/default/actions"
echo

echo "== query seeds"
SEEDS="$(fetch "$BASE/v1/trackers/default/seeds")"
echo "$SEEDS"
case "$SEEDS" in
*'"seeds":['[0-9]*) ;;
*) echo "seeds query returned no seeds: $SEEDS" >&2; exit 1 ;;
esac
case "$SEEDS" in
*'"processed":1000'*) ;;
*) echo "expected processed=1000: $SEEDS" >&2; exit 1 ;;
esac

echo "== metrics"
fetch "$BASE/metrics" | grep simserve_ingested_total

echo "== graceful drain (SIGTERM)"
kill -TERM "$SRV_PID"
wait "$SRV_PID"
echo "serve smoke OK"
