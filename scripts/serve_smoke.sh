#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the simserve serving layer, run by
# `make serve-smoke` and CI: boot the server, drive it through simctl (the
# typed api.Client path): ingest 1k generated actions, assert the seeds
# query returns a non-empty solution, run a relational /query plan, check
# the error contract on an unknown tracker, then exit through the SIGTERM
# drain path.
set -eu

ADDR="${SMOKE_ADDR:-127.0.0.1:8399}"
BASE="http://$ADDR"
WORK="$(mktemp -d)"
SRV_PID=
trap 'kill "${SRV_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

ctl() { "$WORK/simctl" -addr "$BASE" "$@"; }

echo "== build"
go build -o "$WORK/simserve" ./cmd/simserve
go build -o "$WORK/simgen" ./cmd/simgen
go build -o "$WORK/simctl" ./cmd/simctl

echo "== boot simserve on $ADDR"
"$WORK/simserve" -addr "$ADDR" -k 5 -window 2000 &
SRV_PID=$!

i=0
until ctl health >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "server did not come up" >&2; exit 1; }
    sleep 0.1
done

echo "== ingest 1000 generated actions through the api client"
"$WORK/simgen" -preset syn-o -users 500 -actions 1000 -window 1000 \
    -format ndjson -out "$WORK/actions.ndjson"
INGEST="$(ctl ingest default "$WORK/actions.ndjson")"
echo "$INGEST"
case "$INGEST" in
*'"processed": 1000'*) ;;
*) echo "expected processed=1000: $INGEST" >&2; exit 1 ;;
esac

echo "== query seeds"
SEEDS="$(ctl seeds default)"
echo "$SEEDS"
case "$SEEDS" in
*'"seeds": ['*) ;;
*) echo "seeds query returned no seeds: $SEEDS" >&2; exit 1 ;;
esac

echo "== relational query: top-3 seeds by influence"
cat > "$WORK/plan.json" <<'EOF'
{"plan": {"scan": "seeds", "ops": [{"op": "topk", "col": "influence", "k": 3, "desc": true}]}}
EOF
ROWS="$(ctl query default "$WORK/plan.json")"
echo "$ROWS"
case "$ROWS" in
*'"rows": ['*) ;;
*) echo "query returned no rows: $ROWS" >&2; exit 1 ;;
esac
case "$ROWS" in
*'"processed": 1000'*) ;;
*) echo "query ran against the wrong snapshot: $ROWS" >&2; exit 1 ;;
esac

echo "== error contract: unknown tracker is a 404 envelope"
if ERR="$(ctl seeds no-such-tracker 2>&1)"; then
    echo "expected a non-zero exit for an unknown tracker: $ERR" >&2
    exit 1
fi
echo "$ERR"
case "$ERR" in
*'unknown tracker'*'404'*) ;;
*) echo "error did not carry the envelope message + status: $ERR" >&2; exit 1 ;;
esac

echo "== stats"
STATS="$(ctl stats default)"
case "$STATS" in
*'"queue_capacity"'*) ;;
*) echo "stats missing queue_capacity: $STATS" >&2; exit 1 ;;
esac

echo "== graceful drain (SIGTERM)"
kill -TERM "$SRV_PID"
wait "$SRV_PID"
echo "serve smoke OK"
