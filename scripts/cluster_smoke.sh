#!/bin/sh
# cluster_smoke.sh — end-to-end smoke of the sharded serving path, run by
# `make cluster-smoke` and CI: boot two simserve shards and a simrouter in
# front of them, ingest 2k generated actions through the router (hash-
# partitioned across the shards), assert the merged seeds/value/cluster-
# health answers, kill one shard and assert the router degrades to flagged
# partial results instead of going down, then drain everything.
set -eu

ROUTER_ADDR="${CLUSTER_ROUTER_ADDR:-127.0.0.1:8400}"
SHARD1_ADDR="${CLUSTER_SHARD1_ADDR:-127.0.0.1:8401}"
SHARD2_ADDR="${CLUSTER_SHARD2_ADDR:-127.0.0.1:8402}"
BASE="http://$ROUTER_ADDR"
WORK="$(mktemp -d)"
S1_PID=
S2_PID=
RT_PID=
trap 'kill "${RT_PID:-}" "${S1_PID:-}" "${S2_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

ctl() { "$WORK/simctl" -addr "$BASE" "$@"; }

echo "== build"
go build -o "$WORK/simserve" ./cmd/simserve
go build -o "$WORK/simrouter" ./cmd/simrouter
go build -o "$WORK/simgen" ./cmd/simgen
go build -o "$WORK/simctl" ./cmd/simctl

echo "== boot 2 shards + router"
"$WORK/simserve" -addr "$SHARD1_ADDR" -k 5 -window 2000 &
S1_PID=$!
"$WORK/simserve" -addr "$SHARD2_ADDR" -k 5 -window 2000 &
S2_PID=$!
"$WORK/simrouter" -addr "$ROUTER_ADDR" \
    -shards "http://$SHARD1_ADDR,http://$SHARD2_ADDR" -probe-interval 200ms &
RT_PID=$!

i=0
until ctl -router health 2>/dev/null | grep -q '"healthy": 2'; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "cluster did not come up" >&2; exit 1; }
    sleep 0.1
done

echo "== ingest 2000 generated actions through the router"
"$WORK/simgen" -preset syn-o -users 500 -actions 2000 -window 2000 \
    -format ndjson -out "$WORK/actions.ndjson"
INGEST="$(ctl ingest default "$WORK/actions.ndjson")"
echo "$INGEST"
case "$INGEST" in
*'"processed": 2000'*) ;;
*) echo "expected cluster-total processed=2000: $INGEST" >&2; exit 1 ;;
esac

echo "== both shards took a share of the stream"
P1="$("$WORK/simctl" -addr "http://$SHARD1_ADDR" value default | grep '"processed"')"
P2="$("$WORK/simctl" -addr "http://$SHARD2_ADDR" value default | grep '"processed"')"
echo "shard1: $P1"
echo "shard2: $P2"
for P in "$P1" "$P2"; do
    case "$P" in
    *'"processed": 0'*) echo "a shard received no actions: $P" >&2; exit 1 ;;
    esac
done

echo "== merged seeds"
SEEDS="$(ctl seeds default)"
echo "$SEEDS"
case "$SEEDS" in
*'"seeds": ['*) ;;
*) echo "merged seeds query returned no seeds: $SEEDS" >&2; exit 1 ;;
esac
case "$SEEDS" in
*'"partial": true'*) echo "seeds flagged partial with all shards up: $SEEDS" >&2; exit 1 ;;
esac

echo "== cluster health: 2/2 shards"
HEALTH="$(ctl -router health)"
echo "$HEALTH"
case "$HEALTH" in
*'"status": "ok"'*) ;;
*) echo "cluster not healthy: $HEALTH" >&2; exit 1 ;;
esac

echo "== kill shard 2: reads degrade to flagged partial results"
kill -TERM "$S2_PID"
wait "$S2_PID" 2>/dev/null || true
S2_PID=
i=0
until ctl value default | grep -q '"partial": true'; do
    i=$((i + 1))
    [ "$i" -lt 50 ] || { echo "router never flagged partial results" >&2; exit 1; }
    sleep 0.1
done
VALUE="$(ctl value default)"
echo "$VALUE"

DEGRADED="$(ctl -router health)"
echo "$DEGRADED"
case "$DEGRADED" in
*'"status": "degraded"'*) ;;
*) echo "cluster health not degraded with a dead shard: $DEGRADED" >&2; exit 1 ;;
esac
case "$DEGRADED" in
*'"healthy": 1'*) ;;
*) echo "expected exactly one healthy shard: $DEGRADED" >&2; exit 1 ;;
esac

echo "== merged seeds still answer (partial)"
PSEEDS="$(ctl seeds default)"
case "$PSEEDS" in
*'"partial": true'*) ;;
*) echo "partial seeds not flagged: $PSEEDS" >&2; exit 1 ;;
esac

echo "== graceful drain (SIGTERM)"
kill -TERM "$RT_PID"
wait "$RT_PID" 2>/dev/null || true
RT_PID=
kill -TERM "$S1_PID"
wait "$S1_PID" 2>/dev/null || true
S1_PID=
echo "cluster smoke OK"
