#!/bin/sh
# chaos_smoke.sh — end-to-end fault-injection smoke of the self-healing
# serving path, run by `make chaos-smoke` and CI. A simserve with injected
# filesystem faults (deterministic: fixed -fault rules plus a seeded rule,
# override with CHAOS_SEED) ingests a stream through simctl's retry loop —
# every 429/503 the faults cause is retried client-side — then the process
# is kill -9'd and restarted on a clean filesystem. The invariant is the
# same as recover_smoke.sh, under fire: no acknowledged action is lost, and
# the recovered answer is byte-identical to an uninterrupted run on a fresh
# memory-only server.
set -eu

ADDR="${CHAOS_ADDR:-127.0.0.1:8403}"
REF_ADDR="${CHAOS_REF_ADDR:-127.0.0.1:8404}"
BASE="http://$ADDR"
REF_BASE="http://$REF_ADDR"
SEED="${CHAOS_SEED:-42}"
WORK="$(mktemp -d)"
SRV_PID=
REF_PID=
trap 'kill -9 "${SRV_PID:-}" 2>/dev/null || true; kill -9 "${REF_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

TRACKER_FLAGS="-k 5 -window 2000"
# Guaranteed fault coverage on top of the seeded rule: WAL appends fail
# twice mid-stream (503 -> client retry) and a snapshot write fails once
# (backoff + retry, invisible to clients).
FAULTS="op=write,path=wal.log,after=4,times=2,err=EIO;op=write,path=snapshot.sim2,after=1,times=1,err=ENOSPC"

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$@"
    else
        wget -q -O - "$1"
    fi
}

wait_up() {
    i=0
    until fetch "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 100 ] || { echo "server on $1 did not come up" >&2; exit 1; }
        sleep 0.1
    done
}

echo "== build"
go build -o "$WORK/simserve" ./cmd/simserve
go build -o "$WORK/simgen" ./cmd/simgen
go build -o "$WORK/simctl" ./cmd/simctl

echo "== generate 2000 actions, split into 200-action chunks"
"$WORK/simgen" -preset syn-o -users 500 -actions 2000 -window 1000 \
    -format ndjson -out "$WORK/actions.ndjson"
split -l 200 "$WORK/actions.ndjson" "$WORK/chunk."

echo "== boot simserve with injected faults (seed $SEED)"
"$WORK/simserve" -addr "$ADDR" $TRACKER_FLAGS \
    -data-dir "$WORK/data" -wal-snapshot-bytes 4096 \
    -fault "$FAULTS" -fault-seed "$SEED" &
SRV_PID=$!
wait_up "$BASE"

echo "== ingest through the retrying client (faults surface as 429/503)"
for c in "$WORK"/chunk.*; do
    "$WORK/simctl" -addr "$BASE" -retries 8 ingest default "$c" >/dev/null
done

echo "== tracker metrics after the faulted run"
"$WORK/simctl" -addr "$BASE" metrics default

echo "== kill -9 under fire"
kill -9 "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true; SRV_PID=

echo "== restart on a healed disk (no injector)"
"$WORK/simserve" -addr "$ADDR" $TRACKER_FLAGS -data-dir "$WORK/data" &
SRV_PID=$!
wait_up "$BASE"
FINAL="$("$WORK/simctl" -addr "$BASE" seeds default)"
case "$FINAL" in
*'"processed": 2000'*) ;;
*) echo "acknowledged actions lost: $FINAL" >&2; exit 1 ;;
esac

echo "== uninterrupted reference on $REF_ADDR"
"$WORK/simserve" -addr "$REF_ADDR" $TRACKER_FLAGS &
REF_PID=$!
wait_up "$REF_BASE"
"$WORK/simctl" -addr "$REF_BASE" ingest default "$WORK/actions.ndjson" >/dev/null
REF="$("$WORK/simctl" -addr "$REF_BASE" seeds default)"

echo "recovered run: $FINAL"
echo "reference run: $REF"
if [ "$FINAL" != "$REF" ]; then
    echo "chaos-recovered answer differs from uninterrupted serial replay" >&2
    exit 1
fi

echo "== graceful drain"
kill -TERM "$SRV_PID" 2>/dev/null
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
kill -TERM "$REF_PID" 2>/dev/null
wait "$REF_PID" 2>/dev/null || true
REF_PID=
echo "chaos smoke OK"
