#!/bin/sh
# recover_smoke.sh — end-to-end crash-recovery smoke of the durable serving
# layer, run by `make recover-smoke` and CI. Two kill -9 cycles exercise
# both recovery mechanisms:
#
#   cycle 1: tiny WAL threshold  -> state comes back from a SIM2 snapshot
#   cycle 2: huge WAL threshold  -> no snapshot can occur, so the second
#            half of the stream MUST come back from write-ahead-log replay
#
# and the final Seeds/Value answer is asserted byte-identical to an
# uninterrupted serial run on a fresh (memory-only) server.
set -eu

ADDR="${RECOVER_ADDR:-127.0.0.1:8401}"
REF_ADDR="${RECOVER_REF_ADDR:-127.0.0.1:8402}"
BASE="http://$ADDR"
REF_BASE="http://$REF_ADDR"
WORK="$(mktemp -d)"
SRV_PID=
REF_PID=
trap 'kill -9 "${SRV_PID:-}" 2>/dev/null || true; kill -9 "${REF_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

TRACKER_FLAGS="-k 5 -window 2000"

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$@"
    else
        if [ "$1" = "--data-binary" ]; then
            wget -q -O - --post-file="${2#@}" "$3"
        else
            wget -q -O - "$1"
        fi
    fi
}

wait_up() {
    i=0
    until fetch "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 100 ] || { echo "server on $1 did not come up" >&2; exit 1; }
        sleep 0.1
    done
}

assert_processed() {
    got="$(fetch "$BASE/v1/trackers/default/seeds")"
    case "$got" in
    *"\"processed\":$1"*) ;;
    *) echo "expected processed=$1, got: $got" >&2; exit 1 ;;
    esac
}

echo "== build"
go build -o "$WORK/simserve" ./cmd/simserve
go build -o "$WORK/simgen" ./cmd/simgen

echo "== version flag"
"$WORK/simserve" -version

echo "== generate 2000 actions, split into 200-action chunks"
"$WORK/simgen" -preset syn-o -users 500 -actions 2000 -window 1000 \
    -format ndjson -out "$WORK/actions.ndjson"
split -l 200 "$WORK/actions.ndjson" "$WORK/chunk."
FIRST_HALF=$(ls "$WORK"/chunk.* | sort | head -n 5)
SECOND_HALF=$(ls "$WORK"/chunk.* | sort | tail -n +6)

echo "== cycle 1: boot durable simserve (tiny WAL threshold: snapshots happen)"
"$WORK/simserve" -addr "$ADDR" $TRACKER_FLAGS \
    -data-dir "$WORK/data" -wal-snapshot-bytes 4096 &
SRV_PID=$!
wait_up "$BASE"

HEALTH="$(fetch "$BASE/v1/healthz")"
echo "$HEALTH"
case "$HEALTH" in
*'"durable":true'*) ;;
*) echo "healthz does not report durable=true: $HEALTH" >&2; exit 1 ;;
esac

for c in $FIRST_HALF; do
    fetch --data-binary "@$c" "$BASE/v1/trackers/default/actions" >/dev/null
done
[ -f "$WORK/data/default/snapshot.sim2" ] || {
    echo "no snapshot was written despite the tiny WAL threshold" >&2; exit 1;
}

echo "== kill -9 (cycle 1)"
kill -9 "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true; SRV_PID=

echo "== cycle 2: restart with a huge WAL threshold (no snapshots possible)"
"$WORK/simserve" -addr "$ADDR" $TRACKER_FLAGS \
    -data-dir "$WORK/data" -wal-snapshot-bytes 1073741824 &
SRV_PID=$!
wait_up "$BASE"
assert_processed 1000
echo "cycle 1 recovery OK (snapshot path): processed=1000"

for c in $SECOND_HALF; do
    fetch --data-binary "@$c" "$BASE/v1/trackers/default/actions" >/dev/null
done

echo "== kill -9 (cycle 2)"
kill -9 "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true; SRV_PID=

echo "== final restart: second half must come back from WAL replay"
"$WORK/simserve" -addr "$ADDR" $TRACKER_FLAGS \
    -data-dir "$WORK/data" &
SRV_PID=$!
wait_up "$BASE"
assert_processed 2000
FINAL="$(fetch "$BASE/v1/trackers/default/seeds")"

echo "== uninterrupted serial reference on $REF_ADDR"
"$WORK/simserve" -addr "$REF_ADDR" $TRACKER_FLAGS &
REF_PID=$!
wait_up "$REF_BASE"
fetch --data-binary "@$WORK/actions.ndjson" "$REF_BASE/v1/trackers/default/actions" >/dev/null
REF="$(fetch "$REF_BASE/v1/trackers/default/seeds")"

echo "recovered run: $FINAL"
echo "reference run: $REF"
if [ "$FINAL" != "$REF" ]; then
    echo "kill-9-recovered answer differs from uninterrupted serial replay" >&2
    exit 1
fi

echo "== graceful drain"
kill -TERM "$SRV_PID" 2>/dev/null
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
kill -TERM "$REF_PID" 2>/dev/null
wait "$REF_PID" 2>/dev/null || true
REF_PID=
echo "recover smoke OK"
