#!/bin/sh
# spill_smoke.sh — end-to-end smoke of the tiered window state, run by
# `make spill-smoke` and CI. A simserve under a deliberately tiny memory
# budget must spill contribution logs to cold segment files while serving,
# survive kill -9, and come back by MAPPING those segments — the restart
# replays only the WAL tail, not the spilled history — with a final answer
# byte-identical to an uninterrupted, unbudgeted in-RAM run.
set -eu

ADDR="${SPILL_ADDR:-127.0.0.1:8403}"
REF_ADDR="${SPILL_REF_ADDR:-127.0.0.1:8404}"
BASE="http://$ADDR"
REF_BASE="http://$REF_ADDR"
WORK="$(mktemp -d)"
SRV_PID=
REF_PID=
trap 'kill -9 "${SRV_PID:-}" 2>/dev/null || true; kill -9 "${REF_PID:-}" 2>/dev/null || true; rm -rf "$WORK"' EXIT

TRACKER_FLAGS="-k 5 -window 1500"
BUDGET=8192

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -sf "$@"
    else
        if [ "$1" = "--data-binary" ]; then
            wget -q -O - --post-file="${2#@}" "$3"
        else
            wget -q -O - "$1"
        fi
    fi
}

wait_up() {
    i=0
    until fetch "$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 100 ] || { echo "server on $1 did not come up" >&2; exit 1; }
        sleep 0.1
    done
}

# metric <json> <field>: extract one integer field from a metrics response.
metric() {
    printf '%s' "$1" | sed -n "s/.*\"$2\":\([0-9][0-9]*\).*/\1/p"
}

assert_processed() {
    got="$(fetch "$BASE/v1/trackers/default/seeds")"
    case "$got" in
    *"\"processed\":$1"*) ;;
    *) echo "expected processed=$1, got: $got" >&2; exit 1 ;;
    esac
}

echo "== build"
go build -o "$WORK/simserve" ./cmd/simserve
go build -o "$WORK/simgen" ./cmd/simgen

echo "== generate 3000 actions, split into 100-action chunks"
"$WORK/simgen" -preset syn-o -users 500 -actions 3000 -window 1500 \
    -format ndjson -out "$WORK/actions.ndjson"
split -l 100 "$WORK/actions.ndjson" "$WORK/chunk."
FIRST_HALF=$(ls "$WORK"/chunk.* | sort | head -n 15)
SECOND_HALF=$(ls "$WORK"/chunk.* | sort | tail -n +16)

echo "== boot durable simserve under a $BUDGET-byte memory budget"
"$WORK/simserve" -addr "$ADDR" $TRACKER_FLAGS \
    -data-dir "$WORK/data" -wal-snapshot-bytes 2048 \
    -memory-budget "$BUDGET" &
SRV_PID=$!
wait_up "$BASE"

for c in $FIRST_HALF; do
    fetch --data-binary "@$c" "$BASE/v1/trackers/default/actions" >/dev/null
done
assert_processed 1500

METRICS="$(fetch "$BASE/v1/trackers/default/metrics")"
echo "live metrics: $METRICS"
SEGS="$(metric "$METRICS" cold_segments)"
SPILLS="$(metric "$METRICS" spills)"
[ -n "$SEGS" ] && [ "$SEGS" -gt 0 ] || {
    echo "budget did not produce cold segments: $METRICS" >&2; exit 1;
}
[ -n "$SPILLS" ] && [ "$SPILLS" -gt 0 ] || {
    echo "budget did not produce spill passes: $METRICS" >&2; exit 1;
}
ls "$WORK/data/default/spill/" | grep -q '\.sim2$' || {
    echo "no segment files on disk despite cold_segments=$SEGS" >&2; exit 1;
}

echo "== kill -9 mid-stream (cold segments live)"
kill -9 "$SRV_PID"; wait "$SRV_PID" 2>/dev/null || true; SRV_PID=

echo "== restart: recovery must MAP segments, not replay spilled history"
"$WORK/simserve" -addr "$ADDR" $TRACKER_FLAGS \
    -data-dir "$WORK/data" -wal-snapshot-bytes 2048 \
    -memory-budget "$BUDGET" &
SRV_PID=$!
wait_up "$BASE"
assert_processed 1500

METRICS="$(fetch "$BASE/v1/trackers/default/metrics")"
echo "recovered metrics: $METRICS"
case "$METRICS" in
*'"recovered_snapshot":true'*) ;;
*) echo "restart did not recover from a snapshot: $METRICS" >&2; exit 1 ;;
esac
SEGS="$(metric "$METRICS" cold_segments)"
[ -n "$SEGS" ] && [ "$SEGS" -gt 0 ] || {
    echo "recovery did not re-map cold segments: $METRICS" >&2; exit 1;
}
WAL_ACTIONS="$(metric "$METRICS" recovered_wal_actions)"
WAL_ACTIONS="${WAL_ACTIONS:-0}"
# The 2048-byte WAL threshold keeps the un-snapshotted tail to a few
# hundred of the compact binary records; replaying anywhere near the 1500
# ingested would mean recovery rebuilt the spilled history instead of
# mapping it.
[ "$WAL_ACTIONS" -lt 500 ] || {
    echo "recovery replayed $WAL_ACTIONS actions — spilled history was rebuilt, not mapped" >&2
    exit 1
}
echo "segment-mapped recovery OK: $SEGS segments mapped, $WAL_ACTIONS WAL actions replayed"

echo "== stream the second half into the recovered server"
for c in $SECOND_HALF; do
    fetch --data-binary "@$c" "$BASE/v1/trackers/default/actions" >/dev/null
done
assert_processed 3000
FINAL="$(fetch "$BASE/v1/trackers/default/seeds")"

echo "== uninterrupted unbudgeted in-RAM reference on $REF_ADDR"
"$WORK/simserve" -addr "$REF_ADDR" $TRACKER_FLAGS &
REF_PID=$!
wait_up "$REF_BASE"
fetch --data-binary "@$WORK/actions.ndjson" "$REF_BASE/v1/trackers/default/actions" >/dev/null
REF="$(fetch "$REF_BASE/v1/trackers/default/seeds")"

echo "budgeted+recovered run: $FINAL"
echo "unbudgeted reference:   $REF"
if [ "$FINAL" != "$REF" ]; then
    echo "budgeted kill-9-recovered answer differs from unbudgeted serial run" >&2
    exit 1
fi

echo "== graceful drain"
kill -TERM "$SRV_PID" 2>/dev/null
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=
kill -TERM "$REF_PID" 2>/dev/null
wait "$REF_PID" 2>/dev/null || true
REF_PID=
echo "spill smoke OK"
