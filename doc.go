// Package repro is a from-scratch Go reproduction of "Real-Time Influence
// Maximization on Dynamic Social Streams" (Wang, Fan, Li, Tan — VLDB 2017).
//
// The public API lives in package repro/sim; the paper's IC/SIC frameworks,
// the streaming submodular oracles, the IMM/UBI/Greedy baselines and the
// experiment harness live under internal/. See README.md for a tour and the
// quickstart. The benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation at laptop scale.
//
// Beyond the paper, the ingestion hot path is parallelizable: sim.Config's
// Parallelism option fans each checkpoint oracle's mutually independent
// sieve instances across a persistent worker pool (default 1 = serial,
// bit-identical results at any width), and BatchSize groups actions so
// stream-index and checkpoint maintenance amortize across a batch (default
// 1 = per-action, exact legacy behavior; queries are exact at batch
// boundaries). See the sim package documentation for details.
package repro
