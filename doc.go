// Package repro is a from-scratch Go reproduction of "Real-Time Influence
// Maximization on Dynamic Social Streams" (Wang, Fan, Li, Tan — VLDB 2017).
//
// The public API lives in package repro/sim; the paper's IC/SIC frameworks,
// the streaming submodular oracles, the IMM/UBI/Greedy baselines and the
// experiment harness live under internal/. See README.md for a tour,
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record. The benchmarks in bench_test.go regenerate every
// table and figure of the paper's evaluation at laptop scale.
package repro
