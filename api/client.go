package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"repro/internal/dataio"
	"repro/sim"
)

// Client is a typed client for the simserve HTTP API. The zero value is not
// usable; construct with NewClient. Methods return *Error for any non-2xx
// response, so callers can switch on the HTTP status:
//
//	var apiErr *api.Error
//	if errors.As(err, &apiErr) && apiErr.Code == http.StatusConflict { ... }
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
}

// NewClient returns a client for the server at baseURL (scheme://host:port,
// with or without a trailing slash).
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// do issues one request and decodes a 2xx body into out (skipped when out
// is nil); non-2xx bodies become *Error.
func (c *Client) do(ctx context.Context, method, path, contentType string, body io.Reader, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return fmt.Errorf("api: building request: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into *Error, preferring the
// ErrorResponse body and falling back to the raw body text.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err == nil && er.Error != "" {
		code := er.Code
		if code == 0 {
			code = resp.StatusCode
		}
		return &Error{Code: code, Message: er.Error}
	}
	msg := strings.TrimSpace(string(raw))
	if msg == "" {
		msg = resp.Status
	}
	return &Error{Code: resp.StatusCode, Message: msg}
}

func trackerPath(name, suffix string) string {
	return "/v1/trackers/" + url.PathEscape(name) + suffix
}

// Health fetches GET /v1/healthz.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.do(ctx, http.MethodGet, "/v1/healthz", "", nil, &out)
	return out, err
}

// List fetches GET /v1/trackers.
func (c *Client) List(ctx context.Context) (ListResponse, error) {
	var out ListResponse
	err := c.do(ctx, http.MethodGet, "/v1/trackers", "", nil, &out)
	return out, err
}

// Snapshot fetches GET /v1/trackers/{name}: the tracker's full published
// read snapshot.
func (c *Client) Snapshot(ctx context.Context, name string) (sim.Snapshot, error) {
	var out sim.Snapshot
	err := c.do(ctx, http.MethodGet, trackerPath(name, ""), "", nil, &out)
	return out, err
}

// Seeds fetches GET /v1/trackers/{name}/seeds.
func (c *Client) Seeds(ctx context.Context, name string) (SeedsResponse, error) {
	var out SeedsResponse
	err := c.do(ctx, http.MethodGet, trackerPath(name, "/seeds"), "", nil, &out)
	return out, err
}

// Value fetches GET /v1/trackers/{name}/value.
func (c *Client) Value(ctx context.Context, name string) (ValueResponse, error) {
	var out ValueResponse
	err := c.do(ctx, http.MethodGet, trackerPath(name, "/value"), "", nil, &out)
	return out, err
}

// Window fetches GET /v1/trackers/{name}/window.
func (c *Client) Window(ctx context.Context, name string) (WindowResponse, error) {
	var out WindowResponse
	err := c.do(ctx, http.MethodGet, trackerPath(name, "/window"), "", nil, &out)
	return out, err
}

// Checkpoints fetches GET /v1/trackers/{name}/checkpoints.
func (c *Client) Checkpoints(ctx context.Context, name string) (CheckpointsResponse, error) {
	var out CheckpointsResponse
	err := c.do(ctx, http.MethodGet, trackerPath(name, "/checkpoints"), "", nil, &out)
	return out, err
}

// Stats fetches GET /v1/trackers/{name}/stats.
func (c *Client) Stats(ctx context.Context, name string) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, trackerPath(name, "/stats"), "", nil, &out)
	return out, err
}

// Influence fetches GET /v1/trackers/{name}/influence?user=U. user is a
// decimal ID on numeric trackers and an external name on name-mode ones.
func (c *Client) Influence(ctx context.Context, name, user string) (InfluenceResponse, error) {
	var out InfluenceResponse
	err := c.do(ctx, http.MethodGet,
		trackerPath(name, "/influence")+"?user="+url.QueryEscape(user), "", nil, &out)
	return out, err
}

// Ingest POSTs actions as one NDJSON batch to a numeric-ID tracker.
func (c *Client) Ingest(ctx context.Context, name string, actions []sim.Action) (IngestResponse, error) {
	var body bytes.Buffer
	if err := dataio.WriteNDJSON(&body, actions); err != nil {
		return IngestResponse{}, fmt.Errorf("api: encoding batch: %w", err)
	}
	var out IngestResponse
	err := c.do(ctx, http.MethodPost, trackerPath(name, "/actions"),
		"application/x-ndjson", &body, &out)
	return out, err
}

// IngestNamed POSTs actions as one NDJSON batch to a name-mode tracker
// (Spec.Names): users are external string names, interned server-side.
func (c *Client) IngestNamed(ctx context.Context, name string, actions []NamedAction) (IngestResponse, error) {
	recs := make([]dataio.NamedAction, len(actions))
	for i, a := range actions {
		recs[i] = dataio.NamedAction{ID: a.ID, User: a.User, Parent: a.Parent}
	}
	var body bytes.Buffer
	if err := dataio.WriteNDJSONNamed(&body, recs); err != nil {
		return IngestResponse{}, fmt.Errorf("api: encoding batch: %w", err)
	}
	var out IngestResponse
	err := c.do(ctx, http.MethodPost, trackerPath(name, "/actions"),
		"application/x-ndjson", &body, &out)
	return out, err
}

// Query POSTs a relational plan to /v1/trackers/{name}/query and returns
// the rows it produced against the tracker's current published snapshot.
func (c *Client) Query(ctx context.Context, name string, req QueryRequest) (QueryResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return QueryResponse{}, fmt.Errorf("api: encoding query: %w", err)
	}
	var out QueryResponse
	err = c.do(ctx, http.MethodPost, trackerPath(name, "/query"),
		"application/json", bytes.NewReader(payload), &out)
	return out, err
}
