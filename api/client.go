package api

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/dataio"
	"repro/sim"
)

// DefaultTimeout bounds one HTTP attempt when Client.Timeout is zero.
const DefaultTimeout = 30 * time.Second

// RetryPolicy configures the client's opt-in retry loop. The zero value
// retries nothing, preserving single-attempt behavior.
//
// What retries is chosen for safety, not aggressiveness: a 429 or 503
// retries on ANY method, because the server's contract guarantees those
// statuses were not applied (see the package error contract) — even an
// ingest can be resent without double-applying. Transport-level failures
// (connection refused, reset, timeout) retry only on idempotent requests
// (the GETs and /query), because a dropped connection cannot prove the
// server never processed a POST /actions body.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first try; 0
	// disables retrying.
	MaxRetries int
	// MinBackoff seeds the exponential backoff between attempts; 0 means
	// 100ms. Each retry doubles it, capped at MaxBackoff (0 means 5s). A
	// server Retry-After hint is honored when it is longer.
	MinBackoff time.Duration
	MaxBackoff time.Duration
}

// Client is a typed client for the simserve HTTP API. The zero value is not
// usable; construct with NewClient. Methods return *Error for any non-2xx
// response, so callers can switch on the HTTP status:
//
//	var apiErr *api.Error
//	if errors.As(err, &apiErr) && apiErr.Code == http.StatusConflict { ... }
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient is the transport; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Timeout bounds each individual attempt (not the whole retry loop —
	// the caller's ctx does that). 0 means DefaultTimeout; negative
	// disables the per-attempt bound.
	Timeout time.Duration
	// Retry enables retry with exponential backoff; see RetryPolicy for
	// the safety rules. The zero value never retries.
	Retry RetryPolicy
	// sleep is stubbed by tests; nil means a real timer wait.
	sleep func(ctx context.Context, d time.Duration) error
}

// NewClient returns a client for the server at baseURL (scheme://host:port,
// with or without a trailing slash).
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// retryable reports whether err may be retried on this request, and the
// server's Retry-After hint if it sent one.
func (c *Client) retryable(err error, idempotent bool) (bool, time.Duration) {
	var apiErr *Error
	if errors.As(err, &apiErr) {
		// 429/503 guarantee the request was not applied — safe on any
		// method. Everything else (400/404/409/413) is deterministic.
		return apiErr.Temporary(), apiErr.RetryAfter
	}
	// Transport failure: the request may or may not have reached the
	// server, so only idempotent requests are safe — and not ones the
	// caller itself canceled.
	if errors.Is(err, context.Canceled) {
		return false, 0
	}
	return idempotent, 0
}

// wait sleeps for d or until ctx is done, whichever first.
func (c *Client) wait(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// do issues a request — retried per c.Retry — and decodes a 2xx body into
// out (skipped when out is nil); non-2xx bodies become *Error. body is a
// byte slice, not a reader, so every retry attempt resends it from the
// start. idempotent marks requests safe to retry after transport errors.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, out any, idempotent bool) error {
	backoff := c.Retry.MinBackoff
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	maxBackoff := c.Retry.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 5 * time.Second
	}
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, contentType, body, out)
		if err == nil {
			return nil
		}
		ok, hint := c.retryable(err, idempotent)
		if !ok || attempt >= c.Retry.MaxRetries {
			return err
		}
		wait := min(backoff, maxBackoff)
		if hint > wait {
			wait = hint
		}
		if werr := c.wait(ctx, wait); werr != nil {
			return err
		}
		backoff *= 2
	}
}

// doOnce issues exactly one attempt under the per-attempt timeout.
func (c *Client) doOnce(ctx context.Context, method, path, contentType string, body []byte, out any) error {
	if c.Timeout >= 0 {
		timeout := c.Timeout
		if timeout == 0 {
			timeout = DefaultTimeout
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return fmt.Errorf("api: building request: %w", err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("api: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("api: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeError turns a non-2xx response into *Error, preferring the
// ErrorResponse body and falling back to the raw body text. A Retry-After
// header (seconds form) is carried into Error.RetryAfter.
func decodeError(resp *http.Response) error {
	var retryAfter time.Duration
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err == nil && er.Error != "" {
		code := er.Code
		if code == 0 {
			code = resp.StatusCode
		}
		return &Error{Code: code, Message: er.Error, RetryAfter: retryAfter}
	}
	msg := strings.TrimSpace(string(raw))
	if msg == "" {
		msg = resp.Status
	}
	return &Error{Code: resp.StatusCode, Message: msg, RetryAfter: retryAfter}
}

func trackerPath(name, suffix string) string {
	return "/v1/trackers/" + url.PathEscape(name) + suffix
}

// Health fetches GET /v1/healthz.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	var out HealthResponse
	err := c.do(ctx, http.MethodGet, "/v1/healthz", "", nil, &out, true)
	return out, err
}

// List fetches GET /v1/trackers.
func (c *Client) List(ctx context.Context) (ListResponse, error) {
	var out ListResponse
	err := c.do(ctx, http.MethodGet, "/v1/trackers", "", nil, &out, true)
	return out, err
}

// Snapshot fetches GET /v1/trackers/{name}: the tracker's full published
// read snapshot.
func (c *Client) Snapshot(ctx context.Context, name string) (sim.Snapshot, error) {
	var out sim.Snapshot
	err := c.do(ctx, http.MethodGet, trackerPath(name, ""), "", nil, &out, true)
	return out, err
}

// Seeds fetches GET /v1/trackers/{name}/seeds.
func (c *Client) Seeds(ctx context.Context, name string) (SeedsResponse, error) {
	var out SeedsResponse
	err := c.do(ctx, http.MethodGet, trackerPath(name, "/seeds"), "", nil, &out, true)
	return out, err
}

// Value fetches GET /v1/trackers/{name}/value.
func (c *Client) Value(ctx context.Context, name string) (ValueResponse, error) {
	var out ValueResponse
	err := c.do(ctx, http.MethodGet, trackerPath(name, "/value"), "", nil, &out, true)
	return out, err
}

// Window fetches GET /v1/trackers/{name}/window.
func (c *Client) Window(ctx context.Context, name string) (WindowResponse, error) {
	var out WindowResponse
	err := c.do(ctx, http.MethodGet, trackerPath(name, "/window"), "", nil, &out, true)
	return out, err
}

// Checkpoints fetches GET /v1/trackers/{name}/checkpoints.
func (c *Client) Checkpoints(ctx context.Context, name string) (CheckpointsResponse, error) {
	var out CheckpointsResponse
	err := c.do(ctx, http.MethodGet, trackerPath(name, "/checkpoints"), "", nil, &out, true)
	return out, err
}

// Stats fetches GET /v1/trackers/{name}/stats.
func (c *Client) Stats(ctx context.Context, name string) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, trackerPath(name, "/stats"), "", nil, &out, true)
	return out, err
}

// TrackerMetrics fetches GET /v1/trackers/{name}/metrics: the tracker's
// serving state and self-healing counters.
func (c *Client) TrackerMetrics(ctx context.Context, name string) (TrackerMetricsResponse, error) {
	var out TrackerMetricsResponse
	err := c.do(ctx, http.MethodGet, trackerPath(name, "/metrics"), "", nil, &out, true)
	return out, err
}

// Candidates fetches GET /v1/trackers/{name}/candidates: the answering
// checkpoint's candidate pool with per-candidate influence sets, the
// shard-local half of the router's distributed seed selection.
func (c *Client) Candidates(ctx context.Context, name string) (CandidatesResponse, error) {
	var out CandidatesResponse
	err := c.do(ctx, http.MethodGet, trackerPath(name, "/candidates"), "", nil, &out, true)
	return out, err
}

// ClusterHealth fetches GET /v1/healthz from a router (cmd/simrouter),
// which answers with the cluster-shaped DTO instead of HealthResponse.
func (c *Client) ClusterHealth(ctx context.Context) (ClusterHealthResponse, error) {
	var out ClusterHealthResponse
	err := c.do(ctx, http.MethodGet, "/v1/healthz", "", nil, &out, true)
	return out, err
}

// Influence fetches GET /v1/trackers/{name}/influence?user=U. user is a
// decimal ID on numeric trackers and an external name on name-mode ones.
func (c *Client) Influence(ctx context.Context, name, user string) (InfluenceResponse, error) {
	var out InfluenceResponse
	err := c.do(ctx, http.MethodGet,
		trackerPath(name, "/influence")+"?user="+url.QueryEscape(user), "", nil, &out, true)
	return out, err
}

// Ingest POSTs actions as one NDJSON batch to a numeric-ID tracker.
func (c *Client) Ingest(ctx context.Context, name string, actions []sim.Action) (IngestResponse, error) {
	var body bytes.Buffer
	if err := dataio.WriteNDJSON(&body, actions); err != nil {
		return IngestResponse{}, fmt.Errorf("api: encoding batch: %w", err)
	}
	var out IngestResponse
	err := c.do(ctx, http.MethodPost, trackerPath(name, "/actions"),
		"application/x-ndjson", body.Bytes(), &out, false)
	return out, err
}

// IngestNamed POSTs actions as one NDJSON batch to a name-mode tracker
// (Spec.Names): users are external string names, interned server-side.
func (c *Client) IngestNamed(ctx context.Context, name string, actions []NamedAction) (IngestResponse, error) {
	recs := make([]dataio.NamedAction, len(actions))
	for i, a := range actions {
		recs[i] = dataio.NamedAction{ID: a.ID, User: a.User, Parent: a.Parent}
	}
	var body bytes.Buffer
	if err := dataio.WriteNDJSONNamed(&body, recs); err != nil {
		return IngestResponse{}, fmt.Errorf("api: encoding batch: %w", err)
	}
	var out IngestResponse
	err := c.do(ctx, http.MethodPost, trackerPath(name, "/actions"),
		"application/x-ndjson", body.Bytes(), &out, false)
	return out, err
}

// Query POSTs a relational plan to /v1/trackers/{name}/query and returns
// the rows it produced against the tracker's current published snapshot.
func (c *Client) Query(ctx context.Context, name string, req QueryRequest) (QueryResponse, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return QueryResponse{}, fmt.Errorf("api: encoding query: %w", err)
	}
	var out QueryResponse
	err = c.do(ctx, http.MethodPost, trackerPath(name, "/query"),
		"application/json", payload, &out, true)
	return out, err
}
