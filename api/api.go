// Package api is the public wire surface of the simserve HTTP API: the
// request/response DTOs of every /v1 endpoint, the tracker Spec document
// format, the error contract, and a typed Client. The server
// (internal/server) marshals these exact types, so a program that imports
// api is coupled to the wire format by the compiler rather than by
// hand-maintained JSON literals.
//
// # Endpoints
//
//	GET  /healthz                                plain "ok" liveness probe
//	GET  /v1/healthz                             HealthResponse
//	GET  /v1/trackers                            ListResponse
//	GET  /v1/trackers/{name}                     sim.Snapshot
//	POST /v1/trackers/{name}/actions             NDJSON body -> IngestResponse
//	GET  /v1/trackers/{name}/seeds               SeedsResponse
//	GET  /v1/trackers/{name}/value               ValueResponse
//	GET  /v1/trackers/{name}/window              WindowResponse
//	GET  /v1/trackers/{name}/checkpoints         CheckpointsResponse
//	GET  /v1/trackers/{name}/stats               StatsResponse
//	GET  /v1/trackers/{name}/metrics             TrackerMetricsResponse
//	GET  /v1/trackers/{name}/influence?user=U    InfluenceResponse
//	GET  /v1/trackers/{name}/candidates          CandidatesResponse
//	POST /v1/trackers/{name}/query               QueryRequest -> QueryResponse
//	GET  /metrics                                Prometheus text format
//
// A scatter-gather router (cmd/simrouter) serves the same tracker routes
// over a shard fleet, plus a cluster-shaped GET /v1/healthz
// (ClusterHealthResponse). When a shard is down the router answers merged
// reads from the survivors, sets the X-Partial: true response header, and
// marks the DTO's Partial field — callers choose between a partial answer
// and an error, the router never fails the whole read for one dead shard.
//
// # Error contract
//
// Every non-2xx response carries an ErrorResponse body:
//
//	{"error": "<human-readable message>", "code": <HTTP status>}
//
// with the code repeating the HTTP status line so error bodies are
// self-describing when logged or proxied. The statuses in use:
//
//	400  malformed request: bad NDJSON, bad query plan, bad parameters
//	404  unknown tracker
//	409  ingest conflict: a stream-order violation (non-monotonic ID,
//	     unknown parent) aborted the batch at the offending action;
//	     everything before it was applied
//	413  ingest body exceeds the server's size cap
//	429  shed by admission control: the ingest queue stayed full past the
//	     tracker's enqueue deadline; the batch was NOT applied — back off
//	     and retry (a Retry-After header carries a hint in seconds)
//	503  tracker (or server) is draining, the request's context expired
//	     while queued, a WAL append failed (the batch was NOT applied and
//	     may be retried), or a degraded tracker is serving reads only
//	     while it re-arms its durability path (Retry-After hints when)
//
// 429 and 503 are the retryable statuses; on ingest both guarantee the
// batch was not applied, so retrying cannot double-apply. The Client
// surfaces every non-2xx as an *Error value (with RetryAfter populated)
// and can retry them itself — see RetryPolicy.
package api

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/query"
	"repro/sim"
)

// Spec is the JSON/flag-configurable description of one served tracker: the
// sim.Config knobs plus serving-only settings. The zero value of every
// optional field means "sim's default".
type Spec struct {
	// K and Window are sim.Config.K and sim.Config.WindowSize; mandatory.
	K      int `json:"k"`
	Window int `json:"window"`
	// Slide, Beta, Framework ("sic"/"ic"), Oracle ("sieve", "threshold",
	// "blogwatch", "mkc"), TimeBased, Parallelism, Batch and ExpectedUsers
	// map onto the sim.Config fields of the same meaning.
	Slide         int           `json:"slide,omitempty"`
	Beta          float64       `json:"beta,omitempty"`
	Framework     sim.Framework `json:"framework,omitempty"`
	Oracle        sim.Oracle    `json:"oracle,omitempty"`
	TimeBased     bool          `json:"time_based,omitempty"`
	Parallelism   int           `json:"parallelism,omitempty"`
	Batch         int           `json:"batch,omitempty"`
	ExpectedUsers int           `json:"expected_users,omitempty"`
	// Names switches the tracker to name-mode ingest: NDJSON "user" fields
	// are strings, interned server-side to dense IDs in first-appearance
	// order. Name-mode trackers resolve names in /seeds, /influence and the
	// query layer's "names" operator; numeric "user" fields are rejected
	// (and string ones are rejected without Names) so the two ID spaces
	// cannot mix.
	Names bool `json:"names,omitempty"`
	// Queue is the ingest queue capacity in commands (batches), the bound
	// behind the Submit backpressure. 0 means the server default (256).
	Queue int `json:"queue,omitempty"`
	// EnqueueDeadlineMillis bounds how long an ingest waits for space in a
	// full queue before the server sheds it with 429 (admission control: a
	// wedged ingest loop must not wedge HTTP handlers). 0 means the server
	// default (2000 ms); negative disables shedding — callers block until
	// their request context expires.
	EnqueueDeadlineMillis int `json:"enqueue_deadline_ms,omitempty"`
	// SnapshotWALBytes is the write-ahead-log size that triggers a
	// snapshot+truncate on a durable registry (one with a data dir). 0
	// means the server default (4 MiB). Ignored without durability.
	SnapshotWALBytes int64 `json:"snapshot_wal_bytes,omitempty"`
	// MemoryBudgetBytes bounds the tracker's resident contribution-log
	// bytes: past it, the longest-idle users' logs spill to immutable cold
	// segment files at the window's expiry boundary and fault back in on
	// demand (sim.Config.MemoryBudgetBytes). Answers are bit-identical
	// with or without a budget; only memory residency and I/O change. 0
	// (the default) never spills. Requires a spill directory — the
	// server's -spill-dir flag, or durability (the tracker then spills
	// under <data-dir>/<name>/spill); a budget without either refuses the
	// tracker at startup.
	MemoryBudgetBytes int64 `json:"memory_budget_bytes,omitempty"`
}

// Config converts the spec to the sim.Config it describes.
func (s Spec) Config() sim.Config {
	return sim.Config{
		K:             s.K,
		WindowSize:    s.Window,
		Slide:         s.Slide,
		Beta:          s.Beta,
		Framework:     s.Framework,
		Oracle:        s.Oracle,
		TimeBased:     s.TimeBased,
		Parallelism:   s.Parallelism,
		BatchSize:     s.Batch,
		ExpectedUsers: s.ExpectedUsers,
	}
}

// specFile is the on-disk shape of a multi-tracker spec:
//
//	{"trackers": {"default": {"k": 10, "window": 50000, "oracle": "sieve"}}}
type specFile struct {
	Trackers map[string]Spec `json:"trackers"`
}

// ReadSpecs parses a tracker spec document (see specFile) and returns the
// named specs. Unknown fields are rejected so typos fail loudly at startup.
func ReadSpecs(r io.Reader) (map[string]Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f specFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("api: parsing tracker specs: %w", err)
	}
	if len(f.Trackers) == 0 {
		return nil, fmt.Errorf("api: spec declares no trackers")
	}
	return f.Trackers, nil
}

// NamedAction is one action of a name-mode ingest: like sim.Action but with
// the user as an external string name. Parent is -1 (or sim.NoParent) for
// root actions.
type NamedAction struct {
	ID     sim.ActionID
	User   string
	Parent sim.ActionID
}

// IngestResponse answers POST /v1/trackers/{name}/actions.
type IngestResponse struct {
	// Accepted is the number of actions in the request body.
	Accepted int `json:"accepted"`
	// Processed is the tracker's lifetime accepted-action count after this
	// batch was applied.
	Processed int64 `json:"processed"`
}

// SeedsResponse answers GET /v1/trackers/{name}/seeds.
type SeedsResponse struct {
	Seeds       []sim.UserID `json:"seeds"`
	Value       float64      `json:"value"`
	WindowStart sim.ActionID `json:"window_start"`
	Processed   int64        `json:"processed"`
	// Names carries the seeds' external names, index-aligned with Seeds,
	// on name-mode trackers only.
	Names []string `json:"names,omitempty"`
	// Partial marks a router answer computed without every shard (see the
	// package comment); never set by a single server.
	Partial bool `json:"partial,omitempty"`
}

// ValueResponse answers GET /v1/trackers/{name}/value.
type ValueResponse struct {
	Value     float64 `json:"value"`
	Processed int64   `json:"processed"`
	// Partial marks a router answer computed without every shard.
	Partial bool `json:"partial,omitempty"`
}

// WindowResponse answers GET /v1/trackers/{name}/window.
type WindowResponse struct {
	WindowStart sim.ActionID `json:"window_start"`
	Processed   int64        `json:"processed"`
	// Partial marks a router answer computed without every shard.
	Partial bool `json:"partial,omitempty"`
}

// CheckpointsResponse answers GET /v1/trackers/{name}/checkpoints: the live
// checkpoints' start IDs and oracle values in ascending start order.
type CheckpointsResponse struct {
	Checkpoints int            `json:"checkpoints"`
	Starts      []sim.ActionID `json:"starts"`
	Values      []float64      `json:"values"`
	// Partial marks a router answer computed without every shard.
	Partial bool `json:"partial,omitempty"`
}

// CandidateSeed is one entry of CandidatesResponse: a shard-local candidate
// seed together with its current influence set — everything a merge layer
// needs to re-score the candidate against candidates from other partitions.
type CandidateSeed struct {
	User sim.UserID `json:"user"`
	// Name is the candidate's external name on name-mode trackers. Dense
	// numeric IDs are per-tracker intern order and NOT comparable across
	// trackers; names are the only cross-shard identity in name mode.
	Name string `json:"name,omitempty"`
	// Influenced is the candidate's current influence set within the
	// window (Definition 1), ascending.
	Influenced []sim.UserID `json:"influenced"`
	// InfluencedNames carries the influence set as external names,
	// index-aligned with Influenced, on name-mode trackers only.
	InfluencedNames []string `json:"influenced_names,omitempty"`
	// Coverage is the influence objective of this candidate alone
	// (cardinality of Influenced under the default unweighted objective).
	Coverage float64 `json:"coverage"`
}

// CandidatesResponse answers GET /v1/trackers/{name}/candidates: the
// answering checkpoint's full candidate pool (a superset of /seeds for the
// sieve-style oracles) with per-candidate influence sets. This is the
// shard-local half of the distributed two-round scheme: a router unions the
// pools of every shard and runs one exact greedy pass over the reported
// sets (see internal/router).
type CandidatesResponse struct {
	Candidates []CandidateSeed `json:"candidates"`
	// K echoes the tracker's cardinality budget.
	K int `json:"k"`
	// Value is the shard-local sieve objective of the tracker's own /seeds
	// answer, for comparison against the re-scored merge.
	Value       float64      `json:"value"`
	WindowStart sim.ActionID `json:"window_start"`
	Processed   int64        `json:"processed"`
}

// InfluenceResponse answers GET /v1/trackers/{name}/influence?user=U: the
// users U currently influences within the window (Definition 1). On a
// name-mode tracker U is an external name, echoed in Name.
type InfluenceResponse struct {
	User        sim.UserID   `json:"user"`
	Name        string       `json:"name,omitempty"`
	Influenced  []sim.UserID `json:"influenced"`
	Count       int          `json:"count"`
	WindowStart sim.ActionID `json:"window_start"`
}

// TrackerInfo is one entry of ListResponse.
type TrackerInfo struct {
	Name      string `json:"name"`
	Spec      Spec   `json:"spec"`
	Processed int64  `json:"processed"`
}

// ListResponse answers GET /v1/trackers.
type ListResponse struct {
	Trackers []TrackerInfo `json:"trackers"`
	// Partial marks a router answer computed without every shard.
	Partial bool `json:"partial,omitempty"`
}

// StatsResponse answers GET /v1/trackers/{name}/stats: the sim.Stats view
// plus the cumulative framework counters.
type StatsResponse struct {
	Stats              sim.Stats `json:"stats"`
	CheckpointsCreated int64     `json:"checkpoints_created"`
	CheckpointsDeleted int64     `json:"checkpoints_deleted"`
	QueueDepth         int       `json:"queue_depth"`
	QueueCapacity      int       `json:"queue_capacity"`
	// Partial marks a router answer computed without every shard.
	Partial bool `json:"partial,omitempty"`
}

// HealthResponse answers GET /v1/healthz: build info plus the coarse
// liveness facts an orchestration probe wants.
type HealthResponse struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	Trackers      int     `json:"trackers"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Durable reports whether the registry persists tracker state (a data
	// dir is configured).
	Durable bool `json:"durable"`
	// Degraded maps tracker names to their latest snapshot-write failure.
	// Present (and Status "degraded") only while a durable tracker cannot
	// snapshot: batches stay safe in its ever-growing WAL, but recovery
	// replays lengthen until the underlying condition clears.
	Degraded map[string]string `json:"degraded,omitempty"`
	// States maps tracker names to their serving state: "ok" (full
	// service), "degraded-readonly" (the durability path is poisoned —
	// reads and queries keep answering, ingest gets 503 until the tracker
	// re-arms), or "recovering" (a re-arm attempt is in flight). Status is
	// "degraded" whenever any tracker is not "ok".
	States map[string]string `json:"states,omitempty"`
	// Refused maps tracker names that were declared in the spec but refused
	// at startup (e.g. batch > 1 with -data-dir: batched recovery cannot
	// guarantee identity) to the refusal reason. Refused trackers answer
	// every /v1/trackers/{name}/... request with 503 and the same reason
	// through the standard error contract, so a probe and a client see one
	// consistent story. Status is "degraded" whenever Refused is non-empty.
	Refused map[string]string `json:"refused,omitempty"`
	// Memory maps tracker names to their tiered-window memory facts —
	// present only for trackers running with a memory budget, so a probe
	// can watch residency and cold-tier growth without per-tracker calls.
	Memory map[string]TrackerMemory `json:"memory,omitempty"`
}

// TrackerMemory is one tracker's entry in HealthResponse.Memory: the
// resident-footprint estimate and the cold tier's current extent.
type TrackerMemory struct {
	ResidentBytes int64 `json:"resident_bytes"`
	ColdSegments  int   `json:"cold_segments"`
	ColdFaults    int64 `json:"cold_faults"`
}

// ShardHealth is one shard's entry in ClusterHealthResponse, as observed by
// the router's last contact (a proxied probe or a failed fan-out call).
type ShardHealth struct {
	// Addr is the shard's base URL as configured on the router.
	Addr string `json:"addr"`
	// Healthy reports whether the router currently considers the shard
	// reachable; unhealthy shards are skipped by reads (Partial results)
	// and re-probed in the background.
	Healthy bool `json:"healthy"`
	// Error is the last transport failure observed, for unhealthy shards.
	Error string `json:"error,omitempty"`
	// Status/Trackers echo the shard's own /v1/healthz when reachable.
	Status   string `json:"status,omitempty"`
	Trackers int    `json:"trackers,omitempty"`
}

// ClusterHealthResponse answers GET /v1/healthz on a router
// (cmd/simrouter): per-shard health plus the rolled-up status — "ok" when
// every shard is healthy and reports "ok", "degraded" otherwise.
type ClusterHealthResponse struct {
	Status  string        `json:"status"`
	Version string        `json:"version"`
	Shards  []ShardHealth `json:"shards"`
	// Healthy counts the shards currently considered reachable.
	Healthy int `json:"healthy"`
}

// TrackerMetricsResponse answers GET /v1/trackers/{name}/metrics: the
// tracker's self-healing and admission-control counters, for operators
// and tests that need more than the coarse /stats view.
type TrackerMetricsResponse struct {
	// State is the serving state: "ok", "degraded-readonly" or
	// "recovering" (see HealthResponse.States).
	State string `json:"state"`
	// SnapshotRetries counts failed snapshot-write attempts (each is
	// retried with capped exponential backoff).
	SnapshotRetries int64 `json:"snapshot_retries"`
	// WALRearms counts successful durability re-arms: a fresh covering
	// snapshot published and the WAL recreated empty after a poisoning.
	WALRearms int64 `json:"wal_rearms"`
	// ShedRequests counts ingests rejected with 429 because the queue
	// stayed full past the enqueue deadline.
	ShedRequests int64 `json:"shed_requests"`
	// QueueDepthHighWater is the deepest the ingest queue has been.
	QueueDepthHighWater int64 `json:"queue_depth_high_water"`
	// QueueDepth / QueueCapacity mirror the live /stats values.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// DurabilityError is the latest snapshot/WAL failure message, empty
	// when healthy.
	DurabilityError string `json:"durability_error,omitempty"`
	// Tiered window state (see sim.Snapshot): the stream index's estimated
	// resident footprint, the hot/cold split of contribution-log bytes,
	// how much of the window currently lives in cold segment files, the
	// cumulative spill passes and the cumulative cold-segment reads
	// (query-triggered, residency-neutral). All zero without a memory
	// budget.
	ResidentBytes int64 `json:"resident_bytes"`
	HotLogBytes   int64 `json:"hot_log_bytes"`
	ColdLogBytes  int64 `json:"cold_log_bytes"`
	ColdUsers     int   `json:"cold_users"`
	ColdSegments  int   `json:"cold_segments"`
	Spills        int64 `json:"spills"`
	ColdFaults    int64 `json:"cold_faults"`
	// Boot recovery shape, for durable trackers: whether a snapshot was
	// mapped in (cold segments re-adopted, not replayed) and how much WAL
	// tail was replayed on top. The spill smoke test asserts segment-mapped
	// recovery through these.
	RecoveredSnapshot          bool  `json:"recovered_snapshot,omitempty"`
	RecoveredSnapshotProcessed int64 `json:"recovered_snapshot_processed,omitempty"`
	RecoveredWALBatches        int   `json:"recovered_wal_batches,omitempty"`
	RecoveredWALActions        int   `json:"recovered_wal_actions,omitempty"`
}

// QueryRequest is the body of POST /v1/trackers/{name}/query: a relational
// plan (see package query for the plan language) executed lazily against
// the tracker's atomically published snapshot — never the live tracker, so
// queries of any cost run without touching the ingest loop.
type QueryRequest struct {
	Plan query.Plan `json:"plan"`
	// Limit caps the returned rows; 0 means the server default (10000).
	// Truncation is reported, not an error.
	Limit int `json:"limit,omitempty"`
}

// QueryResponse answers POST /v1/trackers/{name}/query.
type QueryResponse struct {
	// Columns names the result columns, in row order.
	Columns []string `json:"columns"`
	// Rows holds the result tuples; cells are JSON numbers or strings
	// (query.Value).
	Rows []query.Row `json:"rows"`
	// Truncated reports that the row limit cut the result short.
	Truncated bool `json:"truncated"`
	// Processed / WindowStart identify the snapshot the query ran against.
	Processed   int64        `json:"processed"`
	WindowStart sim.ActionID `json:"window_start"`
	// Partial marks a router answer computed without every shard.
	Partial bool `json:"partial,omitempty"`
}

// ErrorResponse is the body of every non-2xx JSON response; Code repeats
// the HTTP status (see the package comment for the full contract).
type ErrorResponse struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

// Error is the typed form of a non-2xx response, returned by Client
// methods. Code is the HTTP status.
type Error struct {
	Code    int
	Message string
	// RetryAfter is the server's Retry-After hint, when present (429 and
	// 503 responses carry one); zero otherwise.
	RetryAfter time.Duration
}

func (e *Error) Error() string { return fmt.Sprintf("api: %s (HTTP %d)", e.Message, e.Code) }

// Temporary reports whether the error is a retryable server condition
// (429 shed or 503 unavailable) rather than a caller mistake. On ingest
// both statuses guarantee the batch was not applied.
func (e *Error) Temporary() bool {
	return e.Code == http.StatusTooManyRequests || e.Code == http.StatusServiceUnavailable
}
