package api

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/sim"
)

// TestReadSpecs checks spec-file parsing, including failure on typos.
func TestReadSpecs(t *testing.T) {
	specs, err := ReadSpecs(strings.NewReader(
		`{"trackers": {"a": {"k": 3, "window": 100, "framework": "ic", "oracle": "threshold"},
		               "b": {"k": 1, "window": 50, "batch": 10, "queue": 7, "names": true}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("want 2 specs, got %d", len(specs))
	}
	a := specs["a"]
	if a.K != 3 || a.Window != 100 || a.Framework != sim.IC || a.Oracle != sim.ThresholdStream {
		t.Errorf("spec a = %+v", a)
	}
	if b := specs["b"]; b.Batch != 10 || b.Queue != 7 || !b.Names {
		t.Errorf("spec b = %+v", b)
	}
	if _, err := ReadSpecs(strings.NewReader(`{"trackers": {"a": {"k": 3, "windoww": 9}}}`)); err == nil {
		t.Error("typo in spec field should fail")
	}
	if _, err := ReadSpecs(strings.NewReader(`{"trackers": {}}`)); err == nil {
		t.Error("empty spec should fail")
	}
	if _, err := ReadSpecs(strings.NewReader(`{"trackers": {"a": {"k": 3, "window": 10, "oracle": "bogus"}}}`)); err == nil {
		t.Error("unknown oracle name should fail")
	}
}

// TestClientErrorDecoding covers both halves of the client's non-2xx path:
// the structured ErrorResponse envelope and the raw-body fallback for
// responses that did not come from our handlers (proxies, panics).
func TestClientErrorDecoding(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/trackers/enveloped":
			w.WriteHeader(http.StatusConflict)
			w.Write([]byte(`{"error":"stream order violated","code":409}`))
		case "/v1/trackers/raw":
			w.WriteHeader(http.StatusBadGateway)
			w.Write([]byte("upstream fell over"))
		default:
			w.WriteHeader(http.StatusTeapot)
		}
	}))
	defer srv.Close()
	c := NewClient(srv.URL + "/") // trailing slash is trimmed

	_, err := c.Snapshot(context.Background(), "enveloped")
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusConflict ||
		apiErr.Message != "stream order violated" {
		t.Errorf("enveloped error = %v", err)
	}
	if !strings.Contains(apiErr.Error(), "409") {
		t.Errorf("Error() should mention the status: %q", apiErr.Error())
	}

	_, err = c.Snapshot(context.Background(), "raw")
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusBadGateway ||
		apiErr.Message != "upstream fell over" {
		t.Errorf("raw-body error = %v", err)
	}

	_, err = c.Snapshot(context.Background(), "empty")
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusTeapot {
		t.Errorf("empty-body error = %v", err)
	}
}
