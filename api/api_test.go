package api

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/sim"
)

// TestReadSpecs checks spec-file parsing, including failure on typos.
func TestReadSpecs(t *testing.T) {
	specs, err := ReadSpecs(strings.NewReader(
		`{"trackers": {"a": {"k": 3, "window": 100, "framework": "ic", "oracle": "threshold"},
		               "b": {"k": 1, "window": 50, "batch": 10, "queue": 7, "names": true}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("want 2 specs, got %d", len(specs))
	}
	a := specs["a"]
	if a.K != 3 || a.Window != 100 || a.Framework != sim.IC || a.Oracle != sim.ThresholdStream {
		t.Errorf("spec a = %+v", a)
	}
	if b := specs["b"]; b.Batch != 10 || b.Queue != 7 || !b.Names {
		t.Errorf("spec b = %+v", b)
	}
	if _, err := ReadSpecs(strings.NewReader(`{"trackers": {"a": {"k": 3, "windoww": 9}}}`)); err == nil {
		t.Error("typo in spec field should fail")
	}
	if _, err := ReadSpecs(strings.NewReader(`{"trackers": {}}`)); err == nil {
		t.Error("empty spec should fail")
	}
	if _, err := ReadSpecs(strings.NewReader(`{"trackers": {"a": {"k": 3, "window": 10, "oracle": "bogus"}}}`)); err == nil {
		t.Error("unknown oracle name should fail")
	}
}

// TestClientErrorDecoding covers both halves of the client's non-2xx path:
// the structured ErrorResponse envelope and the raw-body fallback for
// responses that did not come from our handlers (proxies, panics).
func TestClientErrorDecoding(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/trackers/enveloped":
			w.WriteHeader(http.StatusConflict)
			w.Write([]byte(`{"error":"stream order violated","code":409}`))
		case "/v1/trackers/raw":
			w.WriteHeader(http.StatusBadGateway)
			w.Write([]byte("upstream fell over"))
		default:
			w.WriteHeader(http.StatusTeapot)
		}
	}))
	defer srv.Close()
	c := NewClient(srv.URL + "/") // trailing slash is trimmed

	_, err := c.Snapshot(context.Background(), "enveloped")
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusConflict ||
		apiErr.Message != "stream order violated" {
		t.Errorf("enveloped error = %v", err)
	}
	if !strings.Contains(apiErr.Error(), "409") {
		t.Errorf("Error() should mention the status: %q", apiErr.Error())
	}

	_, err = c.Snapshot(context.Background(), "raw")
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusBadGateway ||
		apiErr.Message != "upstream fell over" {
		t.Errorf("raw-body error = %v", err)
	}

	_, err = c.Snapshot(context.Background(), "empty")
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusTeapot {
		t.Errorf("empty-body error = %v", err)
	}
}

// TestClientRetry covers the retry loop's safety rules: 503/429 retry on
// any method (the server guarantees those were not applied), deterministic
// statuses (409) never retry, a Retry-After hint is parsed into the error,
// and MaxRetries bounds the attempts.
func TestClientRetry(t *testing.T) {
	var ingests, conflicts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/trackers/flaky/actions":
			if ingests.Add(1) < 3 { // two 503s, then success
				w.Header().Set("Retry-After", "7")
				w.WriteHeader(http.StatusServiceUnavailable)
				w.Write([]byte(`{"error":"draining","code":503}`))
				return
			}
			body, _ := io.ReadAll(r.Body)
			w.Write([]byte(`{"accepted":` + strconv.Itoa(strings.Count(string(body), "\n")) + `,"processed":9}`))
		case "/v1/trackers/conflicted/actions":
			conflicts.Add(1)
			w.WriteHeader(http.StatusConflict)
			w.Write([]byte(`{"error":"stream order violated","code":409}`))
		case "/v1/trackers/hopeless/actions":
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":"shed","code":429}`))
		}
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{MaxRetries: 3, MinBackoff: time.Millisecond}
	var slept []time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	batch := []sim.Action{{ID: 1, User: 2, Parent: -1}}

	// 503s retry even on ingest — the body is resent from the start.
	resp, err := c.Ingest(context.Background(), "flaky", batch)
	if err != nil || resp.Accepted != 1 || resp.Processed != 9 {
		t.Fatalf("flaky ingest: %+v, %v (attempts=%d)", resp, err, ingests.Load())
	}
	if ingests.Load() != 3 {
		t.Fatalf("flaky ingest took %d attempts, want 3", ingests.Load())
	}
	// The server's Retry-After (7s) outweighs the tiny backoff.
	if len(slept) != 2 || slept[0] != 7*time.Second {
		t.Fatalf("slept %v, want two 7s waits", slept)
	}

	// 409 is deterministic: exactly one attempt.
	_, err = c.Ingest(context.Background(), "conflicted", batch)
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusConflict {
		t.Fatalf("conflicted ingest: %v", err)
	}
	if conflicts.Load() != 1 {
		t.Fatalf("409 was retried: %d attempts", conflicts.Load())
	}

	// A never-healing 429 exhausts MaxRetries and surfaces the error.
	slept = nil
	_, err = c.Ingest(context.Background(), "hopeless", batch)
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusTooManyRequests {
		t.Fatalf("hopeless ingest: %v", err)
	}
	if len(slept) != 3 {
		t.Fatalf("hopeless ingest slept %d times, want MaxRetries=3", len(slept))
	}

	// Transport errors retry only idempotent requests: an ingest against a
	// dead server fails on the first attempt, a GET keeps trying.
	srv.Close()
	slept = nil
	if _, err := c.Ingest(context.Background(), "flaky", batch); err == nil {
		t.Fatal("ingest against a closed server succeeded")
	}
	if len(slept) != 0 {
		t.Fatalf("non-idempotent transport failure was retried %d times", len(slept))
	}
	if _, err := c.Value(context.Background(), "flaky"); err == nil {
		t.Fatal("read against a closed server succeeded")
	}
	if len(slept) != 3 {
		t.Fatalf("idempotent transport failure retried %d times, want 3", len(slept))
	}
}
