package api

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/sim"
)

// retryServer answers every request with the queued (status, header, body)
// triples in order, then with 200 {"accepted":0,"processed":0}.
type retryServer struct {
	srv   *httptest.Server
	calls atomic.Int64
	queue []retryStep
}

type retryStep struct {
	status     int
	retryAfter string
	body       string
}

func newRetryServer(t *testing.T, steps ...retryStep) *retryServer {
	rs := &retryServer{queue: steps}
	rs.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(rs.calls.Add(1)) - 1
		if n >= len(rs.queue) {
			w.Write([]byte(`{"accepted":0,"processed":0}`))
			return
		}
		step := rs.queue[n]
		if step.retryAfter != "" {
			w.Header().Set("Retry-After", step.retryAfter)
		}
		w.WriteHeader(step.status)
		w.Write([]byte(step.body))
	}))
	t.Cleanup(rs.srv.Close)
	return rs
}

func retryClient(rs *retryServer, p RetryPolicy) (*Client, *[]time.Duration) {
	c := NewClient(rs.srv.URL)
	c.Retry = p
	slept := &[]time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return nil
	}
	return c, slept
}

var retryBatch = []sim.Action{{ID: 1, User: 2, Parent: -1}}

// TestRetryAfterMalformed: a Retry-After the seconds-form parser cannot use
// (HTTP-date, negative, fractional, text) degrades to the plain exponential
// backoff — never a panic, never a stuck zero-length wait loop.
func TestRetryAfterMalformed(t *testing.T) {
	for _, hdr := range []string{"soon", "-5", "1.5", "Wed, 21 Oct 2015 07:28:00 GMT"} {
		t.Run(hdr, func(t *testing.T) {
			rs := newRetryServer(t,
				retryStep{503, hdr, `{"error":"draining","code":503}`},
				retryStep{503, hdr, `{"error":"draining","code":503}`},
			)
			c, slept := retryClient(rs, RetryPolicy{MaxRetries: 3, MinBackoff: 10 * time.Millisecond})
			if _, err := c.Ingest(context.Background(), "x", retryBatch); err != nil {
				t.Fatalf("ingest: %v", err)
			}
			if rs.calls.Load() != 3 {
				t.Fatalf("%d attempts, want 3", rs.calls.Load())
			}
			// Malformed hint = no hint: doubling backoff from MinBackoff.
			want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
			if len(*slept) != 2 || (*slept)[0] != want[0] || (*slept)[1] != want[1] {
				t.Fatalf("slept %v, want %v", *slept, want)
			}
		})
	}
}

// TestRetryBackoffDoublingAndCap: with no Retry-After at all the waits
// double from MinBackoff and clamp at MaxBackoff.
func TestRetryBackoffDoublingAndCap(t *testing.T) {
	rs := newRetryServer(t,
		retryStep{503, "", `{"error":"a","code":503}`},
		retryStep{503, "", `{"error":"b","code":503}`},
		retryStep{503, "", `{"error":"c","code":503}`},
		retryStep{503, "", `{"error":"d","code":503}`},
	)
	c, slept := retryClient(rs, RetryPolicy{
		MaxRetries: 4, MinBackoff: 10 * time.Millisecond, MaxBackoff: 25 * time.Millisecond,
	})
	if _, err := c.Ingest(context.Background(), "x", retryBatch); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond, 25 * time.Millisecond}
	if len(*slept) != len(want) {
		t.Fatalf("slept %v, want %v", *slept, want)
	}
	for i := range want {
		if (*slept)[i] != want[i] {
			t.Fatalf("wait %d = %v, want %v (all: %v)", i, (*slept)[i], want[i], *slept)
		}
	}
}

// TestRetryAfterShorterThanBackoff: the server hint only ever lengthens a
// wait; a 1-second hint under a 2-second floor loses.
func TestRetryAfterShorterThanBackoff(t *testing.T) {
	rs := newRetryServer(t, retryStep{429, "1", `{"error":"shed","code":429}`})
	c, slept := retryClient(rs, RetryPolicy{MaxRetries: 1, MinBackoff: 2 * time.Second})
	if _, err := c.Ingest(context.Background(), "x", retryBatch); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if len(*slept) != 1 || (*slept)[0] != 2*time.Second {
		t.Fatalf("slept %v, want one 2s wait", *slept)
	}
}

// TestRetryNonJSONErrorBody: a 503 whose body is not the ErrorResponse
// envelope still decodes into a retryable *Error carrying the raw text.
func TestRetryNonJSONErrorBody(t *testing.T) {
	rs := newRetryServer(t, retryStep{503, "", "upstream proxy melted"})
	c, _ := retryClient(rs, RetryPolicy{MaxRetries: 2, MinBackoff: time.Millisecond})
	if _, err := c.Ingest(context.Background(), "x", retryBatch); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if rs.calls.Load() != 2 {
		t.Fatalf("%d attempts, want 2 (non-JSON 503 must stay retryable)", rs.calls.Load())
	}
}

// TestRetryQueryIsIdempotent: /query is a POST but carries no state change,
// so transport failures retry it — unlike ingest, pinned by
// TestClientRetry. A server that dies after the first byte exercises the
// transport-error path rather than a status code.
func TestRetryQueryIsIdempotent(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			// Hijack and sever the connection mid-response: the client
			// sees a transport error, not an HTTP status.
			hj := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.Write([]byte(`{"columns":["user"],"rows":[]}`))
	}))
	defer srv.Close()
	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{MaxRetries: 2, MinBackoff: time.Millisecond}
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	resp, err := c.Query(context.Background(), "x", QueryRequest{})
	if err != nil {
		t.Fatalf("query after transport error: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("%d attempts, want 2", calls.Load())
	}
	if len(resp.Columns) != 1 {
		t.Fatalf("bad final response: %+v", resp)
	}
}

// TestRetryCanceledDuringBackoff: a context canceled while waiting stops
// the loop and surfaces the LAST SERVER ERROR (what actually went wrong),
// not the cancellation.
func TestRetryCanceledDuringBackoff(t *testing.T) {
	rs := newRetryServer(t,
		retryStep{503, "", `{"error":"draining","code":503}`},
		retryStep{503, "", `{"error":"draining","code":503}`},
	)
	c := NewClient(rs.srv.URL)
	c.Retry = RetryPolicy{MaxRetries: 5, MinBackoff: time.Millisecond}
	ctx, cancel := context.WithCancel(context.Background())
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}
	_, err := c.Ingest(ctx, "x", retryBatch)
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusServiceUnavailable {
		t.Fatalf("got %v, want the 503 *Error", err)
	}
	if rs.calls.Load() != 1 {
		t.Fatalf("%d attempts after cancel, want 1", rs.calls.Load())
	}
}

// TestRetryCanceledTransport: a transport error caused by the caller's own
// cancellation is never retried, even on idempotent requests.
func TestRetryCanceledTransport(t *testing.T) {
	var calls atomic.Int64
	blocked := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-blocked
	}))
	defer srv.Close()
	defer close(blocked)
	c := NewClient(srv.URL)
	c.Retry = RetryPolicy{MaxRetries: 5, MinBackoff: time.Millisecond}
	c.sleep = func(ctx context.Context, d time.Duration) error { return nil }
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, err := c.Value(ctx, "x")
	if err == nil {
		t.Fatal("expected error from canceled GET")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("%d attempts, want 1 (caller cancellation must not retry)", calls.Load())
	}
}

// TestRetryZeroPolicy: the zero RetryPolicy preserves single-attempt
// behavior on every class of failure.
func TestRetryZeroPolicy(t *testing.T) {
	rs := newRetryServer(t, retryStep{503, "3", `{"error":"draining","code":503}`})
	c := NewClient(rs.srv.URL)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		t.Error("zero policy slept")
		return nil
	}
	_, err := c.Ingest(context.Background(), "x", retryBatch)
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusServiceUnavailable {
		t.Fatalf("got %v, want 503", err)
	}
	if apiErr.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v, want 3s (hint still decoded for the caller)", apiErr.RetryAfter)
	}
	if rs.calls.Load() != 1 {
		t.Fatalf("%d attempts, want 1", rs.calls.Load())
	}
}
