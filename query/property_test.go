// Black-box tests (package query_test) so they may import internal/bench
// for the evaluation datasets: bench itself imports query for the "query"
// experiment, and an in-package test would close that cycle.
package query_test

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/query"
	"repro/sim"
)

// testEnv builds an Env over two snapshots of the same tracker (mid-stream
// and final) plus a name resolver that misses every third ID, exercising
// both the resolved and the fallback paths of the names operator.
func testEnv(t *testing.T, actions []sim.Action, fwk sim.Framework) query.Env {
	t.Helper()
	tr, err := sim.New(sim.Config{K: 8, WindowSize: 2000, Slide: 50, Framework: fwk})
	if err != nil {
		t.Fatal(err)
	}
	half := len(actions) / 2
	if err := tr.ProcessAll(actions[:half]); err != nil {
		t.Fatal(err)
	}
	prev := tr.Snapshot()
	if err := tr.ProcessAll(actions[half:]); err != nil {
		t.Fatal(err)
	}
	cur := tr.Snapshot()
	return query.Env{
		Current:  &cur,
		Previous: &prev,
		Name: func(id uint32) (string, bool) {
			if id%3 == 0 {
				return "", false
			}
			return fmt.Sprintf("u%d", id), true
		},
	}
}

// propertyPlans is the plan corpus for the lazy-vs-reference equivalence
// test: every operator, joins with subplans, compare sources, name
// resolution, and operator stacking.
func propertyPlans() []query.Plan {
	v0 := query.IntValue(0)
	v2 := query.IntValue(2)
	kept := query.StringValue("kept")
	return []query.Plan{
		{Scan: "seeds"},
		{Scan: "checkpoints"},
		{Scan: "influence"},
		{Scan: "seeds", Ops: []query.Op{{Op: "project", Cols: []string{"user"}}}},
		{Scan: "seeds", Ops: []query.Op{{Op: "filter", Col: "influence", Cmp: ">", Value: &v0}}},
		{Scan: "checkpoints", Ops: []query.Op{{Op: "topk", Col: "value", K: 3, Desc: true}}},
		{Scan: "influence", Ops: []query.Op{{Op: "topk", Col: "user", K: 7, Desc: false}}},
		{Scan: "influence", Ops: []query.Op{{Op: "limit", N: 5}}},
		{Scan: "seeds", Ops: []query.Op{{Op: "names", Cols: []string{"user"}}}},
		{Scan: "influence", Ops: []query.Op{
			{Op: "join", On: "seed", Right: &query.Plan{Scan: "seeds"}, RightOn: "user"},
			{Op: "filter", Col: "influence", Cmp: ">=", Value: &v2},
			{Op: "topk", Col: "influence", K: 5, Desc: true},
			{Op: "project", Cols: []string{"seed", "user", "influence"}},
		}},
		{Scan: "seeds", Ops: []query.Op{
			{Op: "join", On: "user", Right: &query.Plan{Scan: "influence", Ops: []query.Op{{Op: "limit", N: 50}}}, RightOn: "seed"},
		}},
		{Compare: "seeds"},
		{Compare: "seeds", Ops: []query.Op{{Op: "names", Col: "user"}}},
		{Compare: "checkpoints"},
		{Compare: "checkpoints", Ops: []query.Op{
			{Op: "filter", Col: "status", Cmp: "==", Value: &kept},
			{Op: "project", Cols: []string{"start", "delta"}},
		}},
		{Scan: "seeds", Ops: []query.Op{
			{Op: "join", On: "user", Right: &query.Plan{Compare: "seeds"}, RightOn: "user"},
			{Op: "filter", Col: "status", Cmp: "!=", Value: &kept},
		}},
	}
}

// TestLazyMatchesReference is the property test of ISSUE 6: every lazy
// operator pipeline produces bit-identical schema and rows to the naive
// fully-materialized reference evaluator, across all four evaluation
// datasets under both frameworks.
func TestLazyMatchesReference(t *testing.T) {
	sc := bench.ScaleSmoke()
	sc.Users = 500
	sc.StreamLen = 3000
	for _, ds := range bench.Datasets(sc) {
		for _, fwk := range []sim.Framework{sim.SIC, sim.IC} {
			t.Run(fmt.Sprintf("%s/%v", ds.Name, fwk), func(t *testing.T) {
				env := testEnv(t, ds.Actions, fwk)
				if len(env.Current.Seeds) == 0 {
					t.Fatal("fixture produced no seeds; property test would be vacuous")
				}
				for pi, p := range propertyPlans() {
					p := p
					rel, err := p.Open(env)
					if err != nil {
						t.Fatalf("plan %d: Open: %v", pi, err)
					}
					lazyRows, truncated := query.Collect(rel, 0)
					if truncated {
						t.Fatalf("plan %d: Collect(limit=0) truncated", pi)
					}
					refSchema, refRows, err := p.Materialize(env)
					if err != nil {
						t.Fatalf("plan %d: Materialize: %v", pi, err)
					}
					if !reflect.DeepEqual(rel.Schema(), refSchema) {
						t.Errorf("plan %d: lazy schema %v != reference %v", pi, rel.Schema(), refSchema)
					}
					if len(lazyRows) != len(refRows) {
						t.Fatalf("plan %d: lazy %d rows, reference %d", pi, len(lazyRows), len(refRows))
					}
					for i := range lazyRows {
						if !reflect.DeepEqual(lazyRows[i], refRows[i]) {
							t.Fatalf("plan %d row %d: lazy %v != reference %v", pi, i, lazyRows[i], refRows[i])
						}
					}
				}
			})
		}
	}
}

// TestPlanJSON decodes a wire-format plan and runs it, proving the JSON
// field names of Plan/Op are what the docs advertise.
func TestPlanJSON(t *testing.T) {
	raw := `{
		"scan": "influence",
		"ops": [
			{"op": "join", "on": "seed", "right": {"scan": "seeds"}, "right_on": "user"},
			{"op": "filter", "col": "influence", "cmp": ">=", "value": 1},
			{"op": "topk", "col": "influence", "k": 3, "desc": true},
			{"op": "names", "cols": ["seed"]},
			{"op": "project", "cols": ["seed", "influence"]}
		]
	}`
	var p query.Plan
	if err := json.Unmarshal([]byte(raw), &p); err != nil {
		t.Fatal(err)
	}
	env := testEnv(t, bench.Datasets(func() bench.Scale {
		sc := bench.ScaleSmoke()
		sc.Users = 200
		sc.StreamLen = 1500
		return sc
	}())[2].Actions, sim.SIC)
	rel, err := p.Open(env)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := query.Collect(rel, 0)
	if want := (query.Schema{"seed", "influence"}); !reflect.DeepEqual(rel.Schema(), want) {
		t.Fatalf("schema %v, want %v", rel.Schema(), want)
	}
	if len(rows) == 0 || len(rows) > 3 {
		t.Fatalf("got %d rows, want 1..3", len(rows))
	}
	for _, r := range rows {
		if r[0].Kind() != query.Str {
			t.Errorf("seed column not name-resolved: %v", r[0])
		}
	}
}
