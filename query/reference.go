package query

import (
	"fmt"
	"sort"
	"strconv"
)

// Materialize evaluates the plan eagerly: every source and every operator
// produces a fully materialized row slice before the next stage runs, joins
// are nested loops, and top-k is a full stable sort followed by a cut. It is
// deliberately an independent implementation of the plan semantics — the
// property tests check the lazy pipeline against it bit for bit, and the
// bench harness uses it as the baseline that quantifies what laziness saves.
func (p *Plan) Materialize(env Env) (Schema, []Row, error) {
	if env.Current == nil {
		return nil, nil, fmt.Errorf("query: no snapshot to query")
	}
	schema, rows, err := materializeSource(p, env)
	if err != nil {
		return nil, nil, err
	}
	for i, op := range p.Ops {
		schema, rows, err = materializeOp(schema, rows, op, env)
		if err != nil {
			return nil, nil, fmt.Errorf("query: op %d: %w", i, err)
		}
	}
	return schema, rows, nil
}

func materializeSource(p *Plan, env Env) (Schema, []Row, error) {
	// Sources are shared with the lazy path (they are trivial); drain them
	// into cloned rows.
	rel, err := (&Plan{Scan: p.Scan, Compare: p.Compare}).Open(env)
	if err != nil {
		return nil, nil, err
	}
	rows, _ := Collect(rel, 0)
	return rel.Schema().clone(), rows, nil
}

func materializeOp(schema Schema, rows []Row, op Op, env Env) (Schema, []Row, error) {
	switch op.Op {
	case "filter":
		if op.Col == "" || op.Value == nil {
			return nil, nil, fmt.Errorf("filter needs col and value")
		}
		c := schema.Col(op.Col)
		if c < 0 {
			return nil, nil, fmt.Errorf("filter: unknown column %q (have %v)", op.Col, []string(schema))
		}
		pred, err := comparator(op.Cmp, c, *op.Value)
		if err != nil {
			return nil, nil, err
		}
		var out []Row
		for _, r := range rows {
			if pred(r) {
				out = append(out, r)
			}
		}
		return schema, out, nil

	case "project":
		if len(op.Cols) == 0 {
			return nil, nil, fmt.Errorf("project needs cols")
		}
		idx := make([]int, len(op.Cols))
		for i, c := range op.Cols {
			j := schema.Col(c)
			if j < 0 {
				return nil, nil, fmt.Errorf("query: project: unknown column %q (have %v)", c, []string(schema))
			}
			idx[i] = j
		}
		out := make([]Row, len(rows))
		for i, r := range rows {
			nr := make(Row, len(idx))
			for k, j := range idx {
				nr[k] = r[j]
			}
			out[i] = nr
		}
		return Schema(op.Cols).clone(), out, nil

	case "join":
		if op.Right == nil || op.On == "" {
			return nil, nil, fmt.Errorf("join needs right and on")
		}
		rightSchema, rightRows, err := op.Right.Materialize(env)
		if err != nil {
			return nil, nil, fmt.Errorf("join right: %w", err)
		}
		rightOn := op.RightOn
		if rightOn == "" {
			rightOn = op.On
		}
		lc := schema.Col(op.On)
		if lc < 0 {
			return nil, nil, fmt.Errorf("query: join: unknown left column %q (have %v)", op.On, []string(schema))
		}
		rc := rightSchema.Col(rightOn)
		if rc < 0 {
			return nil, nil, fmt.Errorf("query: join: unknown right column %q (have %v)", rightOn, []string(rightSchema))
		}
		outSchema := schema.clone()
		for i, c := range rightSchema {
			if i == rc {
				continue
			}
			if outSchema.Col(c) >= 0 {
				c = "right_" + c
			}
			outSchema = append(outSchema, c)
		}
		var out []Row
		for _, l := range rows { // nested loop, left order then right order
			for _, r := range rightRows {
				if !l[lc].key().Equal(r[rc].key()) {
					continue
				}
				nr := make(Row, 0, len(outSchema))
				nr = append(nr, l...)
				for i, v := range r {
					if i != rc {
						nr = append(nr, v)
					}
				}
				out = append(out, nr)
			}
		}
		return outSchema, out, nil

	case "topk":
		if op.Col == "" {
			return nil, nil, fmt.Errorf("topk needs col")
		}
		c := schema.Col(op.Col)
		if c < 0 {
			return nil, nil, fmt.Errorf("query: topk: unknown column %q (have %v)", op.Col, []string(schema))
		}
		if op.K <= 0 {
			return nil, nil, fmt.Errorf("query: topk: k must be positive, got %d", op.K)
		}
		sorted := append([]Row{}, rows...)
		sort.SliceStable(sorted, func(a, b int) bool {
			cmp := sorted[a][c].Compare(sorted[b][c])
			if op.Desc {
				return cmp > 0
			}
			return cmp < 0
		})
		if len(sorted) > op.K {
			sorted = sorted[:op.K]
		}
		return schema, sorted, nil

	case "limit":
		if op.N <= 0 {
			return nil, nil, fmt.Errorf("limit needs positive n, got %d", op.N)
		}
		if len(rows) > op.N {
			rows = rows[:op.N]
		}
		return schema, rows, nil

	case "names":
		cols := op.Cols
		if len(cols) == 0 && op.Col != "" {
			cols = []string{op.Col}
		}
		if len(cols) == 0 {
			return nil, nil, fmt.Errorf("names needs cols (or col)")
		}
		idx := make([]int, len(cols))
		for i, c := range cols {
			j := schema.Col(c)
			if j < 0 {
				return nil, nil, fmt.Errorf("query: names: unknown column %q (have %v)", c, []string(schema))
			}
			idx[i] = j
		}
		out := make([]Row, len(rows))
		for i, r := range rows {
			nr := r.Clone()
			for _, j := range idx {
				if nr[j].Kind() != Int {
					continue
				}
				id := nr[j].Int()
				resolved := false
				if env.Name != nil && id >= 0 && id <= int64(^uint32(0)) {
					if n, ok := env.Name(uint32(id)); ok {
						nr[j] = StringValue(n)
						resolved = true
					}
				}
				if !resolved {
					nr[j] = StringValue(strconv.FormatInt(id, 10))
				}
			}
			out[i] = nr
		}
		return schema, out, nil

	default:
		return nil, nil, fmt.Errorf("unknown op %q (want filter, project, join, topk, limit or names)", op.Op)
	}
}
