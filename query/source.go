package query

import (
	"repro/sim"
)

// Snapshot scan sources. Each reads only the immutable sim.Snapshot it was
// given — never a live tracker — and overwrites one reused row buffer per
// Next call.

// seedsSchema: one row per seed of the snapshot's current solution.
//
//	rank      0-based position in the seed list
//	user      the seed's user ID
//	influence |I(user)| within the window (from Snapshot.SeedInfluence)
var seedsSchema = Schema{"rank", "user", "influence"}

type seedsScan struct {
	snap *sim.Snapshot
	i    int
	row  Row
}

// ScanSeeds returns the snapshot's seed set as a relation with columns
// (rank, user, influence).
func ScanSeeds(s *sim.Snapshot) Relation {
	return &seedsScan{snap: s, row: make(Row, len(seedsSchema))}
}

func (sc *seedsScan) Schema() Schema { return seedsSchema }

func (sc *seedsScan) Next() (Row, bool) {
	if sc.i >= len(sc.snap.Seeds) {
		return nil, false
	}
	infl := 0
	if sc.i < len(sc.snap.SeedInfluence) {
		infl = len(sc.snap.SeedInfluence[sc.i].Influenced)
	}
	sc.row[0] = IntValue(int64(sc.i))
	sc.row[1] = IntValue(int64(sc.snap.Seeds[sc.i]))
	sc.row[2] = IntValue(int64(infl))
	sc.i++
	return sc.row, true
}

// checkpointsSchema: one row per live checkpoint, ascending start order.
//
//	index  0-based position in the chain
//	start  the checkpoint's start action ID
//	value  the checkpoint oracle's current objective value
var checkpointsSchema = Schema{"index", "start", "value"}

type checkpointsScan struct {
	snap *sim.Snapshot
	i    int
	row  Row
}

// ScanCheckpoints returns the snapshot's live checkpoint chain as a
// relation with columns (index, start, value).
func ScanCheckpoints(s *sim.Snapshot) Relation {
	return &checkpointsScan{snap: s, row: make(Row, len(checkpointsSchema))}
}

func (sc *checkpointsScan) Schema() Schema { return checkpointsSchema }

func (sc *checkpointsScan) Next() (Row, bool) {
	if sc.i >= len(sc.snap.CheckpointStarts) {
		return nil, false
	}
	val := 0.0
	if sc.i < len(sc.snap.CheckpointValues) {
		val = sc.snap.CheckpointValues[sc.i]
	}
	sc.row[0] = IntValue(int64(sc.i))
	sc.row[1] = IntValue(int64(sc.snap.CheckpointStarts[sc.i]))
	sc.row[2] = FloatValue(val)
	sc.i++
	return sc.row, true
}

// influenceSchema: one row per (seed, influenced user) pair, flattening
// Snapshot.SeedInfluence in seed order.
//
//	seed  the influencing seed's user ID
//	user  one user the seed currently influences
var influenceSchema = Schema{"seed", "user"}

type influenceScan struct {
	snap *sim.Snapshot
	i, j int
	row  Row
}

// ScanInfluence returns the per-seed influence sets of the snapshot as a
// relation with columns (seed, user): the Set-Stream rows analytics join
// against seeds or aggregate with TopK.
func ScanInfluence(s *sim.Snapshot) Relation {
	return &influenceScan{snap: s, row: make(Row, len(influenceSchema))}
}

func (sc *influenceScan) Schema() Schema { return influenceSchema }

func (sc *influenceScan) Next() (Row, bool) {
	for sc.i < len(sc.snap.SeedInfluence) {
		si := sc.snap.SeedInfluence[sc.i]
		if sc.j < len(si.Influenced) {
			sc.row[0] = IntValue(int64(si.User))
			sc.row[1] = IntValue(int64(si.Influenced[sc.j]))
			sc.j++
			return sc.row, true
		}
		sc.i++
		sc.j = 0
	}
	return nil, false
}

// Window-compare sources: diff two snapshots of the same tracker (e.g. the
// serving layer's previous and current published snapshots, or two
// checkpoints' views). Both are bounded by K seeds / O(log N / β)
// checkpoints, so these sources precompute their handful of rows at
// construction; laziness buys nothing at that size.

// compareSeedsSchema: one row per user present in either snapshot's seeds.
//
//	user    the user ID
//	status  "kept" (in both), "added" (only new), "removed" (only old)
var compareSeedsSchema = Schema{"user", "status"}

// CompareSeeds diffs two snapshots' seed sets: rows for the new snapshot's
// seeds first (kept/added, in its seed order), then the old snapshot's
// dropped seeds (removed, in its order).
func CompareSeeds(old, cur *sim.Snapshot) Relation {
	inOld := make(map[sim.UserID]bool, len(old.Seeds))
	for _, u := range old.Seeds {
		inOld[u] = true
	}
	inCur := make(map[sim.UserID]bool, len(cur.Seeds))
	for _, u := range cur.Seeds {
		inCur[u] = true
	}
	rows := make([]Row, 0, len(cur.Seeds)+len(old.Seeds))
	for _, u := range cur.Seeds {
		status := "added"
		if inOld[u] {
			status = "kept"
		}
		rows = append(rows, Row{IntValue(int64(u)), StringValue(status)})
	}
	for _, u := range old.Seeds {
		if !inCur[u] {
			rows = append(rows, Row{IntValue(int64(u)), StringValue("removed")})
		}
	}
	return &sliceRelation{schema: compareSeedsSchema, rows: rows}
}

// compareCheckpointsSchema: one row per checkpoint start present in either
// snapshot, ascending start order.
//
//	user-visible columns:
//	start      the checkpoint's start action ID
//	status     "kept", "added" or "removed" (matched by start)
//	value_old  the old snapshot's value at that start (0 when absent)
//	value_new  the new snapshot's value at that start (0 when absent)
//	delta      value_new - value_old for kept checkpoints, 0 otherwise
var compareCheckpointsSchema = Schema{"start", "status", "value_old", "value_new", "delta"}

// CompareCheckpoints diffs two snapshots' checkpoint chains, matching
// checkpoints by start ID (both chains are ascending).
func CompareCheckpoints(old, cur *sim.Snapshot) Relation {
	var rows []Row
	i, j := 0, 0
	for i < len(old.CheckpointStarts) || j < len(cur.CheckpointStarts) {
		switch {
		case j >= len(cur.CheckpointStarts) ||
			(i < len(old.CheckpointStarts) && old.CheckpointStarts[i] < cur.CheckpointStarts[j]):
			rows = append(rows, Row{
				IntValue(int64(old.CheckpointStarts[i])), StringValue("removed"),
				FloatValue(old.CheckpointValues[i]), FloatValue(0), FloatValue(0),
			})
			i++
		case i >= len(old.CheckpointStarts) || cur.CheckpointStarts[j] < old.CheckpointStarts[i]:
			rows = append(rows, Row{
				IntValue(int64(cur.CheckpointStarts[j])), StringValue("added"),
				FloatValue(0), FloatValue(cur.CheckpointValues[j]), FloatValue(0),
			})
			j++
		default: // same start: kept
			rows = append(rows, Row{
				IntValue(int64(cur.CheckpointStarts[j])), StringValue("kept"),
				FloatValue(old.CheckpointValues[i]), FloatValue(cur.CheckpointValues[j]),
				FloatValue(cur.CheckpointValues[j] - old.CheckpointValues[i]),
			})
			i++
			j++
		}
	}
	return &sliceRelation{schema: compareCheckpointsSchema, rows: rows}
}

// sliceRelation serves precomputed rows (the compare sources and the eager
// reference evaluator's intermediates).
type sliceRelation struct {
	schema Schema
	rows   []Row
	i      int
}

func (s *sliceRelation) Schema() Schema { return s.schema }

func (s *sliceRelation) Next() (Row, bool) {
	if s.i >= len(s.rows) {
		return nil, false
	}
	r := s.rows[s.i]
	s.i++
	return r, true
}
