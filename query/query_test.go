package query

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/sim"
)

func TestValueCompareTotalOrder(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{IntValue(1), IntValue(2), -1},
		{IntValue(2), IntValue(2), 0},
		{IntValue(3), IntValue(2), 1},
		{IntValue(2), FloatValue(2.0), 0},  // cross-kind numeric
		{FloatValue(1.5), IntValue(2), -1}, // cross-kind numeric
		{FloatValue(2.5), FloatValue(2.5), 0},
		{StringValue("a"), StringValue("b"), -1},
		{StringValue("b"), StringValue("b"), 0},
		{IntValue(999), StringValue(""), -1}, // numerics before strings
		{StringValue("0"), IntValue(-5), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.b, c.a, got, -c.want)
		}
	}
}

func TestValueJSONRoundTrip(t *testing.T) {
	in := Row{IntValue(-7), FloatValue(2.25), StringValue(`he"llo`), FloatValue(3)}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if want := `[-7,2.25,"he\"llo",3]`; string(raw) != want {
		t.Fatalf("marshaled %s, want %s", raw, want)
	}
	var out Row
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	// 3.0 decodes as Int 3; comparisons are cross-kind so answers agree.
	if !out[0].Equal(in[0]) || !out[1].Equal(in[1]) || !out[2].Equal(in[2]) || !out[3].Equal(in[3]) {
		t.Fatalf("round-trip %v -> %v", in, out)
	}
	if out[3].Kind() != Int {
		t.Errorf("exact-integer JSON number decoded as %v, want Int", out[3].Kind())
	}
}

// fixedRel builds a test relation from literal rows.
func fixedRel(schema Schema, rows ...Row) Relation {
	return &sliceRelation{schema: schema, rows: rows}
}

func TestJoinColumnCollisionAndOrder(t *testing.T) {
	left := fixedRel(Schema{"user", "score"},
		Row{IntValue(1), IntValue(10)},
		Row{IntValue(2), IntValue(20)},
		Row{IntValue(1), IntValue(30)},
	)
	right := fixedRel(Schema{"id", "user"},
		Row{IntValue(100), IntValue(1)},
		Row{IntValue(200), FloatValue(1)}, // 1.0 joins with 1
		Row{IntValue(300), IntValue(3)},
	)
	j, err := Join(left, right, "user", "user")
	if err != nil {
		t.Fatal(err)
	}
	if want := (Schema{"user", "score", "id"}); !reflect.DeepEqual(j.Schema(), want) {
		t.Fatalf("join schema %v, want %v", j.Schema(), want)
	}
	rows, _ := Collect(j, 0)
	// user=2 has no right match; user=3 only exists on the right; 1.0
	// joins with 1 across kinds. Left order, then right order.
	want := []Row{
		{IntValue(1), IntValue(10), IntValue(100)},
		{IntValue(1), IntValue(10), IntValue(200)},
		{IntValue(1), IntValue(30), IntValue(100)},
		{IntValue(1), IntValue(30), IntValue(200)},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("join rows %v, want %v", rows, want)
	}

	// A right column colliding with a kept left column is renamed.
	right2 := fixedRel(Schema{"user", "score"}, Row{IntValue(1), IntValue(99)})
	j2, err := Join(left, right2, "user", "user")
	if err != nil {
		t.Fatal(err)
	}
	if want := (Schema{"user", "score", "right_score"}); !reflect.DeepEqual(j2.Schema(), want) {
		t.Fatalf("collision schema %v, want %v", j2.Schema(), want)
	}
}

func TestTopKStableAndBounded(t *testing.T) {
	in := fixedRel(Schema{"user", "v"},
		Row{IntValue(1), IntValue(5)},
		Row{IntValue(2), IntValue(9)},
		Row{IntValue(3), IntValue(5)},
		Row{IntValue(4), IntValue(1)},
		Row{IntValue(5), IntValue(9)},
		Row{IntValue(6), IntValue(5)},
	)
	tk, err := TopK(in, "v", 3, true)
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := Collect(tk, 0)
	// Best first; ties (the 9s, then the first 5) in input order.
	want := []Row{
		{IntValue(2), IntValue(9)},
		{IntValue(5), IntValue(9)},
		{IntValue(1), IntValue(5)},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("topk rows %v, want %v", rows, want)
	}

	// Ascending, k larger than the input.
	tk2, _ := TopK(fixedRel(Schema{"v"}, Row{IntValue(3)}, Row{IntValue(1)}), "v", 10, false)
	rows2, _ := Collect(tk2, 0)
	if want := []Row{{IntValue(1)}, {IntValue(3)}}; !reflect.DeepEqual(rows2, want) {
		t.Fatalf("asc topk rows %v, want %v", rows2, want)
	}
}

// TestPlanErrors pins the compile-time validation of bad plans: both the
// lazy and the reference evaluator must reject each one.
func TestPlanErrors(t *testing.T) {
	v := IntValue(1)
	bad := []Plan{
		{},                                    // no source
		{Scan: "nope"},                        // unknown scan
		{Compare: "nope"},                     // unknown compare
		{Scan: "seeds", Compare: "seeds"},     // both sources
		{Scan: "seeds", Ops: []Op{{Op: "?"}}}, // unknown op
		{Scan: "seeds", Ops: []Op{{Op: "filter", Col: "user"}}},                            // filter without value
		{Scan: "seeds", Ops: []Op{{Op: "filter", Col: "ghost", Value: &v}}},                // unknown column
		{Scan: "seeds", Ops: []Op{{Op: "filter", Col: "user", Cmp: "~", Value: &v}}},       // bad cmp
		{Scan: "seeds", Ops: []Op{{Op: "project"}}},                                        // project without cols
		{Scan: "seeds", Ops: []Op{{Op: "project", Cols: []string{"ghost"}}}},               // unknown column
		{Scan: "seeds", Ops: []Op{{Op: "join"}}},                                           // join without right/on
		{Scan: "seeds", Ops: []Op{{Op: "join", On: "user", Right: &Plan{Scan: "nope"}}}},   // bad subplan
		{Scan: "seeds", Ops: []Op{{Op: "join", On: "ghost", Right: &Plan{Scan: "seeds"}}}}, // unknown left col
		{Scan: "seeds", Ops: []Op{{Op: "topk", Col: "user"}}},                              // k <= 0
		{Scan: "seeds", Ops: []Op{{Op: "topk", Col: "ghost", K: 1}}},                       // unknown column
		{Scan: "seeds", Ops: []Op{{Op: "limit"}}},                                          // n <= 0
		{Scan: "seeds", Ops: []Op{{Op: "names"}}},                                          // no cols
		{Scan: "seeds", Ops: []Op{{Op: "names", Cols: []string{"ghost"}}}},                 // unknown column
	}
	snap := sim.Snapshot{}
	env := Env{Current: &snap}
	for i, p := range bad {
		p := p
		if _, err := p.Open(env); err == nil {
			t.Errorf("bad plan %d: Open accepted %+v", i, p)
		}
		if _, _, err := p.Materialize(env); err == nil {
			t.Errorf("bad plan %d: Materialize accepted %+v", i, p)
		}
	}
	if _, err := (&Plan{Scan: "seeds"}).Open(Env{}); err == nil {
		t.Error("Open without a snapshot should fail")
	}
}

// TestCompareWithoutPrevious pins the all-"kept" self-diff when no earlier
// snapshot exists yet.
func TestCompareWithoutPrevious(t *testing.T) {
	snap := sim.Snapshot{
		Seeds:            []sim.UserID{4, 9},
		SeedInfluence:    []sim.SeedInfluence{{User: 4, Influenced: []sim.UserID{1}}, {User: 9, Influenced: []sim.UserID{}}},
		CheckpointStarts: []sim.ActionID{1},
		CheckpointValues: []float64{2.5},
	}
	rel, err := (&Plan{Compare: "seeds"}).Open(Env{Current: &snap})
	if err != nil {
		t.Fatal(err)
	}
	rows, _ := Collect(rel, 0)
	want := []Row{
		{IntValue(4), StringValue("kept")},
		{IntValue(9), StringValue("kept")},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("self-diff rows %v, want %v", rows, want)
	}
}
