package query

import (
	"fmt"
	"sort"
	"strconv"
)

// Lazy operators. Each wraps an input Relation and pulls from it on demand;
// none materializes its input (Join materializes only its build side, TopK
// only its k-row heap).

type filterRel struct {
	in   Relation
	pred func(Row) bool
}

// Filter yields the input rows for which pred returns true. The predicate
// must not retain the row it is given.
func Filter(in Relation, pred func(Row) bool) Relation {
	return &filterRel{in: in, pred: pred}
}

func (f *filterRel) Schema() Schema { return f.in.Schema() }

func (f *filterRel) Next() (Row, bool) {
	for {
		r, ok := f.in.Next()
		if !ok {
			return nil, false
		}
		if f.pred(r) {
			return r, true
		}
	}
}

type projectRel struct {
	in  Relation
	idx []int
	out Schema
	row Row
}

// Project narrows and reorders columns. Unknown column names are an error.
func Project(in Relation, cols []string) (Relation, error) {
	s := in.Schema()
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := s.Col(c)
		if j < 0 {
			return nil, fmt.Errorf("query: project: unknown column %q (have %v)", c, []string(s))
		}
		idx[i] = j
	}
	return &projectRel{
		in:  in,
		idx: idx,
		out: Schema(cols).clone(),
		row: make(Row, len(cols)),
	}, nil
}

func (p *projectRel) Schema() Schema { return p.out }

func (p *projectRel) Next() (Row, bool) {
	r, ok := p.in.Next()
	if !ok {
		return nil, false
	}
	for i, j := range p.idx {
		p.row[i] = r[j]
	}
	return p.row, true
}

type joinRel struct {
	left     Relation
	right    Relation
	leftCol  int
	rightCol int
	out      Schema
	row      Row

	built   bool
	build   map[Value][]Row // right rows grouped by canonical join key
	curLeft Row             // current left row; valid until we pull left again
	matches []Row           // right rows matching curLeft
	mi      int
}

// Join equi-joins left and right on the named columns (hash join: the right
// side is drained into an in-memory table on first Next, the left side
// streams). Output columns are left's followed by right's minus its join
// column; a right column whose name collides with a left column is
// prefixed "right_". Output order is left order, with each left row's
// matches in right-input order.
func Join(left, right Relation, leftOn, rightOn string) (Relation, error) {
	ls, rs := left.Schema(), right.Schema()
	lc := ls.Col(leftOn)
	if lc < 0 {
		return nil, fmt.Errorf("query: join: unknown left column %q (have %v)", leftOn, []string(ls))
	}
	rc := rs.Col(rightOn)
	if rc < 0 {
		return nil, fmt.Errorf("query: join: unknown right column %q (have %v)", rightOn, []string(rs))
	}
	out := ls.clone()
	for i, c := range rs {
		if i == rc {
			continue
		}
		if out.Col(c) >= 0 {
			c = "right_" + c
		}
		out = append(out, c)
	}
	return &joinRel{
		left:     left,
		right:    right,
		leftCol:  lc,
		rightCol: rc,
		out:      out,
		row:      make(Row, len(out)),
	}, nil
}

func (j *joinRel) Schema() Schema { return j.out }

func (j *joinRel) buildTable() {
	j.build = make(map[Value][]Row)
	for {
		r, ok := j.right.Next()
		if !ok {
			break
		}
		k := r[j.rightCol].key()
		j.build[k] = append(j.build[k], r.Clone())
	}
	j.built = true
}

func (j *joinRel) Next() (Row, bool) {
	if !j.built {
		j.buildTable()
	}
	for {
		if j.mi < len(j.matches) {
			m := j.matches[j.mi]
			j.mi++
			n := copy(j.row, j.curLeft)
			for i, v := range m {
				if i == j.rightCol {
					continue
				}
				j.row[n] = v
				n++
			}
			return j.row, true
		}
		l, ok := j.left.Next()
		if !ok {
			return nil, false
		}
		// l stays valid until the next left.Next call, which only happens
		// after its matches are exhausted — no copy needed.
		j.curLeft = l
		j.matches = j.build[l[j.leftCol].key()]
		j.mi = 0
	}
}

type topkRel struct {
	in   Relation
	col  int
	k    int
	desc bool

	done    bool
	heap    []Row // binary heap; heap[0] is the worst kept row
	scratch Row   // candidate buffer for the replace phase
	out     []Row
	i       int
}

// TopK yields the k rows with the extreme values of the named column —
// largest when desc is true, smallest otherwise — in sorted output order.
// It drains its input through a bounded k-row heap, so it allocates O(k)
// rows no matter how many rows flow in, and never materializes the input.
// Ties are broken toward earlier input rows (the ordering is stable).
func TopK(in Relation, col string, k int, desc bool) (Relation, error) {
	c := in.Schema().Col(col)
	if c < 0 {
		return nil, fmt.Errorf("query: topk: unknown column %q (have %v)", col, []string(in.Schema()))
	}
	if k <= 0 {
		return nil, fmt.Errorf("query: topk: k must be positive, got %d", k)
	}
	return &topkRel{in: in, col: c, k: k, desc: desc}, nil
}

func (t *topkRel) Schema() Schema { return t.in.Schema() }

// Heap rows carry their input sequence number appended as one trailing Int
// cell while inside the heap, so ties resolve toward earlier input rows.

// worse reports whether a should be evicted before b: a's key is further
// from the kept extreme, or on equal keys a arrived later.
func (t *topkRel) worse(a, b Row) bool {
	c := a[t.col].Compare(b[t.col])
	if c != 0 {
		if t.desc {
			return c < 0
		}
		return c > 0
	}
	return a[len(a)-1].Int() > b[len(b)-1].Int()
}

func (t *topkRel) siftDown(i int) {
	n := len(t.heap)
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && t.worse(t.heap[l], t.heap[m]) {
			m = l
		}
		if r < n && t.worse(t.heap[r], t.heap[m]) {
			m = r
		}
		if m == i {
			return
		}
		t.heap[i], t.heap[m] = t.heap[m], t.heap[i]
		i = m
	}
}

func (t *topkRel) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.worse(t.heap[i], t.heap[p]) {
			return
		}
		t.heap[i], t.heap[p] = t.heap[p], t.heap[i]
		i = p
	}
}

func (t *topkRel) drain() {
	width := len(t.in.Schema())
	t.scratch = make(Row, width+1)
	var seq int64
	for {
		r, ok := t.in.Next()
		if !ok {
			break
		}
		if len(t.heap) < t.k {
			// Grow phase: one clone per kept row, with room for the seq tag.
			kept := make(Row, width+1)
			copy(kept, r)
			kept[width] = IntValue(seq)
			t.heap = append(t.heap, kept)
			t.siftUp(len(t.heap) - 1)
		} else {
			// Replace phase: compare via the reused scratch buffer and
			// overwrite the evicted row in place — zero allocations.
			copy(t.scratch, r)
			t.scratch[width] = IntValue(seq)
			if t.worse(t.heap[0], t.scratch) {
				copy(t.heap[0], t.scratch)
				t.siftDown(0)
			}
		}
		seq++
	}
	// Sort kept rows best-first, then strip the seq tags.
	t.out = t.heap
	sort.Slice(t.out, func(a, b int) bool { return t.worse(t.out[b], t.out[a]) })
	for i := range t.out {
		t.out[i] = t.out[i][:width]
	}
	t.done = true
}

func (t *topkRel) Next() (Row, bool) {
	if !t.done {
		t.drain()
	}
	if t.i >= len(t.out) {
		return nil, false
	}
	r := t.out[t.i]
	t.i++
	return r, true
}

type limitRel struct {
	in Relation
	n  int
}

// Limit yields at most n input rows.
func Limit(in Relation, n int) Relation {
	return &limitRel{in: in, n: n}
}

func (l *limitRel) Schema() Schema { return l.in.Schema() }

func (l *limitRel) Next() (Row, bool) {
	if l.n <= 0 {
		return nil, false
	}
	l.n--
	return l.in.Next()
}

type resolveRel struct {
	in   Relation
	idx  []int
	name func(uint32) (string, bool)
	row  Row
}

// Resolve rewrites the named integer columns to Str values via the name
// function (an intern table's Name method): external analytics see user
// names, not dense IDs. IDs the function cannot resolve — and trackers
// ingesting raw numeric IDs have no table at all — fall back to the
// decimal form of the ID. Non-Int cells pass through untouched.
func Resolve(in Relation, cols []string, name func(uint32) (string, bool)) (Relation, error) {
	s := in.Schema()
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := s.Col(c)
		if j < 0 {
			return nil, fmt.Errorf("query: names: unknown column %q (have %v)", c, []string(s))
		}
		idx[i] = j
	}
	return &resolveRel{in: in, idx: idx, name: name, row: make(Row, len(s))}, nil
}

func (r *resolveRel) Schema() Schema { return r.in.Schema() }

func (r *resolveRel) Next() (Row, bool) {
	in, ok := r.in.Next()
	if !ok {
		return nil, false
	}
	copy(r.row, in)
	for _, j := range r.idx {
		v := r.row[j]
		if v.Kind() != Int {
			continue
		}
		id := v.Int()
		if r.name != nil && id >= 0 && id <= int64(^uint32(0)) {
			if n, ok := r.name(uint32(id)); ok {
				r.row[j] = StringValue(n)
				continue
			}
		}
		r.row[j] = StringValue(strconv.FormatInt(id, 10))
	}
	return r.row, true
}
