package query

import (
	"fmt"

	"repro/sim"
)

// Plan is the JSON query language the serving layer accepts: a source plus a
// chain of operators applied top to bottom. Example:
//
//	{
//	  "scan": "influence",
//	  "ops": [
//	    {"op": "join", "on": "seed", "right": {"scan": "seeds"}, "right_on": "user"},
//	    {"op": "filter", "col": "influence", "cmp": ">=", "value": 2},
//	    {"op": "topk", "col": "influence", "k": 5, "desc": true},
//	    {"op": "project", "cols": ["seed", "user", "influence"]}
//	  ]
//	}
type Plan struct {
	// Scan names a snapshot source: "seeds", "checkpoints" or "influence".
	Scan string `json:"scan,omitempty"`
	// Compare names a window-compare source over the previous and current
	// snapshots: "seeds" or "checkpoints". Exactly one of Scan and Compare
	// must be set.
	Compare string `json:"compare,omitempty"`
	// Ops is the operator chain, applied in order.
	Ops []Op `json:"ops,omitempty"`
}

// Op is one operator application in a plan.
type Op struct {
	// Op selects the operator: "filter", "project", "join", "topk",
	// "limit" or "names".
	Op string `json:"op"`

	// Col is the column filter compares, topk orders by, or — together
	// with Cols — names resolves.
	Col string `json:"col,omitempty"`
	// Cmp is filter's comparison: one of == != < <= > >=.
	Cmp string `json:"cmp,omitempty"`
	// Value is filter's right-hand literal.
	Value *Value `json:"value,omitempty"`

	// Cols lists project's output columns, or names' columns to resolve.
	Cols []string `json:"cols,omitempty"`

	// K and Desc parameterize topk.
	K    int  `json:"k,omitempty"`
	Desc bool `json:"desc,omitempty"`

	// N parameterizes limit.
	N int `json:"n,omitempty"`

	// Right, On and RightOn parameterize join: Right is the build-side
	// subplan, On the left join column, RightOn the right one (defaults
	// to On).
	Right   *Plan  `json:"right,omitempty"`
	On      string `json:"on,omitempty"`
	RightOn string `json:"right_on,omitempty"`
}

// Env is everything a plan executes against: the tracker's current
// published snapshot, the previously published one (for compare sources),
// and an optional ID→name resolver for the "names" operator.
type Env struct {
	Current  *sim.Snapshot
	Previous *sim.Snapshot
	Name     func(uint32) (string, bool)
}

// Open compiles the plan against env into a lazy Relation. Compilation
// validates sources, operator names, column references and comparison
// operators; no rows flow until the caller pulls.
func (p *Plan) Open(env Env) (Relation, error) {
	if env.Current == nil {
		return nil, fmt.Errorf("query: no snapshot to query")
	}
	var rel Relation
	switch {
	case p.Scan != "" && p.Compare != "":
		return nil, fmt.Errorf("query: plan sets both scan %q and compare %q", p.Scan, p.Compare)
	case p.Scan != "":
		switch p.Scan {
		case "seeds":
			rel = ScanSeeds(env.Current)
		case "checkpoints":
			rel = ScanCheckpoints(env.Current)
		case "influence":
			rel = ScanInfluence(env.Current)
		default:
			return nil, fmt.Errorf("query: unknown scan %q (want seeds, checkpoints or influence)", p.Scan)
		}
	case p.Compare != "":
		prev := env.Previous
		if prev == nil {
			// No earlier snapshot published yet: compare the current
			// snapshot against itself, an all-"kept" diff.
			prev = env.Current
		}
		switch p.Compare {
		case "seeds":
			rel = CompareSeeds(prev, env.Current)
		case "checkpoints":
			rel = CompareCheckpoints(prev, env.Current)
		default:
			return nil, fmt.Errorf("query: unknown compare %q (want seeds or checkpoints)", p.Compare)
		}
	default:
		return nil, fmt.Errorf("query: plan needs a scan or compare source")
	}

	for i, op := range p.Ops {
		var err error
		rel, err = applyOp(rel, op, env)
		if err != nil {
			return nil, fmt.Errorf("query: op %d: %w", i, err)
		}
	}
	return rel, nil
}

func applyOp(in Relation, op Op, env Env) (Relation, error) {
	switch op.Op {
	case "filter":
		if op.Col == "" || op.Value == nil {
			return nil, fmt.Errorf("filter needs col and value")
		}
		c := in.Schema().Col(op.Col)
		if c < 0 {
			return nil, fmt.Errorf("filter: unknown column %q (have %v)", op.Col, []string(in.Schema()))
		}
		pred, err := comparator(op.Cmp, c, *op.Value)
		if err != nil {
			return nil, err
		}
		return Filter(in, pred), nil
	case "project":
		if len(op.Cols) == 0 {
			return nil, fmt.Errorf("project needs cols")
		}
		return Project(in, op.Cols)
	case "join":
		if op.Right == nil || op.On == "" {
			return nil, fmt.Errorf("join needs right and on")
		}
		right, err := op.Right.Open(env)
		if err != nil {
			return nil, fmt.Errorf("join right: %w", err)
		}
		rightOn := op.RightOn
		if rightOn == "" {
			rightOn = op.On
		}
		return Join(in, right, op.On, rightOn)
	case "topk":
		if op.Col == "" {
			return nil, fmt.Errorf("topk needs col")
		}
		return TopK(in, op.Col, op.K, op.Desc)
	case "limit":
		if op.N <= 0 {
			return nil, fmt.Errorf("limit needs positive n, got %d", op.N)
		}
		return Limit(in, op.N), nil
	case "names":
		cols := op.Cols
		if len(cols) == 0 && op.Col != "" {
			cols = []string{op.Col}
		}
		if len(cols) == 0 {
			return nil, fmt.Errorf("names needs cols (or col)")
		}
		return Resolve(in, cols, env.Name)
	default:
		return nil, fmt.Errorf("unknown op %q (want filter, project, join, topk, limit or names)", op.Op)
	}
}

// comparator builds filter's predicate for one of == != < <= > >=.
func comparator(cmp string, col int, rhs Value) (func(Row) bool, error) {
	switch cmp {
	case "==", "": // == is the default comparison
		return func(r Row) bool { return r[col].Compare(rhs) == 0 }, nil
	case "!=":
		return func(r Row) bool { return r[col].Compare(rhs) != 0 }, nil
	case "<":
		return func(r Row) bool { return r[col].Compare(rhs) < 0 }, nil
	case "<=":
		return func(r Row) bool { return r[col].Compare(rhs) <= 0 }, nil
	case ">":
		return func(r Row) bool { return r[col].Compare(rhs) > 0 }, nil
	case ">=":
		return func(r Row) bool { return r[col].Compare(rhs) >= 0 }, nil
	default:
		return nil, fmt.Errorf("filter: unknown cmp %q (want == != < <= > >=)", cmp)
	}
}
