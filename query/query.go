// Package query is the lazy relational query layer over sim.Snapshot: a
// pull-based iterator protocol (Relation) with composable operators — scans
// over a snapshot's seed set, checkpoint chain and per-seed influence sets,
// plus Filter, Project, Join, TopK, WindowCompare, Resolve and Limit — and a
// small JSON plan language (Plan) the serving layer executes per request.
//
// # Why lazy
//
// Operators pull rows one at a time and reuse row buffers, in the
// lazy-sequences style of streaming relational-algebra executors (cf.
// janus-datalog's "From Volcano to Lazy Sequences"): a pipeline like
// scan → filter → top-k touches every input row exactly once and
// materializes nothing but the k rows it keeps, so its allocation cost is
// O(k) — independent of snapshot size. The eager reference evaluator
// (Plan.Materialize) computes identical results by materializing every
// intermediate relation; it exists to pin correctness in tests and to
// quantify what laziness saves (internal/bench's query experiment).
//
// # Why snapshots
//
// Every source reads an immutable sim.Snapshot, never a live tracker. The
// serving layer publishes snapshots through an atomic pointer after each
// applied batch, so analytics pipelines of any cost run concurrently with
// ingestion without sharing a single lock — the HTAP separation of
// transactional write path and analytical read path (Polynesia-style)
// applied to stream influence maximization.
//
// # Row contract
//
// Relation.Next returns a Row that remains valid only until the next Next
// call on the same relation: operators overwrite returned rows to keep the
// hot path allocation-free. Consumers that retain rows must Clone them
// (Collect does).
package query

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind discriminates a Value.
type Kind uint8

const (
	// Int is a signed 64-bit integer (user IDs, ranks, counts, action IDs).
	Int Kind = iota
	// Float is a 64-bit float (influence values).
	Float
	// Str is a string (statuses, resolved user names).
	Str
)

// Value is one cell of a row: a small tagged union that holds ints, floats
// and strings without boxing, so moving rows through a pipeline performs no
// heap allocation.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// IntValue returns an Int value.
func IntValue(v int64) Value { return Value{kind: Int, i: v} }

// FloatValue returns a Float value.
func FloatValue(v float64) Value { return Value{kind: Float, f: v} }

// StringValue returns a Str value.
func StringValue(s string) Value { return Value{kind: Str, s: s} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// Int returns the value as an int64 (truncating a Float, 0 for a Str).
func (v Value) Int() int64 {
	if v.kind == Float {
		return int64(v.f)
	}
	return v.i
}

// Float returns the value as a float64 (converting an Int, NaN for a Str).
func (v Value) Float() float64 {
	switch v.kind {
	case Float:
		return v.f
	case Int:
		return float64(v.i)
	default:
		return math.NaN()
	}
}

// Str returns the string of a Str value ("" otherwise; use String for a
// printable form of any value).
func (v Value) Str() string {
	if v.kind == Str {
		return v.s
	}
	return ""
}

// String renders the value for humans.
func (v Value) String() string {
	switch v.kind {
	case Int:
		return strconv.FormatInt(v.i, 10)
	case Float:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return v.s
	}
}

// Compare totally orders values: numeric kinds (Int, Float) compare
// numerically against each other, strings compare lexically, and every
// numeric sorts before every string. Returns -1, 0 or 1.
func (v Value) Compare(o Value) int {
	vs, os := v.kind == Str, o.kind == Str
	switch {
	case vs && os:
		return strings.Compare(v.s, o.s)
	case vs:
		return 1
	case os:
		return -1
	case v.kind == Int && o.kind == Int:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	default:
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
}

// Equal reports Compare(o) == 0.
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// key canonicalizes the value for hashing (Join build keys): a Float that
// holds an exact integer maps to the equal Int, so 3 joins with 3.0.
func (v Value) key() Value {
	if v.kind == Float && v.f == math.Trunc(v.f) && !math.IsInf(v.f, 0) &&
		v.f >= math.MinInt64 && v.f <= math.MaxInt64 {
		return Value{kind: Int, i: int64(v.f)}
	}
	return v
}

// MarshalJSON encodes Int and Float as JSON numbers and Str as a JSON
// string — rows on the wire look like ordinary JSON arrays.
func (v Value) MarshalJSON() ([]byte, error) {
	switch v.kind {
	case Int:
		return strconv.AppendInt(nil, v.i, 10), nil
	case Float:
		if math.IsNaN(v.f) || math.IsInf(v.f, 0) {
			return nil, fmt.Errorf("query: %v is not representable in JSON", v.f)
		}
		return json.Marshal(v.f)
	default:
		return json.Marshal(v.s)
	}
}

// UnmarshalJSON decodes a JSON string into Str and a JSON number into Int
// when it is an exact integer, Float otherwise. (Comparisons are
// cross-kind-numeric, so the Int/Float choice never changes an answer.)
func (v *Value) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		*v = StringValue(s)
		return nil
	}
	if i, err := strconv.ParseInt(string(b), 10, 64); err == nil {
		*v = IntValue(i)
		return nil
	}
	var f float64
	if err := json.Unmarshal(b, &f); err != nil {
		return fmt.Errorf("query: bad value literal %s: %w", b, err)
	}
	*v = FloatValue(f)
	return nil
}

// Row is one tuple. See the package comment for the validity contract.
type Row []Value

// Clone returns a copy of the row with its own backing array.
func (r Row) Clone() Row {
	return append(make(Row, 0, len(r)), r...)
}

// Schema names a relation's columns, in row order.
type Schema []string

// Col returns the index of the named column, or -1.
func (s Schema) Col(name string) int {
	for i, c := range s {
		if c == name {
			return i
		}
	}
	return -1
}

// clone returns an independent copy of the schema.
func (s Schema) clone() Schema {
	return append(make(Schema, 0, len(s)), s...)
}

// Relation is the pull-based iterator protocol every source and operator
// implements. Schema is constant over the relation's lifetime and callable
// before the first Next. Next returns the next row and true, or nil and
// false once exhausted; the row is valid until the following Next call.
type Relation interface {
	Schema() Schema
	Next() (Row, bool)
}

// Collect drains rel into cloned rows, stopping after limit rows when limit
// is positive; truncated reports whether more rows remained.
func Collect(rel Relation, limit int) (rows []Row, truncated bool) {
	for {
		r, ok := rel.Next()
		if !ok {
			return rows, false
		}
		if limit > 0 && len(rows) == limit {
			return rows, true
		}
		rows = append(rows, r.Clone())
	}
}
