package query

import (
	"testing"

	"repro/sim"
)

// syntheticSnapshot builds a snapshot with seeds seed users, each
// influencing fan users — seeds*fan rows through ScanInfluence — without
// running a tracker, so benchmarks control input size exactly.
func syntheticSnapshot(seeds, fan int) *sim.Snapshot {
	s := &sim.Snapshot{
		Seeds:         make([]sim.UserID, seeds),
		SeedInfluence: make([]sim.SeedInfluence, seeds),
	}
	next := sim.UserID(seeds)
	for i := 0; i < seeds; i++ {
		s.Seeds[i] = sim.UserID(i)
		infl := make([]sim.UserID, fan)
		for j := range infl {
			infl[j] = next
			next++
		}
		s.SeedInfluence[i] = sim.SeedInfluence{User: sim.UserID(i), Influenced: infl}
	}
	return s
}

// topkPipeline is the benchmarked shape: scan all influence rows, keep the
// k largest user IDs. Returns the number of rows that flowed out.
func topkPipeline(snap *sim.Snapshot, k int) int {
	rel, err := (&Plan{
		Scan: "influence",
		Ops:  []Op{{Op: "topk", Col: "user", K: k, Desc: true}},
	}).Open(Env{Current: snap})
	if err != nil {
		panic(err)
	}
	n := 0
	for {
		if _, ok := rel.Next(); !ok {
			return n
		}
		n++
	}
}

// TestTopKAllocsBounded pins the O(k) allocation claim: the scan→topk
// pipeline's allocations are identical at 2 000 and 200 000 input rows.
// Laziness is what makes this hold — the eager reference evaluator's cost
// necessarily grows with the input (see BenchmarkQueryTopK).
func TestTopKAllocsBounded(t *testing.T) {
	const k = 10
	small := syntheticSnapshot(20, 100)   // 2 000 influence rows
	large := syntheticSnapshot(200, 1000) // 200 000 influence rows
	allocsAt := func(snap *sim.Snapshot) float64 {
		return testing.AllocsPerRun(10, func() {
			if n := topkPipeline(snap, k); n != k {
				t.Fatalf("pipeline yielded %d rows, want %d", n, k)
			}
		})
	}
	smallAllocs, largeAllocs := allocsAt(small), allocsAt(large)
	if largeAllocs != smallAllocs {
		t.Errorf("allocs grew with input size: %.0f at 2k rows, %.0f at 200k rows", smallAllocs, largeAllocs)
	}
	// The absolute bound: pipeline construction + k cloned heap rows + a
	// scratch row + the sort. Anything above 8*k signals a regression on
	// the zero-allocation replace path.
	if largeAllocs > 8*k {
		t.Errorf("pipeline allocates %.0f times for k=%d; want O(k), <= %d", largeAllocs, k, 8*k)
	}
}

// BenchmarkQueryTopK compares the lazy pipeline against the eager reference
// evaluator on the same scan→topk plan at 100k input rows. The lazy side's
// allocs/op stays flat in input size (see TestTopKAllocsBounded); the eager
// side materializes every scanned row first.
func BenchmarkQueryTopK(b *testing.B) {
	snap := syntheticSnapshot(100, 1000) // 100 000 influence rows
	plan := &Plan{
		Scan: "influence",
		Ops:  []Op{{Op: "topk", Col: "user", K: 10, Desc: true}},
	}
	env := Env{Current: snap}
	b.Run("lazy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if n := topkPipeline(snap, 10); n != 10 {
				b.Fatal("bad row count")
			}
		}
	})
	b.Run("materialize", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, rows, err := plan.Materialize(env)
			if err != nil || len(rows) != 10 {
				b.Fatalf("rows=%d err=%v", len(rows), err)
			}
		}
	})
}

// BenchmarkQueryJoin measures the join-heavy plan shape the serving docs
// advertise: influence ⋈ seeds, filtered and cut to the top 5.
func BenchmarkQueryJoin(b *testing.B) {
	snap := syntheticSnapshot(50, 400) // 20 000 influence rows
	v := IntValue(int64(50))
	plan := &Plan{
		Scan: "influence",
		Ops: []Op{
			{Op: "join", On: "seed", Right: &Plan{Scan: "seeds"}, RightOn: "user"},
			{Op: "filter", Col: "user", Cmp: ">=", Value: &v},
			{Op: "topk", Col: "user", K: 5, Desc: true},
		},
	}
	env := Env{Current: snap}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rel, err := plan.Open(env)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, ok := rel.Next(); !ok {
				break
			}
			n++
		}
		if n != 5 {
			b.Fatalf("got %d rows", n)
		}
	}
}
