// Command simgen generates synthetic social action streams in the formats
// consumed by simtrack: TSV ("id<TAB>user<TAB>parent", parent = -1 for
// roots) or the compact SIM1 binary format.
//
// Usage:
//
//	simgen -preset twitter -users 10000 -actions 100000 > twitter.tsv
//	simgen -preset syn-o -window 20000 -seed 7 -format binary -out syn.bin
//
// Presets: reddit, twitter, syn-o, syn-n (see DESIGN.md §4 for how each
// relates to the paper's datasets).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/dataio"
	"repro/internal/gen"
)

func main() {
	var (
		preset  = flag.String("preset", "twitter", "dataset preset: reddit, twitter, syn-o, syn-n")
		users   = flag.Int("users", 20000, "user universe size |U|")
		actions = flag.Int("actions", 100000, "stream length")
		window  = flag.Int("window", 10000, "window size N the stream is scaled for")
		seed    = flag.Int64("seed", 1, "random seed")
		format  = flag.String("format", "tsv", "output format: tsv or binary")
		out     = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	var cfg gen.Config
	switch *preset {
	case "reddit":
		cfg = gen.RedditLike(*users, *actions, *window, *seed)
	case "twitter":
		cfg = gen.TwitterLike(*users, *actions, *window, *seed)
	case "syn-o":
		cfg = gen.SynO(*users, *actions, *window, *seed)
	case "syn-n":
		cfg = gen.SynN(*users, *actions, *window, *seed)
	default:
		fmt.Fprintf(os.Stderr, "simgen: unknown preset %q\n", *preset)
		os.Exit(2)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	stream := gen.Stream(cfg)
	var err error
	switch *format {
	case "tsv":
		err = dataio.WriteTSV(w, stream)
	case "binary":
		err = dataio.WriteBinary(w, stream)
	default:
		fmt.Fprintf(os.Stderr, "simgen: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simgen: %v\n", err)
		os.Exit(1)
	}
}
