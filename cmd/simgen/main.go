// Command simgen generates synthetic social action streams in the formats
// consumed by simtrack and simserve: TSV ("id<TAB>user<TAB>parent", parent
// = -1 for roots), the compact SIM1 binary format, or NDJSON (the simserve
// ingest body format).
//
// Usage:
//
//	simgen -preset twitter -users 10000 -actions 100000 > twitter.tsv
//	simgen -preset syn-o -window 20000 -seed 7 -format binary -out syn.bin
//	simgen -preset syn-o -actions 50000 -format ndjson -out syn.ndjson
//
// With -post, simgen becomes a load generator: instead of writing a file it
// POSTs the stream as NDJSON chunks to a running simserve instance and
// reports the achieved ingest rate —
//
//	simserve -addr :8384 -k 10 -window 50000 &
//	simgen -preset syn-o -actions 100000 -post http://localhost:8384/v1/trackers/default/actions
//
// Presets: reddit, twitter, syn-o, syn-n (see DESIGN.md §4 for how each
// relates to the paper's datasets).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"repro/internal/dataio"
	"repro/internal/gen"
	"repro/internal/stream"
)

func main() {
	var (
		preset  = flag.String("preset", "twitter", "dataset preset: reddit, twitter, syn-o, syn-n")
		users   = flag.Int("users", 20000, "user universe size |U|")
		actions = flag.Int("actions", 100000, "stream length")
		window  = flag.Int("window", 10000, "window size N the stream is scaled for")
		seed    = flag.Int64("seed", 1, "random seed")
		format  = flag.String("format", "tsv", "output format: tsv, binary or ndjson")
		out     = flag.String("out", "", "output path (default stdout)")
		post    = flag.String("post", "", "load-generator mode: POST the stream as NDJSON chunks to this simserve ingest URL instead of writing it")
		chunk   = flag.Int("chunk", 1000, "actions per POST in -post mode")
	)
	flag.Parse()

	var cfg gen.Config
	switch *preset {
	case "reddit":
		cfg = gen.RedditLike(*users, *actions, *window, *seed)
	case "twitter":
		cfg = gen.TwitterLike(*users, *actions, *window, *seed)
	case "syn-o":
		cfg = gen.SynO(*users, *actions, *window, *seed)
	case "syn-n":
		cfg = gen.SynN(*users, *actions, *window, *seed)
	default:
		fmt.Fprintf(os.Stderr, "simgen: unknown preset %q\n", *preset)
		os.Exit(2)
	}

	actionsOut := gen.Stream(cfg)

	if *post != "" {
		if err := drive(*post, actionsOut, *chunk); err != nil {
			fmt.Fprintf(os.Stderr, "simgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simgen: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	var err error
	switch *format {
	case "tsv":
		err = dataio.WriteTSV(w, actionsOut)
	case "binary":
		err = dataio.WriteBinary(w, actionsOut)
	case "ndjson":
		err = dataio.WriteNDJSON(w, actionsOut)
	default:
		fmt.Fprintf(os.Stderr, "simgen: unknown format %q\n", *format)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simgen: %v\n", err)
		os.Exit(1)
	}
}

// drive is the load-generator mode: POST the stream to a simserve ingest
// endpoint in NDJSON chunks and report the end-to-end ingest rate.
func drive(url string, actions []stream.Action, chunk int) error {
	if chunk < 1 {
		chunk = 1
	}
	client := &http.Client{Timeout: 60 * time.Second}
	start := time.Now()
	var buf bytes.Buffer
	for i := 0; i < len(actions); i += chunk {
		end := min(i+chunk, len(actions))
		buf.Reset()
		if err := dataio.WriteNDJSON(&buf, actions[i:end]); err != nil {
			return err
		}
		resp, err := client.Post(url, "application/x-ndjson", &buf)
		if err != nil {
			return fmt.Errorf("chunk at %d: %w", i, err)
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("chunk at %d: status %d: %s", i, resp.StatusCode, bytes.TrimSpace(body))
		}
	}
	elapsed := time.Since(start)
	rate := float64(len(actions)) / elapsed.Seconds()
	fmt.Printf("posted %d actions in %d chunks over %v (%.0f actions/s)\n",
		len(actions), (len(actions)+chunk-1)/chunk, elapsed.Round(time.Millisecond), rate)
	return nil
}
