package main

import (
	"fmt"

	"repro/api"
)

// validateSpec rejects tracker configurations whose durability guarantees
// do not hold. The one known hazard: sim-level batching (batch > 1)
// combined with a data dir. WAL recovery replays logged batches through the
// same ingestion path as live traffic, but a batched tracker buffers
// actions internally and flushes on its own schedule — after a crash the
// replayed flush boundaries can differ from the live ones, so the recovered
// answer sequence is only guaranteed identical at batch=1. The
// -unsafe-batch-recovery flag overrides the check for operators who accept
// approximate recovery in exchange for batched-ingest throughput.
//
// It also refuses a memory budget that has nowhere to spill: the budget
// only means something with a spill directory (-spill-dir, or implicitly
// <data-dir>/<name>/spill on a durable server).
func validateSpec(name string, sp api.Spec, durable, spill, unsafeBatchRecovery bool) error {
	if durable && sp.Batch > 1 && !unsafeBatchRecovery {
		return fmt.Errorf(
			"tracker %q: batch=%d with -data-dir: recovery is only batch-for-batch identical at batch=1; set batch to 1 or pass -unsafe-batch-recovery to accept approximate recovery",
			name, sp.Batch)
	}
	if sp.MemoryBudgetBytes < 0 {
		return fmt.Errorf("tracker %q: memory_budget_bytes must be >= 0, got %d", name, sp.MemoryBudgetBytes)
	}
	if sp.MemoryBudgetBytes > 0 && !durable && !spill {
		return fmt.Errorf(
			"tracker %q: memory_budget_bytes=%d needs a spill directory: pass -spill-dir (or -data-dir, which spills under the tracker's data directory)",
			name, sp.MemoryBudgetBytes)
	}
	return nil
}
