package main

import (
	"strings"
	"testing"

	"repro/api"
)

// TestValidateSpecBatchDurability pins the startup guard of ISSUE 6: a
// durable tracker with sim-level batching must be rejected unless the
// operator explicitly opts into approximate recovery.
func TestValidateSpecBatchDurability(t *testing.T) {
	cases := []struct {
		name    string
		batch   int
		durable bool
		unsafe  bool
		wantErr bool
	}{
		{"memory-only batched", 8, false, false, false},
		{"durable unbatched", 0, true, false, false},
		{"durable batch=1", 1, true, false, false},
		{"durable batched", 8, true, false, true},
		{"durable batched, escape hatch", 8, true, true, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp := api.Spec{K: 5, Window: 100, Batch: c.batch}
			err := validateSpec("default", sp, c.durable, c.unsafe)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateSpec(batch=%d durable=%v unsafe=%v) = %v, wantErr=%v",
					c.batch, c.durable, c.unsafe, err, c.wantErr)
			}
			if err != nil && !strings.Contains(err.Error(), "unsafe-batch-recovery") {
				t.Errorf("error %q does not point at the escape hatch", err)
			}
		})
	}
}
