package main

import (
	"strings"
	"testing"

	"repro/api"
)

// TestValidateSpecBatchDurability pins the startup guard of ISSUE 6: a
// durable tracker with sim-level batching must be rejected unless the
// operator explicitly opts into approximate recovery.
func TestValidateSpecBatchDurability(t *testing.T) {
	cases := []struct {
		name    string
		batch   int
		durable bool
		unsafe  bool
		wantErr bool
	}{
		{"memory-only batched", 8, false, false, false},
		{"durable unbatched", 0, true, false, false},
		{"durable batch=1", 1, true, false, false},
		{"durable batched", 8, true, false, true},
		{"durable batched, escape hatch", 8, true, true, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp := api.Spec{K: 5, Window: 100, Batch: c.batch}
			err := validateSpec("default", sp, c.durable, false, c.unsafe)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateSpec(batch=%d durable=%v unsafe=%v) = %v, wantErr=%v",
					c.batch, c.durable, c.unsafe, err, c.wantErr)
			}
			if err != nil && !strings.Contains(err.Error(), "unsafe-batch-recovery") {
				t.Errorf("error %q does not point at the escape hatch", err)
			}
		})
	}
}

// TestValidateSpecMemoryBudget pins the spill-directory guard: a memory
// budget is only accepted when the tracker has somewhere to spill.
func TestValidateSpecMemoryBudget(t *testing.T) {
	cases := []struct {
		name     string
		budget   int64
		durable  bool
		spill    bool
		wantErr  bool
		wantHint string
	}{
		{"no budget", 0, false, false, false, ""},
		{"budget, nowhere to spill", 1 << 20, false, false, true, "spill-dir"},
		{"budget with spill dir", 1 << 20, false, true, false, ""},
		{"budget with data dir", 1 << 20, true, false, false, ""},
		{"negative budget", -1, true, true, true, "memory_budget_bytes"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sp := api.Spec{K: 5, Window: 100, MemoryBudgetBytes: c.budget}
			err := validateSpec("default", sp, c.durable, c.spill, false)
			if (err != nil) != c.wantErr {
				t.Fatalf("validateSpec(budget=%d durable=%v spill=%v) = %v, wantErr=%v",
					c.budget, c.durable, c.spill, err, c.wantErr)
			}
			if err != nil && !strings.Contains(err.Error(), c.wantHint) {
				t.Errorf("error %q does not mention %q", err, c.wantHint)
			}
		})
	}
}
