// Command simserve runs the long-lived SIM serving layer: one or more named
// trackers behind an HTTP API that ingests NDJSON actions and answers
// influence queries while the stream keeps flowing (internal/server).
//
// A single tracker from flags:
//
//	simserve -addr :8384 -k 10 -window 50000
//
// or several from a JSON spec:
//
//	simserve -spec trackers.json
//	# {"trackers": {"default": {"k": 10, "window": 50000},
//	#               "fast":    {"k": 5, "window": 10000, "oracle": "threshold"}}}
//
// Ingest and query over HTTP:
//
//	simgen -preset syn-o -actions 100000 -format ndjson |
//	    curl -s --data-binary @- localhost:8384/v1/trackers/default/actions
//	curl -s localhost:8384/v1/trackers/default/seeds
//	curl -s localhost:8384/metrics
//
// -replay feeds a recorded stream (TSV, SIM1 binary or NDJSON; "-" for
// stdin) through the same ingest path at startup; -follow keeps tailing the
// file for appended actions, turning a growing log into a live feed.
//
// -data-dir enables durability: each tracker keeps a SIM2 snapshot plus a
// write-ahead log under <dir>/<name>/, appends every applied batch to the
// log (fsynced) before acknowledging it, and periodically snapshots and
// truncates. On boot, trackers restore the latest snapshot and replay the
// WAL tail, so even a kill -9 mid-ingest loses no acknowledged action:
//
//	simserve -addr :8384 -k 10 -window 50000 -data-dir /var/lib/simserve
//
// (Re-running -replay of a static file against a recovered tracker will
// report stream-order conflicts: those actions are already ingested.)
//
// On SIGTERM/SIGINT the server shuts the listener down, stops the replay
// follower, drains every tracker's ingest queue, takes a final snapshot of
// durable trackers, and only then exits — no accepted action is lost.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/api"
	"repro/internal/dataio"
	"repro/internal/fault"
	"repro/internal/server"
	"repro/sim"
)

func main() {
	var (
		addr      = flag.String("addr", ":8384", "HTTP listen address")
		spec      = flag.String("spec", "", "JSON tracker spec file (overrides the single-tracker flags)")
		name      = flag.String("name", "default", "tracker name for the flag-built tracker")
		k         = flag.Int("k", 10, "seed budget k")
		window    = flag.Int("window", 50000, "window size N")
		slide     = flag.Int("slide", 1, "slide length L")
		beta      = flag.Float64("beta", 0.1, "beta knob")
		framework = flag.String("framework", "sic", "framework: sic or ic")
		orc       = flag.String("oracle", "sieve", "oracle: sieve, threshold, blogwatch, mkc")
		par       = flag.Int("parallelism", 0, "checkpoint-shard worker width (1 = serial, -1 = GOMAXPROCS)")
		batch     = flag.Int("batch", 0, "sim ingestion batch size (1 = per-action)")
		users     = flag.Int("users", 0, "expected distinct users (stream index pre-sizing hint)")
		queue     = flag.Int("queue", 0, "ingest queue capacity in batches (0 = default 256)")
		replay    = flag.String("replay", "", "replay a stream file (TSV/SIM1/NDJSON, \"-\" = stdin) into the flag-built tracker")
		follow    = flag.Bool("follow", false, "keep tailing the -replay file for appended actions")
		chunk     = flag.Int("replay-chunk", 512, "actions per replay ingest batch")
		dataDir   = flag.String("data-dir", "", "durability root: per-tracker snapshot + write-ahead log under <dir>/<name>/; on boot, trackers recover their state from it")
		snapBytes = flag.Int64("wal-snapshot-bytes", 0, "WAL size triggering snapshot+truncate for the flag-built tracker (0 = default 4 MiB)")
		spillDir  = flag.String("spill-dir", "", "cold-tier root: per-tracker spilled segment files under <dir>/<name>/ (default with -data-dir: <data-dir>/<name>/spill)")
		memBudget = flag.Int64("memory-budget", 0, "resident contribution-log byte budget for the flag-built tracker; past it, idle users' logs spill to the cold tier (0 = never spill; needs -spill-dir or -data-dir)")
		names     = flag.Bool("names", false, "name-mode tracker: NDJSON \"user\" fields are string names, interned to dense IDs")
		unsafeRec = flag.Bool("unsafe-batch-recovery", false, "allow batch > 1 together with -data-dir even though crash recovery is only batch-for-batch identical at batch=1")
		faultSpec = flag.String("fault", "", "TESTING ONLY: inject filesystem faults into the durable path; semicolon-separated rules like op=sync,path=wal.log,after=2,times=1,err=ENOSPC (see internal/fault)")
		faultSeed = flag.Int64("fault-seed", 0, "TESTING ONLY: derive one deterministic fault rule from this seed (non-zero; composes with -fault)")
		version   = flag.Bool("version", false, "print build/version info and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("simserve %s (%s, %s/%s)\n", server.Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}

	reg := server.NewRegistry()
	if *faultSpec != "" || *faultSeed != 0 {
		inj := fault.NewInjector(fault.OS())
		if *faultSpec != "" {
			rules, err := fault.ParseRules(*faultSpec)
			if err != nil {
				fatalf("%v", err)
			}
			for _, r := range rules {
				inj.Add(r)
				log.Printf("fault armed: %s", r.String())
			}
		}
		if *faultSeed != 0 {
			r := fault.FromSeed(*faultSeed)
			inj.Add(r)
			log.Printf("fault armed (seed %d): %s", *faultSeed, r.String())
		}
		reg.SetFS(inj)
	}
	if *dataDir != "" {
		reg.SetDataDir(*dataDir)
	}
	if *spillDir != "" {
		reg.SetSpillDir(*spillDir)
	}
	replayTarget := *name
	if *spec != "" {
		f, err := os.Open(*spec)
		if err != nil {
			fatalf("%v", err)
		}
		specs, err := api.ReadSpecs(f)
		f.Close()
		if err != nil {
			fatalf("%v", err)
		}
		for sname, sp := range specs {
			// A spec whose durability guarantees don't hold is refused, not
			// fatal: the server keeps serving its other trackers, /v1/healthz
			// reports the name and reason under "refused", and requests to
			// the refused tracker answer 503 with the same reason.
			if err := validateSpec(sname, sp, *dataDir != "", *spillDir != "", *unsafeRec); err != nil {
				reg.Refuse(sname, err.Error())
				log.Printf("tracker %q refused (serving degraded): %v", sname, err)
				continue
			}
			t, err := reg.Add(sname, sp)
			if err != nil {
				fatalf("%v", err)
			}
			log.Printf("tracker %q: k=%d window=%d framework=%v oracle=%v", sname, sp.K, sp.Window, sp.Framework, sp.Oracle)
			logRecovery(t)
		}
	} else {
		fwk, err := sim.ParseFramework(*framework)
		if err != nil {
			fatalf("%v", err)
		}
		o, err := sim.ParseOracle(*orc)
		if err != nil {
			fatalf("%v", err)
		}
		sp := api.Spec{
			K: *k, Window: *window, Slide: *slide, Beta: *beta,
			Framework: fwk, Oracle: o,
			Parallelism: *par, Batch: *batch, ExpectedUsers: *users, Queue: *queue,
			SnapshotWALBytes: *snapBytes, Names: *names,
			MemoryBudgetBytes: *memBudget,
		}
		if err := validateSpec(*name, sp, *dataDir != "", *spillDir != "", *unsafeRec); err != nil {
			reg.Refuse(*name, err.Error())
			log.Printf("tracker %q refused (serving degraded): %v", *name, err)
		} else {
			t, err := reg.Add(*name, sp)
			if err != nil {
				fatalf("%v", err)
			}
			log.Printf("tracker %q: k=%d window=%d framework=%v oracle=%v", *name, *k, *window, fwk, o)
			logRecovery(t)
		}
	}

	srv := server.New(reg)
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	replayDone := make(chan error, 1)
	if *replay != "" {
		t, ok := reg.Get(replayTarget)
		if !ok {
			if reason, refused := reg.RefusedReason(replayTarget); refused {
				fatalf("-replay targets tracker %q, refused at startup: %s", replayTarget, reason)
			}
			fatalf("-replay targets unknown tracker %q", replayTarget)
		}
		go func() { replayDone <- runReplay(ctx, t, *replay, *follow, *chunk) }()
	} else {
		replayDone <- nil
	}

	httpDone := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		httpDone <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Printf("signal received, draining")
	case err := <-httpDone:
		fatalf("http: %v", err)
	}

	// Graceful drain: stop accepting connections and let in-flight requests
	// finish, stop the replay follower, then drain every ingest queue.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if err := <-replayDone; err != nil && !errors.Is(err, context.Canceled) {
		log.Printf("replay: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("drain: %v", err)
	}
	for _, n := range reg.Names() {
		if t, ok := reg.Get(n); ok {
			snap := t.Snapshot()
			log.Printf("tracker %q: processed=%d value=%g seeds=%v", n, snap.Processed, snap.Value, snap.Seeds)
		}
	}
}

// logRecovery reports what a durable tracker restored at boot.
func logRecovery(t *server.Tracked) {
	info, durable := t.Recovery()
	if !durable {
		return
	}
	snap := t.Snapshot()
	log.Printf("tracker %q: recovered processed=%d (snapshot: loaded=%v processed=%d; wal: %d batches, %d actions)",
		t.Name(), snap.Processed, info.SnapshotLoaded, info.SnapshotProcessed, info.WALBatches, info.WALActions)
}

// runReplay streams a recorded action log into t through the same bounded
// ingest queue the HTTP path uses, in chunks of chunkSize. With follow, the
// reader keeps tailing the file for appended bytes until ctx is canceled,
// and a partially filled chunk is flushed whenever the feed goes idle so
// served answers never lag a paused producer. The final flush runs even
// after ctx cancellation (drain semantics: whatever was read is fed before
// the tracker shuts down — main closes the registry only after runReplay
// returns).
func runReplay(ctx context.Context, t *server.Tracked, path string, follow bool, chunkSize int) error {
	if chunkSize < 1 {
		chunkSize = 1
	}
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	batch := make([]sim.Action, 0, chunkSize)
	count := 0
	flush := func(fctx context.Context) error {
		if len(batch) == 0 {
			return nil
		}
		for {
			_, err := t.Submit(fctx, batch)
			if err == nil {
				batch = batch[:0]
				return nil
			}
			if errors.Is(err, server.ErrOverloaded) {
				// Admission control shed the batch: the replay producer is
				// exactly the kind of bulk feeder that should yield to live
				// HTTP traffic, not die. Back off and resubmit.
				select {
				case <-fctx.Done():
				case <-time.After(100 * time.Millisecond):
					continue
				}
			}
			// Keep the batch: a cancellation-aborted submit is retried by
			// the final context.Background() drain flush.
			return fmt.Errorf("after %d actions: %w", count, err)
		}
	}
	if follow {
		// onIdle runs on this goroutine, between decoder Read calls, so it
		// may safely flush the partial chunk accumulated so far.
		r = &tailReader{ctx: ctx, r: r, poll: 200 * time.Millisecond,
			onIdle: func() error { return flush(ctx) }}
	}
	var subErr error
	err := dataio.ReadAuto(r, func(a sim.Action) bool {
		batch = append(batch, a)
		count++
		if len(batch) >= chunkSize {
			if subErr = flush(ctx); subErr != nil {
				return false
			}
		}
		return true
	})
	if subErr != nil && !errors.Is(subErr, context.Canceled) {
		// A real ingest error (bad IDs, closed tracker): the kept batch
		// would only fail again, so report it. Cancellation instead falls
		// through to the drain flush below.
		return subErr
	}
	if err != nil {
		return err
	}
	// Deliberately not ctx: a SIGTERM that ended a -follow tail (or aborted
	// a mid-stream flush) must not drop the last partial chunk on the floor.
	if err := flush(context.Background()); err != nil {
		return err
	}
	log.Printf("replay: fed %d actions from %s", count, path)
	return nil
}

// tailReader turns EOF into "wait for more": on underlying EOF it invokes
// onIdle (flushing replay's partial chunk), then sleeps and retries until
// its context is canceled, at which point it reports EOF for real. This is
// what makes -follow a live file feed.
type tailReader struct {
	ctx    context.Context
	r      io.Reader
	poll   time.Duration
	onIdle func() error
}

func (t *tailReader) Read(p []byte) (int, error) {
	for {
		n, err := t.r.Read(p)
		if n > 0 || (err != nil && err != io.EOF) {
			return n, err
		}
		if t.onIdle != nil {
			if err := t.onIdle(); err != nil {
				return 0, io.EOF // surface via replay's final flush path
			}
		}
		select {
		case <-t.ctx.Done():
			return 0, io.EOF
		case <-time.After(t.poll):
		}
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "simserve: "+format+"\n", args...)
	os.Exit(1)
}
