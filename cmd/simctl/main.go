// Command simctl is a thin operational CLI over the typed api.Client: every
// subcommand maps to one /v1 endpoint and prints the response as JSON, so
// shell pipelines (and scripts/serve_smoke.sh) exercise the exact same
// client path as embedded Go callers.
//
//	simctl -addr http://localhost:8384 health
//	simctl list
//	simctl seeds default
//	simgen -preset syn-o -actions 1000 -format ndjson | simctl ingest default -
//	echo '{"plan":{"scan":"seeds","ops":[{"op":"topk","col":"influence","k":3,"desc":true}]}}' |
//	    simctl query default -
//	simctl influence default 42
//
// Non-2xx responses exit 1 and print the server's error envelope (message +
// HTTP status) on stderr, so smoke scripts can assert the error contract.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/api"
	"repro/internal/dataio"
	"repro/query"
	"repro/sim"
)

const usage = `usage: simctl [-addr URL] [-names] [-router] [-timeout D] [-retries N] <command> [args]

commands:
  health                     GET /v1/healthz (cluster-shaped with -router)
  list                       GET /v1/trackers
  snapshot <tracker>         GET /v1/trackers/{name}
  seeds <tracker>            GET /v1/trackers/{name}/seeds
  value <tracker>            GET /v1/trackers/{name}/value
  checkpoints <tracker>      GET /v1/trackers/{name}/checkpoints
  stats <tracker>            GET /v1/trackers/{name}/stats
  metrics <tracker>          GET /v1/trackers/{name}/metrics (state + self-healing counters)
  influence <tracker> <user> GET /v1/trackers/{name}/influence (user: ID, or name with -names)
  candidates <tracker>       GET /v1/trackers/{name}/candidates (shard-local seed pool)
  ingest <tracker> <file>    POST NDJSON actions ("-" = stdin; string users with -names)
  query <tracker> <file>     POST a JSON plan ("-" = stdin; bare plan or {"plan":...,"limit":N})

-router points -addr at a simrouter instead of a simserve: health decodes
the cluster DTO (per-shard reachability), every other command is unchanged —
the router serves the same routes and merges across its shards.
`

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8384", "simserve base URL")
	names := flag.Bool("names", false, `name-mode tracker: ingest NDJSON "user" fields are string names`)
	router := flag.Bool("router", false, "addr is a simrouter: decode cluster-shaped health")
	timeout := flag.Duration("timeout", 0, "per-attempt request timeout (0 = client default 30s)")
	retries := flag.Int("retries", 0, "retry attempts after 429/503 (and transport errors on reads)")
	flag.Usage = func() { fmt.Fprint(os.Stderr, usage) }
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	client := api.NewClient(*addr)
	client.Timeout = *timeout
	client.Retry = api.RetryPolicy{MaxRetries: *retries}
	ctx := context.Background()

	out, err := run(ctx, client, *names, *router, args[0], args[1:])
	if err != nil {
		var apiErr *api.Error
		if errors.As(err, &apiErr) {
			fmt.Fprintf(os.Stderr, "simctl: %s\n", apiErr)
		} else {
			fmt.Fprintf(os.Stderr, "simctl: %v\n", err)
		}
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintf(os.Stderr, "simctl: %v\n", err)
		os.Exit(1)
	}
}

// run dispatches one subcommand and returns the decoded response to print.
func run(ctx context.Context, c *api.Client, names, router bool, cmd string, args []string) (any, error) {
	tracker := func() (string, error) {
		if len(args) < 1 {
			return "", fmt.Errorf("%s: missing tracker name", cmd)
		}
		return args[0], nil
	}
	switch cmd {
	case "health":
		if router {
			return c.ClusterHealth(ctx)
		}
		return c.Health(ctx)
	case "list":
		return c.List(ctx)
	case "snapshot":
		t, err := tracker()
		if err != nil {
			return nil, err
		}
		return c.Snapshot(ctx, t)
	case "seeds":
		t, err := tracker()
		if err != nil {
			return nil, err
		}
		return c.Seeds(ctx, t)
	case "value":
		t, err := tracker()
		if err != nil {
			return nil, err
		}
		return c.Value(ctx, t)
	case "checkpoints":
		t, err := tracker()
		if err != nil {
			return nil, err
		}
		return c.Checkpoints(ctx, t)
	case "stats":
		t, err := tracker()
		if err != nil {
			return nil, err
		}
		return c.Stats(ctx, t)
	case "metrics":
		t, err := tracker()
		if err != nil {
			return nil, err
		}
		return c.TrackerMetrics(ctx, t)
	case "candidates":
		t, err := tracker()
		if err != nil {
			return nil, err
		}
		return c.Candidates(ctx, t)
	case "influence":
		t, err := tracker()
		if err != nil {
			return nil, err
		}
		if len(args) < 2 {
			return nil, fmt.Errorf("influence: missing user")
		}
		return c.Influence(ctx, t, args[1])
	case "ingest":
		t, err := tracker()
		if err != nil {
			return nil, err
		}
		r, closeFn, err := openArg(args, 1)
		if err != nil {
			return nil, err
		}
		defer closeFn()
		return ingest(ctx, c, t, names, r)
	case "query":
		t, err := tracker()
		if err != nil {
			return nil, err
		}
		r, closeFn, err := openArg(args, 1)
		if err != nil {
			return nil, err
		}
		defer closeFn()
		req, err := readQueryRequest(r)
		if err != nil {
			return nil, err
		}
		return c.Query(ctx, t, req)
	default:
		return nil, fmt.Errorf("unknown command %q (run simctl -h)", cmd)
	}
}

// openArg opens the file argument at position i, with "-" or absence
// meaning stdin.
func openArg(args []string, i int) (io.Reader, func(), error) {
	if len(args) <= i || args[i] == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(args[i])
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// ingest decodes the NDJSON stream client-side (mirroring the server's
// strict parsing, so errors name the offending record before any bytes hit
// the wire) and submits it as one batch.
func ingest(ctx context.Context, c *api.Client, tracker string, names bool, r io.Reader) (api.IngestResponse, error) {
	if names {
		var batch []api.NamedAction
		err := dataio.ReadNDJSONNamed(r, func(a dataio.NamedAction) bool {
			batch = append(batch, api.NamedAction{ID: a.ID, User: a.User, Parent: a.Parent})
			return true
		})
		if err != nil {
			return api.IngestResponse{}, err
		}
		return c.IngestNamed(ctx, tracker, batch)
	}
	var batch []sim.Action
	err := dataio.ReadNDJSON(r, func(a sim.Action) bool {
		batch = append(batch, a)
		return true
	})
	if err != nil {
		return api.IngestResponse{}, err
	}
	return c.Ingest(ctx, tracker, batch)
}

// readQueryRequest accepts either the full {"plan": ..., "limit": N}
// envelope or a bare plan object.
func readQueryRequest(r io.Reader) (api.QueryRequest, error) {
	raw, err := io.ReadAll(io.LimitReader(r, 1<<20))
	if err != nil {
		return api.QueryRequest{}, err
	}
	var req api.QueryRequest
	if err := strictUnmarshal(raw, &req); err == nil {
		return req, nil
	}
	var plan query.Plan
	if err := strictUnmarshal(raw, &plan); err != nil {
		return api.QueryRequest{}, fmt.Errorf("query: body is neither a request envelope nor a plan: %w", err)
	}
	return api.QueryRequest{Plan: plan}, nil
}

func strictUnmarshal(raw []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}
