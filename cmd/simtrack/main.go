// Command simtrack runs a continuous SIM query over an action stream and
// periodically reports the current influential users — the end-to-end tool a
// practitioner would run against a live feed.
//
// Input is either the TSV format "id<TAB>user<TAB>parent" (parent −1 for
// roots) or the SIM1 binary format, both as produced by simgen, read from a
// file or stdin (format auto-detected):
//
//	simgen -preset twitter | simtrack -k 10 -window 50000 -report 25000
//	simtrack -in twitter.bin -framework ic -oracle threshold
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/dataio"
	"repro/sim"
)

func main() {
	var (
		in        = flag.String("in", "", "input stream file, TSV or SIM1 binary (default stdin)")
		k         = flag.Int("k", 10, "seed budget k")
		window    = flag.Int("window", 50000, "window size N")
		slide     = flag.Int("slide", 1, "slide length L")
		beta      = flag.Float64("beta", 0.1, "beta knob")
		framework = flag.String("framework", "sic", "framework: sic or ic")
		orc       = flag.String("oracle", "sieve", "oracle: sieve, threshold, blogwatch, mkc")
		report    = flag.Int64("report", 10000, "report every this many actions")
	)
	flag.Parse()

	cfg := sim.Config{K: *k, WindowSize: *window, Slide: *slide, Beta: *beta}
	switch *framework {
	case "sic":
		cfg.Framework = sim.SIC
	case "ic":
		cfg.Framework = sim.IC
	default:
		fatalf("unknown framework %q", *framework)
	}
	switch *orc {
	case "sieve":
		cfg.Oracle = sim.SieveStreaming
	case "threshold":
		cfg.Oracle = sim.ThresholdStream
	case "blogwatch":
		cfg.Oracle = sim.BlogWatch
	case "mkc":
		cfg.Oracle = sim.MkC
	default:
		fatalf("unknown oracle %q", *orc)
	}
	tr, err := sim.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		r = f
	}

	start := time.Now()
	var count int64
	var procErr error
	err = dataio.ReadAuto(r, func(a sim.Action) bool {
		if procErr = tr.Process(a); procErr != nil {
			return false
		}
		count++
		if count%*report == 0 {
			st := tr.Stats()
			rate := float64(count) / time.Since(start).Seconds() / 1000
			fmt.Printf("t=%-10d value=%-8.1f checkpoints=%-4d rate=%.1fK/s seeds=%v\n",
				a.ID, tr.Value(), st.Checkpoints, rate, tr.Seeds())
		}
		return true
	})
	if err != nil {
		fatalf("%v", err)
	}
	if procErr != nil {
		fatalf("%v", procErr)
	}
	fmt.Printf("final: processed=%d value=%.1f seeds=%v\n", count, tr.Value(), tr.Seeds())
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "simtrack: "+format+"\n", args...)
	os.Exit(1)
}
