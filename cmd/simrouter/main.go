// Command simrouter is the scatter-gather front of a sharded simserve
// fleet (internal/router): it partitions NDJSON ingest across shards by
// consistent hash of the acting user and serves the single-server tracker
// routes by merging shard answers — additive merges for
// value/stats/checkpoints, one exact greedy re-score over shard candidate
// pools for /seeds, plan pushdown with router-side topk/limit for /query.
//
//	simserve -addr :8401 -k 10 -window 50000 &
//	simserve -addr :8402 -k 10 -window 50000 &
//	simrouter -addr :8400 -shards http://127.0.0.1:8401,http://127.0.0.1:8402
//
//	simgen -preset syn-o -actions 100000 -format ndjson |
//	    curl -s --data-binary @- localhost:8400/v1/trackers/default/actions
//	simctl -addr http://localhost:8400 -router health   # per-shard view
//	simctl -addr http://localhost:8400 seeds default    # merged answer
//
// Every shard must serve the same tracker specs (start them from one spec
// file). When a shard dies the router marks it down, answers reads from
// the survivors with the X-Partial: true header and the DTO Partial flag,
// and re-probes in the background until the shard returns; ingest that
// needs a down shard is refused (503, retryable) rather than
// half-applied.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	var (
		addr    = flag.String("addr", ":8400", "HTTP listen address")
		shards  = flag.String("shards", "", "comma-separated shard base URLs (required), e.g. http://127.0.0.1:8401,http://127.0.0.1:8402")
		retries = flag.Int("retries", 2, "per-shard retry attempts after 429/503 (and transport errors on reads)")
		timeout = flag.Duration("timeout", 10*time.Second, "per-shard attempt timeout")
		probe   = flag.Duration("probe-interval", time.Second, "down-shard re-probe interval")
		maxBody = flag.Int64("max-body-bytes", 0, "ingest body cap in bytes (0 = default 64 MiB)")
		version = flag.Bool("version", false, "print build/version info and exit")
	)
	flag.Parse()

	if *version {
		fmt.Printf("simrouter %s (%s, %s/%s)\n", router.Version, runtime.Version(), runtime.GOOS, runtime.GOARCH)
		return
	}

	var addrs []string
	for _, a := range strings.Split(*shards, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "simrouter: -shards is required (comma-separated shard base URLs)")
		os.Exit(2)
	}

	rt, err := router.New(addrs, router.Options{
		Retries:       *retries,
		Timeout:       *timeout,
		ProbeInterval: *probe,
		MaxBodyBytes:  *maxBody,
	})
	if err != nil {
		log.Fatalf("simrouter: %v", err)
	}
	log.Printf("%s over %d shards: %s", rt.Ring().Describe(), len(addrs), strings.Join(addrs, ", "))

	httpSrv := &http.Server{Addr: *addr, Handler: rt}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	httpDone := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		httpDone <- httpSrv.ListenAndServe()
	}()

	select {
	case <-ctx.Done():
		log.Printf("signal received, draining")
	case err := <-httpDone:
		log.Fatalf("simrouter: http: %v", err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	rt.Close()
}
