// Command simbench regenerates every table and figure of the paper's
// evaluation section at laptop scale.
//
// Usage:
//
//	simbench                       # run everything at the default scale
//	simbench -exp fig5,fig7        # run selected experiments
//	simbench -scale smoke          # fast pass (seconds, coarser numbers)
//	simbench -window 20000 -k 50   # override individual sizes
//	simbench -exp par              # parallel/batched ingestion scaling
//	simbench -parallelism 4 -batch 100 -exp fig7   # sharded engine for any run
//	simbench -exp tput,par -json BENCH.json        # machine-readable snapshot
//
// Experiment IDs: table2 table3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// par (checkpoint-sharded ingestion scaling) and tput (hot-path ns/allocs/B
// per action), both extensions beyond the paper. -json writes every run's
// metrics as a Snapshot (see internal/bench.WriteJSON), the format committed
// as BENCH_<PR>.json to track performance across PRs.
// See DESIGN.md §5 for the mapping from each ID to the paper's artefact and
// EXPERIMENTS.md for recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		scale   = flag.String("scale", "default", "base scale: 'default' or 'smoke'")
		users   = flag.Int("users", 0, "override user count |U|")
		stream  = flag.Int("stream", 0, "override stream length")
		window  = flag.Int("window", 0, "override window size N")
		slide   = flag.Int("slide", 0, "override slide length L")
		k       = flag.Int("k", 0, "override seed budget k")
		beta    = flag.Float64("beta", 0, "override default beta")
		mc      = flag.Int("mc", 0, "override Monte-Carlo rounds")
		samples = flag.Int("samples", 0, "override quality sample count")
		seed    = flag.Int64("seed", 0, "override random seed")
		par     = flag.Int("parallelism", 0, "checkpoint-shard worker width for streaming runs (1 = serial, -1 = GOMAXPROCS)")
		batch   = flag.Int("batch", 0, "ingestion batch size for streaming runs (1 = per-action)")
		jsonOut = flag.String("json", "", "write a machine-readable benchmark snapshot (ns/op, allocs/op, B/op, actions/sec per experiment) to this file")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var sc bench.Scale
	switch *scale {
	case "default":
		sc = bench.ScaleDefault()
	case "smoke":
		sc = bench.ScaleSmoke()
	default:
		fmt.Fprintf(os.Stderr, "simbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *users > 0 {
		sc.Users = *users
	}
	if *stream > 0 {
		sc.StreamLen = *stream
	}
	if *window > 0 {
		sc.Window = *window
	}
	if *slide > 0 {
		sc.Slide = *slide
	}
	if *k > 0 {
		sc.K = *k
	}
	if *beta > 0 {
		sc.Beta = *beta
	}
	if *mc > 0 {
		sc.MCRounds = *mc
	}
	if *samples > 0 {
		sc.Samples = *samples
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *par != 0 {
		// Negative values flow through to sim.New, which maps them to
		// GOMAXPROCS.
		sc.Parallelism = *par
	}
	if *batch > 0 {
		sc.BatchSize = *batch
	}

	var ids []string
	if *exps == "all" {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		ids = strings.Split(*exps, ",")
	}

	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		if err := bench.RunMeasured(id, sc, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[%s finished in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}
		werr := bench.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "simbench: writing %s: %v\n", *jsonOut, werr)
			os.Exit(1)
		}
		fmt.Printf("[benchmark snapshot written to %s]\n", *jsonOut)
	}
}
