// Command simbench regenerates every table and figure of the paper's
// evaluation section at laptop scale.
//
// Usage:
//
//	simbench                       # run everything at the default scale
//	simbench -exp fig5,fig7        # run selected experiments
//	simbench -scale smoke          # fast pass (seconds, coarser numbers)
//	simbench -window 20000 -k 50   # override individual sizes
//	simbench -exp par              # parallel/batched ingestion scaling
//	simbench -parallelism 4 -batch 100 -exp fig7   # sharded engine for any run
//	simbench -exp tput,par -json BENCH.json        # machine-readable snapshot
//
// Experiment IDs: table2 table3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// par (checkpoint-sharded ingestion scaling), tput (hot-path ns/allocs/B
// per action) and query (lazy relational operators vs the materialized
// reference), all extensions beyond the paper. -json writes every run's
// metrics as a Snapshot (see internal/bench.WriteJSON), the format committed
// as BENCH_<PR>.json to track performance across PRs.
// See DESIGN.md §5 for the mapping from each ID to the paper's artefact and
// EXPERIMENTS.md for recorded paper-vs-measured results.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exps    = flag.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		scale   = flag.String("scale", "default", "base scale: 'default' or 'smoke'")
		users   = flag.Int("users", 0, "override user count |U|")
		stream  = flag.Int("stream", 0, "override stream length")
		window  = flag.Int("window", 0, "override window size N")
		slide   = flag.Int("slide", 0, "override slide length L")
		k       = flag.Int("k", 0, "override seed budget k")
		beta    = flag.Float64("beta", 0, "override default beta")
		mc      = flag.Int("mc", 0, "override Monte-Carlo rounds")
		samples = flag.Int("samples", 0, "override quality sample count")
		seed    = flag.Int64("seed", 0, "override random seed")
		par     = flag.Int("parallelism", 0, "checkpoint-shard worker width for streaming runs (1 = serial, -1 = GOMAXPROCS)")
		batch   = flag.Int("batch", 0, "ingestion batch size for streaming runs (1 = per-action)")
		jsonOut = flag.String("json", "", "write a machine-readable benchmark snapshot (ns/op, allocs/op, B/op, actions/sec per experiment) to this file")
		check   = flag.String("check", "", "compare this run against a baseline BENCH_<PR>.json and exit 1 on regression (the CI bench guard)")
		allocT  = flag.Float64("check-allocs-tol", bench.DefaultAllocTolerance, "allowed fractional allocs/op growth over the -check baseline")
		nsT     = flag.Float64("check-ns-tol", bench.DefaultNsTolerance, "allowed fractional ns/op growth over the -check baseline (loose: wall time is noisy on shared runners)")
		retries = flag.Int("check-retries", 2, "on a -check regression, rerun the experiments up to this many times and keep each record's best (min ns/op) before the final verdict — filters one-sided scheduler noise on shared runners")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var sc bench.Scale
	switch *scale {
	case "default":
		sc = bench.ScaleDefault()
	case "smoke":
		sc = bench.ScaleSmoke()
	default:
		fmt.Fprintf(os.Stderr, "simbench: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *users > 0 {
		sc.Users = *users
	}
	if *stream > 0 {
		sc.StreamLen = *stream
	}
	if *window > 0 {
		sc.Window = *window
	}
	if *slide > 0 {
		sc.Slide = *slide
	}
	if *k > 0 {
		sc.K = *k
	}
	if *beta > 0 {
		sc.Beta = *beta
	}
	if *mc > 0 {
		sc.MCRounds = *mc
	}
	if *samples > 0 {
		sc.Samples = *samples
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	if *par != 0 {
		// Negative values flow through to sim.New, which maps them to
		// GOMAXPROCS.
		sc.Parallelism = *par
	}
	if *batch > 0 {
		sc.BatchSize = *batch
	}

	var ids []string
	if *exps == "all" {
		for _, e := range bench.Experiments() {
			ids = append(ids, e.ID)
		}
	} else {
		// Trim in place: ids is reused verbatim by the -check retry loop.
		ids = strings.Split(*exps, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}

	for _, id := range ids {
		start := time.Now()
		if err := bench.RunMeasured(id, sc, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[%s finished in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}

	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}
		werr := bench.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "simbench: writing %s: %v\n", *jsonOut, werr)
			os.Exit(1)
		}
		fmt.Printf("[benchmark snapshot written to %s]\n", *jsonOut)
	}

	if *check != "" {
		base, err := bench.ReadSnapshotFile(*check)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
			os.Exit(1)
		}
		fresh := bench.Snapshot{Records: bench.Metrics()}
		regs, matched := bench.CompareSnapshots(base, fresh, *allocT, *nsT)
		if matched == 0 {
			fmt.Fprintf(os.Stderr, "simbench: -check matched no records against %s (wrong -exp/-scale for this baseline?)\n", *check)
			os.Exit(1)
		}
		// Wall-clock regressions on a shared 1-CPU runner are usually the
		// scheduler, not the code: rerun and keep each record's best before
		// concluding anything. Allocation regressions are deterministic and
		// survive the retries, so they still fail.
		for try := 1; len(regs) > 0 && try <= *retries; try++ {
			fmt.Printf("[bench check: %d regression(s), retry %d/%d to filter runner noise]\n", len(regs), try, *retries)
			bench.ResetMetrics()
			for _, id := range ids {
				if err := bench.RunMeasured(id, sc, io.Discard); err != nil {
					fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
					os.Exit(1)
				}
			}
			fresh.Records = bench.MergeMin(fresh.Records, bench.Metrics())
			regs, _ = bench.CompareSnapshots(base, fresh, *allocT, *nsT)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "simbench: %d regression(s) against %s (allocs tol %.0f%%, ns tol %.0f%%):\n",
				len(regs), *check, *allocT*100, *nsT*100)
			for _, r := range regs {
				fmt.Fprintf(os.Stderr, "  %s\n", r)
			}
			os.Exit(1)
		}
		fmt.Printf("[bench check OK: %d records within tolerance of %s]\n", matched, *check)
	}
}
