package sim_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/sim"
)

// TestSaveLoadRoundTripIdentity is the acceptance matrix of the durable
// tracker contract: for every generated dataset, both frameworks (IC and
// SIC) and both window modes (sequence- and time-based), interrupting a run
// at an arbitrary mid-stream point with SaveTo, reconstructing with Load
// and finishing the stream yields Seeds, Value and CheckpointStarts
// bit-identical to a run that was never interrupted — checked at every
// slide boundary of the remainder, plus the cumulative Stats at the end.
// Run under -race in CI.
func TestSaveLoadRoundTripIdentity(t *testing.T) {
	const (
		window = 700
		slide  = 50
		k      = 6
	)
	for _, ds := range identityDatasets() {
		for _, fw := range []sim.Framework{sim.SIC, sim.IC} {
			for _, byTime := range []bool{false, true} {
				name := fmt.Sprintf("%s/%v/byTime=%v", ds.name, fw, byTime)
				t.Run(name, func(t *testing.T) {
					cfg := sim.Config{
						K: k, WindowSize: window, Slide: slide, Beta: 0.1,
						Framework: fw, TimeBased: byTime,
					}
					ref, err := sim.New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					defer ref.Close()

					// A deliberately awkward cut: mid-slide, mid-window.
					cut := len(ds.actions)*2/3 + 7
					interrupted, err := sim.New(cfg)
					if err != nil {
						t.Fatal(err)
					}
					for _, a := range ds.actions[:cut] {
						if err := ref.Process(a); err != nil {
							t.Fatal(err)
						}
						if err := interrupted.Process(a); err != nil {
							t.Fatal(err)
						}
					}

					var snap bytes.Buffer
					if err := interrupted.SaveTo(&snap); err != nil {
						t.Fatalf("SaveTo: %v", err)
					}
					if err := interrupted.Close(); err != nil {
						t.Fatalf("Close: %v", err)
					}
					resumed, err := sim.Load(bytes.NewReader(snap.Bytes()), cfg)
					if err != nil {
						t.Fatalf("Load: %v", err)
					}
					defer resumed.Close()

					if got, want := resumed.Processed(), ref.Processed(); got != want {
						t.Fatalf("restored Processed = %d, want %d", got, want)
					}
					if got, want := resumed.LastID(), ref.LastID(); got != want {
						t.Fatalf("restored LastID = %d, want %d", got, want)
					}
					for i, a := range ds.actions[cut:] {
						if err := ref.Process(a); err != nil {
							t.Fatal(err)
						}
						if err := resumed.Process(a); err != nil {
							t.Fatal(err)
						}
						if (cut+i+1)%slide != 0 {
							continue
						}
						if v, rv := resumed.Value(), ref.Value(); v != rv {
							t.Fatalf("action %d: resumed value %v != uninterrupted %v", cut+i+1, v, rv)
						}
						if s, rs := resumed.Seeds(), ref.Seeds(); !reflect.DeepEqual(s, rs) {
							t.Fatalf("action %d: resumed seeds %v != uninterrupted %v", cut+i+1, s, rs)
						}
						if c, rc := resumed.CheckpointStarts(), ref.CheckpointStarts(); !reflect.DeepEqual(c, rc) {
							t.Fatalf("action %d: resumed checkpoints %v != uninterrupted %v", cut+i+1, c, rc)
						}
					}
					if st, rst := resumed.Stats(), ref.Stats(); st != rst {
						t.Fatalf("final stats diverge: resumed %+v, uninterrupted %+v", st, rst)
					}
					if v, rv := resumed.CheckpointValues(), ref.CheckpointValues(); !reflect.DeepEqual(v, rv) {
						t.Fatalf("final checkpoint values diverge: %v vs %v", v, rv)
					}
				})
			}
		}
	}
}

// TestSaveLoadAcrossRuntimeKnobs pins that Parallelism and BatchSize are
// runtime knobs of the snapshot contract: a snapshot from a serial tracker
// loads into a parallel one (and vice versa) and — for parallelism, which
// is bit-identical by design — continues identically.
func TestSaveLoadAcrossRuntimeKnobs(t *testing.T) {
	ds := identityDatasets()[2] // SYN-O
	base := sim.Config{K: 6, WindowSize: 700, Slide: 50, Beta: 0.1}
	cut := len(ds.actions) / 2

	ref, err := sim.New(base)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	saver, err := sim.New(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range ds.actions[:cut] {
		if err := ref.Process(a); err != nil {
			t.Fatal(err)
		}
		if err := saver.Process(a); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := saver.SaveTo(&snap); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	if err := saver.Close(); err != nil {
		t.Fatal(err)
	}

	wide := base
	wide.Parallelism = 4
	resumed, err := sim.Load(bytes.NewReader(snap.Bytes()), wide)
	if err != nil {
		t.Fatalf("Load with Parallelism=4: %v", err)
	}
	defer resumed.Close()
	for _, a := range ds.actions[cut:] {
		if err := ref.Process(a); err != nil {
			t.Fatal(err)
		}
		if err := resumed.Process(a); err != nil {
			t.Fatal(err)
		}
	}
	if v, rv := resumed.Value(), ref.Value(); v != rv {
		t.Fatalf("parallel-resumed value %v != serial %v", v, rv)
	}
	if s, rs := resumed.Seeds(), ref.Seeds(); !reflect.DeepEqual(s, rs) {
		t.Fatalf("parallel-resumed seeds %v != serial %v", s, rs)
	}
}

// TestSaveToFlushesBatchBuffer asserts a SaveTo mid-batch covers every
// Processed action: the buffered tail is flushed into the snapshot, not
// dropped.
func TestSaveLoadBatchedTracker(t *testing.T) {
	ds := identityDatasets()[0]
	cfg := sim.Config{K: 5, WindowSize: 500, Slide: 25, Beta: 0.1, BatchSize: 64}
	tr, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cut := 777 // deliberately not a multiple of BatchSize
	for _, a := range ds.actions[:cut] {
		if err := tr.Process(a); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := tr.SaveTo(&snap); err != nil {
		t.Fatalf("SaveTo: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	resumed, err := sim.Load(bytes.NewReader(snap.Bytes()), cfg)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer resumed.Close()
	if got := resumed.Processed(); got != int64(cut) {
		t.Fatalf("restored Processed = %d, want %d (batch buffer lost?)", got, cut)
	}
	for _, a := range ds.actions[cut:] {
		if err := resumed.Process(a); err != nil {
			t.Fatal(err)
		}
	}
	if got := resumed.Processed(); got != int64(len(ds.actions)) {
		t.Fatalf("final Processed = %d, want %d", got, len(ds.actions))
	}
}

// TestLoadRejectsMismatchedConfig asserts the snapshot's configuration echo
// guards against loading state under a different query definition.
func TestLoadRejectsMismatchedConfig(t *testing.T) {
	ds := identityDatasets()[0]
	cfg := sim.Config{K: 5, WindowSize: 500, Slide: 25, Beta: 0.1}
	tr, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for _, a := range ds.actions[:300] {
		if err := tr.Process(a); err != nil {
			t.Fatal(err)
		}
	}
	var snap bytes.Buffer
	if err := tr.SaveTo(&snap); err != nil {
		t.Fatal(err)
	}

	mutations := []struct {
		name   string
		mutate func(*sim.Config)
		want   string
	}{
		{"K", func(c *sim.Config) { c.K = 6 }, "K"},
		{"WindowSize", func(c *sim.Config) { c.WindowSize = 600 }, "WindowSize"},
		{"Slide", func(c *sim.Config) { c.Slide = 50 }, "Slide"},
		{"Beta", func(c *sim.Config) { c.Beta = 0.2 }, "Beta"},
		{"Framework", func(c *sim.Config) { c.Framework = sim.IC }, "Framework"},
		{"Oracle", func(c *sim.Config) { c.Oracle = sim.ThresholdStream }, "Oracle"},
		{"TimeBased", func(c *sim.Config) { c.TimeBased = true }, "TimeBased"},
		{"Weights", func(c *sim.Config) { c.Weights = sim.Cardinality{} }, "weights"},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			bad := cfg
			m.mutate(&bad)
			_, err := sim.Load(bytes.NewReader(snap.Bytes()), bad)
			if err == nil {
				t.Fatalf("Load with mutated %s succeeded", m.name)
			}
			if !strings.Contains(err.Error(), m.want) {
				t.Fatalf("error does not mention %q: %v", m.want, err)
			}
		})
	}

	// The unmutated config still loads.
	if _, err := sim.Load(bytes.NewReader(snap.Bytes()), cfg); err != nil {
		t.Fatalf("Load with matching config: %v", err)
	}
}

// TestLoadRejectsGarbage pins the error surface on non-snapshot input.
func TestLoadRejectsGarbage(t *testing.T) {
	cfg := sim.Config{K: 5, WindowSize: 500}
	if _, err := sim.Load(strings.NewReader("not a snapshot at all"), cfg); err == nil {
		t.Fatal("garbage input accepted")
	}
	if _, err := sim.Load(strings.NewReader(""), cfg); err == nil {
		t.Fatal("empty input accepted")
	}
}

// TestSaveLoadFreshTracker round-trips a tracker that has processed
// nothing: the degenerate snapshot must load and then ingest normally.
func TestSaveLoadFreshTracker(t *testing.T) {
	cfg := sim.Config{K: 3, WindowSize: 100}
	tr, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := tr.SaveTo(&snap); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	resumed, err := sim.Load(bytes.NewReader(snap.Bytes()), cfg)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	defer resumed.Close()
	if err := resumed.Process(sim.Action{ID: 1, User: 2, Parent: sim.NoParent}); err != nil {
		t.Fatalf("Process after fresh-tracker load: %v", err)
	}
	if got := resumed.Processed(); got != 1 {
		t.Fatalf("Processed = %d, want 1", got)
	}
}
