package sim_test

import (
	"math/rand"
	"sort"
	"testing"

	"repro/sim"
)

func paperStream() []sim.Action {
	return []sim.Action{
		{ID: 1, User: 1, Parent: sim.NoParent},
		{ID: 2, User: 2, Parent: 1},
		{ID: 3, User: 3, Parent: sim.NoParent},
		{ID: 4, User: 3, Parent: 1},
		{ID: 5, User: 4, Parent: 3},
		{ID: 6, User: 1, Parent: 3},
		{ID: 7, User: 5, Parent: 3},
		{ID: 8, User: 4, Parent: 7},
		{ID: 9, User: 2, Parent: sim.NoParent},
		{ID: 10, User: 6, Parent: 9},
	}
}

func TestQuickstartFlow(t *testing.T) {
	tr, err := sim.New(sim.Config{K: 2, WindowSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ProcessAll(paperStream()); err != nil {
		t.Fatal(err)
	}
	if got := len(tr.Seeds()); got == 0 || got > 2 {
		t.Fatalf("seeds = %v", tr.Seeds())
	}
	if tr.Value() <= 0 || tr.Value() > 6 {
		t.Fatalf("value = %v, want in (0, 6]", tr.Value())
	}
	if tr.Processed() != 10 {
		t.Fatalf("processed = %d, want 10", tr.Processed())
	}
}

func TestDefaultsApplied(t *testing.T) {
	tr, err := sim.New(sim.Config{K: 1, WindowSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Framework != sim.SIC || st.Oracle != sim.SieveStreaming {
		t.Fatalf("defaults: %+v", st)
	}
}

func TestConfigErrors(t *testing.T) {
	cases := []sim.Config{
		{K: 0, WindowSize: 4},
		{K: 1, WindowSize: 0},
		{K: 1, WindowSize: 4, Beta: -0.5},
		{K: 1, WindowSize: 4, Beta: 2},
		{K: 1, WindowSize: 4, Oracle: sim.Oracle(9)},
		{K: 1, WindowSize: 4, Slide: 9},
	}
	for i, cfg := range cases {
		if _, err := sim.New(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
}

func TestAllOraclesAndFrameworksRun(t *testing.T) {
	actions := randomActions(7, 500, 25)
	for _, fw := range []sim.Framework{sim.SIC, sim.IC} {
		for _, o := range []sim.Oracle{sim.SieveStreaming, sim.ThresholdStream, sim.BlogWatch, sim.MkC} {
			tr, err := sim.New(sim.Config{K: 5, WindowSize: 100, Framework: fw, Oracle: o, Beta: 0.2})
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.ProcessAll(actions); err != nil {
				t.Fatalf("%v/%v: %v", fw, o, err)
			}
			if tr.Value() <= 0 {
				t.Errorf("%v/%v: zero value", fw, o)
			}
			if len(tr.Seeds()) == 0 || len(tr.Seeds()) > 5 {
				t.Errorf("%v/%v: seeds=%v", fw, o, tr.Seeds())
			}
		}
	}
}

func TestFilterRestrictsSubStream(t *testing.T) {
	// Topic-aware SIM (Appendix A): only even users' actions are on-topic.
	tr, err := sim.New(sim.Config{
		K: 2, WindowSize: 8,
		Filter: func(a sim.Action) bool { return a.User%2 == 0 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ProcessAll(paperStream()); err != nil {
		t.Fatal(err)
	}
	if tr.Processed() != 5 { // u2, u4, u4, u2, u6
		t.Fatalf("processed = %d, want 5 filtered actions", tr.Processed())
	}
	for _, s := range tr.Seeds() {
		if s%2 != 0 {
			t.Fatalf("off-topic seed %d", s)
		}
	}
}

func TestWeightedObjectiveChangesSeeds(t *testing.T) {
	// Conformity-aware SIM: make u6's audience precious.
	actions := paperStream()
	plain, err := sim.New(sim.Config{K: 1, WindowSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	weighted, err := sim.New(sim.Config{
		K: 1, WindowSize: 8,
		Weights: sim.WeightTable{W: map[sim.UserID]float64{6: 100}, Default: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.ProcessAll(actions); err != nil {
		t.Fatal(err)
	}
	if err := weighted.ProcessAll(actions); err != nil {
		t.Fatal(err)
	}
	if weighted.Value() < 100 {
		t.Fatalf("weighted value = %v, want >= 100 (must cover u6)", weighted.Value())
	}
	ws := weighted.Seeds()
	if len(ws) != 1 || (ws[0] != 2 && ws[0] != 6) {
		t.Fatalf("weighted seeds = %v, want the user covering u6", ws)
	}
	if plain.Value() > 6 {
		t.Fatalf("plain value = %v", plain.Value())
	}
}

func TestInfluenceSetAndWindowStart(t *testing.T) {
	tr, err := sim.New(sim.Config{K: 2, WindowSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ProcessAll(paperStream()); err != nil {
		t.Fatal(err)
	}
	if ws := tr.WindowStart(); ws != 3 {
		t.Fatalf("window start = %d, want 3", ws)
	}
	got := tr.InfluenceSet(1)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("I_10(u1) = %v, want [1 3]", got)
	}
}

func TestFrameworkAndOracleStrings(t *testing.T) {
	if sim.SIC.String() != "SIC" || sim.IC.String() != "IC" {
		t.Error("framework names wrong")
	}
	if sim.Framework(9).String() != "Framework(9)" {
		t.Error("unknown framework name wrong")
	}
	names := []string{"SieveStreaming", "ThresholdStream", "BlogWatch", "MkC"}
	for i, want := range names {
		if got := sim.Oracle(i).String(); got != want {
			t.Errorf("oracle %d name = %q, want %q", i, got, want)
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	tr, err := sim.New(sim.Config{K: 3, WindowSize: 50, Framework: sim.IC, Oracle: sim.BlogWatch})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ProcessAll(randomActions(3, 200, 10)); err != nil {
		t.Fatal(err)
	}
	st := tr.Stats()
	if st.Framework != sim.IC || st.Oracle != sim.BlogWatch {
		t.Fatalf("stats echo wrong: %+v", st)
	}
	if st.Checkpoints != 50 {
		t.Fatalf("IC checkpoints = %d, want 50", st.Checkpoints)
	}
	if st.Processed != 200 || st.ElementsFed == 0 || st.AvgCheckpoints <= 0 {
		t.Fatalf("stats not populated: %+v", st)
	}
}

func TestProcessAllStopsAtError(t *testing.T) {
	tr, err := sim.New(sim.Config{K: 1, WindowSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	bad := []sim.Action{
		{ID: 1, User: 1, Parent: sim.NoParent},
		{ID: 1, User: 2, Parent: sim.NoParent},
	}
	if err := tr.ProcessAll(bad); err == nil {
		t.Fatal("expected duplicate-ID error")
	}
	if tr.Processed() != 1 {
		t.Fatalf("processed = %d, want 1", tr.Processed())
	}
}

func TestTimeBasedWindow(t *testing.T) {
	tr, err := sim.New(sim.Config{K: 1, WindowSize: 60, Slide: 10, TimeBased: true})
	if err != nil {
		t.Fatal(err)
	}
	// A burst at t≈1000, then one action much later.
	burst := []sim.Action{
		{ID: 1000, User: 1, Parent: sim.NoParent},
		{ID: 1001, User: 2, Parent: 1000},
		{ID: 1002, User: 3, Parent: 1000},
	}
	if err := tr.ProcessAll(burst); err != nil {
		t.Fatal(err)
	}
	if tr.Value() != 3 {
		t.Fatalf("burst value = %v, want 3", tr.Value())
	}
	if err := tr.Process(sim.Action{ID: 5000, User: 9, Parent: sim.NoParent}); err != nil {
		t.Fatal(err)
	}
	// 4000 time units later the burst has expired even though only four
	// actions arrived.
	if tr.Value() != 1 {
		t.Fatalf("post-gap value = %v, want 1", tr.Value())
	}
	if got := tr.Seeds(); len(got) != 1 || got[0] != 9 {
		t.Fatalf("post-gap seeds = %v", got)
	}
}

func randomActions(seed int64, n, users int) []sim.Action {
	rng := rand.New(rand.NewSource(seed))
	actions := make([]sim.Action, n)
	for i := range actions {
		a := sim.Action{ID: sim.ActionID(i + 1), User: sim.UserID(rng.Intn(users)), Parent: sim.NoParent}
		if i > 0 && rng.Float64() < 0.7 {
			a.Parent = sim.ActionID(i + 1 - (rng.Intn(min(i, 60)) + 1))
		}
		actions[i] = a
	}
	return actions
}
