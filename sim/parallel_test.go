package sim_test

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/sim"
)

// rmatStream generates the SYN-O dataset at test scale: an R-MAT user graph
// supplies the activity skew, exactly as in the paper's §6.1.
func rmatStream(t *testing.T) []sim.Action {
	t.Helper()
	return gen.Stream(gen.SynO(800, 6000, 1500, 42))
}

// TestParallelMatchesSerial is the engine's core invariant, exercised under
// -race in CI: parallel ingestion fans each checkpoint's mutually
// independent sieve instances across a worker pool without changing any
// admission decision, so seed sets and influence values are bit-identical
// to the serial run at every slide boundary of an RMAT-generated stream.
func TestParallelMatchesSerial(t *testing.T) {
	actions := rmatStream(t)
	for _, fw := range []sim.Framework{sim.SIC, sim.IC} {
		for _, orc := range []sim.Oracle{sim.SieveStreaming, sim.ThresholdStream} {
			cfg := sim.Config{K: 8, WindowSize: 1500, Slide: 100, Beta: 0.1, Framework: fw, Oracle: orc}
			serial, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Parallelism = 4
			parallel, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer parallel.Close()

			for i, a := range actions {
				if err := serial.Process(a); err != nil {
					t.Fatal(err)
				}
				if err := parallel.Process(a); err != nil {
					t.Fatal(err)
				}
				if (i+1)%100 != 0 {
					continue
				}
				if sv, pv := serial.Value(), parallel.Value(); sv != pv {
					t.Fatalf("%v/%v: action %d: serial value %v != parallel value %v", fw, orc, i+1, sv, pv)
				}
				if ss, ps := serial.Seeds(), parallel.Seeds(); !reflect.DeepEqual(ss, ps) {
					t.Fatalf("%v/%v: action %d: seed sets diverged:\nserial   %v\nparallel %v", fw, orc, i+1, ss, ps)
				}
			}
			if ss, ps := serial.Stats(), parallel.Stats(); ss != ps {
				t.Fatalf("%v/%v: stats diverged: %+v vs %+v", fw, orc, ss, ps)
			}
		}
	}
}

// TestBatchedIngestion checks the batched path end to end: queries flush
// (exactness for everything Processed), window position tracks the serial
// run, and a fixed configuration is deterministic across runs.
func TestBatchedIngestion(t *testing.T) {
	actions := rmatStream(t)
	mk := func(batch int) *sim.Tracker {
		tr, err := sim.New(sim.Config{K: 8, WindowSize: 1500, Slide: 100, Beta: 0.1, BatchSize: batch})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	serial, b1, b2 := mk(1), mk(100), mk(100)
	for _, a := range actions {
		for _, tr := range []*sim.Tracker{serial, b1, b2} {
			if err := tr.Process(a); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Queries flush: mid-batch state must still answer for every action.
	if s, b := serial.Processed(), b1.Processed(); s != b {
		t.Fatalf("processed diverged: %d vs %d", s, b)
	}
	if s, b := serial.WindowStart(), b1.WindowStart(); s != b {
		t.Fatalf("window start diverged: %d vs %d", s, b)
	}
	if b1.Value() <= 0 || len(b1.Seeds()) == 0 {
		t.Fatalf("degenerate batched answer: value %v seeds %v", b1.Value(), b1.Seeds())
	}
	// Same config, same stream → identical results (determinism).
	if v1, v2 := b1.Value(), b2.Value(); v1 != v2 {
		t.Fatalf("batched runs nondeterministic: %v vs %v", v1, v2)
	}
	if s1, s2 := b1.Seeds(), b2.Seeds(); !reflect.DeepEqual(s1, s2) {
		t.Fatalf("batched runs nondeterministic: %v vs %v", s1, s2)
	}
	// Coarser elements stay within the guarantee band of the serial value.
	if sv, bv := serial.Value(), b1.Value(); bv < 0.5*sv || bv > 2*sv {
		t.Fatalf("batched value %v implausibly far from serial %v", bv, sv)
	}
}

// TestBatchedErrorsSurfaceAtProcess: validation happens on entry, so a bad
// action fails its own Process call even when buffered.
func TestBatchedErrorsSurfaceAtProcess(t *testing.T) {
	tr, err := sim.New(sim.Config{K: 2, WindowSize: 100, BatchSize: 50})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Process(sim.Action{ID: 10, User: 1, Parent: sim.NoParent}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Process(sim.Action{ID: 10, User: 2, Parent: sim.NoParent}); err == nil {
		t.Fatal("duplicate ID accepted into batch buffer")
	}
	if err := tr.Process(sim.Action{ID: 11, User: 2, Parent: 12}); err == nil {
		t.Fatal("future parent accepted into batch buffer")
	}
	if err := tr.Process(sim.Action{ID: 12, User: 2, Parent: 10}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Processed(); got != 2 {
		t.Fatalf("Processed = %d, want 2", got)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestParallelBatchedCombined: both options together, closed cleanly.
func TestParallelBatchedCombined(t *testing.T) {
	tr, err := sim.New(sim.Config{K: 6, WindowSize: 1000, Slide: 50, Parallelism: 3, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range rmatStream(t)[:3000] {
		if err := tr.Process(a); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Value() <= 0 {
		t.Fatal("combined parallel+batched tracker made no progress")
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}
