package sim

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/dataio"
	"repro/internal/wire"
)

// SIM2 section tags written by SaveTo. Unknown tags encountered by Load are
// skipped — the forward-compatibility rule that lets a newer writer add
// sections without breaking an older reader.
const (
	sectionConfig  = "CFG0" // configuration scalars, validated against Load's Config
	sectionCore    = "CORE" // framework state: stream index + checkpoint chain
	sectionTracker = "TRK0" // tracker-level state (newest accepted ID)
)

// simConfigVersion versions the CFG0 payload.
const simConfigVersion = 1

// SaveTo writes a durable snapshot of the tracker — configuration echo,
// stream index, the full IC/SIC checkpoint chain with every oracle's state,
// and tracker-level bookkeeping — as a SIM2 container (internal/dataio:
// versioned header, CRC per section, length-prefixed sections that unknown
// readers can skip).
//
// Buffered actions are flushed first, so the snapshot always covers
// everything Processed; a tracker restored from it by Load and fed the rest
// of the stream produces bit-identical Seeds, Value and CheckpointStarts to
// one that was never interrupted. SaveTo does not mutate observable state
// beyond that flush and may be called at any point between Process calls.
func (t *Tracker) SaveTo(w io.Writer) error {
	if err := t.Flush(); err != nil {
		return err
	}
	sw, err := dataio.NewSnapshotWriter(w)
	if err != nil {
		return err
	}

	var buf bytes.Buffer
	cw := wire.NewWriter(&buf)
	fc := t.fw.Config()
	cw.Uvarint(simConfigVersion)
	cw.Int(fc.K)
	cw.Int(fc.N)
	cw.Int(fc.L)
	cw.F64(fc.Beta)
	fwk := IC
	if fc.Sparse {
		fwk = SIC
	}
	cw.Int(int(fwk))
	cw.Int(int(t.orc))
	cw.Bool(fc.ByTime)
	cw.Bool(t.filter != nil)
	cw.Bool(t.weighted)
	if err := cw.Err(); err != nil {
		return err
	}
	if err := sw.Section(sectionConfig, buf.Bytes()); err != nil {
		return err
	}

	buf.Reset()
	if err := t.fw.Save(&buf); err != nil {
		return err
	}
	if err := sw.Section(sectionCore, buf.Bytes()); err != nil {
		return err
	}

	buf.Reset()
	tw := wire.NewWriter(&buf)
	tw.Varint(int64(t.lastID))
	if err := tw.Err(); err != nil {
		return err
	}
	if err := sw.Section(sectionTracker, buf.Bytes()); err != nil {
		return err
	}
	return sw.Close()
}

// Load reconstructs a tracker from a snapshot written by SaveTo. cfg must
// describe the same query the snapshot was taken under — K, WindowSize,
// Slide, Beta, Framework, Oracle, TimeBased and the presence of Weights are
// validated against the snapshot and a mismatch is an error. Weights and
// Filter themselves cannot be serialized (they are arbitrary Go values);
// the caller supplies them again via cfg, and supplying different ones than
// at save time yields undefined results. Parallelism, BatchSize and
// ExpectedUsers are runtime knobs: they may differ freely from the saving
// configuration and change only execution, never results.
//
// The returned tracker owns worker goroutines when cfg.Parallelism > 1,
// exactly as if built by New; release them with Close.
func Load(r io.Reader, cfg Config) (*Tracker, error) {
	t, err := New(cfg)
	if err != nil {
		return nil, err
	}
	if err := t.load(r); err != nil {
		t.pool.Close()
		return nil, err
	}
	return t, nil
}

// load applies the snapshot's sections to a freshly built tracker.
func (t *Tracker) load(r io.Reader) error {
	sr, err := dataio.NewSnapshotReader(r)
	if err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	var sawConfig, sawCore bool
	for {
		tag, payload, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		switch tag {
		case sectionConfig:
			if err := t.checkConfigSection(payload); err != nil {
				return err
			}
			sawConfig = true
		case sectionCore:
			// The config echo guards the core decode: refuse to interpret
			// oracle state under a mismatched configuration.
			if !sawConfig {
				return fmt.Errorf("sim: snapshot %s section precedes %s", sectionCore, sectionConfig)
			}
			if err := t.fw.Restore(bytes.NewReader(payload)); err != nil {
				return fmt.Errorf("sim: %w", err)
			}
			sawCore = true
		case sectionTracker:
			tr := wire.NewReader(bytes.NewReader(payload))
			t.lastID = ActionID(tr.Varint())
			if err := tr.Err(); err != nil {
				return fmt.Errorf("sim: reading tracker section: %w", err)
			}
		default:
			// Unknown section from a newer writer: skip.
		}
	}
	if !sawConfig || !sawCore {
		return fmt.Errorf("sim: snapshot is missing required sections (config=%v, core=%v)", sawConfig, sawCore)
	}
	return nil
}

// checkConfigSection validates the snapshot's configuration echo against
// the tracker's own (defaults applied) configuration.
func (t *Tracker) checkConfigSection(payload []byte) error {
	r := wire.NewReader(bytes.NewReader(payload))
	if v := r.Uvarint(); r.Err() == nil && v != simConfigVersion {
		return fmt.Errorf("sim: unsupported snapshot config version %d", v)
	}
	var (
		k       = r.Int()
		n       = r.Int()
		l       = r.Int()
		beta    = r.F64()
		fwk     = Framework(r.Int())
		orc     = Oracle(r.Int())
		byTime  = r.Bool()
		_       = r.Bool() // filter presence: informational (filters don't alter saved state)
		weights = r.Bool()
	)
	if err := r.Err(); err != nil {
		return fmt.Errorf("sim: reading snapshot config: %w", err)
	}
	fc := t.fw.Config()
	have := IC
	if fc.Sparse {
		have = SIC
	}
	switch {
	case k != fc.K:
		return fmt.Errorf("sim: snapshot has K=%d, config has K=%d", k, fc.K)
	case n != fc.N:
		return fmt.Errorf("sim: snapshot has WindowSize=%d, config has %d", n, fc.N)
	case l != fc.L:
		return fmt.Errorf("sim: snapshot has Slide=%d, config has %d", l, fc.L)
	case beta != fc.Beta:
		return fmt.Errorf("sim: snapshot has Beta=%v, config has %v", beta, fc.Beta)
	case fwk != have:
		return fmt.Errorf("sim: snapshot has Framework=%v, config has %v", fwk, have)
	case orc != t.orc:
		return fmt.Errorf("sim: snapshot has Oracle=%v, config has %v", orc, t.orc)
	case byTime != fc.ByTime:
		return fmt.Errorf("sim: snapshot has TimeBased=%v, config has %v", byTime, fc.ByTime)
	case weights != t.weighted:
		return fmt.Errorf("sim: snapshot weights presence (%v) does not match config (%v)", weights, t.weighted)
	}
	return nil
}
