package sim_test

import (
	"testing"

	"repro/internal/gen"
	"repro/sim"
)

// benchIngest measures the streaming ingestion hot path end to end: one
// full pass of an RMAT-generated SYN-O stream through a Tracker. Allocations
// are reported per processed action, which makes `go test -bench=Ingest
// -benchmem ./sim` the regression gate for the zero-allocation element path.
func benchIngest(b *testing.B, fw sim.Framework, parallelism int) {
	b.Helper()
	actions := gen.Stream(gen.SynO(800, 6000, 1500, 42))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tr, err := sim.New(sim.Config{
			K: 8, WindowSize: 1500, Slide: 100, Beta: 0.1,
			Framework: fw, Parallelism: parallelism,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for _, a := range actions {
			if err := tr.Process(a); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if tr.Value() <= 0 {
			b.Fatal("tracker made no progress")
		}
		tr.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(len(actions)), "actions/op")
}

// BenchmarkIngestSIC is the paper's headline configuration: SIC, serial.
func BenchmarkIngestSIC(b *testing.B) { benchIngest(b, sim.SIC, 1) }

// BenchmarkIngestIC is the dense-checkpoint variant: IC, serial.
func BenchmarkIngestIC(b *testing.B) { benchIngest(b, sim.IC, 1) }

// BenchmarkIngestSICParallel exercises the checkpoint-sharded fan-out.
func BenchmarkIngestSICParallel(b *testing.B) { benchIngest(b, sim.SIC, 4) }
