package sim_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"repro/sim"
)

// spillBudget is tight enough (256 log entries) that every identity dataset
// spills many times over a 700-action window, exercising spill, fault-in
// and re-spill continuously.
const spillBudget = 4096

// TestSpillIdentity is the tentpole invariant of the tiered window state:
// for every dataset shape, both frameworks and both window modes, a tracker
// running under a tight memory budget (spilling and faulting cold segments
// throughout) produces identical Seeds(), Value() and CheckpointStarts()
// to an unbudgeted tracker at every slide boundary. Run under -race in CI.
func TestSpillIdentity(t *testing.T) {
	const (
		window = 700
		slide  = 50
		k      = 6
	)
	for _, ds := range identityDatasets() {
		for _, fw := range []sim.Framework{sim.SIC, sim.IC} {
			for _, byTime := range []bool{false, true} {
				name := fmt.Sprintf("%s/%v/byTime=%v", ds.name, fw, byTime)
				t.Run(name, func(t *testing.T) {
					base := sim.Config{
						K: k, WindowSize: window, Slide: slide, Beta: 0.1,
						Framework: fw, TimeBased: byTime,
					}
					ref, err := sim.New(base)
					if err != nil {
						t.Fatal(err)
					}
					defer ref.Close()
					budgeted := base
					budgeted.SpillDir = t.TempDir()
					budgeted.MemoryBudgetBytes = spillBudget
					tr, err := sim.New(budgeted)
					if err != nil {
						t.Fatal(err)
					}
					defer tr.Close()

					for i, a := range ds.actions {
						if err := ref.Process(a); err != nil {
							t.Fatal(err)
						}
						if err := tr.Process(a); err != nil {
							t.Fatal(err)
						}
						if (i+1)%slide != 0 {
							continue
						}
						if v, rv := tr.Value(), ref.Value(); v != rv {
							t.Fatalf("action %d: budgeted value %v != unbudgeted %v", i+1, v, rv)
						}
						if s, rs := tr.Seeds(), ref.Seeds(); !reflect.DeepEqual(s, rs) {
							t.Fatalf("action %d: budgeted seeds %v != unbudgeted %v", i+1, s, rs)
						}
						if c, rc := tr.CheckpointStarts(), ref.CheckpointStarts(); !reflect.DeepEqual(c, rc) {
							t.Fatalf("action %d: budgeted checkpoints %v != unbudgeted %v", i+1, c, rc)
						}
					}
					snap := tr.Snapshot()
					if snap.Spills == 0 {
						t.Fatalf("budget %d never spilled (hot=%d): the test exercised nothing", spillBudget, snap.HotLogBytes)
					}
					if refSnap := ref.Snapshot(); refSnap.Spills != 0 || refSnap.ColdSegments != 0 {
						t.Fatalf("unbudgeted tracker touched the cold tier: %+v", refSnap)
					}
				})
			}
		}
	}
}

// TestSpillSnapshotRoundTrip proves the segment-mapped recovery contract:
// a mid-stream SaveTo taken while cold extents are live references segments
// by ID (no rehydration), and a tracker Loaded from it — re-adopting those
// segment files — continues the stream with answers identical to the
// uninterrupted original at every slide boundary.
func TestSpillSnapshotRoundTrip(t *testing.T) {
	const (
		window = 700
		slide  = 50
		k      = 6
		cut    = 1300
	)
	ds := identityDatasets()[2] // SYN-O
	dir := t.TempDir()
	cfg := sim.Config{
		K: k, WindowSize: window, Slide: slide, Beta: 0.1,
		SpillDir: filepath.Join(dir, "a"), MemoryBudgetBytes: spillBudget,
	}
	tr, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ProcessAll(ds.actions[:cut]); err != nil {
		t.Fatal(err)
	}
	if snap := tr.Snapshot(); snap.ColdUsers == 0 {
		t.Fatalf("no cold extents at the cut; snapshot would not exercise the segment manifest (%+v)", snap)
	}

	var buf bytes.Buffer
	if err := tr.SaveTo(&buf); err != nil {
		t.Fatal(err)
	}

	// Drive the original to the end, recording every boundary answer.
	type answer struct {
		value  float64
		seeds  []sim.UserID
		starts []sim.ActionID
	}
	var want []answer
	for i, a := range ds.actions[cut:] {
		if err := tr.Process(a); err != nil {
			t.Fatal(err)
		}
		if (cut+i+1)%slide == 0 {
			want = append(want, answer{
				value:  tr.Value(),
				seeds:  append([]sim.UserID(nil), tr.Seeds()...),
				starts: tr.CheckpointStarts(),
			})
		}
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	// The restored tracker shares the segment files but uses its own spill
	// directory config — same path, fresh store — exactly like a reboot.
	restored, err := sim.Load(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if got := restored.Snapshot(); got.ColdUsers == 0 {
		t.Fatalf("restored tracker has no cold extents; recovery rehydrated instead of mapping (%+v)", got)
	}
	wi := 0
	for i, a := range ds.actions[cut:] {
		if err := restored.Process(a); err != nil {
			t.Fatal(err)
		}
		if (cut+i+1)%slide != 0 {
			continue
		}
		w := want[wi]
		wi++
		if v := restored.Value(); v != w.value {
			t.Fatalf("boundary %d: restored value %v != original %v", wi, v, w.value)
		}
		if s := restored.Seeds(); !reflect.DeepEqual(s, w.seeds) {
			t.Fatalf("boundary %d: restored seeds %v != original %v", wi, s, w.seeds)
		}
		if c := restored.CheckpointStarts(); !reflect.DeepEqual(c, w.starts) {
			t.Fatalf("boundary %d: restored checkpoints %v != original %v", wi, c, w.starts)
		}
	}
}

// TestBudgetRequiresSpillDir pins the configuration guard.
func TestBudgetRequiresSpillDir(t *testing.T) {
	_, err := sim.New(sim.Config{K: 3, WindowSize: 100, MemoryBudgetBytes: 1 << 20})
	if err == nil {
		t.Fatal("MemoryBudgetBytes without SpillDir was accepted")
	}
}
