package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/sim"
)

// identityDatasets generates all four evaluation stream shapes (Reddit-like,
// Twitter-like, SYN-O, SYN-N) at a scale small enough that the full
// cross-product below stays fast under -race.
func identityDatasets() []struct {
	name    string
	actions []sim.Action
} {
	const (
		users  = 500
		stream = 2600
		window = 700
		seed   = 11
	)
	cfgs := []gen.Config{
		gen.RedditLike(users, stream, window, seed),
		gen.TwitterLike(users, stream, window, seed),
		gen.SynO(users, stream, window, seed),
		gen.SynN(users, stream, window, seed),
	}
	out := make([]struct {
		name    string
		actions []sim.Action
	}, len(cfgs))
	for i, c := range cfgs {
		out[i].name = c.Name
		out[i].actions = gen.Stream(c)
	}
	return out
}

// TestShardedIdentityAcrossWidths is the cross-layer identity invariant of
// the checkpoint-sharded feed engine: for every generated dataset, both
// frameworks (IC and SIC), and both window modes (sequence- and time-based),
// runs at parallelism 1, 2 and 8 produce identical Seeds(), Value() and
// CheckpointStarts() at every slide boundary. Run under -race in CI, this
// doubles as the data-race gate for the flattened (checkpoint × shard)
// fan-out.
func TestShardedIdentityAcrossWidths(t *testing.T) {
	const (
		window = 700
		slide  = 50
		k      = 6
	)
	widths := []int{1, 2, 8}
	for _, ds := range identityDatasets() {
		for _, fw := range []sim.Framework{sim.SIC, sim.IC} {
			for _, byTime := range []bool{false, true} {
				name := fmt.Sprintf("%s/%v/byTime=%v", ds.name, fw, byTime)
				t.Run(name, func(t *testing.T) {
					trs := make([]*sim.Tracker, len(widths))
					for i, w := range widths {
						tr, err := sim.New(sim.Config{
							K: k, WindowSize: window, Slide: slide, Beta: 0.1,
							Framework: fw, TimeBased: byTime, Parallelism: w,
						})
						if err != nil {
							t.Fatal(err)
						}
						defer tr.Close()
						trs[i] = tr
					}
					ref := trs[0]
					for i, a := range ds.actions {
						for _, tr := range trs {
							if err := tr.Process(a); err != nil {
								t.Fatal(err)
							}
						}
						if (i+1)%slide != 0 {
							continue
						}
						refVal, refSeeds := ref.Value(), ref.Seeds()
						refCps := ref.Internal().CheckpointStarts()
						for j, tr := range trs[1:] {
							w := widths[j+1]
							if v := tr.Value(); v != refVal {
								t.Fatalf("action %d: width %d value %v != serial %v", i+1, w, v, refVal)
							}
							if s := tr.Seeds(); !reflect.DeepEqual(s, refSeeds) {
								t.Fatalf("action %d: width %d seeds %v != serial %v", i+1, w, s, refSeeds)
							}
							if c := tr.Internal().CheckpointStarts(); !reflect.DeepEqual(c, refCps) {
								t.Fatalf("action %d: width %d checkpoints %v != serial %v", i+1, w, c, refCps)
							}
						}
					}
					// Maintenance counters must agree too: identical element
					// fan-out, creations and deletions at every width.
					refStats := ref.Stats()
					for j, tr := range trs[1:] {
						if st := tr.Stats(); st != refStats {
							t.Fatalf("width %d stats %+v != serial %+v", widths[j+1], st, refStats)
						}
					}
				})
			}
		}
	}
}
