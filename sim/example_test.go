package sim_test

import (
	"fmt"

	"repro/sim"
)

// ExampleNew tracks the paper's Figure 1 stream and prints the influential
// users at the end.
func ExampleNew() {
	tracker, err := sim.New(sim.Config{K: 2, WindowSize: 8})
	if err != nil {
		panic(err)
	}
	actions := []sim.Action{
		{ID: 1, User: 1, Parent: sim.NoParent},
		{ID: 2, User: 2, Parent: 1},
		{ID: 3, User: 3, Parent: sim.NoParent},
		{ID: 4, User: 3, Parent: 1},
		{ID: 5, User: 4, Parent: 3},
		{ID: 6, User: 1, Parent: 3},
		{ID: 7, User: 5, Parent: 3},
		{ID: 8, User: 4, Parent: 7},
	}
	if err := tracker.ProcessAll(actions); err != nil {
		panic(err)
	}
	fmt.Printf("seeds=%v value=%.0f\n", tracker.Seeds(), tracker.Value())
	// Output: seeds=[1 3] value=5
}

// ExampleConfig_filter demonstrates the topic-aware adaptation of
// Appendix A: the tracker only sees the sub-stream its filter accepts.
func ExampleConfig_filter() {
	tracker, err := sim.New(sim.Config{
		K:          1,
		WindowSize: 4,
		Filter:     func(a sim.Action) bool { return a.User != 9 },
	})
	if err != nil {
		panic(err)
	}
	_ = tracker.Process(sim.Action{ID: 1, User: 9, Parent: sim.NoParent}) // filtered out
	_ = tracker.Process(sim.Action{ID: 2, User: 1, Parent: sim.NoParent})
	fmt.Println(tracker.Processed())
	// Output: 1
}
