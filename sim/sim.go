// Package sim is the public API of the stream influence maximization
// library, a reproduction of "Real-Time Influence Maximization on Dynamic
// Social Streams" (Wang, Fan, Li, Tan — VLDB 2017).
//
// A Tracker answers the continuous SIM query: over a sliding window of the
// most recent N social actions, maintain up to K users whose combined
// influence sets maximize a monotone submodular objective. Internally it
// runs the paper's Sparse Influential Checkpoints framework (or the denser
// IC variant) on top of a streaming submodular oracle.
//
// Quick start:
//
//	tr, err := sim.New(sim.Config{K: 10, WindowSize: 100_000})
//	if err != nil { ... }
//	for a := range actions {
//	    if err := tr.Process(a); err != nil { ... }
//	    seeds := tr.Seeds() // current influential users
//	}
//
// The ingestion hot path is a checkpoint-sharded feed with a
// zero-allocation element path: influence sets reach the oracles as shared
// slice views rather than closures, and two Config options scale it with
// cores, both defaulting to the exact legacy serial behavior. Parallelism
// (default 1) flattens each action's (checkpoint × oracle-shard) fan-out
// into one worker-pool loop — parallel width is the sum of ALL live
// checkpoints' instance counts — with bit-identical results at any width;
// BatchSize (default 1) groups actions so the stream index, oracle feeding
// and window maintenance amortize across a batch, with results exact at
// batch boundaries and every query flushing first. Trackers with
// Parallelism > 1 own worker goroutines — release them with Close.
//
// A Tracker is single-writer: only one goroutine may call Process and the
// query methods. For concurrent readers, the owner calls Snapshot — an
// immutable, JSON-marshalable copy of the current answer that shares no
// memory with the tracker — and publishes it; that is exactly how the
// long-lived serving layer (internal/server, cmd/simserve) serves queries
// while the stream keeps arriving.
//
// Tracker state is persistable: SaveTo writes a versioned SIM2 snapshot of
// everything the tracker owns (stream index, every checkpoint oracle's
// state, counters) and Load reconstructs a tracker that continues the
// stream with bit-identical results — the foundation of the serving
// layer's write-ahead-log + snapshot durability (simserve -data-dir).
package sim

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/dataio"
	"repro/internal/fault"
	"repro/internal/oracle"
	"repro/internal/pool"
	"repro/internal/stream"
	"repro/internal/submod"
)

// Re-exported stream types: the social-action vocabulary of the library.
type (
	// Action is one social action: User acts at time ID in response to the
	// earlier action Parent (NoParent for original posts).
	Action = stream.Action
	// UserID identifies a user.
	UserID = stream.UserID
	// ActionID is an action's timestamp / sequence number.
	ActionID = stream.ActionID
	// Weights assigns per-user coverage values; nil means the cardinality
	// objective |I(S)| of the paper's main text.
	Weights = submod.Weights
)

// NoParent marks a root action.
const NoParent = stream.NoParent

// Stream-order errors returned by Process and ProcessAll (wrapped; test
// with errors.Is).
var (
	// ErrNonMonotonicID reports an action whose ID is not strictly greater
	// than every previously accepted ID.
	ErrNonMonotonicID = stream.ErrNonMonotonicID
	// ErrBadParent reports an action referencing itself or a future action
	// as its parent.
	ErrBadParent = stream.ErrBadParent
)

// Cardinality is the unweighted influence objective f(I(S)) = |I(S)|.
type Cardinality = submod.Cardinality

// WeightTable is a map-backed Weights with a default, e.g. for the
// conformity-aware objective of the paper's Appendix A.
type WeightTable = submod.Table

// Framework selects the checkpoint maintenance strategy.
type Framework int

const (
	// SIC is the Sparse Influential Checkpoints framework (paper §5):
	// O(log N / β) checkpoints, ε(1−β)/2 approximation. The default.
	SIC Framework = iota
	// IC is the dense Influential Checkpoints framework (paper §4):
	// ⌈N/L⌉ checkpoints, full oracle ratio ε, higher update cost.
	IC
)

// String returns the paper's name for the framework.
func (f Framework) String() string {
	switch f {
	case SIC:
		return "SIC"
	case IC:
		return "IC"
	default:
		return fmt.Sprintf("Framework(%d)", int(f))
	}
}

// ParseFramework parses a framework name, case-insensitively: "sic" or "ic".
func ParseFramework(s string) (Framework, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sic":
		return SIC, nil
	case "ic":
		return IC, nil
	default:
		return 0, fmt.Errorf("sim: unknown framework %q (want sic or ic)", s)
	}
}

// MarshalText encodes the framework as its name, making Framework fields
// JSON-marshalable by name rather than by ordinal.
func (f Framework) MarshalText() ([]byte, error) {
	if f != SIC && f != IC {
		return nil, fmt.Errorf("sim: unknown framework %d", int(f))
	}
	return []byte(f.String()), nil
}

// UnmarshalText decodes a framework name via ParseFramework.
func (f *Framework) UnmarshalText(b []byte) error {
	v, err := ParseFramework(string(b))
	if err != nil {
		return err
	}
	*f = v
	return nil
}

// Oracle selects the streaming submodular algorithm run inside every
// checkpoint (paper Table 2).
type Oracle int

const (
	// SieveStreaming (Badanidiyuru et al.): (1/2−β)-approximate, the
	// oracle used throughout the paper's evaluation. The default.
	SieveStreaming Oracle = iota
	// ThresholdStream (Kumar et al.): (1/2−β)-approximate.
	ThresholdStream
	// BlogWatch (Saha & Getoor): 1/4-approximate swap oracle, O(k) updates.
	BlogWatch
	// MkC (Ausiello et al.): 1/4-approximate swap oracle considering every
	// possible swap.
	MkC
)

// String returns the oracle's published name.
func (o Oracle) String() string { return o.kind().String() }

// ParseOracle parses an oracle name, case-insensitively. Both the published
// names ("SieveStreaming", "ThresholdStream", "BlogWatch", "MkC") and the
// short forms used by the command-line tools ("sieve", "threshold",
// "blogwatch", "mkc") are accepted.
func ParseOracle(s string) (Oracle, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "sieve", "sievestreaming":
		return SieveStreaming, nil
	case "threshold", "thresholdstream":
		return ThresholdStream, nil
	case "blogwatch":
		return BlogWatch, nil
	case "mkc":
		return MkC, nil
	default:
		return 0, fmt.Errorf("sim: unknown oracle %q (want sieve, threshold, blogwatch or mkc)", s)
	}
}

// MarshalText encodes the oracle as its published name, making Oracle fields
// JSON-marshalable by name rather than by ordinal.
func (o Oracle) MarshalText() ([]byte, error) {
	if o < SieveStreaming || o > MkC {
		return nil, fmt.Errorf("sim: unknown oracle %d", int(o))
	}
	return []byte(o.String()), nil
}

// UnmarshalText decodes an oracle name via ParseOracle.
func (o *Oracle) UnmarshalText(b []byte) error {
	v, err := ParseOracle(string(b))
	if err != nil {
		return err
	}
	*o = v
	return nil
}

func (o Oracle) kind() oracle.Kind {
	switch o {
	case SieveStreaming:
		return oracle.SieveStreaming
	case ThresholdStream:
		return oracle.ThresholdStream
	case BlogWatch:
		return oracle.BlogWatch
	case MkC:
		return oracle.MkC
	default:
		panic(fmt.Sprintf("sim: unknown oracle %d", int(o)))
	}
}

// Config configures a Tracker. K and WindowSize are mandatory; everything
// else has sensible defaults.
type Config struct {
	// K is the maximum number of seed users to maintain.
	K int
	// WindowSize is N, the number of most recent actions considered.
	WindowSize int
	// Slide is L, the number of actions per window slide; results are
	// guaranteed at slide boundaries. Defaults to 1.
	Slide int
	// Beta trades quality for speed in both SIC's checkpoint pruning and
	// the sieve-style oracles' threshold grids. Defaults to 0.1.
	Beta float64
	// Framework selects SIC (default) or IC.
	Framework Framework
	// Oracle selects the checkpoint oracle. Defaults to SieveStreaming.
	Oracle Oracle
	// Weights is the influence objective; nil means cardinality.
	Weights Weights
	// Filter, when non-nil, restricts the query to the sub-stream of
	// actions it accepts — the topic-aware / location-aware adaptation of
	// the paper's Appendix A. Rejected actions are ignored entirely and do
	// not occupy window slots.
	Filter func(Action) bool
	// TimeBased switches from the paper's sequence-based window to a
	// time-based one: action IDs are interpreted as timestamps (gaps
	// allowed) and WindowSize / Slide become durations in the same unit.
	// An extension beyond the paper; the approximation guarantees carry
	// over because expiry is timestamp-driven either way.
	TimeBased bool
	// Parallelism is the number of worker goroutines the checkpoint-sharded
	// feed engine fans each action's oracle updates across. Every live
	// checkpoint's sieve-style oracle splits into mutually independent
	// shards (one per candidate instance), and one parallel loop covers the
	// shards of ALL checkpoints at once — so the width scales with the sum
	// of the checkpoints' instance counts and stays wide even under SIC's
	// few-instances-per-oracle regime. The fan-out changes no admission
	// decision: results are bit-identical to the serial path at any width.
	// 1 (or 0, the zero value) keeps the exact legacy serial path; a
	// negative value selects GOMAXPROCS. Ignored by the swap oracles
	// (BlogWatch, MkC), which expose no shards. Trackers with
	// Parallelism > 1 own worker goroutines; call Close to release them.
	Parallelism int
	// BatchSize groups ingested actions: Process enqueues, and every
	// BatchSize actions the whole group is ingested at once, feeding each
	// checkpoint one element per distinct contributor of the batch instead
	// of one per contributing action and running window maintenance once
	// per batch. 1 (or 0, the zero value) is exact per-action legacy
	// behavior. With larger batches the oracles see the same monotone
	// influence-set growth at coarser granularity, so approximation
	// guarantees hold but seed sets may differ from the serial run within
	// the guarantee band; queries (Seeds, Value, …) flush pending actions
	// first and are therefore always exact for everything Processed.
	BatchSize int
	// ExpectedUsers, when positive, pre-sizes the stream index's per-user
	// maps for that many distinct users, avoiding rehash churn during the
	// initial window fill. Purely a capacity hint: results and limits are
	// unaffected. 0 (the default) grows incrementally, the legacy behavior.
	ExpectedUsers int
	// SpillDir, when non-empty, attaches a cold tier to the stream index:
	// whenever the resident contribution-log bytes exceed
	// MemoryBudgetBytes, the longest-idle users' logs are spilled to
	// immutable segment files under this directory at the window's expiry
	// boundary and faulted back in on demand. Results are bit-identical
	// with or without spilling; only memory residency and I/O change. The
	// directory is created if missing and must be private to this tracker.
	// Trackers with a SpillDir own an open segment store; release it with
	// Close.
	SpillDir string
	// MemoryBudgetBytes is the resident hot-log byte budget that triggers
	// spilling. 0 (the default) never spills — the tier stays attached for
	// recovery of snapshots that reference cold segments, but no new
	// segments are written. Setting a budget without a SpillDir is an
	// error. Like Parallelism, this is a runtime knob: it may differ
	// freely between a saving and a restoring tracker.
	MemoryBudgetBytes int64
	// SpillFS routes the cold tier's filesystem operations, defaulting to
	// the real filesystem. The serving layer passes its fault-injectable
	// FS here so chaos tests cover the spill path.
	SpillFS fault.FS
}

// Tracker continuously answers one SIM query. It is not safe for concurrent
// use: Parallelism only fans out the internal oracle updates of a single
// Process call.
type Tracker struct {
	fw       *core.Framework
	filter   func(Action) bool
	orc      Oracle
	pool     *pool.Pool
	store    *dataio.SegmentStore // cold tier; nil without Config.SpillDir
	weighted bool                 // non-nil Weights at construction; echoed into snapshots

	batchSize int
	batch     []Action
	lastID    ActionID // newest accepted ID, including still-buffered ones
}

// New validates cfg and returns a ready Tracker. If cfg.Parallelism is
// above 1 the tracker owns worker goroutines; release them with Close when
// the tracker is no longer needed.
func New(cfg Config) (*Tracker, error) {
	if cfg.Beta == 0 {
		cfg.Beta = 0.1
	}
	if cfg.Beta < 0 || cfg.Beta >= 1 {
		return nil, fmt.Errorf("sim: Beta must be in (0, 1), got %v", cfg.Beta)
	}
	if cfg.Oracle < SieveStreaming || cfg.Oracle > MkC {
		return nil, fmt.Errorf("sim: unknown oracle %d", int(cfg.Oracle))
	}
	if cfg.BatchSize < 0 {
		return nil, fmt.Errorf("sim: BatchSize must be >= 0, got %d", cfg.BatchSize)
	}
	par := cfg.Parallelism
	if par < 0 {
		par = 0 // pool.New(0) selects GOMAXPROCS
	} else if par == 0 {
		par = 1 // the documented default: serial
	}
	if cfg.ExpectedUsers < 0 {
		return nil, fmt.Errorf("sim: ExpectedUsers must be >= 0, got %d", cfg.ExpectedUsers)
	}
	if cfg.MemoryBudgetBytes < 0 {
		return nil, fmt.Errorf("sim: MemoryBudgetBytes must be >= 0, got %d", cfg.MemoryBudgetBytes)
	}
	if cfg.MemoryBudgetBytes > 0 && cfg.SpillDir == "" {
		return nil, fmt.Errorf("sim: MemoryBudgetBytes requires a SpillDir")
	}
	var store *dataio.SegmentStore
	var cold stream.ColdStore
	if cfg.SpillDir != "" {
		fs := cfg.SpillFS
		if fs == nil {
			fs = fault.OS()
		}
		st, err := dataio.OpenSegmentStore(fs, cfg.SpillDir)
		if err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		store, cold = st, st
	}
	p := pool.New(par)
	fw, err := core.New(core.Config{
		K:          cfg.K,
		N:          cfg.WindowSize,
		L:          cfg.Slide,
		Beta:       cfg.Beta,
		Oracle:     oracle.NewFactory(cfg.Oracle.kind(), cfg.Beta, cfg.Weights),
		Sparse:     cfg.Framework == SIC,
		ByTime:     cfg.TimeBased,
		Pool:       p,
		UsersHint:  cfg.ExpectedUsers,
		Cold:       cold,
		ColdBudget: cfg.MemoryBudgetBytes,
	})
	if err != nil {
		p.Close()
		if store != nil {
			store.Close()
		}
		return nil, err
	}
	bs := cfg.BatchSize
	if bs == 0 {
		bs = 1
	}
	return &Tracker{
		fw: fw, filter: cfg.Filter, orc: cfg.Oracle, pool: p, store: store,
		weighted: cfg.Weights != nil, batchSize: bs, lastID: -1,
	}, nil
}

// Process ingests one action. Actions must arrive with strictly increasing
// IDs; an action referencing itself or a future action as parent is
// rejected. Filtered-out actions are silently skipped. With BatchSize > 1
// the action may be buffered; it is fully applied by the time the batch
// fills, Flush is called, or any query method runs.
func (t *Tracker) Process(a Action) error {
	if t.filter != nil && !t.filter(a) {
		return nil
	}
	if t.batchSize <= 1 {
		if err := t.fw.Process(a); err != nil {
			return err
		}
		t.lastID = a.ID
		return nil
	}
	// Validate on entry so errors surface at the offending Process call,
	// never from a later flush.
	if a.ID <= t.lastID {
		return stream.ErrNonMonotonicID
	}
	if !a.Root() && a.Parent >= a.ID {
		return stream.ErrBadParent
	}
	t.lastID = a.ID
	t.batch = append(t.batch, a)
	if len(t.batch) >= t.batchSize {
		return t.Flush()
	}
	return nil
}

// ProcessAll ingests a slice of actions, stopping at the first error. With
// BatchSize > 1 the slice is cut directly into ingestion batches.
func (t *Tracker) ProcessAll(actions []Action) error {
	for _, a := range actions {
		if err := t.Process(a); err != nil {
			return fmt.Errorf("action %v: %w", a, err)
		}
	}
	return nil
}

// Flush applies any actions still buffered by batching. It is a no-op when
// the buffer is empty or BatchSize is 1.
func (t *Tracker) Flush() error {
	if len(t.batch) == 0 {
		return nil
	}
	batch := t.batch
	t.batch = t.batch[:0]
	return t.fw.ProcessBatch(batch)
}

// flushed drains the batch buffer before a query. Buffered actions were
// validated by Process, so ingestion cannot fail; a failure here means
// internal state corruption.
func (t *Tracker) flushed() *core.Framework {
	if err := t.Flush(); err != nil {
		panic(fmt.Sprintf("sim: flush of validated batch failed: %v", err))
	}
	return t.fw
}

// Close releases the tracker's worker goroutines (a no-op for serial
// trackers) and the cold tier's segment store (a no-op without a SpillDir),
// and flushes any buffered actions. The tracker remains queryable after
// Close as long as nothing needs a cold read, but further Process calls on
// a Parallelism > 1 tracker will panic; it is safe to omit Close for
// process-lifetime trackers on a default configuration.
func (t *Tracker) Close() error {
	err := t.Flush()
	t.pool.Close()
	if t.store != nil {
		if cerr := t.store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// GC deletes cold segment files that no live extent references. Call it
// only when no snapshot you still intend to Load references those segments
// — for SaveTo users that means right after writing (and fsyncing) a new
// snapshot, which re-manifests exactly the live extents. The serving layer
// does this automatically after each published snapshot. Without a
// SpillDir it is a no-op.
func (t *Tracker) GC() (removed int, err error) {
	if t.store == nil {
		return 0, nil
	}
	return t.store.GC()
}

// Seeds returns the current solution: at most K users who (approximately)
// maximize the influence objective over the current window. The slice is
// owned by the Tracker and valid until the next Process call. Buffered
// actions are flushed first, so the answer always covers everything
// Processed.
func (t *Tracker) Seeds() []UserID { return t.flushed().Seeds() }

// Value returns the influence objective of the current solution as
// maintained by the answering checkpoint. Buffered actions are flushed
// first.
func (t *Tracker) Value() float64 { return t.flushed().Value() }

// Candidates returns the answering checkpoint's candidate seed pool: a
// superset of Seeds() for the sieve-style oracles (union of all live
// candidate solutions), Seeds() itself for the swap oracles. A scatter-
// gather router unions these pools across shards and re-scores the merged
// pool with one exact greedy pass. Buffered actions are flushed first. The
// slice is freshly allocated and owned by the caller.
func (t *Tracker) Candidates() []UserID { return t.flushed().CandidateSeeds() }

// InfluenceSet returns the users currently influenced by u within the
// window (Definition 1 of the paper). Buffered actions are flushed first.
func (t *Tracker) InfluenceSet(u UserID) []UserID {
	fw := t.flushed()
	return fw.Stream().InfluenceSet(u, fw.WindowStart())
}

// WindowStart returns the ID of the first action of the current window.
// Buffered actions are flushed first.
func (t *Tracker) WindowStart() ActionID { return t.flushed().WindowStart() }

// Processed returns the number of accepted (unfiltered) actions, including
// any still buffered by batching.
func (t *Tracker) Processed() int64 { return t.fw.Processed() + int64(len(t.batch)) }

// LastID returns the ID of the newest accepted action, including any still
// buffered by batching, or -1 when nothing has been accepted yet. The
// serving layer's crash recovery uses it to skip write-ahead-log entries
// already covered by a restored snapshot.
func (t *Tracker) LastID() ActionID { return t.lastID }

// Stats summarizes the tracker's internal state. It marshals to JSON with
// the frameworks and oracles spelled by name, so it can be served verbatim
// by monitoring endpoints (see internal/server).
type Stats struct {
	// Framework / Oracle echo the configuration.
	Framework Framework `json:"framework"`
	Oracle    Oracle    `json:"oracle"`
	// Processed is the number of accepted actions.
	Processed int64 `json:"processed"`
	// Checkpoints is the number of live checkpoints.
	Checkpoints int `json:"checkpoints"`
	// AvgCheckpoints is the average number of live checkpoints per action,
	// the quantity plotted in the paper's Figure 6.
	AvgCheckpoints float64 `json:"avg_checkpoints"`
	// ElementsFed counts oracle updates (the O(d·N) term of §4.2).
	ElementsFed int64 `json:"elements_fed"`
}

// Stats returns a snapshot of maintenance counters. Buffered actions are
// flushed first.
func (t *Tracker) Stats() Stats {
	fs := t.flushed().Stats()
	fwk := IC
	if t.fw.Config().Sparse {
		fwk = SIC
	}
	return Stats{
		Framework:      fwk,
		Oracle:         t.orc,
		Processed:      fs.Processed,
		Checkpoints:    t.fw.Checkpoints(),
		AvgCheckpoints: fs.AvgCheckpoints,
		ElementsFed:    fs.ElementsFed,
	}
}

// CheckpointStarts returns the start IDs of the live checkpoints in
// ascending order (under SIC the first entry may precede the window start:
// the retained Λ[x0] of Algorithm 2). The slice is freshly allocated.
// Buffered actions are flushed first.
func (t *Tracker) CheckpointStarts() []ActionID { return t.flushed().CheckpointStarts() }

// CheckpointValues returns the oracle values of the live checkpoints in
// ascending start order, parallel to CheckpointStarts. The slice is freshly
// allocated. Buffered actions are flushed first.
func (t *Tracker) CheckpointValues() []float64 { return t.flushed().CheckpointValues() }

// SeedInfluence is one seed user's influence set as captured by a Snapshot:
// the users the seed currently influences within the window (Definition 1),
// in the stream index's recency order. It is the row source of the query
// layer's "influence" scan (package query), which must run entirely off the
// immutable snapshot so analytics never touch the ingest path.
type SeedInfluence struct {
	// User is the seed.
	User UserID `json:"user"`
	// Influenced is I(User) for the current window; never nil.
	Influenced []UserID `json:"influenced"`
}

// Snapshot is an immutable, JSON-marshalable view of a Tracker's current
// answer and maintenance counters. A Snapshot shares no memory with the
// Tracker that produced it, so it may be published to — and read by — any
// number of goroutines while the owning goroutine keeps ingesting. This is
// the read path of the serving layer (internal/server): the single-writer
// ingest loop calls Tracker.Snapshot after each applied batch and query
// handlers only ever touch the published Snapshot.
type Snapshot struct {
	// Framework / Oracle echo the configuration.
	Framework Framework `json:"framework"`
	Oracle    Oracle    `json:"oracle"`
	// Processed is the number of accepted actions.
	Processed int64 `json:"processed"`
	// WindowStart is the ID of the first action of the current window.
	WindowStart ActionID `json:"window_start"`
	// Seeds is the current solution: at most K influential users.
	Seeds []UserID `json:"seeds"`
	// Value is the influence objective of Seeds as maintained by the
	// answering checkpoint.
	Value float64 `json:"value"`
	// Checkpoints is the number of live checkpoints; CheckpointStarts and
	// CheckpointValues describe them in ascending start order.
	Checkpoints      int        `json:"checkpoints"`
	CheckpointStarts []ActionID `json:"checkpoint_starts"`
	CheckpointValues []float64  `json:"checkpoint_values"`
	// SeedInfluence holds, in Seeds order, each seed's influence set within
	// the current window — the per-user rows the query layer's scans pull
	// from without ever touching the live tracker. Capturing it costs one
	// slice copy per seed (the sets are contiguous log prefixes), bounded by
	// K sets per snapshot.
	SeedInfluence []SeedInfluence `json:"seed_influence"`
	// AvgCheckpoints / ElementsFed / CheckpointsCreated /
	// CheckpointsDeleted are the cumulative maintenance counters of Stats
	// and the experiment harness.
	AvgCheckpoints     float64 `json:"avg_checkpoints"`
	ElementsFed        int64   `json:"elements_fed"`
	CheckpointsCreated int64   `json:"checkpoints_created"`
	CheckpointsDeleted int64   `json:"checkpoints_deleted"`
	// Tiered window state (memory accounting). ResidentBytes estimates the
	// stream index's total resident footprint; HotLogBytes and ColdLogBytes
	// split the contribution-log entries into the in-memory and the
	// spilled-to-segment share. ColdUsers / ColdSegments describe the cold
	// tier's current extent ("how much of the window lives on disk");
	// Spills counts spill passes and ColdFaults counts cold-segment reads
	// (queries merging spilled entries into an answer — reads never move a
	// log back to RAM) since the tracker started — the observability
	// surface of simserve's memory-budget mode. All zero on trackers
	// without a SpillDir.
	ResidentBytes int64 `json:"resident_bytes"`
	HotLogBytes   int64 `json:"hot_log_bytes"`
	ColdLogBytes  int64 `json:"cold_log_bytes"`
	ColdUsers     int   `json:"cold_users"`
	ColdSegments  int   `json:"cold_segments"`
	Spills        int64 `json:"spills"`
	ColdFaults    int64 `json:"cold_faults"`
}

// Stats returns the snapshot's counters as a Stats value. Defined here, next
// to both types, so a field added to Stats is populated in one place.
func (s *Snapshot) Stats() Stats {
	return Stats{
		Framework:      s.Framework,
		Oracle:         s.Oracle,
		Processed:      s.Processed,
		Checkpoints:    s.Checkpoints,
		AvgCheckpoints: s.AvgCheckpoints,
		ElementsFed:    s.ElementsFed,
	}
}

// Snapshot flushes buffered actions and captures the tracker's current
// answer and counters in one self-contained value. Like every query method
// it must be called by the goroutine that owns the Tracker; unlike the
// other queries, the returned value is safe to hand to other goroutines —
// the seed slice and checkpoint slices are copies.
func (t *Tracker) Snapshot() Snapshot {
	fw := t.flushed()
	fs := fw.Stats()
	fwk := IC
	if fw.Config().Sparse {
		fwk = SIC
	}
	seeds := append([]UserID{}, fw.Seeds()...)
	// Capture each seed's influence set so snapshot consumers (the query
	// layer's scans) need no access to the live stream index. Slices are
	// deliberately non-nil: a Snapshot must survive a JSON round trip
	// bit-identically, and null decodes to nil.
	infl := make([]SeedInfluence, 0, len(seeds))
	ws := fw.WindowStart()
	st := fw.Stream()
	for _, u := range seeds {
		set := st.InfluenceSet(u, ws)
		if set == nil {
			set = []UserID{}
		}
		infl = append(infl, SeedInfluence{User: u, Influenced: set})
	}
	ts := st.TierStats()
	coldSegs := 0
	if t.store != nil {
		coldSegs = t.store.LiveSegments()
	}
	return Snapshot{
		Framework:          fwk,
		Oracle:             t.orc,
		Processed:          fs.Processed,
		WindowStart:        ws,
		Seeds:              seeds,
		Value:              fw.Value(),
		Checkpoints:        fw.Checkpoints(),
		CheckpointStarts:   fw.CheckpointStarts(),
		CheckpointValues:   fw.CheckpointValues(),
		SeedInfluence:      infl,
		AvgCheckpoints:     fs.AvgCheckpoints,
		ElementsFed:        fs.ElementsFed,
		CheckpointsCreated: fs.Created,
		CheckpointsDeleted: fs.Deleted,
		ResidentBytes:      st.RetainedBytesEstimate(),
		HotLogBytes:        ts.HotLogBytes,
		ColdLogBytes:       ts.ColdLogBytes,
		ColdUsers:          ts.ColdUsers,
		ColdSegments:       coldSegs,
		Spills:             ts.Spills,
		ColdFaults:         ts.ColdFaults,
	}
}

// Internal returns the underlying framework for the benchmark harness and
// white-box examples, flushing buffered actions first. Treat it as
// read-only.
func (t *Tracker) Internal() *core.Framework { return t.flushed() }
