package sim_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/sim"
)

// fig1Actions is the paper's Figure 1 stream, the shared fixture of the
// example tests.
func fig1Actions() []sim.Action {
	return []sim.Action{
		{ID: 1, User: 1, Parent: sim.NoParent},
		{ID: 2, User: 2, Parent: 1},
		{ID: 3, User: 3, Parent: sim.NoParent},
		{ID: 4, User: 3, Parent: 1},
		{ID: 5, User: 4, Parent: 3},
		{ID: 6, User: 1, Parent: 3},
		{ID: 7, User: 5, Parent: 3},
		{ID: 8, User: 4, Parent: 7},
	}
}

// TestSnapshotMatchesQueries asserts that Snapshot reports exactly what the
// individual query methods report, and that the snapshot's slices are
// copies, not views into tracker-owned memory.
func TestSnapshotMatchesQueries(t *testing.T) {
	for _, fwk := range []sim.Framework{sim.SIC, sim.IC} {
		tr, err := sim.New(sim.Config{K: 2, WindowSize: 6, Framework: fwk, BatchSize: 3})
		if err != nil {
			t.Fatal(err)
		}
		if err := tr.ProcessAll(fig1Actions()); err != nil {
			t.Fatal(err)
		}
		snap := tr.Snapshot()
		if got, want := snap.Seeds, tr.Seeds(); !reflect.DeepEqual(got, append([]sim.UserID{}, want...)) {
			t.Errorf("%v: snapshot seeds %v, query %v", fwk, got, want)
		}
		if snap.Value != tr.Value() {
			t.Errorf("%v: snapshot value %v, query %v", fwk, snap.Value, tr.Value())
		}
		if snap.WindowStart != tr.WindowStart() {
			t.Errorf("%v: snapshot window start %v, query %v", fwk, snap.WindowStart, tr.WindowStart())
		}
		if snap.Processed != tr.Processed() {
			t.Errorf("%v: snapshot processed %v, query %v", fwk, snap.Processed, tr.Processed())
		}
		if !reflect.DeepEqual(snap.CheckpointStarts, tr.CheckpointStarts()) {
			t.Errorf("%v: snapshot starts %v, query %v", fwk, snap.CheckpointStarts, tr.CheckpointStarts())
		}
		if !reflect.DeepEqual(snap.CheckpointValues, tr.CheckpointValues()) {
			t.Errorf("%v: snapshot cp values %v, query %v", fwk, snap.CheckpointValues, tr.CheckpointValues())
		}
		if snap.Checkpoints != len(snap.CheckpointStarts) {
			t.Errorf("%v: Checkpoints %d != len(starts) %d", fwk, snap.Checkpoints, len(snap.CheckpointStarts))
		}
		if snap.Framework != fwk {
			t.Errorf("snapshot framework %v, want %v", snap.Framework, fwk)
		}
		if len(snap.SeedInfluence) != len(snap.Seeds) {
			t.Fatalf("%v: %d SeedInfluence entries for %d seeds", fwk, len(snap.SeedInfluence), len(snap.Seeds))
		}
		for i, si := range snap.SeedInfluence {
			if si.User != snap.Seeds[i] {
				t.Errorf("%v: SeedInfluence[%d].User = %d, want seed %d", fwk, i, si.User, snap.Seeds[i])
			}
			want := tr.InfluenceSet(si.User)
			if want == nil {
				want = []sim.UserID{}
			}
			if si.Influenced == nil || !reflect.DeepEqual(si.Influenced, want) {
				t.Errorf("%v: SeedInfluence[%d] = %v, want %v (non-nil)", fwk, i, si.Influenced, want)
			}
		}

		// Mutating the snapshot must not disturb the tracker.
		if len(snap.Seeds) == 0 {
			t.Fatalf("%v: no seeds on the Figure 1 stream", fwk)
		}
		snap.Seeds[0] = 999
		snap.CheckpointValues[0] = -1
		if tr.Seeds()[0] == 999 || tr.CheckpointValues()[0] == -1 {
			t.Errorf("%v: snapshot shares memory with the tracker", fwk)
		}
	}
}

// TestSnapshotFlushesBatch asserts Snapshot covers actions still buffered by
// batching at the moment of the call.
func TestSnapshotFlushesBatch(t *testing.T) {
	tr, err := sim.New(sim.Config{K: 2, WindowSize: 8, BatchSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ProcessAll(fig1Actions()); err != nil {
		t.Fatal(err)
	}
	if snap := tr.Snapshot(); snap.Processed != 8 {
		t.Fatalf("snapshot processed %d, want 8 (buffered batch not flushed)", snap.Processed)
	}
}

// TestSnapshotJSON round-trips a snapshot through encoding/json, asserting
// the by-name encoding of Framework and Oracle.
func TestSnapshotJSON(t *testing.T) {
	tr, err := sim.New(sim.Config{K: 2, WindowSize: 8, Oracle: sim.ThresholdStream})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ProcessAll(fig1Actions()); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["framework"] != "SIC" || m["oracle"] != "ThresholdStream" {
		t.Errorf("framework/oracle encoded as %v/%v, want SIC/ThresholdStream", m["framework"], m["oracle"])
	}
	var back sim.Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tr.Snapshot()) {
		t.Errorf("snapshot did not survive a JSON round-trip:\n got %+v\nwant %+v", back, tr.Snapshot())
	}
}

func TestParseFrameworkOracle(t *testing.T) {
	cases := []struct {
		in    string
		fwk   sim.Framework
		fwkOK bool
		orc   sim.Oracle
		orcOK bool
	}{
		{"sic", sim.SIC, true, 0, false},
		{"IC", sim.IC, true, 0, false},
		{" Sieve ", 0, false, sim.SieveStreaming, true},
		{"SieveStreaming", 0, false, sim.SieveStreaming, true},
		{"threshold", 0, false, sim.ThresholdStream, true},
		{"ThresholdStream", 0, false, sim.ThresholdStream, true},
		{"BlogWatch", 0, false, sim.BlogWatch, true},
		{"mkc", 0, false, sim.MkC, true},
		{"bogus", 0, false, 0, false},
	}
	for _, c := range cases {
		fwk, err := sim.ParseFramework(c.in)
		if (err == nil) != c.fwkOK || (c.fwkOK && fwk != c.fwk) {
			t.Errorf("ParseFramework(%q) = %v, %v; want %v, ok=%v", c.in, fwk, err, c.fwk, c.fwkOK)
		}
		orc, err := sim.ParseOracle(c.in)
		if (err == nil) != c.orcOK || (c.orcOK && orc != c.orc) {
			t.Errorf("ParseOracle(%q) = %v, %v; want %v, ok=%v", c.in, orc, err, c.orc, c.orcOK)
		}
	}
}

func TestFrameworkOracleTextRoundTrip(t *testing.T) {
	for _, fwk := range []sim.Framework{sim.SIC, sim.IC} {
		b, err := fwk.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back sim.Framework
		if err := back.UnmarshalText(b); err != nil || back != fwk {
			t.Errorf("framework %v round-tripped to %v (%v)", fwk, back, err)
		}
	}
	for _, orc := range []sim.Oracle{sim.SieveStreaming, sim.ThresholdStream, sim.BlogWatch, sim.MkC} {
		b, err := orc.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back sim.Oracle
		if err := back.UnmarshalText(b); err != nil || back != orc {
			t.Errorf("oracle %v round-tripped to %v (%v)", orc, back, err)
		}
	}
	if _, err := sim.Framework(42).MarshalText(); err == nil {
		t.Error("marshaling an invalid framework should fail")
	}
	if _, err := sim.Oracle(42).MarshalText(); err == nil {
		t.Error("marshaling an invalid oracle should fail")
	}
}
