package stream

import "sort"

// Tiered window state: the per-user contribution logs are split into a hot
// tier (the in-RAM userLogs of stream.go) and a cold tier of immutable
// on-disk segments reached through a ColdStore. Spilling moves a user's
// whole hot log into a new segment and replaces it with an Extent. Spilled
// entries then stay cold until they expire: they are never copied back into
// the hot tier.
//
// That residency rule is what keeps a budgeted tracker from thrashing. When
// a spilled user is touched again by ingest, the contribution grows a fresh
// hot log in front of the cold extent — no I/O. Action times are globally
// monotone, so every hot entry is newer than every cold entry, and the true
// merged log is exactly the hot list followed by the cold entries whose
// user has not re-contributed since the spill (concatenation plus dedup
// preserves descending recency). Queries materialize that merged prefix
// into reused scratch on demand (logPrefix), reading the extent through the
// store without changing what is resident; repeated reads are served by the
// mmap page cache, not by re-inflating the hot tier.
//
// Spill writes happen only inside Advance, at the budget check, and only
// while the hot tier exceeds the configured budget: the per-action ingest
// path never performs I/O. When a both-tier user is picked for spilling
// again, the pass folds its old extent into the newly written segment (one
// read, then the old extent is released), so "at most one extent per user"
// stays invariant. Membership-only queries (Influencers) are answered from
// Extent.MaxT without touching the store, and a cold extent whose newest
// entry expires is dropped without ever being read — the expiry loop is
// guaranteed to visit it, because every log entry's timestamp is the ID of
// some retained action whose contributor set includes the log's owner.

// SegmentID identifies one immutable cold-segment file within a ColdStore.
type SegmentID uint64

// Extent locates one user's spilled contribution log inside a cold segment:
// Count entries of fixed width starting Off bytes into the segment's data
// area, newest first. MaxT caches the newest entry's time so membership
// queries and expiry decisions need no I/O.
type Extent struct {
	Seg   SegmentID
	Off   int64
	Count int
	MaxT  ActionID
}

// SegmentStat describes one live segment for the snapshot manifest: the
// data-section CRC and total file size recorded at write time and verified
// against the file on restore.
type SegmentStat struct {
	CRC  uint32
	Size int64
}

// ColdStore is the segment-file backend of the cold tier, implemented by
// dataio.SegmentStore. Implementations are single-writer, matching Stream.
//
// The store tracks a reference count per segment: WriteLogs starts a new
// segment with one reference per extent written, Release drops one, and
// Retain re-registers a reference when a restored stream re-adopts an
// extent. A segment whose count reaches zero is retired but NOT deleted —
// a durable snapshot on disk may still reference it — deletion is the
// caller's explicit garbage-collection step, taken only when it knows no
// snapshot references retired segments.
type ColdStore interface {
	// WriteLogs writes the given logs (each a descending-recency Contrib
	// list, all non-empty) into one new immutable segment and returns one
	// Extent per log, in input order. On error no extent is published and
	// the store is unchanged.
	WriteLogs(logs [][]Contrib) ([]Extent, error)
	// ReadLog returns the entries of ext appended to buf[:0]. The returned
	// slice is owned by the caller.
	ReadLog(ext Extent, buf []Contrib) ([]Contrib, error)
	// Retain adds one reference to seg, failing if the store does not have
	// a validated segment by that ID. Used on restore to re-adopt the
	// extents recorded in a snapshot.
	Retain(seg SegmentID) error
	// Release drops one reference to seg; at zero the segment is retired
	// (eligible for explicit GC, not deleted).
	Release(seg SegmentID)
	// Stat returns the manifest identity of a live segment.
	Stat(seg SegmentID) (SegmentStat, error)
}

// contribBytes is the budget-accounting cost of one hot log entry. A
// Contrib is 16 bytes with alignment padding (uint32 + int64).
const contribBytes = 16

// TierStats reports the split of retained per-user log state across the
// hot (resident) and cold (on-disk) tiers plus the cumulative tier-traffic
// counters, for snapshots, serving metrics and the memory benchmarks.
type TierStats struct {
	// HotLogBytes is the resident-entry estimate of the hot tier
	// (contribBytes per entry over all hot logs).
	HotLogBytes int64
	// ColdLogBytes is the on-disk entry footprint of the cold tier.
	ColdLogBytes int64
	// ColdUsers is the number of users holding a cold extent. A cold user
	// may also hold a hot log: contributions after the spill grow a hot
	// residue in front of the extent.
	ColdUsers int
	// Spills / SpilledLogs count spill passes and the logs they moved.
	Spills      int64
	SpilledLogs int64
	// ColdFaults counts cold-extent reads: query materializations that
	// merged spilled entries into their answer, and spill passes folding a
	// user's previous extent into a new segment. Reads never change
	// residency, so this is read traffic, not tier migration.
	ColdFaults int64
	// SpillErrs / ColdReadErrs count failed spill writes and failed
	// cold-extent reads. Both degrade capacity or completeness, never
	// correctness of acked data: a failed spill leaves the logs hot, a
	// failed read leaves the extent cold for a later retry and degrades
	// that one answer to the hot tier's entries.
	SpillErrs    int64
	ColdReadErrs int64
}

// SetCold attaches a cold-tier store and a hot-tier memory budget (in
// bytes of log entries). A nil store disables spilling; budget <= 0 with a
// store attached means "never spill" but still allows restoring snapshots
// that reference cold segments. Must be called before any Ingest.
func (s *Stream) SetCold(store ColdStore, budget int64) {
	s.store = store
	s.budget = budget
}

// TierStats returns the current hot/cold split and tier-traffic counters.
func (s *Stream) TierStats() TierStats {
	st := s.tier
	st.HotLogBytes = s.hotBytes
	st.ColdLogBytes = s.coldBytes
	st.ColdUsers = len(s.cold)
	return st
}

// ColdErr returns the first cold-tier I/O error encountered by a query
// that has no error return of its own (a failed cold read inside Influence
// or friends). The extent stays cold, so the condition is transient if the
// underlying fault is; the error is sticky for observability.
func (s *Stream) ColdErr() error { return s.coldErr }

// logPrefix returns u's influence prefix for the suffix starting at start:
// the hot entries with T >= start followed by the cold entries with
// T >= start whose user has not re-contributed since the spill. It is the
// single read gateway of the tiered log — and it never changes residency:
// the merged view lives in reused scratch, valid until the next influence
// query, Ingest, or Advance. A cold read failure degrades the answer to
// the hot entries and returns the error (also recorded sticky in ColdErr).
func (s *Stream) logPrefix(u UserID, start ActionID) ([]Contrib, error) {
	if start < s.horizon {
		// Query semantics: starts older than the horizon are answered as if
		// start == Horizon(). Hot logs are pruned eagerly so their prefixes
		// enforce this on their own; the clamp makes the cold prefix —
		// pruned only lazily, here — agree.
		start = s.horizon
	}
	var hot []Contrib
	if l := s.logs[u]; l != nil {
		hot = l.prefix(start)
	}
	if s.cold == nil {
		// Fast path: the cold tier materializes only at the first spill, so
		// unbudgeted streams pay one nil check here and nothing else.
		return hot, nil
	}
	ext, ok := s.cold[u]
	if !ok || ext.MaxT < start {
		// No extent, or every cold entry predates the suffix: the newest
		// cold time already misses, so the whole extent does — no I/O.
		return hot, nil
	}
	cold, err := s.store.ReadLog(ext, s.readBuf[:0])
	if err != nil {
		s.tier.ColdReadErrs++
		if s.coldErr == nil {
			s.coldErr = err
		}
		return hot, err
	}
	s.tier.ColdFaults++
	cold = PrefixFor(cold, start)
	if len(hot) == 0 {
		s.readBuf = cold[:0]
		return cold, nil
	}
	// Both tiers populated: hot entries are all newer than cold ones (times
	// are globally monotone), so the merged prefix is hot followed by the
	// cold entries whose user has not re-contributed since the spill.
	out := append(s.mergeBuf[:0], hot...)
	for _, c := range cold {
		stale := false
		for _, h := range hot {
			if h.V == c.V {
				stale = true
				break
			}
		}
		if !stale {
			out = append(out, c)
		}
	}
	s.readBuf = cold[:0]
	s.mergeBuf = out
	return out, nil
}

// dropDeadExtent removes u's cold extent if its newest entry has expired,
// without reading it. Called from the expiry loop in Advance, which visits
// every owner of an expiring entry.
func (s *Stream) dropDeadExtent(u UserID) {
	ext, ok := s.cold[u]
	if !ok || ext.MaxT >= s.horizon {
		return
	}
	delete(s.cold, u)
	s.coldBytes -= int64(ext.Count) * contribBytes
	s.store.Release(ext.Seg)
}

// spillCandidate orders the hot logs for a spill pass.
type spillCandidate struct {
	u UserID
	l *userLog
}

// maybeSpill runs the budget check at the expiry boundary: while the hot
// tier exceeds the budget, the longest-idle logs (smallest newest-entry
// time) are batch-written into one new segment until the hot tier fits
// under the low watermark. The watermark hysteresis (3/4 of the budget)
// keeps a tracker hovering at its budget from writing one tiny segment per
// expiry batch.
//
// A candidate that already holds a cold extent (a spilled user that was
// touched again) is folded: its old extent is read, merged behind the hot
// residue with the usual dedup, written as part of the new segment, and
// only then released — preserving "at most one extent per user" without
// ever losing entries. If the fold read fails the candidate is skipped
// (it simply stays both-tier) and the pass moves on.
func (s *Stream) maybeSpill() {
	if s.store == nil || s.budget <= 0 || s.hotBytes <= s.budget {
		return
	}
	low := s.budget - s.budget/4

	cands := make([]spillCandidate, 0, len(s.logs))
	for u, l := range s.logs {
		if len(l.list) > 0 {
			cands = append(cands, spillCandidate{u, l})
		}
	}
	// Longest-idle first; user ID breaks ties so the pass is deterministic
	// regardless of map iteration order.
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].l.list[0].T != cands[j].l.list[0].T {
			return cands[i].l.list[0].T < cands[j].l.list[0].T
		}
		return cands[i].u < cands[j].u
	})

	var (
		users    []UserID
		logs     [][]Contrib
		olds     []Extent // zero-value when the user had no prior extent
		hadOld   []bool
		reclaims int64
	)
	for _, c := range cands {
		if s.hotBytes-reclaims <= low {
			break
		}
		list := c.l.list
		old, fold := s.cold[c.u]
		if fold {
			prev, err := s.store.ReadLog(old, s.readBuf[:0])
			if err != nil {
				s.tier.ColdReadErrs++
				if s.coldErr == nil {
					s.coldErr = err
				}
				continue
			}
			s.tier.ColdFaults++
			// Lazy prune of the old extent, then the standard merge: hot
			// residue first, cold entries that did not re-contribute after.
			i := sort.Search(len(prev), func(i int) bool { return prev[i].T < s.horizon })
			prev = prev[:i]
			merged := append(make([]Contrib, 0, len(list)+len(prev)), list...)
			for _, cc := range prev {
				stale := false
				for _, h := range list {
					if h.V == cc.V {
						stale = true
						break
					}
				}
				if !stale {
					merged = append(merged, cc)
				}
			}
			s.readBuf = prev[:0]
			list = merged
		}
		users = append(users, c.u)
		logs = append(logs, list)
		olds = append(olds, old)
		hadOld = append(hadOld, fold)
		reclaims += int64(len(c.l.list)) * contribBytes
	}
	if len(logs) == 0 {
		return
	}

	exts, err := s.store.WriteLogs(logs)
	if err != nil {
		// The segment was not published: every log stays hot and correct,
		// we are merely still over budget. The next Advance retries.
		s.tier.SpillErrs++
		if s.coldErr == nil {
			s.coldErr = err
		}
		return
	}
	if s.cold == nil {
		s.cold = make(map[UserID]Extent, len(exts))
	}
	for i, u := range users {
		if hadOld[i] {
			s.coldBytes -= int64(olds[i].Count) * contribBytes
			s.store.Release(olds[i].Seg)
		}
		s.cold[u] = exts[i]
		s.coldBytes += int64(exts[i].Count) * contribBytes
		l := s.logs[u]
		l.list = nil
		delete(s.logs, u)
	}
	s.hotBytes -= reclaims
	s.tier.Spills++
	s.tier.SpilledLogs += int64(len(users))
}
