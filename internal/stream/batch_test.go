package stream

import (
	"math/rand"
	"reflect"
	"testing"
)

func randomActions(seed int64, n, users int) []Action {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Action, n)
	for i := range out {
		a := Action{ID: ActionID(i + 1), User: UserID(rng.Intn(users)), Parent: NoParent}
		if i > 0 && rng.Float64() < 0.6 {
			a.Parent = ActionID(rng.Intn(i) + 1)
		}
		out[i] = a
	}
	return out
}

// TestIngestBatchMatchesIngest: batch ingestion must leave the stream in the
// same state as per-action ingestion and report the same deltas.
func TestIngestBatchMatchesIngest(t *testing.T) {
	actions := randomActions(11, 400, 30)
	serial, batched := New(), New()

	var wantDeltas []Delta
	for _, a := range actions {
		d, err := serial.Ingest(a)
		if err != nil {
			t.Fatal(err)
		}
		d.Contributors = append([]UserID(nil), d.Contributors...)
		wantDeltas = append(wantDeltas, d)
	}

	var gotDeltas []Delta
	for lo := 0; lo < len(actions); {
		hi := lo + 1 + lo%7 // uneven batch sizes, including 1
		if hi > len(actions) {
			hi = len(actions)
		}
		ds, err := batched.IngestBatch(actions[lo:hi])
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range ds {
			d.Contributors = append([]UserID(nil), d.Contributors...)
			gotDeltas = append(gotDeltas, d)
		}
		lo = hi
	}

	if !reflect.DeepEqual(wantDeltas, gotDeltas) {
		for i := range wantDeltas {
			if !reflect.DeepEqual(wantDeltas[i], gotDeltas[i]) {
				t.Fatalf("delta %d diverged: serial %+v batch %+v", i, wantDeltas[i], gotDeltas[i])
			}
		}
		t.Fatal("deltas diverged")
	}

	if s, b := serial.Stats(), batched.Stats(); s != b {
		t.Fatalf("stats diverged: serial %+v batch %+v", s, b)
	}
	for u := UserID(0); u < 30; u++ {
		if s, b := serial.InfluenceSet(u, 1), batched.InfluenceSet(u, 1); !reflect.DeepEqual(s, b) {
			t.Fatalf("influence set of %d diverged: %v vs %v", u, s, b)
		}
	}
}

// TestIngestBatchDeltasStayValid: all deltas of one batch must be readable
// together (the per-call aliasing of Ingest is exactly what batching lifts).
func TestIngestBatchDeltasStayValid(t *testing.T) {
	st := New()
	actions := []Action{
		{ID: 1, User: 1, Parent: NoParent},
		{ID: 2, User: 2, Parent: 1},
		{ID: 3, User: 3, Parent: 2},
		{ID: 4, User: 4, Parent: 3},
	}
	ds, err := st.IngestBatch(actions)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]UserID{{1}, {2, 1}, {3, 2, 1}, {4, 3, 2, 1}}
	for i, d := range ds {
		if !reflect.DeepEqual(d.Contributors, want[i]) {
			t.Fatalf("delta %d contributors = %v, want %v", i, d.Contributors, want[i])
		}
	}
}

// TestIngestBatchValidatesUpFront: a bad action anywhere in the batch must
// reject the whole batch without mutating the stream.
func TestIngestBatchValidatesUpFront(t *testing.T) {
	st := New()
	if _, err := st.Ingest(Action{ID: 5, User: 1, Parent: NoParent}); err != nil {
		t.Fatal(err)
	}
	cases := [][]Action{
		{{ID: 6, User: 1, Parent: NoParent}, {ID: 6, User: 2, Parent: NoParent}}, // duplicate in batch
		{{ID: 4, User: 1, Parent: NoParent}},                                     // behind stream
		{{ID: 7, User: 1, Parent: NoParent}, {ID: 8, User: 2, Parent: 9}},        // future parent
		{{ID: 9, User: 1, Parent: 9}},                                            // self parent
	}
	for i, batch := range cases {
		if _, err := st.IngestBatch(batch); err == nil {
			t.Fatalf("case %d: batch accepted, want error", i)
		}
		if st.Last() != 5 || st.Len() != 1 {
			t.Fatalf("case %d: stream mutated by rejected batch (last=%d len=%d)", i, st.Last(), st.Len())
		}
	}
}

// TestIngestBatchEmpty: an empty batch is a no-op.
func TestIngestBatchEmpty(t *testing.T) {
	st := New()
	ds, err := st.IngestBatch(nil)
	if err != nil || len(ds) != 0 {
		t.Fatalf("empty batch: %v %v", ds, err)
	}
}
