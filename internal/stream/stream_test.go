package stream

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// paperStream is the running example of Figure 1.
func paperStream() []Action {
	return []Action{
		{1, 1, NoParent},
		{2, 2, 1},
		{3, 3, NoParent},
		{4, 3, 1},
		{5, 4, 3},
		{6, 1, 3},
		{7, 5, 3},
		{8, 4, 7},
		{9, 2, NoParent},
		{10, 6, 9},
	}
}

func ingestAll(t *testing.T, s *Stream, actions []Action) {
	t.Helper()
	for _, a := range actions {
		if _, err := s.Ingest(a); err != nil {
			t.Fatalf("Ingest(%v): %v", a, err)
		}
	}
}

func sortedSet(s *Stream, u UserID, start ActionID) []UserID {
	set := s.InfluenceSet(u, start)
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	if set == nil {
		set = []UserID{}
	}
	return set
}

func TestPaperExample1InfluenceAtTime8(t *testing.T) {
	s := New()
	ingestAll(t, s, paperStream()[:8])
	want := map[UserID][]UserID{
		1: {1, 2, 3},
		2: {2},
		3: {1, 3, 4, 5},
		4: {4},
		5: {4, 5},
		6: {},
	}
	for u, w := range want {
		if got := sortedSet(s, u, 1); !reflect.DeepEqual(got, w) {
			t.Errorf("I_8(u%d) = %v, want %v", u, got, w)
		}
	}
}

func TestPaperExample1InfluenceAtTime10(t *testing.T) {
	s := New()
	ingestAll(t, s, paperStream())
	s.Advance(3) // window W_10 with N=8 covers a3..a10
	want := map[UserID][]UserID{
		1: {1, 3}, // u2 dropped with a2's expiry; u3 kept via unexpired a4
		2: {2, 6},
		3: {1, 3, 4, 5},
		4: {4},
		5: {4, 5},
		6: {6},
	}
	for u, w := range want {
		if got := sortedSet(s, u, 3); !reflect.DeepEqual(got, w) {
			t.Errorf("I_10(u%d) = %v, want %v", u, got, w)
		}
	}
}

func TestInfluenceThroughExpiredAncestor(t *testing.T) {
	// a4 = <u3, a1> stays in the window after a1 expires; u1 must still
	// influence u3 (paper §3: "such an a' is not necessarily in W_t").
	s := New()
	ingestAll(t, s, paperStream())
	s.Advance(3)
	got := sortedSet(s, 1, 3)
	if !reflect.DeepEqual(got, []UserID{1, 3}) {
		t.Fatalf("I_10(u1) = %v, want [1 3]", got)
	}
}

func TestSuffixQueriesMatchPaperCheckpoints(t *testing.T) {
	// Figure 2 reports the optimal influence values per checkpoint start.
	// Spot-check the underlying influence sets for start = 5 at time 8:
	// actions a5..a8 give I[5](u3) = {u4, u1, u5} (via a5, a6, a7, a8).
	s := New()
	ingestAll(t, s, paperStream()[:8])
	got := sortedSet(s, 3, 5)
	if !reflect.DeepEqual(got, []UserID{1, 4, 5}) {
		t.Fatalf("I_8[5](u3) = %v, want [1 4 5]", got)
	}
	if n := s.InfluenceSize(5, 7); n != 2 { // a7 self, a8 child
		t.Fatalf("|I_8[7](u5)| = %d, want 2", n)
	}
}

func TestIngestErrors(t *testing.T) {
	s := New()
	if _, err := s.Ingest(Action{5, 1, NoParent}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(Action{5, 2, NoParent}); err != ErrNonMonotonicID {
		t.Errorf("duplicate ID: got %v, want ErrNonMonotonicID", err)
	}
	if _, err := s.Ingest(Action{4, 2, NoParent}); err != ErrNonMonotonicID {
		t.Errorf("smaller ID: got %v, want ErrNonMonotonicID", err)
	}
	if _, err := s.Ingest(Action{6, 2, 6}); err != ErrBadParent {
		t.Errorf("self parent: got %v, want ErrBadParent", err)
	}
	if _, err := s.Ingest(Action{6, 2, 9}); err != ErrBadParent {
		t.Errorf("future parent: got %v, want ErrBadParent", err)
	}
	if _, err := s.Ingest(Action{6, 2, 5}); err != nil {
		t.Errorf("valid action rejected: %v", err)
	}
}

func TestDeltaContributorsDeduplicated(t *testing.T) {
	// u1 replies to itself twice: the chain a3 -> a2 -> a1 has u1 three
	// times but must contribute once.
	s := New()
	ingestAll(t, s, []Action{{1, 1, NoParent}, {2, 1, 1}})
	d, err := s.Ingest(Action{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Contributors) != 1 || d.Contributors[0] != 1 {
		t.Fatalf("Contributors = %v, want [1]", d.Contributors)
	}
	if d.Depth != 2 {
		t.Fatalf("Depth = %d, want 2", d.Depth)
	}
	if got := sortedSet(s, 1, 1); !reflect.DeepEqual(got, []UserID{1}) {
		t.Fatalf("I(u1) = %v, want [1]", got)
	}
}

func TestDeltaDepthOfRoot(t *testing.T) {
	s := New()
	d, err := s.Ingest(Action{1, 7, NoParent})
	if err != nil {
		t.Fatal(err)
	}
	if d.Depth != 0 {
		t.Fatalf("root depth = %d, want 0", d.Depth)
	}
	if !reflect.DeepEqual(d.Contributors, []UserID{7}) {
		t.Fatalf("root contributors = %v, want [7]", d.Contributors)
	}
}

func TestAdvanceReleasesRecords(t *testing.T) {
	s := New()
	// A long chain; advancing past everything must empty the index.
	n := 100
	ingestAll(t, s, chain(n))
	if len(s.idx) != n {
		t.Fatalf("index size = %d, want %d", len(s.idx), n)
	}
	s.Advance(ActionID(n + 1))
	if len(s.idx) != 0 {
		t.Fatalf("index size after full advance = %d, want 0", len(s.idx))
	}
	if len(s.logs) != 0 {
		t.Fatalf("logs after full advance = %d, want 0", len(s.logs))
	}
	if s.Len() != 0 {
		t.Fatalf("Len after full advance = %d, want 0", s.Len())
	}
}

// chain returns n actions where each responds to the previous one, all by
// distinct users.
func chain(n int) []Action {
	actions := make([]Action, n)
	for i := range actions {
		p := ActionID(i)
		if i == 0 {
			p = NoParent
		}
		actions[i] = Action{ActionID(i + 1), UserID(i + 1), p}
	}
	return actions
}

func TestAdvanceKeepsAncestorsOfLiveActions(t *testing.T) {
	s := New()
	ingestAll(t, s, chain(50))
	s.Advance(50) // only action 50 retained, but its whole chain is needed
	if len(s.idx) != 50 {
		t.Fatalf("index size = %d, want 50 (full ancestor chain pinned)", len(s.idx))
	}
	// The chain is still resolvable.
	contribs := s.Contributors(50, nil)
	if len(contribs) != 50 {
		t.Fatalf("contributors of live action = %d, want 50", len(contribs))
	}
	// But the expired actions no longer contribute to influence queries at
	// or after the horizon.
	if n := s.InfluenceSize(1, 50); n != 1 { // user 1 influences user 50 via the chain
		t.Fatalf("|I_50(u1)| = %d, want 1", n)
	}
}

func TestAdvanceIdempotentAndMonotone(t *testing.T) {
	s := New()
	ingestAll(t, s, paperStream())
	s.Advance(5)
	if s.Horizon() != 5 {
		t.Fatalf("Horizon = %d, want 5", s.Horizon())
	}
	s.Advance(3) // lowering is a no-op
	if s.Horizon() != 5 {
		t.Fatalf("Horizon after lower Advance = %d, want 5", s.Horizon())
	}
	s.Advance(5)
	if s.Horizon() != 5 {
		t.Fatalf("Horizon after equal Advance = %d, want 5", s.Horizon())
	}
}

func TestQueryOlderThanHorizonClamps(t *testing.T) {
	s := New()
	ingestAll(t, s, paperStream())
	s.Advance(3)
	// start=1 after pruning behaves like start=3.
	if got, want := sortedSet(s, 1, 1), sortedSet(s, 1, 3); !reflect.DeepEqual(got, want) {
		t.Fatalf("pre-horizon query = %v, want clamped %v", got, want)
	}
}

func TestActionsIteration(t *testing.T) {
	s := New()
	ingestAll(t, s, paperStream())
	s.Advance(4)
	var ids []ActionID
	s.Actions(6, func(a Action) bool {
		ids = append(ids, a.ID)
		return true
	})
	if !reflect.DeepEqual(ids, []ActionID{6, 7, 8, 9, 10}) {
		t.Fatalf("Actions(6) = %v", ids)
	}
	// Early stop.
	ids = ids[:0]
	s.Actions(4, func(a Action) bool {
		ids = append(ids, a.ID)
		return len(ids) < 2
	})
	if !reflect.DeepEqual(ids, []ActionID{4, 5}) {
		t.Fatalf("Actions early stop = %v", ids)
	}
}

func TestInfluencersEnumeration(t *testing.T) {
	s := New()
	ingestAll(t, s, paperStream()[:8])
	got := map[UserID]bool{}
	s.Influencers(1, func(u UserID) bool { got[u] = true; return true })
	want := map[UserID]bool{1: true, 2: true, 3: true, 4: true, 5: true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Influencers = %v, want %v", got, want)
	}
	// Suffix start 7: only u5 (a7 self), u4 (a8 self), u3 (ancestor of a7, a8).
	got = map[UserID]bool{}
	s.Influencers(7, func(u UserID) bool { got[u] = true; return true })
	want = map[UserID]bool{3: true, 4: true, 5: true}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Influencers(7) = %v, want %v", got, want)
	}
}

func TestStats(t *testing.T) {
	s := New()
	ingestAll(t, s, paperStream())
	st := s.Stats()
	if st.Users != 6 {
		t.Errorf("Users = %d, want 6", st.Users)
	}
	if st.Actions != 10 {
		t.Errorf("Actions = %d, want 10", st.Actions)
	}
	// Non-root actions and their response distances:
	// a2:1 a4:3 a5:2 a6:3 a7:4 a8:1 a10:1 -> mean 15/7.
	if want := 15.0 / 7.0; !almost(st.AvgRespDist, want) {
		t.Errorf("AvgRespDist = %v, want %v", st.AvgRespDist, want)
	}
	// Depths: a1:0 a2:1 a3:0 a4:1 a5:1 a6:1 a7:1 a8:2 a9:0 a10:1 -> 8/10.
	if want := 0.8; !almost(st.AvgDepth, want) {
		t.Errorf("AvgDepth = %v, want %v", st.AvgDepth, want)
	}
	if want := 0.3; !almost(st.RootFraction, want) {
		t.Errorf("RootFraction = %v, want %v", st.RootFraction, want)
	}
}

func almost(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

// bruteInfluence recomputes I_s(u) from the retained actions by walking each
// action's ancestor chain, the reference semantics of Definition 1.
func bruteInfluence(s *Stream, start ActionID) map[UserID]map[UserID]bool {
	inf := map[UserID]map[UserID]bool{}
	s.Actions(start, func(a Action) bool {
		for _, u := range s.Contributors(a.ID, nil) {
			if inf[u] == nil {
				inf[u] = map[UserID]bool{}
			}
			inf[u][a.User] = true
		}
		return true
	})
	return inf
}

func TestRandomStreamMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := New()
	const n = 3000
	const users = 60
	const window = 500
	for i := 1; i <= n; i++ {
		a := Action{ID: ActionID(i), User: UserID(rng.Intn(users))}
		if i > 1 && rng.Float64() < 0.7 {
			back := rng.Intn(min(i-1, 400)) + 1
			a.Parent = ActionID(i - back)
		} else {
			a.Parent = NoParent
		}
		if _, err := s.Ingest(a); err != nil {
			t.Fatal(err)
		}
		if i > window {
			s.Advance(ActionID(i - window + 1))
		}
		if i%500 != 0 {
			continue
		}
		// Compare incremental influence sets with the brute-force
		// recomputation at a few suffix starts.
		for _, start := range []ActionID{s.Horizon(), s.Horizon() + window/2, ActionID(i)} {
			want := bruteInfluence(s, start)
			s.Influencers(start, func(u UserID) bool {
				got := map[UserID]bool{}
				s.Influence(u, start, func(v UserID) bool { got[v] = true; return true })
				if !reflect.DeepEqual(got, want[u]) {
					t.Fatalf("t=%d start=%d user=%d: incremental %v != brute %v", i, start, u, got, want[u])
				}
				return true
			})
			for u := range want {
				if s.InfluenceSize(u, start) != len(want[u]) {
					t.Fatalf("t=%d start=%d: user %d missing from incremental index", i, start, u)
				}
			}
		}
	}
}

func TestUserLogRecencyOrder(t *testing.T) {
	l := &userLog{}
	for i := 1; i <= 1000; i++ {
		l.touch(UserID(i%50), ActionID(i)) // 50 distinct users, repeatedly
	}
	if got := len(l.list); got != 50 {
		t.Fatalf("distinct entries = %d, want 50", got)
	}
	for i := 1; i < len(l.list); i++ {
		if l.list[i-1].T <= l.list[i].T {
			t.Fatalf("list not descending at %d: %v %v", i, l.list[i-1], l.list[i])
		}
	}
	// The most recent toucher sits at the front.
	if l.list[0].V != UserID(1000%50) || l.list[0].T != 1000 {
		t.Fatalf("front = %v", l.list[0])
	}
	// Prefix semantics: entries with T >= 990 are the last 11 touches'
	// distinct users.
	if got := len(l.prefix(990)); got != 11 {
		t.Fatalf("prefix(990) = %d entries, want 11", got)
	}
	// Pruning truncates the tail.
	l.prune(951)
	if got := len(l.list); got != 50 {
		t.Fatalf("after prune(951): %d entries, want 50 (every user touched since)", got)
	}
	l.prune(990)
	if got := len(l.list); got != 11 {
		t.Fatalf("after prune(990): %d entries, want 11", got)
	}
}

func TestUserLogMoveToFront(t *testing.T) {
	l := &userLog{}
	l.touch(7, 1)
	l.touch(8, 2)
	l.touch(9, 3)
	l.touch(7, 4) // 7 moves back to the front
	want := []Contrib{{7, 4}, {9, 3}, {8, 2}}
	if !reflect.DeepEqual(l.list, want) {
		t.Fatalf("list = %v, want %v", l.list, want)
	}
}

func TestActionString(t *testing.T) {
	if got := (Action{3, 7, NoParent}).String(); got != "<u7, nil>_3" {
		t.Errorf("root String = %q", got)
	}
	if got := (Action{5, 2, 3}).String(); got != "<u2, a3>_5" {
		t.Errorf("reply String = %q", got)
	}
}

// TestNewSizedMatchesNew: the capacity hint is purely advisory — a
// pre-sized stream answers every query identically to a default one, for
// hints below, at and above the actual user count.
func TestNewSizedMatchesNew(t *testing.T) {
	actions := make([]Action, 0, 500)
	for i := 1; i <= 500; i++ {
		a := Action{ID: ActionID(i), User: UserID(i % 37), Parent: NoParent}
		if i > 1 && i%3 != 0 {
			a.Parent = ActionID(i - 1)
		}
		actions = append(actions, a)
	}
	ref := New()
	for _, a := range actions {
		if _, err := ref.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	ref.Advance(200)
	for _, hint := range []int{-1, 0, 10, 37, 10000} {
		s := NewSized(hint)
		for _, a := range actions {
			if _, err := s.Ingest(a); err != nil {
				t.Fatal(err)
			}
		}
		s.Advance(200)
		if s.Stats() != ref.Stats() {
			t.Fatalf("hint %d: stats %+v != %+v", hint, s.Stats(), ref.Stats())
		}
		for u := UserID(0); u < 37; u++ {
			if got, want := s.InfluenceSet(u, 200), ref.InfluenceSet(u, 200); !reflect.DeepEqual(got, want) {
				t.Fatalf("hint %d: user %d influence %v != %v", hint, u, got, want)
			}
		}
	}
}

func BenchmarkIngestChainDepth5(b *testing.B) {
	s := New()
	for i := 1; i <= b.N; i++ {
		a := Action{ID: ActionID(i), User: UserID(i % 1000)}
		if i > 5 && i%6 != 0 {
			a.Parent = ActionID(i - 1)
		} else {
			a.Parent = NoParent
		}
		if _, err := s.Ingest(a); err != nil {
			b.Fatal(err)
		}
		if i > 10000 {
			s.Advance(ActionID(i - 10000))
		}
	}
}
