package stream

import (
	"errors"
	"reflect"
	"sort"
	"testing"
)

// fakeStore is an in-memory ColdStore with switchable failure modes, for
// pinning the residency and degraded-path semantics of the tiered window
// state without any filesystem. Extent.Off doubles as the log index within
// a segment.
type fakeStore struct {
	segs     map[SegmentID][][]Contrib
	refs     map[SegmentID]int
	next     SegmentID
	writeErr error
	readErr  error
	reads    int
}

func newFakeStore() *fakeStore {
	return &fakeStore{
		segs: map[SegmentID][][]Contrib{},
		refs: map[SegmentID]int{},
		next: 1,
	}
}

func (f *fakeStore) WriteLogs(logs [][]Contrib) ([]Extent, error) {
	if f.writeErr != nil {
		return nil, f.writeErr
	}
	id := f.next
	f.next++
	kept := make([][]Contrib, len(logs))
	exts := make([]Extent, len(logs))
	for i, l := range logs {
		kept[i] = append([]Contrib(nil), l...)
		exts[i] = Extent{Seg: id, Off: int64(i), Count: len(l), MaxT: l[0].T}
	}
	f.segs[id] = kept
	f.refs[id] = len(logs)
	return exts, nil
}

func (f *fakeStore) ReadLog(ext Extent, buf []Contrib) ([]Contrib, error) {
	f.reads++
	if f.readErr != nil {
		return nil, f.readErr
	}
	return append(buf, f.segs[ext.Seg][ext.Off]...), nil
}

func (f *fakeStore) Retain(seg SegmentID) error {
	if _, ok := f.segs[seg]; !ok {
		return errors.New("fake: unknown segment")
	}
	f.refs[seg]++
	return nil
}

func (f *fakeStore) Release(seg SegmentID) {
	if f.refs[seg] > 0 {
		f.refs[seg]--
	}
}

func (f *fakeStore) Stat(seg SegmentID) (SegmentStat, error) {
	if _, ok := f.segs[seg]; !ok {
		return SegmentStat{}, errors.New("fake: unknown segment")
	}
	return SegmentStat{}, nil
}

// coldSet is InfluenceSet sorted for comparison.
func coldSet(s *Stream, u UserID, start ActionID) []UserID {
	set := s.InfluenceSet(u, start)
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	return set
}

// TestStreamSpillLifecycle pins the tier residency rules against a fake
// store: spill selection is longest-idle-first, membership queries and
// ingest never read the store, materializing queries read cold extents
// through without promoting them, a failed read degrades one answer to the
// hot tier with a sticky ColdErr, a failed spill leaves every log hot, and
// a re-spill of a re-touched user folds its old extent into the new
// segment.
func TestStreamSpillLifecycle(t *testing.T) {
	s := New()
	store := newFakeStore()
	// Budget of 100 bytes = 6 hot entries; ten one-entry logs overflow it.
	s.SetCold(store, 100)

	for id := ActionID(1); id <= 10; id++ {
		if _, err := s.Ingest(Action{ID: id, User: UserID(id), Parent: NoParent}); err != nil {
			t.Fatal(err)
		}
	}
	// Expire action 1 (dropping user 1's only entry) and cross the budget
	// check: hot is 9 entries = 144 bytes, the spill must move the five
	// longest-idle logs (users 2..6) to reach the 75-byte low watermark.
	s.Advance(2)
	ts := s.TierStats()
	if ts.Spills != 1 || ts.ColdUsers != 5 || ts.SpilledLogs != 5 {
		t.Fatalf("after first spill: %+v", ts)
	}
	if ts.HotLogBytes != 4*contribBytes || ts.ColdLogBytes != 5*contribBytes {
		t.Fatalf("tier byte split: %+v", ts)
	}

	// Membership answers come from Extent.MaxT with no store I/O.
	var members []UserID
	s.Influencers(2, func(u UserID) bool { members = append(members, u); return true })
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	if want := []UserID{2, 3, 4, 5, 6, 7, 8, 9, 10}; !reflect.DeepEqual(members, want) {
		t.Fatalf("Influencers = %v, want %v", members, want)
	}
	if store.reads != 0 {
		t.Fatalf("membership query performed %d cold reads", store.reads)
	}

	// A materializing query reads the cold extent through: the answer is
	// complete, the log STAYS cold, and a repeat query reads again.
	if got := coldSet(s, 2, 2); !reflect.DeepEqual(got, []UserID{2}) {
		t.Fatalf("I(u2) = %v, want [2]", got)
	}
	ts = s.TierStats()
	if ts.ColdFaults != 1 || ts.ColdUsers != 5 || store.reads != 1 {
		t.Fatalf("after cold query: %+v, reads=%d", ts, store.reads)
	}
	if got := coldSet(s, 2, 2); !reflect.DeepEqual(got, []UserID{2}) {
		t.Fatalf("repeat I(u2) = %v, want [2]", got)
	}
	if ts = s.TierStats(); ts.ColdFaults != 2 || ts.ColdUsers != 5 {
		t.Fatalf("repeat cold query changed residency: %+v", ts)
	}

	// Failed cold read: the extent stays cold, the answer degrades to the
	// (empty) hot tier, and the error is sticky for observability.
	store.readErr = errors.New("injected cold read failure")
	if got := coldSet(s, 3, 2); len(got) != 0 {
		t.Fatalf("degraded I(u3) = %v, want hot-only empty", got)
	}
	ts = s.TierStats()
	if ts.ColdReadErrs != 1 || ts.ColdUsers != 5 {
		t.Fatalf("after failed cold read: %+v", ts)
	}
	if s.ColdErr() == nil {
		t.Fatal("ColdErr not sticky after failed cold read")
	}

	// Ingest touching a spilled user performs no I/O (the store is still
	// failing reads — it is never asked): the contribution grows a hot
	// residue in front of the cold extent.
	reads := store.reads
	if _, err := s.Ingest(Action{ID: 11, User: 3, Parent: NoParent}); err != nil {
		t.Fatal(err)
	}
	if store.reads != reads {
		t.Fatalf("ingest read the cold store %d times", store.reads-reads)
	}
	if got := coldSet(s, 3, 2); !reflect.DeepEqual(got, []UserID{3}) {
		t.Fatalf("degraded both-tier I(u3) = %v, want hot residue [3]", got)
	}

	// Healed store: the same query now merges the tiers, deduplicating the
	// contributor that re-contributed after the spill — still without
	// changing residency.
	store.readErr = nil
	if rec := s.InfluenceRecency(3, 2); len(rec) != 1 || rec[0] != (Contrib{3, 11}) {
		t.Fatalf("healed merged recency log = %v, want [{3 11}]", rec)
	}
	if ts = s.TierStats(); ts.ColdUsers != 5 {
		t.Fatalf("merged query changed residency: %+v", ts)
	}

	// Failed spill: every candidate log stays hot and queryable; only the
	// counters and sticky error record the degradation. The read fault also
	// covers the fold path: user 3 is a candidate with an old extent whose
	// fold read fails, so it is skipped and simply stays both-tier.
	store.writeErr = errors.New("injected spill failure")
	store.readErr = errors.New("injected fold read failure")
	for id := ActionID(12); id <= 19; id++ {
		if _, err := s.Ingest(Action{ID: id, User: UserID(100 + id), Parent: NoParent}); err != nil {
			t.Fatal(err)
		}
	}
	before := s.TierStats()
	// The horizon does not move, but the early-return path still runs the
	// budget check: hot is now 13 entries = 208 bytes against budget 100.
	s.Advance(2)
	ts = s.TierStats()
	if ts.SpillErrs != 1 {
		t.Fatalf("failed spill not counted: %+v", ts)
	}
	if ts.ColdReadErrs != before.ColdReadErrs+1 {
		t.Fatalf("failed fold read not counted: %+v vs %+v", ts, before)
	}
	if ts.ColdUsers != before.ColdUsers || ts.Spills != before.Spills ||
		ts.HotLogBytes != before.HotLogBytes {
		t.Fatalf("failed spill moved logs: %+v vs %+v", ts, before)
	}
	if got := coldSet(s, 113, 3); !reflect.DeepEqual(got, []UserID{113}) {
		t.Fatalf("I(u113) after failed spill = %v, want [113]", got)
	}

	// Heal the disk: the retry spills nine logs, folding user 3's old
	// extent into the new segment (old extent released, merged entries
	// deduped, still one extent per user).
	store.writeErr, store.readErr = nil, nil
	s.Advance(2)
	ts = s.TierStats()
	if ts.Spills != 2 || ts.SpilledLogs != 5+9 {
		t.Fatalf("healed spill did not run: %+v", ts)
	}
	if ts.HotLogBytes != 4*contribBytes {
		t.Fatalf("hot tier after healed spill: %+v", ts)
	}
	if store.refs[1] != 4 {
		t.Fatalf("fold did not release user 3's old extent: seg1 refs = %d", store.refs[1])
	}
	if rec := s.InfluenceRecency(3, 2); len(rec) != 1 || rec[0] != (Contrib{3, 11}) {
		t.Fatalf("folded recency log = %v, want [{3 11}]", rec)
	}

	// Expiry drops dead extents without reading them, and every segment
	// reference drains with them.
	reads = store.reads
	s.Advance(20)
	ts = s.TierStats()
	if ts.ColdUsers != 0 || ts.ColdLogBytes != 0 {
		t.Fatalf("expired extents survived Advance: %+v", ts)
	}
	if store.reads != reads {
		t.Fatalf("expiry read %d cold logs", store.reads-reads)
	}
	for seg, refs := range store.refs {
		if refs != 0 {
			t.Fatalf("segment %d still holds %d references after full expiry", seg, refs)
		}
	}
}
