package stream

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/wire"
)

// streamPayloadVersion versions the Save payload independently of the SIM2
// container that carries it.
const streamPayloadVersion = 1

// Save serializes the stream's complete mutable state — the diffusion index
// (with reference counts), the per-user contribution logs, the retained
// window and the cumulative statistics — so that Restore yields a stream
// that behaves bit-identically to this one on every future Ingest, Advance
// and influence query. Map-backed state is emitted in sorted key order, so
// saving the same stream twice produces identical bytes.
//
// The transient query machinery (generation marks, contributor arenas, the
// userLog header arena) is deliberately not serialized: it is scratch that
// rebuilds on first use and never affects results.
func (s *Stream) Save(w io.Writer) error {
	ww := wire.NewWriter(w)
	ww.Uvarint(streamPayloadVersion)
	ww.Varint(int64(s.horizon))
	ww.Varint(int64(s.last))

	// Retained window, oldest first.
	live := s.window[s.wstart:]
	ww.Uvarint(uint64(len(live)))
	for _, a := range live {
		ww.Varint(int64(a.ID))
		ww.Uvarint(uint64(a.User))
		ww.Varint(int64(a.Parent))
	}

	// Diffusion index with refcounts. Refs are reconstructible (one liveness
	// reference per in-window action plus one per retained child), but
	// storing them keeps Restore a single pass and makes the payload
	// self-validating.
	ids := make([]ActionID, 0, len(s.idx))
	for id := range s.idx {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ww.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		rec := s.idx[id]
		ww.Varint(int64(id))
		ww.Uvarint(uint64(rec.user))
		ww.Varint(int64(rec.parent))
		ww.Varint(int64(rec.refs))
	}

	// Contribution logs. Entry order within a log is semantic (descending
	// recency — the prefix property every influence query relies on) and is
	// preserved verbatim.
	users := make([]UserID, 0, len(s.logs))
	for u := range s.logs {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	ww.Uvarint(uint64(len(users)))
	for _, u := range users {
		l := s.logs[u]
		ww.Uvarint(uint64(u))
		ww.Uvarint(uint64(len(l.list)))
		for _, c := range l.list {
			ww.Uvarint(uint64(c.V))
			ww.Varint(int64(c.T))
		}
	}

	// Cumulative statistics (Table 3 reproduction) and the all-time user
	// set, sorted and delta-encoded.
	ww.Varint(s.totalActions)
	ww.Varint(s.totalDepth)
	ww.Varint(s.totalRespDist)
	ww.Varint(s.respActions)
	all := make([]UserID, 0, len(s.userSet))
	for u := range s.userSet {
		all = append(all, u)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	ww.Uvarint(uint64(len(all)))
	prev := uint64(0)
	for _, u := range all {
		ww.Uvarint(uint64(u) - prev)
		prev = uint64(u)
	}
	return ww.Err()
}

// Restore deserializes a stream saved by Save. The returned stream is fully
// independent of the reader's backing storage and behaves bit-identically
// to the saved one.
func Restore(r io.Reader) (*Stream, error) {
	rr := wire.NewReader(r)
	if v := rr.Uvarint(); rr.Err() == nil && v != streamPayloadVersion {
		return nil, fmt.Errorf("stream: unsupported payload version %d", v)
	}
	s := New()
	s.horizon = ActionID(rr.Varint())
	s.last = ActionID(rr.Varint())

	// Length claims are validated loosely here (the SIM2 container already
	// CRC-protects payloads); capacity hints are clamped so a corrupt claim
	// cannot force a giant allocation before the decode loop fails.
	nWindow := rr.Len(wire.MaxLen)
	s.window = make([]Action, 0, min(nWindow, 1<<20))
	for i := 0; i < nWindow && rr.Err() == nil; i++ {
		s.window = append(s.window, Action{
			ID:     ActionID(rr.Varint()),
			User:   UserID(rr.Uvarint()),
			Parent: ActionID(rr.Varint()),
		})
	}

	nIdx := rr.Len(wire.MaxLen)
	s.idx = make(map[ActionID]*record, min(nIdx, 1<<20))
	for i := 0; i < nIdx && rr.Err() == nil; i++ {
		id := ActionID(rr.Varint())
		rec := &record{
			user:   UserID(rr.Uvarint()),
			parent: ActionID(rr.Varint()),
			refs:   int32(rr.Varint()),
		}
		s.idx[id] = rec
	}

	nLogs := rr.Len(wire.MaxLen)
	s.logs = make(map[UserID]*userLog, min(nLogs, 1<<20))
	for i := 0; i < nLogs && rr.Err() == nil; i++ {
		u := UserID(rr.Uvarint())
		n := rr.Len(wire.MaxLen)
		l := &userLog{list: make([]Contrib, 0, min(n, 1<<20))}
		for j := 0; j < n && rr.Err() == nil; j++ {
			l.list = append(l.list, Contrib{
				V: UserID(rr.Uvarint()),
				T: ActionID(rr.Varint()),
			})
		}
		s.logs[u] = l
	}

	s.totalActions = rr.Varint()
	s.totalDepth = rr.Varint()
	s.totalRespDist = rr.Varint()
	s.respActions = rr.Varint()
	nUsers := rr.Len(wire.MaxLen)
	s.userSet = make(map[UserID]struct{}, min(nUsers, 1<<20))
	prev := uint64(0)
	for i := 0; i < nUsers && rr.Err() == nil; i++ {
		prev += rr.Uvarint()
		s.userSet[UserID(prev)] = struct{}{}
	}
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("stream: restoring: %w", err)
	}
	return s, nil
}
