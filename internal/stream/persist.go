package stream

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/wire"
)

// streamPayloadVersion versions the Save payload independently of the SIM2
// container that carries it. Version 2 appends the cold tier: the per-user
// segment-extent table and a manifest of the referenced segments (ID, CRC,
// size) that Restore verifies against the attached ColdStore. Version 1
// payloads (no cold tier) are still accepted.
const streamPayloadVersion = 2

// Save serializes the stream's complete mutable state — the diffusion index
// (with reference counts), the per-user contribution logs, the retained
// window and the cumulative statistics — so that Restore yields a stream
// that behaves bit-identically to this one on every future Ingest, Advance
// and influence query. Map-backed state is emitted in sorted key order, so
// saving the same stream twice produces identical bytes.
//
// The transient query machinery (generation marks, contributor arenas, the
// userLog header arena) is deliberately not serialized: it is scratch that
// rebuilds on first use and never affects results.
func (s *Stream) Save(w io.Writer) error {
	ww := wire.NewWriter(w)
	ww.Uvarint(streamPayloadVersion)
	ww.Varint(int64(s.horizon))
	ww.Varint(int64(s.last))

	// Retained window, oldest first.
	live := s.window[s.wstart:]
	ww.Uvarint(uint64(len(live)))
	for _, a := range live {
		ww.Varint(int64(a.ID))
		ww.Uvarint(uint64(a.User))
		ww.Varint(int64(a.Parent))
	}

	// Diffusion index with refcounts. Refs are reconstructible (one liveness
	// reference per in-window action plus one per retained child), but
	// storing them keeps Restore a single pass and makes the payload
	// self-validating.
	ids := make([]ActionID, 0, len(s.idx))
	for id := range s.idx {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ww.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		rec := s.idx[id]
		ww.Varint(int64(id))
		ww.Uvarint(uint64(rec.user))
		ww.Varint(int64(rec.parent))
		ww.Varint(int64(rec.refs))
	}

	// Contribution logs. Entry order within a log is semantic (descending
	// recency — the prefix property every influence query relies on) and is
	// preserved verbatim.
	users := make([]UserID, 0, len(s.logs))
	for u := range s.logs {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	ww.Uvarint(uint64(len(users)))
	for _, u := range users {
		l := s.logs[u]
		ww.Uvarint(uint64(u))
		ww.Uvarint(uint64(len(l.list)))
		for _, c := range l.list {
			ww.Uvarint(uint64(c.V))
			ww.Varint(int64(c.T))
		}
	}

	// Cumulative statistics (Table 3 reproduction) and the all-time user
	// set, sorted and delta-encoded.
	ww.Varint(s.totalActions)
	ww.Varint(s.totalDepth)
	ww.Varint(s.totalRespDist)
	ww.Varint(s.respActions)
	all := make([]UserID, 0, len(s.userSet))
	for u := range s.userSet {
		all = append(all, u)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	ww.Uvarint(uint64(len(all)))
	prev := uint64(0)
	for _, u := range all {
		ww.Uvarint(uint64(u) - prev)
		prev = uint64(u)
	}

	// Cold tier (v2): the extent table references segments by ID instead of
	// embedding their entries, so snapshot size and save time scale with the
	// HOT state only — the segments themselves are already durable files.
	// Spilled logs are never faulted in by Save.
	coldUsers := make([]UserID, 0, len(s.cold))
	for u := range s.cold {
		coldUsers = append(coldUsers, u)
	}
	sort.Slice(coldUsers, func(i, j int) bool { return coldUsers[i] < coldUsers[j] })
	ww.Uvarint(uint64(len(coldUsers)))
	segSet := map[SegmentID]struct{}{}
	for _, u := range coldUsers {
		ext := s.cold[u]
		ww.Uvarint(uint64(u))
		ww.Uvarint(uint64(ext.Seg))
		ww.Varint(ext.Off)
		ww.Uvarint(uint64(ext.Count))
		ww.Varint(int64(ext.MaxT))
		segSet[ext.Seg] = struct{}{}
	}
	// Manifest of the referenced segments, sorted by ID: Restore re-adopts
	// exactly these files and verifies their identity before trusting them.
	segs := make([]SegmentID, 0, len(segSet))
	for seg := range segSet {
		segs = append(segs, seg)
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	ww.Uvarint(uint64(len(segs)))
	for _, seg := range segs {
		st, err := s.store.Stat(seg)
		if err != nil {
			return fmt.Errorf("stream: saving segment manifest: %w", err)
		}
		ww.Uvarint(uint64(seg))
		ww.Uvarint(uint64(st.CRC))
		ww.Varint(st.Size)
	}
	return ww.Err()
}

// Restore deserializes a stream saved by Save. The returned stream is fully
// independent of the reader's backing storage except for the cold tier: a
// version-2 payload with cold extents re-adopts the referenced segment
// files from store (verifying each segment's CRC and size against the
// saved manifest) instead of rehydrating their entries — the boot-time
// mapping that keeps restart cost proportional to hot state. store and
// budget are attached to the restored stream either way (see SetCold); a
// payload with cold extents but a nil store is an error.
func Restore(r io.Reader, store ColdStore, budget int64) (*Stream, error) {
	rr := wire.NewReader(r)
	version := rr.Uvarint()
	if rr.Err() == nil && (version < 1 || version > streamPayloadVersion) {
		return nil, fmt.Errorf("stream: unsupported payload version %d", version)
	}
	s := New()
	s.SetCold(store, budget)
	s.horizon = ActionID(rr.Varint())
	s.last = ActionID(rr.Varint())

	// Length claims are validated loosely here (the SIM2 container already
	// CRC-protects payloads); capacity hints are clamped so a corrupt claim
	// cannot force a giant allocation before the decode loop fails.
	nWindow := rr.Len(wire.MaxLen)
	s.window = make([]Action, 0, min(nWindow, 1<<20))
	for i := 0; i < nWindow && rr.Err() == nil; i++ {
		s.window = append(s.window, Action{
			ID:     ActionID(rr.Varint()),
			User:   UserID(rr.Uvarint()),
			Parent: ActionID(rr.Varint()),
		})
	}

	nIdx := rr.Len(wire.MaxLen)
	s.idx = make(map[ActionID]*record, min(nIdx, 1<<20))
	for i := 0; i < nIdx && rr.Err() == nil; i++ {
		id := ActionID(rr.Varint())
		rec := &record{
			user:   UserID(rr.Uvarint()),
			parent: ActionID(rr.Varint()),
			refs:   int32(rr.Varint()),
		}
		s.idx[id] = rec
	}

	nLogs := rr.Len(wire.MaxLen)
	s.logs = make(map[UserID]*userLog, min(nLogs, 1<<20))
	for i := 0; i < nLogs && rr.Err() == nil; i++ {
		u := UserID(rr.Uvarint())
		n := rr.Len(wire.MaxLen)
		l := &userLog{list: make([]Contrib, 0, min(n, 1<<20))}
		for j := 0; j < n && rr.Err() == nil; j++ {
			l.list = append(l.list, Contrib{
				V: UserID(rr.Uvarint()),
				T: ActionID(rr.Varint()),
			})
		}
		s.logs[u] = l
		s.hotBytes += int64(len(l.list)) * contribBytes
	}

	s.totalActions = rr.Varint()
	s.totalDepth = rr.Varint()
	s.totalRespDist = rr.Varint()
	s.respActions = rr.Varint()
	nUsers := rr.Len(wire.MaxLen)
	s.userSet = make(map[UserID]struct{}, min(nUsers, 1<<20))
	prev := uint64(0)
	for i := 0; i < nUsers && rr.Err() == nil; i++ {
		prev += rr.Uvarint()
		s.userSet[UserID(prev)] = struct{}{}
	}

	if version >= 2 {
		nCold := rr.Len(wire.MaxLen)
		if nCold > 0 && store == nil {
			return nil, fmt.Errorf("stream: payload references %d cold extents but no cold store is configured", nCold)
		}
		if nCold > 0 {
			s.cold = make(map[UserID]Extent, min(nCold, 1<<20))
		}
		for i := 0; i < nCold && rr.Err() == nil; i++ {
			u := UserID(rr.Uvarint())
			ext := Extent{
				Seg:   SegmentID(rr.Uvarint()),
				Off:   rr.Varint(),
				Count: int(rr.Uvarint()),
				MaxT:  ActionID(rr.Varint()),
			}
			if rr.Err() != nil {
				break
			}
			// Re-adopt the extent: one store reference per extent, exactly
			// mirroring what WriteLogs handed out at spill time.
			if err := store.Retain(ext.Seg); err != nil {
				return nil, fmt.Errorf("stream: restoring cold extent for user %d: %w", u, err)
			}
			s.cold[u] = ext
			s.coldBytes += int64(ext.Count) * contribBytes
		}
		nSegs := rr.Len(wire.MaxLen)
		for i := 0; i < nSegs && rr.Err() == nil; i++ {
			seg := SegmentID(rr.Uvarint())
			crc := uint32(rr.Uvarint())
			size := rr.Varint()
			if rr.Err() != nil {
				break
			}
			st, err := store.Stat(seg)
			if err != nil {
				return nil, fmt.Errorf("stream: verifying segment %d: %w", seg, err)
			}
			if st.CRC != crc || st.Size != size {
				return nil, fmt.Errorf("stream: segment %d does not match manifest (crc %08x/%08x, size %d/%d)",
					seg, st.CRC, crc, st.Size, size)
			}
		}
	}
	if err := rr.Err(); err != nil {
		return nil, fmt.Errorf("stream: restoring: %w", err)
	}
	return s, nil
}
