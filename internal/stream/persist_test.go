package stream

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// genActions builds a deterministic random stream with reply chains.
func genActions(n int, users int, seed int64) []Action {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Action, 0, n)
	for i := 0; i < n; i++ {
		a := Action{ID: ActionID(i + 1), User: UserID(rng.Intn(users)), Parent: NoParent}
		if i > 0 && rng.Float64() < 0.7 {
			back := rng.Intn(min(i, 40)) + 1
			a.Parent = ActionID(i + 1 - back)
		}
		out = append(out, a)
	}
	return out
}

// persistIngest feeds actions with periodic horizon advances, mimicking
// the framework's maintenance cadence.
func persistIngest(t *testing.T, s *Stream, actions []Action, window ActionID) {
	t.Helper()
	for _, a := range actions {
		if _, err := s.Ingest(a); err != nil {
			t.Fatalf("ingest %v: %v", a, err)
		}
		if h := a.ID - window + 1; h > 0 {
			s.Advance(h)
		}
	}
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	actions := genActions(1200, 80, 7)
	s := New()
	persistIngest(t, s, actions[:800], 300)

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	r, err := Restore(bytes.NewReader(buf.Bytes()), nil, 0)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}

	if r.Last() != s.Last() || r.Horizon() != s.Horizon() || r.Len() != s.Len() {
		t.Fatalf("restored scalars differ: last %d/%d horizon %d/%d len %d/%d",
			r.Last(), s.Last(), r.Horizon(), s.Horizon(), r.Len(), s.Len())
	}
	if !reflect.DeepEqual(r.Stats(), s.Stats()) {
		t.Fatalf("restored stats differ: %+v vs %+v", r.Stats(), s.Stats())
	}

	// Continue ingesting identically on both and compare every influence
	// query along the way: restored behavior must be bit-identical.
	for _, a := range actions[800:] {
		for _, st := range []*Stream{s, r} {
			if _, err := st.Ingest(a); err != nil {
				t.Fatalf("post-restore ingest %v: %v", a, err)
			}
			if h := a.ID - 300 + 1; h > 0 {
				st.Advance(h)
			}
		}
		u := a.User
		got := r.InfluenceRecency(u, r.Horizon())
		want := s.InfluenceRecency(u, s.Horizon())
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("after %v: influence recency of %d differs:\n got %v\nwant %v", a, u, got, want)
		}
	}
	if !reflect.DeepEqual(r.Stats(), s.Stats()) {
		t.Fatalf("final stats differ: %+v vs %+v", r.Stats(), s.Stats())
	}
	// Contributor resolution (ancestor chains through expired-but-retained
	// records) must also survive.
	for _, a := range actions[1100:] {
		got := r.Contributors(a.ID, nil)
		want := s.Contributors(a.ID, nil)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("contributors of %d differ: %v vs %v", a.ID, got, want)
		}
	}
}

func TestSaveDeterministic(t *testing.T) {
	s := New()
	persistIngest(t, s, genActions(500, 40, 3), 200)
	var b1, b2 bytes.Buffer
	if err := s.Save(&b1); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if err := s.Save(&b2); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("two Saves of the same stream produced different bytes")
	}
}

func TestRestoreEmptyStream(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	r, err := Restore(bytes.NewReader(buf.Bytes()), nil, 0)
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	if r.Last() != -1 || r.Len() != 0 {
		t.Fatalf("restored empty stream: last=%d len=%d", r.Last(), r.Len())
	}
	if _, err := r.Ingest(Action{ID: 1, User: 2, Parent: NoParent}); err != nil {
		t.Fatalf("ingest into restored empty stream: %v", err)
	}
}

func TestRestoreTruncated(t *testing.T) {
	s := New()
	persistIngest(t, s, genActions(300, 30, 5), 100)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	b := buf.Bytes()
	if _, err := Restore(bytes.NewReader(b[:len(b)/2]), nil, 0); err == nil {
		t.Fatal("Restore of truncated payload succeeded")
	}
}
