package stream

import (
	"sort"
)

// record is the retained metadata of one action, kept for ancestor-chain
// resolution. An action's record must outlive the action itself: at window
// W_t the triggering action a' of a live action need not be in W_t anymore
// (paper §3, Example 1), so records are reference counted. refs counts one
// "liveness" reference while the action is newer than the retention horizon
// plus one reference per retained child record.
type record struct {
	user   UserID
	parent ActionID
	refs   int32
}

// Contrib pairs an influenced user with the time of the most recent action
// evidencing the influence.
type Contrib struct {
	V UserID
	T ActionID
}

// userLog is the influence record of one influencer u: the distinct users v
// that performed an action with u on its ancestor chain, ordered by the time
// of their LATEST such action, newest first.
//
// This ordering makes every query a prefix: v ∈ I_s(u) exactly when v's
// latest contribution time is >= s, so the influence set for suffix start s
// is the maximal prefix with T >= s — and suffixes for later starts are
// prefixes of it. The list is maintained incrementally by move-to-front on
// each contribution (new actions always carry the globally newest time) and
// pruned by truncating the tail as the retention horizon advances.
type userLog struct {
	list []Contrib
}

// touch records a contribution (v, t); t must be the newest time ever seen
// (actions arrive in timestamp order). v moves to — or is inserted at — the
// front. Cost is v's current recency rank; recently active users sit near
// the front, so the common case is short.
func (l *userLog) touch(v UserID, t ActionID) {
	list := l.list
	for i := range list {
		if list[i].V == v {
			copy(list[1:i+1], list[:i])
			list[0] = Contrib{v, t}
			return
		}
	}
	l.list = append(l.list, Contrib{})
	copy(l.list[1:], l.list)
	l.list[0] = Contrib{v, t}
}

// prune truncates entries whose latest contribution predates horizon. A user
// v dropped here cannot belong to any retained suffix: membership needs some
// contribution >= s >= horizon, and the latest one is already older.
func (l *userLog) prune(horizon ActionID) {
	i := sort.Search(len(l.list), func(i int) bool { return l.list[i].T < horizon })
	l.list = l.list[:i]
}

// prefix returns the influence set for suffix start s.
func (l *userLog) prefix(start ActionID) []Contrib {
	return PrefixFor(l.list, start)
}

// Delta describes the effect of ingesting one action: the set of users whose
// influence sets grew (the action's user plus every distinct user on its
// ancestor chain) and the chain depth. It is what the Set-Stream Mapping
// (paper §4.2) feeds to each checkpoint oracle.
type Delta struct {
	// Action is the ingested action.
	Action Action
	// Contributors lists, without duplicates, the users whose influence set
	// gained Action.User: Action.User itself and the users of all ancestor
	// actions. The slice is owned by the Stream and valid until the next
	// Ingest call.
	Contributors []UserID
	// Depth is the number of ancestors of the action in its diffusion tree
	// (0 for a root action). Table 3 of the paper reports its average as
	// "Avg. depth"; it is the d in the O(d·g·N) update cost of IC.
	Depth int
}

// Stream ingests a social action stream in timestamp order and maintains the
// diffusion index and per-user contribution logs needed to answer influence
// set queries for any suffix start within the retention horizon.
//
// A Stream is not safe for concurrent use; wrap it in a mutex or confine it
// to one goroutine (the intended use inside a Tracker).
type Stream struct {
	idx  map[ActionID]*record
	logs map[UserID]*userLog

	// window is a FIFO of retained actions (IDs >= horizon).
	window  []Action
	wstart  int // index of first live element of window
	horizon ActionID
	last    ActionID

	// seen implements O(1) amortized deduplication for Contributors and
	// Influence without clearing a map per call: an entry is "marked" when
	// its stored generation equals gen.
	seen map[UserID]uint64
	gen  uint64

	contribBuf []UserID
	expireBuf  []UserID

	// logChunk is an arena of userLog headers handed out to first-touched
	// users: allocating them in blocks replaces one heap object per new
	// user with one per logChunkSize users on the ingestion path.
	logChunk []userLog

	// Batch ingestion scratch (see IngestBatch): one contributor arena for
	// the whole batch plus the per-action offsets into it, so every Delta of
	// a batch stays readable until the next ingestion call.
	batchArena []UserID
	batchOffs  []int
	deltaBuf   []Delta

	// Cumulative statistics over all ingested actions (not only retained
	// ones); used to reproduce Table 3.
	totalActions  int64
	totalDepth    int64
	totalRespDist int64
	respActions   int64
	userSet       map[UserID]struct{}

	// Cold tier (see cold.go): per-user extents of spilled logs, the
	// segment store behind them, and the hot-tier budget that drives
	// spilling. A nil store disables the tier entirely; the hot path only
	// pays a nil-map check.
	cold      map[UserID]Extent
	store     ColdStore
	budget    int64
	hotBytes  int64 // resident log-entry bytes (contribBytes per hot entry)
	coldBytes int64 // on-disk log-entry bytes across live extents
	tier      TierStats
	coldErr   error
	readBuf   []Contrib // scratch for cold-extent decodes (logPrefix, spill folds)
	mergeBuf  []Contrib // scratch for merged both-tier views (logPrefix)
}

// logChunkSize is the arena block size for userLog headers.
const logChunkSize = 256

// New returns an empty Stream.
func New() *Stream { return NewSized(0) }

// NewSized returns an empty Stream with its per-user maps pre-sized for
// usersHint distinct users, avoiding rehash-and-copy churn during the
// initial window fill. A hint of 0 is New's default incremental growth; the
// hint is advisory and never limits capacity.
func NewSized(usersHint int) *Stream {
	if usersHint < 0 {
		usersHint = 0
	}
	return &Stream{
		idx:     map[ActionID]*record{},
		logs:    make(map[UserID]*userLog, usersHint),
		horizon: 0,
		last:    -1,
		seen:    make(map[UserID]uint64, usersHint),
		userSet: make(map[UserID]struct{}, usersHint),
	}
}

// Last returns the ID of the most recently ingested action, or -1 if none.
func (s *Stream) Last() ActionID { return s.last }

// Horizon returns the oldest retained timestamp: queries with start >=
// Horizon() are exact.
func (s *Stream) Horizon() ActionID { return s.horizon }

// Len returns the number of retained actions.
func (s *Stream) Len() int { return len(s.window) - s.wstart }

// mark returns true the first time it is called for u in the current
// generation.
func (s *Stream) mark(u UserID) bool {
	if s.seen[u] == s.gen {
		return false
	}
	s.seen[u] = s.gen
	return true
}

// Ingest appends one action to the stream, updates the diffusion index and
// contribution logs, and returns the delta to feed to checkpoint oracles.
// The returned Delta's Contributors slice is reused across calls.
func (s *Stream) Ingest(a Action) (Delta, error) {
	buf, depth, err := s.ingest(a, s.contribBuf[:0])
	if err != nil {
		return Delta{}, err
	}
	s.contribBuf = buf
	return Delta{Action: a, Contributors: buf, Depth: depth}, nil
}

// ingest performs the per-action index and log maintenance shared by Ingest
// and IngestBatch, appending the action's distinct contributors to arena and
// returning the extended arena with the chain depth.
func (s *Stream) ingest(a Action, arena []UserID) ([]UserID, int, error) {
	if a.ID <= s.last {
		return arena, 0, ErrNonMonotonicID
	}
	if !a.Root() && a.Parent >= a.ID {
		return arena, 0, ErrBadParent
	}
	s.last = a.ID

	rec := &record{user: a.User, parent: a.Parent, refs: 1}
	if !a.Root() {
		if p, ok := s.idx[a.Parent]; ok {
			p.refs++
		} else {
			// Parent already collected (or never seen): treat as root for
			// chain purposes. Influence through it is unrecoverable, which
			// is correct: no retained window suffix can include evidence of
			// it.
			rec.parent = NoParent
		}
	}
	s.idx[a.ID] = rec
	s.window = append(s.window, a)

	// Resolve the ancestor chain and record contributions.
	s.gen++
	base := len(arena)
	depth := 0
	if s.mark(a.User) {
		arena = append(arena, a.User)
	}
	for pid := rec.parent; pid != NoParent; {
		p, ok := s.idx[pid]
		if !ok {
			break
		}
		depth++
		if s.mark(p.user) {
			arena = append(arena, p.user)
		}
		pid = p.parent
	}
	for _, u := range arena[base:] {
		// A spilled contributor grows a fresh hot log in front of its cold
		// extent — ingest never reads the cold tier. The hot residue dedups
		// within itself via touch; a contributor also present in the extent
		// leaves a stale cold copy behind, which queries (logPrefix) and
		// re-spills (maybeSpill) drop during their merge.
		l := s.logs[u]
		if l == nil {
			if len(s.logChunk) == 0 {
				s.logChunk = make([]userLog, logChunkSize)
			}
			l = &s.logChunk[0]
			s.logChunk = s.logChunk[1:]
			s.logs[u] = l
		}
		n0 := len(l.list)
		l.touch(a.User, a.ID)
		if len(l.list) != n0 {
			s.hotBytes += contribBytes
		}
	}

	s.totalActions++
	s.totalDepth += int64(depth)
	if !a.Root() {
		s.totalRespDist += int64(a.ID - a.Parent)
		s.respActions++
	}
	s.userSet[a.User] = struct{}{}

	return arena, depth, nil
}

// Advance raises the retention horizon: actions with ID < horizon are
// expired, their records released (recursively unpinning ancestor records
// with no remaining live descendants) and their contribution-log entries
// pruned. The caller — the checkpoint framework — passes the minimum start
// time over all live checkpoints, which may be older than the window start
// because SIC retains one expired checkpoint Λ[x0] (paper Algorithm 2).
func (s *Stream) Advance(horizon ActionID) {
	if horizon <= s.horizon {
		// The horizon may sit still for long stretches (SIC holds it at the
		// retained expired checkpoint's start), but the budget check must
		// still run: ingest grows the hot tier between horizon movements.
		// When under budget this is a single comparison; when over, the
		// watermark hysteresis in maybeSpill amortizes the spill I/O.
		s.maybeSpill()
		return
	}
	s.horizon = horizon
	for s.wstart < len(s.window) && s.window[s.wstart].ID < horizon {
		id := s.window[s.wstart].ID
		// Prune the logs of exactly the users that contributed to the
		// expiring action; every stale log entry has the timestamp of some
		// expiring action, so this touches each log only when needed
		// instead of sweeping the whole map per call.
		s.expireBuf = s.Contributors(id, s.expireBuf[:0])
		for _, u := range s.expireBuf {
			if l := s.logs[u]; l != nil {
				n0 := len(l.list)
				l.prune(horizon)
				s.hotBytes -= int64(n0-len(l.list)) * contribBytes
				if len(l.list) == 0 {
					// Release the backing array explicitly: the header
					// lives in a logChunk arena that stays reachable while
					// any sibling is live, so a dangling list field would
					// pin the dead user's contributions indefinitely.
					l.list = nil
					delete(s.logs, u)
				}
			}
			if s.cold != nil {
				// A cold extent whose newest entry just expired is dropped
				// without ever reading it; partially stale extents are
				// pruned lazily at fault-in.
				s.dropDeadExtent(u)
			}
		}
		s.release(id)
		s.wstart++
	}
	if s.wstart > len(s.window)/2 && s.wstart > 64 {
		n := copy(s.window, s.window[s.wstart:])
		s.window = s.window[:n]
		s.wstart = 0
	}
	// Spilling happens only here, at the expiry boundary: the per-action
	// ingest path never performs I/O.
	s.maybeSpill()
}

// release drops the liveness reference of action id and collects any records
// whose reference count reaches zero, walking up the ancestor chain.
func (s *Stream) release(id ActionID) {
	for id != NoParent {
		rec, ok := s.idx[id]
		if !ok {
			return
		}
		rec.refs--
		if rec.refs > 0 {
			return
		}
		delete(s.idx, id)
		id = rec.parent
	}
}

// Influence visits the distinct users influenced by u, counting only actions
// with ID >= start (the influence set I_s(u) of paper Definition 1 for the
// window suffix beginning at s). Visiting stops early if visit returns
// false. start values older than Horizon() are answered as if start ==
// Horizon().
func (s *Stream) Influence(u UserID, start ActionID, visit func(UserID) bool) {
	list, _ := s.logPrefix(u, start) // a failed cold read degrades to hot-only (sticky ColdErr)
	for _, c := range list {
		if !visit(c.V) {
			return
		}
	}
}

// InfluenceRecency returns the influence set of u for the suffix starting at
// start as (user, last-contribution-time) pairs sorted by descending time.
//
// Because v ∈ I_s(u) exactly when v's latest contribution time is >= s, the
// influence set for ANY later start s' > s is a prefix of the returned list
// (slice it with PrefixFor). The checkpoint frameworks exploit that: one
// call per contributor serves every checkpoint. The returned slice aliases
// internal state (possibly reused scratch holding a merged hot/cold view)
// and is valid until the next influence query, Ingest, or Advance call.
func (s *Stream) InfluenceRecency(u UserID, start ActionID) []Contrib {
	list, _ := s.logPrefix(u, start) // a failed cold read degrades to hot-only (sticky ColdErr)
	return list
}

// PrefixFor returns the prefix of a descending-time Contrib list whose
// entries have T >= start — the influence set for the suffix beginning at
// start.
func PrefixFor(list []Contrib, start ActionID) []Contrib {
	i := sort.Search(len(list), func(i int) bool { return list[i].T < start })
	return list[:i]
}

// InfluenceSet materializes I_s(u) into a fresh slice.
func (s *Stream) InfluenceSet(u UserID, start ActionID) []UserID {
	var out []UserID
	s.Influence(u, start, func(v UserID) bool {
		out = append(out, v)
		return true
	})
	return out
}

// InfluenceSize returns |I_s(u)|, the cardinality influence value of the
// single user u for the suffix starting at start.
func (s *Stream) InfluenceSize(u UserID, start ActionID) int {
	n := 0
	s.Influence(u, start, func(UserID) bool { n++; return true })
	return n
}

// Influencers visits every user with a non-empty influence set for the
// suffix starting at start. Visiting stops early if visit returns false.
func (s *Stream) Influencers(start ActionID, visit func(UserID) bool) {
	for u, l := range s.logs {
		if len(l.prefix(start)) > 0 {
			if !visit(u) {
				return
			}
		}
	}
	// Cold extents answer membership from their cached newest entry time —
	// no I/O. A live extent always has MaxT >= horizon (fully expired ones
	// are dropped by Advance), so MaxT >= start is exactly "non-empty
	// influence set for this suffix".
	for u, ext := range s.cold {
		if ext.MaxT < start {
			continue
		}
		if _, hot := s.logs[u]; hot {
			// Both-tier user (re-touched after its spill): already visited
			// above — the hot entries are strictly newer than MaxT, so its
			// hot prefix was non-empty too.
			continue
		}
		if !visit(u) {
			return
		}
	}
}

// Actions visits the retained actions with ID >= from in timestamp order.
// Visiting stops early if visit returns false.
func (s *Stream) Actions(from ActionID, visit func(Action) bool) {
	w := s.window[s.wstart:]
	i := sort.Search(len(w), func(i int) bool { return w[i].ID >= from })
	for _, a := range w[i:] {
		if !visit(a) {
			return
		}
	}
}

// Contributors resolves the ancestor chain of the retained action id and
// appends the distinct contributing users (the action's own user first) to
// buf, returning the extended slice. It returns buf unchanged when id is not
// retained.
func (s *Stream) Contributors(id ActionID, buf []UserID) []UserID {
	rec, ok := s.idx[id]
	if !ok {
		return buf
	}
	s.gen++
	if s.mark(rec.user) {
		buf = append(buf, rec.user)
	}
	for pid := rec.parent; pid != NoParent; {
		p, ok := s.idx[pid]
		if !ok {
			break
		}
		if s.mark(p.user) {
			buf = append(buf, p.user)
		}
		pid = p.parent
	}
	return buf
}

// Stats summarizes the whole stream seen so far (not only the retained
// window); it backs the Table 3 reproduction.
type Stats struct {
	Users        int
	Actions      int64
	AvgRespDist  float64 // mean t - t' over non-root actions
	AvgDepth     float64 // mean ancestor-chain length
	RootFraction float64
}

// Stats returns cumulative statistics over all ingested actions.
func (s *Stream) Stats() Stats {
	st := Stats{Users: len(s.userSet), Actions: s.totalActions}
	if s.respActions > 0 {
		st.AvgRespDist = float64(s.totalRespDist) / float64(s.respActions)
	}
	if s.totalActions > 0 {
		st.AvgDepth = float64(s.totalDepth) / float64(s.totalActions)
		st.RootFraction = float64(s.totalActions-s.respActions) / float64(s.totalActions)
	}
	return st
}

// RetainedBytesEstimate is a rough accounting of RESIDENT live index size
// — what the stream actually holds in RAM, excluding spilled cold-tier
// entries — used by memory-focused benchmarks and the ablation comparing
// shared logs against per-checkpoint influence sets. Per-entry constants
// fold in map bucket overhead; log entries are counted at capacity (the
// bytes actually pinned), a Contrib being 16 bytes with alignment padding.
func (s *Stream) RetainedBytesEstimate() int64 {
	const (
		idxEntry  = 48 // 8B key + 8B pointer + 16B record + bucket overhead
		logsEntry = 40 // 4B key + 8B pointer + 24B arena-held header + bucket overhead
		seenEntry = 24 // 4B key + 8B generation + bucket overhead
		userEntry = 16 // 4B key + bucket overhead
		coldEntry = 56 // 4B key + 32B extent + bucket overhead
		headerSz  = 24 // one userLog header still unhanded in the arena block
	)
	var b int64
	b += int64(len(s.idx)) * idxEntry
	b += int64(len(s.logs)) * logsEntry
	for _, l := range s.logs {
		b += int64(cap(l.list)) * contribBytes
	}
	b += int64(len(s.logChunk)) * headerSz
	b += int64(len(s.seen)) * seenEntry
	b += int64(len(s.userSet)) * userEntry
	b += int64(len(s.cold)) * coldEntry
	b += int64(cap(s.window)) * 24
	return b
}
