package stream

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestInfluenceRecencyOrderAndContent(t *testing.T) {
	s := New()
	ingestAll(t, s, paperStream()[:8])
	// I_1(u3) with recency: a8 (t=8) adds u4, a7 (t=7) adds u5, a6 adds u1,
	// a5 adds u4 (older), a4/a3 add u3.
	got := s.InfluenceRecency(3, 1)
	want := []Contrib{{4, 8}, {5, 7}, {1, 6}, {3, 4}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recency list = %v, want %v", got, want)
	}
}

func TestInfluenceRecencyUnknownUser(t *testing.T) {
	s := New()
	if got := s.InfluenceRecency(42, 0); got != nil {
		t.Fatalf("unknown user list = %v", got)
	}
}

func TestPrefixFor(t *testing.T) {
	list := []Contrib{{1, 10}, {2, 7}, {3, 7}, {4, 2}}
	cases := []struct {
		start ActionID
		n     int
	}{
		{0, 4}, {2, 4}, {3, 3}, {7, 3}, {8, 1}, {10, 1}, {11, 0},
	}
	for _, c := range cases {
		if got := len(PrefixFor(list, c.start)); got != c.n {
			t.Errorf("PrefixFor(start=%d) = %d entries, want %d", c.start, got, c.n)
		}
	}
	if got := PrefixFor(nil, 5); len(got) != 0 {
		t.Errorf("PrefixFor(nil) = %v", got)
	}
}

// TestPrefixConsistentWithInfluence: for every user and start, the prefix
// list must contain exactly the users Influence visits.
func TestPrefixConsistentWithInfluence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		for i := 1; i <= 400; i++ {
			a := Action{ID: ActionID(i), User: UserID(rng.Intn(20))}
			if i > 1 && rng.Float64() < 0.7 {
				a.Parent = ActionID(i - rng.Intn(min(i-1, 50)) - 1)
			} else {
				a.Parent = NoParent
			}
			if _, err := s.Ingest(a); err != nil {
				return false
			}
		}
		s.Advance(100)
		for u := UserID(0); u < 20; u++ {
			for _, start := range []ActionID{100, 250, 399} {
				full := s.InfluenceRecency(u, 100)
				pref := PrefixFor(full, start)
				got := map[UserID]bool{}
				for _, c := range pref {
					got[c.V] = true
				}
				want := map[UserID]bool{}
				s.Influence(u, start, func(v UserID) bool { want[v] = true; return true })
				if !reflect.DeepEqual(got, want) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGappyTimestamps(t *testing.T) {
	// IDs are timestamps: gaps must behave like elapsed time.
	s := New()
	ingestAll(t, s, []Action{
		{ID: 10, User: 1, Parent: NoParent},
		{ID: 11, User: 2, Parent: 10},
		{ID: 500, User: 3, Parent: 11}, // late reply to an old comment
	})
	if got := sortedSet(s, 1, 10); !reflect.DeepEqual(got, []UserID{1, 2, 3}) {
		t.Fatalf("I(u1) = %v", got)
	}
	s.Advance(12) // only the late reply remains
	if got := sortedSet(s, 1, 12); !reflect.DeepEqual(got, []UserID{3}) {
		t.Fatalf("I_12(u1) = %v, want [3]", got)
	}
	if s.Len() != 1 {
		t.Fatalf("retained = %d, want 1", s.Len())
	}
}

func TestContributorsOfUnknownAction(t *testing.T) {
	s := New()
	ingestAll(t, s, paperStream()[:3])
	if got := s.Contributors(99, nil); got != nil {
		t.Fatalf("unknown action contributors = %v", got)
	}
	// Appending to a non-nil buffer leaves it unchanged.
	buf := []UserID{7}
	if got := s.Contributors(99, buf); len(got) != 1 || got[0] != 7 {
		t.Fatalf("buffer mangled: %v", got)
	}
}

func TestRetainedBytesEstimatePositive(t *testing.T) {
	s := New()
	ingestAll(t, s, paperStream())
	if s.RetainedBytesEstimate() <= 0 {
		t.Fatal("estimate must be positive for a non-empty stream")
	}
}
