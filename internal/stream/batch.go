package stream

// IngestBatch appends a batch of actions in one call, equivalent to calling
// Ingest for each action in order but returning every action's Delta at
// once. Unlike Ingest's single reused buffer, the Contributors slices of the
// returned Deltas stay valid together — they are sub-slices of one arena
// owned by the Stream — until the next Ingest or IngestBatch call. That is
// what lets a caller ingest a whole batch first and amortize downstream work
// (oracle feeding, window advance, checkpoint maintenance) over it.
//
// The batch is validated up front: on error (non-monotonic IDs or a bad
// parent reference anywhere in the batch) the stream is left untouched.
func (s *Stream) IngestBatch(actions []Action) ([]Delta, error) {
	last := s.last
	for _, a := range actions {
		if a.ID <= last {
			return nil, ErrNonMonotonicID
		}
		if !a.Root() && a.Parent >= a.ID {
			return nil, ErrBadParent
		}
		last = a.ID
	}

	s.batchArena = s.batchArena[:0]
	s.batchOffs = s.batchOffs[:0]
	s.deltaBuf = s.deltaBuf[:0]
	for _, a := range actions {
		s.batchOffs = append(s.batchOffs, len(s.batchArena))
		arena, depth, err := s.ingest(a, s.batchArena)
		if err != nil {
			// Unreachable: the up-front sweep already validated the batch.
			return nil, err
		}
		s.batchArena = arena
		s.deltaBuf = append(s.deltaBuf, Delta{Action: a, Depth: depth})
	}
	// Slice the arena only after the last append: growth may have moved it.
	for i := range s.deltaBuf {
		end := len(s.batchArena)
		if i+1 < len(s.batchOffs) {
			end = s.batchOffs[i+1]
		}
		s.deltaBuf[i].Contributors = s.batchArena[s.batchOffs[i]:end]
	}
	return s.deltaBuf, nil
}
