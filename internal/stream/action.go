// Package stream implements the social action stream substrate of the SIM
// (Stream Influence Maximization) problem: time-sequenced actions forming
// diffusion trees, sliding-window expiry, and incremental maintenance of
// per-user influence sets for arbitrary suffixes of the window.
//
// The central structure is Stream, which ingests actions in timestamp order
// and answers "which users does u influence, counting only actions at time
// >= s" for any start s that is still within the retention horizon. This is
// exactly the query a checkpoint oracle created at time s needs (paper §4.2,
// Set-Stream Mapping), and sharing one index across all checkpoints is what
// keeps the IC framework's memory linear in the window size instead of
// quadratic.
package stream

import (
	"errors"
	"fmt"
)

// UserID identifies a user in the social network.
type UserID uint32

// ActionID is the timestamp / sequence number of an action. The stream model
// is sequence-based (paper §3): IDs are strictly increasing and an action's
// parent always has a smaller ID.
type ActionID int64

// NoParent marks a root action, one that does not respond to any earlier
// action (denoted <u, nil> in the paper).
const NoParent ActionID = -1

// Action is one element of a social stream: user User performs an action at
// time ID in response to the earlier action Parent (or NoParent for roots).
// Typical instantiations are a retweet on Twitter, a reply on Reddit or a
// comment on Facebook.
type Action struct {
	ID     ActionID
	User   UserID
	Parent ActionID
}

// Root reports whether the action does not respond to any earlier action.
func (a Action) Root() bool { return a.Parent == NoParent }

// String renders the action in the paper's <u, a_t'>_t notation.
func (a Action) String() string {
	if a.Root() {
		return fmt.Sprintf("<u%d, nil>_%d", a.User, a.ID)
	}
	return fmt.Sprintf("<u%d, a%d>_%d", a.User, a.Parent, a.ID)
}

// Errors returned by Stream.Ingest.
var (
	// ErrNonMonotonicID is returned when an ingested action's ID is not
	// strictly greater than all previously ingested IDs.
	ErrNonMonotonicID = errors.New("stream: action IDs must be strictly increasing")
	// ErrBadParent is returned when an action references itself or a
	// future action as its parent.
	ErrBadParent = errors.New("stream: parent must precede the action")
)
