// Package greedy implements the classic (1−1/e)-approximate greedy
// algorithm of Nemhauser et al. for the SIM objective — the "Greedy"
// baseline of the paper's evaluation. Since it stores no intermediate state,
// it recomputes the solution from the current window for every query, which
// is exactly the cost profile (O(k·|U|) objective evaluations per window)
// the checkpoint frameworks are designed to avoid.
//
// The implementation uses CELF lazy evaluation (Leskovec et al.): cached
// marginal gains are valid upper bounds under submodularity, so a candidate
// is re-evaluated only when it surfaces at the top of the priority queue.
package greedy

import (
	"container/heap"
	"sort"

	"repro/internal/stream"
	"repro/internal/submod"
)

// candidate is a CELF queue entry: a user with a cached (stale) marginal
// gain and the iteration at which the gain was computed.
type candidate struct {
	user  stream.UserID
	gain  float64
	round int
}

type queue []candidate

func (q queue) Len() int { return len(q) }

// Less orders by gain, breaking ties on the user ID: user IDs are unique, so
// the comparator is a strict total order and the pop sequence is
// deterministic even though candidates are collected in map order.
func (q queue) Less(i, j int) bool {
	if q[i].gain != q[j].gain {
		return q[i].gain > q[j].gain
	}
	return q[i].user < q[j].user
}
func (q queue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *queue) Push(x interface{}) { *q = append(*q, x.(candidate)) }
func (q *queue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// Select runs lazy greedy over the window suffix starting at start and
// returns up to k seed users with the objective value of their combined
// influence sets.
func Select(st *stream.Stream, start stream.ActionID, k int, w submod.Weights) ([]stream.UserID, float64) {
	gainOf := func(u stream.UserID, cov *submod.Coverage) float64 {
		g := 0.0
		st.Influence(u, start, func(v stream.UserID) bool {
			g += cov.Gain(v)
			return true
		})
		return g
	}
	addTo := func(u stream.UserID, cov *submod.Coverage) {
		st.Influence(u, start, func(v stream.UserID) bool {
			cov.Add(v)
			return true
		})
	}
	cov := submod.NewCoverage(w)
	q := queue{}
	st.Influencers(start, func(u stream.UserID) bool {
		q = append(q, candidate{user: u, gain: gainOf(u, cov), round: 0})
		return true
	})
	heap.Init(&q)

	var seeds []stream.UserID
	for len(seeds) < k && q.Len() > 0 {
		top := heap.Pop(&q).(candidate)
		if top.round == len(seeds) {
			if top.gain <= 0 {
				break
			}
			seeds = append(seeds, top.user)
			addTo(top.user, cov)
			continue
		}
		top.gain = gainOf(top.user, cov)
		top.round = len(seeds)
		heap.Push(&q, top)
	}
	return seeds, cov.Value()
}

// SelectNaive is the paper's actual Greedy baseline (§4, §6.1): the
// textbook Nemhauser greedy with NO lazy evaluation and NO incremental
// coverage — every iteration evaluates f(I(S ∪ {u})) from scratch for every
// candidate, i.e. O(k·|U|) influence-function evaluations per query, each a
// full union of the current seeds' influence sets. This cost profile (the
// paper reports ~10 s to pick 100 seeds among 500K users) is exactly what
// motivates the checkpoint frameworks, so the throughput experiments use
// this variant. It returns the same seed set as Select, which the quality
// experiments therefore compute with the fast CELF implementation.
func SelectNaive(st *stream.Stream, start stream.ActionID, k int, w submod.Weights) ([]stream.UserID, float64) {
	var users []stream.UserID
	st.Influencers(start, func(u stream.UserID) bool { users = append(users, u); return true })
	// Influencers iterates a map; sort so ties deterministically pick the
	// lowest user ID (the strict > below keeps the first maximum seen).
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })

	var seeds []stream.UserID
	chosen := map[stream.UserID]bool{}
	best := 0.0
	for len(seeds) < k {
		var bestU stream.UserID
		bestV, found := best, false
		for _, u := range users {
			if chosen[u] {
				continue
			}
			// From-scratch evaluation of f(I(S ∪ {u})).
			cov := submod.NewCoverage(w)
			for _, s := range seeds {
				st.Influence(s, start, func(v stream.UserID) bool { cov.Add(v); return true })
			}
			st.Influence(u, start, func(v stream.UserID) bool { cov.Add(v); return true })
			if v := cov.Value(); v > bestV {
				bestU, bestV, found = u, v, true
			}
		}
		if !found {
			break
		}
		seeds = append(seeds, bestU)
		chosen[bestU] = true
		best = bestV
	}
	return seeds, best
}

// SelectSets runs lazy greedy maximum coverage over materialized sets; it is
// the offline reference the oracle comparison (Table 2 experiment) measures
// against.
func SelectSets(sets map[stream.UserID][]stream.UserID, k int, w submod.Weights) ([]stream.UserID, float64) {
	cov := submod.NewCoverage(w)
	gainOf := func(u stream.UserID) float64 {
		g := 0.0
		for _, v := range sets[u] {
			g += cov.Gain(v)
		}
		return g
	}
	q := queue{}
	for u := range sets {
		q = append(q, candidate{user: u, gain: gainOf(u), round: 0})
	}
	heap.Init(&q)
	var seeds []stream.UserID
	for len(seeds) < k && q.Len() > 0 {
		top := heap.Pop(&q).(candidate)
		if top.round == len(seeds) {
			if top.gain <= 0 {
				break
			}
			seeds = append(seeds, top.user)
			for _, v := range sets[top.user] {
				cov.Add(v)
			}
			continue
		}
		top.gain = gainOf(top.user)
		top.round = len(seeds)
		heap.Push(&q, top)
	}
	return seeds, cov.Value()
}
