package greedy

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/stream"
	"repro/internal/submod"
)

func paperWindow(t *testing.T) *stream.Stream {
	t.Helper()
	st := stream.New()
	actions := []stream.Action{
		{ID: 1, User: 1, Parent: stream.NoParent},
		{ID: 2, User: 2, Parent: 1},
		{ID: 3, User: 3, Parent: stream.NoParent},
		{ID: 4, User: 3, Parent: 1},
		{ID: 5, User: 4, Parent: 3},
		{ID: 6, User: 1, Parent: 3},
		{ID: 7, User: 5, Parent: 3},
		{ID: 8, User: 4, Parent: 7},
	}
	for _, a := range actions {
		if _, err := st.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func TestSelectOnPaperExample(t *testing.T) {
	// Example 2: the optimum at t=8 with k=2 is {u1, u3} with value 5, and
	// greedy finds it (u3 first with gain 4, then u1 adds u2).
	seeds, val := Select(paperWindow(t), 1, 2, nil)
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	if !reflect.DeepEqual(seeds, []stream.UserID{1, 3}) {
		t.Fatalf("seeds = %v, want [1 3]", seeds)
	}
	if val != 5 {
		t.Fatalf("value = %v, want 5", val)
	}
}

func TestSelectStopsAtZeroGain(t *testing.T) {
	seeds, val := Select(paperWindow(t), 1, 5, nil)
	// Value 5 covers every active user; extra seeds add nothing and greedy
	// must stop early rather than pad the set.
	if val != 5 {
		t.Fatalf("value = %v, want 5", val)
	}
	if len(seeds) > 3 {
		t.Fatalf("greedy padded zero-gain seeds: %v", seeds)
	}
}

func TestSelectRespectsK(t *testing.T) {
	seeds, _ := Select(paperWindow(t), 1, 1, nil)
	if len(seeds) != 1 || seeds[0] != 3 {
		t.Fatalf("k=1 seeds = %v, want [3]", seeds)
	}
}

func TestSelectEmptyWindow(t *testing.T) {
	seeds, val := Select(stream.New(), 1, 3, nil)
	if seeds != nil || val != 0 {
		t.Fatalf("empty window: %v, %v", seeds, val)
	}
}

func TestWeightedSelect(t *testing.T) {
	w := submod.Table{W: map[stream.UserID]float64{2: 50}, Default: 1}
	seeds, val := Select(paperWindow(t), 1, 1, w)
	// Covering u2 (weight 50) dominates: only u1 and u2 influence u2.
	if len(seeds) != 1 || (seeds[0] != 1 && seeds[0] != 2) {
		t.Fatalf("weighted seeds = %v", seeds)
	}
	if val < 50 {
		t.Fatalf("weighted value = %v, want >= 50", val)
	}
}

// TestGreedyMatchesBruteForceRatio: on random instances lazy greedy must be
// exactly the same as the naive (eager) greedy, and within (1−1/e) of the
// enumerated optimum.
func TestGreedyGuarantee(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		st := stream.New()
		id := stream.ActionID(1)
		for i := 0; i < 120; i++ {
			a := stream.Action{ID: id, User: stream.UserID(rng.Intn(10)), Parent: stream.NoParent}
			if id > 1 && rng.Float64() < 0.75 {
				a.Parent = id - stream.ActionID(rng.Intn(int(min(id-1, 30)))+1)
			}
			if _, err := st.Ingest(a); err != nil {
				t.Fatal(err)
			}
			id++
		}
		const k = 2
		_, val := Select(st, 1, k, nil)
		opt := bruteOptimum(st, 1, k)
		if val < (1-1/math.E)*opt-1e-9 {
			t.Fatalf("trial %d: greedy %v < (1-1/e)·OPT %v", trial, val, opt)
		}
		if val > opt+1e-9 {
			t.Fatalf("trial %d: greedy %v exceeds OPT %v", trial, val, opt)
		}
	}
}

func bruteOptimum(st *stream.Stream, start stream.ActionID, k int) float64 {
	var users []stream.UserID
	st.Influencers(start, func(u stream.UserID) bool { users = append(users, u); return true })
	best := 0.0
	var rec func(i int, chosen []stream.UserID)
	rec = func(i int, chosen []stream.UserID) {
		cov := map[stream.UserID]bool{}
		for _, u := range chosen {
			st.Influence(u, start, func(v stream.UserID) bool { cov[v] = true; return true })
		}
		if v := float64(len(cov)); v > best {
			best = v
		}
		if len(chosen) == k {
			return
		}
		for j := i; j < len(users); j++ {
			rec(j+1, append(chosen, users[j]))
		}
	}
	rec(0, nil)
	return best
}

func TestSelectSetsMatchesSelect(t *testing.T) {
	st := paperWindow(t)
	sets := map[stream.UserID][]stream.UserID{}
	st.Influencers(1, func(u stream.UserID) bool {
		sets[u] = st.InfluenceSet(u, 1)
		return true
	})
	_, v1 := Select(st, 1, 2, nil)
	_, v2 := SelectSets(sets, 2, nil)
	if v1 != v2 {
		t.Fatalf("Select=%v SelectSets=%v", v1, v2)
	}
}

// TestNaiveMatchesCELF: the naive baseline must return the same value (and,
// with deterministic tie-breaking aside, equivalent seeds) as CELF — it is
// the same algorithm minus lazy evaluation.
func TestNaiveMatchesCELF(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		st := stream.New()
		id := stream.ActionID(1)
		for i := 0; i < 150; i++ {
			a := stream.Action{ID: id, User: stream.UserID(rng.Intn(12)), Parent: stream.NoParent}
			if id > 1 && rng.Float64() < 0.7 {
				a.Parent = id - stream.ActionID(rng.Intn(int(min(id-1, 40)))+1)
			}
			if _, err := st.Ingest(a); err != nil {
				t.Fatal(err)
			}
			id++
		}
		for _, k := range []int{1, 3, 6} {
			_, lazy := Select(st, 1, k, nil)
			_, naive := SelectNaive(st, 1, k, nil)
			if lazy != naive {
				t.Fatalf("trial %d k=%d: CELF %v != naive %v", trial, k, lazy, naive)
			}
		}
	}
}

func TestNaiveOnPaperExample(t *testing.T) {
	seeds, val := SelectNaive(paperWindow(t), 1, 2, nil)
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	if !reflect.DeepEqual(seeds, []stream.UserID{1, 3}) || val != 5 {
		t.Fatalf("naive seeds = %v val = %v, want [1 3] 5", seeds, val)
	}
}

func TestNaiveEmptyWindow(t *testing.T) {
	seeds, val := SelectNaive(stream.New(), 1, 3, nil)
	if seeds != nil || val != 0 {
		t.Fatalf("empty: %v %v", seeds, val)
	}
}

func BenchmarkCELFvsNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	st := stream.New()
	for i := 1; i <= 20000; i++ {
		a := stream.Action{ID: stream.ActionID(i), User: stream.UserID(rng.Intn(2000)), Parent: stream.NoParent}
		if i > 1 && rng.Float64() < 0.7 {
			a.Parent = stream.ActionID(i - rng.Intn(min(i-1, 3000)) - 1)
		}
		if _, err := st.Ingest(a); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("CELF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Select(st, 1, 20, nil)
		}
	})
	b.Run("Naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SelectNaive(st, 1, 20, nil)
		}
	})
}

func TestSelectSetsEmpty(t *testing.T) {
	seeds, val := SelectSets(nil, 3, nil)
	if seeds != nil || val != 0 {
		t.Fatalf("empty sets: %v %v", seeds, val)
	}
}
