// Package wire provides the low-level binary primitives shared by every
// layer's Save/Restore implementation (stream, oracle, core, sim): varint
// integers, fixed-width IEEE floats and length-prefixed byte strings over a
// sticky-error Writer/Reader pair.
//
// It deliberately lives below internal/dataio (which imports
// internal/stream and therefore cannot be imported by it): the SIM2
// snapshot *container* — magic, versioned header, CRC-framed sections —
// lives in dataio, while the payload encodings each layer writes inside a
// section are built from these primitives.
//
// Sticky errors keep serialization code linear: a layer emits its whole
// payload without per-call error checks and asks Err once at the end. After
// the first failure every subsequent write is dropped and every read
// returns the zero value.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrCorrupt is wrapped by Reader errors caused by malformed input (as
// opposed to I/O failures of the underlying reader).
var ErrCorrupt = errors.New("wire: corrupt payload")

// MaxLen is the permissive bound for Len/Bytes callers that have no
// tighter structural limit: far beyond any real section's element count or
// byte size, small enough to reject hostile 2^60-style length claims
// before allocation — and, unlike an untyped 1<<40, within int range on
// 32-bit platforms.
const MaxLen = math.MaxInt32

// Writer encodes primitives to an io.Writer with a sticky error. The zero
// value is not usable; construct with NewWriter.
type Writer struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

// NewWriter returns a Writer over w. Callers that need buffering wrap w
// themselves (payloads are typically accumulated in a bytes.Buffer anyway,
// so sections can be length-prefixed).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.w.Write(b); err != nil {
		w.err = err
	}
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Varint writes a signed (zig-zag) varint.
func (w *Writer) Varint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Int writes an int as a signed varint.
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// F64 writes a float64 as its IEEE 754 bits, little-endian. Bits — not a
// decimal rendering — so accumulated values (coverage sums, oracle
// thresholds) restore bit-identically and continued runs match
// uninterrupted ones exactly.
func (w *Writer) F64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.write(b[:])
}

// Bool writes a bool as one byte.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.write([]byte{b})
}

// Bytes writes a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.write(b)
}

// Reader decodes primitives from an io.Reader with a sticky error. The zero
// value is not usable; construct with NewReader.
type Reader struct {
	r   io.Reader
	br  io.ByteReader
	err error
}

// byteReader adapts a plain io.Reader to io.ByteReader without the big
// default bufio buffer (snapshot payloads are usually bytes.Readers, which
// already implement io.ByteReader, so this path is rare).
type byteReader struct{ r io.Reader }

func (b byteReader) ReadByte() (byte, error) {
	var p [1]byte
	_, err := io.ReadFull(b.r, p[:])
	return p[0], err
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = byteReader{r}
	}
	return &Reader{r: r, br: br}
}

// Err returns the first error encountered, if any. io.EOF mid-value is
// reported as io.ErrUnexpectedEOF wrapped in ErrCorrupt: snapshot payloads
// are length-delimited, so running out of bytes always means truncation.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fail(err error) {
	if r.err == nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(r.br)
	if err != nil {
		r.fail(err)
		return 0
	}
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(r.br)
	if err != nil {
		r.fail(err)
		return 0
	}
	return v
}

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.Varint()) }

// Len reads a non-negative count and validates it against max, the largest
// value that can possibly be legitimate (typically bounded by the payload
// size). A hostile or corrupt length then fails here instead of causing a
// huge allocation.
func (r *Reader) Len(max int) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if max >= 0 && v > uint64(max) {
		r.fail(fmt.Errorf("length %d exceeds limit %d", v, max))
		return 0
	}
	return int(v)
}

// F64 reads a float64 written by Writer.F64.
func (r *Reader) F64() float64 {
	if r.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		r.fail(err)
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

// Bool reads a bool written by Writer.Bool.
func (r *Reader) Bool() bool {
	if r.err != nil {
		return false
	}
	b, err := r.br.ReadByte()
	if err != nil {
		r.fail(err)
		return false
	}
	switch b {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail(fmt.Errorf("bad bool byte %#x", b))
		return false
	}
}

// Bytes reads a length-prefixed byte string written by Writer.Bytes,
// validating the length against max (see Len).
func (r *Reader) Bytes(max int) []byte {
	n := r.Len(max)
	if r.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.fail(err)
		return nil
	}
	return b
}
