package wire

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(0)
	w.Uvarint(1 << 60)
	w.Varint(-5)
	w.Varint(1 << 40)
	w.Int(-42)
	w.F64(3.141592653589793)
	w.F64(math.Inf(-1))
	w.Bool(true)
	w.Bool(false)
	w.Bytes([]byte("hello"))
	w.Bytes(nil)
	if err := w.Err(); err != nil {
		t.Fatalf("writer error: %v", err)
	}

	r := NewReader(bytes.NewReader(buf.Bytes()))
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := r.Uvarint(); got != 1<<60 {
		t.Errorf("Uvarint = %d, want %d", got, uint64(1)<<60)
	}
	if got := r.Varint(); got != -5 {
		t.Errorf("Varint = %d, want -5", got)
	}
	if got := r.Varint(); got != 1<<40 {
		t.Errorf("Varint = %d, want %d", got, int64(1)<<40)
	}
	if got := r.Int(); got != -42 {
		t.Errorf("Int = %d, want -42", got)
	}
	if got := r.F64(); got != 3.141592653589793 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Errorf("F64 = %v, want -Inf", got)
	}
	if got := r.Bool(); got != true {
		t.Errorf("Bool = %v, want true", got)
	}
	if got := r.Bool(); got != false {
		t.Errorf("Bool = %v, want false", got)
	}
	if got := r.Bytes(16); string(got) != "hello" {
		t.Errorf("Bytes = %q, want hello", got)
	}
	if got := r.Bytes(16); len(got) != 0 {
		t.Errorf("Bytes = %q, want empty", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("reader error: %v", err)
	}
}

func TestTruncationIsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.F64(1.5)
	b := buf.Bytes()[:4] // cut mid-float

	r := NewReader(bytes.NewReader(b))
	_ = r.F64()
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated read error = %v, want ErrCorrupt", err)
	}
}

func TestLenLimit(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(1 << 40)
	r := NewReader(bytes.NewReader(buf.Bytes()))
	r.Len(1024)
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length error = %v, want ErrCorrupt", err)
	}
}

func TestBadBool(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte{7}))
	r.Bool()
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad bool error = %v, want ErrCorrupt", err)
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader(bytes.NewReader(nil))
	r.Uvarint() // fails: EOF
	first := r.Err()
	if first == nil {
		t.Fatal("expected an error from empty input")
	}
	r.Varint()
	r.F64()
	if r.Err() != first {
		t.Fatal("error not sticky")
	}
}

// errWriter fails after n bytes.
type errWriter struct{ n int }

func (e *errWriter) Write(p []byte) (int, error) {
	if len(p) > e.n {
		return 0, io.ErrClosedPipe
	}
	e.n -= len(p)
	return len(p), nil
}

func TestWriterSticky(t *testing.T) {
	w := NewWriter(&errWriter{n: 2})
	w.F64(1) // 8 bytes: fails
	if w.Err() == nil {
		t.Fatal("expected write error")
	}
	first := w.Err()
	w.Uvarint(1)
	if w.Err() != first {
		t.Fatal("writer error not sticky")
	}
}

// nonByteReader hides the ByteReader of the wrapped reader.
type nonByteReader struct{ r io.Reader }

func (n nonByteReader) Read(p []byte) (int, error) { return n.r.Read(p) }

func TestPlainReaderAdapter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Uvarint(300)
	w.Bool(true)
	r := NewReader(nonByteReader{bytes.NewReader(buf.Bytes())})
	if got := r.Uvarint(); got != 300 {
		t.Fatalf("Uvarint through adapter = %d, want 300", got)
	}
	if !r.Bool() || r.Err() != nil {
		t.Fatalf("Bool through adapter failed: %v", r.Err())
	}
}
