// Package imm implements IMM (Tang, Shi, Xiao — SIGMOD 2015), the
// state-of-the-art static influence maximization algorithm used as the
// quality baseline in the paper's evaluation (§6.1, parameters ε = 0.5,
// ℓ = 1). IMM samples reverse-reachable (RR) sets under the weighted
// cascade model, with a martingale-based stopping rule that lower-bounds
// OPT, then greedily selects k nodes covering the most RR sets, yielding a
// (1 − 1/e − ε) approximation with high probability.
package imm

import (
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/stream"
)

// Options tunes IMM. Zero values select the paper's settings.
type Options struct {
	// Epsilon is the approximation slack (default 0.5, as in §6.1).
	Epsilon float64
	// Ell controls the 1 − 1/n^ℓ success probability (default 1).
	Ell float64
	// Seed makes sampling reproducible.
	Seed int64
	// MaxRR caps the number of RR sets as a safety valve for very small or
	// degenerate graphs (default 1<<20).
	MaxRR int
}

func (o Options) withDefaults() Options {
	if o.Epsilon == 0 {
		o.Epsilon = 0.5
	}
	if o.Ell == 0 {
		o.Ell = 1
	}
	if o.MaxRR == 0 {
		o.MaxRR = 1 << 20
	}
	return o
}

// sampler incrementally generates RR sets and maintains the inverted
// node → RR-set index used by greedy node selection.
type sampler struct {
	g      *graph.Graph
	rng    *rand.Rand
	sets   [][]graph.NodeID
	byNode [][]int32
	mark   []uint32
	gen    uint32
	queue  []graph.NodeID
}

func newSampler(g *graph.Graph, rng *rand.Rand) *sampler {
	return &sampler{g: g, rng: rng, mark: make([]uint32, g.N()), byNode: make([][]int32, g.N())}
}

// generate extends the pool to at least want RR sets.
func (s *sampler) generate(want int) {
	for len(s.sets) < want {
		rr := s.sample()
		idx := int32(len(s.sets))
		s.sets = append(s.sets, rr)
		for _, n := range rr {
			s.byNode[n] = append(s.byNode[n], idx)
		}
	}
}

// sample draws one RR set: a uniform random root, then a reverse BFS where
// each in-edge (x → w) is live with the WC probability 1/indeg(w).
func (s *sampler) sample() []graph.NodeID {
	root := s.g.RandomNode(s.rng)
	s.gen++
	s.queue = s.queue[:0]
	s.queue = append(s.queue, root)
	s.mark[root] = s.gen
	for i := 0; i < len(s.queue); i++ {
		w := s.queue[i]
		in := s.g.In(w)
		if len(in) == 0 {
			continue
		}
		p := 1 / float64(len(in))
		for _, x := range in {
			if s.mark[x] == s.gen {
				continue
			}
			if s.rng.Float64() < p {
				s.mark[x] = s.gen
				s.queue = append(s.queue, x)
			}
		}
	}
	rr := make([]graph.NodeID, len(s.queue))
	copy(rr, s.queue)
	return rr
}

// nodeSelection greedily picks at most k nodes maximizing RR-set coverage
// and returns them with the covered fraction F_R(S).
func (s *sampler) nodeSelection(k int) ([]graph.NodeID, float64) {
	if len(s.sets) == 0 {
		return nil, 0
	}
	counts := make([]int, s.g.N())
	for n := range s.byNode {
		counts[n] = len(s.byNode[n])
	}
	coveredSet := make([]bool, len(s.sets))
	covered := 0
	var seeds []graph.NodeID
	for len(seeds) < k {
		best, bestC := graph.NodeID(-1), 0
		for n, c := range counts {
			if c > bestC {
				best, bestC = graph.NodeID(n), c
			}
		}
		if best < 0 {
			break
		}
		seeds = append(seeds, best)
		for _, idx := range s.byNode[best] {
			if coveredSet[idx] {
				continue
			}
			coveredSet[idx] = true
			covered++
			for _, n := range s.sets[idx] {
				counts[n]--
			}
		}
	}
	return seeds, float64(covered) / float64(len(s.sets))
}

// logChoose returns ln C(n, k).
func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// Select runs IMM on g and returns up to k seed users together with the
// estimated expected spread n·F_R(S).
func Select(g *graph.Graph, k int, opt Options) ([]stream.UserID, float64) {
	opt = opt.withDefaults()
	n := g.N()
	if n == 0 || k <= 0 {
		return nil, 0
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	s := newSampler(g, rng)

	eps, ell := opt.Epsilon, opt.Ell
	// ℓ is inflated so the union bound over both phases still yields
	// 1 − 1/n^ℓ (IMM §4.2).
	ell = ell * (1 + math.Ln2/math.Log(float64(n)))
	lnN := math.Log(float64(n))
	logCnk := logChoose(n, k)

	// Phase 1: estimate a lower bound LB of OPT (IMM Algorithm 2).
	epsPrime := math.Sqrt2 * eps
	logLog := math.Log(math.Max(math.Log2(float64(n)), 1))
	lambdaPrime := (2 + 2.0/3.0*epsPrime) * (logCnk + ell*lnN + logLog) * float64(n) / (epsPrime * epsPrime)
	lb := 1.0
	for i := 1; float64(int64(1)<<uint(i)) <= float64(n); i++ {
		x := float64(n) / float64(int64(1)<<uint(i))
		theta := int(math.Ceil(lambdaPrime / x))
		if theta > opt.MaxRR {
			theta = opt.MaxRR
		}
		s.generate(theta)
		_, frac := s.nodeSelection(k)
		if float64(n)*frac >= (1+epsPrime)*x {
			lb = float64(n) * frac / (1 + epsPrime)
			break
		}
		if theta >= opt.MaxRR {
			break
		}
	}

	// Phase 2: sample to the final θ = λ*/LB and select.
	alpha := math.Sqrt(ell*lnN + math.Ln2)
	beta := math.Sqrt((1 - 1/math.E) * (logCnk + ell*lnN + math.Ln2))
	lambdaStar := 2 * float64(n) * math.Pow((1-1/math.E)*alpha+beta, 2) / (eps * eps)
	theta := int(math.Ceil(lambdaStar / lb))
	if theta > opt.MaxRR {
		theta = opt.MaxRR
	}
	if theta < 1 {
		theta = 1
	}
	s.generate(theta)
	nodes, frac := s.nodeSelection(k)

	users := make([]stream.UserID, len(nodes))
	for i, nd := range nodes {
		users[i] = g.UserOf(nd)
	}
	return users, float64(n) * frac
}
