package imm

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/mc"
	"repro/internal/stream"
)

func TestSelectEmptyAndDegenerate(t *testing.T) {
	g := graph.Build(nil)
	if seeds, _ := Select(g, 3, Options{}); seeds != nil {
		t.Fatalf("empty graph seeds = %v", seeds)
	}
	g = graph.Build([][2]stream.UserID{{1, 2}})
	if seeds, _ := Select(g, 0, Options{}); seeds != nil {
		t.Fatalf("k=0 seeds = %v", seeds)
	}
	// k larger than n is clamped.
	seeds, _ := Select(g, 10, Options{Seed: 1})
	if len(seeds) > 2 {
		t.Fatalf("k>n seeds = %v", seeds)
	}
}

func TestSelectFindsObviousHub(t *testing.T) {
	// A hub feeding 30 leaves (each with a single in-edge, so p=1) versus
	// isolated pairs: IMM with k=1 must pick the hub.
	var edges [][2]stream.UserID
	for i := 1; i <= 30; i++ {
		edges = append(edges, [2]stream.UserID{1000, stream.UserID(i)})
	}
	for i := 0; i < 10; i++ {
		edges = append(edges, [2]stream.UserID{stream.UserID(2000 + i), stream.UserID(3000 + i)})
	}
	g := graph.Build(edges)
	seeds, est := Select(g, 1, Options{Seed: 7})
	if len(seeds) != 1 || seeds[0] != 1000 {
		t.Fatalf("seeds = %v, want [1000]", seeds)
	}
	if est < 25 {
		t.Fatalf("estimated spread = %v, want ≈ 31", est)
	}
}

func TestSelectSpreadEstimateAgreesWithMC(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var edges [][2]stream.UserID
	for i := 0; i < 1500; i++ {
		edges = append(edges, [2]stream.UserID{stream.UserID(rng.Intn(200)), stream.UserID(rng.Intn(200))})
	}
	g := graph.Build(edges)
	seeds, est := Select(g, 5, Options{Seed: 3})
	real := mc.Spread(g, seeds, 20000, 9)
	if math.Abs(est-real) > 0.15*real+1 {
		t.Fatalf("IMM estimate %v vs MC %v: off by more than 15%%", est, real)
	}
}

// TestSelectNearGreedyQuality: IMM's seeds must reach at least
// (1−1/e−ε)-comparable spread to plain greedy-by-MC on a small graph. We
// compare against a strong brute-force pick instead of implementing a
// second reference: on this construction the best pair is known.
func TestSelectQualityOnKnownOptimum(t *testing.T) {
	// Two disjoint hubs dominate; k=2 must select both.
	var edges [][2]stream.UserID
	for i := 1; i <= 20; i++ {
		edges = append(edges, [2]stream.UserID{501, stream.UserID(i)})
		edges = append(edges, [2]stream.UserID{502, stream.UserID(100 + i)})
	}
	g := graph.Build(edges)
	seeds, _ := Select(g, 2, Options{Seed: 11})
	got := map[stream.UserID]bool{}
	for _, s := range seeds {
		got[s] = true
	}
	if !got[501] || !got[502] {
		t.Fatalf("seeds = %v, want both hubs", seeds)
	}
}

func TestSelectReproducible(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var edges [][2]stream.UserID
	for i := 0; i < 800; i++ {
		edges = append(edges, [2]stream.UserID{stream.UserID(rng.Intn(100)), stream.UserID(rng.Intn(100))})
	}
	g := graph.Build(edges)
	a, av := Select(g, 4, Options{Seed: 5})
	b, bv := Select(g, 4, Options{Seed: 5})
	if av != bv || len(a) != len(b) {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", a, av, b, bv)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic seeds: %v vs %v", a, b)
		}
	}
}

func TestMaxRRCapRespected(t *testing.T) {
	g := graph.Build([][2]stream.UserID{{1, 2}, {2, 3}, {3, 4}})
	seeds, _ := Select(g, 2, Options{Seed: 1, MaxRR: 64})
	if len(seeds) == 0 || len(seeds) > 2 {
		t.Fatalf("seeds = %v", seeds)
	}
}

func TestLogChoose(t *testing.T) {
	// ln C(10, 3) = ln 120.
	if got, want := logChoose(10, 3), math.Log(120); math.Abs(got-want) > 1e-9 {
		t.Fatalf("logChoose(10,3) = %v, want %v", got, want)
	}
	if got := logChoose(5, 0); math.Abs(got) > 1e-9 {
		t.Fatalf("logChoose(5,0) = %v, want 0", got)
	}
	if got := logChoose(5, 5); math.Abs(got) > 1e-9 {
		t.Fatalf("logChoose(5,5) = %v, want 0", got)
	}
}

func BenchmarkSelect(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var edges [][2]stream.UserID
	for i := 0; i < 5000; i++ {
		edges = append(edges, [2]stream.UserID{stream.UserID(rng.Intn(1000)), stream.UserID(rng.Intn(1000))})
	}
	g := graph.Build(edges)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(g, 10, Options{Seed: int64(i)})
	}
}
