package fault

import (
	"strings"
	"testing"
)

// FuzzParseRules drives the -fault rule grammar with arbitrary specs. The
// invariants: never panic, never return (nil error, zero rules), and the
// canonical form is a fixed point — every accepted rule's String() re-parses
// to a rule with the identical String(). (Full value round-trip is too
// strong on purpose: ParseRules accepts negative after=/times= values that
// String canonicalizes away.)
func FuzzParseRules(f *testing.F) {
	f.Add("op=sync,path=wal.log,after=2,times=1,err=ENOSPC")
	f.Add("op=write,path=snapshot,times=3,err=EIO,short;op=rename,path=snapshot,times=1")
	f.Add("op=open,delay=5ms,delayonly")
	f.Add("op=readfile,err=EACCES")
	f.Add(";;op=close;;")
	f.Add("op=truncate,path=a=b")
	f.Add("")
	f.Add("path=only,times=2")
	f.Fuzz(func(t *testing.T, spec string) {
		rules, err := ParseRules(spec)
		if err != nil {
			return
		}
		if len(rules) == 0 {
			t.Fatalf("ParseRules(%q) returned no rules and no error", spec)
		}
		for i := range rules {
			canon := rules[i].String()
			re, err := ParseRules(canon)
			if err != nil {
				t.Fatalf("rule %d of %q: canonical form %q does not re-parse: %v", i, spec, canon, err)
			}
			if len(re) != 1 {
				t.Fatalf("canonical form %q parsed to %d rules", canon, len(re))
			}
			if got := re[0].String(); got != canon {
				t.Fatalf("canonical form not a fixed point: %q → %q", canon, got)
			}
		}
		// Accepted rule sets must also arm: loading them into an injector
		// must not panic.
		in := NewInjector(OS())
		for _, r := range rules {
			in.Add(r)
		}
	})
}

// TestParseRulesRejectsGarbage pins a few rejections the fuzzer relies on.
func TestParseRulesRejectsGarbage(t *testing.T) {
	for _, spec := range []string{
		"", ";", "op=flush", "op=write,err=ETIMEDOUT", "op=write,after=x",
		"op=write,delay=fast", "times=1", "op=write,bogus=1",
	} {
		if rules, err := ParseRules(spec); err == nil {
			t.Errorf("ParseRules(%q) = %v, want error", spec, rules)
		}
	}
	if !strings.Contains(func() string {
		_, err := ParseRules("op=nope")
		return err.Error()
	}(), "unknown op") {
		t.Error("unknown-op error lost its cause")
	}
}
