// Package fault is the injectable environment seam of the durable serving
// path. Production code takes a fault.FS (plus Clock/Sleeper) instead of
// calling the os package directly; in normal operation that is OS(), a
// zero-cost passthrough, and under test (or the chaos smoke) it is an
// Injector that deterministically fails the Nth matching operation, returns
// short writes, injects latency, or simulates ENOSPC/EIO — the harness that
// lets every failure edge of the WAL, snapshot, lock and names.log paths be
// exercised without root, loop devices, or flaky timing.
package fault

import (
	"io"
	"os"
	"time"
)

// File is the subset of *os.File the durable path uses. Injected
// implementations may fail or truncate any of these operations.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Sync commits the file's contents to stable storage (fsync).
	Sync() error
	// Truncate changes the size of the file.
	Truncate(size int64) error
	// Stat returns the file's metadata.
	Stat() (os.FileInfo, error)
	// Fd returns the underlying descriptor (the flock path needs it).
	// Injected files return the real descriptor of the file they wrap.
	Fd() uintptr
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem surface of the durable path: everything
// internal/server and internal/dataio touch on disk goes through one of
// these methods, so a single injected implementation covers every fault
// point.
type FS interface {
	// OpenFile is os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename is os.Rename (the snapshot publish step).
	Rename(oldpath, newpath string) error
	// Remove is os.Remove.
	Remove(name string) error
	// ReadFile is os.ReadFile.
	ReadFile(name string) ([]byte, error)
	// MkdirAll is os.MkdirAll.
	MkdirAll(path string, perm os.FileMode) error
	// ReadDir is os.ReadDir (cold-segment discovery at boot).
	ReadDir(name string) ([]os.DirEntry, error)
}

// Clock abstracts wall-clock reads so backoff schedules are testable.
type Clock interface {
	Now() time.Time
}

// Sleeper abstracts blocking delays so tests never sleep for real.
type Sleeper interface {
	Sleep(d time.Duration)
}

// osFS is the passthrough FS used in production.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

// OS returns the real filesystem.
func OS() FS { return osFS{} }

// wallClock is the real clock.
type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// WallClock returns the real time source.
func WallClock() Clock { return wallClock{} }

// realSleeper blocks with time.Sleep.
type realSleeper struct{}

func (realSleeper) Sleep(d time.Duration) { time.Sleep(d) }

// RealSleeper returns a Sleeper backed by time.Sleep.
func RealSleeper() Sleeper { return realSleeper{} }
