package fault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestParseRulesRoundTrip: every field of the CLI rule syntax survives a
// parse → String round trip.
func TestParseRulesRoundTrip(t *testing.T) {
	spec := "op=sync,path=wal.log,after=2,times=1,err=ENOSPC;op=write,path=snapshot,times=3,err=EIO,short"
	rules, err := ParseRules(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 {
		t.Fatalf("parsed %d rules, want 2", len(rules))
	}
	r := rules[0]
	if r.Op != OpSync || r.Path != "wal.log" || r.After != 2 || r.Times != 1 || r.Err != syscall.ENOSPC {
		t.Fatalf("rule 0 = %+v", r)
	}
	if got := r.String(); got != "op=sync,path=wal.log,after=2,times=1,err=ENOSPC" {
		t.Fatalf("String() = %q", got)
	}
	if !rules[1].ShortWrite || rules[1].Err != syscall.EIO {
		t.Fatalf("rule 1 = %+v", rules[1])
	}
	reparsed, err := ParseRules(rules[1].String())
	if err != nil || len(reparsed) != 1 || reparsed[0].String() != rules[1].String() {
		t.Fatalf("round trip: %v %+v", err, reparsed)
	}
}

func TestParseRulesRejects(t *testing.T) {
	for _, bad := range []string{"", "path=x", "op=levitate", "op=write,err=EWAT", "op=write,bogus=1"} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted", bad)
		}
	}
}

// TestInjectorNthOpHeals: a rule skips After matches, fires Times times,
// then disarms — the disk heals.
func TestInjectorNthOpHeals(t *testing.T) {
	inj := NewInjector(OS())
	inj.Add(Rule{Op: OpWrite, After: 1, Times: 1, Err: syscall.EIO})
	f, err := inj.OpenFile(filepath.Join(t.TempDir(), "x"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("write 1 (before After): %v", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("write 2: err = %v, want EIO", err)
	}
	if _, err := f.Write([]byte("c")); err != nil {
		t.Fatalf("write 3 (healed): %v", err)
	}
	if inj.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", inj.Fired())
	}
}

// TestInjectorShortWrite: a firing short-write rule delivers half the
// buffer before reporting the error — the torn-tail shape.
func TestInjectorShortWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x")
	inj := NewInjector(OS())
	inj.Add(Rule{Op: OpWrite, Times: 1, Err: syscall.ENOSPC, ShortWrite: true})
	f, err := inj.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("abcdefgh"))
	f.Close()
	if !errors.Is(werr, syscall.ENOSPC) || n != 4 {
		t.Fatalf("short write: n=%d err=%v, want 4, ENOSPC", n, werr)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "abcd" {
		t.Fatalf("on disk: %q (%v), want \"abcd\"", b, err)
	}
}

// TestInjectorPathFilter: rules only intercept paths containing their
// substring; Clear heals everything.
func TestInjectorPathFilter(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS())
	inj.Add(Rule{Op: OpOpen, Path: "wal.log", Err: syscall.EACCES}) // sticky
	if _, err := inj.OpenFile(filepath.Join(dir, "wal.log"), os.O_CREATE|os.O_RDWR, 0o644); !errors.Is(err, syscall.EACCES) {
		t.Fatalf("matching open: %v", err)
	}
	f, err := inj.OpenFile(filepath.Join(dir, "other"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("non-matching open: %v", err)
	}
	f.Close()
	inj.Clear()
	f, err = inj.OpenFile(filepath.Join(dir, "wal.log"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("open after Clear: %v", err)
	}
	f.Close()
}

// sleepRecorder records injected latency instead of sleeping.
type sleepRecorder struct{ total time.Duration }

func (s *sleepRecorder) Sleep(d time.Duration) { s.total += d }

// TestInjectorDelayOnly: a latency rule delays but never fails.
func TestInjectorDelayOnly(t *testing.T) {
	rec := &sleepRecorder{}
	inj := NewInjector(OS())
	inj.Sleep = rec
	inj.Add(Rule{Op: OpSync, Delay: 25 * time.Millisecond, DelayOnly: true})
	f, err := inj.OpenFile(filepath.Join(t.TempDir(), "x"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		t.Fatalf("delay-only sync failed: %v", err)
	}
	if rec.total != 25*time.Millisecond {
		t.Fatalf("slept %v, want 25ms", rec.total)
	}
}

// TestFromSeedDeterministic: the same seed always derives the same rule,
// so a chaos-smoke failure reproduces exactly.
func TestFromSeedDeterministic(t *testing.T) {
	for seed := int64(1); seed < 50; seed++ {
		a, b := FromSeed(seed), FromSeed(seed)
		if a.String() != b.String() {
			t.Fatalf("seed %d: %s != %s", seed, a.String(), b.String())
		}
		if a.Times == 0 {
			t.Fatalf("seed %d derived a sticky rule (never heals): %s", seed, a.String())
		}
		if a.Op == OpRename && a.Path != "snapshot" {
			t.Fatalf("seed %d: rename rule on %q never matches", seed, a.Path)
		}
	}
	r1, r2, r3 := FromSeed(1), FromSeed(2), FromSeed(3)
	if r1.String() == r2.String() && r2.String() == r3.String() {
		t.Fatal("seeds 1..3 all derived the same rule; FromSeed looks constant")
	}
}
