package fault

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// Op names one filesystem operation kind an Injector can intercept.
type Op uint8

const (
	OpOpen Op = iota
	OpRead
	OpWrite
	OpSync
	OpTruncate
	OpClose
	OpRename
	OpRemove
	OpReadFile
	OpMkdir
	OpReadDir
	opCount
)

var opNames = [opCount]string{
	OpOpen: "open", OpRead: "read", OpWrite: "write", OpSync: "sync",
	OpTruncate: "truncate", OpClose: "close", OpRename: "rename",
	OpRemove: "remove", OpReadFile: "readfile", OpMkdir: "mkdir",
	OpReadDir: "readdir",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ParseOp inverts Op.String.
func ParseOp(s string) (Op, error) {
	for i, n := range opNames {
		if n == s {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("fault: unknown op %q", s)
}

// Rule describes one injected fault: the After+1'th operation of kind Op on
// a path containing Path fails with Err (and each of the following Times-1
// matches, after which the rule disarms — the "disk heals"). The zero Path
// matches every file.
type Rule struct {
	// Op is the operation kind to intercept.
	Op Op
	// Path, when non-empty, restricts the rule to paths containing it.
	Path string
	// After skips the first After matching operations before firing.
	After int
	// Times bounds how often the rule fires; 0 means sticky (never heals).
	Times int
	// Err is the injected error; nil means EIO.
	Err error
	// ShortWrite makes a fired write deliver half its bytes before failing
	// (only meaningful for OpWrite): the torn-write shape of a power cut.
	ShortWrite bool
	// Delay is injected latency before the operation proceeds. A rule with
	// a Delay but no Err (and Times 0) is a pure slow-disk simulation.
	Delay time.Duration
	// DelayOnly marks the rule as latency-only: it delays but never fails.
	DelayOnly bool

	// matched / fired count matching and firing ops; read via Injector.
	matched, fired int
}

// String renders the rule in the ParseRules format.
func (r *Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "op=%s", r.Op)
	if r.Path != "" {
		fmt.Fprintf(&b, ",path=%s", r.Path)
	}
	if r.After > 0 {
		fmt.Fprintf(&b, ",after=%d", r.After)
	}
	if r.Times > 0 {
		fmt.Fprintf(&b, ",times=%d", r.Times)
	}
	if r.Err != nil {
		fmt.Fprintf(&b, ",err=%s", errName(r.Err))
	}
	if r.ShortWrite {
		b.WriteString(",short")
	}
	if r.DelayOnly {
		b.WriteString(",delayonly")
	}
	if r.Delay > 0 {
		fmt.Fprintf(&b, ",delay=%s", r.Delay)
	}
	return b.String()
}

// injectedErrors maps the errno names ParseRules accepts.
var injectedErrors = map[string]error{
	"EIO":    syscall.EIO,
	"ENOSPC": syscall.ENOSPC,
	"EACCES": syscall.EACCES,
	"EBADF":  syscall.EBADF,
}

func errName(err error) string {
	for n, e := range injectedErrors {
		if e == err {
			return n
		}
	}
	return err.Error()
}

// ParseRules parses the CLI fault-rule syntax used by simserve -fault:
// semicolon-separated rules of comma-separated fields, e.g.
//
//	op=sync,path=wal.log,after=2,times=1,err=ENOSPC
//	op=write,path=snapshot,times=3,err=EIO,short;op=rename,path=snapshot,times=1
//
// Fields: op (required), path (substring), after, times, err
// (EIO/ENOSPC/EACCES/EBADF), short, delay (Go duration), delayonly.
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		var r Rule
		haveOp := false
		for _, field := range strings.Split(rs, ",") {
			key, val, _ := strings.Cut(strings.TrimSpace(field), "=")
			var err error
			switch key {
			case "op":
				r.Op, err = ParseOp(val)
				haveOp = err == nil
			case "path":
				r.Path = val
			case "after":
				r.After, err = strconv.Atoi(val)
			case "times":
				r.Times, err = strconv.Atoi(val)
			case "err":
				e, ok := injectedErrors[val]
				if !ok {
					err = fmt.Errorf("fault: unknown error %q", val)
				}
				r.Err = e
			case "short":
				r.ShortWrite = true
			case "delayonly":
				r.DelayOnly = true
			case "delay":
				r.Delay, err = time.ParseDuration(val)
			default:
				err = fmt.Errorf("fault: unknown rule field %q", key)
			}
			if err != nil {
				return nil, fmt.Errorf("fault: rule %q: %w", rs, err)
			}
		}
		if !haveOp {
			return nil, fmt.Errorf("fault: rule %q missing op=", rs)
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: no rules in %q", spec)
	}
	return rules, nil
}

// FromSeed derives one deterministic fault rule from seed: a reproducible
// chaos point (op kind × path × Nth occurrence × errno × short/full) over
// the write side of the durable path. The same seed always yields the same
// rule, so a chaos-smoke failure reproduces exactly.
func FromSeed(seed int64) Rule {
	rng := rand.New(rand.NewSource(seed))
	ops := []Op{OpWrite, OpSync, OpRename}
	paths := []string{"wal.log", "snapshot"}
	errs := []error{syscall.EIO, syscall.ENOSPC}
	r := Rule{
		Op:    ops[rng.Intn(len(ops))],
		Path:  paths[rng.Intn(len(paths))],
		After: rng.Intn(8),
		Times: 1 + rng.Intn(3),
		Err:   errs[rng.Intn(len(errs))],
	}
	if r.Op == OpWrite && rng.Intn(2) == 0 {
		r.ShortWrite = true
	}
	if r.Op == OpRename {
		r.Path = "snapshot" // wal.log is never renamed; keep the rule live
		r.ShortWrite = false
	}
	return r
}

// Injector wraps an FS and applies fault Rules to matching operations.
// Rules are consulted in order; the first armed match decides the outcome.
// Safe for concurrent use. Clearing the rules "heals the disk": every
// subsequent operation passes straight through.
type Injector struct {
	fs FS
	// Sleep implements injected Delay; nil means time.Sleep.
	Sleep Sleeper

	mu    sync.Mutex
	rules []*Rule
	fired int
}

// NewInjector returns an Injector over fs with no rules armed.
func NewInjector(fs FS) *Injector {
	return &Injector{fs: fs}
}

// Add arms a copy of r and returns a handle for Stats.
func (in *Injector) Add(r Rule) *Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	rc := r
	in.rules = append(in.rules, &rc)
	return &rc
}

// Clear disarms every rule — the injected disk heals.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Fired returns how many operations have had a fault injected in total.
func (in *Injector) Fired() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Stats returns how many operations r matched and how many it failed.
func (in *Injector) Stats(r *Rule) (matched, fired int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return r.matched, r.fired
}

// check consults the rules for one operation. It returns the injected
// error (nil = pass) and whether a failing write should be short.
func (in *Injector) check(op Op, path string) (error, bool) {
	in.mu.Lock()
	var delay time.Duration
	var err error
	var short bool
	for _, r := range in.rules {
		if r.Op != op || (r.Path != "" && !strings.Contains(path, r.Path)) {
			continue
		}
		r.matched++
		if r.matched <= r.After {
			continue
		}
		if r.Times > 0 && r.fired >= r.Times {
			continue // disarmed: this fault has healed
		}
		r.fired++
		in.fired++
		delay = r.Delay
		if !r.DelayOnly {
			err = r.Err
			if err == nil {
				err = syscall.EIO
			}
			short = r.ShortWrite
		}
		break
	}
	in.mu.Unlock()
	if delay > 0 {
		if in.Sleep != nil {
			in.Sleep.Sleep(delay)
		} else {
			time.Sleep(delay)
		}
	}
	return err, short
}

// OpenFile implements FS.
func (in *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if err, _ := in.check(OpOpen, name); err != nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: err}
	}
	f, err := in.fs.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f, path: name}, nil
}

// Rename implements FS.
func (in *Injector) Rename(oldpath, newpath string) error {
	if err, _ := in.check(OpRename, oldpath+"\x00"+newpath); err != nil {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: err}
	}
	return in.fs.Rename(oldpath, newpath)
}

// Remove implements FS.
func (in *Injector) Remove(name string) error {
	if err, _ := in.check(OpRemove, name); err != nil {
		return &os.PathError{Op: "remove", Path: name, Err: err}
	}
	return in.fs.Remove(name)
}

// ReadFile implements FS.
func (in *Injector) ReadFile(name string) ([]byte, error) {
	if err, _ := in.check(OpReadFile, name); err != nil {
		return nil, &os.PathError{Op: "read", Path: name, Err: err}
	}
	return in.fs.ReadFile(name)
}

// MkdirAll implements FS.
func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if err, _ := in.check(OpMkdir, path); err != nil {
		return &os.PathError{Op: "mkdir", Path: path, Err: err}
	}
	return in.fs.MkdirAll(path, perm)
}

// ReadDir implements FS.
func (in *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if err, _ := in.check(OpReadDir, name); err != nil {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: err}
	}
	return in.fs.ReadDir(name)
}

// injFile routes a File's operations back through the Injector's rules.
type injFile struct {
	in   *Injector
	f    File
	path string
}

func (f *injFile) Read(p []byte) (int, error) {
	if err, _ := f.in.check(OpRead, f.path); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

// Write delivers half the buffer before failing when the fired rule asks
// for a short write — the torn-tail shape crash recovery must tolerate.
func (f *injFile) Write(p []byte) (int, error) {
	err, short := f.in.check(OpWrite, f.path)
	if err == nil {
		return f.f.Write(p)
	}
	if short && len(p) > 1 {
		n, werr := f.f.Write(p[:len(p)/2])
		if werr != nil {
			return n, werr
		}
		return n, err
	}
	return 0, err
}

func (f *injFile) Sync() error {
	if err, _ := f.in.check(OpSync, f.path); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *injFile) Truncate(size int64) error {
	if err, _ := f.in.check(OpTruncate, f.path); err != nil {
		return err
	}
	return f.f.Truncate(size)
}

func (f *injFile) Close() error {
	if err, _ := f.in.check(OpClose, f.path); err != nil {
		f.f.Close() // release the descriptor anyway; the caller sees the fault
		return err
	}
	return f.f.Close()
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}

func (f *injFile) Stat() (os.FileInfo, error) { return f.f.Stat() }
func (f *injFile) Fd() uintptr                { return f.f.Fd() }
func (f *injFile) Name() string               { return f.path }
