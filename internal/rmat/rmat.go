// Package rmat implements the R-MAT recursive graph generator (Chakrabarti,
// Zhan, Faloutsos — SDM 2004), used by the paper's synthetic datasets to
// produce power-law user graphs of 1–5 million users (§6.1).
package rmat

import (
	"math/rand"

	"repro/internal/stream"
)

// Params are the four quadrant probabilities of the recursive partition;
// they must be non-negative and sum to 1.
type Params struct {
	A, B, C, D float64
}

// Default is the widely used skew (a=0.57, b=0.19, c=0.19, d=0.05) that
// yields power-law in/out degree distributions.
var Default = Params{A: 0.57, B: 0.19, C: 0.19, D: 0.05}

// Generate samples m directed edges over n users. Self-loops and duplicate
// endpoints are allowed (consumers deduplicate if needed); endpoints outside
// [0, n) are resampled, so any n works, not only powers of two.
func Generate(n, m int, p Params, seed int64) [][2]stream.UserID {
	if n <= 0 || m <= 0 {
		return nil
	}
	levels := 0
	for 1<<levels < n {
		levels++
	}
	rng := rand.New(rand.NewSource(seed))
	edges := make([][2]stream.UserID, 0, m)
	for len(edges) < m {
		u, v := sample(rng, levels, p)
		if u >= n || v >= n {
			continue
		}
		edges = append(edges, [2]stream.UserID{stream.UserID(u), stream.UserID(v)})
	}
	return edges
}

// sample draws one edge by descending the 2^levels × 2^levels adjacency
// matrix, picking a quadrant per level.
func sample(rng *rand.Rand, levels int, p Params) (int, int) {
	u, v := 0, 0
	for l := 0; l < levels; l++ {
		r := rng.Float64()
		switch {
		case r < p.A:
			// top-left: nothing to add
		case r < p.A+p.B:
			v |= 1 << (levels - 1 - l)
		case r < p.A+p.B+p.C:
			u |= 1 << (levels - 1 - l)
		default:
			u |= 1 << (levels - 1 - l)
			v |= 1 << (levels - 1 - l)
		}
	}
	return u, v
}

// OutDegrees tallies out-degrees over n users for the given edge list; the
// stream generators use them as power-law activity weights.
func OutDegrees(n int, edges [][2]stream.UserID) []int {
	deg := make([]int, n)
	for _, e := range edges {
		deg[e[0]]++
	}
	return deg
}
