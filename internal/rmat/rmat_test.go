package rmat

import (
	"sort"
	"testing"
)

func TestGenerateCountsAndRange(t *testing.T) {
	const n, m = 1000, 8000
	edges := Generate(n, m, Default, 1)
	if len(edges) != m {
		t.Fatalf("edges = %d, want %d", len(edges), m)
	}
	for _, e := range edges {
		if int(e[0]) >= n || int(e[1]) >= n {
			t.Fatalf("endpoint out of range: %v", e)
		}
	}
}

func TestGenerateNonPowerOfTwo(t *testing.T) {
	edges := Generate(777, 2000, Default, 2)
	if len(edges) != 2000 {
		t.Fatalf("edges = %d", len(edges))
	}
	for _, e := range edges {
		if int(e[0]) >= 777 || int(e[1]) >= 777 {
			t.Fatalf("endpoint out of range: %v", e)
		}
	}
}

func TestGenerateDegenerate(t *testing.T) {
	if Generate(0, 10, Default, 1) != nil {
		t.Error("n=0 must return nil")
	}
	if Generate(10, 0, Default, 1) != nil {
		t.Error("m=0 must return nil")
	}
}

func TestGenerateReproducible(t *testing.T) {
	a := Generate(100, 500, Default, 7)
	b := Generate(100, 500, Default, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestDegreeSkew: with the default parameters the out-degree distribution
// must be heavily skewed — the defining property R-MAT exists for. We check
// that the top 1% of users own a disproportionate share of edges and that
// the maximum degree dwarfs the mean.
func TestDegreeSkew(t *testing.T) {
	const n, m = 4096, 40960
	deg := OutDegrees(n, Generate(n, m, Default, 3))
	sorted := append([]int(nil), deg...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	top := 0
	for _, d := range sorted[:n/100] {
		top += d
	}
	if share := float64(top) / float64(m); share < 0.10 {
		t.Fatalf("top 1%% own %.1f%% of edges, want >= 10%% (no skew)", 100*share)
	}
	mean := float64(m) / float64(n)
	if float64(sorted[0]) < 5*mean {
		t.Fatalf("max degree %d < 5x mean %.1f", sorted[0], mean)
	}
}

// TestUniformParamsNoSkew sanity-checks the generator logic by flattening
// the quadrant probabilities: degrees should then concentrate near the mean.
func TestUniformParamsNoSkew(t *testing.T) {
	const n, m = 4096, 40960
	uniform := Params{A: 0.25, B: 0.25, C: 0.25, D: 0.25}
	deg := OutDegrees(n, Generate(n, m, uniform, 3))
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	mean := float64(m) / float64(n)
	if float64(max) > 6*mean {
		t.Fatalf("uniform params produced max degree %d >> mean %.1f", max, mean)
	}
}

func TestOutDegreesSum(t *testing.T) {
	edges := Generate(128, 1000, Default, 9)
	deg := OutDegrees(128, edges)
	sum := 0
	for _, d := range deg {
		sum += d
	}
	if sum != 1000 {
		t.Fatalf("degree sum = %d, want 1000", sum)
	}
}
