package oracle

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/stream"
	"repro/internal/submod"
	"repro/internal/wire"
)

// persistCase builds a fresh oracle of each persistable kind.
var persistCases = []struct {
	name string
	mk   func() Oracle
}{
	{"sieve", func() Oracle { return NewSieve(4, 0.2, nil) }},
	{"threshold", func() Oracle { return NewThreshold(4, 0.2, nil) }},
	{"sieve-weighted", func() Oracle {
		return NewSieve(4, 0.2, submod.Table{W: map[stream.UserID]float64{1: 2.5, 3: 0.5}, Default: 1})
	}},
	{"blogwatch", func() Oracle { return NewSwap(4, nil, false) }},
	{"mkc", func() Oracle { return NewSwap(4, nil, true) }},
	{"exact", func() Oracle { return NewExact(3, nil) }},
}

// persistElements yields a deterministic element stream with growing
// influence sets, re-offering users so seed-update paths are exercised.
func persistElements(n int, seed int64) []Element {
	rng := rand.New(rand.NewSource(seed))
	sets := map[stream.UserID][]stream.UserID{}
	out := make([]Element, 0, n)
	for i := 0; i < n; i++ {
		u := stream.UserID(rng.Intn(20))
		v := stream.UserID(rng.Intn(200))
		sets[u] = append(sets[u], v)
		set := append([]stream.UserID(nil), sets[u]...)
		out = append(out, SliceElement(u, set))
	}
	return out
}

func saveRestore(t *testing.T, src Oracle, dst Oracle) {
	t.Helper()
	var buf bytes.Buffer
	sp, ok := src.(Persistent)
	if !ok {
		t.Fatalf("%T does not implement Persistent", src)
	}
	if err := sp.SaveState(wire.NewWriter(&buf)); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	dp := dst.(Persistent)
	if err := dp.RestoreState(wire.NewReader(bytes.NewReader(buf.Bytes()))); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
}

// TestPersistRoundTripContinuation is the oracle-layer identity contract: a
// restored oracle answers identically now AND keeps making identical
// admission decisions on every future element.
func TestPersistRoundTripContinuation(t *testing.T) {
	elems := persistElements(400, 17)
	for _, tc := range persistCases {
		t.Run(tc.name, func(t *testing.T) {
			src := tc.mk()
			for _, e := range elems[:250] {
				src.Process(e)
			}
			dst := tc.mk()
			saveRestore(t, src, dst)

			if got, want := dst.Value(), src.Value(); got != want {
				t.Fatalf("restored Value = %v, want %v", got, want)
			}
			if got, want := dst.Seeds(), src.Seeds(); !reflect.DeepEqual(
				append([]stream.UserID{}, got...), append([]stream.UserID{}, want...)) {
				t.Fatalf("restored Seeds = %v, want %v", got, want)
			}
			if got, want := dst.Stats(), src.Stats(); got != want {
				t.Fatalf("restored Stats = %+v, want %+v", got, want)
			}

			for i, e := range elems[250:] {
				src.Process(e)
				dst.Process(e)
				if src.Value() != dst.Value() {
					t.Fatalf("element %d: values diverge: %v vs %v", i, src.Value(), dst.Value())
				}
				if !reflect.DeepEqual(
					append([]stream.UserID{}, src.Seeds()...),
					append([]stream.UserID{}, dst.Seeds()...)) {
					t.Fatalf("element %d: seeds diverge: %v vs %v", i, src.Seeds(), dst.Seeds())
				}
			}
		})
	}
}

// TestPersistDeterministicBytes asserts SaveState is canonical: same state,
// same bytes (map-backed state must be emitted in sorted order).
func TestPersistDeterministicBytes(t *testing.T) {
	for _, tc := range persistCases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.mk()
			for _, e := range persistElements(200, 5) {
				o.Process(e)
			}
			p := o.(Persistent)
			var b1, b2 bytes.Buffer
			if err := p.SaveState(wire.NewWriter(&b1)); err != nil {
				t.Fatalf("SaveState: %v", err)
			}
			if err := p.SaveState(wire.NewWriter(&b2)); err != nil {
				t.Fatalf("SaveState: %v", err)
			}
			if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
				t.Fatal("two SaveStates of the same oracle produced different bytes")
			}
		})
	}
}

// TestPersistShardedAfterRestore drives a restored sieve grid through the
// Sharded protocol and asserts identity with the serial continuation of the
// original — restore must preserve shard structure, not only answers.
func TestPersistShardedAfterRestore(t *testing.T) {
	elems := persistElements(300, 23)
	src := NewSieve(5, 0.15, nil)
	for _, e := range elems[:200] {
		src.Process(e)
	}
	dst := NewSieve(5, 0.15, nil)
	saveRestore(t, src, dst)
	if got, want := dst.Shards(), src.Shards(); got != want {
		t.Fatalf("restored Shards = %d, want %d", got, want)
	}
	for _, e := range elems[200:] {
		src.Process(e)
		if dst.Prepare(e) {
			for s := 0; s < dst.Shards(); s++ {
				dst.FeedShard(s, e)
			}
		}
		if src.Value() != dst.Value() {
			t.Fatalf("sharded continuation diverged: %v vs %v", src.Value(), dst.Value())
		}
	}
}

func TestPersistTruncated(t *testing.T) {
	for _, tc := range persistCases {
		t.Run(tc.name, func(t *testing.T) {
			o := tc.mk()
			for _, e := range persistElements(100, 9) {
				o.Process(e)
			}
			var buf bytes.Buffer
			if err := o.(Persistent).SaveState(wire.NewWriter(&buf)); err != nil {
				t.Fatalf("SaveState: %v", err)
			}
			b := buf.Bytes()
			fresh := tc.mk().(Persistent)
			if err := fresh.RestoreState(wire.NewReader(bytes.NewReader(b[:len(b)-3]))); err == nil {
				t.Fatal("RestoreState of truncated payload succeeded")
			}
		})
	}
}
