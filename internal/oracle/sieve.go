package oracle

import (
	"math"
	"sync"

	"repro/internal/pool"
	"repro/internal/stream"
	"repro/internal/submod"
	"repro/internal/uintset"
)

// minParallelInsts is the instance count below which the per-element fan-out
// is not worth the shard handoffs and the sweep stays on the caller.
const minParallelInsts = 8

// sieveInst is one candidate solution of SieveStreaming, associated with one
// guess opt of the optimal value. It admits an element when the marginal
// gain clears the residual threshold (opt/2 − f(CX)) / (k − |CX|)
// (paper Eq. 2).
type sieveInst struct {
	opt     float64
	seeds   []stream.UserID
	inSeeds *uintset.Set
	cov     *submod.Coverage
	// gainUB caches, per non-seed candidate, an upper bound on its marginal
	// gain. Coverage growth only shrinks a candidate's gain, and between two
	// elements for the same user its influence set gains at most the
	// element's Latest member — so cached + weight(Latest) stays an upper
	// bound, and most re-offers are rejected with one lookup instead of a
	// scan over the influence set (the CELF idea applied inside a sieve
	// instance).
	gainUB *uintset.Map
}

func newSieveInst(opt float64, w submod.Weights) *sieveInst {
	return &sieveInst{
		opt:     opt,
		inSeeds: uintset.New(8),
		cov:     submod.NewCoverage(w),
		gainUB:  uintset.NewMap(0),
	}
}

// Sieve implements SieveStreaming (Badanidiyuru et al.) adapted through the
// Set-Stream Mapping: it maintains O(log k / β) instances whose OPT guesses
// (1+β)^j lie in [m, 2km] for the largest observed singleton value m, and
// answers with the best instance. Guarantees a (1/2 − β) approximation on
// the append-only element stream, hence on SIM for its suffix by Theorem 2.
//
// The live instances form a contiguous exponent range [jLo, jLo+len(insts))
// and are stored in a slice: the per-element instance sweep is the hottest
// loop of the IC/SIC frameworks.
type Sieve struct {
	k    int
	beta float64
	w    submod.Weights

	m     float64 // max singleton value observed
	insts []*sieveInst
	jLo   int
	logB  float64 // log(1+beta), cached

	elements int64
	buf      []stream.UserID

	// pool, when non-nil, fans the per-element instance sweep out across
	// workers. Instances are mutually independent (each owns its coverage,
	// seed set and gain cache), so the fan-out changes no admission decision:
	// every instance still observes the elements in arrival order.
	pool *pool.Pool

	// bestVal/bestSeeds remember the best solution ever observed (kept
	// monotone for SIC's Lemma 2: instance deletion during retune could
	// otherwise make Value() dip; the remembered seed set stays valid
	// because influence sets only grow within a checkpoint's suffix).
	// dirty marks bestVal stale after new elements.
	bestVal   float64
	bestSeeds []stream.UserID
	dirty     bool
}

// NewSieve returns a SieveStreaming oracle for cardinality constraint k and
// threshold granularity beta in (0, 1).
func NewSieve(k int, beta float64, w submod.Weights) *Sieve {
	if k < 1 {
		panic("oracle: k must be >= 1")
	}
	if beta <= 0 || beta >= 1 {
		panic("oracle: beta must be in (0, 1)")
	}
	return &Sieve{k: k, beta: beta, w: w, logB: math.Log1p(beta)}
}

// SetPool installs the worker pool used for the per-element instance sweep.
// A nil pool (the default) keeps the sweep serial — the exact legacy
// behavior. The pool is shared, not owned: the oracle never closes it.
func (s *Sieve) SetPool(p *pool.Pool) { s.pool = p }

// lockedMaterialize adapts a lazy single-goroutine materializer for the
// concurrent sweep: the first caller fills the element buffer under the
// mutex, and the release/acquire pair hands every later caller the
// happens-before edge that makes the buffer safe to read lock-free
// afterwards (it is never written again once materialized).
func lockedMaterialize(materialize func()) func() {
	var mu sync.Mutex
	return func() {
		mu.Lock()
		defer mu.Unlock()
		materialize()
	}
}

func (s *Sieve) weight(v stream.UserID) float64 {
	if s.w == nil {
		return 1
	}
	return s.w.Weight(v)
}

// Process implements Oracle.
func (s *Sieve) Process(e Element) {
	s.elements++
	// Materialize lazily: seed-coverage updates and threshold rejections
	// need only the element's metadata, and they are the overwhelmingly
	// common cases on a hot stream.
	materialized := false
	singleton := 0.0
	materialize := func() {
		if materialized {
			return
		}
		materialized = true
		s.buf = s.buf[:0]
		singleton = 0
		e.ForEach(func(v stream.UserID) bool {
			s.buf = append(s.buf, v)
			singleton += s.weight(v)
			return true
		})
	}
	if s.w == nil && e.Size > 0 {
		singleton = float64(e.Size)
	} else {
		materialize()
	}
	if singleton == 0 {
		return
	}
	if singleton > s.m {
		s.m = singleton
		s.retune()
	}
	if insts := s.insts; s.pool.Workers() > 1 && len(insts) >= minParallelInsts {
		// Fan the sweep out across the pool. Each instance is touched by
		// exactly one worker, so admission decisions and per-instance state
		// are bit-identical to the serial sweep; only materialization needs
		// the mutex-guarded wrapper because s.buf is shared read-mostly
		// state. singleton is passed by value — the captured variable may be
		// rewritten inside materialize.
		feed := lockedMaterialize(materialize)
		sv := singleton
		s.pool.Run(len(insts), func(i int) { s.feed(insts[i], e, sv, feed) })
	} else {
		for _, inst := range s.insts {
			s.feed(inst, e, singleton, materialize)
		}
	}
	s.dirty = true
}

// retune maintains the instance range after m grew: instances whose OPT
// guess fell below m are discarded (they can no longer be the right guess),
// and new empty instances are created up to 2km. Lazy instantiation
// preserves the guarantee because a fresh instance only needs to see
// elements arriving after the point where its guess became plausible
// (Badanidiyuru et al. §4). The monotone best-ever cache keeps Value() from
// dipping when instances are dropped.
func (s *Sieve) retune() {
	s.refresh() // bank the current best before dropping instances
	lo := int(math.Ceil(math.Log(s.m)/s.logB - 1e-9))
	hi := int(math.Floor(math.Log(2*float64(s.k)*s.m)/s.logB + 1e-9))
	next := make([]*sieveInst, hi-lo+1)
	for j := lo; j <= hi; j++ {
		if old := j - s.jLo; len(s.insts) > 0 && old >= 0 && old < len(s.insts) {
			next[j-lo] = s.insts[old]
		} else {
			next[j-lo] = newSieveInst(math.Pow(1+s.beta, float64(j)), s.w)
		}
	}
	s.insts, s.jLo = next, lo
}

// feed offers the current element to one instance. singleton, the element's
// full value, upper-bounds its marginal gain and lets instances with high
// thresholds reject without scanning coverage; materialize fills s.buf on
// first real need.
func (s *Sieve) feed(inst *sieveInst, e Element, singleton float64, materialize func()) {
	if inst.inSeeds.Has(uint32(e.User)) {
		// e.User is already a seed: its influence set grew, merge the
		// coverage. No threshold test — the candidate stores users, so this
		// costs no budget and only increases the value (Theorem 2's
		// monotonicity). With Latest metadata the merge is a single insert.
		if e.LatestValid {
			inst.cov.Add(e.Latest)
			return
		}
		materialize()
		for _, v := range s.buf {
			inst.cov.Add(v)
		}
		return
	}
	if len(inst.seeds) >= s.k {
		return
	}
	threshold := (inst.opt/2 - inst.cov.Value()) / float64(s.k-len(inst.seeds))
	if singleton < threshold {
		return // gain <= singleton cannot clear the threshold
	}
	if e.LatestValid {
		if ub, ok := inst.gainUB.Get(uint32(e.User)); ok {
			ub += s.weight(e.Latest)
			if ub < threshold {
				// Still below the bar even if the new member is uncovered.
				inst.gainUB.Set(uint32(e.User), ub)
				return
			}
		}
	}
	materialize()
	// Accumulate the marginal gain only until the admission condition is
	// decided: gain can only grow, so the scan stops at the threshold.
	gain := 0.0
	for _, v := range s.buf {
		gain += inst.cov.Gain(v)
		if gain >= threshold && gain > 0 {
			inst.seeds = append(inst.seeds, e.User)
			inst.inSeeds.Add(uint32(e.User))
			for _, w := range s.buf {
				inst.cov.Add(w)
			}
			return
		}
	}
	inst.gainUB.Set(uint32(e.User), gain)
}

// refresh folds the current best instance into the monotone best-ever cache.
func (s *Sieve) refresh() {
	if !s.dirty {
		return
	}
	s.dirty = false
	for _, inst := range s.insts {
		if v := inst.cov.Value(); v > s.bestVal {
			s.bestVal = v
			s.bestSeeds = append(s.bestSeeds[:0], inst.seeds...)
		}
	}
}

// Value implements Oracle.
func (s *Sieve) Value() float64 {
	s.refresh()
	return s.bestVal
}

// Seeds implements Oracle.
func (s *Sieve) Seeds() []stream.UserID {
	s.refresh()
	return s.bestSeeds
}

// Stats implements Oracle.
func (s *Sieve) Stats() Stats { return Stats{Instances: len(s.insts), Elements: s.elements} }
