package oracle

import (
	"repro/internal/submod"
)

// Sieve implements SieveStreaming (Badanidiyuru et al.) adapted through the
// Set-Stream Mapping: it maintains O(log k / β) instances whose OPT guesses
// (1+β)^j lie in [m, 2km] for the largest observed singleton value m, and
// answers with the best instance. An instance admits an element when the
// marginal gain clears the residual threshold (opt/2 − f(CX)) / (k − |CX|)
// (paper Eq. 2). Guarantees a (1/2 − β) approximation on the append-only
// element stream, hence on SIM for its suffix by Theorem 2.
//
// All grid maintenance (instance free list, retuning, the monotone
// best-ever answer cache) and the Sharded protocol — one shard per
// candidate instance — live in the embedded grid, shared with Threshold.
type Sieve struct {
	grid
}

// NewSieve returns a SieveStreaming oracle for cardinality constraint k and
// threshold granularity beta in (0, 1).
func NewSieve(k int, beta float64, w submod.Weights) *Sieve {
	return &Sieve{grid: newGrid(k, beta, w, false)}
}
