package oracle

import (
	"repro/internal/stream"
	"repro/internal/submod"
)

// Exact is the optimal checkpoint oracle of paper Definition 3: it maintains
// the latest influence set of every user seen and answers with the exact
// optimum over all subsets of at most k users, found by enumeration.
//
// It exists to reproduce the paper's worked examples (Figures 2–4) and as
// ground truth in tests and ablations; its per-query cost is exponential in
// k and it must not be used beyond toy instances. Like the optimal oracle in
// Lemma 1 it is monotone and subadditive.
type Exact struct {
	k        int
	w        submod.Weights
	sets     map[stream.UserID][]stream.UserID
	users    []stream.UserID
	elements int64

	dirty bool
	val   float64
	seeds []stream.UserID
}

// NewExact returns an exact oracle for cardinality constraint k.
func NewExact(k int, w submod.Weights) *Exact {
	if k < 1 {
		panic("oracle: k must be >= 1")
	}
	return &Exact{k: k, w: w, sets: map[stream.UserID][]stream.UserID{}, dirty: true}
}

// ExactFactory adapts NewExact to the Factory signature.
func ExactFactory(w submod.Weights) Factory {
	return func(k int) Oracle { return NewExact(k, w) }
}

// Process implements Oracle.
func (x *Exact) Process(e Element) {
	x.elements++
	if len(e.Prefix) == 0 {
		return
	}
	set := make([]stream.UserID, len(e.Prefix))
	for i, c := range e.Prefix {
		set[i] = c.V
	}
	if _, seen := x.sets[e.User]; !seen {
		x.users = append(x.users, e.User)
	}
	x.sets[e.User] = set
	x.dirty = true
}

func (x *Exact) solve() {
	if !x.dirty {
		return
	}
	x.dirty = false
	x.val = 0
	x.seeds = x.seeds[:0]
	cov := submod.NewCoverage(x.w)
	chosen := make([]stream.UserID, 0, x.k)
	var rec func(start int)
	rec = func(start int) {
		if v := cov.Value(); v > x.val {
			x.val = v
			x.seeds = append(x.seeds[:0], chosen...)
		}
		if len(chosen) == x.k {
			return
		}
		for i := start; i < len(x.users); i++ {
			u := x.users[i]
			// Branch with u added; coverage is rebuilt on unwind (simplest
			// correct approach for a test-scale oracle).
			saved := cov
			cov = saved.Clone()
			for _, v := range x.sets[u] {
				cov.Add(v)
			}
			chosen = append(chosen, u)
			rec(i + 1)
			chosen = chosen[:len(chosen)-1]
			cov = saved
		}
	}
	rec(0)
}

// Value implements Oracle.
func (x *Exact) Value() float64 {
	x.solve()
	return x.val
}

// Seeds implements Oracle.
func (x *Exact) Seeds() []stream.UserID {
	x.solve()
	return x.seeds
}

// Stats implements Oracle.
func (x *Exact) Stats() Stats { return Stats{Instances: 1, Elements: x.elements} }
