package oracle

import (
	"fmt"
	"sort"

	"repro/internal/stream"
	"repro/internal/wire"
)

// Persistent is implemented by oracles whose complete mutable state can be
// serialized and later restored onto a freshly constructed oracle of the
// same configuration (same k, beta and weights — configuration travels
// through the Factory, not the payload). It is the per-checkpoint leg of
// the durable-tracker contract: core.Framework saves its checkpoint chain
// by saving each checkpoint's oracle, and a restored oracle must make
// bit-identical admission decisions on every subsequent element.
//
// All four Table 2 oracles implement Persistent: the sieve-style grids
// serialize their candidate instances (OPT guesses, seed lists, coverage
// sets, gain-bound caches), the swap oracles their seed snapshots, and
// Exact its per-user set memory.
type Persistent interface {
	Oracle
	// SaveState writes the oracle's state. The write is deterministic:
	// saving the same logical state twice yields identical bytes.
	SaveState(w *wire.Writer) error
	// RestoreState replaces the oracle's state with one saved by SaveState
	// on an oracle of the same kind and configuration. The receiver must be
	// freshly constructed.
	RestoreState(r *wire.Reader) error
}

// Per-oracle payload versions, bumped independently of the SIM2 container.
const (
	gridPayloadVersion  = 1
	swapPayloadVersion  = 1
	exactPayloadVersion = 1
)

// maxLen bounds decoded collection sizes; corrupt claims fail fast. The
// SIM2 container CRC makes this a second line of defense only.
const maxLen = wire.MaxLen

// SaveState implements Persistent for the sieve-style oracles. Per
// instance it serializes the OPT guess (as float bits — thresholds must
// restore exactly), the admitted seed list in admission order (order is
// semantic: it is the tie-break of the best-instance answer), the coverage
// accumulator and the CELF-style gain-bound cache.
func (g *grid) SaveState(w *wire.Writer) error {
	w.Uvarint(gridPayloadVersion)
	w.Varint(g.elements)
	w.F64(g.m)
	w.Varint(int64(g.jLo))
	w.Uvarint(uint64(len(g.insts)))
	for _, inst := range g.insts {
		w.F64(inst.opt)
		w.Uvarint(uint64(len(inst.seeds)))
		for _, s := range inst.seeds {
			w.Uvarint(uint64(s))
		}
		inst.cov.Save(w)
		saveGainUB(w, inst)
	}
	w.F64(g.bestVal)
	w.Uvarint(uint64(len(g.bestSeeds)))
	for _, s := range g.bestSeeds {
		w.Uvarint(uint64(s))
	}
	w.Bool(g.dirty)
	return w.Err()
}

// saveGainUB emits an instance's gain-bound cache sorted by key for
// deterministic output; cache content (not layout) is what admission
// decisions read.
func saveGainUB(w *wire.Writer, inst *sieveInst) {
	type kv struct {
		k uint32
		v float64
	}
	entries := make([]kv, 0, inst.gainUB.Len())
	inst.gainUB.ForEach(func(k uint32, v float64) bool {
		entries = append(entries, kv{k, v})
		return true
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].k < entries[j].k })
	w.Uvarint(uint64(len(entries)))
	for _, e := range entries {
		w.Uvarint(uint64(e.k))
		w.F64(e.v)
	}
}

// RestoreState implements Persistent for the sieve-style oracles.
func (g *grid) RestoreState(r *wire.Reader) error {
	if v := r.Uvarint(); r.Err() == nil && v != gridPayloadVersion {
		return fmt.Errorf("oracle: unsupported sieve payload version %d", v)
	}
	g.elements = r.Varint()
	g.m = r.F64()
	g.jLo = int(r.Varint())
	n := r.Len(maxLen)
	g.insts = make([]*sieveInst, 0, min(n, 1<<16))
	for i := 0; i < n && r.Err() == nil; i++ {
		inst := g.pool.get(r.F64())
		ns := r.Len(maxLen)
		for j := 0; j < ns && r.Err() == nil; j++ {
			u := stream.UserID(r.Uvarint())
			inst.seeds = append(inst.seeds, u)
			inst.inSeeds.Add(uint32(u))
		}
		inst.cov.Restore(r)
		ng := r.Len(maxLen)
		for j := 0; j < ng && r.Err() == nil; j++ {
			k := uint32(r.Uvarint())
			inst.gainUB.Set(k, r.F64())
		}
		g.insts = append(g.insts, inst)
	}
	g.bestVal = r.F64()
	nb := r.Len(maxLen)
	g.bestSeeds = g.bestSeeds[:0]
	for i := 0; i < nb && r.Err() == nil; i++ {
		g.bestSeeds = append(g.bestSeeds, stream.UserID(r.Uvarint()))
	}
	g.dirty = r.Bool()
	if err := r.Err(); err != nil {
		return fmt.Errorf("oracle: restoring sieve grid: %w", err)
	}
	return nil
}

// SaveState implements Persistent for the swap oracles: the seed snapshots
// (user plus admission-time influence set, in slot order — slot identity
// matters to BlogWatch's min-weight victim scan) and the running value.
func (s *Swap) SaveState(w *wire.Writer) error {
	w.Uvarint(swapPayloadVersion)
	w.Varint(s.elements)
	w.F64(s.value)
	w.Uvarint(uint64(len(s.seeds)))
	for _, sd := range s.seeds {
		w.Uvarint(uint64(sd.user))
		w.Uvarint(uint64(len(sd.set)))
		for _, v := range sd.set {
			w.Uvarint(uint64(v))
		}
	}
	return w.Err()
}

// RestoreState implements Persistent for the swap oracles.
func (s *Swap) RestoreState(r *wire.Reader) error {
	if v := r.Uvarint(); r.Err() == nil && v != swapPayloadVersion {
		return fmt.Errorf("oracle: unsupported swap payload version %d", v)
	}
	s.elements = r.Varint()
	s.value = r.F64()
	n := r.Len(maxLen)
	s.seeds = make([]swapSeed, 0, min(n, 1<<16))
	for i := 0; i < n && r.Err() == nil; i++ {
		sd := swapSeed{user: stream.UserID(r.Uvarint())}
		ns := r.Len(maxLen)
		sd.set = make([]stream.UserID, 0, min(ns, 1<<20))
		for j := 0; j < ns && r.Err() == nil; j++ {
			sd.set = append(sd.set, stream.UserID(r.Uvarint()))
		}
		s.seeds = append(s.seeds, sd)
	}
	s.dirtyIDs = true
	if err := r.Err(); err != nil {
		return fmt.Errorf("oracle: restoring swap oracle: %w", err)
	}
	return nil
}

// SaveState implements Persistent for the Exact reference oracle: the
// latest influence set of every user, in first-seen order (enumeration
// order is the tie-break of the exact answer).
func (x *Exact) SaveState(w *wire.Writer) error {
	w.Uvarint(exactPayloadVersion)
	w.Varint(x.elements)
	w.Uvarint(uint64(len(x.users)))
	for _, u := range x.users {
		w.Uvarint(uint64(u))
		set := x.sets[u]
		w.Uvarint(uint64(len(set)))
		for _, v := range set {
			w.Uvarint(uint64(v))
		}
	}
	return w.Err()
}

// RestoreState implements Persistent for Exact.
func (x *Exact) RestoreState(r *wire.Reader) error {
	if v := r.Uvarint(); r.Err() == nil && v != exactPayloadVersion {
		return fmt.Errorf("oracle: unsupported exact payload version %d", v)
	}
	x.elements = r.Varint()
	n := r.Len(maxLen)
	x.users = make([]stream.UserID, 0, min(n, 1<<16))
	x.sets = make(map[stream.UserID][]stream.UserID, min(n, 1<<16))
	for i := 0; i < n && r.Err() == nil; i++ {
		u := stream.UserID(r.Uvarint())
		ns := r.Len(maxLen)
		set := make([]stream.UserID, 0, min(ns, 1<<20))
		for j := 0; j < ns && r.Err() == nil; j++ {
			set = append(set, stream.UserID(r.Uvarint()))
		}
		x.users = append(x.users, u)
		x.sets[u] = set
	}
	x.dirty = true
	if err := r.Err(); err != nil {
		return fmt.Errorf("oracle: restoring exact oracle: %w", err)
	}
	return nil
}
