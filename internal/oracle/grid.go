package oracle

import (
	"math"
	"sort"

	"repro/internal/stream"
	"repro/internal/submod"
	"repro/internal/uintset"
)

// sieveInst is one candidate solution of a sieve-style oracle, associated
// with one guess opt of the optimal value. SieveStreaming admits an element
// when the marginal gain clears the residual threshold
// (opt/2 − f(CX)) / (k − |CX|) (paper Eq. 2); ThresholdStream uses the flat
// threshold opt/(2k). The state is identical either way.
type sieveInst struct {
	opt     float64
	seeds   []stream.UserID
	inSeeds *uintset.Set
	cov     *submod.Coverage
	// gainUB caches, per non-seed candidate, an upper bound on its marginal
	// gain. Coverage growth only shrinks a candidate's gain, and between two
	// elements for the same user its influence set gains at most the
	// element's Latest member — so cached + weight(Latest) stays an upper
	// bound, and most re-offers are rejected with one lookup instead of a
	// scan over the influence set (the CELF idea applied inside a sieve
	// instance).
	gainUB *uintset.Map
}

// instPool is a free list of retired sieve instances: retune() drops
// instances whose OPT guess fell behind m, and on a hot stream m grows many
// times, so recycling the coverage set, gain cache and seed slice removes a
// steady source of garbage from the ingestion path.
type instPool struct {
	free []*sieveInst
	w    submod.Weights
}

func (p *instPool) get(opt float64) *sieveInst {
	if n := len(p.free); n > 0 {
		inst := p.free[n-1]
		p.free = p.free[:n-1]
		inst.opt = opt
		return inst
	}
	return &sieveInst{
		opt:     opt,
		inSeeds: uintset.New(8),
		cov:     submod.NewCoverage(p.w),
		gainUB:  uintset.NewMap(0),
	}
}

func (p *instPool) put(inst *sieveInst) {
	inst.seeds = inst.seeds[:0]
	inst.inSeeds.Reset()
	inst.cov.Reset()
	inst.gainUB.Reset()
	p.free = append(p.free, inst)
}

// grid is the machinery shared by the two sieve-style oracles
// (SieveStreaming and ThresholdStream): OPT guesses (1+β)^j maintained on a
// grid over [m, 2km] for the largest observed singleton value m, one
// candidate instance per guess, a free list recycling retired instances,
// and a monotone best-ever answer cache. The only algorithmic difference
// between the two oracles is the admission threshold, selected by flat.
//
// The live instances form a contiguous exponent range [jLo, jLo+len(insts))
// and are stored in a slice: the per-element instance sweep is the hottest
// loop of the IC/SIC frameworks. grid implements the full Oracle and
// Sharded method sets with one shard per instance, so the frameworks can
// fan the sweep across every live checkpoint at once.
type grid struct {
	k    int
	beta float64
	w    submod.Weights
	flat bool // true = ThresholdStream's opt/(2k); false = Sieve's residual

	m     float64 // max singleton value observed
	insts []*sieveInst
	jLo   int
	logB  float64 // log(1+beta), cached
	pool  instPool

	elements int64

	// cur is the prepared element's singleton value, set serially in
	// Prepare and read-only during the concurrent FeedShard calls.
	cur float64

	// bestVal/bestSeeds remember the best solution ever observed (kept
	// monotone for SIC's Lemma 2: instance deletion during retune could
	// otherwise make Value() dip; the remembered seed set stays valid
	// because influence sets only grow within a checkpoint's suffix).
	// dirty marks bestVal stale after new elements.
	bestVal   float64
	bestSeeds []stream.UserID
	dirty     bool
}

func newGrid(k int, beta float64, w submod.Weights, flat bool) grid {
	if k < 1 {
		panic("oracle: k must be >= 1")
	}
	if beta <= 0 || beta >= 1 {
		panic("oracle: beta must be in (0, 1)")
	}
	return grid{k: k, beta: beta, w: w, flat: flat, logB: math.Log1p(beta), pool: instPool{w: w}}
}

// singleton returns f({e}): the element's full value, an upper bound on its
// marginal gain for every instance.
func (g *grid) singleton(e Element) float64 {
	if g.w == nil {
		return float64(len(e.Prefix))
	}
	v := 0.0
	for _, c := range e.Prefix {
		v += g.w.Weight(c.V)
	}
	return v
}

// Prepare implements Sharded: counters, singleton evaluation and
// threshold-grid retuning — the serial prefix of one element.
func (g *grid) Prepare(e Element) bool {
	g.elements++
	sv := g.singleton(e)
	if sv == 0 {
		return false
	}
	if sv > g.m {
		g.m = sv
		g.retune()
	}
	g.cur = sv
	g.dirty = true
	return true
}

// Shards implements Sharded: one shard per live instance.
func (g *grid) Shards() int { return len(g.insts) }

// FeedShard implements Sharded: offer the prepared element to instance i.
// Instances never share mutable state, so distinct shards may run
// concurrently with bit-identical admission decisions.
func (g *grid) FeedShard(i int, e Element) { g.feed(g.insts[i], e, g.cur) }

// Process implements Oracle: the serial sweep, equivalent to Prepare
// followed by feeding every shard in order.
func (g *grid) Process(e Element) {
	if !g.Prepare(e) {
		return
	}
	for _, inst := range g.insts {
		g.feed(inst, e, g.cur)
	}
}

// retune maintains the instance range after m grew: instances whose OPT
// guess fell below m are recycled through the free list (they can no longer
// be the right guess), and instances up to 2km are created. Lazy
// instantiation preserves the guarantee because a fresh instance only needs
// to see elements arriving after the point where its guess became plausible
// (Badanidiyuru et al. §4). The monotone best-ever cache keeps Value() from
// dipping when instances are dropped.
func (g *grid) retune() {
	g.refresh() // bank the current best before dropping instances
	lo := int(math.Ceil(math.Log(g.m)/g.logB - 1e-9))
	hi := int(math.Floor(math.Log(2*float64(g.k)*g.m)/g.logB + 1e-9))
	next := make([]*sieveInst, hi-lo+1)
	for old, inst := range g.insts {
		if j := old + g.jLo; j < lo || j > hi {
			g.pool.put(inst)
		} else {
			next[j-lo] = inst
		}
	}
	for j := lo; j <= hi; j++ {
		if next[j-lo] == nil {
			next[j-lo] = g.pool.get(math.Pow(1+g.beta, float64(j)))
		}
	}
	g.insts, g.jLo = next, lo
}

// feed offers the current element to one instance. singleton, the element's
// full value, upper-bounds its marginal gain and lets instances with high
// thresholds reject without scanning coverage.
func (g *grid) feed(inst *sieveInst, e Element, singleton float64) {
	if inst.inSeeds.Has(uint32(e.User)) {
		// e.User is already a seed: its influence set grew, merge the
		// coverage. No threshold test — the candidate stores users, so this
		// costs no budget and only increases the value (Theorem 2's
		// monotonicity). With Latest metadata the merge is a single insert.
		if e.LatestValid {
			inst.cov.Add(e.Latest)
			return
		}
		for _, c := range e.Prefix {
			inst.cov.Add(c.V)
		}
		return
	}
	if len(inst.seeds) >= g.k {
		return
	}
	var threshold float64
	if g.flat {
		threshold = inst.opt / (2 * float64(g.k))
	} else {
		threshold = (inst.opt/2 - inst.cov.Value()) / float64(g.k-len(inst.seeds))
	}
	if singleton < threshold {
		return // gain <= singleton cannot clear the threshold
	}
	if e.LatestValid {
		if ub, ok := inst.gainUB.Get(uint32(e.User)); ok {
			w := 1.0
			if g.w != nil {
				w = g.w.Weight(e.Latest)
			}
			ub += w
			if ub < threshold {
				// Still below the bar even if the new member is uncovered.
				inst.gainUB.Set(uint32(e.User), ub)
				return
			}
		}
	}
	// Accumulate the marginal gain only until the admission condition is
	// decided: gain can only grow, so the scan stops at the threshold.
	gain := 0.0
	for _, c := range e.Prefix {
		gain += inst.cov.Gain(c.V)
		if gain >= threshold && gain > 0 {
			inst.seeds = append(inst.seeds, e.User)
			inst.inSeeds.Add(uint32(e.User))
			for _, c2 := range e.Prefix {
				inst.cov.Add(c2.V)
			}
			return
		}
	}
	inst.gainUB.Set(uint32(e.User), gain)
}

// refresh folds the current best instance into the monotone best-ever cache.
func (g *grid) refresh() {
	if !g.dirty {
		return
	}
	g.dirty = false
	for _, inst := range g.insts {
		if v := inst.cov.Value(); v > g.bestVal {
			g.bestVal = v
			g.bestSeeds = append(g.bestSeeds[:0], inst.seeds...)
		}
	}
}

// Value implements Oracle.
func (g *grid) Value() float64 {
	g.refresh()
	return g.bestVal
}

// Seeds implements Oracle.
func (g *grid) Seeds() []stream.UserID {
	g.refresh()
	return g.bestSeeds
}

// Candidates implements CandidateSource: the deduplicated union of every
// live instance's seed set plus the monotone best-ever answer, sorted
// ascending. Instances with different OPT guesses admit different users, so
// the union is a strictly richer pool than Seeds() — exactly what a
// distributed merge layer wants to re-score.
func (g *grid) Candidates() []stream.UserID {
	g.refresh()
	seen := uintset.New(8)
	var out []stream.UserID
	add := func(users []stream.UserID) {
		for _, u := range users {
			if !seen.Has(uint32(u)) {
				seen.Add(uint32(u))
				out = append(out, u)
			}
		}
	}
	add(g.bestSeeds)
	for _, inst := range g.insts {
		add(inst.seeds)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats implements Oracle.
func (g *grid) Stats() Stats { return Stats{Instances: len(g.insts), Elements: g.elements} }
