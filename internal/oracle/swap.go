package oracle

import (
	"repro/internal/stream"
	"repro/internal/submod"
)

// swapSeed is one admitted element of a swap oracle: the user together with
// the snapshot of its influence set at admission time. Later growth of the
// same user's influence set arrives as a fresh element and can replace the
// stale snapshot through the ordinary swap rule, matching the set-stream
// model where every update is an independent immutable set.
type swapSeed struct {
	user stream.UserID
	set  []stream.UserID
}

// Swap implements the two swap-based online Maximum k-Coverage oracles of
// Table 2, both with a 1/4 approximation on coverage objectives:
//
//   - BlogWatch (Saha & Getoor): O(k) per element — only the seed whose
//     snapshot has the smallest individual weight is considered for
//     eviction.
//   - MkC (Ausiello et al.): O(k log k)-flavoured — every seed is considered
//     and the most profitable swap is taken.
//
// A swap is committed only when it improves the solution value by at least
// value/(2k), the improvement margin that yields the constant-factor bound
// for online k-coverage; this also makes the oracle value monotone, as
// required by SIC's Lemma 2.
type Swap struct {
	k     int
	w     submod.Weights
	full  bool // true = MkC (best swap), false = BlogWatch (min-weight seed)
	seeds []swapSeed

	value    float64
	seedIDs  []stream.UserID
	dirtyIDs bool

	elements int64
	buf      []stream.UserID

	scratch *submod.Coverage
}

// NewSwap returns a swap oracle; full selects the MkC variant.
func NewSwap(k int, w submod.Weights, full bool) *Swap {
	if k < 1 {
		panic("oracle: k must be >= 1")
	}
	return &Swap{k: k, w: w, full: full, scratch: submod.NewCoverage(w)}
}

func (s *Swap) weight(v stream.UserID) float64 {
	if s.w == nil {
		return 1
	}
	return s.w.Weight(v)
}

// unionValue computes f of the union of all seed snapshots, with the seed at
// index skip removed and extra (possibly nil) added.
func (s *Swap) unionValue(skip int, extra []stream.UserID) float64 {
	s.scratch.Reset()
	for i, sd := range s.seeds {
		if i == skip {
			continue
		}
		for _, v := range sd.set {
			s.scratch.Add(v)
		}
	}
	for _, v := range extra {
		s.scratch.Add(v)
	}
	return s.scratch.Value()
}

// Process implements Oracle.
func (s *Swap) Process(e Element) {
	s.elements++
	s.buf = s.buf[:0]
	for _, c := range e.Prefix {
		s.buf = append(s.buf, c.V)
	}
	if len(s.buf) == 0 {
		return
	}

	// A user already in the solution replaces its own snapshot in place:
	// the new influence set is a superset in the append-only suffix, so the
	// value cannot decrease and no seed budget is consumed.
	for i := range s.seeds {
		if s.seeds[i].user == e.User {
			s.seeds[i].set = append(s.seeds[i].set[:0], s.buf...)
			s.value = s.unionValue(-1, nil)
			s.dirtyIDs = true
			return
		}
	}

	if len(s.seeds) < s.k {
		set := make([]stream.UserID, len(s.buf))
		copy(set, s.buf)
		s.seeds = append(s.seeds, swapSeed{user: e.User, set: set})
		s.value = s.unionValue(-1, nil)
		s.dirtyIDs = true
		return
	}

	// Solution full: look for a profitable swap.
	margin := s.value / (2 * float64(s.k))
	bestIdx, bestVal := -1, s.value
	if s.full {
		for i := range s.seeds {
			if v := s.unionValue(i, s.buf); v > bestVal {
				bestIdx, bestVal = i, v
			}
		}
	} else {
		// BlogWatch: only the min-weight snapshot is a candidate victim.
		minIdx, minW := -1, 0.0
		for i, sd := range s.seeds {
			w := 0.0
			for _, v := range sd.set {
				w += s.weight(v)
			}
			if minIdx < 0 || w < minW {
				minIdx, minW = i, w
			}
		}
		if v := s.unionValue(minIdx, s.buf); v > bestVal {
			bestIdx, bestVal = minIdx, v
		}
	}
	if bestIdx >= 0 && bestVal-s.value >= margin {
		set := make([]stream.UserID, len(s.buf))
		copy(set, s.buf)
		s.seeds[bestIdx] = swapSeed{user: e.User, set: set}
		s.value = bestVal
		s.dirtyIDs = true
	}
}

// Value implements Oracle.
func (s *Swap) Value() float64 { return s.value }

// Seeds implements Oracle.
func (s *Swap) Seeds() []stream.UserID {
	if s.dirtyIDs {
		s.seedIDs = s.seedIDs[:0]
		for _, sd := range s.seeds {
			s.seedIDs = append(s.seedIDs, sd.user)
		}
		s.dirtyIDs = false
	}
	return s.seedIDs
}

// Stats implements Oracle.
func (s *Swap) Stats() Stats { return Stats{Instances: 1, Elements: s.elements} }
