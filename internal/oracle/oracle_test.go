package oracle

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stream"
	"repro/internal/submod"
)

// coverageInstance is a random Maximum k-Coverage instance: m candidate
// users, each owning one set over a ground of g users.
type coverageInstance struct {
	sets map[stream.UserID][]stream.UserID
	k    int
}

func randomInstance(rng *rand.Rand, m, g, k int) coverageInstance {
	inst := coverageInstance{sets: map[stream.UserID][]stream.UserID{}, k: k}
	for u := 0; u < m; u++ {
		n := 1 + rng.Intn(6)
		set := map[stream.UserID]bool{}
		for len(set) < n {
			set[stream.UserID(rng.Intn(g))] = true
		}
		var s []stream.UserID
		for v := range set {
			s = append(s, v)
		}
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		inst.sets[stream.UserID(u)] = s
	}
	return inst
}

// optimal computes the exact Maximum k-Coverage optimum by enumeration.
// Only usable for tiny instances.
func (ci coverageInstance) optimal(w submod.Weights) float64 {
	var users []stream.UserID
	for u := range ci.sets {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	best := 0.0
	var rec func(start int, chosen [][]stream.UserID)
	rec = func(start int, chosen [][]stream.UserID) {
		if v := submod.ValueOf(w, chosen...); v > best {
			best = v
		}
		if len(chosen) == ci.k {
			return
		}
		for i := start; i < len(users); i++ {
			rec(i+1, append(chosen, ci.sets[users[i]]))
		}
	}
	rec(0, nil)
	return best
}

// feed streams the instance's sets to the oracle in a deterministic shuffled
// order.
func (ci coverageInstance) feed(rng *rand.Rand, o Oracle) {
	var users []stream.UserID
	for u := range ci.sets {
		users = append(users, u)
	}
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	rng.Shuffle(len(users), func(i, j int) { users[i], users[j] = users[j], users[i] })
	for _, u := range users {
		o.Process(SliceElement(u, ci.sets[u]))
	}
}

func allKinds() []Kind { return []Kind{SieveStreaming, ThresholdStream, BlogWatch, MkC} }

func ratioFor(kind Kind, beta float64) float64 {
	switch kind {
	case SieveStreaming, ThresholdStream:
		return 0.5 - beta
	default:
		return 0.25
	}
}

// TestApproximationRatioOnRandomInstances verifies every oracle achieves its
// Table 2 ratio against the exact optimum on small random instances.
func TestApproximationRatioOnRandomInstances(t *testing.T) {
	const beta = 0.1
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		inst := randomInstance(rng, 10, 25, 3)
		opt := inst.optimal(nil)
		for _, kind := range allKinds() {
			o := NewFactory(kind, beta, nil)(inst.k)
			inst.feed(rand.New(rand.NewSource(int64(trial))), o)
			want := ratioFor(kind, beta) * opt
			if o.Value() < want-1e-9 {
				t.Errorf("trial %d %v: value %.3f < %.3f (ratio %.2f of OPT %.1f)",
					trial, kind, o.Value(), want, ratioFor(kind, beta), opt)
			}
		}
	}
}

// TestValueMatchesSeeds verifies the reported value equals the objective of
// the reported seeds evaluated on the freshest sets (it may exceed the
// snapshot-based internal value only for swap oracles; for sieve oracles it
// must match exactly when sets never change).
func TestValueMatchesSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	inst := randomInstance(rng, 20, 40, 4)
	for _, kind := range allKinds() {
		o := NewFactory(kind, 0.2, nil)(inst.k)
		inst.feed(rand.New(rand.NewSource(5)), o)
		var sets [][]stream.UserID
		for _, u := range o.Seeds() {
			sets = append(sets, inst.sets[u])
		}
		real := submod.ValueOf(nil, sets...)
		if math.Abs(real-o.Value()) > 1e-9 {
			t.Errorf("%v: reported value %.3f, recomputed %.3f", kind, o.Value(), real)
		}
	}
}

func TestSeedsWithinBudgetAndDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 30, 50, 5)
		for _, kind := range allKinds() {
			o := NewFactory(kind, 0.15, nil)(inst.k)
			inst.feed(rand.New(rand.NewSource(int64(trial))), o)
			seeds := o.Seeds()
			if len(seeds) > inst.k {
				t.Fatalf("%v: %d seeds > k=%d", kind, len(seeds), inst.k)
			}
			seen := map[stream.UserID]bool{}
			for _, u := range seeds {
				if seen[u] {
					t.Fatalf("%v: duplicate seed %d", kind, u)
				}
				seen[u] = true
			}
		}
	}
}

// TestMonotoneValueUnderGrowingSets simulates the Set-Stream Mapping: the
// same users reappear with growing influence sets. The oracle value must
// never decrease (the property SIC's Lemma 2 depends on).
func TestMonotoneValueUnderGrowingSets(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, kind := range allKinds() {
		o := NewFactory(kind, 0.1, nil)(4)
		cur := map[stream.UserID][]stream.UserID{}
		last := 0.0
		for step := 0; step < 500; step++ {
			u := stream.UserID(rng.Intn(15))
			cur[u] = append(cur[u], stream.UserID(rng.Intn(80)))
			o.Process(SliceElement(u, dedup(cur[u])))
			if v := o.Value(); v < last-1e-9 {
				t.Fatalf("%v: value decreased %.3f -> %.3f at step %d", kind, last, v, step)
			} else {
				last = v
			}
		}
	}
}

func dedup(in []stream.UserID) []stream.UserID {
	seen := map[stream.UserID]bool{}
	var out []stream.UserID
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// TestSeedUpdateMergesCoverage: re-seeing a seed user with a larger set
// must raise the value without consuming budget.
func TestSeedUpdateMergesCoverage(t *testing.T) {
	for _, kind := range allKinds() {
		o := NewFactory(kind, 0.1, nil)(1)
		o.Process(SliceElement(1, []stream.UserID{10, 11}))
		v1 := o.Value()
		o.Process(SliceElement(1, []stream.UserID{10, 11, 12, 13}))
		if o.Value() <= v1 {
			t.Errorf("%v: value did not grow on seed update (%.1f -> %.1f)", kind, v1, o.Value())
		}
		if len(o.Seeds()) != 1 {
			t.Errorf("%v: seed update consumed budget: %v", kind, o.Seeds())
		}
	}
}

func TestEmptyElementIgnored(t *testing.T) {
	for _, kind := range allKinds() {
		o := NewFactory(kind, 0.1, nil)(2)
		o.Process(SliceElement(1, nil))
		if o.Value() != 0 || len(o.Seeds()) != 0 {
			t.Errorf("%v: empty element changed state", kind)
		}
	}
}

func TestWeightedObjective(t *testing.T) {
	w := submod.Table{W: map[stream.UserID]float64{100: 10}, Default: 1}
	for _, kind := range allKinds() {
		o := NewFactory(kind, 0.1, w)(1)
		o.Process(SliceElement(1, []stream.UserID{1, 2, 3})) // value 3
		o.Process(SliceElement(2, []stream.UserID{100}))     // value 10
		if o.Value() < 10 {
			t.Errorf("%v: weighted value %.1f, want >= 10", kind, o.Value())
		}
		if len(o.Seeds()) != 1 || o.Seeds()[0] != 2 {
			t.Errorf("%v: seeds = %v, want [2]", kind, o.Seeds())
		}
	}
}

// metaElement builds an Element the way the checkpoint frameworks do:
// with the Latest/Size fast-path metadata populated.
func metaElement(u stream.UserID, set []stream.UserID, latest stream.UserID) Element {
	e := SliceElement(u, set)
	e.Latest = latest
	e.LatestValid = true
	return e
}

// TestGainCacheAdmitsAfterGrowth: a candidate rejected early must still be
// admitted once its influence set grows past the threshold, even on the
// metadata fast path (the gain-upper-bound cache must never block a
// legitimate admission).
func TestGainCacheAdmitsAfterGrowth(t *testing.T) {
	for _, kind := range []Kind{SieveStreaming, ThresholdStream} {
		o := NewFactory(kind, 0.1, nil)(2)
		// A large element pins m (and thus thresholds) high.
		big := make([]stream.UserID, 40)
		for i := range big {
			big[i] = stream.UserID(1000 + i)
		}
		o.Process(metaElement(1, big, big[len(big)-1]))
		v1 := o.Value()

		// Candidate 2 starts tiny (rejected everywhere useful), then grows
		// one member at a time to 30 distinct users.
		var set []stream.UserID
		for i := 0; i < 30; i++ {
			v := stream.UserID(2000 + i)
			set = append(set, v)
			o.Process(metaElement(2, set, v))
		}
		if o.Value() <= v1 {
			t.Errorf("%v: value stuck at %.1f after candidate growth", kind, v1)
		}
		found := false
		for _, s := range o.Seeds() {
			if s == 2 {
				found = true
			}
		}
		if !found {
			t.Errorf("%v: grown candidate never admitted: seeds=%v", kind, o.Seeds())
		}
	}
}

// TestFastPathMatchesSlowPath: identical element sequences with and without
// the metadata must produce identical values (admissions are decided by the
// same comparisons; the cache only skips provably fruitless scans).
func TestFastPathMatchesSlowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 10; trial++ {
		for _, kind := range []Kind{SieveStreaming, ThresholdStream} {
			fast := NewFactory(kind, 0.15, nil)(3)
			slow := NewFactory(kind, 0.15, nil)(3)
			cur := map[stream.UserID][]stream.UserID{}
			for step := 0; step < 400; step++ {
				u := stream.UserID(rng.Intn(12))
				v := stream.UserID(rng.Intn(60))
				had := false
				for _, x := range cur[u] {
					if x == v {
						had = true
						break
					}
				}
				if !had {
					cur[u] = append(cur[u], v)
				}
				// The fast tracker gets metadata; the slow one does not.
				// Latest is v only when it is genuinely the newest member.
				fast.Process(metaElement(u, cur[u], v))
				slow.Process(SliceElement(u, cur[u]))
				if fast.Value() != slow.Value() {
					t.Fatalf("%v trial %d step %d: fast %.1f != slow %.1f",
						kind, trial, step, fast.Value(), slow.Value())
				}
			}
		}
	}
}

func TestSieveInstanceManagement(t *testing.T) {
	s := NewSieve(10, 0.3, nil)
	s.Process(SliceElement(1, []stream.UserID{1}))
	first := s.Stats().Instances
	if first == 0 {
		t.Fatal("no instances after first element")
	}
	// A much larger singleton shifts the guess window upward; stale
	// instances must be dropped, and the value must not dip.
	before := s.Value()
	big := make([]stream.UserID, 50)
	for i := range big {
		big[i] = stream.UserID(100 + i)
	}
	s.Process(SliceElement(2, big))
	if s.Value() < before {
		t.Fatalf("value dipped after retune: %.1f -> %.1f", before, s.Value())
	}
	if s.Value() < 50 {
		t.Fatalf("big element not admitted: value=%.1f", s.Value())
	}
	// Instance count stays O(log(2k)/log(1+beta)).
	bound := int(math.Log(2*10*50)/math.Log1p(0.3)) + 2
	if got := s.Stats().Instances; got > bound {
		t.Fatalf("instances = %d, want <= %d", got, bound)
	}
}

func TestStatsCounters(t *testing.T) {
	for _, kind := range allKinds() {
		o := NewFactory(kind, 0.1, nil)(2)
		for i := 0; i < 7; i++ {
			o.Process(SliceElement(stream.UserID(i), []stream.UserID{stream.UserID(i)}))
		}
		if got := o.Stats().Elements; got != 7 {
			t.Errorf("%v: Elements = %d, want 7", kind, got)
		}
	}
}

func TestKindString(t *testing.T) {
	names := map[Kind]string{
		SieveStreaming: "SieveStreaming", ThresholdStream: "ThresholdStream",
		BlogWatch: "BlogWatch", MkC: "MkC", Kind(99): "unknown",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewSieve(0, 0.1, nil) },
		func() { NewSieve(1, 0, nil) },
		func() { NewSieve(1, 1, nil) },
		func() { NewThreshold(0, 0.1, nil) },
		func() { NewThreshold(1, -0.1, nil) },
		func() { NewSwap(0, nil, false) },
		func() { NewFactory(Kind(42), 0.1, nil) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestMkCBeatsOrMatchesBlogWatch: the full-scan variant must never end below
// the min-weight-victim variant on identical input.
func TestMkCAtLeastBlogWatch(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	worse := 0
	for trial := 0; trial < 30; trial++ {
		inst := randomInstance(rng, 25, 40, 4)
		bw := NewSwap(inst.k, nil, false)
		mkc := NewSwap(inst.k, nil, true)
		order := rand.New(rand.NewSource(int64(trial)))
		inst.feed(order, bw)
		order = rand.New(rand.NewSource(int64(trial)))
		inst.feed(order, mkc)
		if mkc.Value() < bw.Value()-1e-9 {
			worse++
		}
	}
	// Greedy-order effects can occasionally favour BlogWatch; require MkC to
	// win or tie in the clear majority of trials.
	if worse > 6 {
		t.Fatalf("MkC below BlogWatch in %d/30 trials", worse)
	}
}

func BenchmarkSieveProcess(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	o := NewSieve(50, 0.1, nil)
	set := make([]stream.UserID, 5)
	for i := 0; i < b.N; i++ {
		for j := range set {
			set[j] = stream.UserID(rng.Intn(10000))
		}
		o.Process(SliceElement(stream.UserID(rng.Intn(2000)), set))
	}
}

func BenchmarkSwapProcess(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	o := NewSwap(50, nil, false)
	set := make([]stream.UserID, 5)
	for i := 0; i < b.N; i++ {
		for j := range set {
			set[j] = stream.UserID(rng.Intn(10000))
		}
		o.Process(SliceElement(stream.UserID(rng.Intn(2000)), set))
	}
}
