// Package oracle implements the append-only streaming submodular
// optimization (SSO) algorithms that serve as checkpoint oracles in the IC
// and SIC frameworks — the four candidates of the paper's Table 2:
//
//	SieveStreaming   (Badanidiyuru et al., KDD'14)  1/2−β   general
//	ThresholdStream  (Kumar et al., TOPC'15)        1/2−β   general
//	BlogWatch        (Saha & Getoor, SDM'09)        1/4     coverage, O(k)
//	MkC              (Ausiello et al., DAM'12)      1/4     coverage, O(k log k)
//
// Elements arrive through the Set-Stream Mapping (paper §4.2): whenever an
// action updates user u's influence set, the checkpoint receives the pair
// (u, I_s(u)) as a fresh set-stream element. The candidate solution is
// adapted to store users rather than sets, so re-seeing a user already in
// the solution merges coverage instead of consuming a seed slot — exactly
// the adaptation Theorem 2 analyses.
package oracle

import (
	"repro/internal/pool"
	"repro/internal/stream"
	"repro/internal/submod"
)

// Element is one mapped set-stream element: user User together with its
// current influence set for the oracle's suffix. ForEach must iterate the
// distinct users of the set; it may be invoked multiple times per Process
// call and must be deterministic within the call.
//
// Latest and Size are optional fast-path metadata the checkpoint frameworks
// provide. Latest, when LatestValid, is the only member possibly added since
// this user's previous element on the same oracle (the current action's
// performer): within one checkpoint's append-only suffix, an influence set
// changes exactly when an action with this user on its contributor chain
// arrives, and every such action is delivered as an element. This lets
// oracles update an already-admitted seed's coverage in O(1) instead of
// re-merging the whole set. Size, when > 0, is the number of distinct
// members, sparing a scan when the objective is cardinality; leave it 0
// (the zero value) when unknown.
type Element struct {
	User        stream.UserID
	Latest      stream.UserID
	LatestValid bool
	Size        int
	ForEach     func(visit func(stream.UserID) bool)
}

// SliceElement builds an Element from a materialized influence set (used by
// tests and the offline reference implementations).
func SliceElement(u stream.UserID, set []stream.UserID) Element {
	return Element{User: u, Size: len(set), ForEach: func(visit func(stream.UserID) bool) {
		for _, v := range set {
			if !visit(v) {
				return
			}
		}
	}}
}

// Stats exposes internal counters of an oracle, reported by the experiment
// harness (e.g. the number of live SieveStreaming instances behind Fig 7's
// throughput trend).
type Stats struct {
	// Instances is the number of live candidate solutions (1 for swap
	// oracles, O(log k / β) for sieve-style oracles).
	Instances int
	// Elements is the number of set-stream elements processed.
	Elements int64
}

// Oracle is an append-only streaming submodular maximizer under a
// cardinality constraint: the checkpoint oracle abstraction of paper §4.2.
// Implementations must be monotone: Value never decreases as elements are
// appended. This monotonicity is what SIC's analysis (Lemma 2) relies on.
type Oracle interface {
	// Process observes one set-stream element.
	Process(e Element)
	// Value returns the objective value f of the current candidate solution.
	Value() float64
	// Seeds returns the current candidate solution of at most k users. The
	// returned slice must not be modified by the caller.
	Seeds() []stream.UserID
	// Stats returns internal counters.
	Stats() Stats
}

// Factory creates a fresh oracle for a cardinality constraint k. The IC and
// SIC frameworks call it once per checkpoint.
type Factory func(k int) Oracle

// Kind names one of the implemented oracle algorithms.
type Kind int

// The oracle algorithms of Table 2.
const (
	SieveStreaming Kind = iota
	ThresholdStream
	BlogWatch
	MkC
)

// String returns the paper's name for the oracle.
func (k Kind) String() string {
	switch k {
	case SieveStreaming:
		return "SieveStreaming"
	case ThresholdStream:
		return "ThresholdStream"
	case BlogWatch:
		return "BlogWatch"
	case MkC:
		return "MkC"
	default:
		return "unknown"
	}
}

// NewFactory returns a Factory for the given algorithm. beta is the
// approximation/efficiency knob of the sieve-style oracles (ignored by the
// swap oracles), w the influence weights (nil = cardinality).
func NewFactory(kind Kind, beta float64, w submod.Weights) Factory {
	return NewParallelFactory(kind, beta, w, nil)
}

// NewParallelFactory is NewFactory with a worker pool shared by every oracle
// the factory creates: the sieve-style oracles fan their per-element
// instance sweep out across it, the swap oracles (single candidate, nothing
// to fan out) ignore it. A nil pool keeps all oracles serial.
func NewParallelFactory(kind Kind, beta float64, w submod.Weights, p *pool.Pool) Factory {
	switch kind {
	case SieveStreaming:
		return func(k int) Oracle {
			s := NewSieve(k, beta, w)
			s.SetPool(p)
			return s
		}
	case ThresholdStream:
		return func(k int) Oracle {
			t := NewThreshold(k, beta, w)
			t.SetPool(p)
			return t
		}
	case BlogWatch:
		return func(k int) Oracle { return NewSwap(k, w, false) }
	case MkC:
		return func(k int) Oracle { return NewSwap(k, w, true) }
	default:
		panic("oracle: unknown kind")
	}
}
