// Package oracle implements the append-only streaming submodular
// optimization (SSO) algorithms that serve as checkpoint oracles in the IC
// and SIC frameworks — the four candidates of the paper's Table 2:
//
//	SieveStreaming   (Badanidiyuru et al., KDD'14)  1/2−β   general
//	ThresholdStream  (Kumar et al., TOPC'15)        1/2−β   general
//	BlogWatch        (Saha & Getoor, SDM'09)        1/4     coverage, O(k)
//	MkC              (Ausiello et al., DAM'12)      1/4     coverage, O(k log k)
//
// Elements arrive through the Set-Stream Mapping (paper §4.2): whenever an
// action updates user u's influence set, the checkpoint receives the pair
// (u, I_s(u)) as a fresh set-stream element. The candidate solution is
// adapted to store users rather than sets, so re-seeing a user already in
// the solution merges coverage instead of consuming a seed slot — exactly
// the adaptation Theorem 2 analyses.
package oracle

import (
	"repro/internal/stream"
	"repro/internal/submod"
)

// Element is one mapped set-stream element: user User together with its
// current influence set for the oracle's suffix, materialized as Prefix.
// It is a plain value — passing one to an oracle allocates nothing.
//
// Prefix is the influence set as (user, last-contribution-time) pairs in
// descending time order, exactly what stream.InfluenceRecency returns: the
// checkpoint frameworks materialize one recency list per contributor and
// slice it per checkpoint, so the same backing array serves every element
// of the fan-out. Oracles read only the .V members and must not retain or
// mutate the slice beyond the Process/FeedShard call — it aliases stream
// state that the next Ingest may rewrite. Duplicate users never occur
// (the recency list holds each influenced user once).
//
// Latest, when LatestValid, is the only member possibly added since this
// user's previous element on the same oracle (the current action's
// performer): within one checkpoint's append-only suffix, an influence set
// changes exactly when an action with this user on its contributor chain
// arrives, and every such action is delivered as an element. This lets
// oracles update an already-admitted seed's coverage in O(1) instead of
// re-merging the whole set.
type Element struct {
	User        stream.UserID
	Latest      stream.UserID
	LatestValid bool
	Prefix      []stream.Contrib
}

// SliceElement builds an Element from a materialized influence set (used by
// tests and the offline reference implementations).
func SliceElement(u stream.UserID, set []stream.UserID) Element {
	prefix := make([]stream.Contrib, len(set))
	for i, v := range set {
		prefix[i] = stream.Contrib{V: v}
	}
	return Element{User: u, Prefix: prefix}
}

// Stats exposes internal counters of an oracle, reported by the experiment
// harness (e.g. the number of live SieveStreaming instances behind Fig 7's
// throughput trend).
type Stats struct {
	// Instances is the number of live candidate solutions (1 for swap
	// oracles, O(log k / β) for sieve-style oracles).
	Instances int
	// Elements is the number of set-stream elements processed.
	Elements int64
}

// Oracle is an append-only streaming submodular maximizer under a
// cardinality constraint: the checkpoint oracle abstraction of paper §4.2.
// Implementations must be monotone: Value never decreases as elements are
// appended. This monotonicity is what SIC's analysis (Lemma 2) relies on.
type Oracle interface {
	// Process observes one set-stream element.
	Process(e Element)
	// Value returns the objective value f of the current candidate solution.
	Value() float64
	// Seeds returns the current candidate solution of at most k users. The
	// returned slice must not be modified by the caller.
	Seeds() []stream.UserID
	// Stats returns internal counters.
	Stats() Stats
}

// CandidateSource is implemented by oracles that can report a candidate
// superset of Seeds(): every user currently held by any live candidate
// solution (plus the monotone best-ever answer). A distributed merge layer
// (internal/router) unions the candidate sets of independent partitions and
// re-scores them with one exact greedy pass — the GreeDi-style two-round
// scheme — so the richer the per-partition candidate pool, the closer the
// merged answer gets to a centralized run. Oracles with a single candidate
// solution simply don't implement this; callers fall back to Seeds().
type CandidateSource interface {
	// Candidates returns the deduplicated union of all live candidate
	// solutions' users, sorted ascending. The slice is freshly allocated
	// and owned by the caller.
	Candidates() []stream.UserID
}

// Sharded is implemented by oracles whose per-element work splits into
// mutually independent shards — the sieve-style oracles, whose candidate
// instances never share mutable state. It lets the checkpoint frameworks
// flatten one action's (checkpoint × shard) fan-out into a single parallel
// loop, so the parallel width is the sum of all live checkpoints' shard
// counts instead of one oracle's instance count.
//
// The calling protocol replaces Process for one element e:
//
//	if orc.Prepare(e) {
//	    for s := 0; s < orc.Shards(); s++ { orc.FeedShard(s, e) }
//	}
//
// Prepare runs the serial prefix of the element (counters, threshold-grid
// retuning) and reports whether the element needs feeding at all. The
// FeedShard calls may then run concurrently with each other — each shard
// touches disjoint state — but must all complete before the next Prepare or
// Process call on the same oracle, and e must be identical across the
// calls. Feeding every shard exactly once is equivalent to Process(e):
// admission decisions are bit-identical to the serial sweep.
type Sharded interface {
	Oracle
	// Prepare runs the serial per-element work and reports whether the
	// element must be offered to the shards (false: zero-value element,
	// fully handled).
	Prepare(e Element) bool
	// Shards returns the current number of independent shards. Valid until
	// the next Prepare/Process call; may change as the threshold grid
	// retunes.
	Shards() int
	// FeedShard offers the prepared element to shard s ∈ [0, Shards()).
	// Distinct shards may be fed concurrently.
	FeedShard(s int, e Element)
}

// Factory creates a fresh oracle for a cardinality constraint k. The IC and
// SIC frameworks call it once per checkpoint.
type Factory func(k int) Oracle

// Kind names one of the implemented oracle algorithms.
type Kind int

// The oracle algorithms of Table 2.
const (
	SieveStreaming Kind = iota
	ThresholdStream
	BlogWatch
	MkC
)

// String returns the paper's name for the oracle.
func (k Kind) String() string {
	switch k {
	case SieveStreaming:
		return "SieveStreaming"
	case ThresholdStream:
		return "ThresholdStream"
	case BlogWatch:
		return "BlogWatch"
	case MkC:
		return "MkC"
	default:
		return "unknown"
	}
}

// NewFactory returns a Factory for the given algorithm. beta is the
// approximation/efficiency knob of the sieve-style oracles (ignored by the
// swap oracles), w the influence weights (nil = cardinality).
//
// The sieve-style oracles implement Sharded; parallelism is driven by the
// caller (the checkpoint frameworks fan shards of every live checkpoint
// across one pool), so the factory itself is parallelism-agnostic.
func NewFactory(kind Kind, beta float64, w submod.Weights) Factory {
	switch kind {
	case SieveStreaming:
		return func(k int) Oracle { return NewSieve(k, beta, w) }
	case ThresholdStream:
		return func(k int) Oracle { return NewThreshold(k, beta, w) }
	case BlogWatch:
		return func(k int) Oracle { return NewSwap(k, w, false) }
	case MkC:
		return func(k int) Oracle { return NewSwap(k, w, true) }
	default:
		panic("oracle: unknown kind")
	}
}
