package oracle

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pool"
	"repro/internal/stream"
	"repro/internal/submod"
)

// randomElements synthesizes a set-stream: users re-emit growing influence
// sets, the way the checkpoint frameworks feed oracles.
func randomElements(seed int64, users, rounds, maxSet int) []Element {
	rng := rand.New(rand.NewSource(seed))
	sets := make(map[stream.UserID][]stream.UserID, users)
	var out []Element
	for r := 0; r < rounds; r++ {
		u := stream.UserID(rng.Intn(users))
		v := stream.UserID(rng.Intn(maxSet))
		grew := true
		for _, w := range sets[u] {
			if w == v {
				grew = false
				break
			}
		}
		if grew {
			sets[u] = append(sets[u], v)
		}
		set := append([]stream.UserID(nil), sets[u]...)
		e := SliceElement(u, set)
		if grew {
			e.Latest, e.LatestValid = v, true
		}
		out = append(out, e)
	}
	return out
}

// TestShardedMatchesSerial asserts the engine's core invariant at the oracle
// layer: driving an element through the Sharded protocol — serial Prepare,
// then every shard fed concurrently across a worker pool — changes no
// admission decision, so Value and Seeds are bit-identical to the plain
// Process sweep after every element, for both sieve-style oracles, weighted
// and unweighted.
func TestShardedMatchesSerial(t *testing.T) {
	p := pool.New(4)
	defer p.Close()
	weights := submod.WeightFunc(func(v stream.UserID) float64 {
		return 1 + float64(v%5)/3
	})
	for _, kind := range []Kind{SieveStreaming, ThresholdStream} {
		for _, w := range []submod.Weights{nil, weights} {
			serial := NewFactory(kind, 0.1, w)(10)
			sharded := NewFactory(kind, 0.1, w)(10).(Sharded)
			name := kind.String()
			if w != nil {
				name += "/weighted"
			}
			for i, e := range randomElements(7, 40, 3000, 200) {
				serial.Process(e)
				if sharded.Prepare(e) {
					e := e
					p.Run(sharded.Shards(), func(s int) { sharded.FeedShard(s, e) })
				}
				if sv, pv := serial.Value(), sharded.Value(); sv != pv {
					t.Fatalf("%s: element %d: serial value %v != sharded value %v", name, i, sv, pv)
				}
			}
			if ss, ps := serial.Seeds(), sharded.Seeds(); !reflect.DeepEqual(ss, ps) {
				t.Fatalf("%s: seeds diverged: serial %v sharded %v", name, ss, ps)
			}
			if si, pi := serial.Stats().Instances, sharded.Stats().Instances; si != pi {
				t.Fatalf("%s: instance counts diverged: %d vs %d", name, si, pi)
			}
			if se, pe := serial.Stats().Elements, sharded.Stats().Elements; se != pe {
				t.Fatalf("%s: element counts diverged: %d vs %d", name, se, pe)
			}
		}
	}
}

// TestShardedInterfaceCoverage pins which oracles expose shards: the
// sieve-style ones do (independent candidate instances), the single-solution
// swap oracles do not — the frameworks fall back to serial Process for them.
func TestShardedInterfaceCoverage(t *testing.T) {
	for kind, want := range map[Kind]bool{
		SieveStreaming:  true,
		ThresholdStream: true,
		BlogWatch:       false,
		MkC:             false,
	} {
		_, ok := NewFactory(kind, 0.1, nil)(5).(Sharded)
		if ok != want {
			t.Errorf("%v: Sharded = %v, want %v", kind, ok, want)
		}
	}
}

// TestInstanceRecycling exercises the retune free list: a stream whose
// singleton values keep growing forces many retunes, and recycled instances
// must be indistinguishable from fresh ones. The reference oracle has its
// free list drained after every element, so it allocates a fresh instance
// for every new OPT guess — a true non-recycling baseline; any reset bug in
// instPool.put (stale coverage, gain cache, seed slice) diverges the pair.
func TestInstanceRecycling(t *testing.T) {
	recycling := NewSieve(5, 0.3, nil)
	fresh := NewSieve(5, 0.3, nil)
	// Growing set sizes move m up repeatedly, churning the grid.
	set := make([]stream.UserID, 0, 200)
	recycled := 0
	for i := 0; i < 200; i++ {
		set = append(set, stream.UserID(i))
		e := SliceElement(stream.UserID(i%7), set)
		e.Latest, e.LatestValid = stream.UserID(i), true
		recycling.Process(e)
		fresh.Process(e)
		recycled += len(fresh.pool.free)
		fresh.pool.free = nil // white-box: force fresh allocations only
		if av, bv := recycling.Value(), fresh.Value(); av != bv {
			t.Fatalf("element %d: recycling value %v != fresh value %v", i, av, bv)
		}
	}
	if recycling.Value() <= 0 {
		t.Fatal("oracle made no progress")
	}
	if recycled == 0 {
		t.Fatal("stream never retired an instance; recycling path untested")
	}
	if !reflect.DeepEqual(recycling.Seeds(), fresh.Seeds()) {
		t.Fatalf("seeds diverged: %v vs %v", recycling.Seeds(), fresh.Seeds())
	}
}
