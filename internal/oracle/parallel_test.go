package oracle

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/pool"
	"repro/internal/stream"
	"repro/internal/submod"
)

// randomElements synthesizes a set-stream: users re-emit growing influence
// sets, the way the checkpoint frameworks feed oracles.
func randomElements(seed int64, users, rounds, maxSet int) []Element {
	rng := rand.New(rand.NewSource(seed))
	sets := make(map[stream.UserID][]stream.UserID, users)
	var out []Element
	for r := 0; r < rounds; r++ {
		u := stream.UserID(rng.Intn(users))
		v := stream.UserID(rng.Intn(maxSet))
		grew := true
		for _, w := range sets[u] {
			if w == v {
				grew = false
				break
			}
		}
		if grew {
			sets[u] = append(sets[u], v)
		}
		set := append([]stream.UserID(nil), sets[u]...)
		e := SliceElement(u, set)
		if grew {
			e.Latest, e.LatestValid = v, true
		}
		out = append(out, e)
	}
	return out
}

// TestParallelSweepMatchesSerial asserts the tentpole invariant: fanning the
// per-element instance sweep across a worker pool changes no admission
// decision, so Value and Seeds are bit-identical to the serial sweep after
// every element — for both sieve-style oracles, weighted and unweighted.
func TestParallelSweepMatchesSerial(t *testing.T) {
	p := pool.New(4)
	defer p.Close()
	weights := submod.WeightFunc(func(v stream.UserID) float64 {
		return 1 + float64(v%5)/3
	})
	for _, kind := range []Kind{SieveStreaming, ThresholdStream} {
		for _, w := range []submod.Weights{nil, weights} {
			serial := NewFactory(kind, 0.1, w)(10)
			parallel := NewParallelFactory(kind, 0.1, w, p)(10)
			name := kind.String()
			if w != nil {
				name += "/weighted"
			}
			for i, e := range randomElements(7, 40, 3000, 200) {
				serial.Process(e)
				parallel.Process(e)
				if sv, pv := serial.Value(), parallel.Value(); sv != pv {
					t.Fatalf("%s: element %d: serial value %v != parallel value %v", name, i, sv, pv)
				}
			}
			if ss, ps := serial.Seeds(), parallel.Seeds(); !reflect.DeepEqual(ss, ps) {
				t.Fatalf("%s: seeds diverged: serial %v parallel %v", name, ss, ps)
			}
			if si, pi := serial.Stats().Instances, parallel.Stats().Instances; si != pi {
				t.Fatalf("%s: instance counts diverged: %d vs %d", name, si, pi)
			}
		}
	}
}

// TestSetPoolNilIsSerial exercises the explicit opt-out.
func TestSetPoolNilIsSerial(t *testing.T) {
	s := NewSieve(5, 0.2, nil)
	s.SetPool(nil)
	for _, e := range randomElements(3, 10, 200, 50) {
		s.Process(e)
	}
	if s.Value() <= 0 {
		t.Fatal("oracle made no progress")
	}
}
