package oracle

import (
	"repro/internal/submod"
)

// Threshold implements ThresholdStream (Kumar et al., "Fast greedy
// algorithms in MapReduce and streaming") through the Set-Stream Mapping.
// Like SieveStreaming it guesses OPT on a (1+β) grid over [m, 2km] and
// keeps one candidate per guess, but each candidate uses the flat admission
// threshold opt/(2k) rather than the residual-based one, giving the same
// (1/2 − β) guarantee with a slightly different admission pattern.
//
// Everything except the admission threshold is identical to Sieve and lives
// in the embedded grid, including the Sharded protocol (one shard per
// candidate instance).
type Threshold struct {
	grid
}

// NewThreshold returns a ThresholdStream oracle for cardinality constraint k
// and grid granularity beta in (0, 1).
func NewThreshold(k int, beta float64, w submod.Weights) *Threshold {
	return &Threshold{grid: newGrid(k, beta, w, true)}
}
