package oracle

import (
	"math"

	"repro/internal/pool"
	"repro/internal/stream"
	"repro/internal/submod"
	"repro/internal/uintset"
)

// threshInst is one candidate solution of ThresholdStream with a fixed OPT
// guess: it admits any element whose marginal gain reaches opt/(2k), the
// flat threshold of Kumar et al.'s streaming greedy.
type threshInst struct {
	opt     float64
	seeds   []stream.UserID
	inSeeds *uintset.Set
	cov     *submod.Coverage
	// gainUB caches per-candidate marginal-gain upper bounds; see the
	// equivalent field in sieveInst.
	gainUB *uintset.Map
}

// Threshold implements ThresholdStream (Kumar et al., "Fast greedy
// algorithms in MapReduce and streaming") through the Set-Stream Mapping.
// Like SieveStreaming it guesses OPT on a (1+β) grid over [m, 2km] and keeps
// one candidate per guess, but each candidate uses the flat admission
// threshold opt/(2k) rather than the residual-based one, giving the same
// (1/2 − β) guarantee with a slightly different admission pattern.
type Threshold struct {
	k    int
	beta float64
	w    submod.Weights

	m     float64
	insts []*threshInst
	jLo   int
	logB  float64

	elements int64
	buf      []stream.UserID

	// pool fans the per-element instance sweep across workers; see the
	// equivalent field in Sieve.
	pool *pool.Pool

	bestVal   float64
	bestSeeds []stream.UserID
	dirty     bool
}

// NewThreshold returns a ThresholdStream oracle for cardinality constraint k
// and grid granularity beta in (0, 1).
func NewThreshold(k int, beta float64, w submod.Weights) *Threshold {
	if k < 1 {
		panic("oracle: k must be >= 1")
	}
	if beta <= 0 || beta >= 1 {
		panic("oracle: beta must be in (0, 1)")
	}
	return &Threshold{k: k, beta: beta, w: w, logB: math.Log1p(beta)}
}

// SetPool installs the worker pool used for the per-element instance sweep;
// nil (the default) keeps the sweep serial. The pool is shared, not owned.
func (t *Threshold) SetPool(p *pool.Pool) { t.pool = p }

func (t *Threshold) weight(v stream.UserID) float64 {
	if t.w == nil {
		return 1
	}
	return t.w.Weight(v)
}

// Process implements Oracle.
func (t *Threshold) Process(e Element) {
	t.elements++
	materialized := false
	singleton := 0.0
	materialize := func() {
		if materialized {
			return
		}
		materialized = true
		t.buf = t.buf[:0]
		singleton = 0
		e.ForEach(func(v stream.UserID) bool {
			t.buf = append(t.buf, v)
			singleton += t.weight(v)
			return true
		})
	}
	if t.w == nil && e.Size > 0 {
		singleton = float64(e.Size)
	} else {
		materialize()
	}
	if singleton == 0 {
		return
	}
	if singleton > t.m {
		t.m = singleton
		t.retune()
	}
	if insts := t.insts; t.pool.Workers() > 1 && len(insts) >= minParallelInsts {
		// Concurrent sweep over disjoint instances; bit-identical to the
		// serial loop (see the equivalent branch in Sieve.Process).
		feed := lockedMaterialize(materialize)
		sv := singleton
		t.pool.Run(len(insts), func(i int) { t.feed(insts[i], e, sv, feed) })
	} else {
		for _, inst := range t.insts {
			t.feed(inst, e, singleton, materialize)
		}
	}
	t.dirty = true
}

func (t *Threshold) retune() {
	t.refresh()
	lo := int(math.Ceil(math.Log(t.m)/t.logB - 1e-9))
	hi := int(math.Floor(math.Log(2*float64(t.k)*t.m)/t.logB + 1e-9))
	next := make([]*threshInst, hi-lo+1)
	for j := lo; j <= hi; j++ {
		if old := j - t.jLo; len(t.insts) > 0 && old >= 0 && old < len(t.insts) {
			next[j-lo] = t.insts[old]
		} else {
			next[j-lo] = &threshInst{
				opt:     math.Pow(1+t.beta, float64(j)),
				inSeeds: uintset.New(8),
				cov:     submod.NewCoverage(t.w),
				gainUB:  uintset.NewMap(0),
			}
		}
	}
	t.insts, t.jLo = next, lo
}

func (t *Threshold) feed(inst *threshInst, e Element, singleton float64, materialize func()) {
	if inst.inSeeds.Has(uint32(e.User)) {
		if e.LatestValid {
			inst.cov.Add(e.Latest)
			return
		}
		materialize()
		for _, v := range t.buf {
			inst.cov.Add(v)
		}
		return
	}
	if len(inst.seeds) >= t.k {
		return
	}
	threshold := inst.opt / (2 * float64(t.k))
	if singleton < threshold {
		return // gain <= singleton cannot clear the flat threshold
	}
	if e.LatestValid {
		if ub, ok := inst.gainUB.Get(uint32(e.User)); ok {
			ub += t.weight(e.Latest)
			if ub < threshold {
				inst.gainUB.Set(uint32(e.User), ub)
				return
			}
		}
	}
	materialize()
	gain := 0.0
	for _, v := range t.buf {
		gain += inst.cov.Gain(v)
		if gain >= threshold && gain > 0 {
			inst.seeds = append(inst.seeds, e.User)
			inst.inSeeds.Add(uint32(e.User))
			for _, w := range t.buf {
				inst.cov.Add(w)
			}
			return
		}
	}
	inst.gainUB.Set(uint32(e.User), gain)
}

func (t *Threshold) refresh() {
	if !t.dirty {
		return
	}
	t.dirty = false
	for _, inst := range t.insts {
		if v := inst.cov.Value(); v > t.bestVal {
			t.bestVal = v
			t.bestSeeds = append(t.bestSeeds[:0], inst.seeds...)
		}
	}
}

// Value implements Oracle.
func (t *Threshold) Value() float64 {
	t.refresh()
	return t.bestVal
}

// Seeds implements Oracle.
func (t *Threshold) Seeds() []stream.UserID {
	t.refresh()
	return t.bestSeeds
}

// Stats implements Oracle.
func (t *Threshold) Stats() Stats { return Stats{Instances: len(t.insts), Elements: t.elements} }
