package oracle

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/stream"
	"repro/internal/submod"
)

func TestExactSolvesSmallInstanceOptimally(t *testing.T) {
	o := NewExact(2, nil)
	o.Process(SliceElement(1, []stream.UserID{10, 11, 12}))
	o.Process(SliceElement(2, []stream.UserID{12, 13}))
	o.Process(SliceElement(3, []stream.UserID{14}))
	// Best pair: {1, 2} = {10,11,12,13} -> 4 (vs {1,3} -> 4 too; value 4).
	if o.Value() != 4 {
		t.Fatalf("value = %v, want 4", o.Value())
	}
	seeds := append([]stream.UserID(nil), o.Seeds()...)
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	if len(seeds) != 2 || seeds[0] != 1 {
		t.Fatalf("seeds = %v, want {1, ...}", seeds)
	}
}

func TestExactMatchesEnumerationOnRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 20; trial++ {
		inst := randomInstance(rng, 8, 20, 3)
		o := NewExact(inst.k, nil)
		inst.feed(rand.New(rand.NewSource(int64(trial))), o)
		if want := inst.optimal(nil); o.Value() != want {
			t.Fatalf("trial %d: exact oracle %v != enumeration %v", trial, o.Value(), want)
		}
	}
}

func TestExactUpdatesLatestSet(t *testing.T) {
	o := NewExact(1, nil)
	o.Process(SliceElement(1, []stream.UserID{10}))
	if o.Value() != 1 {
		t.Fatalf("value = %v", o.Value())
	}
	o.Process(SliceElement(1, []stream.UserID{10, 11, 12}))
	if o.Value() != 3 {
		t.Fatalf("value after growth = %v, want 3", o.Value())
	}
	if got := o.Seeds(); !reflect.DeepEqual(got, []stream.UserID{1}) {
		t.Fatalf("seeds = %v", got)
	}
}

func TestExactWeighted(t *testing.T) {
	w := submod.Table{W: map[stream.UserID]float64{99: 10}, Default: 1}
	o := NewExact(1, w)
	o.Process(SliceElement(1, []stream.UserID{1, 2}))
	o.Process(SliceElement(2, []stream.UserID{99}))
	if o.Value() != 10 || o.Seeds()[0] != 2 {
		t.Fatalf("weighted exact: value=%v seeds=%v", o.Value(), o.Seeds())
	}
}

func TestExactIgnoresEmptyAndCountsStats(t *testing.T) {
	o := NewExact(2, nil)
	o.Process(SliceElement(1, nil))
	if o.Value() != 0 || o.Seeds() != nil {
		t.Fatal("empty element changed exact oracle state")
	}
	o.Process(SliceElement(1, []stream.UserID{5}))
	st := o.Stats()
	if st.Elements != 2 || st.Instances != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExactFactoryAndPanic(t *testing.T) {
	f := ExactFactory(nil)
	if f(1) == nil {
		t.Fatal("factory returned nil")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewExact(0) must panic")
		}
	}()
	NewExact(0, nil)
}

func TestExactMonotoneUnderStream(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	o := NewExact(2, nil)
	cur := map[stream.UserID][]stream.UserID{}
	last := 0.0
	for i := 0; i < 100; i++ {
		u := stream.UserID(rng.Intn(6))
		cur[u] = append(cur[u], stream.UserID(rng.Intn(25)))
		o.Process(SliceElement(u, dedup(cur[u])))
		if v := o.Value(); v < last {
			t.Fatalf("exact oracle not monotone: %v -> %v", last, v)
		} else {
			last = v
		}
	}
}
