package gen

import (
	"math"
	"testing"

	"repro/internal/stream"
)

// ingest replays a generated stream to obtain its Table 3 statistics.
func ingest(t *testing.T, actions []stream.Action) stream.Stats {
	t.Helper()
	st := stream.New()
	for _, a := range actions {
		if _, err := st.Ingest(a); err != nil {
			t.Fatalf("generated invalid stream: %v (%v)", err, a)
		}
	}
	return st.Stats()
}

func TestStreamIsValidAndComplete(t *testing.T) {
	cfg := Config{Name: "t", Users: 100, Actions: 5000, RootProb: 0.3, MeanRespDist: 200, Seed: 1}
	actions := Stream(cfg)
	if len(actions) != 5000 {
		t.Fatalf("actions = %d", len(actions))
	}
	st := ingest(t, actions) // Ingest validates ID monotonicity and parents
	if st.Users == 0 || st.Users > 100 {
		t.Fatalf("users = %d", st.Users)
	}
	if actions[0].Parent != stream.NoParent {
		t.Fatal("first action must be a root")
	}
}

func TestRootFractionMatchesConfig(t *testing.T) {
	cfg := Config{Users: 50, Actions: 20000, RootProb: 0.25, MeanRespDist: 100, Seed: 2}
	st := ingest(t, Stream(cfg))
	if math.Abs(st.RootFraction-0.25) > 0.02 {
		t.Fatalf("root fraction = %.3f, want ≈ 0.25", st.RootFraction)
	}
}

func TestMeanRespDistApproximatesConfig(t *testing.T) {
	// Long stream relative to the mean so clamping is negligible.
	cfg := Config{Users: 50, Actions: 50000, RootProb: 0.3, MeanRespDist: 500, Seed: 3}
	st := ingest(t, Stream(cfg))
	if math.Abs(st.AvgRespDist-500) > 50 {
		t.Fatalf("avg resp dist = %.1f, want ≈ 500", st.AvgRespDist)
	}
}

// TestTable3Shape checks the dataset presets reproduce the paper's Table 3
// relationships at scaled size: Reddit-like trees are deep (≈4.6), the
// Twitter-like stream is shallow (≈1.9), SYN presets sit near 2.4, and
// SYN-O's response distances are two orders of magnitude above SYN-N's.
func TestTable3Shape(t *testing.T) {
	const users, actions, window = 2000, 60000, 10000
	reddit := ingest(t, Stream(RedditLike(users, actions, window, 1)))
	twitter := ingest(t, Stream(TwitterLike(users, actions, window, 1)))
	synO := ingest(t, Stream(SynO(users, actions, window, 1)))
	synN := ingest(t, Stream(SynN(users, actions, window, 1)))

	if reddit.AvgDepth < 3.8 || reddit.AvgDepth > 5.6 {
		t.Errorf("Reddit-like depth = %.2f, want ≈ 4.6", reddit.AvgDepth)
	}
	if twitter.AvgDepth < 1.5 || twitter.AvgDepth > 2.3 {
		t.Errorf("Twitter-like depth = %.2f, want ≈ 1.9", twitter.AvgDepth)
	}
	if synO.AvgDepth < 1.9 || synO.AvgDepth > 3.1 {
		t.Errorf("SYN-O depth = %.2f, want ≈ 2.5", synO.AvgDepth)
	}
	if synN.AvgDepth < 1.9 || synN.AvgDepth > 3.2 {
		t.Errorf("SYN-N depth = %.2f, want ≈ 2.6", synN.AvgDepth)
	}
	if reddit.AvgDepth < twitter.AvgDepth+1.5 {
		t.Errorf("depth ordering broken: reddit %.2f vs twitter %.2f", reddit.AvgDepth, twitter.AvgDepth)
	}
	// SYN-N's mean distance is 1% of SYN-O's by construction.
	if synN.AvgRespDist*20 > synO.AvgRespDist {
		t.Errorf("SYN distances not separated: O=%.0f N=%.0f", synO.AvgRespDist, synN.AvgRespDist)
	}
}

// TestActivitySkew: the Zipf presets must concentrate activity so that
// influential users exist at all.
func TestActivitySkew(t *testing.T) {
	actions := Stream(TwitterLike(5000, 30000, 5000, 4))
	count := map[stream.UserID]int{}
	for _, a := range actions {
		count[a.User]++
	}
	max := 0
	for _, c := range count {
		if c > max {
			max = c
		}
	}
	mean := float64(len(actions)) / float64(len(count))
	if float64(max) < 10*mean {
		t.Fatalf("max activity %d < 10x mean %.1f: no skew", max, mean)
	}
}

func TestActivityWeightsRespected(t *testing.T) {
	// Only user 3 has weight: every action must be theirs.
	w := make([]int, 10)
	w[3] = 5
	cfg := Config{Users: 10, Actions: 200, RootProb: 0.5, MeanRespDist: 10, ActivityWeights: w, Seed: 5}
	for _, a := range Stream(cfg) {
		if a.User != 3 {
			t.Fatalf("action by %d, want 3", a.User)
		}
	}
}

func TestZeroWeightsFallBackToUniform(t *testing.T) {
	cfg := Config{Users: 10, Actions: 1000, RootProb: 0.5, MeanRespDist: 10,
		ActivityWeights: make([]int, 10), Seed: 6}
	seen := map[stream.UserID]bool{}
	for _, a := range Stream(cfg) {
		seen[a.User] = true
	}
	if len(seen) < 8 {
		t.Fatalf("only %d users active under uniform fallback", len(seen))
	}
}

func TestReproducible(t *testing.T) {
	a := Stream(SynN(500, 2000, 1000, 42))
	b := Stream(SynN(500, 2000, 1000, 42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("action %d differs", i)
		}
	}
	c := Stream(SynN(500, 2000, 1000, 43))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}
