// Package gen synthesizes social action streams for the experiments.
//
// The paper evaluates on two crawled datasets (Reddit comments of May 2015
// and a one-week Twitter crawl) and two synthetic streams (SYN-O, SYN-N).
// The crawls are not redistributable, so this package provides simulators
// that reproduce the statistics Table 3 reports and that actually drive the
// algorithms' behaviour:
//
//   - user activity skew (heavy-tailed, so influential users exist),
//   - the root/reply mix, which fixes the mean cascade depth d — the cost
//     multiplier in IC/SIC's O(d·g·N) update bound,
//   - the response-distance distribution, which controls how fast influence
//     sets decay across the sliding window (the contrast the SYN-O/SYN-N
//     pair isolates: "old posts get more followers" vs "recent posts get
//     more followers").
//
// SYN-O and SYN-N are implemented exactly as described in §6.1: an R-MAT
// user graph supplies power-law activity weights and response distances are
// exponential with rate λ. The Reddit-like and Twitter-like presets tune
// root probability and distances to hit Table 3's average depth (≈4.6 deep
// comment trees vs ≈1.9 shallow retweet cascades). See DESIGN.md §4 for the
// substitution rationale.
package gen

import (
	"math"
	"math/rand"

	"repro/internal/rmat"
	"repro/internal/stream"
)

// Config parametrizes a synthetic stream.
type Config struct {
	// Name labels the dataset in reports.
	Name string
	// Users is |U|, the user universe size.
	Users int
	// Actions is the stream length.
	Actions int
	// RootProb is the probability an action is a root post. Mean cascade
	// depth converges to (1−RootProb)/RootProb when response targets are
	// depth-unbiased.
	RootProb float64
	// MeanRespDist is the mean of the exponential response distance
	// Δ = t − t′ (clamped to valid targets).
	MeanRespDist float64
	// ActivityWeights, when non-nil, biases which user performs each
	// action (index = user ID, weight ≥ 0). Nil means uniform activity.
	ActivityWeights []int
	// ZipfSkew, when > 1 and ActivityWeights is nil, draws user activity
	// from a Zipf distribution with this exponent.
	ZipfSkew float64
	// Seed makes generation reproducible.
	Seed int64
}

// Stream materializes the action stream for cfg. Action IDs are 1..Actions.
func Stream(cfg Config) []stream.Action {
	rng := rand.New(rand.NewSource(cfg.Seed))
	pick := userPicker(cfg, rng)
	actions := make([]stream.Action, cfg.Actions)
	for i := range actions {
		t := stream.ActionID(i + 1)
		a := stream.Action{ID: t, User: pick(), Parent: stream.NoParent}
		if i > 0 && rng.Float64() >= cfg.RootProb {
			d := int64(math.Ceil(rng.ExpFloat64() * cfg.MeanRespDist))
			if d < 1 {
				d = 1
			}
			if d > int64(i) {
				d = int64(rng.Intn(i) + 1)
			}
			a.Parent = t - stream.ActionID(d)
		}
		actions[i] = a
	}
	return actions
}

// userPicker builds the activity sampler: explicit weights, Zipf, or
// uniform.
func userPicker(cfg Config, rng *rand.Rand) func() stream.UserID {
	if len(cfg.ActivityWeights) > 0 {
		// Cumulative-weight sampling by binary search.
		cum := make([]int64, len(cfg.ActivityWeights))
		var total int64
		for i, w := range cfg.ActivityWeights {
			if w < 0 {
				w = 0
			}
			total += int64(w)
			cum[i] = total
		}
		if total == 0 {
			return func() stream.UserID { return stream.UserID(rng.Intn(len(cfg.ActivityWeights))) }
		}
		return func() stream.UserID {
			x := rng.Int63n(total)
			lo, hi := 0, len(cum)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cum[mid] > x {
					hi = mid
				} else {
					lo = mid + 1
				}
			}
			return stream.UserID(lo)
		}
	}
	if cfg.ZipfSkew > 1 {
		z := rand.NewZipf(rng, cfg.ZipfSkew, 1, uint64(cfg.Users-1))
		return func() stream.UserID { return stream.UserID(z.Uint64()) }
	}
	return func() stream.UserID { return stream.UserID(rng.Intn(cfg.Users)) }
}

// Presets. window is the sliding-window size N the experiment will use;
// response-distance means scale with it exactly as the paper's absolute
// numbers relate to its default N = 500K (Table 3 vs Table 4).

// RedditLike models the Reddit comment dump: deep discussion trees
// (avg depth ≈ 4.6 via root probability 0.18) and long response distances
// (≈ 0.81·N, as 404,715 relates to N=500K).
func RedditLike(users, actions, window int, seed int64) Config {
	return Config{
		Name: "Reddit", Users: users, Actions: actions,
		RootProb: 0.18, MeanRespDist: 0.81 * float64(window),
		ZipfSkew: 1.3, Seed: seed,
	}
}

// TwitterLike models the Twitter crawl: shallow retweet cascades
// (avg depth ≈ 1.9 via root probability 0.35) and medium response distances
// (≈ 0.59·N, as 294,609 relates to N=500K).
func TwitterLike(users, actions, window int, seed int64) Config {
	return Config{
		Name: "Twitter", Users: users, Actions: actions,
		RootProb: 0.35, MeanRespDist: 0.59 * float64(window),
		ZipfSkew: 1.5, Seed: seed,
	}
}

// SynO is the paper's SYN-O: R-MAT activity, exponential response distances
// with mean equal to the window size ("old posts get more followers",
// λ = 2.0e−6 against N = 500K).
func SynO(users, actions, window int, seed int64) Config {
	return synthetic("SYN-O", users, actions, float64(window), seed)
}

// SynN is the paper's SYN-N: like SYN-O but with mean distance 0.01·N
// ("recent posts get more followers", λ = 2.0e−4 against N = 500K).
func SynN(users, actions, window int, seed int64) Config {
	return synthetic("SYN-N", users, actions, 0.01*float64(window), seed)
}

func synthetic(name string, users, actions int, mean float64, seed int64) Config {
	// Eight edges per user gives clearly skewed R-MAT degrees without
	// dominating generation time.
	edges := rmat.Generate(users, 8*users, rmat.Default, seed)
	deg := rmat.OutDegrees(users, edges)
	for i := range deg {
		deg[i]++ // every user stays minimally active
	}
	return Config{
		Name: name, Users: users, Actions: actions,
		RootProb: 0.3, MeanRespDist: mean,
		ActivityWeights: deg, Seed: seed,
	}
}
