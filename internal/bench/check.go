package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Regression guard: compare a fresh benchmark run against a committed
// BENCH_<PR>.json baseline and fail CI on large regressions. Allocations
// per op are deterministic and checked tightly; wall-clock per op is noisy
// on shared 1-CPU runners and gets a looser bound. "total" rows (whole
// experiment wall time, including dataset generation) are skipped — only
// the streaming hot-path rows are guarded.

// Default regression tolerances used by `simbench -check` and
// `make bench-check`.
const (
	// DefaultAllocTolerance fails a record whose allocs/op grew by more
	// than this fraction over the baseline.
	DefaultAllocTolerance = 0.25
	// DefaultNsTolerance fails a record whose ns/op grew by more than this
	// fraction — looser than allocations to tolerate shared-runner noise.
	DefaultNsTolerance = 0.50
)

// Regression names one metric of one record that regressed past tolerance.
type Regression struct {
	Experiment string
	Name       string
	Metric     string // "allocs/op" or "ns/op"
	Base, Got  float64
	Ratio      float64 // Got / Base
}

func (r Regression) String() string {
	return fmt.Sprintf("%s/%s %s: %.4g -> %.4g (%.2fx)", r.Experiment, r.Name, r.Metric, r.Base, r.Got, r.Ratio)
}

// ReadSnapshotFile parses a committed BENCH_<PR>.json.
func ReadSnapshotFile(path string) (Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return Snapshot{}, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// ReadSnapshot parses a Snapshot JSON document.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return Snapshot{}, fmt.Errorf("bench: parsing snapshot: %w", err)
	}
	return s, nil
}

// CompareSnapshots returns the regressions of fresh against base: records
// matched by (experiment, name), skipping "total" rows and records missing
// from either side (a renamed or new benchmark is not a regression). matched
// reports how many records were actually compared, so a caller can fail on
// an accidentally empty comparison.
func CompareSnapshots(base, fresh Snapshot, allocTol, nsTol float64) (regs []Regression, matched int) {
	baseRecs := make(map[string]Record, len(base.Records))
	for _, r := range base.Records {
		if r.Name == "total" {
			continue
		}
		baseRecs[r.Experiment+"\x00"+r.Name] = r
	}
	for _, r := range fresh.Records {
		if r.Name == "total" {
			continue
		}
		b, ok := baseRecs[r.Experiment+"\x00"+r.Name]
		if !ok {
			continue
		}
		matched++
		if reg, bad := exceeds(b, r, "allocs/op", b.AllocsPerOp, r.AllocsPerOp, allocTol); bad {
			regs = append(regs, reg)
		}
		if reg, bad := exceeds(b, r, "ns/op", b.NsPerOp, r.NsPerOp, nsTol); bad {
			regs = append(regs, reg)
		}
	}
	return regs, matched
}

// MergeMin folds a rerun's records into an earlier snapshot, keeping the
// per-(experiment, name) minimum of each metric. Wall-clock per op on a
// shared 1-CPU runner is one-sided noise — the scheduler can only make a
// run slower, never faster — so the minimum across repeats is the best
// estimate of the true cost. Allocations are deterministic, so their min is
// a no-op. Records present on only one side pass through unchanged.
func MergeMin(base, rerun []Record) []Record {
	idx := make(map[string]int, len(base))
	out := append([]Record(nil), base...)
	for i, r := range out {
		idx[r.Experiment+"\x00"+r.Name] = i
	}
	for _, r := range rerun {
		i, ok := idx[r.Experiment+"\x00"+r.Name]
		if !ok {
			idx[r.Experiment+"\x00"+r.Name] = len(out)
			out = append(out, r)
			continue
		}
		m := &out[i]
		m.NsPerOp = min(m.NsPerOp, r.NsPerOp)
		m.AllocsPerOp = min(m.AllocsPerOp, r.AllocsPerOp)
		m.BytesPerOp = min(m.BytesPerOp, r.BytesPerOp)
		m.ActionsPerSec = max(m.ActionsPerSec, r.ActionsPerSec)
	}
	return out
}

// exceeds reports whether got regressed past base by more than tol.
func exceeds(b, r Record, metric string, base, got, tol float64) (Regression, bool) {
	if base <= 0 || got <= base*(1+tol) {
		return Regression{}, false
	}
	return Regression{
		Experiment: r.Experiment, Name: r.Name, Metric: metric,
		Base: base, Got: got, Ratio: got / base,
	}, true
}
