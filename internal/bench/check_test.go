package bench

import (
	"strings"
	"testing"
)

func snap(recs ...Record) Snapshot { return Snapshot{Records: recs} }

func TestCompareSnapshots(t *testing.T) {
	base := snap(
		Record{Experiment: "tput", Name: "SIC", NsPerOp: 100, AllocsPerOp: 10},
		Record{Experiment: "tput", Name: "IC", NsPerOp: 200, AllocsPerOp: 20},
		Record{Experiment: "tput", Name: "total", NsPerOp: 1e9, AllocsPerOp: 1e6},
	)

	t.Run("within tolerance passes", func(t *testing.T) {
		fresh := snap(
			Record{Experiment: "tput", Name: "SIC", NsPerOp: 120, AllocsPerOp: 12},
			Record{Experiment: "tput", Name: "IC", NsPerOp: 280, AllocsPerOp: 24},
		)
		regs, matched := CompareSnapshots(base, fresh, 0.25, 0.50)
		if matched != 2 {
			t.Fatalf("matched = %d, want 2", matched)
		}
		if len(regs) != 0 {
			t.Fatalf("unexpected regressions: %v", regs)
		}
	})

	t.Run("alloc regression caught", func(t *testing.T) {
		fresh := snap(Record{Experiment: "tput", Name: "SIC", NsPerOp: 100, AllocsPerOp: 13})
		regs, _ := CompareSnapshots(base, fresh, 0.25, 0.50)
		if len(regs) != 1 || regs[0].Metric != "allocs/op" {
			t.Fatalf("regs = %v, want one allocs/op regression", regs)
		}
		if !strings.Contains(regs[0].String(), "allocs/op") {
			t.Fatalf("regression string: %s", regs[0])
		}
	})

	t.Run("ns regression caught", func(t *testing.T) {
		fresh := snap(Record{Experiment: "tput", Name: "SIC", NsPerOp: 151, AllocsPerOp: 10})
		regs, _ := CompareSnapshots(base, fresh, 0.25, 0.50)
		if len(regs) != 1 || regs[0].Metric != "ns/op" {
			t.Fatalf("regs = %v, want one ns/op regression", regs)
		}
	})

	t.Run("total rows and unmatched records skipped", func(t *testing.T) {
		fresh := snap(
			Record{Experiment: "tput", Name: "total", NsPerOp: 1e12, AllocsPerOp: 1e9},
			Record{Experiment: "tput", Name: "brand-new", NsPerOp: 1e12, AllocsPerOp: 1e9},
		)
		regs, matched := CompareSnapshots(base, fresh, 0.25, 0.50)
		if matched != 0 || len(regs) != 0 {
			t.Fatalf("matched=%d regs=%v, want 0 and none", matched, regs)
		}
	})

	t.Run("improvements pass", func(t *testing.T) {
		fresh := snap(Record{Experiment: "tput", Name: "SIC", NsPerOp: 10, AllocsPerOp: 1})
		regs, _ := CompareSnapshots(base, fresh, 0.25, 0.50)
		if len(regs) != 0 {
			t.Fatalf("improvement flagged as regression: %v", regs)
		}
	})
}

func TestMergeMin(t *testing.T) {
	first := []Record{
		{Experiment: "tput", Name: "SIC", NsPerOp: 180, AllocsPerOp: 10, BytesPerOp: 500, ActionsPerSec: 5000},
		{Experiment: "tput", Name: "IC", NsPerOp: 200, AllocsPerOp: 20, BytesPerOp: 900, ActionsPerSec: 4000},
	}
	rerun := []Record{
		{Experiment: "tput", Name: "SIC", NsPerOp: 110, AllocsPerOp: 10, BytesPerOp: 500, ActionsPerSec: 9000},
		{Experiment: "tput", Name: "IC", NsPerOp: 260, AllocsPerOp: 20, BytesPerOp: 900, ActionsPerSec: 3000},
		{Experiment: "par", Name: "p2", NsPerOp: 50, AllocsPerOp: 5},
	}
	got := MergeMin(first, rerun)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3 (pass-through of rerun-only record): %+v", len(got), got)
	}
	byKey := make(map[string]Record)
	for _, r := range got {
		byKey[r.Experiment+"/"+r.Name] = r
	}
	if r := byKey["tput/SIC"]; r.NsPerOp != 110 || r.ActionsPerSec != 9000 {
		t.Errorf("tput/SIC: ns=%v aps=%v, want min ns 110 / max aps 9000", r.NsPerOp, r.ActionsPerSec)
	}
	if r := byKey["tput/IC"]; r.NsPerOp != 200 || r.ActionsPerSec != 4000 {
		t.Errorf("tput/IC: ns=%v aps=%v, want first-run 200/4000 kept", r.NsPerOp, r.ActionsPerSec)
	}
	if r := byKey["par/p2"]; r.NsPerOp != 50 {
		t.Errorf("par/p2 not passed through: %+v", r)
	}

	// A noisy first run that regresses past tolerance must pass after the
	// merged rerun brings ns back under — the guard's retry contract.
	base := snap(Record{Experiment: "tput", Name: "SIC", NsPerOp: 100, AllocsPerOp: 10})
	if regs, _ := CompareSnapshots(base, snap(first...), 0.25, 0.50); len(regs) != 1 {
		t.Fatalf("noisy first run: regs = %v, want 1", regs)
	}
	if regs, _ := CompareSnapshots(base, snap(got...), 0.25, 0.50); len(regs) != 0 {
		t.Fatalf("after MergeMin: regs = %v, want none", regs)
	}
}

func TestReadSnapshot(t *testing.T) {
	in := `{"go_version":"go1.24.0","records":[{"experiment":"tput","name":"SIC","ns_per_op":5,"allocs_per_op":2,"bytes_per_op":100}]}`
	s, err := ReadSnapshot(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if len(s.Records) != 1 || s.Records[0].NsPerOp != 5 {
		t.Fatalf("parsed snapshot: %+v", s)
	}
	if _, err := ReadSnapshot(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
