// Package bench is the experiment harness: one runnable experiment per
// table and figure of the paper's evaluation (§6). Each experiment prints
// the same series the paper plots, at laptop scale (DESIGN.md §5 maps every
// experiment to its modules; EXPERIMENTS.md records paper-vs-measured).
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/gen"
	"repro/internal/stream"
)

// Table is one experiment's printable result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Fprint renders the table with aligned columns.
func (t Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Scale holds the scaled-down experiment sizes. The paper's defaults
// (Table 4: N=500K, L=5K, k=50, |U|=2M, 10–48M actions) are divided by
// ScaleDefault's factor so the full suite completes on a laptop while
// preserving every ratio the figures depend on.
type Scale struct {
	// Users is the default |U| per dataset.
	Users int
	// StreamLen is the number of actions generated per dataset.
	StreamLen int
	// Window is the default window size N.
	Window int
	// Slide is the default slide length L.
	Slide int
	// K is the default seed budget.
	K int
	// Beta is the default efficiency knob (paper's bold default 0.1 for
	// quality plots; throughput plots sweep it).
	Beta float64
	// MCRounds is the Monte-Carlo rounds per spread estimate (paper: 10,000).
	MCRounds int
	// Samples is the number of window snapshots evaluated in quality
	// experiments.
	Samples int
	// Seed fixes all randomness.
	Seed int64
	// Parallelism is the checkpoint-shard worker width used by the
	// streaming runs (sim.Config.Parallelism) — a tracker-level setting,
	// not per-oracle. 1 = serial, the legacy default.
	Parallelism int
	// BatchSize is the ingestion batch size used by the streaming runs
	// (sim.Config.BatchSize). 1 = per-action, the legacy default.
	BatchSize int
}

// ScaleDefault divides the paper's sizes by 50: N=10K, L=100, 60K-action
// streams. Suitable for cmd/simbench on a laptop (minutes).
func ScaleDefault() Scale {
	return Scale{
		Users:       20000,
		StreamLen:   60000,
		Window:      10000,
		Slide:       100,
		K:           25,
		Beta:        0.1,
		MCRounds:    500,
		Samples:     4,
		Seed:        1,
		Parallelism: 1,
		BatchSize:   1,
	}
}

// ScaleSmoke is a fast configuration for tests and testing.B benchmarks
// (seconds).
func ScaleSmoke() Scale {
	return Scale{
		Users:       2000,
		StreamLen:   8000,
		Window:      2000,
		Slide:       50,
		K:           10,
		Beta:        0.1,
		MCRounds:    100,
		Samples:     2,
		Seed:        1,
		Parallelism: 1,
		BatchSize:   1,
	}
}

// Dataset is one generated action stream.
type Dataset struct {
	Name    string
	Users   int
	Actions []stream.Action
}

// Datasets materializes the four evaluation datasets of §6.1 at the given
// scale: Reddit-like, Twitter-like, SYN-O and SYN-N.
func Datasets(sc Scale) []Dataset {
	cfgs := []gen.Config{
		gen.RedditLike(sc.Users, sc.StreamLen, sc.Window, sc.Seed),
		gen.TwitterLike(sc.Users, sc.StreamLen, sc.Window, sc.Seed),
		gen.SynO(sc.Users, sc.StreamLen, sc.Window, sc.Seed),
		gen.SynN(sc.Users, sc.StreamLen, sc.Window, sc.Seed),
	}
	out := make([]Dataset, len(cfgs))
	for i, c := range cfgs {
		out[i] = Dataset{Name: c.Name, Users: c.Users, Actions: gen.Stream(c)}
	}
	return out
}

// synODataset materializes only the SYN-O stream — for experiments that
// need just the paper's headline dataset, without generating all four.
func synODataset(sc Scale) Dataset {
	c := gen.SynO(sc.Users, sc.StreamLen, sc.Window, sc.Seed)
	return Dataset{Name: c.Name, Users: c.Users, Actions: gen.Stream(c)}
}

// Experiment is a registered reproduction target.
type Experiment struct {
	ID    string
	Title string
	Run   func(sc Scale) Table
}

var registry = map[string]Experiment{}

func register(e Experiment) { registry[e.ID] = e }

// Experiments lists the registered experiment IDs in order.
func Experiments() []Experiment {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]Experiment, len(ids))
	for i, id := range ids {
		out[i] = registry[id]
	}
	return out
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Run executes one experiment and prints its table. Streaming experiments
// (tput, par) record fine-grained per-configuration rows into the JSON
// collector as they run; use RunMeasured to additionally record a
// whole-experiment "total" row.
func Run(id string, sc Scale, w io.Writer) error {
	e, ok := Lookup(id)
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q", id)
	}
	e.Run(sc).Fprint(w)
	return nil
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func i0(v int) string     { return fmt.Sprintf("%d", v) }
