package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"
)

// Record is one machine-readable benchmark measurement, mirroring the
// testing.B vocabulary (ns/op, allocs/op, B/op) plus the streaming
// throughput the paper plots. Experiment is the registered experiment ID;
// Name distinguishes rows within one experiment (a configuration label, or
// "total" for the whole-experiment aggregate). The unit of "op" is one
// ingested action for streaming rows and one full experiment run for
// "total" rows.
type Record struct {
	Experiment    string  `json:"experiment"`
	Name          string  `json:"name"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	ActionsPerSec float64 `json:"actions_per_sec,omitempty"`
	AvgValue      float64 `json:"avg_value,omitempty"`
}

// Snapshot is the committed BENCH_*.json shape: enough environment context
// to compare trajectories across PRs, plus the records.
type Snapshot struct {
	GoVersion string   `json:"go_version"`
	GoOS      string   `json:"goos"`
	GoArch    string   `json:"goarch"`
	NumCPU    int      `json:"num_cpu"`
	Records   []Record `json:"records"`
}

// collected accumulates records as experiments run. The harness is
// single-threaded (experiments run sequentially), so a plain slice suffices.
var collected []Record

// record appends one measurement to the in-process collector.
func record(r Record) { collected = append(collected, r) }

// ResetMetrics clears the in-process collector.
func ResetMetrics() { collected = nil }

// Metrics returns the records collected since the last ResetMetrics, sorted
// by (experiment, name) for stable output.
func Metrics() []Record {
	out := append([]Record(nil), collected...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Experiment != out[j].Experiment {
			return out[i].Experiment < out[j].Experiment
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// WriteJSON writes the collected metrics as an indented JSON Snapshot —
// the format committed as BENCH_<PR>.json and uploaded as a CI artifact, so
// future PRs can rerun the same experiments and diff the trajectory.
func WriteJSON(w io.Writer) error {
	snap := Snapshot{
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Records:   Metrics(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// RunMeasured is Run plus a whole-experiment "total" record (wall time and
// heap allocations for the full regeneration, measured around the run with
// a forced GC). It is what cmd/simbench uses, so every experiment of a
// -json invocation leaves a trace in the snapshot. Tests and testing.B
// benchmarks call the plain Run, which performs no measurement — a forced
// GC per b.N iteration would distort the very numbers they report.
func RunMeasured(id string, sc Scale, w io.Writer) error {
	if _, ok := Lookup(id); !ok {
		return fmt.Errorf("bench: unknown experiment %q", id)
	}
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	err := Run(id, sc, w)
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	if err == nil {
		record(Record{
			Experiment:  id,
			Name:        "total",
			NsPerOp:     float64(elapsed.Nanoseconds()),
			AllocsPerOp: float64(m1.Mallocs - m0.Mallocs),
			BytesPerOp:  float64(m1.TotalAlloc - m0.TotalAlloc),
		})
	}
	return err
}

// recordRun stores one streaming run's metrics under (experiment, name).
func recordRun(experiment, name string, m runMetrics) {
	record(Record{
		Experiment:    experiment,
		Name:          name,
		NsPerOp:       m.NsPerAction,
		AllocsPerOp:   m.AllocsPerAction,
		BytesPerOp:    m.BytesPerAction,
		ActionsPerSec: m.Throughput,
		AvgValue:      m.AvgValue,
	})
}
