package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/query"
	"repro/sim"
)

// The query experiment measures the relational read path (package query)
// against a snapshot of the SYN-O stream: the same plan executed lazily
// (Plan.Open, the /v1 query endpoint's path) and through the materialized
// reference evaluator (Plan.Materialize). The lazy rows are the regression
// guard of ISSUE 6: allocs/op must stay O(k)-ish — bounded by plan output,
// not by scan input — so a snapshot row here catches any operator that
// starts materializing its input.
func init() {
	register(Experiment{
		ID:    "query",
		Title: "Relational query path: lazy operators vs materialized reference",
		Run:   runQueryBench,
	})
}

func runQueryBench(sc Scale) Table {
	ds := synODataset(sc)
	tr, err := sim.New(sim.Config{
		K: sc.K, WindowSize: sc.Window, Slide: sc.Slide, Beta: sc.Beta,
	})
	if err != nil {
		panic(err)
	}
	defer tr.Close()
	// Two publish points so window-compare sources have both sides.
	half := len(ds.Actions) / 2
	if err := tr.ProcessAll(ds.Actions[:half]); err != nil {
		panic(err)
	}
	prev := tr.Snapshot()
	if err := tr.ProcessAll(ds.Actions[half:]); err != nil {
		panic(err)
	}
	cur := tr.Snapshot()
	env := query.Env{Current: &cur, Previous: &prev}

	topk := query.Plan{Scan: "influence", Ops: []query.Op{
		{Op: "topk", Col: "user", K: 10, Desc: true},
	}}
	join := query.Plan{Scan: "influence", Ops: []query.Op{
		{Op: "join", On: "seed", Right: &query.Plan{Scan: "seeds"}, RightOn: "user"},
		{Op: "topk", Col: "influence", K: 5, Desc: true},
	}}
	compare := query.Plan{Compare: "checkpoints", Ops: []query.Op{
		{Op: "filter", Col: "status", Cmp: "!=", Value: strVal("removed")},
	}}

	type cfg struct {
		name        string
		plan        query.Plan
		materialize bool
	}
	cfgs := []cfg{
		{"topk/lazy", topk, false},
		{"topk/materialized", topk, true},
		{"join/lazy", join, false},
		{"compare/lazy", compare, false},
	}
	t := Table{
		ID:     "query",
		Title:  "Relational query path over a SYN-O snapshot",
		Header: []string{"plan", "rows", "ns/op", "allocs/op", "B/op"},
		Notes: []string{
			"op = one full plan execution against the published snapshot; lazy rows run Plan.Open (the /v1 query path), materialized rows the reference evaluator",
			fmt.Sprintf("snapshot: %d seeds, %d influence rows, %d checkpoints",
				len(cur.Seeds), influenceRows(&cur), cur.Checkpoints),
			"lazy allocs/op is the guard: it tracks plan OUTPUT (O(k)), not scan input",
		},
	}
	const iters = 100
	for _, c := range cfgs {
		rows, m := measurePlan(c.plan, env, c.materialize, iters)
		recordRun("query", c.name, m)
		t.Rows = append(t.Rows, []string{
			c.name, i0(rows), f1(m.NsPerAction), f1(m.AllocsPerAction), f1(m.BytesPerAction),
		})
	}
	return t
}

// measurePlan runs the plan iters times and reports per-execution cost.
// The lazy path is executed exactly as the server executes it: Open then
// Collect, so the clone-on-collect cost of returned rows is included.
func measurePlan(p query.Plan, env query.Env, materialize bool, iters int) (int, runMetrics) {
	execute := func() int {
		if materialize {
			_, rows, err := p.Materialize(env)
			if err != nil {
				panic(err)
			}
			return len(rows)
		}
		rel, err := p.Open(env)
		if err != nil {
			panic(err)
		}
		rows, _ := query.Collect(rel, 1<<20)
		return len(rows)
	}
	rows := execute() // warm-up, and the reported row count
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		execute()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return rows, runMetrics{
		NsPerAction:     float64(elapsed.Nanoseconds()) / float64(iters),
		AllocsPerAction: float64(m1.Mallocs-m0.Mallocs) / float64(iters),
		BytesPerAction:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(iters),
	}
}

func influenceRows(s *sim.Snapshot) int {
	n := 0
	for _, si := range s.SeedInfluence {
		n += len(si.Influenced)
	}
	return n
}

func strVal(s string) *query.Value {
	v := query.StringValue(s)
	return &v
}
