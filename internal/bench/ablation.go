package bench

import (
	"time"

	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/oracle"
	"repro/internal/stream"
)

// runCore streams ds through a raw core.Framework configuration, measuring
// the same metrics as runFramework. Used by ablations that need factory
// control beyond the public API.
func runCore(ds Dataset, cfg core.Config) runMetrics {
	fw := core.MustNew(cfg)
	warm := cfg.N
	if warm > len(ds.Actions) {
		warm = len(ds.Actions) / 2
	}
	var sumVal, sumCp float64
	var boundaries int
	var elapsed time.Duration
	l := cfg.L
	if l == 0 {
		l = 1
	}
	for i, a := range ds.Actions {
		startT := time.Now()
		if err := fw.Process(a); err != nil {
			panic(err)
		}
		if i >= warm {
			elapsed += time.Since(startT)
		}
		if (i+1)%l == 0 && i >= warm {
			sumVal += fw.Value()
			sumCp += float64(fw.Checkpoints())
			boundaries++
		}
	}
	m := runMetrics{}
	if boundaries > 0 {
		m.AvgValue = sumVal / float64(boundaries)
		m.AvgCheckpoints = sumCp / float64(boundaries)
	}
	if timed := len(ds.Actions) - warm; timed > 0 && elapsed > 0 {
		m.Throughput = float64(timed) / elapsed.Seconds()
	}
	return m
}

// strippedOracle removes the Latest element metadata before delegating,
// forcing seed-coverage updates onto the full re-merge path. It isolates
// the contribution of the O(1) seed-update fast path.
type strippedOracle struct{ o oracle.Oracle }

func (s strippedOracle) Process(e oracle.Element) {
	e.LatestValid = false
	s.o.Process(e)
}
func (s strippedOracle) Value() float64         { return s.o.Value() }
func (s strippedOracle) Seeds() []stream.UserID { return s.o.Seeds() }
func (s strippedOracle) Stats() oracle.Stats    { return s.o.Stats() }

func stripMeta(f oracle.Factory) oracle.Factory {
	return func(k int) oracle.Oracle { return strippedOracle{f(k)} }
}

func init() {
	register(Experiment{
		ID:    "abl-oracle",
		Title: "Ablation: SIC under each checkpoint oracle",
		Run: func(sc Scale) Table {
			s := shrink(sc, 2)
			t := Table{
				ID:     "abl-oracle",
				Title:  "SIC with each Table 2 oracle: quality/cost trade-off",
				Header: []string{"dataset", "oracle", "value", "throughput(K/s)", "checkpoints"},
				Notes: []string{
					"sieve-style oracles pay O(log k / beta) instances per checkpoint for the (1/2-beta) ratio; swap oracles are leaner at ratio 1/4",
				},
			}
			kinds := []oracle.Kind{oracle.SieveStreaming, oracle.ThresholdStream, oracle.BlogWatch, oracle.MkC}
			for _, ds := range Datasets(s)[1:3] { // Twitter-like, SYN-O
				for _, kind := range kinds {
					m := runCore(ds, core.Config{
						K: s.K, N: s.Window, L: s.Slide, Beta: s.Beta, Sparse: true,
						Oracle: oracle.NewFactory(kind, s.Beta, nil),
					})
					t.Rows = append(t.Rows, []string{
						ds.Name, kind.String(), f1(m.AvgValue), f1(m.Throughput / 1000), f1(m.AvgCheckpoints),
					})
				}
			}
			return t
		},
	})

	register(Experiment{
		ID:    "abl-fastpath",
		Title: "Ablation: element-metadata fast path (Latest) on vs off",
		Run: func(sc Scale) Table {
			s := shrink(sc, 2)
			t := Table{
				ID:     "abl-fastpath",
				Title:  "SIC throughput with and without the O(1) seed-update fast path",
				Header: []string{"dataset", "fastpath", "value", "throughput(K/s)"},
				Notes: []string{
					"identical answers by construction; the fast path avoids re-merging a seed's full influence set on every update",
				},
			}
			for _, ds := range Datasets(s)[:2] {
				base := oracle.NewFactory(oracle.SieveStreaming, s.Beta, nil)
				on := runCore(ds, core.Config{K: s.K, N: s.Window, L: s.Slide, Beta: s.Beta, Sparse: true, Oracle: base})
				off := runCore(ds, core.Config{K: s.K, N: s.Window, L: s.Slide, Beta: s.Beta, Sparse: true, Oracle: stripMeta(base)})
				t.Rows = append(t.Rows,
					[]string{ds.Name, "on", f1(on.AvgValue), f1(on.Throughput / 1000)},
					[]string{ds.Name, "off", f1(off.AvgValue), f1(off.Throughput / 1000)},
				)
			}
			return t
		},
	})

	register(Experiment{
		ID:    "abl-greedy",
		Title: "Ablation: CELF lazy greedy vs the paper's naive greedy",
		Run: func(sc Scale) Table {
			s := shrink(sc, 2)
			t := Table{
				ID:     "abl-greedy",
				Title:  "Per-query latency of greedy implementations (same answers)",
				Header: []string{"dataset", "k", "naive(ms)", "celf(ms)", "speedup", "value"},
				Notes: []string{
					"the paper's Greedy baseline is the naive O(k·|U|)-evaluation variant; CELF returns identical solutions",
				},
			}
			for _, ds := range Datasets(s)[1:2] { // Twitter-like
				st := stream.New()
				limit := s.Window
				if limit > len(ds.Actions) {
					limit = len(ds.Actions)
				}
				for _, a := range ds.Actions[:limit] {
					if _, err := st.Ingest(a); err != nil {
						panic(err)
					}
				}
				for _, k := range kSweep(s) {
					start := time.Now()
					_, nv := greedy.SelectNaive(st, 1, k, nil)
					naive := time.Since(start)
					start = time.Now()
					_, cv := greedy.Select(st, 1, k, nil)
					celf := time.Since(start)
					speedup := 0.0
					if celf > 0 {
						speedup = float64(naive) / float64(celf)
					}
					if nv != cv {
						panic("greedy variants disagree")
					}
					t.Rows = append(t.Rows, []string{
						ds.Name, i0(k),
						f2(float64(naive.Microseconds()) / 1000),
						f2(float64(celf.Microseconds()) / 1000),
						f1(speedup), f1(cv),
					})
				}
			}
			return t
		},
	})
}
