package bench

import (
	"fmt"
	"runtime"

	"repro/sim"
)

// The parallel-scaling experiment is an extension beyond the paper: it
// measures the checkpoint-sharded feed engine (every live checkpoint's
// oracle shards flattened into one parallel loop per element, plus batched
// ingestion) against the serial per-action baseline on the RMAT-driven
// SYN-O stream under SIC, the paper's headline configuration.
func init() {
	register(Experiment{
		ID:    "par",
		Title: "Parallel/batched ingestion scaling, SIC on SYN-O (beyond the paper)",
		Run:   runParScaling,
	})
}

func runParScaling(sc Scale) Table {
	ds := synODataset(sc)
	type cfg struct {
		par, batch int
	}
	cfgs := []cfg{{1, 1}, {2, 1}, {4, 1}, {8, 1}, {1, sc.Slide}, {4, sc.Slide}}
	t := Table{
		ID:     "par",
		Title:  "Parallel/batched ingestion scaling, SIC on SYN-O (beyond the paper)",
		Header: []string{"parallelism", "batch", "actions/s", "speedup", "avg value"},
		Notes: []string{
			fmt.Sprintf("GOMAXPROCS=%d; speedup is relative to the serial per-action engine (1/1)", runtime.GOMAXPROCS(0)),
			"parallel runs (batch=1) are bit-identical to serial; batched runs are exact at batch boundaries",
		},
	}
	base := 0.0
	for _, c := range cfgs {
		m := runFramework(ds, sim.SIC, sc.K, sc.Window, sc.Slide, sc.Beta, c.par, c.batch)
		recordRun("par", fmt.Sprintf("SIC/p%d/b%d", c.par, c.batch), m)
		if base == 0 {
			base = m.Throughput
		}
		speedup := 0.0
		if base > 0 {
			speedup = m.Throughput / base
		}
		t.Rows = append(t.Rows, []string{
			i0(c.par), i0(c.batch), f1(m.Throughput), fmt.Sprintf("%.2fx", speedup), f1(m.AvgValue),
		})
	}
	return t
}
