package bench

import (
	"fmt"
	"runtime"

	"repro/sim"
)

// The tput experiment is the streaming-throughput hot path in isolation: IC
// and SIC ingesting the RMAT-driven SYN-O stream, serial and
// checkpoint-sharded, reporting the testing.B-style ns/op, allocs/op and
// B/op per ingested action alongside actions/sec. It is the anchor of the
// BENCH_*.json trajectory: every PR reruns it (make bench-json) and commits
// the snapshot, so per-action allocation regressions are visible in review.
func init() {
	register(Experiment{
		ID:    "tput",
		Title: "Streaming ingestion hot path: ns, allocs and bytes per action",
		Run:   runTput,
	})
}

func runTput(sc Scale) Table {
	ds := synODataset(sc)
	type cfg struct {
		fw         sim.Framework
		par, batch int
	}
	cfgs := []cfg{
		{sim.SIC, 1, 1},
		{sim.IC, 1, 1},
		{sim.SIC, sharedWidth(sc), 1},
		{sim.SIC, 1, sc.Slide},
	}
	t := Table{
		ID:     "tput",
		Title:  "Streaming ingestion hot path (SYN-O)",
		Header: []string{"config", "actions/s", "ns/op", "allocs/op", "B/op", "avg value"},
		Notes: []string{
			fmt.Sprintf("GOMAXPROCS=%d; op = one ingested action; allocs measured over the whole run via runtime.MemStats", runtime.GOMAXPROCS(0)),
			"rows are recorded in the JSON snapshot (simbench -json / make bench-json) as the cross-PR perf trajectory",
		},
	}
	for _, c := range cfgs {
		name := fmt.Sprintf("%v/p%d/b%d", c.fw, c.par, c.batch)
		m := runFramework(ds, c.fw, sc.K, sc.Window, sc.Slide, sc.Beta, c.par, c.batch)
		recordRun("tput", name, m)
		t.Rows = append(t.Rows, []string{
			name, f1(m.Throughput), f1(m.NsPerAction), f1(m.AllocsPerAction),
			f1(m.BytesPerAction), f1(m.AvgValue),
		})
	}
	return t
}

// sharedWidth picks the parallel width for tput's sharded row: the Scale's
// configured parallelism when set above 1, else a FIXED width of 4. The
// fallback is deliberately host-independent — the row's name is the join
// key of the cross-PR BENCH_*.json trajectory, so it must not vary with
// the machine's core count (speed varies across hosts regardless; the
// allocs/op column is the stable signal).
func sharedWidth(sc Scale) int {
	if sc.Parallelism > 1 {
		return sc.Parallelism
	}
	return 4
}
