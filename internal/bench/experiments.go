package bench

import (
	"fmt"
	"time"

	"repro/internal/greedy"
	"repro/internal/oracle"
	"repro/internal/stream"
	"repro/sim"
)

// betaSweep is the x-axis of Figs 5–7.
var betaSweep = []float64{0.1, 0.2, 0.3, 0.4, 0.5}

// sweepKey memoizes (dataset, framework, beta) runs shared by Figs 5–7.
type sweepKey struct {
	scale Scale
	ds    string
	fw    sim.Framework
	beta  float64
}

var sweepCache = map[sweepKey]runMetrics{}

func sweep(sc Scale, ds Dataset, fw sim.Framework, beta float64) runMetrics {
	key := sweepKey{sc, ds.Name, fw, beta}
	if m, ok := sweepCache[key]; ok {
		return m
	}
	m := runFramework(ds, fw, sc.K, sc.Window, sc.Slide, beta, sc.Parallelism, sc.BatchSize)
	sweepCache[key] = m
	return m
}

func betaTable(id, title string, sc Scale, metric func(runMetrics) float64, format func(float64) string) Table {
	s := shrink(sc, 2)
	t := Table{
		ID:     id,
		Title:  title,
		Header: []string{"dataset", "beta", "SIC", "IC"},
	}
	for _, ds := range Datasets(s) {
		for _, b := range betaSweep {
			sic := sweep(s, ds, sim.SIC, b)
			ic := sweep(s, ds, sim.IC, b)
			t.Rows = append(t.Rows, []string{
				ds.Name, f1(b), format(metric(sic)), format(metric(ic)),
			})
		}
	}
	return t
}

func init() {
	register(Experiment{
		ID:    "table3",
		Title: "Dataset statistics (paper Table 3)",
		Run: func(sc Scale) Table {
			t := Table{
				ID:     "table3",
				Title:  "Dataset statistics (paper Table 3)",
				Header: []string{"dataset", "users", "actions", "resp.dist", "avg.depth", "root.frac"},
				Notes: []string{
					"streams are simulated at laptop scale; shape targets: depth Reddit≈4.6 > SYN≈2.5 > Twitter≈1.9, SYN-O distances 100x SYN-N",
				},
			}
			for _, ds := range Datasets(sc) {
				st := stream.New()
				for _, a := range ds.Actions {
					if _, err := st.Ingest(a); err != nil {
						panic(err)
					}
				}
				s := st.Stats()
				t.Rows = append(t.Rows, []string{
					ds.Name, i0(s.Users), fmt.Sprintf("%d", s.Actions),
					f1(s.AvgRespDist), f2(s.AvgDepth), f2(s.RootFraction),
				})
			}
			return t
		},
	})

	register(Experiment{
		ID:    "table2",
		Title: "Checkpoint oracle comparison (paper Table 2)",
		Run:   runTable2,
	})

	register(Experiment{
		ID:    "fig5",
		Title: "Influence value of IC and SIC with varying beta (paper Fig 5)",
		Run: func(sc Scale) Table {
			t := betaTable("fig5", "Influence value vs beta (Fig 5)", sc,
				func(m runMetrics) float64 { return m.AvgValue }, f1)
			t.Notes = append(t.Notes,
				"shape: IC >= SIC; both decrease with beta; SIC within ~5% of IC at beta=0.1")
			return t
		},
	})

	register(Experiment{
		ID:    "fig6",
		Title: "Checkpoints maintained with varying beta (paper Fig 6)",
		Run: func(sc Scale) Table {
			t := betaTable("fig6", "Number of checkpoints vs beta (Fig 6)", sc,
				func(m runMetrics) float64 { return m.AvgCheckpoints }, f1)
			t.Notes = append(t.Notes,
				"shape: IC flat at ceil(N/L); SIC = O(log N / beta), decreasing in beta")
			return t
		},
	})

	register(Experiment{
		ID:    "fig7",
		Title: "Throughput of IC and SIC with varying beta (paper Fig 7)",
		Run: func(sc Scale) Table {
			t := betaTable("fig7", "Throughput (K actions/s) vs beta (Fig 7)", sc,
				func(m runMetrics) float64 { return m.Throughput / 1000 }, f1)
			t.Notes = append(t.Notes,
				"shape: both increase with beta; SIC above IC with a widening gap")
			return t
		},
	})

	register(Experiment{
		ID:    "fig8",
		Title: "Seed quality (MC influence spread) with varying k (paper Fig 8)",
		Run: func(sc Scale) Table {
			s := shrink(sc, 2)
			t := Table{
				ID:     "fig8",
				Title:  "Influence spread vs k (Fig 8)",
				Header: append([]string{"dataset", "k"}, methodNames...),
				Notes: []string{
					"shape: IMM ≈ Greedy ≈ IC >= SIC (within ~10%); UBI competitive at small k, degrading at large k",
				},
			}
			for _, ds := range Datasets(s) {
				for _, k := range kSweep(s) {
					q := runQuality(ds, s, k)
					row := []string{ds.Name, i0(k)}
					for _, m := range methodNames {
						row = append(row, f1(q[m]))
					}
					t.Rows = append(t.Rows, row)
				}
			}
			return t
		},
	})

	register(Experiment{
		ID:    "fig9",
		Title: "Throughput with varying k (paper Fig 9)",
		Run: func(sc Scale) Table {
			s := sc
			t := Table{
				ID:     "fig9",
				Title:  "Throughput (K actions/s) vs k (Fig 9)",
				Header: append([]string{"dataset", "k"}, methodNames...),
				Notes: []string{
					"shape: all methods slow down with k; SIC dominates; SIC 1-2 orders above Greedy/IMM",
				},
			}
			for _, ds := range Datasets(s) {
				for _, k := range kSweep(s) {
					tp := runThroughput(ds, s, k, s.Window, s.Slide, sc.Beta)
					t.Rows = append(t.Rows, throughputRow(ds.Name, i0(k), tp))
				}
			}
			return t
		},
	})

	register(Experiment{
		ID:    "fig10",
		Title: "Throughput with varying window size N (paper Fig 10)",
		Run: func(sc Scale) Table {
			s := sc
			t := Table{
				ID:     "fig10",
				Title:  "Throughput (K actions/s) vs N (Fig 10)",
				Header: append([]string{"dataset", "N"}, methodNames...),
				Notes: []string{
					"shape: all decrease with N; SIC scales best (O(log N) checkpoints)",
				},
			}
			for _, ds := range Datasets(s) {
				for _, n := range []int{s.Window / 4, s.Window / 2, s.Window, 2 * s.Window} {
					tp := runThroughput(ds, s, s.K, n, s.Slide, sc.Beta)
					t.Rows = append(t.Rows, throughputRow(ds.Name, i0(n), tp))
				}
			}
			return t
		},
	})

	register(Experiment{
		ID:    "fig11",
		Title: "Throughput with varying slide length L (paper Fig 11)",
		Run: func(sc Scale) Table {
			s := sc
			t := Table{
				ID:     "fig11",
				Title:  "Throughput (K actions/s) vs L (Fig 11)",
				Header: append([]string{"dataset", "L"}, methodNames...),
				Notes: []string{
					"shape: IC improves linearly with L (ceil(N/L) checkpoints); SIC stays on top",
				},
			}
			for _, ds := range Datasets(s) {
				for _, l := range []int{s.Slide, 2 * s.Slide, 5 * s.Slide, 10 * s.Slide} {
					tp := runThroughput(ds, s, s.K, s.Window, l, sc.Beta)
					t.Rows = append(t.Rows, throughputRow(ds.Name, i0(l), tp))
				}
			}
			return t
		},
	})

	register(Experiment{
		ID:    "fig12",
		Title: "Throughput with varying user count |U| (paper Fig 12)",
		Run: func(sc Scale) Table {
			s := sc
			t := Table{
				ID:     "fig12",
				Title:  "Throughput (K actions/s) vs |U| on SYN datasets (Fig 12)",
				Header: append([]string{"dataset", "|U|"}, methodNames...),
				Notes: []string{
					"shape: SIC/IC/UBI improve with |U| (sparser windows); Greedy/IMM degrade",
				},
			}
			for _, mul := range []float64{0.5, 1, 2} {
				users := int(float64(s.Users) * mul)
				sv := s
				sv.Users = users
				dss := Datasets(sv)
				for _, ds := range dss[2:] { // SYN-O, SYN-N
					tp := runThroughput(ds, sv, sv.K, sv.Window, sv.Slide, sc.Beta)
					t.Rows = append(t.Rows, throughputRow(ds.Name, i0(users), tp))
				}
			}
			return t
		},
	})
}

// kSweep is the scaled version of the paper's k ∈ {5, 25, 50, 75, 100}.
func kSweep(sc Scale) []int {
	ks := []int{5, sc.K, 2 * sc.K}
	out := ks[:0]
	for _, k := range ks {
		if len(out) == 0 || k > out[len(out)-1] {
			out = append(out, k)
		}
	}
	return out
}

func throughputRow(ds, x string, tp throughputRun) []string {
	row := []string{ds, x}
	for _, m := range methodNames {
		row = append(row, f1(tp[m]/1000))
	}
	return row
}

// runTable2 compares the four checkpoint oracles on one mapped element
// stream: final objective value relative to offline lazy greedy, mean update
// latency per element, and live instance counts — the Quality/Update columns
// of the paper's Table 2, measured instead of cited.
func runTable2(sc Scale) Table {
	s := shrink(sc, 2)
	ds := Datasets(s)[1] // Twitter-like
	limit := s.Window
	if limit > len(ds.Actions) {
		limit = len(ds.Actions)
	}

	kinds := []oracle.Kind{oracle.SieveStreaming, oracle.ThresholdStream, oracle.BlogWatch, oracle.MkC}
	t := Table{
		ID:     "table2",
		Title:  "Checkpoint oracles on one window (Table 2, measured)",
		Header: []string{"oracle", "value", "vs.greedy", "ns/elem", "instances"},
		Notes: []string{
			"guarantees: Sieve/Threshold 1/2-beta, BlogWatch/MkC 1/4 (coverage only); greedy reference is (1-1/e)-approximate",
		},
	}
	for _, kind := range kinds {
		o := oracle.NewFactory(kind, s.Beta, nil)(s.K)
		st := stream.New()
		var elems int64
		start := time.Now()
		for _, a := range ds.Actions[:limit] {
			d, err := st.Ingest(a)
			if err != nil {
				panic(err)
			}
			for _, u := range d.Contributors {
				o.Process(oracle.Element{User: u, Prefix: st.InfluenceRecency(u, 1)})
				elems++
			}
		}
		elapsed := time.Since(start)

		// Offline greedy reference over the final influence sets.
		sets := map[stream.UserID][]stream.UserID{}
		st.Influencers(1, func(u stream.UserID) bool {
			sets[u] = st.InfluenceSet(u, 1)
			return true
		})
		_, ref := greedy.SelectSets(sets, s.K, nil)
		ratio := 0.0
		if ref > 0 {
			ratio = o.Value() / ref
		}
		t.Rows = append(t.Rows, []string{
			kind.String(), f1(o.Value()), f2(ratio),
			fmt.Sprintf("%d", elapsed.Nanoseconds()/max(elems, 1)),
			i0(o.Stats().Instances),
		})
	}
	return t
}
