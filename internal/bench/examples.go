package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/oracle"
	"repro/internal/stream"
)

// figure1Stream is the paper's running example (Figure 1).
func figure1Stream() []stream.Action {
	return []stream.Action{
		{ID: 1, User: 1, Parent: stream.NoParent},
		{ID: 2, User: 2, Parent: 1},
		{ID: 3, User: 3, Parent: stream.NoParent},
		{ID: 4, User: 3, Parent: 1},
		{ID: 5, User: 4, Parent: 3},
		{ID: 6, User: 1, Parent: 3},
		{ID: 7, User: 5, Parent: 3},
		{ID: 8, User: 4, Parent: 7},
		{ID: 9, User: 2, Parent: stream.NoParent},
		{ID: 10, User: 6, Parent: 9},
	}
}

func init() {
	register(Experiment{
		ID:    "fig2-4",
		Title: "Worked examples: checkpoint traces of Figures 2 and 4",
		Run: func(Scale) Table {
			t := Table{
				ID:     "fig2-4",
				Title:  "IC and SIC checkpoint values on the Figure 1 stream (N=8, k=2, optimal oracle)",
				Header: []string{"t", "framework", "checkpoint values (by start)", "answer", "seeds"},
				Notes: []string{
					"IC at t=8 must read 5 5 4 4 3 3 2 1 (paper Fig 2); answers follow Example 2: value 5 at t=8, 6 at t=10",
					"SIC uses beta=0.3 as in Example 5 and keeps a sparse subset incl. the expired Λ[x0]",
				},
			}
			ic := core.MustNew(core.Config{K: 2, N: 8, L: 1, Oracle: oracle.ExactFactory(nil)})
			sic := core.MustNew(core.Config{K: 2, N: 8, L: 1, Beta: 0.3, Sparse: true, Oracle: oracle.ExactFactory(nil)})
			for _, a := range figure1Stream() {
				if err := ic.Process(a); err != nil {
					panic(err)
				}
				if err := sic.Process(a); err != nil {
					panic(err)
				}
				if a.ID < 8 {
					continue
				}
				for _, fw := range []struct {
					name string
					f    *core.Framework
				}{{"IC", ic}, {"SIC", sic}} {
					vals := ""
					starts := fw.f.CheckpointStarts()
					for i, v := range fw.f.CheckpointValues() {
						if i > 0 {
							vals += " "
						}
						vals += fmt.Sprintf("%d:%.0f", starts[i], v)
					}
					t.Rows = append(t.Rows, []string{
						fmt.Sprintf("%d", a.ID), fw.name, vals,
						f1(fw.f.Value()), fmt.Sprintf("%v", fw.f.Seeds()),
					})
				}
			}
			return t
		},
	})
}
