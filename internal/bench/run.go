package bench

import (
	"runtime"
	"time"

	"repro/internal/graph"
	"repro/internal/greedy"
	"repro/internal/imm"
	"repro/internal/mc"
	"repro/internal/stream"
	"repro/internal/ubi"
	"repro/sim"
)

// runMetrics summarizes one streaming run of IC or SIC over a dataset.
type runMetrics struct {
	// AvgValue is the mean SIM objective at slide boundaries after warm-up
	// (Fig 5's y-axis).
	AvgValue float64
	// AvgCheckpoints is the mean number of live checkpoints (Fig 6).
	AvgCheckpoints float64
	// Throughput is actions per second after warm-up (Figs 7, 9–12).
	Throughput float64
	// NsPerAction is mean wall time per action after warm-up (1e9/Throughput).
	NsPerAction float64
	// AllocsPerAction and BytesPerAction are mean heap allocations per
	// ingested action over the WHOLE ingest loop (warm-up included; tracker
	// construction excluded — measurement starts after sim.New), measured
	// with runtime.ReadMemStats. Pool workers' allocations are included.
	// They back the tput experiment and the BENCH_*.json trajectory.
	AllocsPerAction float64
	BytesPerAction  float64
}

// runFramework streams ds through one tracker configuration, measuring
// values at slide boundaries and post-warm-up throughput. The first full
// window is warm-up: the paper's metrics likewise average over windows, not
// over the initial fill. parallelism and batchSize select the ingestion
// engine configuration (1/1 = the legacy serial per-action path); the flush
// at each slide boundary is timed so batched runs are charged their full
// ingestion cost.
func runFramework(ds Dataset, fw sim.Framework, k, n, l int, beta float64, parallelism, batchSize int) runMetrics {
	tr, err := sim.New(sim.Config{
		K: k, WindowSize: n, Slide: l, Beta: beta, Framework: fw,
		Parallelism: parallelism, BatchSize: batchSize,
	})
	if err != nil {
		panic(err)
	}
	defer tr.Close()
	warm := n
	if warm > len(ds.Actions) {
		warm = len(ds.Actions) / 2
	}
	var sumVal, sumCp float64
	var boundaries int
	var elapsed time.Duration
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i, a := range ds.Actions {
		timed := i >= warm
		boundary := (i+1)%l == 0
		startT := time.Now()
		if err := tr.Process(a); err != nil {
			panic(err)
		}
		if boundary {
			if err := tr.Flush(); err != nil {
				panic(err)
			}
		}
		if timed {
			elapsed += time.Since(startT)
		}
		if boundary && i >= warm {
			sumVal += tr.Value()
			sumCp += float64(tr.Stats().Checkpoints)
			boundaries++
		}
	}
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	m := runMetrics{}
	if boundaries > 0 {
		m.AvgValue = sumVal / float64(boundaries)
		m.AvgCheckpoints = sumCp / float64(boundaries)
	}
	if timedActions := len(ds.Actions) - warm; timedActions > 0 && elapsed > 0 {
		m.Throughput = float64(timedActions) / elapsed.Seconds()
		m.NsPerAction = float64(elapsed.Nanoseconds()) / float64(timedActions)
	}
	if n := len(ds.Actions); n > 0 {
		m.AllocsPerAction = float64(m1.Mallocs-m0.Mallocs) / float64(n)
		m.BytesPerAction = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(n)
	}
	return m
}

// samplePoints returns the 1-based action indices (slide boundaries past the
// first full window) at which quality experiments snapshot the methods.
func samplePoints(streamLen, n, l, samples int) []int {
	first := ((n + l - 1) / l) * l
	if first > streamLen {
		first = streamLen
	}
	var pts []int
	if samples < 1 {
		samples = 1
	}
	span := streamLen - first
	for s := 0; s < samples; s++ {
		p := first
		if samples > 1 {
			p = first + span*s/(samples-1)
		} else {
			p = streamLen
		}
		p = p / l * l
		if p == 0 {
			p = l
		}
		if len(pts) == 0 || p > pts[len(pts)-1] {
			pts = append(pts, p)
		}
	}
	return pts
}

// methodNames is the fixed comparison order of the paper's figures.
var methodNames = []string{"SIC", "IC", "Greedy", "IMM", "UBI"}

// qualityRun holds per-method average influence spreads (Fig 8).
type qualityRun map[string]float64

// runQuality replays ds once, snapshotting every compared method at the
// sample points and evaluating each returned seed set with Monte-Carlo
// simulation under the WC model on the window's influence graph — exactly
// the paper's §6.1 quality protocol.
func runQuality(ds Dataset, sc Scale, k int) qualityRun {
	sic, err := sim.New(sim.Config{K: k, WindowSize: sc.Window, Slide: sc.Slide, Beta: sc.Beta, Framework: sim.SIC})
	if err != nil {
		panic(err)
	}
	ic, err := sim.New(sim.Config{K: k, WindowSize: sc.Window, Slide: sc.Slide, Beta: sc.Beta, Framework: sim.IC})
	if err != nil {
		panic(err)
	}
	ubiTr := ubi.New(k, ubi.Options{Seed: sc.Seed, Rounds: sc.MCRounds / 2})

	points := samplePoints(len(ds.Actions), sc.Window, sc.Slide, sc.Samples)
	next := 0
	sums := qualityRun{}
	counts := 0
	for i, a := range ds.Actions {
		if err := sic.Process(a); err != nil {
			panic(err)
		}
		if err := ic.Process(a); err != nil {
			panic(err)
		}
		if next >= len(points) || i+1 != points[next] {
			continue
		}
		next++
		counts++
		st := sic.Internal().Stream()
		ws := sic.Internal().WindowStart()
		g := graph.FromWindow(st, ws)

		spread := func(seeds []stream.UserID) float64 {
			return mc.Spread(g, seeds, sc.MCRounds, sc.Seed)
		}
		sums["SIC"] += spread(sic.Seeds())
		sums["IC"] += spread(ic.Seeds())
		gSeeds, _ := greedy.Select(st, ws, k, nil)
		sums["Greedy"] += spread(gSeeds)
		iSeeds, _ := imm.Select(g, k, imm.Options{Seed: sc.Seed})
		sums["IMM"] += spread(iSeeds)
		sums["UBI"] += spread(ubiTr.Update(g))
	}
	for m := range sums {
		sums[m] /= float64(counts)
	}
	return sums
}

// throughputRun holds per-method throughputs in actions/second.
type throughputRun map[string]float64

// runThroughput measures all five methods on ds with the given window/slide
// sizes. SIC and IC are timed over the post-warm-up stream (truncated to a
// measurement span — throughput needs far fewer slides than quality); the
// recompute-per-slide baselines (Greedy, IMM, UBI) are timed at the sample
// points and converted to actions/second as L divided by the per-slide
// recompute time — the paper's §6.1 performance metric. Greedy is the
// paper's naive O(k·|U|)-evaluation variant (greedy.SelectNaive).
func runThroughput(ds Dataset, sc Scale, k, n, l int, beta float64) throughputRun {
	if span := n + max(10*l, 4000); span < len(ds.Actions) {
		ds.Actions = ds.Actions[:span]
	}
	out := throughputRun{}
	out["SIC"] = runFramework(ds, sim.SIC, k, n, l, beta, sc.Parallelism, sc.BatchSize).Throughput
	out["IC"] = runFramework(ds, sim.IC, k, n, l, beta, sc.Parallelism, sc.BatchSize).Throughput

	// Baselines: replay the window with a bare stream index, then time one
	// recompute per sample point.
	st := stream.New()
	ubiTr := ubi.New(k, ubi.Options{Seed: sc.Seed, Rounds: sc.MCRounds / 2})
	points := samplePoints(len(ds.Actions), n, l, sc.Samples)
	next := 0
	var tGreedy, tIMM, tUBI time.Duration
	samples := 0
	for i, a := range ds.Actions {
		if _, err := st.Ingest(a); err != nil {
			panic(err)
		}
		ws := a.ID - stream.ActionID(n) + 1
		st.Advance(ws)
		if next >= len(points) || i+1 != points[next] {
			continue
		}
		next++
		samples++

		start := time.Now()
		greedy.SelectNaive(st, ws, k, nil)
		tGreedy += time.Since(start)

		// Graph construction is part of both IMM's and UBI's per-slide
		// cost: the paper regenerates G_t for every update.
		start = time.Now()
		g := graph.FromWindow(st, ws)
		tGraph := time.Since(start)

		start = time.Now()
		imm.Select(g, k, imm.Options{Seed: sc.Seed})
		tIMM += time.Since(start) + tGraph

		start = time.Now()
		ubiTr.Update(g)
		tUBI += time.Since(start) + tGraph
	}
	perSlide := func(total time.Duration) float64 {
		if samples == 0 || total <= 0 {
			return 0
		}
		per := total.Seconds() / float64(samples)
		return float64(l) / per
	}
	out["Greedy"] = perSlide(tGreedy)
	out["IMM"] = perSlide(tIMM)
	out["UBI"] = perSlide(tUBI)
	return out
}

// shrink scales down a Scale by factor f for the expensive sweep
// experiments (IC with hundreds of checkpoints), preserving ratios.
func shrink(sc Scale, f int) Scale {
	out := sc
	out.Users = max(sc.Users/f, 200)
	out.StreamLen = max(sc.StreamLen/f, 2000)
	out.Window = max(sc.Window/f, 500)
	out.Slide = max(sc.Slide, 1)
	out.K = max(sc.K/2, 5)
	return out
}
