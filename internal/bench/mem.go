package bench

import (
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/gen"
	"repro/sim"
)

// The mem experiment measures what the tiered window state buys: for each
// dataset, one unbudgeted run (everything hot, the pre-tiering behavior)
// against one run under a constrained memory budget (a quarter of the
// unbudgeted run's peak hot-log bytes), spilling cold user logs to mmap'd
// segment files. Reported per run: the peak resident window-state estimate,
// its hot/cold log split, spill/fault traffic, the end-of-run heap delta
// (runtime.MemStats ground truth for the estimate), and ingest throughput —
// the cost side of the trade.
func init() {
	register(Experiment{
		ID:    "mem",
		Title: "Tiered window state: resident bytes under a memory budget",
		Run:   runMemBench,
	})
}

// memDataset is BURST, the memory-bound workload the tiering targets:
// deep discussion cascades (root probability 0.05, so chains average ~19
// levels and every action appends an entry to each ancestor's log) that are
// temporally local (short response distances, so a cascade completes and
// goes idle while still inside the window). Per-user contribution logs
// dominate the resident estimate here — unlike the Table 3 presets, where
// the per-action index does — and idle finished cascades are exactly what
// the spill policy evicts.
func memDataset(sc Scale) Dataset {
	users := max(sc.Users/2, 256)
	c := gen.Config{
		Name: "BURST", Users: users, Actions: sc.StreamLen,
		RootProb: 0.05, MeanRespDist: 0.015 * float64(sc.Window),
		ZipfSkew: 1.05, Seed: sc.Seed,
	}
	return Dataset{Name: c.Name, Users: c.Users, Actions: gen.Stream(c)}
}

// memRun summarizes one streaming run's memory trajectory.
type memRun struct {
	budget        int64
	peakResident  int64 // max RetainedBytesEstimate over samples
	finalResident int64
	peakHot       int64 // max hot-tier log bytes over samples
	finalHot      int64
	finalCold     int64
	spills        int64
	faults        int64
	segments      int
	heapDelta     int64 // GC'd HeapAlloc growth across the run
	throughput    float64
}

// runMemTracker streams ds through one tracker, sampling the tier stats at
// every slide boundary. budget <= 0 runs unbudgeted (no spill directory).
func runMemTracker(ds Dataset, sc Scale, budget int64) memRun {
	cfg := sim.Config{
		K: sc.K, WindowSize: sc.Window, Slide: sc.Slide, Beta: sc.Beta,
		Parallelism: sc.Parallelism, BatchSize: sc.BatchSize,
	}
	if budget > 0 {
		dir, err := os.MkdirTemp("", "simbench-spill-")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		cfg.SpillDir = dir
		cfg.MemoryBudgetBytes = budget
	}
	runtime.GC()
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	tr, err := sim.New(cfg)
	if err != nil {
		panic(err)
	}
	defer tr.Close()

	r := memRun{budget: budget}
	sample := func() {
		snap := tr.Snapshot()
		r.finalResident = snap.ResidentBytes
		r.finalHot = snap.HotLogBytes
		r.finalCold = snap.ColdLogBytes
		r.spills = snap.Spills
		r.faults = snap.ColdFaults
		r.segments = snap.ColdSegments
		r.peakResident = max(r.peakResident, snap.ResidentBytes)
		r.peakHot = max(r.peakHot, snap.HotLogBytes)
	}
	start := time.Now()
	for i, a := range ds.Actions {
		if err := tr.Process(a); err != nil {
			panic(err)
		}
		if (i+1)%sc.Slide == 0 {
			if err := tr.Flush(); err != nil {
				panic(err)
			}
			sample()
		}
	}
	elapsed := time.Since(start)
	sample()
	runtime.GC()
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	r.heapDelta = int64(m1.HeapAlloc) - int64(m0.HeapAlloc)
	if elapsed > 0 {
		r.throughput = float64(len(ds.Actions)) / elapsed.Seconds()
	}
	return r
}

func runMemBench(sc Scale) Table {
	t := Table{
		ID:    "mem",
		Title: "Resident window state: unbudgeted vs memory-budgeted (spilling) runs",
		Header: []string{
			"dataset", "mode", "budget", "peak resident", "peak hot",
			"final hot/cold", "spills", "faults", "segs", "heapΔ", "actions/s",
		},
		Notes: []string{
			"budget = peak unbudgeted hot-log bytes / 4; resident = stream RetainedBytesEstimate sampled at slide boundaries",
			"hot/cold = log-entry bytes resident in RAM vs spilled to cold segment files; heapΔ = GC'd HeapAlloc growth over the run",
			"JSON rows: bytes_per_op = peak resident bytes (ns/op and allocs/op deliberately 0: memory rows are not latency-guarded; tput rows guard the hot path)",
		},
	}
	kb := func(b int64) string { return fmt.Sprintf("%.1fKB", float64(b)/1024) }
	for _, ds := range append(Datasets(sc), memDataset(sc)) {
		ref := runMemTracker(ds, sc, 0)
		budget := max(ref.peakHot/4, 4096)
		bud := runMemTracker(ds, sc, budget)
		for _, row := range []struct {
			mode string
			r    memRun
		}{{"unbudgeted", ref}, {"budgeted", bud}} {
			t.Rows = append(t.Rows, []string{
				ds.Name, row.mode, kb(row.r.budget), kb(row.r.peakResident), kb(row.r.peakHot),
				kb(row.r.finalHot) + "/" + kb(row.r.finalCold),
				i0(int(row.r.spills)), i0(int(row.r.faults)), i0(row.r.segments),
				kb(row.r.heapDelta), f1(row.r.throughput),
			})
			// Memory rows carry bytes only: a 0 ns/op / 0 allocs/op record is
			// never latency-flagged by CompareSnapshots (base <= 0 skips).
			record(Record{
				Experiment:    "mem",
				Name:          ds.Name + "/" + row.mode,
				BytesPerOp:    float64(row.r.peakResident),
				ActionsPerSec: row.r.throughput,
			})
			record(Record{
				Experiment: "mem",
				Name:       ds.Name + "/" + row.mode + "/hot-log",
				BytesPerOp: float64(row.r.peakHot),
			})
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: peak resident -%0.0f%%, peak hot log -%0.0f%% under a %s budget (spilled %d logs across %d segments, %d fault-ins)",
			ds.Name,
			100*(1-float64(bud.peakResident)/float64(ref.peakResident)),
			100*(1-float64(bud.peakHot)/float64(ref.peakHot)),
			kb(budget), bud.spills, bud.segments, bud.faults))
	}
	return t
}
