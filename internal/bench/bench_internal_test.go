package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/sim"
)

func TestSamplePoints(t *testing.T) {
	pts := samplePoints(1000, 200, 50, 3)
	if len(pts) == 0 {
		t.Fatal("no sample points")
	}
	if pts[0] < 200 {
		t.Fatalf("first point %d inside warm-up", pts[0])
	}
	for i, p := range pts {
		if p%50 != 0 {
			t.Fatalf("point %d not on a slide boundary", p)
		}
		if i > 0 && p <= pts[i-1] {
			t.Fatalf("points not increasing: %v", pts)
		}
		if p > 1000 {
			t.Fatalf("point %d beyond stream", p)
		}
	}
	// A stream shorter than the window still yields a valid point.
	pts = samplePoints(100, 200, 50, 2)
	if len(pts) == 0 || pts[0] > 100 {
		t.Fatalf("short stream points = %v", pts)
	}
}

func TestDatasetsShape(t *testing.T) {
	sc := ScaleSmoke()
	dss := Datasets(sc)
	if len(dss) != 4 {
		t.Fatalf("datasets = %d, want 4", len(dss))
	}
	names := []string{"Reddit", "Twitter", "SYN-O", "SYN-N"}
	for i, ds := range dss {
		if ds.Name != names[i] {
			t.Errorf("dataset %d = %s, want %s", i, ds.Name, names[i])
		}
		if len(ds.Actions) != sc.StreamLen {
			t.Errorf("%s: %d actions, want %d", ds.Name, len(ds.Actions), sc.StreamLen)
		}
	}
}

func TestRunFrameworkProducesMetrics(t *testing.T) {
	sc := ScaleSmoke()
	ds := Datasets(sc)[3] // SYN-N is the cheapest (short distances)
	m := runFramework(ds, sim.SIC, sc.K, sc.Window, sc.Slide, 0.2, 1, 1)
	if m.AvgValue <= 0 {
		t.Errorf("AvgValue = %v", m.AvgValue)
	}
	if m.AvgCheckpoints <= 0 {
		t.Errorf("AvgCheckpoints = %v", m.AvgCheckpoints)
	}
	if m.Throughput <= 0 {
		t.Errorf("Throughput = %v", m.Throughput)
	}
}

func TestICVsSICMetricShapes(t *testing.T) {
	sc := ScaleSmoke()
	ds := Datasets(sc)[3]
	ic := runFramework(ds, sim.IC, sc.K, sc.Window, sc.Slide, 0.2, 1, 1)
	sic := runFramework(ds, sim.SIC, sc.K, sc.Window, sc.Slide, 0.2, 1, 1)
	// Fig 6 shape: IC pins ceil(N/L) checkpoints, SIC keeps far fewer.
	wantIC := float64((sc.Window + sc.Slide - 1) / sc.Slide)
	if ic.AvgCheckpoints < wantIC-1 {
		t.Errorf("IC checkpoints = %.1f, want ≈ %.0f", ic.AvgCheckpoints, wantIC)
	}
	if sic.AvgCheckpoints >= ic.AvgCheckpoints/2 {
		t.Errorf("SIC checkpoints %.1f not clearly below IC %.1f", sic.AvgCheckpoints, ic.AvgCheckpoints)
	}
	// Fig 5 shape: IC quality >= SIC quality within slack; values comparable.
	if sic.AvgValue > ic.AvgValue*1.05 {
		t.Errorf("SIC value %.1f above IC %.1f", sic.AvgValue, ic.AvgValue)
	}
	if sic.AvgValue < 0.5*ic.AvgValue {
		t.Errorf("SIC value %.1f below half of IC %.1f", sic.AvgValue, ic.AvgValue)
	}
	// Fig 7 shape: SIC faster than IC.
	if sic.Throughput <= ic.Throughput {
		t.Errorf("SIC throughput %.0f <= IC %.0f", sic.Throughput, ic.Throughput)
	}
}

func TestRunQualityCoversAllMethods(t *testing.T) {
	sc := ScaleSmoke()
	sc.MCRounds = 50
	sc.Samples = 1
	ds := Datasets(sc)[3]
	q := runQuality(ds, sc, 5)
	for _, m := range methodNames {
		if q[m] <= 0 {
			t.Errorf("method %s spread = %v", m, q[m])
		}
	}
	// Loose Fig 8 shape on the smoke scale: SIC within half of Greedy.
	if q["SIC"] < 0.5*q["Greedy"] {
		t.Errorf("SIC %.1f below half of Greedy %.1f", q["SIC"], q["Greedy"])
	}
}

func TestRunThroughputCoversAllMethods(t *testing.T) {
	sc := ScaleSmoke()
	sc.MCRounds = 50
	sc.Samples = 1
	ds := Datasets(sc)[3]
	tp := runThroughput(ds, sc, 5, sc.Window, sc.Slide, 0.2)
	for _, m := range methodNames {
		if tp[m] <= 0 {
			t.Errorf("method %s throughput = %v", m, tp[m])
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"abl-fastpath", "abl-greedy", "abl-oracle", "fig10", "fig11", "fig12", "fig2-4", "fig5", "fig6", "fig7", "fig8", "fig9", "mem", "par", "query", "table2", "table3", "tput"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("experiments = %d, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
	}
	if _, ok := Lookup("fig5"); !ok {
		t.Error("Lookup(fig5) failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup(nope) succeeded")
	}
}

func TestTputRecordsJSONMetrics(t *testing.T) {
	ResetMetrics()
	defer ResetMetrics()
	sc := ScaleSmoke()
	var tab bytes.Buffer
	if err := RunMeasured("tput", sc, &tab); err != nil {
		t.Fatal(err)
	}
	recs := Metrics()
	// 4 per-config rows + 1 whole-experiment total.
	if len(recs) != 5 {
		t.Fatalf("records = %d, want 5: %+v", len(recs), recs)
	}
	streaming := 0
	for _, r := range recs {
		if r.Experiment != "tput" {
			t.Errorf("record experiment = %q, want tput", r.Experiment)
		}
		if r.NsPerOp <= 0 || r.AllocsPerOp <= 0 || r.BytesPerOp <= 0 {
			t.Errorf("record %q has non-positive metrics: %+v", r.Name, r)
		}
		if r.Name != "total" {
			streaming++
			if r.ActionsPerSec <= 0 {
				t.Errorf("streaming record %q missing actions/sec: %+v", r.Name, r)
			}
		}
	}
	if streaming != 4 {
		t.Errorf("streaming records = %d, want 4", streaming)
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot does not round-trip: %v\n%s", err, buf.String())
	}
	if snap.GoVersion == "" || snap.NumCPU < 1 || len(snap.Records) != len(recs) {
		t.Fatalf("snapshot incomplete: %+v", snap)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := Run("nope", ScaleSmoke(), &bytes.Buffer{}); err == nil {
		t.Fatal("expected error")
	}
	if err := RunMeasured("nope", ScaleSmoke(), &bytes.Buffer{}); err == nil {
		t.Fatal("expected error from RunMeasured")
	}
}

func TestTable3Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table3", ScaleSmoke(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, ds := range []string{"Reddit", "Twitter", "SYN-O", "SYN-N"} {
		if !strings.Contains(out, ds) {
			t.Errorf("table3 output missing %s:\n%s", ds, out)
		}
	}
}

func TestTable2Runs(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table2", ScaleSmoke(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, o := range []string{"SieveStreaming", "ThresholdStream", "BlogWatch", "MkC"} {
		if !strings.Contains(out, o) {
			t.Errorf("table2 output missing %s:\n%s", o, out)
		}
	}
}

func TestTableFprintAlignment(t *testing.T) {
	tab := Table{
		ID: "x", Title: "t",
		Header: []string{"a", "longcol"},
		Rows:   [][]string{{"wide-cell", "1"}},
		Notes:  []string{"n1"},
	}
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	if !strings.Contains(out, "== x: t ==") || !strings.Contains(out, "note: n1") {
		t.Fatalf("bad render:\n%s", out)
	}
}
