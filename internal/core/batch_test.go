package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/oracle"
	"repro/internal/stream"
)

func batchTestActions(seed int64, n, users int) []stream.Action {
	rng := rand.New(rand.NewSource(seed))
	out := make([]stream.Action, n)
	for i := range out {
		a := stream.Action{ID: stream.ActionID(i + 1), User: stream.UserID(rng.Intn(users)), Parent: stream.NoParent}
		if i > 0 && rng.Float64() < 0.6 {
			back := rng.Intn(min(i, 50)) + 1
			a.Parent = stream.ActionID(i + 1 - back)
		}
		out[i] = a
	}
	return out
}

// TestProcessBatchStructureMatchesProcess: under IC (no value-dependent
// pruning), batched processing must reproduce the serial run's checkpoint
// structure, window position and processed count exactly — batching changes
// oracle element granularity, never checkpoint maintenance.
func TestProcessBatchStructureMatchesProcess(t *testing.T) {
	cfg := Config{K: 5, N: 200, L: 20, Oracle: oracle.NewFactory(oracle.SieveStreaming, 0.1, nil)}
	actions := batchTestActions(3, 900, 40)
	for _, batchSize := range []int{1, 7, 20, 64} {
		serial, batched := MustNew(cfg), MustNew(cfg)
		for _, a := range actions {
			if err := serial.Process(a); err != nil {
				t.Fatal(err)
			}
		}
		for lo := 0; lo < len(actions); lo += batchSize {
			hi := min(lo+batchSize, len(actions))
			if err := batched.ProcessBatch(actions[lo:hi]); err != nil {
				t.Fatal(err)
			}
		}
		if s, b := serial.CheckpointStarts(), batched.CheckpointStarts(); !reflect.DeepEqual(s, b) {
			t.Fatalf("batch=%d: checkpoint starts diverged: serial %v batch %v", batchSize, s, b)
		}
		if s, b := serial.WindowStart(), batched.WindowStart(); s != b {
			t.Fatalf("batch=%d: window start diverged: %d vs %d", batchSize, s, b)
		}
		if s, b := serial.Processed(), batched.Processed(); s != b {
			t.Fatalf("batch=%d: processed diverged: %d vs %d", batchSize, s, b)
		}
		// Coarser elements must not change what the answering checkpoint
		// covers; its value is the same objective over the same suffix
		// reached through a different admission interleaving, so it stays
		// within the oracle's guarantee band rather than bit-equal. Sanity:
		// both runs produce a non-trivial solution.
		if serial.Value() <= 0 || batched.Value() <= 0 {
			t.Fatalf("batch=%d: degenerate values: serial %v batch %v", batchSize, serial.Value(), batched.Value())
		}
	}
}

// TestProcessBatchSingleIsExact: a 1-action batch must take the legacy path
// bit-exactly, Latest fast path included.
func TestProcessBatchSingleIsExact(t *testing.T) {
	cfg := Config{K: 4, N: 100, L: 10, Beta: 0.1, Sparse: true,
		Oracle: oracle.NewFactory(oracle.SieveStreaming, 0.1, nil)}
	actions := batchTestActions(5, 400, 25)
	serial, batched := MustNew(cfg), MustNew(cfg)
	for _, a := range actions {
		if err := serial.Process(a); err != nil {
			t.Fatal(err)
		}
		if err := batched.ProcessBatch([]stream.Action{a}); err != nil {
			t.Fatal(err)
		}
	}
	if s, b := serial.Value(), batched.Value(); s != b {
		t.Fatalf("values diverged: %v vs %v", s, b)
	}
	if s, b := serial.Seeds(), batched.Seeds(); !reflect.DeepEqual(s, b) {
		t.Fatalf("seeds diverged: %v vs %v", s, b)
	}
	if s, b := serial.Stats(), batched.Stats(); s != b {
		t.Fatalf("stats diverged: %+v vs %+v", s, b)
	}
}

// TestProcessBatchSIC: SIC's retained Λ[x0] and pruning still hold under
// batching — checkpoint count stays logarithmic and the answer non-trivial.
func TestProcessBatchSIC(t *testing.T) {
	cfg := Config{K: 5, N: 200, L: 10, Beta: 0.2, Sparse: true,
		Oracle: oracle.NewFactory(oracle.SieveStreaming, 0.2, nil)}
	f := MustNew(cfg)
	actions := batchTestActions(9, 1200, 30)
	for lo := 0; lo < len(actions); lo += 25 {
		hi := min(lo+25, len(actions))
		if err := f.ProcessBatch(actions[lo:hi]); err != nil {
			t.Fatal(err)
		}
	}
	if f.Value() <= 0 || len(f.Seeds()) == 0 {
		t.Fatalf("degenerate SIC answer: value %v seeds %v", f.Value(), f.Seeds())
	}
	if got, dense := f.Checkpoints(), cfg.N/cfg.L; got >= dense {
		t.Fatalf("SIC kept %d checkpoints, dense IC would keep %d — pruning inactive", got, dense)
	}
	if err := f.ProcessBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}
