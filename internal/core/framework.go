// Package core implements the paper's primary contribution: the Influential
// Checkpoints (IC, §4) and Sparse Influential Checkpoints (SIC, §5)
// frameworks for continuous Stream Influence Maximization over sliding
// windows.
//
// Both frameworks transform the sliding-window problem into a collection of
// append-only problems: a checkpoint created at time s runs a streaming
// submodular oracle over every action from s onward, so when the window
// eventually begins at s the checkpoint's solution is exactly an
// ε-approximate answer for that window (Theorem 2). IC keeps one checkpoint
// per window slide (⌈N/L⌉ of them); SIC prunes checkpoints whose value is
// sandwiched within a (1−β) band of a predecessor (Algorithm 2), keeping
// O(log N / β) of them while guaranteeing an ε(1−β)/2 approximation
// (Theorems 3–5).
package core

import (
	"errors"
	"fmt"

	"repro/internal/oracle"
	"repro/internal/stream"
)

// Config parametrizes a Framework. The zero value is invalid; all fields
// except Beta and Sparse are mandatory.
type Config struct {
	// K is the seed-set cardinality constraint of the SIM query.
	K int
	// N is the sliding window size in actions.
	N int
	// L is the number of actions per window slide (checkpoint spacing,
	// paper §5.3). Defaults to 1 when zero.
	L int
	// Beta is SIC's pruning band in (0, 1); larger values keep fewer
	// checkpoints at a larger approximation loss. Ignored when Sparse is
	// false.
	Beta float64
	// Oracle constructs the checkpoint oracle (paper Table 2).
	Oracle oracle.Factory
	// Sparse selects SIC (true) or IC (false).
	Sparse bool
	// ByTime switches from the paper's sequence-based window to a
	// time-based one: action IDs are treated as wall-clock timestamps (with
	// gaps allowed), N and L become durations in the same unit, and a new
	// checkpoint opens once L time units passed since the previous one.
	// Window expiry is timestamp-based in both modes, so all approximation
	// guarantees carry over unchanged — the checkpoints still cover exactly
	// the suffixes of the current window.
	ByTime bool
}

func (c Config) validate() error {
	switch {
	case c.K < 1:
		return errors.New("core: K must be >= 1")
	case c.N < 1:
		return errors.New("core: N must be >= 1")
	case c.L < 0 || c.L > c.N:
		return fmt.Errorf("core: L must be in [1, N], got %d", c.L)
	case c.Oracle == nil:
		return errors.New("core: Oracle factory is required")
	case c.Sparse && (c.Beta <= 0 || c.Beta >= 1):
		return fmt.Errorf("core: Beta must be in (0, 1) for SIC, got %v", c.Beta)
	}
	return nil
}

// checkpoint pairs an oracle with the time of the first action it has
// observed; it is the Λ_t[x] of the paper, covering the suffix of the window
// that begins at start.
type checkpoint struct {
	start  stream.ActionID
	oracle oracle.Oracle
}

// Framework runs either IC or SIC over a social stream. It is not safe for
// concurrent use.
type Framework struct {
	cfg Config
	st  *stream.Stream

	// cps is ordered by ascending start. Under SIC, cps[0] may be expired
	// (start before the window start): the retained Λ[x0] of Algorithm 2
	// that upper-bounds the optimum of the current window.
	cps []*checkpoint

	processed   int64 // actions ingested
	lastCpStart stream.ActionID

	// Batch-feed scratch (ProcessBatch): the distinct contributors of the
	// current batch in first-touch order, with the per-contributor gain
	// metadata that keeps the oracles' O(1) fast path alive under batching.
	batchSeen    map[stream.UserID]int // contributor -> index into batchContrib
	batchContrib []stream.UserID
	batchGains   []batchGain

	// Cumulative counters for the experiment harness.
	cpCreated int64
	cpDeleted int64
	cpSamples int64 // sum over actions of live checkpoint count
	elemFed   int64 // oracle elements fed (the O(dN) term of §4.2)
}

// New validates cfg and returns an empty framework.
func New(cfg Config) (*Framework, error) {
	if cfg.L == 0 {
		cfg.L = 1
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Framework{cfg: cfg, st: stream.New()}, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(cfg Config) *Framework {
	f, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Config returns the framework's configuration (with defaults applied).
func (f *Framework) Config() Config { return f.cfg }

// Stream exposes the underlying stream index, used by the evaluation
// harness to build the window's influence graph. Callers must not mutate it.
func (f *Framework) Stream() *stream.Stream { return f.st }

// Processed returns the number of ingested actions.
func (f *Framework) Processed() int64 { return f.processed }

// WindowStart returns the ID of the first action of the current window W_t,
// i.e. t−N+1 clamped to the first action.
func (f *Framework) WindowStart() stream.ActionID {
	ws := f.st.Last() - stream.ActionID(f.cfg.N) + 1
	if len(f.cps) > 0 && ws < f.cps[0].start {
		ws = f.cps[0].start
	}
	return ws
}

// Process ingests one action and performs the checkpoint maintenance of
// Algorithm 1 (IC) or Algorithm 2 (SIC).
func (f *Framework) Process(a stream.Action) error {
	d, err := f.st.Ingest(a)
	if err != nil {
		return err
	}

	// Create a checkpoint on the first action of each slide batch
	// (Algorithm 1 line 2; §5.3 for L > 1). In time-based mode a batch is L
	// time units rather than L actions.
	create := false
	if f.cfg.ByTime {
		create = f.processed == 0 || a.ID >= f.lastCpStart+stream.ActionID(f.cfg.L)
	} else {
		create = f.processed%int64(f.cfg.L) == 0
	}
	if create {
		f.cps = append(f.cps, &checkpoint{start: a.ID, oracle: f.cfg.Oracle(f.cfg.K)})
		f.lastCpStart = a.ID
		f.cpCreated++
	}
	f.processed++

	// Feed the action to every checkpoint through the Set-Stream Mapping
	// (§4.2): each contributor u of the action re-emits (u, I_s(u)) with the
	// influence set evaluated for the checkpoint's own suffix. The suffixes
	// are nested, so one recency-sorted materialization per contributor
	// serves every checkpoint as a prefix (stream.InfluenceRecency).
	oldest := f.cps[0].start
	for _, u := range d.Contributors {
		list := f.st.InfluenceRecency(u, oldest)
		for _, cp := range f.cps {
			prefix := stream.PrefixFor(list, cp.start)
			if len(prefix) == 0 {
				continue
			}
			cp.oracle.Process(oracle.Element{
				User: u,
				// The current action's performer is the only member this
				// element can have gained since u's previous element on
				// this checkpoint — the O(1) seed-update fast path.
				Latest:      a.User,
				LatestValid: true,
				Size:        len(prefix),
				ForEach: func(visit func(stream.UserID) bool) {
					for _, c := range prefix {
						if !visit(c.V) {
							return
						}
					}
				},
			})
			f.elemFed++
		}
	}

	// Expire checkpoints that no longer cover a suffix of the window.
	ws := a.ID - stream.ActionID(f.cfg.N) + 1
	f.expire(ws)

	if f.cfg.Sparse {
		f.prune()
	}

	// Release stream state older than the oldest checkpoint; under SIC the
	// retained Λ[x0] keeps the horizon slightly behind the window start.
	if len(f.cps) > 0 {
		h := f.cps[0].start
		if ws < h {
			h = ws
		}
		f.st.Advance(h)
	}

	f.cpSamples += int64(len(f.cps))
	return nil
}

// expire removes checkpoints whose start precedes the window start. IC
// deletes all of them; SIC retains the newest expired checkpoint as Λ[x0]
// (Algorithm 2 lines 21–23: Λ[x0] is deleted only once its successor also
// expires).
func (f *Framework) expire(windowStart stream.ActionID) {
	n := 0
	for n < len(f.cps) && f.cps[n].start < windowStart {
		n++
	}
	if f.cfg.Sparse && n > 0 {
		n-- // keep the newest expired checkpoint as Λ[x0]
	}
	if n > 0 {
		f.cpDeleted += int64(n)
		f.cps = append(f.cps[:0], f.cps[n:]...)
	}
}

// prune is the SIC deletion rule (Algorithm 2 lines 9–20): starting from
// each surviving checkpoint x_i, delete the following checkpoints x_j while
// both Λ[x_j] and its successor stay within the (1−β) band of Λ[x_i]; the
// successor then approximates the deleted ones with ratio ε(1−β)/2
// (Lemma 2).
func (f *Framework) prune() {
	band := 1 - f.cfg.Beta
	for i := 0; i < len(f.cps); i++ {
		vi := f.cps[i].oracle.Value()
		for i+2 < len(f.cps) &&
			f.cps[i+1].oracle.Value() >= band*vi &&
			f.cps[i+2].oracle.Value() >= band*vi {
			f.cps = append(f.cps[:i+1], f.cps[i+2:]...)
			f.cpDeleted++
		}
	}
}

// answer returns the checkpoint answering the SIM query: the oldest
// checkpoint that covers at most the current window (Λ[x1]; under IC this is
// Λ[1]). During warm-up, when even the oldest checkpoint covers less than N
// actions, that oldest checkpoint is the exact choice.
func (f *Framework) answer() *checkpoint {
	ws := f.st.Last() - stream.ActionID(f.cfg.N) + 1
	for _, cp := range f.cps {
		if cp.start >= ws {
			return cp
		}
	}
	if len(f.cps) > 0 {
		return f.cps[len(f.cps)-1]
	}
	return nil
}

// Seeds returns the current SIM solution: at most K users. The returned
// slice is owned by the framework and valid until the next Process call.
func (f *Framework) Seeds() []stream.UserID {
	if cp := f.answer(); cp != nil {
		return cp.oracle.Seeds()
	}
	return nil
}

// Value returns the influence value f(I_t(S)) of the current solution as
// maintained by the answering checkpoint's oracle.
func (f *Framework) Value() float64 {
	if cp := f.answer(); cp != nil {
		return cp.oracle.Value()
	}
	return 0
}

// Checkpoints returns the number of live checkpoints (including SIC's
// retained Λ[x0]).
func (f *Framework) Checkpoints() int { return len(f.cps) }

// CheckpointStarts returns the start times of the live checkpoints in
// ascending order; used by tests asserting Algorithm 2's structure.
func (f *Framework) CheckpointStarts() []stream.ActionID {
	out := make([]stream.ActionID, len(f.cps))
	for i, cp := range f.cps {
		out[i] = cp.start
	}
	return out
}

// CheckpointValues returns the oracle values of the live checkpoints in
// ascending start order.
func (f *Framework) CheckpointValues() []float64 {
	out := make([]float64, len(f.cps))
	for i, cp := range f.cps {
		out[i] = cp.oracle.Value()
	}
	return out
}

// FrameworkStats aggregates maintenance counters for the harness.
type FrameworkStats struct {
	Processed      int64
	Created        int64
	Deleted        int64
	AvgCheckpoints float64
	ElementsFed    int64
}

// Stats returns cumulative maintenance counters.
func (f *Framework) Stats() FrameworkStats {
	s := FrameworkStats{
		Processed:   f.processed,
		Created:     f.cpCreated,
		Deleted:     f.cpDeleted,
		ElementsFed: f.elemFed,
	}
	if f.processed > 0 {
		s.AvgCheckpoints = float64(f.cpSamples) / float64(f.processed)
	}
	return s
}
