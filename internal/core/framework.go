// Package core implements the paper's primary contribution: the Influential
// Checkpoints (IC, §4) and Sparse Influential Checkpoints (SIC, §5)
// frameworks for continuous Stream Influence Maximization over sliding
// windows.
//
// Both frameworks transform the sliding-window problem into a collection of
// append-only problems: a checkpoint created at time s runs a streaming
// submodular oracle over every action from s onward, so when the window
// eventually begins at s the checkpoint's solution is exactly an
// ε-approximate answer for that window (Theorem 2). IC keeps one checkpoint
// per window slide (⌈N/L⌉ of them); SIC prunes checkpoints whose value is
// sandwiched within a (1−β) band of a predecessor (Algorithm 2), keeping
// O(log N / β) of them while guaranteeing an ε(1−β)/2 approximation
// (Theorems 3–5).
//
// The per-action feed is checkpoint-sharded: each contributor's element is
// materialized once as a shared influence-set view, and when Config.Pool is
// set, the (checkpoint × oracle-shard) cells of every live checkpoint whose
// oracle implements oracle.Sharded are flattened into one pool.Run call —
// parallel width Σ_cp shards(cp), results bit-identical to the serial path.
// ProcessBatch ingests a whole slice of actions at once, feeding each
// checkpoint one element per distinct contributor of the batch and running
// window maintenance once per batch.
//
// A Framework is single-writer: it is not safe for concurrent use, and the
// Pool only fans out the internals of one Process call. Concurrent serving
// is layered on top by internal/server, which owns each Framework (via
// sim.Tracker) from one ingest goroutine and publishes immutable snapshots
// for readers.
package core

import (
	"errors"
	"fmt"

	"repro/internal/oracle"
	"repro/internal/pool"
	"repro/internal/stream"
)

// Config parametrizes a Framework. The zero value is invalid; all fields
// except Beta and Sparse are mandatory.
type Config struct {
	// K is the seed-set cardinality constraint of the SIM query.
	K int
	// N is the sliding window size in actions.
	N int
	// L is the number of actions per window slide (checkpoint spacing,
	// paper §5.3). Defaults to 1 when zero.
	L int
	// Beta is SIC's pruning band in (0, 1); larger values keep fewer
	// checkpoints at a larger approximation loss. Ignored when Sparse is
	// false.
	Beta float64
	// Oracle constructs the checkpoint oracle (paper Table 2).
	Oracle oracle.Factory
	// Sparse selects SIC (true) or IC (false).
	Sparse bool
	// ByTime switches from the paper's sequence-based window to a
	// time-based one: action IDs are treated as wall-clock timestamps (with
	// gaps allowed), N and L become durations in the same unit, and a new
	// checkpoint opens once L time units passed since the previous one.
	// Window expiry is timestamp-based in both modes, so all approximation
	// guarantees carry over unchanged — the checkpoints still cover exactly
	// the suffixes of the current window.
	ByTime bool
	// Pool, when non-nil, parallelizes the per-action fan-out: each
	// contributor's element is offered to the shards of every live
	// checkpoint whose oracle implements oracle.Sharded through one Pool.Run
	// call, so the parallel width is the sum of all checkpoints' shard
	// counts. Shards of one oracle — and distinct checkpoints — never share
	// mutable state, so results are bit-identical to the serial path. A nil
	// Pool keeps the fan-out serial. The pool is shared, not owned: the
	// framework never closes it.
	Pool *pool.Pool
	// UsersHint pre-sizes the stream index's per-user maps for the expected
	// number of distinct users (0 = grow incrementally).
	UsersHint int
	// Cold, when non-nil together with a positive ColdBudget, attaches a
	// cold tier to the stream index: expired-but-retained contribution logs
	// spill to immutable segment files at the window's expiry boundary
	// whenever resident log bytes exceed the budget, and fault back in on
	// demand. Results are bit-identical with or without a cold tier; only
	// memory residency and I/O change. Like Pool, the store is runtime
	// environment, not logical configuration — it is shared, never
	// serialized, and must outlive the framework (the owner closes it).
	Cold stream.ColdStore
	// ColdBudget is the resident hot-log byte budget that triggers spilling
	// (0 = never spill).
	ColdBudget int64
}

func (c Config) validate() error {
	switch {
	case c.K < 1:
		return errors.New("core: K must be >= 1")
	case c.N < 1:
		return errors.New("core: N must be >= 1")
	case c.L < 0 || c.L > c.N:
		return fmt.Errorf("core: L must be in [1, N], got %d", c.L)
	case c.Oracle == nil:
		return errors.New("core: Oracle factory is required")
	case c.Sparse && (c.Beta <= 0 || c.Beta >= 1):
		return fmt.Errorf("core: Beta must be in (0, 1) for SIC, got %v", c.Beta)
	}
	return nil
}

// checkpoint pairs an oracle with the time of the first action it has
// observed; it is the Λ_t[x] of the paper, covering the suffix of the window
// that begins at start. sharded caches the oracle's Sharded interface
// (nil when unsupported) so the hot path never repeats the type assertion.
type checkpoint struct {
	start   stream.ActionID
	oracle  oracle.Oracle
	sharded oracle.Sharded
}

// newCheckpoint builds a checkpoint for start, detecting shard support once.
func newCheckpoint(start stream.ActionID, orc oracle.Oracle) *checkpoint {
	cp := &checkpoint{start: start, oracle: orc}
	cp.sharded, _ = orc.(oracle.Sharded)
	return cp
}

// feedUnit is one (checkpoint-oracle, shard) cell of an element's parallel
// fan-out. Element is embedded by value: the unit slice is reused scratch,
// and building a unit allocates nothing.
type feedUnit struct {
	orc   oracle.Sharded
	shard int
	e     oracle.Element
}

// minParallelUnits is the fan-out width below which the shard handoffs cost
// more than they parallelize and the feed stays on the caller.
const minParallelUnits = 8

// Framework runs either IC or SIC over a social stream. It is not safe for
// concurrent use.
type Framework struct {
	cfg Config
	st  *stream.Stream

	// cps is ordered by ascending start. Under SIC, cps[0] may be expired
	// (start before the window start): the retained Λ[x0] of Algorithm 2
	// that upper-bounds the optimum of the current window.
	cps []*checkpoint

	processed   int64 // actions ingested
	lastCpStart stream.ActionID

	// Batch-feed scratch (ProcessBatch): the distinct contributors of the
	// current batch in first-touch order, with the per-contributor gain
	// metadata that keeps the oracles' O(1) fast path alive under batching.
	batchSeen    map[stream.UserID]int // contributor -> index into batchContrib
	batchContrib []stream.UserID
	batchGains   []batchGain

	// Parallel fan-out machinery: pool (nil = serial), the reused work-unit
	// scratch, and the one cached closure handed to pool.Run — allocated at
	// construction so the per-action feed performs no heap allocation.
	pool   *pool.Pool
	units  []feedUnit
	feedFn func(i int)

	// Cumulative counters for the experiment harness.
	cpCreated int64
	cpDeleted int64
	cpSamples int64 // sum over actions of live checkpoint count
	elemFed   int64 // oracle elements fed (the O(dN) term of §4.2)
}

// New validates cfg and returns an empty framework.
func New(cfg Config) (*Framework, error) {
	if cfg.L == 0 {
		cfg.L = 1
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &Framework{cfg: cfg, st: stream.NewSized(cfg.UsersHint), pool: cfg.Pool}
	f.st.SetCold(cfg.Cold, cfg.ColdBudget)
	f.feedFn = func(i int) {
		u := &f.units[i]
		u.orc.FeedShard(u.shard, u.e)
	}
	return f, nil
}

// MustNew is New for static configurations known to be valid.
func MustNew(cfg Config) *Framework {
	f, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return f
}

// Config returns the framework's configuration (with defaults applied).
func (f *Framework) Config() Config { return f.cfg }

// Stream exposes the underlying stream index, used by the evaluation
// harness to build the window's influence graph. Callers must not mutate it.
func (f *Framework) Stream() *stream.Stream { return f.st }

// Processed returns the number of ingested actions.
func (f *Framework) Processed() int64 { return f.processed }

// WindowStart returns the ID of the first action of the current window W_t,
// i.e. t−N+1 clamped to the first action.
func (f *Framework) WindowStart() stream.ActionID {
	ws := f.st.Last() - stream.ActionID(f.cfg.N) + 1
	if len(f.cps) > 0 && ws < f.cps[0].start {
		ws = f.cps[0].start
	}
	return ws
}

// Process ingests one action and performs the checkpoint maintenance of
// Algorithm 1 (IC) or Algorithm 2 (SIC).
func (f *Framework) Process(a stream.Action) error {
	d, err := f.st.Ingest(a)
	if err != nil {
		return err
	}

	// Create a checkpoint on the first action of each slide batch
	// (Algorithm 1 line 2; §5.3 for L > 1). In time-based mode a batch is L
	// time units rather than L actions.
	create := false
	if f.cfg.ByTime {
		create = f.processed == 0 || a.ID >= f.lastCpStart+stream.ActionID(f.cfg.L)
	} else {
		create = f.processed%int64(f.cfg.L) == 0
	}
	if create {
		f.cps = append(f.cps, newCheckpoint(a.ID, f.cfg.Oracle(f.cfg.K)))
		f.lastCpStart = a.ID
		f.cpCreated++
	}
	f.processed++

	// Feed the action to every checkpoint through the Set-Stream Mapping
	// (§4.2): each contributor u of the action re-emits (u, I_s(u)) with the
	// influence set evaluated for the checkpoint's own suffix. The suffixes
	// are nested, so one recency-sorted materialization per contributor
	// serves every checkpoint as a prefix (stream.InfluenceRecency). The
	// current action's performer is the only member an element can have
	// gained since u's previous element on the same checkpoint — the O(1)
	// seed-update fast path (Latest).
	for _, u := range d.Contributors {
		f.feedContributor(u, a.User, true)
	}

	// Expire checkpoints that no longer cover a suffix of the window.
	ws := a.ID - stream.ActionID(f.cfg.N) + 1
	f.expire(ws)

	if f.cfg.Sparse {
		f.prune()
	}

	// Release stream state older than the oldest checkpoint; under SIC the
	// retained Λ[x0] keeps the horizon slightly behind the window start.
	if len(f.cps) > 0 {
		h := f.cps[0].start
		if ws < h {
			h = ws
		}
		f.st.Advance(h)
	}

	f.cpSamples += int64(len(f.cps))
	return nil
}

// feedContributor emits one contributor's element to every live checkpoint:
// the per-action hot path of both frameworks. The influence set is
// materialized once (a view into the stream's recency log) and sliced per
// checkpoint; with a pool, the (checkpoint × oracle-shard) cells are
// flattened into f.units and executed by one pool.Run call, giving parallel
// width Σ_cp shards(cp) — wide even under SIC, where a single oracle holds
// only O(log k / β) instances. Nothing on this path allocates in steady
// state: elements are values over a shared prefix view, the unit slice is
// reused scratch, and feedFn is the one closure cached at construction.
//
// Bit-identity with the serial path holds because the serial part of each
// oracle's element (Prepare: counters, grid retuning) runs here in
// checkpoint order, and the flattened FeedShard cells touch pairwise
// disjoint state (distinct checkpoints are distinct oracles; shards of one
// oracle are disjoint by the Sharded contract).
func (f *Framework) feedContributor(u, latest stream.UserID, latestValid bool) {
	list := f.st.InfluenceRecency(u, f.cps[0].start)
	if len(list) == 0 {
		return
	}
	parallel := f.pool.Workers() > 1
	f.units = f.units[:0]
	for _, cp := range f.cps {
		prefix := stream.PrefixFor(list, cp.start)
		if len(prefix) == 0 {
			continue
		}
		e := oracle.Element{User: u, Latest: latest, LatestValid: latestValid, Prefix: prefix}
		f.elemFed++
		if !parallel || cp.sharded == nil {
			cp.oracle.Process(e)
			continue
		}
		if !cp.sharded.Prepare(e) {
			continue
		}
		for s, n := 0, cp.sharded.Shards(); s < n; s++ {
			f.units = append(f.units, feedUnit{orc: cp.sharded, shard: s, e: e})
		}
	}
	if n := len(f.units); n > 0 {
		if n >= minParallelUnits {
			f.pool.Run(n, f.feedFn)
		} else {
			for i := 0; i < n; i++ {
				f.feedFn(i)
			}
		}
	}
}

// expire removes checkpoints whose start precedes the window start. IC
// deletes all of them; SIC retains the newest expired checkpoint as Λ[x0]
// (Algorithm 2 lines 21–23: Λ[x0] is deleted only once its successor also
// expires).
func (f *Framework) expire(windowStart stream.ActionID) {
	n := 0
	for n < len(f.cps) && f.cps[n].start < windowStart {
		n++
	}
	if f.cfg.Sparse && n > 0 {
		n-- // keep the newest expired checkpoint as Λ[x0]
	}
	if n > 0 {
		f.cpDeleted += int64(n)
		f.cps = append(f.cps[:0], f.cps[n:]...)
	}
}

// prune is the SIC deletion rule (Algorithm 2 lines 9–20): starting from
// each surviving checkpoint x_i, delete the following checkpoints x_j while
// both Λ[x_j] and its successor stay within the (1−β) band of Λ[x_i]; the
// successor then approximates the deleted ones with ratio ε(1−β)/2
// (Lemma 2).
func (f *Framework) prune() {
	band := 1 - f.cfg.Beta
	for i := 0; i < len(f.cps); i++ {
		vi := f.cps[i].oracle.Value()
		for i+2 < len(f.cps) &&
			f.cps[i+1].oracle.Value() >= band*vi &&
			f.cps[i+2].oracle.Value() >= band*vi {
			f.cps = append(f.cps[:i+1], f.cps[i+2:]...)
			f.cpDeleted++
		}
	}
}

// answer returns the checkpoint answering the SIM query: the oldest
// checkpoint that covers at most the current window (Λ[x1]; under IC this is
// Λ[1]). During warm-up, when even the oldest checkpoint covers less than N
// actions, that oldest checkpoint is the exact choice.
func (f *Framework) answer() *checkpoint {
	ws := f.st.Last() - stream.ActionID(f.cfg.N) + 1
	for _, cp := range f.cps {
		if cp.start >= ws {
			return cp
		}
	}
	if len(f.cps) > 0 {
		return f.cps[len(f.cps)-1]
	}
	return nil
}

// Seeds returns the current SIM solution: at most K users. The returned
// slice is owned by the framework and valid until the next Process call.
func (f *Framework) Seeds() []stream.UserID {
	if cp := f.answer(); cp != nil {
		return cp.oracle.Seeds()
	}
	return nil
}

// CandidateSeeds returns the answering checkpoint's candidate pool: the
// union of every live candidate solution's users when the oracle exposes one
// (the sieve-style oracles), otherwise just Seeds(). A distributed merge
// layer unions these pools across partitions and re-scores them with one
// exact greedy pass; see internal/router.
func (f *Framework) CandidateSeeds() []stream.UserID {
	cp := f.answer()
	if cp == nil {
		return nil
	}
	if cs, ok := cp.oracle.(oracle.CandidateSource); ok {
		return cs.Candidates()
	}
	return cp.oracle.Seeds()
}

// Value returns the influence value f(I_t(S)) of the current solution as
// maintained by the answering checkpoint's oracle.
func (f *Framework) Value() float64 {
	if cp := f.answer(); cp != nil {
		return cp.oracle.Value()
	}
	return 0
}

// Checkpoints returns the number of live checkpoints (including SIC's
// retained Λ[x0]).
func (f *Framework) Checkpoints() int { return len(f.cps) }

// CheckpointStarts returns the start times of the live checkpoints in
// ascending order; used by tests asserting Algorithm 2's structure.
func (f *Framework) CheckpointStarts() []stream.ActionID {
	out := make([]stream.ActionID, len(f.cps))
	for i, cp := range f.cps {
		out[i] = cp.start
	}
	return out
}

// CheckpointValues returns the oracle values of the live checkpoints in
// ascending start order.
func (f *Framework) CheckpointValues() []float64 {
	out := make([]float64, len(f.cps))
	for i, cp := range f.cps {
		out[i] = cp.oracle.Value()
	}
	return out
}

// FrameworkStats aggregates maintenance counters for the harness.
type FrameworkStats struct {
	Processed      int64
	Created        int64
	Deleted        int64
	AvgCheckpoints float64
	ElementsFed    int64
}

// Stats returns cumulative maintenance counters.
func (f *Framework) Stats() FrameworkStats {
	s := FrameworkStats{
		Processed:   f.processed,
		Created:     f.cpCreated,
		Deleted:     f.cpDeleted,
		ElementsFed: f.elemFed,
	}
	if f.processed > 0 {
		s.AvgCheckpoints = float64(f.cpSamples) / float64(f.processed)
	}
	return s
}
