package core

import (
	"bytes"
	"fmt"
	"io"

	"repro/internal/oracle"
	"repro/internal/stream"
	"repro/internal/wire"
)

// corePayloadVersion versions the Framework payload independently of the
// SIM2 container that carries it.
const corePayloadVersion = 1

// Save serializes the framework's complete mutable state: the shared stream
// index, the live checkpoint chain (each checkpoint's start plus its
// oracle's full state through oracle.Persistent) and the maintenance
// counters. Together with an identical Config this is everything needed to
// resume processing with bit-identical results — the IC/SIC checkpoint
// chain snapshot of the durable-tracker contract.
//
// Save fails if the configured oracle does not implement oracle.Persistent.
// Configuration (K, N, L, Beta, the oracle factory, Pool) is deliberately
// not serialized: Restore targets a Framework freshly built from the same
// Config, and the caller (sim.Tracker.SaveTo) records and validates the
// config scalars at its own layer.
func (f *Framework) Save(w io.Writer) error {
	ww := wire.NewWriter(w)
	ww.Uvarint(corePayloadVersion)

	// Stream payload, length-prefixed so Restore can hand stream.Restore an
	// exactly delimited reader (layer decoders must not over-read shared
	// input).
	var sb bytes.Buffer
	if err := f.st.Save(&sb); err != nil {
		return fmt.Errorf("core: saving stream: %w", err)
	}
	ww.Bytes(sb.Bytes())

	ww.Varint(f.processed)
	ww.Varint(int64(f.lastCpStart))
	ww.Varint(f.cpCreated)
	ww.Varint(f.cpDeleted)
	ww.Varint(f.cpSamples)
	ww.Varint(f.elemFed)

	ww.Uvarint(uint64(len(f.cps)))
	var ob bytes.Buffer
	for _, cp := range f.cps {
		p, ok := cp.oracle.(oracle.Persistent)
		if !ok {
			return fmt.Errorf("core: oracle %T does not implement oracle.Persistent", cp.oracle)
		}
		ob.Reset()
		ow := wire.NewWriter(&ob)
		if err := p.SaveState(ow); err != nil {
			return fmt.Errorf("core: saving checkpoint at %d: %w", cp.start, err)
		}
		ww.Varint(int64(cp.start))
		ww.Bytes(ob.Bytes())
	}
	return ww.Err()
}

// Restore replaces the receiver's state with one saved by Save. The
// receiver must be freshly constructed by New with a Config equivalent to
// the saving framework's (same K, N, L, Beta, Sparse, ByTime and an Oracle
// factory producing the same oracle kind with the same weights); Pool,
// UsersHint and the factory's parallelism are free to differ — they change
// execution, never results.
func (f *Framework) Restore(r io.Reader) error {
	rr := wire.NewReader(r)
	if v := rr.Uvarint(); rr.Err() == nil && v != corePayloadVersion {
		return fmt.Errorf("core: unsupported payload version %d", v)
	}

	streamPayload := rr.Bytes(wire.MaxLen)
	if err := rr.Err(); err != nil {
		return fmt.Errorf("core: restoring: %w", err)
	}
	st, err := stream.Restore(bytes.NewReader(streamPayload), f.cfg.Cold, f.cfg.ColdBudget)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}

	processed := rr.Varint()
	lastCpStart := stream.ActionID(rr.Varint())
	cpCreated := rr.Varint()
	cpDeleted := rr.Varint()
	cpSamples := rr.Varint()
	elemFed := rr.Varint()

	n := rr.Len(wire.MaxLen)
	cps := make([]*checkpoint, 0, min(n, 1<<16))
	for i := 0; i < n && rr.Err() == nil; i++ {
		start := stream.ActionID(rr.Varint())
		payload := rr.Bytes(wire.MaxLen)
		if rr.Err() != nil {
			break
		}
		orc := f.cfg.Oracle(f.cfg.K)
		p, ok := orc.(oracle.Persistent)
		if !ok {
			return fmt.Errorf("core: oracle %T does not implement oracle.Persistent", orc)
		}
		if err := p.RestoreState(wire.NewReader(bytes.NewReader(payload))); err != nil {
			return fmt.Errorf("core: restoring checkpoint at %d: %w", start, err)
		}
		cps = append(cps, newCheckpoint(start, orc))
	}
	if err := rr.Err(); err != nil {
		return fmt.Errorf("core: restoring: %w", err)
	}

	// Commit only after the whole payload decoded: a failed Restore leaves
	// the receiver's (empty) state untouched rather than half-replaced.
	f.st = st
	f.cps = cps
	f.processed = processed
	f.lastCpStart = lastCpStart
	f.cpCreated = cpCreated
	f.cpDeleted = cpDeleted
	f.cpSamples = cpSamples
	f.elemFed = elemFed
	return nil
}
