package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/oracle"
	"repro/internal/stream"
)

// TestTheorem4EndToEnd checks the paper's headline guarantee on random
// streams: SIC with SieveStreaming maintains at least a (1/4 − β)-approximate
// SIM solution at every step (Theorem 4), verified against the brute-force
// window optimum.
func TestTheorem4EndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("brute-force optimum is expensive")
	}
	const beta = 0.2
	const k, n = 2, 25
	f := func(seed int64) bool {
		fw := MustNew(Config{
			K: k, N: n, L: 1, Beta: beta, Sparse: true,
			Oracle: oracle.NewFactory(oracle.SieveStreaming, beta, nil),
		})
		for _, a := range randomActions(seed, 150, 8, 15, 0.7) {
			if err := fw.Process(a); err != nil {
				return false
			}
			opt := bruteOptimum(fw.Stream(), fw.WindowStart(), k)
			if fw.Value() < (0.25-beta)*opt-1e-9 {
				t.Logf("seed %d t=%d: SIC %v < (1/4−β)·OPT %v", seed, a.ID, fw.Value(), opt)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTheorem4AllOracles repeats the end-to-end bound with each oracle and
// its own ratio ε, checking SIC's ε(1−β)/2 guarantee (Theorem 3).
func TestTheorem3AllOracles(t *testing.T) {
	const beta = 0.2
	const k, n = 2, 25
	ratios := map[oracle.Kind]float64{
		oracle.SieveStreaming:  0.5 - beta,
		oracle.ThresholdStream: 0.5 - beta,
		oracle.BlogWatch:       0.25,
		oracle.MkC:             0.25,
	}
	for kind, eps := range ratios {
		fw := MustNew(Config{
			K: k, N: n, L: 1, Beta: beta, Sparse: true,
			Oracle: oracle.NewFactory(kind, beta, nil),
		})
		bound := eps * (1 - beta) / 2
		for _, a := range randomActions(31, 300, 8, 15, 0.7) {
			if err := fw.Process(a); err != nil {
				t.Fatal(err)
			}
			opt := bruteOptimum(fw.Stream(), fw.WindowStart(), k)
			if fw.Value() < bound*opt-1e-9 {
				t.Fatalf("%v t=%d: value %v < %.3f·OPT %v", kind, a.ID, fw.Value(), bound, opt)
			}
		}
	}
}

// TestRecoveryAfterRejectedAction: a rejected (out-of-order) action must not
// corrupt the framework — subsequent valid actions continue normally.
func TestRecoveryAfterRejectedAction(t *testing.T) {
	fw := MustNew(Config{
		K: 2, N: 10, L: 1,
		Oracle: oracle.NewFactory(oracle.SieveStreaming, 0.1, nil),
	})
	good := randomActions(5, 30, 5, 8, 0.6)
	for _, a := range good[:15] {
		if err := fw.Process(a); err != nil {
			t.Fatal(err)
		}
	}
	valBefore := fw.Value()
	cpBefore := fw.Checkpoints()
	// Inject failures: stale ID, duplicate ID, future parent.
	bad := []stream.Action{
		{ID: 3, User: 1, Parent: stream.NoParent},
		{ID: 15, User: 1, Parent: stream.NoParent},
		{ID: 99, User: 1, Parent: 100},
	}
	for _, a := range bad {
		if err := fw.Process(a); err == nil {
			t.Fatalf("action %v accepted", a)
		}
	}
	if fw.Value() != valBefore || fw.Checkpoints() != cpBefore {
		t.Fatal("rejected actions mutated framework state")
	}
	for _, a := range good[15:] {
		if err := fw.Process(a); err != nil {
			t.Fatalf("framework unusable after rejections: %v", err)
		}
	}
	if fw.Value() <= 0 {
		t.Fatal("no value after recovery")
	}
}

// TestLongRunStability runs SIC over a long stream and checks bounded state:
// checkpoints stay O(log N / β), the stream index does not accumulate
// garbage, and the window never exceeds retention bounds.
func TestLongRunStability(t *testing.T) {
	const n = 100
	fw := MustNew(Config{
		K: 3, N: n, L: 5, Beta: 0.2, Sparse: true,
		Oracle: oracle.NewFactory(oracle.SieveStreaming, 0.2, nil),
	})
	for _, a := range randomActions(99, 5000, 30, 60, 0.75) {
		if err := fw.Process(a); err != nil {
			t.Fatal(err)
		}
		// Retention can exceed N: SIC keeps one expired checkpoint Λ[x0]
		// whose suffix can reach ~N before its own expiry ("a window with
		// size larger than N", Algorithm 2), so 2N is the structural bound.
		if got := fw.Stream().Len(); got > 3*n {
			t.Fatalf("t=%d: retained %d actions, want <= 3N", a.ID, got)
		}
		if got := fw.Checkpoints(); got > 60 {
			t.Fatalf("t=%d: %d checkpoints", a.ID, got)
		}
	}
}

// TestRejectionDoesNotCountProcessed verifies accounting under failures.
func TestRejectionDoesNotCountProcessed(t *testing.T) {
	fw := MustNew(Config{K: 1, N: 5, L: 1, Oracle: oracle.NewFactory(oracle.SieveStreaming, 0.1, nil)})
	if err := fw.Process(stream.Action{ID: 2, User: 1, Parent: stream.NoParent}); err != nil {
		t.Fatal(err)
	}
	_ = fw.Process(stream.Action{ID: 1, User: 1, Parent: stream.NoParent}) // rejected
	if fw.Processed() != 1 {
		t.Fatalf("Processed = %d, want 1", fw.Processed())
	}
	if fw.Stats().Created != 1 {
		t.Fatalf("Created = %d, want 1", fw.Stats().Created)
	}
}
