package core

import (
	"repro/internal/stream"
)

// batchGain records which performers a contributor's influence set may have
// gained during the current batch: latest is the first one seen, multi is
// set when a second distinct performer appears (disabling the O(1) fast
// path for that contributor's elements).
type batchGain struct {
	latest stream.UserID
	multi  bool
}

// ProcessBatch ingests a batch of actions at once, amortizing the per-action
// maintenance of Process across the batch: the stream index is updated in
// one IngestBatch call, each checkpoint oracle then receives ONE element per
// distinct contributor of the batch (instead of one per contributing
// action), and window expiry, SIC pruning and horizon advance run once at
// the batch boundary.
//
// Semantics: checkpoint creation keeps the exact per-action cadence of
// Process, and every oracle element carries the contributor's influence set
// evaluated after the whole batch — a coarser-grained notification of the
// same monotone set growth the per-action path reports. Each checkpoint
// still observes its full suffix (a contributor's element covers all of its
// batch contributions), so the oracles' approximation guarantees are
// unchanged; only the intra-batch admission interleaving may differ from
// per-action processing. Queries are exact at batch boundaries, matching
// the L-action slide granularity the paper already guarantees results at.
// A batch of one action takes the exact legacy path.
func (f *Framework) ProcessBatch(actions []stream.Action) error {
	if len(actions) == 0 {
		return nil
	}
	if len(actions) == 1 {
		return f.Process(actions[0])
	}
	deltas, err := f.st.IngestBatch(actions)
	if err != nil {
		return err
	}

	// Checkpoint creation, per action (Algorithm 1 line 2; §5.3 for L > 1).
	// A checkpoint opened mid-batch starts at its opening action's ID, so
	// the prefix query below feeds it exactly its own suffix.
	for _, d := range deltas {
		a := d.Action
		create := false
		if f.cfg.ByTime {
			create = f.processed == 0 || a.ID >= f.lastCpStart+stream.ActionID(f.cfg.L)
		} else {
			create = f.processed%int64(f.cfg.L) == 0
		}
		if create {
			f.cps = append(f.cps, newCheckpoint(a.ID, f.cfg.Oracle(f.cfg.K)))
			f.lastCpStart = a.ID
			f.cpCreated++
		}
		f.processed++
		// Sample the live-checkpoint count per action (the cpSamples
		// definition) here, where creations are exactly timed; expiry and
		// pruning land at batch granularity, so AvgCheckpoints can lag the
		// serial run by up to one batch's worth of deletions.
		f.cpSamples += int64(len(f.cps))
	}

	// Distinct contributors of the batch, in first-touch order so batched
	// runs are deterministic. Alongside each contributor, track the
	// distinct performers its influence set may have gained this batch:
	// when there is exactly one, the oracles' O(1) Latest fast path stays
	// valid (Latest only has to cover every member possibly added since the
	// contributor's previous element — Add is idempotent and the gain-bound
	// update is an upper bound, so an already-known performer is harmless).
	if f.batchSeen == nil {
		f.batchSeen = map[stream.UserID]int{}
	}
	clear(f.batchSeen)
	f.batchContrib = f.batchContrib[:0]
	f.batchGains = f.batchGains[:0]
	for _, d := range deltas {
		p := d.Action.User
		for _, u := range d.Contributors {
			if i, ok := f.batchSeen[u]; ok {
				if f.batchGains[i].latest != p {
					f.batchGains[i].multi = true
				}
				continue
			}
			f.batchSeen[u] = len(f.batchContrib)
			f.batchContrib = append(f.batchContrib, u)
			f.batchGains = append(f.batchGains, batchGain{latest: p})
		}
	}

	// Feed each contributor's post-batch influence set to every checkpoint
	// through the Set-Stream Mapping (feedContributor: one recency-sorted
	// materialization per contributor serves every checkpoint as a prefix,
	// with the fan-out checkpoint-sharded across the pool exactly as in
	// Process). A contributor that gained members from several distinct
	// performers is fed without Latest metadata and seed updates fall back
	// to a full merge.
	for i, u := range f.batchContrib {
		g := f.batchGains[i]
		f.feedContributor(u, g.latest, !g.multi)
	}

	// Batch-boundary maintenance: expiry, SIC pruning and horizon advance
	// run once, against the window of the batch's last action.
	ws := actions[len(actions)-1].ID - stream.ActionID(f.cfg.N) + 1
	f.expire(ws)
	if f.cfg.Sparse {
		f.prune()
	}
	if len(f.cps) > 0 {
		h := f.cps[0].start
		if ws < h {
			h = ws
		}
		f.st.Advance(h)
	}
	return nil
}
