package core

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/oracle"
	"repro/internal/stream"
)

// paperStream is the running example of Figure 1.
func paperStream() []stream.Action {
	return []stream.Action{
		{ID: 1, User: 1, Parent: stream.NoParent},
		{ID: 2, User: 2, Parent: 1},
		{ID: 3, User: 3, Parent: stream.NoParent},
		{ID: 4, User: 3, Parent: 1},
		{ID: 5, User: 4, Parent: 3},
		{ID: 6, User: 1, Parent: 3},
		{ID: 7, User: 5, Parent: 3},
		{ID: 8, User: 4, Parent: 7},
		{ID: 9, User: 2, Parent: stream.NoParent},
		{ID: 10, User: 6, Parent: 9},
	}
}

func feed(t *testing.T, f *Framework, actions []stream.Action) {
	t.Helper()
	for _, a := range actions {
		if err := f.Process(a); err != nil {
			t.Fatalf("Process(%v): %v", a, err)
		}
	}
}

func sortedUsers(in []stream.UserID) []stream.UserID {
	out := append([]stream.UserID(nil), in...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func exactIC(k, n, l int) *Framework {
	return MustNew(Config{K: k, N: n, L: l, Oracle: oracle.ExactFactory(nil)})
}

func exactSIC(k, n, l int, beta float64) *Framework {
	return MustNew(Config{K: k, N: n, L: l, Beta: beta, Oracle: oracle.ExactFactory(nil), Sparse: true})
}

// TestICReproducesFigure2 replays the paper's running example with the
// optimal checkpoint oracle and checks the exact checkpoint values drawn in
// Figure 2 at times 8, 9 and 10.
func TestICReproducesFigure2(t *testing.T) {
	f := exactIC(2, 8, 1)
	actions := paperStream()

	feed(t, f, actions[:8])
	if got, want := f.CheckpointValues(), []float64{5, 5, 4, 4, 3, 3, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("t=8 checkpoint values = %v, want %v", got, want)
	}
	if got, want := sortedUsers(f.Seeds()), []stream.UserID{1, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("t=8 seeds = %v, want %v", got, want)
	}
	if f.Value() != 5 {
		t.Fatalf("t=8 value = %v, want 5", f.Value())
	}

	feed(t, f, actions[8:9])
	if got, want := f.CheckpointValues(), []float64{5, 5, 5, 4, 4, 3, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("t=9 checkpoint values = %v, want %v", got, want)
	}

	feed(t, f, actions[9:])
	if got, want := f.CheckpointValues(), []float64{6, 6, 5, 5, 4, 3, 2, 1}; !reflect.DeepEqual(got, want) {
		t.Fatalf("t=10 checkpoint values = %v, want %v", got, want)
	}
	if got, want := sortedUsers(f.Seeds()), []stream.UserID{2, 3}; !reflect.DeepEqual(got, want) {
		t.Fatalf("t=10 seeds = %v, want %v (Example 2)", got, want)
	}
	if f.Value() != 6 {
		t.Fatalf("t=10 value = %v, want 6 (Example 2)", f.Value())
	}
}

// TestSICOnPaperExample replays Example 5: SIC with β=0.3 must answer the
// SIM query at t=8 with value 5 and at t=10 with value 6 (the figure's
// Λ10[x1] covers the window exactly in this tiny example) while keeping
// fewer checkpoints than IC.
func TestSICOnPaperExample(t *testing.T) {
	f := exactSIC(2, 8, 1, 0.3)
	actions := paperStream()

	feed(t, f, actions[:8])
	if f.Value() != 5 {
		t.Fatalf("t=8 SIC value = %v, want 5", f.Value())
	}
	if got := f.Checkpoints(); got >= 8 {
		t.Fatalf("t=8 SIC checkpoints = %d, want < 8 (sparse)", got)
	}

	feed(t, f, actions[8:])
	// Theorem 3 lower bound with the exact oracle: (1−β)/2 · OPT = 0.35·6.
	if f.Value() < 0.35*6 {
		t.Fatalf("t=10 SIC value = %v, below the ε(1−β)/2 bound", f.Value())
	}
	if f.Value() > 6 {
		t.Fatalf("t=10 SIC value = %v, above OPT=6", f.Value())
	}
}

func TestICCheckpointCountIsWindowOverL(t *testing.T) {
	for _, l := range []int{1, 2, 5, 10} {
		f := exactIC(1, 20, l)
		for i := 1; i <= 100; i++ {
			if err := f.Process(stream.Action{ID: stream.ActionID(i), User: stream.UserID(i % 7), Parent: stream.NoParent}); err != nil {
				t.Fatal(err)
			}
		}
		want := (20 + l - 1) / l
		if got := f.Checkpoints(); got != want {
			t.Errorf("L=%d: checkpoints = %d, want ⌈N/L⌉ = %d", l, got, want)
		}
	}
}

// randomActions builds a reproducible random reply stream.
func randomActions(seed int64, n, users, maxBack int, replyP float64) []stream.Action {
	rng := rand.New(rand.NewSource(seed))
	actions := make([]stream.Action, n)
	for i := range actions {
		a := stream.Action{ID: stream.ActionID(i + 1), User: stream.UserID(rng.Intn(users)), Parent: stream.NoParent}
		if i > 0 && rng.Float64() < replyP {
			back := rng.Intn(min(i, maxBack)) + 1
			a.Parent = stream.ActionID(i + 1 - back)
		}
		actions[i] = a
	}
	return actions
}

// TestSICBandInvariant checks the structural consequence of Algorithm 2
// after every action: no checkpoint survives whose two successors both sit
// within the (1−β) band of it.
func TestSICBandInvariant(t *testing.T) {
	const beta = 0.25
	f := exactSIC(2, 50, 1, beta)
	for _, a := range randomActions(11, 400, 12, 40, 0.7) {
		if err := f.Process(a); err != nil {
			t.Fatal(err)
		}
		vals := f.CheckpointValues()
		for i := 0; i+2 < len(vals); i++ {
			if vals[i+1] >= (1-beta)*vals[i] && vals[i+2] >= (1-beta)*vals[i] {
				t.Fatalf("band invariant violated at t=%d: values=%v index=%d", a.ID, vals, i)
			}
		}
	}
}

// TestSICCheckpointBound checks Theorem 5: O(log N / β) checkpoints.
func TestSICCheckpointBound(t *testing.T) {
	const beta = 0.2
	const n = 200
	f := exactSIC(2, n, 1, beta)
	bound := int(2*math.Log(float64(n))/math.Log(1/(1-beta))) + 4
	for _, a := range randomActions(5, 1000, 15, 80, 0.7) {
		if err := f.Process(a); err != nil {
			t.Fatal(err)
		}
		if got := f.Checkpoints(); got > bound {
			t.Fatalf("t=%d: %d checkpoints > bound %d", a.ID, got, bound)
		}
	}
}

// TestSICWithinTheoremBoundOfIC runs IC and SIC side by side with the exact
// oracle (ε = 1) and checks Theorem 3 continuously:
// SIC value ≥ (1−β)/2 · OPT ≥ (1−β)/2 · IC value.
func TestSICWithinTheoremBoundOfIC(t *testing.T) {
	for _, beta := range []float64{0.1, 0.3, 0.5} {
		ic := exactIC(2, 40, 1)
		sic := exactSIC(2, 40, 1, beta)
		for _, a := range randomActions(17, 600, 10, 30, 0.75) {
			if err := ic.Process(a); err != nil {
				t.Fatal(err)
			}
			if err := sic.Process(a); err != nil {
				t.Fatal(err)
			}
			if sic.Value() < (1-beta)/2*ic.Value()-1e-9 {
				t.Fatalf("β=%v t=%d: SIC %.1f < (1−β)/2 · IC %.1f", beta, a.ID, sic.Value(), ic.Value())
			}
			if sic.Value() > ic.Value()+1e-9 {
				t.Fatalf("β=%v t=%d: SIC %.1f above exact IC %.1f", beta, a.ID, sic.Value(), ic.Value())
			}
		}
	}
}

// TestSIC retains at most one expired checkpoint (Λ[x0]).
func TestSICRetainsSingleExpiredCheckpoint(t *testing.T) {
	f := exactSIC(2, 20, 1, 0.3)
	for _, a := range randomActions(23, 300, 8, 15, 0.7) {
		if err := f.Process(a); err != nil {
			t.Fatal(err)
		}
		ws := a.ID - 20 + 1
		expired := 0
		for _, s := range f.CheckpointStarts() {
			if s < ws {
				expired++
			}
		}
		if expired > 1 {
			t.Fatalf("t=%d: %d expired checkpoints retained, want <= 1", a.ID, expired)
		}
	}
}

func TestICSeedsNeverExceedK(t *testing.T) {
	f := MustNew(Config{K: 3, N: 30, L: 1, Oracle: oracle.NewFactory(oracle.SieveStreaming, 0.2, nil)})
	for _, a := range randomActions(31, 500, 20, 25, 0.8) {
		if err := f.Process(a); err != nil {
			t.Fatal(err)
		}
		if len(f.Seeds()) > 3 {
			t.Fatalf("t=%d: %d seeds > k", a.ID, len(f.Seeds()))
		}
	}
}

// TestSieveICTracksExactWithinRatio: with SieveStreaming (ε = 1/2 − β) the
// IC answer must stay within the oracle's ratio of the exact IC answer.
func TestSieveICTracksExactWithinRatio(t *testing.T) {
	const beta = 0.1
	exact := exactIC(2, 40, 1)
	sieve := MustNew(Config{K: 2, N: 40, L: 1, Oracle: oracle.NewFactory(oracle.SieveStreaming, beta, nil)})
	for _, a := range randomActions(41, 600, 12, 30, 0.7) {
		if err := exact.Process(a); err != nil {
			t.Fatal(err)
		}
		if err := sieve.Process(a); err != nil {
			t.Fatal(err)
		}
		if want := (0.5 - beta) * exact.Value(); sieve.Value() < want-1e-9 {
			t.Fatalf("t=%d: sieve IC %.2f < (1/2−β)·OPT %.2f", a.ID, sieve.Value(), want)
		}
	}
}

func TestMultiShiftPreservesQuality(t *testing.T) {
	// L > 1 must not break the approximation: compare SIC with L=5 against
	// exact IC with L=1 at slide boundaries.
	const beta = 0.2
	ic := exactIC(2, 40, 1)
	sic := exactSIC(2, 40, 5, beta)
	for _, a := range randomActions(53, 600, 10, 30, 0.75) {
		if err := ic.Process(a); err != nil {
			t.Fatal(err)
		}
		if err := sic.Process(a); err != nil {
			t.Fatal(err)
		}
		if a.ID%5 != 0 {
			continue
		}
		// At boundaries the answering checkpoint covers at most the window;
		// Theorem 3's bound must hold against the exact optimum.
		if sic.Value() < (1-beta)/2*ic.Value()-1e-9 {
			t.Fatalf("t=%d: multi-shift SIC %.1f < bound vs IC %.1f", a.ID, sic.Value(), ic.Value())
		}
	}
}

func TestStreamHorizonFollowsCheckpoints(t *testing.T) {
	f := exactSIC(2, 25, 1, 0.3)
	for _, a := range randomActions(61, 400, 8, 20, 0.7) {
		if err := f.Process(a); err != nil {
			t.Fatal(err)
		}
		starts := f.CheckpointStarts()
		if len(starts) == 0 {
			continue
		}
		if h := f.Stream().Horizon(); h > starts[0] {
			t.Fatalf("t=%d: horizon %d past oldest checkpoint %d", a.ID, h, starts[0])
		}
	}
}

func TestConfigValidation(t *testing.T) {
	fact := oracle.ExactFactory(nil)
	bad := []Config{
		{K: 0, N: 10, L: 1, Oracle: fact},
		{K: 1, N: 0, L: 1, Oracle: fact},
		{K: 1, N: 10, L: 11, Oracle: fact},
		{K: 1, N: 10, L: -1, Oracle: fact},
		{K: 1, N: 10, L: 1},
		{K: 1, N: 10, L: 1, Oracle: fact, Sparse: true, Beta: 0},
		{K: 1, N: 10, L: 1, Oracle: fact, Sparse: true, Beta: 1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d: expected error", i)
		}
	}
	if _, err := New(Config{K: 1, N: 10, Oracle: fact}); err != nil {
		t.Errorf("valid config rejected: %v (L should default to 1)", err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustNew: expected panic on invalid config")
			}
		}()
		MustNew(Config{})
	}()
}

func TestEmptyFramework(t *testing.T) {
	f := exactIC(2, 10, 1)
	if f.Value() != 0 || f.Seeds() != nil || f.Checkpoints() != 0 {
		t.Fatal("empty framework must answer zero")
	}
}

func TestProcessRejectsOutOfOrder(t *testing.T) {
	f := exactIC(1, 10, 1)
	if err := f.Process(stream.Action{ID: 5, User: 1, Parent: stream.NoParent}); err != nil {
		t.Fatal(err)
	}
	if err := f.Process(stream.Action{ID: 4, User: 1, Parent: stream.NoParent}); err == nil {
		t.Fatal("expected error for out-of-order action")
	}
}

func TestStatsCounters(t *testing.T) {
	f := exactIC(2, 10, 2)
	feed(t, f, randomActions(71, 40, 5, 8, 0.5))
	s := f.Stats()
	if s.Processed != 40 {
		t.Errorf("Processed = %d, want 40", s.Processed)
	}
	if s.Created != 20 { // one checkpoint per L=2 actions
		t.Errorf("Created = %d, want 20", s.Created)
	}
	if s.Created-s.Deleted != int64(f.Checkpoints()) {
		t.Errorf("created-deleted=%d != live %d", s.Created-s.Deleted, f.Checkpoints())
	}
	if s.AvgCheckpoints <= 0 || s.ElementsFed <= 0 {
		t.Errorf("stats not populated: %+v", s)
	}
}

// TestValueMatchesWindowOptimum cross-checks the full pipeline: the exact-IC
// answer at each step equals a from-scratch brute-force SIM optimum over the
// current window.
func TestValueMatchesWindowOptimum(t *testing.T) {
	const k, n = 2, 15
	f := exactIC(k, n, 1)
	for _, a := range randomActions(83, 200, 6, 10, 0.7) {
		if err := f.Process(a); err != nil {
			t.Fatal(err)
		}
		want := bruteOptimum(f.Stream(), f.WindowStart(), k)
		if f.Value() != want {
			t.Fatalf("t=%d: IC exact value %.1f != brute optimum %.1f", a.ID, f.Value(), want)
		}
	}
}

// bruteOptimum computes the SIM optimum over the window by enumeration of
// user subsets.
func bruteOptimum(st *stream.Stream, start stream.ActionID, k int) float64 {
	var users []stream.UserID
	st.Influencers(start, func(u stream.UserID) bool { users = append(users, u); return true })
	sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
	best := 0.0
	var rec func(i int, chosen []stream.UserID)
	rec = func(i int, chosen []stream.UserID) {
		cov := map[stream.UserID]bool{}
		for _, u := range chosen {
			st.Influence(u, start, func(v stream.UserID) bool { cov[v] = true; return true })
		}
		if v := float64(len(cov)); v > best {
			best = v
		}
		if len(chosen) == k {
			return
		}
		for j := i; j < len(users); j++ {
			rec(j+1, append(chosen, users[j]))
		}
	}
	rec(0, nil)
	return best
}
