package core

import (
	"reflect"
	"sort"
	"testing"

	"repro/internal/oracle"
	"repro/internal/stream"
)

// TestTimeBasedExpiry: with gappy timestamps, influence must expire by time,
// not by action count.
func TestTimeBasedExpiry(t *testing.T) {
	fw := MustNew(Config{
		K: 1, N: 50, L: 10, ByTime: true,
		Oracle: oracle.ExactFactory(nil),
	})
	// A burst at t=1..3 by user 1, then silence, then one action at t=100.
	actions := []stream.Action{
		{ID: 1, User: 1, Parent: stream.NoParent},
		{ID: 2, User: 2, Parent: 1},
		{ID: 3, User: 3, Parent: 1},
		{ID: 100, User: 9, Parent: stream.NoParent},
	}
	for _, a := range actions[:3] {
		if err := fw.Process(a); err != nil {
			t.Fatal(err)
		}
	}
	if fw.Value() != 3 { // user 1 influences {1,2,3}
		t.Fatalf("value during burst = %v, want 3", fw.Value())
	}
	if err := fw.Process(actions[3]); err != nil {
		t.Fatal(err)
	}
	// At t=100 the window is [51, 100]: only the action at t=100 counts,
	// even though merely 4 actions ever arrived.
	if fw.Value() != 1 {
		t.Fatalf("value after gap = %v, want 1", fw.Value())
	}
	seeds := fw.Seeds()
	if len(seeds) != 1 || seeds[0] != 9 {
		t.Fatalf("seeds after gap = %v, want [9]", seeds)
	}
}

// TestTimeBasedCheckpointSpacing: checkpoints open per L time units, not per
// L actions.
func TestTimeBasedCheckpointSpacing(t *testing.T) {
	fw := MustNew(Config{
		K: 1, N: 100, L: 10, ByTime: true,
		Oracle: oracle.ExactFactory(nil),
	})
	// Five actions inside 10 time units: a single checkpoint.
	for _, id := range []stream.ActionID{1, 3, 5, 7, 9} {
		if err := fw.Process(stream.Action{ID: id, User: 1, Parent: stream.NoParent}); err != nil {
			t.Fatal(err)
		}
	}
	if got := fw.Checkpoints(); got != 1 {
		t.Fatalf("checkpoints within one slide = %d, want 1", got)
	}
	// Next action 10 units later opens a new one.
	if err := fw.Process(stream.Action{ID: 11, User: 1, Parent: stream.NoParent}); err != nil {
		t.Fatal(err)
	}
	if got := fw.Checkpoints(); got != 2 {
		t.Fatalf("checkpoints after slide = %d, want 2", got)
	}
	if got := fw.CheckpointStarts(); !reflect.DeepEqual(got, []stream.ActionID{1, 11}) {
		t.Fatalf("starts = %v, want [1 11]", got)
	}
}

// TestTimeBasedMatchesSequenceOnDenseStream: when IDs are contiguous, time
// mode and sequence mode coincide exactly.
func TestTimeBasedMatchesSequenceOnDenseStream(t *testing.T) {
	seq := exactIC(2, 20, 5)
	tim := MustNew(Config{K: 2, N: 20, L: 5, ByTime: true, Oracle: oracle.ExactFactory(nil)})
	for _, a := range randomActions(3, 200, 8, 15, 0.7) {
		if err := seq.Process(a); err != nil {
			t.Fatal(err)
		}
		if err := tim.Process(a); err != nil {
			t.Fatal(err)
		}
		if seq.Value() != tim.Value() {
			t.Fatalf("t=%d: seq %v != time %v", a.ID, seq.Value(), tim.Value())
		}
		if !reflect.DeepEqual(seq.CheckpointStarts(), tim.CheckpointStarts()) {
			t.Fatalf("t=%d: starts differ: %v vs %v", a.ID, seq.CheckpointStarts(), tim.CheckpointStarts())
		}
	}
}

// TestTimeBasedSICBound: the SIC guarantee holds under time-based windows
// with gappy streams.
func TestTimeBasedSICBound(t *testing.T) {
	const beta = 0.3
	fw := MustNew(Config{
		K: 2, N: 40, L: 4, Beta: beta, Sparse: true, ByTime: true,
		Oracle: oracle.ExactFactory(nil),
	})
	// Gappy stream: irregular timestamps.
	id := stream.ActionID(0)
	rngStep := []stream.ActionID{1, 3, 1, 7, 2, 1, 5, 1, 1, 9}
	var last []stream.Action
	for i := 0; i < 400; i++ {
		id += rngStep[i%len(rngStep)]
		a := stream.Action{ID: id, User: stream.UserID(i % 9), Parent: stream.NoParent}
		if i > 0 && i%3 != 0 {
			a.Parent = last[len(last)-1].ID
		}
		last = append(last, a)
		if err := fw.Process(a); err != nil {
			t.Fatal(err)
		}
		opt := bruteOptimum(fw.Stream(), fw.WindowStart(), 2)
		if fw.Value() < (1-beta)/2*opt-1e-9 {
			t.Fatalf("t=%d: %v < bound of OPT %v", a.ID, fw.Value(), opt)
		}
	}
}

func TestTimeBasedSeedsSorted(t *testing.T) {
	fw := MustNew(Config{K: 3, N: 30, L: 3, ByTime: true, Oracle: oracle.ExactFactory(nil)})
	for _, a := range randomActions(8, 100, 6, 10, 0.6) {
		if err := fw.Process(a); err != nil {
			t.Fatal(err)
		}
	}
	seeds := append([]stream.UserID(nil), fw.Seeds()...)
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	for i := 1; i < len(seeds); i++ {
		if seeds[i] == seeds[i-1] {
			t.Fatalf("duplicate seed: %v", fw.Seeds())
		}
	}
}
