// Package graph builds the per-window influence graph used by the paper's
// evaluation (§6.1) and by the static/dynamic IM baselines: vertices are the
// users of the current window, with a directed edge u→v whenever u
// influences v (v ∈ I_t(u), u ≠ v). Edge probabilities follow the weighted
// cascade (WC) model of Kempe et al.: p(u→v) = 1 / indeg(v).
package graph

import (
	"math/rand"

	"repro/internal/stream"
)

// NodeID indexes a vertex inside one Graph. Node numbering is dense and
// specific to the graph instance; use Graph.UserOf / Graph.NodeOf to
// translate.
type NodeID = int32

// Graph is an immutable directed influence graph under the WC model.
type Graph struct {
	users []stream.UserID
	index map[stream.UserID]NodeID
	out   [][]NodeID
	in    [][]NodeID
	edges int
}

// FromWindow materializes the influence graph G_t for the window suffix
// starting at start: exactly the construction the paper uses to feed IMM and
// UBI and to evaluate seed quality.
func FromWindow(st *stream.Stream, start stream.ActionID) *Graph {
	g := &Graph{index: map[stream.UserID]NodeID{}}
	// First pass: collect vertices (both influencers and influenced users).
	st.Influencers(start, func(u stream.UserID) bool {
		g.node(u)
		st.Influence(u, start, func(v stream.UserID) bool {
			g.node(v)
			return true
		})
		return true
	})
	g.out = make([][]NodeID, len(g.users))
	g.in = make([][]NodeID, len(g.users))
	// Second pass: edges u→v for v ∈ I(u), v ≠ u.
	st.Influencers(start, func(u stream.UserID) bool {
		un := g.index[u]
		st.Influence(u, start, func(v stream.UserID) bool {
			if v != u {
				vn := g.index[v]
				g.out[un] = append(g.out[un], vn)
				g.in[vn] = append(g.in[vn], un)
				g.edges++
			}
			return true
		})
		return true
	})
	return g
}

// Build constructs a graph directly from an edge list over user IDs,
// deduplicating edges. It backs tests and synthetic constructions.
func Build(edges [][2]stream.UserID) *Graph {
	g := &Graph{index: map[stream.UserID]NodeID{}}
	for _, e := range edges {
		g.node(e[0])
		g.node(e[1])
	}
	g.out = make([][]NodeID, len(g.users))
	g.in = make([][]NodeID, len(g.users))
	type pair struct{ a, b NodeID }
	seen := map[pair]bool{}
	for _, e := range edges {
		u, v := g.index[e[0]], g.index[e[1]]
		if u == v || seen[pair{u, v}] {
			continue
		}
		seen[pair{u, v}] = true
		g.out[u] = append(g.out[u], v)
		g.in[v] = append(g.in[v], u)
		g.edges++
	}
	return g
}

func (g *Graph) node(u stream.UserID) NodeID {
	if n, ok := g.index[u]; ok {
		return n
	}
	n := NodeID(len(g.users))
	g.users = append(g.users, u)
	g.index[u] = n
	return n
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.users) }

// Edges returns the number of directed edges.
func (g *Graph) Edges() int { return g.edges }

// UserOf returns the user at node n.
func (g *Graph) UserOf(n NodeID) stream.UserID { return g.users[n] }

// NodeOf returns the node of user u, if present.
func (g *Graph) NodeOf(u stream.UserID) (NodeID, bool) {
	n, ok := g.index[u]
	return n, ok
}

// Out returns the out-neighbours of n. Callers must not modify the slice.
func (g *Graph) Out(n NodeID) []NodeID { return g.out[n] }

// In returns the in-neighbours of n. Callers must not modify the slice.
func (g *Graph) In(n NodeID) []NodeID { return g.in[n] }

// Prob returns the WC activation probability of any edge entering v:
// 1 / indeg(v).
func (g *Graph) Prob(v NodeID) float64 {
	d := len(g.in[v])
	if d == 0 {
		return 0
	}
	return 1 / float64(d)
}

// NodesOf translates user IDs to node IDs, silently dropping users absent
// from the graph (users with no recorded influence in the window spread
// nothing under G_t).
func (g *Graph) NodesOf(users []stream.UserID) []NodeID {
	out := make([]NodeID, 0, len(users))
	for _, u := range users {
		if n, ok := g.index[u]; ok {
			out = append(out, n)
		}
	}
	return out
}

// RandomNode returns a uniformly random node; it panics on an empty graph.
func (g *Graph) RandomNode(rng *rand.Rand) NodeID {
	return NodeID(rng.Intn(len(g.users)))
}
