package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/stream"
)

func paperWindow(t *testing.T) *stream.Stream {
	t.Helper()
	st := stream.New()
	actions := []stream.Action{
		{ID: 1, User: 1, Parent: stream.NoParent},
		{ID: 2, User: 2, Parent: 1},
		{ID: 3, User: 3, Parent: stream.NoParent},
		{ID: 4, User: 3, Parent: 1},
		{ID: 5, User: 4, Parent: 3},
		{ID: 6, User: 1, Parent: 3},
		{ID: 7, User: 5, Parent: 3},
		{ID: 8, User: 4, Parent: 7},
	}
	for _, a := range actions {
		if _, err := st.Ingest(a); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func outUsers(g *Graph, u stream.UserID) []stream.UserID {
	n, ok := g.NodeOf(u)
	if !ok {
		return nil
	}
	var out []stream.UserID
	for _, v := range g.Out(n) {
		out = append(out, g.UserOf(v))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestFromWindowEdges(t *testing.T) {
	g := FromWindow(paperWindow(t), 1)
	// From Figure 1(b): I(u1)={u1,u2,u3}, I(u3)={u1,u3,u4,u5}, I(u5)={u4,u5};
	// self-loops are dropped.
	if got := outUsers(g, 1); !reflect.DeepEqual(got, []stream.UserID{2, 3}) {
		t.Errorf("out(u1) = %v, want [2 3]", got)
	}
	if got := outUsers(g, 3); !reflect.DeepEqual(got, []stream.UserID{1, 4, 5}) {
		t.Errorf("out(u3) = %v, want [1 4 5]", got)
	}
	if got := outUsers(g, 5); !reflect.DeepEqual(got, []stream.UserID{4}) {
		t.Errorf("out(u5) = %v, want [4]", got)
	}
	if got := outUsers(g, 2); len(got) != 0 {
		t.Errorf("out(u2) = %v, want empty", got)
	}
	if g.N() != 5 {
		t.Errorf("N = %d, want 5 (u6 is outside the window)", g.N())
	}
	if g.Edges() != 6 {
		t.Errorf("edges = %d, want 6", g.Edges())
	}
}

func TestWCProbabilities(t *testing.T) {
	g := FromWindow(paperWindow(t), 1)
	// indeg(u4) = 2 (from u3 and u5) -> p = 1/2.
	n4, _ := g.NodeOf(4)
	if got := g.Prob(n4); got != 0.5 {
		t.Errorf("p(·->u4) = %v, want 0.5", got)
	}
	// indeg(u2) = 1 -> p = 1.
	n2, _ := g.NodeOf(2)
	if got := g.Prob(n2); got != 1 {
		t.Errorf("p(·->u2) = %v, want 1", got)
	}
	// A node with no in-edges has probability 0.
	g2 := Build([][2]stream.UserID{{1, 2}})
	n1, _ := g2.NodeOf(1)
	if got := g2.Prob(n1); got != 0 {
		t.Errorf("p into source = %v, want 0", got)
	}
}

func TestBuildDeduplicatesAndDropsSelfLoops(t *testing.T) {
	g := Build([][2]stream.UserID{{1, 2}, {1, 2}, {3, 3}, {2, 1}})
	if g.Edges() != 2 {
		t.Fatalf("edges = %d, want 2", g.Edges())
	}
	if g.N() != 3 {
		t.Fatalf("N = %d, want 3", g.N())
	}
}

func TestInOutConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var edges [][2]stream.UserID
	for i := 0; i < 500; i++ {
		edges = append(edges, [2]stream.UserID{stream.UserID(rng.Intn(50)), stream.UserID(rng.Intn(50))})
	}
	g := Build(edges)
	outCount, inCount := 0, 0
	for n := 0; n < g.N(); n++ {
		outCount += len(g.Out(NodeID(n)))
		inCount += len(g.In(NodeID(n)))
	}
	if outCount != inCount || outCount != g.Edges() {
		t.Fatalf("out=%d in=%d edges=%d", outCount, inCount, g.Edges())
	}
	// Every out edge appears as an in edge.
	for n := 0; n < g.N(); n++ {
		for _, v := range g.Out(NodeID(n)) {
			found := false
			for _, u := range g.In(v) {
				if u == NodeID(n) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from in-list", n, v)
			}
		}
	}
}

func TestNodesOfDropsUnknown(t *testing.T) {
	g := Build([][2]stream.UserID{{1, 2}})
	got := g.NodesOf([]stream.UserID{1, 99, 2})
	if len(got) != 2 {
		t.Fatalf("NodesOf = %v, want 2 nodes", got)
	}
}

func TestUserNodeRoundTrip(t *testing.T) {
	g := FromWindow(paperWindow(t), 1)
	for u := stream.UserID(1); u <= 5; u++ {
		n, ok := g.NodeOf(u)
		if !ok {
			t.Fatalf("user %d missing", u)
		}
		if g.UserOf(n) != u {
			t.Fatalf("round trip failed for %d", u)
		}
	}
	if _, ok := g.NodeOf(6); ok {
		t.Fatal("u6 must not be present")
	}
}

func TestFromWindowSuffix(t *testing.T) {
	// Suffix start 5 (actions a5..a8): edges u3->{u4,u1,u5}, u5->u4.
	g := FromWindow(paperWindow(t), 5)
	if got := outUsers(g, 3); !reflect.DeepEqual(got, []stream.UserID{1, 4, 5}) {
		t.Errorf("out(u3) = %v, want [1 4 5]", got)
	}
	if got := outUsers(g, 1); len(got) != 0 {
		t.Errorf("out(u1) = %v, want empty in suffix", got)
	}
}

func TestRandomNodeInRange(t *testing.T) {
	g := Build([][2]stream.UserID{{1, 2}, {2, 3}})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		n := g.RandomNode(rng)
		if n < 0 || int(n) >= g.N() {
			t.Fatalf("node %d out of range", n)
		}
	}
}
