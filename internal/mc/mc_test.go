package mc

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/stream"
)

// line builds a path graph 1 -> 2 -> ... -> n.
func line(n int) *graph.Graph {
	var edges [][2]stream.UserID
	for i := 1; i < n; i++ {
		edges = append(edges, [2]stream.UserID{stream.UserID(i), stream.UserID(i + 1)})
	}
	return graph.Build(edges)
}

func TestDeterministicChainSpread(t *testing.T) {
	// Every node on the path has indegree 1, so WC probability 1: a seed at
	// the head activates everything, deterministically.
	g := line(10)
	got := Spread(g, []stream.UserID{1}, 50, 1)
	if got != 10 {
		t.Fatalf("spread = %v, want 10", got)
	}
	// Seeding the middle reaches only the tail half.
	got = Spread(g, []stream.UserID{6}, 50, 1)
	if got != 5 {
		t.Fatalf("spread from middle = %v, want 5", got)
	}
}

func TestSpreadOfEmptyInputs(t *testing.T) {
	g := line(5)
	if got := Spread(g, nil, 100, 1); got != 0 {
		t.Fatalf("no seeds: %v", got)
	}
	if got := Spread(g, []stream.UserID{1}, 0, 1); got != 0 {
		t.Fatalf("no rounds: %v", got)
	}
	if got := Spread(g, []stream.UserID{99}, 10, 1); got != 0 {
		t.Fatalf("unknown seed: %v", got)
	}
}

func TestStarSpreadMatchesAnalytic(t *testing.T) {
	// Star: center -> 20 leaves, each leaf also has a second in-edge from a
	// dummy, so p = 1/2 per leaf. E[spread(center)] = 1 + 20·(1/2) = 11.
	var edges [][2]stream.UserID
	for i := 1; i <= 20; i++ {
		edges = append(edges, [2]stream.UserID{100, stream.UserID(i)})
		edges = append(edges, [2]stream.UserID{200, stream.UserID(i)})
	}
	g := graph.Build(edges)
	got := Spread(g, []stream.UserID{100}, 60000, 7)
	if math.Abs(got-11) > 0.25 {
		t.Fatalf("star spread = %v, want ≈ 11", got)
	}
}

func TestSeedsCountOnceEach(t *testing.T) {
	g := line(4)
	// All nodes seeded: spread is exactly n regardless of randomness.
	got := Spread(g, []stream.UserID{1, 2, 3, 4}, 10, 3)
	if got != 4 {
		t.Fatalf("full seeding spread = %v, want 4", got)
	}
	// Duplicate seeds must not double count.
	got = Spread(g, []stream.UserID{4, 4, 4}, 10, 3)
	if got != 1 {
		t.Fatalf("duplicate seeds spread = %v, want 1", got)
	}
}

func TestSpreadMonotoneInSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var edges [][2]stream.UserID
	for i := 0; i < 400; i++ {
		edges = append(edges, [2]stream.UserID{stream.UserID(rng.Intn(60)), stream.UserID(rng.Intn(60))})
	}
	g := graph.Build(edges)
	s1 := Spread(g, []stream.UserID{1}, 4000, 11)
	s2 := Spread(g, []stream.UserID{1, 2, 3}, 4000, 11)
	if s2 < s1-0.5 {
		t.Fatalf("spread not monotone: %v -> %v", s1, s2)
	}
}

func TestSpreadReproducible(t *testing.T) {
	g := line(30)
	a := Spread(g, []stream.UserID{5, 9}, 500, 42)
	b := Spread(g, []stream.UserID{5, 9}, 500, 42)
	if a != b {
		t.Fatalf("same seed different results: %v vs %v", a, b)
	}
}

func TestEstimatorOnceBounds(t *testing.T) {
	g := line(8)
	est := NewEstimator(g, rand.New(rand.NewSource(2)))
	n1, _ := g.NodeOf(3)
	for i := 0; i < 50; i++ {
		got := est.Once([]graph.NodeID{n1})
		if got < 1 || got > 8 {
			t.Fatalf("Once = %d out of bounds", got)
		}
	}
	if est.Estimate(nil, 10) != 0 {
		t.Fatal("Estimate with no seeds must be 0")
	}
}

func BenchmarkSpread(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	var edges [][2]stream.UserID
	for i := 0; i < 20000; i++ {
		edges = append(edges, [2]stream.UserID{stream.UserID(rng.Intn(3000)), stream.UserID(rng.Intn(3000))})
	}
	g := graph.Build(edges)
	seeds := []stream.UserID{1, 2, 3, 4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Spread(g, seeds, 100, int64(i))
	}
}
