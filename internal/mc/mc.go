// Package mc estimates influence spread by Monte-Carlo simulation of the
// independent cascade process under the weighted cascade model — the
// quality metric of the paper's evaluation (§6.1: 10,000 simulation rounds
// per returned seed set).
package mc

import (
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/stream"
)

// Estimator runs cascade simulations over one graph, reusing scratch
// buffers across rounds. It is not safe for concurrent use; Spread spawns
// one Estimator per worker.
type Estimator struct {
	g     *graph.Graph
	rng   *rand.Rand
	mark  []uint32 // node -> generation of last activation
	gen   uint32
	queue []graph.NodeID
}

// NewEstimator returns an estimator over g seeded with rng.
func NewEstimator(g *graph.Graph, rng *rand.Rand) *Estimator {
	return &Estimator{g: g, rng: rng, mark: make([]uint32, g.N())}
}

// Once simulates a single cascade from the given seed nodes and returns the
// number of activated nodes (including the seeds).
func (e *Estimator) Once(seeds []graph.NodeID) int {
	e.gen++
	e.queue = e.queue[:0]
	active := 0
	for _, s := range seeds {
		if e.mark[s] != e.gen {
			e.mark[s] = e.gen
			e.queue = append(e.queue, s)
			active++
		}
	}
	for i := 0; i < len(e.queue); i++ {
		u := e.queue[i]
		for _, v := range e.g.Out(u) {
			if e.mark[v] == e.gen {
				continue
			}
			if e.rng.Float64() < e.g.Prob(v) {
				e.mark[v] = e.gen
				e.queue = append(e.queue, v)
				active++
			}
		}
	}
	return active
}

// Estimate averages rounds simulations from the given seed nodes.
func (e *Estimator) Estimate(seeds []graph.NodeID, rounds int) float64 {
	if len(seeds) == 0 || rounds <= 0 {
		return 0
	}
	total := 0
	for r := 0; r < rounds; r++ {
		total += e.Once(seeds)
	}
	return float64(total) / float64(rounds)
}

// Spread estimates the expected WC influence spread of a user seed set with
// the given number of simulation rounds, parallelized across CPUs. seed
// controls reproducibility.
func Spread(g *graph.Graph, seeds []stream.UserID, rounds int, seed int64) float64 {
	nodes := g.NodesOf(seeds)
	if len(nodes) == 0 || rounds <= 0 || g.N() == 0 {
		return 0
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > rounds {
		workers = rounds
	}
	per := rounds / workers
	extra := rounds % workers
	totals := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		r := per
		if w < extra {
			r++
		}
		wg.Add(1)
		go func(w, r int) {
			defer wg.Done()
			est := NewEstimator(g, rand.New(rand.NewSource(seed+int64(w)*7919)))
			t := 0
			for i := 0; i < r; i++ {
				t += est.Once(nodes)
			}
			totals[w] = t
		}(w, r)
	}
	wg.Wait()
	total := 0
	for _, t := range totals {
		total += t
	}
	return float64(total) / float64(rounds)
}
