package submod

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func TestCardinalityCoverage(t *testing.T) {
	c := NewCoverage(nil)
	if c.Value() != 0 || c.Len() != 0 {
		t.Fatalf("empty coverage: value=%v len=%d", c.Value(), c.Len())
	}
	if g := c.Add(1); g != 1 {
		t.Fatalf("first add gain = %v, want 1", g)
	}
	if g := c.Add(1); g != 0 {
		t.Fatalf("repeat add gain = %v, want 0", g)
	}
	c.Add(2)
	if c.Value() != 2 || c.Len() != 2 {
		t.Fatalf("value=%v len=%d, want 2, 2", c.Value(), c.Len())
	}
	if !c.Has(1) || c.Has(3) {
		t.Fatal("Has is wrong")
	}
	if c.Gain(3) != 1 || c.Gain(2) != 0 {
		t.Fatal("Gain is wrong")
	}
}

func TestWeightedCoverage(t *testing.T) {
	w := Table{W: map[stream.UserID]float64{1: 2.5, 2: 0.5}, Default: 1}
	c := NewCoverage(w)
	c.Add(1)
	c.Add(2)
	c.Add(9)
	if got, want := c.Value(), 4.0; got != want {
		t.Fatalf("weighted value = %v, want %v", got, want)
	}
}

func TestWeightFunc(t *testing.T) {
	w := WeightFunc(func(v stream.UserID) float64 { return float64(v) })
	if w.Weight(7) != 7 {
		t.Fatal("WeightFunc did not delegate")
	}
}

func TestCardinalityWeightIsOne(t *testing.T) {
	if (Cardinality{}).Weight(42) != 1 {
		t.Fatal("Cardinality weight must be 1")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	c := NewCoverage(nil)
	c.Add(1)
	cp := c.Clone()
	cp.Add(2)
	if c.Len() != 1 || cp.Len() != 2 {
		t.Fatalf("clone not independent: orig=%d clone=%d", c.Len(), cp.Len())
	}
	if c.Value() != 1 || cp.Value() != 2 {
		t.Fatalf("clone values wrong: %v, %v", c.Value(), cp.Value())
	}
}

func TestReset(t *testing.T) {
	c := NewCoverage(nil)
	c.Add(1)
	c.Add(2)
	c.Reset()
	if c.Len() != 0 || c.Value() != 0 {
		t.Fatal("Reset did not empty the accumulator")
	}
	c.Add(1)
	if c.Value() != 1 {
		t.Fatal("coverage unusable after Reset")
	}
}

func TestValueOfUnion(t *testing.T) {
	got := ValueOf(nil, []stream.UserID{1, 2}, []stream.UserID{2, 3}, nil)
	if got != 3 {
		t.Fatalf("ValueOf = %v, want 3", got)
	}
}

// TestCoverageIsMonotoneSubmodular checks the two structural properties the
// SIM frameworks rely on (paper §3 footnotes 3 and 4) on random instances:
// for A ⊆ B and x ∉ B, f(A∪x) − f(A) ≥ f(B∪x) − f(B), and f(A) ≤ f(B).
func TestCoverageIsMonotoneSubmodular(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		w := Table{W: map[stream.UserID]float64{}, Default: 0}
		for v := stream.UserID(0); v < 30; v++ {
			w.W[v] = r.Float64() * 3
		}
		a := NewCoverage(w)
		b := NewCoverage(w)
		for i := 0; i < 10; i++ {
			v := stream.UserID(r.Intn(30))
			a.Add(v)
			b.Add(v)
		}
		for i := 0; i < 10; i++ { // grow B beyond A
			b.Add(stream.UserID(r.Intn(30)))
		}
		if a.Value() > b.Value()+1e-12 {
			return false // monotonicity violated
		}
		x := stream.UserID(r.Intn(30))
		if b.Has(x) {
			return true // property quantifies over x ∉ B
		}
		return a.Gain(x) >= b.Gain(x)-1e-12
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestValueEqualsSumOfGains(t *testing.T) {
	f := func(ids []uint32) bool {
		c := NewCoverage(nil)
		total := 0.0
		for _, id := range ids {
			total += c.Add(stream.UserID(id % 64))
		}
		return total == c.Value() && c.Len() <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
