// Package submod provides the monotone submodular influence objectives used
// by SIM queries (paper §3) and an incremental coverage accumulator shared
// by the streaming oracles and the greedy baseline.
//
// The paper evaluates f(I_t(S)) where I_t(S) is the union of the seeds'
// influence sets. The main text uses the cardinality function f = |·|;
// Appendix A extends to weighted variants such as conformity-aware scores.
// Both are weighted coverage functions: each covered user v contributes a
// fixed non-negative weight, which makes f monotone and submodular in S and
// lets every algorithm compute marginal gains in time linear in the
// candidate's influence set.
package submod

import (
	"repro/internal/stream"
	"repro/internal/uintset"
)

// Weights assigns the value of covering a user for the first time. A nil
// Weights is treated as Cardinality by all consumers in this module.
type Weights interface {
	Weight(v stream.UserID) float64
}

// Cardinality is the influence function of the paper's main text:
// f(I(S)) = |I(S)|. Every covered user counts 1.
type Cardinality struct{}

// Weight implements Weights.
func (Cardinality) Weight(stream.UserID) float64 { return 1 }

// WeightFunc adapts a plain function to the Weights interface.
type WeightFunc func(stream.UserID) float64

// Weight implements Weights.
func (f WeightFunc) Weight(v stream.UserID) float64 { return f(v) }

// Table is a Weights backed by a map with a default for absent users. It
// implements the conformity-aware objective of Appendix A, where the weight
// of covering v is derived from v's offline conformity score Ω(v).
type Table struct {
	W       map[stream.UserID]float64
	Default float64
}

// Weight implements Weights.
func (t Table) Weight(v stream.UserID) float64 {
	if w, ok := t.W[v]; ok {
		return w
	}
	return t.Default
}

// weightOf normalizes a possibly-nil Weights.
func weightOf(w Weights, v stream.UserID) float64 {
	if w == nil {
		return 1
	}
	return w.Weight(v)
}

// Coverage accumulates a covered-user set and its objective value under a
// fixed Weights. The zero value is not usable; construct with NewCoverage.
// The covered set is an open-addressing uint32 set (package uintset): the
// oracles test membership hundreds of times per stream action, and this is
// the hot path of the whole system.
type Coverage struct {
	w       Weights
	covered *uintset.Set
	value   float64
}

// NewCoverage returns an empty accumulator for weights w (nil means
// cardinality).
func NewCoverage(w Weights) *Coverage {
	return &Coverage{w: w, covered: uintset.New(0)}
}

// Has reports whether v is already covered.
func (c *Coverage) Has(v stream.UserID) bool {
	return c.covered.Has(uint32(v))
}

// Add covers v, returning the marginal gain (0 when v was already covered).
func (c *Coverage) Add(v stream.UserID) float64 {
	if !c.covered.Add(uint32(v)) {
		return 0
	}
	g := weightOf(c.w, v)
	c.value += g
	return g
}

// Gain returns the marginal value of covering v without covering it.
func (c *Coverage) Gain(v stream.UserID) float64 {
	if c.Has(v) {
		return 0
	}
	return weightOf(c.w, v)
}

// Value returns f of the covered set.
func (c *Coverage) Value() float64 { return c.value }

// Len returns the number of covered users.
func (c *Coverage) Len() int { return c.covered.Len() }

// Clone returns an independent copy.
func (c *Coverage) Clone() *Coverage {
	return &Coverage{w: c.w, covered: c.covered.Clone(), value: c.value}
}

// Reset empties the accumulator, keeping the weights.
func (c *Coverage) Reset() {
	c.covered.Reset()
	c.value = 0
}

// ValueOf computes f of the union of the given user sets under w. It is the
// reference (non-incremental) evaluation used by tests and the offline
// greedy baseline.
func ValueOf(w Weights, sets ...[]stream.UserID) float64 {
	c := NewCoverage(w)
	for _, s := range sets {
		for _, v := range s {
			c.Add(v)
		}
	}
	return c.Value()
}
