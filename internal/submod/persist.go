package submod

import (
	"sort"

	"repro/internal/wire"
)

// Save serializes the covered set and accumulated value. Members are
// emitted sorted, so equal coverage state always produces equal bytes.
//
// The value is stored as raw float bits rather than recomputed on Restore:
// under weighted objectives the accumulated sum depends on the historical
// Add order, and restoring the exact bits is what keeps a resumed oracle's
// admission thresholds — and therefore its decisions — identical to an
// uninterrupted run.
func (c *Coverage) Save(w *wire.Writer) {
	members := make([]uint32, 0, c.covered.Len())
	c.covered.ForEach(func(k uint32) bool {
		members = append(members, k)
		return true
	})
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	w.Uvarint(uint64(len(members)))
	prev := uint32(0)
	for _, m := range members {
		w.Uvarint(uint64(m - prev))
		prev = m
	}
	w.F64(c.value)
}

// Restore replaces the accumulator's state with one saved by Save. The
// weights stay as constructed — they are configuration, not state.
func (c *Coverage) Restore(r *wire.Reader) {
	c.covered.Reset()
	n := r.Len(wire.MaxLen)
	prev := uint32(0)
	for i := 0; i < n && r.Err() == nil; i++ {
		prev += uint32(r.Uvarint())
		c.covered.Add(prev)
	}
	c.value = r.F64()
}
