package dataio

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/stream"
)

// validSnapshot builds a well-formed SIM2 snapshot through the real writer,
// so the fuzz seeds always track the current wire format.
func validSnapshot(tb testing.TB, sections map[string][]byte) []byte {
	tb.Helper()
	var buf bytes.Buffer
	sw, err := NewSnapshotWriter(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	for tag, payload := range sections {
		if err := sw.Section(tag, payload); err != nil {
			tb.Fatal(err)
		}
	}
	if err := sw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSnapshotReader throws arbitrary bytes at the SIM2 section reader. The
// invariants: never panic, always terminate, and accept-without-error only
// inputs that end in a proper end marker — plus the round-trip law that a
// snapshot rebuilt from the recovered sections yields those sections again.
func FuzzSnapshotReader(f *testing.F) {
	f.Add(validSnapshot(f, map[string][]byte{"CORE": []byte("abc")}))
	f.Add(validSnapshot(f, map[string][]byte{"CORE": {}, "NAME": []byte("x\x00y")}))
	full := validSnapshot(f, map[string][]byte{"CORE": []byte("payload")})
	f.Add(full[:len(full)-3])                         // torn mid end-marker
	f.Add([]byte("SIM1"))                             // wrong magic
	f.Add([]byte("SIM2"))                             // header only
	f.Add([]byte("SIM2\x01CORE\xff\xff\xff\xff\x7f")) // hostile length claim
	f.Fuzz(func(t *testing.T, data []byte) {
		sr, err := NewSnapshotReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		type sec struct {
			tag     string
			payload []byte
		}
		var secs []sec
		for {
			tag, payload, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return
			}
			secs = append(secs, sec{tag, payload})
		}
		// The input parsed fully: rewriting the recovered sections must
		// round-trip through the reader byte for byte.
		var buf bytes.Buffer
		sw, err := NewSnapshotWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range secs {
			if err := sw.Section(s.tag, s.payload); err != nil {
				t.Fatalf("rewriting accepted section %q: %v", s.tag, err)
			}
		}
		if err := sw.Close(); err != nil {
			t.Fatal(err)
		}
		rr, err := NewSnapshotReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			tag, payload, err := rr.Next()
			if err == io.EOF {
				if i != len(secs) {
					t.Fatalf("round-trip lost sections: %d != %d", i, len(secs))
				}
				break
			}
			if err != nil {
				t.Fatalf("round-trip section %d: %v", i, err)
			}
			if tag != secs[i].tag || !bytes.Equal(payload, secs[i].payload) {
				t.Fatalf("round-trip section %d: %q/%q != %q/%q", i, tag, payload, secs[i].tag, secs[i].payload)
			}
		}
	})
}

// FuzzReadAuto drives the format sniffer (SIM1 binary magic, '{' for
// NDJSON, TSV fallback) with arbitrary bytes. Invariants: no panic, finite
// work, and every action delivered before an error satisfies the formats'
// stated guarantees (monotonic IDs for binary input).
func FuzzReadAuto(f *testing.F) {
	var bin bytes.Buffer
	if err := WriteBinary(&bin, sim2Actions()); err != nil {
		f.Fatal(err)
	}
	f.Add(bin.Bytes())
	f.Add([]byte("{\"id\":1,\"user\":2}\n{\"id\":3,\"user\":4,\"parent\":1}\n"))
	f.Add([]byte("1\t2\t-1\n3\t4\t1\n"))
	f.Add([]byte("  \r\n\t {\"id\":9,\"user\":1}\n"))
	f.Add([]byte("# comment\n5\t6\t-1\n"))
	f.Add([]byte("SIM1\x01\x02\x03"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		sniffedBinary := len(data) >= 4 && bytes.Equal(data[:4], binaryMagic[:])
		var prev stream.ActionID
		err := ReadAuto(bytes.NewReader(data), func(a stream.Action) bool {
			if sniffedBinary {
				if a.ID <= prev {
					t.Fatalf("binary reader delivered non-monotonic ID %d after %d", a.ID, prev)
				}
				prev = a.ID
			}
			return true
		})
		_ = err
	})
}

// sim2Actions is a tiny valid action stream for seeding.
func sim2Actions() []stream.Action {
	return []stream.Action{
		{ID: 1, User: 10, Parent: stream.NoParent},
		{ID: 2, User: 11, Parent: 1},
		{ID: 5, User: 12, Parent: 2},
	}
}
