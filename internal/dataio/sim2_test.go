package dataio

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// buildSnapshot writes a two-section snapshot and returns its bytes.
func buildSnapshot(t *testing.T, sections map[string][]byte, order []string) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw, err := NewSnapshotWriter(&buf)
	if err != nil {
		t.Fatalf("NewSnapshotWriter: %v", err)
	}
	for _, tag := range order {
		if err := sw.Section(tag, sections[tag]); err != nil {
			t.Fatalf("Section %q: %v", tag, err)
		}
	}
	if err := sw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return buf.Bytes()
}

func readAllSections(t *testing.T, b []byte) map[string][]byte {
	t.Helper()
	sr, err := NewSnapshotReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("NewSnapshotReader: %v", err)
	}
	out := map[string][]byte{}
	for {
		tag, payload, err := sr.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out[tag] = payload
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	in := map[string][]byte{
		"AAAA": []byte("alpha payload"),
		"BBBB": {},
		"CCCC": bytes.Repeat([]byte{0xfe}, 1<<15),
	}
	b := buildSnapshot(t, in, []string{"AAAA", "BBBB", "CCCC"})
	out := readAllSections(t, b)
	if len(out) != len(in) {
		t.Fatalf("read %d sections, want %d", len(out), len(in))
	}
	for tag, want := range in {
		if !bytes.Equal(out[tag], want) {
			t.Errorf("section %q payload mismatch (%d vs %d bytes)", tag, len(out[tag]), len(want))
		}
	}
}

// TestSnapshotUnknownSectionSkip is the forward-compatibility contract: a
// reader that does not recognize a tag reads past it and still sees the
// sections it does know.
func TestSnapshotUnknownSectionSkip(t *testing.T) {
	in := map[string][]byte{
		"KNWN": []byte("known"),
		"FUTR": []byte("from a future writer"),
	}
	b := buildSnapshot(t, in, []string{"FUTR", "KNWN"})
	sr, err := NewSnapshotReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("NewSnapshotReader: %v", err)
	}
	var known []byte
	for {
		tag, payload, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if tag == "KNWN" {
			known = payload
		} // FUTR: skipped by simply not handling it
	}
	if string(known) != "known" {
		t.Fatalf("known section not recovered after skipping unknown one: %q", known)
	}
}

func TestSnapshotBadMagic(t *testing.T) {
	if _, err := NewSnapshotReader(bytes.NewReader([]byte("NOPE....."))); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("bad magic error = %v, want ErrNotSnapshot", err)
	}
	if _, err := NewSnapshotReader(bytes.NewReader(nil)); !errors.Is(err, ErrNotSnapshot) {
		t.Fatalf("empty input error = %v, want ErrNotSnapshot", err)
	}
}

func TestSnapshotFutureVersionRejected(t *testing.T) {
	b := buildSnapshot(t, map[string][]byte{"AAAA": []byte("x")}, []string{"AAAA"})
	b[4] = 0x7f // bump the uvarint container version far past SnapshotVersion
	if _, err := NewSnapshotReader(bytes.NewReader(b)); err == nil {
		t.Fatal("future container version accepted")
	}
}

func TestSnapshotTruncationDetected(t *testing.T) {
	b := buildSnapshot(t, map[string][]byte{"AAAA": []byte("payload here")}, []string{"AAAA"})
	for _, cut := range []int{1, 5, len(b) - 1, len(b) - 9} {
		trunc := b[:len(b)-cut]
		sr, err := NewSnapshotReader(bytes.NewReader(trunc))
		if err != nil {
			continue // truncated inside the header: also acceptable
		}
		for {
			_, _, err = sr.Next()
			if err != nil {
				break
			}
		}
		if err == io.EOF {
			t.Fatalf("truncation of %d bytes went undetected", cut)
		}
		if !errors.Is(err, ErrSnapshotTruncated) && !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("truncation of %d bytes: error = %v, want ErrSnapshotTruncated/Corrupt", cut, err)
		}
	}
}

func TestSnapshotCRCMismatch(t *testing.T) {
	b := buildSnapshot(t, map[string][]byte{"AAAA": []byte("payload here")}, []string{"AAAA"})
	// Flip a payload byte: header is 4 magic + 1 version; section header is
	// 4 tag + 1 length, so offset 10 sits inside the payload.
	b[10] ^= 0xff
	sr, err := NewSnapshotReader(bytes.NewReader(b))
	if err != nil {
		t.Fatalf("NewSnapshotReader: %v", err)
	}
	_, _, err = sr.Next()
	if !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("flipped payload byte: error = %v, want ErrSnapshotCorrupt", err)
	}
}

func TestSnapshotWriterTagValidation(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewSnapshotWriter(&buf)
	if err != nil {
		t.Fatalf("NewSnapshotWriter: %v", err)
	}
	if err := sw.Section("TOOLONG", nil); err == nil {
		t.Fatal("7-byte tag accepted")
	}
	sw2, _ := NewSnapshotWriter(&buf)
	if err := sw2.Section("SEND", nil); err == nil {
		t.Fatal("reserved end tag accepted")
	}
}
