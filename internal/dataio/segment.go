package dataio

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/stream"
	"repro/internal/wire"
)

// Cold segments: the on-disk half of the stream's tiered window state
// (stream.ColdStore). A segment is one immutable file in the SIM2 container
// holding the spilled contribution logs of one spill pass:
//
//	"SIM2" magic · uvarint container version
//	SGH0 · uvarint format version · uvarint segment ID · uvarint log count
//	       · uvarint entry count
//	SGD0 · entry count × 12-byte entries (uint32 user LE · int64 time LE)
//	SEND
//
// Entries are fixed width so an extent is pure arithmetic: log i of the
// segment occupies bytes [off, off+12·count) of the SGD0 payload. Files are
// published with the temp/fsync/rename dance (AtomicWriteFile), so a crash
// mid-spill leaves only a *.tmp file, never a torn segment; every file is
// CRC-validated in full once at open (or immediately after write), after
// which extent reads skip per-read checksums. On platforms with mmap and a
// real filesystem the validated file stays memory-mapped and reads are
// zero-copy; otherwise reads are positioned I/O through the fault.FS seam,
// which keeps every cold read an injectable fault point.

// Segment section tags and the segment layout version inside SGH0.
const (
	segHeaderTag     = "SGH0"
	segDataTag       = "SGD0"
	segFormatVersion = 1
	segEntryBytes    = 12
)

// segPrefix/segSuffix frame a segment file name: seg-<id>.sim2.
const (
	segPrefix = "seg-"
	segSuffix = ".sim2"
)

// SegmentFileName returns the file name of segment id within a spill
// directory.
func SegmentFileName(id stream.SegmentID) string {
	return fmt.Sprintf("%s%d%s", segPrefix, uint64(id), segSuffix)
}

// parseSegmentName inverts SegmentFileName.
func parseSegmentName(name string) (stream.SegmentID, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(name[len(segPrefix):len(name)-len(segSuffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return stream.SegmentID(n), true
}

// segInfo is the identity of one validated segment file.
type segInfo struct {
	id         stream.SegmentID
	logCount   int
	entryCount int
	dataOff    int64 // file offset of the SGD0 payload
	dataLen    int64
	dataCRC    uint32 // CRC-32 (IEEE) of the SGD0 payload, as stored in file
	size       int64  // total file size
}

// parseSegment validates a complete segment image — framing, section CRCs,
// header consistency, end marker — and returns its identity. It is the
// hardening boundary for cold data: everything after a successful parse
// trusts offsets arithmetically.
func parseSegment(data []byte) (segInfo, error) {
	var info segInfo
	info.size = int64(len(data))
	if len(data) < len(snapshotMagic) || !bytes.Equal(data[:4], snapshotMagic[:]) {
		return info, ErrNotSnapshot
	}
	off := 4
	v, n := binary.Uvarint(data[off:])
	if n <= 0 {
		return info, ErrSnapshotTruncated
	}
	if v > SnapshotVersion {
		return info, fmt.Errorf("dataio: segment container version %d is newer than supported version %d", v, SnapshotVersion)
	}
	off += n
	var sawHeader, sawData, sawEnd bool
	for !sawEnd {
		if off+4 > len(data) {
			return info, ErrSnapshotTruncated
		}
		tag := string(data[off : off+4])
		off += 4
		plen64, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return info, ErrSnapshotTruncated
		}
		off += n
		if plen64 > maxSectionBytes {
			return info, fmt.Errorf("%w: section %q claims %d bytes", ErrSnapshotCorrupt, tag, plen64)
		}
		plen := int(plen64)
		if off+plen+4 > len(data) || off+plen+4 < off {
			return info, ErrSnapshotTruncated
		}
		payload := data[off : off+plen]
		off += plen
		want := binary.LittleEndian.Uint32(data[off : off+4])
		off += 4
		got := crc32.Checksum(payload, snapshotCRC)
		if got != want {
			return info, fmt.Errorf("%w: section %q CRC mismatch (got %08x, want %08x)", ErrSnapshotCorrupt, tag, got, want)
		}
		switch tag {
		case segHeaderTag:
			r := wire.NewReader(bytes.NewReader(payload))
			if fv := r.Uvarint(); r.Err() == nil && fv != segFormatVersion {
				return info, fmt.Errorf("%w: unsupported segment format version %d", ErrSnapshotCorrupt, fv)
			}
			info.id = stream.SegmentID(r.Uvarint())
			info.logCount = int(r.Uvarint())
			info.entryCount = int(r.Uvarint())
			if err := r.Err(); err != nil {
				return info, fmt.Errorf("%w: segment header: %v", ErrSnapshotCorrupt, err)
			}
			sawHeader = true
		case segDataTag:
			info.dataOff = int64(off - 4 - plen)
			info.dataLen = int64(plen)
			info.dataCRC = want
			sawData = true
		case snapshotEndTag:
			sawEnd = true
		default:
			// Unknown section from a newer writer: validated and skipped.
		}
	}
	if !sawHeader || !sawData {
		return info, fmt.Errorf("%w: segment missing required sections (header=%v, data=%v)", ErrSnapshotCorrupt, sawHeader, sawData)
	}
	if info.entryCount < 0 || info.logCount < 0 || int64(info.entryCount)*segEntryBytes != info.dataLen {
		return info, fmt.Errorf("%w: segment header claims %d entries for %d data bytes", ErrSnapshotCorrupt, info.entryCount, info.dataLen)
	}
	return info, nil
}

// segment is one validated segment known to the store.
type segment struct {
	info segInfo
	path string
	refs int    // live extents referencing this segment
	data []byte // whole-file mmap (nil on the seam/pread path)
}

// SegmentStore implements stream.ColdStore over a directory of segment
// files. Like the Stream it backs, it is single-writer: one goroutine owns
// all calls.
type SegmentStore struct {
	fs      fault.FS
	dir     string
	useMmap bool
	nextID  stream.SegmentID
	segs    map[stream.SegmentID]*segment
	// invalid holds files that failed validation at open: they are never
	// served (a snapshot referencing one fails its Retain loudly) and are
	// deleted by the next GC.
	invalid []string
}

// OpenSegmentStore scans dir (created if missing) for existing segment
// files, validates each in full, and returns a store ready to serve and
// write segments. Leftover *.tmp files from a crash mid-spill are removed;
// files that fail validation are quarantined for GC rather than trusted or
// deleted — a snapshot that references one fails its restore instead of
// silently losing state. All scanned segments start with zero references;
// the caller re-adopts the ones its snapshot mentions via Retain.
func OpenSegmentStore(fs fault.FS, dir string) (*SegmentStore, error) {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dataio: opening segment store: %w", err)
	}
	st := &SegmentStore{
		fs:      fs,
		dir:     dir,
		useMmap: mmapSupported && fs == fault.OS(),
		nextID:  1,
		segs:    map[stream.SegmentID]*segment{},
	}
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("dataio: scanning segment store: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") && strings.HasPrefix(name, segPrefix) {
			fs.Remove(filepath.Join(dir, name)) // torn spill; best effort
			continue
		}
		id, ok := parseSegmentName(name)
		if !ok {
			continue
		}
		if id >= st.nextID {
			st.nextID = id + 1
		}
		path := filepath.Join(dir, name)
		seg, err := st.loadSegment(id, path)
		if err != nil {
			st.invalid = append(st.invalid, path)
			continue
		}
		st.segs[id] = seg
	}
	return st, nil
}

// loadSegment validates the file at path as segment id and (on the mmap
// path) keeps it mapped.
func (st *SegmentStore) loadSegment(id stream.SegmentID, path string) (*segment, error) {
	var data []byte
	var mapped bool
	if st.useMmap {
		m, err := mapFile(path)
		if err != nil {
			return nil, err
		}
		data, mapped = m, true
	} else {
		d, err := st.fs.ReadFile(path)
		if err != nil {
			return nil, err
		}
		data = d
	}
	info, err := parseSegment(data)
	if err == nil && info.id != id {
		err = fmt.Errorf("%w: file %s carries segment ID %d", ErrSnapshotCorrupt, filepath.Base(path), uint64(info.id))
	}
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return nil, err
	}
	seg := &segment{info: info, path: path}
	if mapped {
		seg.data = data
	}
	return seg, nil
}

// WriteLogs implements stream.ColdStore: one new immutable segment holding
// every given log, published atomically and re-validated before any extent
// is handed out. The returned extents carry one store reference each.
func (st *SegmentStore) WriteLogs(logs [][]stream.Contrib) ([]stream.Extent, error) {
	id := st.nextID
	path := filepath.Join(st.dir, SegmentFileName(id))

	entries := 0
	for _, l := range logs {
		entries += len(l)
	}
	var head bytes.Buffer
	hw := wire.NewWriter(&head)
	hw.Uvarint(segFormatVersion)
	hw.Uvarint(uint64(id))
	hw.Uvarint(uint64(len(logs)))
	hw.Uvarint(uint64(entries))
	if err := hw.Err(); err != nil {
		return nil, err
	}
	data := make([]byte, 0, entries*segEntryBytes)
	var scratch [segEntryBytes]byte
	for _, l := range logs {
		for _, c := range l {
			binary.LittleEndian.PutUint32(scratch[0:4], uint32(c.V))
			binary.LittleEndian.PutUint64(scratch[4:12], uint64(c.T))
			data = append(data, scratch[:]...)
		}
	}

	err := AtomicWriteFile(st.fs, path, func(w io.Writer) error {
		sw, err := NewSnapshotWriter(w)
		if err != nil {
			return err
		}
		if err := sw.Section(segHeaderTag, head.Bytes()); err != nil {
			return err
		}
		if err := sw.Section(segDataTag, data); err != nil {
			return err
		}
		return sw.Close()
	})
	if err != nil {
		return nil, err
	}

	// Read the published file back through the same validation as boot:
	// the extents handed out below are backed by bytes proven durable and
	// well-formed, and the mmap path keeps this mapping for all reads.
	seg, err := st.loadSegment(id, path)
	if err != nil {
		st.fs.Remove(path)
		return nil, fmt.Errorf("dataio: verifying written segment %d: %w", uint64(id), err)
	}
	seg.refs = len(logs)
	st.segs[id] = seg
	st.nextID = id + 1

	exts := make([]stream.Extent, len(logs))
	off := int64(0)
	for i, l := range logs {
		exts[i] = stream.Extent{
			Seg:   id,
			Off:   off,
			Count: len(l),
			MaxT:  l[0].T,
		}
		off += int64(len(l)) * segEntryBytes
	}
	return exts, nil
}

// ReadLog implements stream.ColdStore.
func (st *SegmentStore) ReadLog(ext stream.Extent, buf []stream.Contrib) ([]stream.Contrib, error) {
	seg, ok := st.segs[ext.Seg]
	if !ok {
		return nil, fmt.Errorf("dataio: read of unknown segment %d", uint64(ext.Seg))
	}
	n := int64(ext.Count) * segEntryBytes
	if ext.Off < 0 || ext.Count < 0 || ext.Off+n > seg.info.dataLen {
		return nil, fmt.Errorf("dataio: extent [%d,+%d) outside segment %d data (%d bytes)",
			ext.Off, n, uint64(ext.Seg), seg.info.dataLen)
	}
	var raw []byte
	if seg.data != nil {
		raw = seg.data[seg.info.dataOff+ext.Off : seg.info.dataOff+ext.Off+n]
	} else {
		f, err := st.fs.OpenFile(seg.path, os.O_RDONLY, 0)
		if err != nil {
			return nil, fmt.Errorf("dataio: reading segment %d: %w", uint64(ext.Seg), err)
		}
		if _, err := f.Seek(seg.info.dataOff+ext.Off, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("dataio: reading segment %d: %w", uint64(ext.Seg), err)
		}
		raw = make([]byte, n)
		if _, err := io.ReadFull(f, raw); err != nil {
			f.Close()
			return nil, fmt.Errorf("dataio: reading segment %d: %w", uint64(ext.Seg), err)
		}
		f.Close()
	}
	out := buf
	for i := 0; i < ext.Count; i++ {
		e := raw[i*segEntryBytes:]
		out = append(out, stream.Contrib{
			V: stream.UserID(binary.LittleEndian.Uint32(e[0:4])),
			T: stream.ActionID(binary.LittleEndian.Uint64(e[4:12])),
		})
	}
	return out, nil
}

// Retain implements stream.ColdStore.
func (st *SegmentStore) Retain(seg stream.SegmentID) error {
	s, ok := st.segs[seg]
	if !ok {
		return fmt.Errorf("dataio: retain of unknown segment %d", uint64(seg))
	}
	s.refs++
	return nil
}

// Release implements stream.ColdStore. A segment whose count reaches zero
// is retired, not deleted: the on-disk snapshot may still reference it
// until the next snapshot supersedes it, at which point GC may delete it.
func (st *SegmentStore) Release(seg stream.SegmentID) {
	if s, ok := st.segs[seg]; ok && s.refs > 0 {
		s.refs--
	}
}

// Stat implements stream.ColdStore.
func (st *SegmentStore) Stat(seg stream.SegmentID) (stream.SegmentStat, error) {
	s, ok := st.segs[seg]
	if !ok {
		return stream.SegmentStat{}, fmt.Errorf("dataio: stat of unknown segment %d", uint64(seg))
	}
	return stream.SegmentStat{CRC: s.info.dataCRC, Size: s.info.size}, nil
}

// LiveSegments returns the number of segments with at least one live
// extent — the cold_segments serving metric.
func (st *SegmentStore) LiveSegments() int {
	n := 0
	for _, s := range st.segs {
		if s.refs > 0 {
			n++
		}
	}
	return n
}

// GC deletes every retired (zero-reference) segment file plus anything
// quarantined at open, returning how many files were removed. It must only
// be called when the caller knows no durable snapshot references retired
// segments — the serving layer calls it immediately after publishing a new
// snapshot, when the on-disk manifest and the in-memory extents coincide.
// Library users managing their own SaveTo destinations should call it only
// if those snapshots are gone or superseded.
func (st *SegmentStore) GC() (removed int, err error) {
	for id, s := range st.segs {
		if s.refs > 0 {
			continue
		}
		if s.data != nil {
			unmapFile(s.data)
			s.data = nil
		}
		if rerr := st.fs.Remove(s.path); rerr != nil && err == nil {
			err = rerr
		} else if rerr == nil {
			removed++
		}
		delete(st.segs, id)
	}
	for _, path := range st.invalid {
		if rerr := st.fs.Remove(path); rerr != nil && err == nil {
			err = rerr
		} else if rerr == nil {
			removed++
		}
	}
	st.invalid = nil
	return removed, err
}

// Close releases every mapping. The store must not be used afterwards.
func (st *SegmentStore) Close() error {
	var err error
	for _, s := range st.segs {
		if s.data != nil {
			if uerr := unmapFile(s.data); uerr != nil && err == nil {
				err = uerr
			}
			s.data = nil
		}
	}
	return err
}
