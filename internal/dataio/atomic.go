package dataio

import (
	"fmt"
	"io"
	"os"

	"repro/internal/fault"
)

// AtomicWriteFile publishes a file via the temp-file/fsync/rename dance:
// write writes the full contents to <path>.tmp, the temp file is fsynced
// and closed, and only then renamed over path — so path always names a
// complete file, never a torn prefix. The SIM2 snapshot writer is the main
// caller: a crash at ANY step leaves the previous snapshot intact.
//
// All filesystem access goes through fs (the fault.FS seam), so each step
// — create, write, fsync, close, rename — is an injectable fault point. On
// any failure the temp file is removed (best effort) and path is
// untouched.
func AtomicWriteFile(fs fault.FS, path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("dataio: atomic write %s: %w", path, err)
	}
	if err := write(f); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("dataio: atomic write %s: %w", path, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fs.Remove(tmp)
		return fmt.Errorf("dataio: atomic write %s: sync: %w", path, err)
	}
	if err := f.Close(); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("dataio: atomic write %s: close: %w", path, err)
	}
	if err := fs.Rename(tmp, path); err != nil {
		fs.Remove(tmp)
		return fmt.Errorf("dataio: atomic write %s: rename: %w", path, err)
	}
	return nil
}
