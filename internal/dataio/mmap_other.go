//go:build !(linux || darwin)

package dataio

import "errors"

// mmapSupported is false on platforms without a (wired-up) mmap; the
// segment store falls back to positioned reads through fault.FS.
const mmapSupported = false

func mapFile(path string) ([]byte, error) {
	return nil, errors.New("dataio: mmap not supported on this platform")
}

func unmapFile(b []byte) error { return nil }
