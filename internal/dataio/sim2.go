package dataio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// SIM2 is the repository's snapshot container format: the durable
// serialization of a sim.Tracker (and everything below it) written by
// Tracker.SaveTo and read by sim.Load.
//
// Layout:
//
//	"SIM2" magic · uvarint container version
//	section*     · 4-byte tag · uvarint payload length · payload · CRC-32 (IEEE, LE)
//	end section  · tag "SEND" with empty payload
//
// Every section is length-prefixed, so a reader that does not know a tag
// skips it — the forward-compatibility rule that lets newer writers add
// sections without breaking older readers. Every payload carries its own
// CRC so corruption is detected per section, and the explicit "SEND" end
// marker distinguishes a complete snapshot from one truncated by a crash
// mid-write (a reader hitting EOF before "SEND" reports ErrSnapshotTruncated
// instead of silently loading a prefix).

// snapshotMagic starts every SIM2 snapshot.
var snapshotMagic = [4]byte{'S', 'I', 'M', '2'}

// SnapshotVersion is the container version written by NewSnapshotWriter.
// Readers reject higher versions: the container layout itself changed.
// (Payload evolution does not bump this — unknown sections are skipped and
// each section payload carries its own layer version.)
const SnapshotVersion = 1

// snapshotEndTag terminates a snapshot.
const snapshotEndTag = "SEND"

// maxSectionBytes bounds a single section payload (1 GiB): a corrupt or
// hostile length prefix fails fast instead of attempting the allocation.
const maxSectionBytes = 1 << 30

// Snapshot container errors.
var (
	// ErrNotSnapshot is returned when the input does not start with the
	// SIM2 magic.
	ErrNotSnapshot = errors.New("dataio: not a SIM2 snapshot")
	// ErrSnapshotTruncated is returned when the input ends before the
	// snapshot's end marker — a partially written snapshot file.
	ErrSnapshotTruncated = errors.New("dataio: truncated SIM2 snapshot")
	// ErrSnapshotCorrupt is wrapped by section-level integrity failures
	// (CRC mismatch, malformed framing).
	ErrSnapshotCorrupt = errors.New("dataio: corrupt SIM2 snapshot")
)

var snapshotCRC = crc32.IEEETable

// SnapshotWriter emits a SIM2 snapshot section by section. Sections appear
// in write order; Close writes the end marker. Methods after an error are
// no-ops returning the first error.
type SnapshotWriter struct {
	w      *bufio.Writer
	err    error
	closed bool
}

// NewSnapshotWriter writes the SIM2 header and returns a writer for the
// sections that follow.
func NewSnapshotWriter(w io.Writer) (*SnapshotWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	sw := &SnapshotWriter{w: bw}
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		sw.err = err
		return nil, err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], SnapshotVersion)
	if _, err := bw.Write(buf[:n]); err != nil {
		sw.err = err
		return nil, err
	}
	return sw, nil
}

// Section writes one tagged, CRC-protected section. tag must be exactly 4
// bytes and must not be the reserved end tag.
func (sw *SnapshotWriter) Section(tag string, payload []byte) error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		sw.err = errors.New("dataio: Section after Close")
		return sw.err
	}
	if len(tag) != 4 {
		sw.err = fmt.Errorf("dataio: section tag %q must be 4 bytes", tag)
		return sw.err
	}
	if tag == snapshotEndTag {
		sw.err = fmt.Errorf("dataio: section tag %q is reserved", tag)
		return sw.err
	}
	return sw.writeSection(tag, payload)
}

func (sw *SnapshotWriter) writeSection(tag string, payload []byte) error {
	var buf [binary.MaxVarintLen64]byte
	if _, err := sw.w.WriteString(tag); err != nil {
		sw.err = err
		return err
	}
	n := binary.PutUvarint(buf[:], uint64(len(payload)))
	if _, err := sw.w.Write(buf[:n]); err != nil {
		sw.err = err
		return err
	}
	if _, err := sw.w.Write(payload); err != nil {
		sw.err = err
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(payload, snapshotCRC))
	if _, err := sw.w.Write(crc[:]); err != nil {
		sw.err = err
		return err
	}
	return nil
}

// Close writes the end marker and flushes. The snapshot is complete — and
// loadable — only after Close returns nil.
func (sw *SnapshotWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return nil
	}
	sw.closed = true
	if err := sw.writeSection(snapshotEndTag, nil); err != nil {
		return err
	}
	if err := sw.w.Flush(); err != nil {
		sw.err = err
		return err
	}
	return nil
}

// SnapshotReader iterates the sections of a SIM2 snapshot.
type SnapshotReader struct {
	r    *bufio.Reader
	err  error
	done bool
}

// NewSnapshotReader validates the SIM2 header and returns a section
// iterator. It fails with ErrNotSnapshot on a wrong magic and a descriptive
// error on a container version newer than this reader understands.
func NewSnapshotReader(r io.Reader) (*SnapshotReader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, ErrNotSnapshot
		}
		return nil, fmt.Errorf("dataio: reading snapshot header: %w", err)
	}
	if magic != snapshotMagic {
		return nil, ErrNotSnapshot
	}
	v, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, ErrSnapshotTruncated
	}
	if v > SnapshotVersion {
		return nil, fmt.Errorf("dataio: SIM2 snapshot version %d is newer than supported version %d", v, SnapshotVersion)
	}
	return &SnapshotReader{r: br}, nil
}

// Next returns the next section's tag and payload (CRC-verified). It
// returns io.EOF after the end marker; an input that ends without one fails
// with ErrSnapshotTruncated. Unknown tags are the caller's to skip — simply
// call Next again.
func (sr *SnapshotReader) Next() (tag string, payload []byte, err error) {
	if sr.err != nil {
		return "", nil, sr.err
	}
	if sr.done {
		return "", nil, io.EOF
	}
	var tagBuf [4]byte
	if _, err := io.ReadFull(sr.r, tagBuf[:]); err != nil {
		sr.err = ErrSnapshotTruncated
		return "", nil, sr.err
	}
	n, err := binary.ReadUvarint(sr.r)
	if err != nil {
		sr.err = ErrSnapshotTruncated
		return "", nil, sr.err
	}
	if n > maxSectionBytes {
		sr.err = fmt.Errorf("%w: section %q claims %d bytes", ErrSnapshotCorrupt, tagBuf[:], n)
		return "", nil, sr.err
	}
	payload, err = readPayload(sr.r, n)
	if err != nil {
		sr.err = ErrSnapshotTruncated
		return "", nil, sr.err
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(sr.r, crcBuf[:]); err != nil {
		sr.err = ErrSnapshotTruncated
		return "", nil, sr.err
	}
	want := binary.LittleEndian.Uint32(crcBuf[:])
	if got := crc32.Checksum(payload, snapshotCRC); got != want {
		sr.err = fmt.Errorf("%w: section %q CRC mismatch (got %08x, want %08x)", ErrSnapshotCorrupt, tagBuf[:], got, want)
		return "", nil, sr.err
	}
	if string(tagBuf[:]) == snapshotEndTag {
		sr.done = true
		return "", nil, io.EOF
	}
	return string(tagBuf[:]), payload, nil
}

// readPayload reads exactly n bytes, growing the buffer in bounded chunks:
// a corrupt or hostile length prefix far larger than the actual input fails
// after reading what is really there instead of allocating the claimed size
// up front.
func readPayload(r io.Reader, n uint64) ([]byte, error) {
	const chunk = 1 << 20
	buf := make([]byte, 0, min(n, chunk))
	for uint64(len(buf)) < n {
		step := min(n-uint64(len(buf)), chunk)
		start := len(buf)
		buf = append(buf, make([]byte, step)...)
		if _, err := io.ReadFull(r, buf[start:]); err != nil {
			return nil, err
		}
	}
	return buf, nil
}
