package dataio

import (
	"bytes"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"

	"repro/internal/fault"
	"repro/internal/stream"
)

// segLogs is a small spill batch: three descending-recency logs of unequal
// length, covering multi-log offsets within one segment.
func segLogs() [][]stream.Contrib {
	return [][]stream.Contrib{
		{{V: 7, T: 90}, {V: 3, T: 40}, {V: 9, T: 10}},
		{{V: 2, T: 85}},
		{{V: 5, T: 80}, {V: 1, T: 20}},
	}
}

// TestSegmentStoreRoundTrip drives the full lifecycle on the mmap path:
// write, read every extent back, stat, release to zero, GC the file away.
func TestSegmentStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSegmentStore(fault.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	logs := segLogs()
	exts, err := st.WriteLogs(logs)
	if err != nil {
		t.Fatal(err)
	}
	if len(exts) != len(logs) {
		t.Fatalf("got %d extents for %d logs", len(exts), len(logs))
	}
	for i, ext := range exts {
		if ext.MaxT != logs[i][0].T || ext.Count != len(logs[i]) {
			t.Fatalf("extent %d: %+v does not describe log %v", i, ext, logs[i])
		}
		got, err := st.ReadLog(ext, nil)
		if err != nil {
			t.Fatalf("reading extent %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, logs[i]) {
			t.Fatalf("extent %d: read %v, wrote %v", i, got, logs[i])
		}
	}
	if n := st.LiveSegments(); n != 1 {
		t.Fatalf("LiveSegments = %d, want 1", n)
	}
	if _, err := st.Stat(exts[0].Seg); err != nil {
		t.Fatal(err)
	}

	// An extent reaching past the data area must be refused, not read.
	bad := exts[0]
	bad.Count = 1000
	if _, err := st.ReadLog(bad, nil); err == nil {
		t.Fatal("out-of-bounds extent was served")
	}

	for range logs {
		st.Release(exts[0].Seg)
	}
	if n := st.LiveSegments(); n != 0 {
		t.Fatalf("LiveSegments after full release = %d, want 0", n)
	}
	// Retired is not deleted: the file must survive until explicit GC.
	path := filepath.Join(dir, SegmentFileName(exts[0].Seg))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("retired segment file gone before GC: %v", err)
	}
	removed, err := st.GC()
	if err != nil || removed != 1 {
		t.Fatalf("GC = (%d, %v), want (1, nil)", removed, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("segment file survived GC: %v", err)
	}
}

// TestSegmentStoreReopen proves the recovery half of the contract: a fresh
// store over the same directory re-validates the file, serves the same
// extents, and Retain re-adopts them (while unknown IDs fail loudly).
func TestSegmentStoreReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSegmentStore(fault.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	logs := segLogs()
	exts, err := st.WriteLogs(logs)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenSegmentStore(fault.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	// Scanned segments start unreferenced; the snapshot's Retain adopts them.
	if n := st2.LiveSegments(); n != 0 {
		t.Fatalf("reopened store has %d live segments before Retain", n)
	}
	if err := st2.Retain(exts[0].Seg); err != nil {
		t.Fatal(err)
	}
	if err := st2.Retain(exts[0].Seg + 999); err == nil {
		t.Fatal("Retain of unknown segment succeeded")
	}
	for i, ext := range exts {
		got, err := st2.ReadLog(ext, nil)
		if err != nil {
			t.Fatalf("reading extent %d after reopen: %v", i, err)
		}
		if !reflect.DeepEqual(got, logs[i]) {
			t.Fatalf("extent %d after reopen: read %v, wrote %v", i, got, logs[i])
		}
	}
	// A new write must not reuse the recovered ID space.
	more, err := st2.WriteLogs(logs[:1])
	if err != nil {
		t.Fatal(err)
	}
	if more[0].Seg <= exts[0].Seg {
		t.Fatalf("new segment ID %d does not advance past recovered %d", more[0].Seg, exts[0].Seg)
	}
}

// TestSegmentStorePreadPath runs reads through an injected FS (which
// disables mmap) and proves every cold read is an injectable fault point
// that heals: a failed ReadLog leaves the segment intact for a later retry.
func TestSegmentStorePreadPath(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS())
	st, err := OpenSegmentStore(inj, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	logs := segLogs()
	exts, err := st.WriteLogs(logs)
	if err != nil {
		t.Fatal(err)
	}

	inj.Add(fault.Rule{Op: fault.OpOpen, Path: segPrefix, Times: 1, Err: syscall.EIO})
	if _, err := st.ReadLog(exts[0], nil); err == nil {
		t.Fatal("ReadLog succeeded through an injected open fault")
	}
	// The fault healed (times=1): the same extent must now read cleanly.
	got, err := st.ReadLog(exts[0], nil)
	if err != nil {
		t.Fatalf("ReadLog after heal: %v", err)
	}
	if !reflect.DeepEqual(got, logs[0]) {
		t.Fatalf("post-heal read %v, wrote %v", got, logs[0])
	}
}

// TestSegmentStoreWriteFault proves a failed spill write publishes nothing:
// no extent, no segment file, and the next write (disk healed) succeeds.
func TestSegmentStoreWriteFault(t *testing.T) {
	dir := t.TempDir()
	inj := fault.NewInjector(fault.OS())
	st, err := OpenSegmentStore(inj, dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	inj.Add(fault.Rule{Op: fault.OpWrite, Path: segPrefix, Times: 1, Err: syscall.ENOSPC, ShortWrite: true})
	logs := segLogs()
	if _, err := st.WriteLogs(logs); err == nil {
		t.Fatal("WriteLogs succeeded through an injected short write")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) == segSuffix {
			t.Fatalf("failed spill published segment file %s", e.Name())
		}
	}
	exts, err := st.WriteLogs(logs)
	if err != nil {
		t.Fatalf("WriteLogs after heal: %v", err)
	}
	got, err := st.ReadLog(exts[2], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, logs[2]) {
		t.Fatalf("post-heal read %v, wrote %v", got, logs[2])
	}
}

// TestSegmentStoreQuarantine covers boot over a damaged spill directory: a
// corrupted segment is quarantined (Retain fails instead of serving bad
// bytes), leftover *.tmp files from a torn spill are cleared, and GC deletes
// the quarantined file.
func TestSegmentStoreQuarantine(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenSegmentStore(fault.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	exts, err := st.WriteLogs(segLogs())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in the middle of the file: some section CRC must fail.
	path := filepath.Join(dir, SegmentFileName(exts[0].Seg))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, SegmentFileName(exts[0].Seg)+".9.tmp")
	if err := os.WriteFile(torn, raw[:7], 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := OpenSegmentStore(fault.OS(), dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatalf("torn .tmp file survived reopen: %v", err)
	}
	if err := st2.Retain(exts[0].Seg); err == nil {
		t.Fatal("Retain adopted a corrupted segment")
	}
	removed, err := st2.GC()
	if err != nil || removed != 1 {
		t.Fatalf("GC = (%d, %v), want quarantined file removed", removed, err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("quarantined segment survived GC: %v", err)
	}
}

// validSegmentBytes builds a well-formed segment file through the real
// writer, so fuzz seeds always track the current layout.
func validSegmentBytes(tb testing.TB, logs [][]stream.Contrib) []byte {
	tb.Helper()
	dir := tb.TempDir()
	st, err := OpenSegmentStore(fault.OS(), dir)
	if err != nil {
		tb.Fatal(err)
	}
	defer st.Close()
	exts, err := st.WriteLogs(logs)
	if err != nil {
		tb.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, SegmentFileName(exts[0].Seg)))
	if err != nil {
		tb.Fatal(err)
	}
	return raw
}

// FuzzSegment throws arbitrary bytes at the segment validator — the
// hardening boundary every cold byte crosses before extent reads trust
// offsets arithmetically. Invariants: never panic, always terminate, and an
// accepted image must be internally consistent: the data window lies within
// the input, its stored CRC matches its bytes, and the entry count matches
// the window exactly.
func FuzzSegment(f *testing.F) {
	full := validSegmentBytes(f, segLogs())
	f.Add(full)
	f.Add(validSegmentBytes(f, [][]stream.Contrib{{{V: 1, T: 1}}}))
	f.Add(full[:len(full)-3]) // torn mid end-marker
	f.Add(full[:len(full)/2]) // torn mid data
	tamper := bytes.Clone(full)
	tamper[len(tamper)/2] ^= 0x01
	f.Add(tamper)                                     // flipped data bit
	f.Add([]byte("SIM1"))                             // wrong magic
	f.Add([]byte("SIM2"))                             // header only
	f.Add([]byte("SIM2\x01SGH0\xff\xff\xff\xff\x7f")) // hostile length claim
	f.Fuzz(func(t *testing.T, data []byte) {
		info, err := parseSegment(data)
		if err != nil {
			return
		}
		if info.dataOff < 0 || info.dataLen < 0 || info.dataOff+info.dataLen > int64(len(data)) {
			t.Fatalf("accepted data window [%d,+%d) outside %d input bytes", info.dataOff, info.dataLen, len(data))
		}
		if int64(info.entryCount)*segEntryBytes != info.dataLen {
			t.Fatalf("accepted %d entries for %d data bytes", info.entryCount, info.dataLen)
		}
		payload := data[info.dataOff : info.dataOff+info.dataLen]
		if got := crc32.Checksum(payload, snapshotCRC); got != info.dataCRC {
			t.Fatalf("accepted image whose data bytes hash %08x against stored %08x", got, info.dataCRC)
		}
	})
}
