package dataio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stream"
)

// Name-mode NDJSON: the same line format as actionJSON but with "user" as
// an external string name — {"id":1,"user":"alice","parent":-1}. Strict
// decoding makes the two modes mutually exclusive on the wire: a numeric
// "user" fails name-mode parsing and a string "user" fails numeric-mode
// parsing, so a client cannot silently mix ID spaces.

// NamedAction is one decoded name-mode action. Parent is stream.NoParent
// for roots.
type NamedAction struct {
	ID     stream.ActionID
	User   string
	Parent stream.ActionID
}

type namedActionJSON struct {
	ID     int64  `json:"id"`
	User   string `json:"user"`
	Parent *int64 `json:"parent,omitempty"`
}

func (rec namedActionJSON) action() (NamedAction, error) {
	if rec.User == "" {
		return NamedAction{}, fmt.Errorf("dataio: action %d has an empty user name", rec.ID)
	}
	a := NamedAction{ID: stream.ActionID(rec.ID), User: rec.User, Parent: stream.NoParent}
	if rec.Parent != nil {
		if *rec.Parent < -1 {
			return NamedAction{}, fmt.Errorf("dataio: bad parent %d", *rec.Parent)
		}
		a.Parent = stream.ActionID(*rec.Parent)
	}
	return a, nil
}

// WriteNDJSONNamed writes name-mode actions as NDJSON, "parent" omitted for
// roots — the ingest body format for trackers with Spec.Names set.
func WriteNDJSONNamed(w io.Writer, actions []NamedAction) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw)
	for _, a := range actions {
		rec := namedActionJSON{ID: int64(a.ID), User: a.User}
		if a.Parent != stream.NoParent {
			p := int64(a.Parent)
			rec.Parent = &p
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadNDJSONNamed streams name-mode actions from NDJSON input to visit,
// stopping early if visit returns false. Mirrors ReadNDJSON.
func ReadNDJSONNamed(r io.Reader, visit func(NamedAction) bool) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	for n := 1; ; n++ {
		var rec namedActionJSON
		err := dec.Decode(&rec)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("record %d: dataio: bad NDJSON action: %w", n, err)
		}
		a, err := rec.action()
		if err != nil {
			return fmt.Errorf("record %d: %w", n, err)
		}
		if !visit(a) {
			return nil
		}
	}
}
