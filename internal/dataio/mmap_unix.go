//go:build linux || darwin

package dataio

import (
	"os"
	"syscall"
)

// mmapSupported gates the zero-copy read path for cold segments. The store
// only maps files when it is talking to the real filesystem (fault.OS()):
// an injected FS must see every read so fault rules can fire.
const mmapSupported = true

// mapFile memory-maps the whole file read-only. The descriptor is closed
// immediately — the mapping keeps the pages reachable on its own.
func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		// Zero-length files cannot be mapped; an empty slice fails
		// validation downstream exactly like a truncated file would.
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapFile releases a mapping produced by mapFile.
func unmapFile(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
