package dataio

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/stream"
)

func sampleActions() []stream.Action {
	return []stream.Action{
		{ID: 1, User: 7, Parent: stream.NoParent},
		{ID: 2, User: 0, Parent: 1},
		{ID: 5, User: 4294967295, Parent: 2}, // max user, gappy ID
		{ID: 9, User: 3, Parent: stream.NoParent},
	}
}

func TestTSVRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTSV(&buf, sampleActions()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleActions()) {
		t.Fatalf("round trip: %v", got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleActions()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sampleActions()) {
		t.Fatalf("round trip: %v", got)
	}
}

func TestBinaryIsSmallerThanTSV(t *testing.T) {
	actions := gen.Stream(gen.TwitterLike(500, 20000, 4000, 1))
	var tsv, bin bytes.Buffer
	if err := WriteTSV(&tsv, actions); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, actions); err != nil {
		t.Fatal(err)
	}
	if bin.Len()*2 >= tsv.Len() {
		t.Fatalf("binary %d bytes not < half of TSV %d bytes", bin.Len(), tsv.Len())
	}
}

func TestTSVSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n1\t2\t-1\n   \n2\t3\t1\n"
	got, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d actions", len(got))
	}
}

func TestTSVErrorsCarryLineNumbers(t *testing.T) {
	in := "1\t2\t-1\nbad line\n"
	err := ReadTSV(strings.NewReader(in), func(stream.Action) bool { return true })
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}

func TestParseTSVLineErrors(t *testing.T) {
	for _, line := range []string{"", "1\t2", "1\t2\t3\t4", "x\t2\t3", "1\ty\t3", "1\t2\tz", "1\t2\t-9"} {
		if _, err := ParseTSVLine(line); err == nil {
			t.Errorf("ParseTSVLine(%q) succeeded", line)
		}
	}
}

func TestBinaryRejectsBadInput(t *testing.T) {
	if err := ReadBinary(strings.NewReader("nope"), nil); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: %v", err)
	}
	if err := ReadBinary(strings.NewReader("x"), nil); err == nil {
		t.Fatal("short header accepted")
	}
	// Truncated record.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleActions()); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-1]
	err := ReadBinary(bytes.NewReader(trunc), func(stream.Action) bool { return true })
	if err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestWriteBinaryValidates(t *testing.T) {
	if err := WriteBinary(&bytes.Buffer{}, []stream.Action{{ID: 2, User: 1}, {ID: 2, User: 1}}); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if err := WriteBinary(&bytes.Buffer{}, []stream.Action{{ID: 2, User: 1, Parent: 3}}); err == nil {
		t.Fatal("future parent accepted")
	}
}

func TestReadAutoDetectsBoth(t *testing.T) {
	var bin bytes.Buffer
	if err := WriteBinary(&bin, sampleActions()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(&bin)
	if err != nil || len(got) != 4 {
		t.Fatalf("auto binary: %v %v", got, err)
	}
	var tsv bytes.Buffer
	if err := WriteTSV(&tsv, sampleActions()); err != nil {
		t.Fatal(err)
	}
	got, err = ReadAll(&tsv)
	if err != nil || len(got) != 4 {
		t.Fatalf("auto tsv: %v %v", got, err)
	}
}

func TestEarlyStop(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleActions()); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := ReadBinary(&buf, func(stream.Action) bool { n++; return n < 2 }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("visited %d, want 2", n)
	}
}

// TestRoundTripProperty fuzzes random valid streams through both formats.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := gen.Config{Users: 50, Actions: 300, RootProb: 0.4, MeanRespDist: 30, Seed: seed}
		actions := gen.Stream(cfg)
		var tsv, bin bytes.Buffer
		if WriteTSV(&tsv, actions) != nil || WriteBinary(&bin, actions) != nil {
			return false
		}
		a, err1 := ReadAll(&tsv)
		b, err2 := ReadAll(&bin)
		return err1 == nil && err2 == nil && reflect.DeepEqual(a, actions) && reflect.DeepEqual(b, actions)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestReadAutoEdgeCases pins the sniffing contract of ReadAuto on awkward
// inputs: empty bodies, CRLF line endings, leading whitespace before the
// first NDJSON object, and truncation mid-record.
func TestReadAutoEdgeCases(t *testing.T) {
	t.Run("empty input", func(t *testing.T) {
		got, err := ReadAll(strings.NewReader(""))
		if err != nil {
			t.Fatalf("empty input: %v", err)
		}
		if len(got) != 0 {
			t.Fatalf("empty input yielded %d actions", len(got))
		}
	})

	t.Run("whitespace-only input", func(t *testing.T) {
		got, err := ReadAll(strings.NewReader(" \t\r\n\n  \n"))
		if err != nil {
			t.Fatalf("whitespace-only input: %v", err)
		}
		if len(got) != 0 {
			t.Fatalf("whitespace-only input yielded %d actions", len(got))
		}
	})

	t.Run("CRLF NDJSON", func(t *testing.T) {
		in := "{\"id\":1,\"user\":7}\r\n{\"id\":2,\"user\":8,\"parent\":1}\r\n"
		got, err := ReadAll(strings.NewReader(in))
		if err != nil {
			t.Fatalf("CRLF NDJSON: %v", err)
		}
		want := []stream.Action{
			{ID: 1, User: 7, Parent: stream.NoParent},
			{ID: 2, User: 8, Parent: 1},
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("CRLF NDJSON = %v, want %v", got, want)
		}
	})

	t.Run("leading whitespace before NDJSON object", func(t *testing.T) {
		in := "\r\n\n  \t{\"id\":3,\"user\":1}\n"
		got, err := ReadAll(strings.NewReader(in))
		if err != nil {
			t.Fatalf("leading whitespace NDJSON: %v", err)
		}
		want := []stream.Action{{ID: 3, User: 1, Parent: stream.NoParent}}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("leading whitespace NDJSON = %v, want %v", got, want)
		}
	})

	t.Run("truncated final NDJSON line errors", func(t *testing.T) {
		in := "{\"id\":1,\"user\":7}\n{\"id\":2,\"us"
		_, err := ReadAll(strings.NewReader(in))
		if err == nil {
			t.Fatal("truncated final NDJSON line accepted")
		}
		if !strings.Contains(err.Error(), "record 2") {
			t.Fatalf("error does not name the truncated record: %v", err)
		}
	})

	t.Run("TSV final line without newline", func(t *testing.T) {
		in := "1\t7\t-1\n2\t8\t1" // no trailing newline: still a complete record
		got, err := ReadAll(strings.NewReader(in))
		if err != nil {
			t.Fatalf("unterminated TSV final line: %v", err)
		}
		if len(got) != 2 || got[1].ID != 2 {
			t.Fatalf("unterminated TSV final line = %v", got)
		}
	})

	t.Run("truncated TSV final line errors", func(t *testing.T) {
		in := "1\t7\t-1\n2\t8" // second record lost its parent field
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Fatal("field-truncated TSV final line accepted")
		}
	})
}
