// Package dataio reads and writes social action streams in the repository's
// interchange formats:
//
//   - TSV: one action per line, "id<TAB>user<TAB>parent" with parent −1 for
//     roots. Human-inspectable; produced by simgen and consumed by simtrack.
//   - Binary: a compact varint encoding (~5x smaller, ~10x faster to parse),
//     with a magic header for sniffing. Suited to large generated datasets.
//   - NDJSON: one {"id":…,"user":…,"parent":…} object per line ("parent"
//     omitted for roots) — the ingest body format of the simserve HTTP API.
//
// All formats stream: readers deliver actions through a callback without
// materializing the whole dataset, and ReadAuto sniffs the format from the
// first bytes (binary magic, then '{' for NDJSON, else TSV).
package dataio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/stream"
)

// binaryMagic starts every binary stream file.
var binaryMagic = [4]byte{'S', 'I', 'M', '1'}

// ErrBadMagic is returned when a binary stream has the wrong header.
var ErrBadMagic = errors.New("dataio: not a SIM1 binary stream")

// WriteTSV writes actions in the TSV format.
func WriteTSV(w io.Writer, actions []stream.Action) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	for _, a := range actions {
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\n", a.ID, a.User, a.Parent); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ParseTSVLine parses one TSV action line.
func ParseTSVLine(line string) (stream.Action, error) {
	parts := strings.Split(strings.TrimSpace(line), "\t")
	if len(parts) != 3 {
		return stream.Action{}, fmt.Errorf("dataio: want 3 tab-separated fields, got %d", len(parts))
	}
	id, err := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return stream.Action{}, fmt.Errorf("dataio: bad id: %w", err)
	}
	user, err := strconv.ParseUint(strings.TrimSpace(parts[1]), 10, 32)
	if err != nil {
		return stream.Action{}, fmt.Errorf("dataio: bad user: %w", err)
	}
	parent, err := strconv.ParseInt(strings.TrimSpace(parts[2]), 10, 64)
	if err != nil {
		return stream.Action{}, fmt.Errorf("dataio: bad parent: %w", err)
	}
	if parent < -1 {
		return stream.Action{}, fmt.Errorf("dataio: bad parent %d", parent)
	}
	return stream.Action{ID: stream.ActionID(id), User: stream.UserID(user), Parent: stream.ActionID(parent)}, nil
}

// ReadTSV streams actions from TSV input to visit, stopping early if visit
// returns false. Blank lines and lines starting with '#' are skipped.
func ReadTSV(r io.Reader, visit func(stream.Action) bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if s := strings.TrimSpace(line); s == "" || strings.HasPrefix(s, "#") {
			continue
		}
		a, err := ParseTSVLine(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		if !visit(a) {
			return nil
		}
	}
	return sc.Err()
}

// WriteBinary writes actions in the SIM1 binary format: the magic header
// followed by one record per action — uvarint delta-encoded ID, uvarint
// user, and the parent encoded as a uvarint backward distance (0 = root).
// Delta and distance coding keep typical streams to a few bytes per action.
func WriteBinary(w io.Writer, actions []stream.Action) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	var buf [3 * binary.MaxVarintLen64]byte
	prev := stream.ActionID(0)
	for _, a := range actions {
		if a.ID <= prev {
			return fmt.Errorf("dataio: non-monotonic ID %d after %d", a.ID, prev)
		}
		n := binary.PutUvarint(buf[:], uint64(a.ID-prev))
		n += binary.PutUvarint(buf[n:], uint64(a.User))
		dist := uint64(0)
		if !a.Root() {
			if a.Parent >= a.ID {
				return fmt.Errorf("dataio: action %d has parent %d in the future", a.ID, a.Parent)
			}
			dist = uint64(a.ID - a.Parent)
		}
		n += binary.PutUvarint(buf[n:], dist)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		prev = a.ID
	}
	return bw.Flush()
}

// ReadBinary streams actions from SIM1 binary input to visit, stopping early
// if visit returns false.
func ReadBinary(r io.Reader, visit func(stream.Action) bool) error {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return fmt.Errorf("dataio: reading header: %w", err)
	}
	if magic != binaryMagic {
		return ErrBadMagic
	}
	prev := stream.ActionID(0)
	for {
		delta, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("dataio: reading id: %w", err)
		}
		user, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("dataio: reading user: %w", err)
		}
		dist, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("dataio: reading parent: %w", err)
		}
		if delta == 0 {
			return errors.New("dataio: zero ID delta")
		}
		id := prev + stream.ActionID(delta)
		a := stream.Action{ID: id, User: stream.UserID(user), Parent: stream.NoParent}
		if dist > 0 {
			a.Parent = id - stream.ActionID(dist)
		}
		prev = id
		if !visit(a) {
			return nil
		}
	}
}

// ReadAuto sniffs the format (binary magic, '{' for NDJSON, else TSV) and
// streams the actions. The NDJSON sniff skips leading whitespace — blank or
// CRLF-terminated lines before the first object are legal inter-value
// whitespace, so a body that starts with them is still NDJSON. Empty input
// is zero actions in any format and succeeds.
func ReadAuto(r io.Reader, visit func(stream.Action) bool) error {
	br := bufio.NewReaderSize(r, 1<<20)
	head, err := br.Peek(4)
	if err == nil && [4]byte(head) == binaryMagic {
		return ReadBinary(br, visit)
	}
	// Peek far enough to see past leading whitespace. 512 bytes of pure
	// whitespace before any payload byte means the input is effectively
	// blank whatever the format; TSV handles that as zero actions.
	head, _ = br.Peek(512)
	for _, b := range head {
		if b == ' ' || b == '\t' || b == '\r' || b == '\n' {
			continue
		}
		if b == '{' {
			return ReadNDJSON(br, visit)
		}
		break
	}
	return ReadTSV(br, visit)
}

// ReadAll materializes every action from r (auto-detected format).
func ReadAll(r io.Reader) ([]stream.Action, error) {
	var out []stream.Action
	err := ReadAuto(r, func(a stream.Action) bool {
		out = append(out, a)
		return true
	})
	return out, err
}
