package dataio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/stream"
)

func TestNDJSONRoundTrip(t *testing.T) {
	actions := []stream.Action{
		{ID: 1, User: 7, Parent: stream.NoParent},
		{ID: 2, User: 3, Parent: 1},
		{ID: 5, User: 7, Parent: 2},
		{ID: 9, User: 1, Parent: stream.NoParent},
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, actions); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != len(actions) {
		t.Fatalf("want %d lines, got %d:\n%s", len(actions), got, buf.String())
	}
	var back []stream.Action
	if err := ReadNDJSON(&buf, func(a stream.Action) bool { back = append(back, a); return true }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, actions) {
		t.Fatalf("round trip mismatch:\n got %v\nwant %v", back, actions)
	}
}

func TestNDJSONOmitsParentForRoots(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, []stream.Action{{ID: 1, User: 2, Parent: stream.NoParent}}); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != `{"id":1,"user":2}` {
		t.Fatalf("root encoding %q, want parent omitted", got)
	}
}

func TestParseNDJSONLine(t *testing.T) {
	cases := []struct {
		line string
		want stream.Action
		ok   bool
	}{
		{`{"id":1,"user":2}`, stream.Action{ID: 1, User: 2, Parent: stream.NoParent}, true},
		{`{"id":1,"user":2,"parent":-1}`, stream.Action{ID: 1, User: 2, Parent: stream.NoParent}, true},
		{`{"id":4,"user":0,"parent":1}`, stream.Action{ID: 4, User: 0, Parent: 1}, true},
		{`{"id":4,"user":0,"parent":-7}`, stream.Action{}, false},
		{`{"id":4,"user":0,"bogus":1}`, stream.Action{}, false},
		{`{"id":"x","user":0}`, stream.Action{}, false},
		{`not json`, stream.Action{}, false},
	}
	for _, c := range cases {
		got, err := ParseNDJSONLine([]byte(c.line))
		if (err == nil) != c.ok {
			t.Errorf("ParseNDJSONLine(%q) err = %v, want ok=%v", c.line, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseNDJSONLine(%q) = %v, want %v", c.line, got, c.want)
		}
	}
}

func TestReadNDJSONSkipsBlanksAndReportsLine(t *testing.T) {
	in := "{\"id\":1,\"user\":2}\n\n  \n{\"id\":2,\"user\":3,\"parent\":1}\n"
	var n int
	if err := ReadNDJSON(strings.NewReader(in), func(stream.Action) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("want 2 actions, got %d", n)
	}
	bad := "{\"id\":1,\"user\":2}\n{oops}\n"
	err := ReadNDJSON(strings.NewReader(bad), func(stream.Action) bool { return true })
	if err == nil || !strings.Contains(err.Error(), "record 2") {
		t.Fatalf("want record-2 error, got %v", err)
	}
}

func TestReadAutoSniffsNDJSON(t *testing.T) {
	in := `{"id":1,"user":2}` + "\n" + `{"id":3,"user":4,"parent":1}` + "\n"
	got, err := ReadAll(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []stream.Action{{ID: 1, User: 2, Parent: stream.NoParent}, {ID: 3, User: 4, Parent: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ReadAuto NDJSON = %v, want %v", got, want)
	}
}
