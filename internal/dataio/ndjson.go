package dataio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/stream"
)

// actionJSON is the NDJSON wire form of one action: one JSON object per
// line. "parent" may be omitted (or set to -1) for root actions, so a
// minimal line is {"id":1,"user":7}.
type actionJSON struct {
	ID     int64  `json:"id"`
	User   uint32 `json:"user"`
	Parent *int64 `json:"parent,omitempty"`
}

// WriteNDJSON writes actions in the NDJSON format: one {"id":…,"user":…,
// "parent":…} object per line, with "parent" omitted for roots. This is the
// ingest body format of the simserve HTTP API (internal/server).
func WriteNDJSON(w io.Writer, actions []stream.Action) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	enc := json.NewEncoder(bw) // Encode appends the newline NDJSON needs
	for _, a := range actions {
		rec := actionJSON{ID: int64(a.ID), User: uint32(a.User)}
		if !a.Root() {
			p := int64(a.Parent)
			rec.Parent = &p
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// action converts a decoded record, rejecting invalid parents. A missing
// "parent" field — or an explicit -1 — marks a root action.
func (rec actionJSON) action() (stream.Action, error) {
	a := stream.Action{ID: stream.ActionID(rec.ID), User: stream.UserID(rec.User), Parent: stream.NoParent}
	if rec.Parent != nil {
		if *rec.Parent < -1 {
			return stream.Action{}, fmt.Errorf("dataio: bad parent %d", *rec.Parent)
		}
		a.Parent = stream.ActionID(*rec.Parent)
	}
	return a, nil
}

// ParseNDJSONLine parses one NDJSON action line.
func ParseNDJSONLine(line []byte) (stream.Action, error) {
	var rec actionJSON
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rec); err != nil {
		return stream.Action{}, fmt.Errorf("dataio: bad NDJSON action: %w", err)
	}
	return rec.action()
}

// ReadNDJSON streams actions from NDJSON input to visit, stopping early if
// visit returns false. One json.Decoder consumes the whole input (NDJSON is
// a valid JSON value stream), so parsing does not allocate a reader and
// decoder per line — this runs once per ingest HTTP request on the server's
// hot path. Blank lines are skipped (inter-value whitespace); errors name
// the 1-based record.
func ReadNDJSON(r io.Reader, visit func(stream.Action) bool) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	for n := 1; ; n++ {
		var rec actionJSON
		err := dec.Decode(&rec)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("record %d: dataio: bad NDJSON action: %w", n, err)
		}
		a, err := rec.action()
		if err != nil {
			return fmt.Errorf("record %d: %w", n, err)
		}
		if !visit(a) {
			return nil
		}
	}
}
