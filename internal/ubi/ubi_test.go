package ubi

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/mc"
	"repro/internal/stream"
)

func hubGraph(hub stream.UserID, leaves, base int) *graph.Graph {
	var edges [][2]stream.UserID
	for i := 0; i < leaves; i++ {
		edges = append(edges, [2]stream.UserID{hub, stream.UserID(base + i)})
	}
	return graph.Build(edges)
}

func TestUpdateFindsHub(t *testing.T) {
	tr := New(1, Options{Seed: 1})
	seeds := tr.Update(hubGraph(99, 25, 1000))
	if len(seeds) != 1 || seeds[0] != 99 {
		t.Fatalf("seeds = %v, want [99]", seeds)
	}
}

func TestUpdateEmptyGraph(t *testing.T) {
	tr := New(3, Options{Seed: 1})
	tr.Update(hubGraph(1, 5, 100))
	if seeds := tr.Update(graph.Build(nil)); seeds != nil {
		t.Fatalf("empty graph seeds = %v", seeds)
	}
}

func TestSeedsCarryAcrossUpdates(t *testing.T) {
	tr := New(1, Options{Seed: 2})
	g1 := hubGraph(7, 20, 1000)
	tr.Update(g1)
	// Same graph again: the seed must persist with no interchange.
	seeds := tr.Update(g1)
	if len(seeds) != 1 || seeds[0] != 7 {
		t.Fatalf("seeds = %v, want [7]", seeds)
	}
}

func TestInterchangeTracksShiftedInfluence(t *testing.T) {
	// The hub moves from user 7 to user 8 across updates; UBI must swap.
	tr := New(1, Options{Seed: 3, Rounds: 300})
	tr.Update(hubGraph(7, 25, 1000))
	var seeds []stream.UserID
	// New graph: 7 has a single leaf, 8 has 25.
	var edges [][2]stream.UserID
	edges = append(edges, [2]stream.UserID{7, 2000})
	for i := 0; i < 25; i++ {
		edges = append(edges, [2]stream.UserID{8, stream.UserID(3000 + i)})
	}
	g := graph.Build(edges)
	seeds = tr.Update(g)
	if len(seeds) != 1 || seeds[0] != 8 {
		t.Fatalf("seeds after shift = %v, want [8]", seeds)
	}
}

func TestRefillAfterSeedVanishes(t *testing.T) {
	tr := New(2, Options{Seed: 4})
	var edges [][2]stream.UserID
	for i := 0; i < 10; i++ {
		edges = append(edges, [2]stream.UserID{1, stream.UserID(100 + i)})
		edges = append(edges, [2]stream.UserID{2, stream.UserID(200 + i)})
	}
	tr.Update(graph.Build(edges))
	if len(tr.Seeds()) != 2 {
		t.Fatalf("initial seeds = %v", tr.Seeds())
	}
	// User 2 disappears entirely; a replacement must be found.
	edges = edges[:0]
	for i := 0; i < 10; i++ {
		edges = append(edges, [2]stream.UserID{1, stream.UserID(100 + i)})
		edges = append(edges, [2]stream.UserID{3, stream.UserID(300 + i)})
	}
	seeds := tr.Update(graph.Build(edges))
	if len(seeds) != 2 {
		t.Fatalf("seeds after vanish = %v", seeds)
	}
	got := map[stream.UserID]bool{}
	for _, s := range seeds {
		got[s] = true
	}
	if !got[1] || !got[3] {
		t.Fatalf("seeds = %v, want {1, 3}", seeds)
	}
}

// TestQualityNearGreedyOnRandomGraph: on a random graph UBI's seed spread
// should be within a reasonable factor of an MC-greedy reference for small k
// (the regime where the paper reports UBI is competitive).
func TestQualityNearGreedyOnRandomGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var edges [][2]stream.UserID
	for i := 0; i < 2000; i++ {
		edges = append(edges, [2]stream.UserID{stream.UserID(rng.Intn(200)), stream.UserID(rng.Intn(200))})
	}
	g := graph.Build(edges)
	tr := New(3, Options{Seed: 7, Rounds: 300})
	seeds := tr.Update(g)
	got := mc.Spread(g, seeds, 5000, 1)

	ref := greedyByMC(g, 3, 300)
	refSpread := mc.Spread(g, ref, 5000, 1)
	if got < 0.8*refSpread {
		t.Fatalf("UBI spread %v < 80%% of greedy reference %v", got, refSpread)
	}
}

// greedyByMC is a slow reference: plain greedy with MC marginal estimates.
func greedyByMC(g *graph.Graph, k, rounds int) []stream.UserID {
	est := mc.NewEstimator(g, rand.New(rand.NewSource(99)))
	var nodes []graph.NodeID
	in := map[graph.NodeID]bool{}
	for len(nodes) < k {
		base := est.Estimate(nodes, rounds)
		best, bestGain := graph.NodeID(-1), 0.0
		for n := 0; n < g.N(); n++ {
			if in[graph.NodeID(n)] || len(g.Out(graph.NodeID(n))) == 0 {
				continue
			}
			gain := est.Estimate(append(nodes, graph.NodeID(n)), rounds) - base
			if gain > bestGain {
				best, bestGain = graph.NodeID(n), gain
			}
		}
		if best < 0 {
			break
		}
		nodes = append(nodes, best)
		in[best] = true
	}
	users := make([]stream.UserID, len(nodes))
	for i, n := range nodes {
		users[i] = g.UserOf(n)
	}
	return users
}

func TestDefaults(t *testing.T) {
	tr := New(5, Options{})
	if tr.opt.Gamma != 0.01 || tr.opt.Rounds != 200 || tr.opt.Pool != 52 {
		t.Fatalf("defaults = %+v", tr.opt)
	}
}
