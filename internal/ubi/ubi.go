// Package ubi implements the Upper Bound Interchange baseline (Chen, Song,
// He, Xie — SDM 2015) for influence maximization on dynamic graphs, as used
// in the paper's evaluation with the interchange threshold γ = 0.01.
//
// UBI maintains a seed set across a chronological sequence of influence
// graphs. After each graph update it (1) refills the seed set greedily if
// users disappeared, then (2) repeatedly interchanges an outside candidate
// with a current seed when the swap improves the estimated spread by more
// than γ·σ(S). The candidate pool is pruned with cheap one-hop upper bounds
// on singleton spread before any Monte-Carlo estimate is spent — the "upper
// bound" part of the method.
//
// The relative-threshold design is also the source of its documented
// weakness (paper §6.3): as k grows, σ(S) grows, the absolute bar γ·σ(S)
// rises, profitable swaps get delayed, and quality degrades — the behaviour
// Figure 8 shows.
package ubi

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/mc"
	"repro/internal/stream"
)

// Options tunes the tracker. Zero values select the paper's settings.
type Options struct {
	// Gamma is the interchange threshold (default 0.01, as in §6.1).
	Gamma float64
	// Rounds is the number of Monte-Carlo rounds per spread estimate
	// (default 200; the estimates only steer swaps, final quality is
	// measured externally).
	Rounds int
	// Pool caps the candidate pool examined per update (default 4k + 32
	// where k is the seed budget).
	Pool int
	// Seed makes simulation reproducible.
	Seed int64
}

// Tracker carries the UBI seed set across graph updates.
type Tracker struct {
	k     int
	opt   Options
	seeds []stream.UserID
	rng   *rand.Rand
}

// New returns a tracker maintaining at most k seeds.
func New(k int, opt Options) *Tracker {
	if opt.Gamma == 0 {
		opt.Gamma = 0.01
	}
	if opt.Rounds == 0 {
		opt.Rounds = 200
	}
	if opt.Pool == 0 {
		opt.Pool = 4*k + 32
	}
	return &Tracker{k: k, opt: opt, rng: rand.New(rand.NewSource(opt.Seed))}
}

// Seeds returns the current seed set.
func (t *Tracker) Seeds() []stream.UserID { return t.seeds }

// upperBound is the one-hop WC bound on a node's singleton spread:
// 1 + Σ_{v ∈ out(u)} p(·→v). True singleton spread cannot exceed the full
// reachability count, but this cheap bound already orders candidates well
// and is what prunes the pool before Monte-Carlo is spent.
func upperBound(g *graph.Graph, n graph.NodeID) float64 {
	ub := 1.0
	for _, v := range g.Out(n) {
		ub += g.Prob(v)
	}
	return ub
}

// Update adapts the seed set to the new influence graph and returns it.
func (t *Tracker) Update(g *graph.Graph) []stream.UserID {
	if g.N() == 0 {
		t.seeds = nil
		return nil
	}
	est := mc.NewEstimator(g, t.rng)

	// Carry over surviving seeds.
	nodes := g.NodesOf(t.seeds)
	nodes = dedup(nodes)

	// Candidate pool: the strongest nodes by the one-hop upper bound.
	pool := t.pool(g)

	// Refill greedily (lazy evaluation over the pool) if below budget.
	nodes = t.refill(g, est, nodes, pool)

	// Interchange phase.
	nodes = t.interchange(g, est, nodes, pool)

	t.seeds = t.seeds[:0]
	for _, n := range nodes {
		t.seeds = append(t.seeds, g.UserOf(n))
	}
	return t.seeds
}

func dedup(in []graph.NodeID) []graph.NodeID {
	seen := map[graph.NodeID]bool{}
	out := in[:0]
	for _, n := range in {
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	return out
}

func (t *Tracker) pool(g *graph.Graph) []graph.NodeID {
	type scored struct {
		n  graph.NodeID
		ub float64
	}
	all := make([]scored, 0, g.N())
	for n := 0; n < g.N(); n++ {
		if len(g.Out(graph.NodeID(n))) == 0 {
			continue
		}
		all = append(all, scored{graph.NodeID(n), upperBound(g, graph.NodeID(n))})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].ub > all[j].ub })
	limit := t.opt.Pool
	if limit > len(all) {
		limit = len(all)
	}
	out := make([]graph.NodeID, limit)
	for i := 0; i < limit; i++ {
		out[i] = all[i].n
	}
	return out
}

func (t *Tracker) refill(g *graph.Graph, est *mc.Estimator, nodes, pool []graph.NodeID) []graph.NodeID {
	in := map[graph.NodeID]bool{}
	for _, n := range nodes {
		in[n] = true
	}
	for len(nodes) < t.k {
		base := est.Estimate(nodes, t.opt.Rounds)
		best, bestGain := graph.NodeID(-1), 0.0
		for _, c := range pool {
			if in[c] {
				continue
			}
			// Upper-bound pruning: a candidate whose one-hop bound cannot
			// beat the current best gain is skipped without simulation.
			if upperBound(g, c) <= bestGain {
				continue
			}
			gain := est.Estimate(append(nodes, c), t.opt.Rounds) - base
			if gain > bestGain {
				best, bestGain = c, gain
			}
		}
		if best < 0 {
			break
		}
		nodes = append(nodes, best)
		in[best] = true
	}
	return nodes
}

func (t *Tracker) interchange(g *graph.Graph, est *mc.Estimator, nodes, pool []graph.NodeID) []graph.NodeID {
	if len(nodes) == 0 {
		return nodes
	}
	in := map[graph.NodeID]bool{}
	for _, n := range nodes {
		in[n] = true
	}
	const maxPasses = 4
	without := make([]graph.NodeID, 0, len(nodes))
	trial := make([]graph.NodeID, len(nodes))
	for pass := 0; pass < maxPasses; pass++ {
		cur := est.Estimate(nodes, t.opt.Rounds)
		bar := t.opt.Gamma * cur // the γ·σ(S) interchange threshold

		// Weakest seed: the one whose removal costs least.
		weakest, weakCost := -1, 0.0
		for i := range nodes {
			without = without[:0]
			without = append(without, nodes[:i]...)
			without = append(without, nodes[i+1:]...)
			cost := cur - est.Estimate(without, t.opt.Rounds)
			if weakest < 0 || cost < weakCost {
				weakest, weakCost = i, cost
			}
		}

		swapped := false
		for _, c := range pool {
			if in[c] {
				continue
			}
			if upperBound(g, c) <= weakCost+bar {
				// Even the optimistic bound on the candidate cannot clear
				// the interchange threshold; the pool is UB-sorted, so all
				// later candidates fail too.
				break
			}
			copy(trial, nodes)
			trial[weakest] = c
			if est.Estimate(trial, t.opt.Rounds)-cur > bar {
				delete(in, nodes[weakest])
				in[c] = true
				nodes[weakest] = c
				swapped = true
				break
			}
		}
		if !swapped {
			break
		}
	}
	return nodes
}
