package router_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/api"
	"repro/internal/gen"
	"repro/internal/router"
	"repro/internal/server"
	"repro/query"
	"repro/sim"
)

// cluster is one 1-router × N-shard topology over httptest servers, the
// harness of every test below.
type cluster struct {
	shards []*httptest.Server
	regs   []*server.Registry
	router *router.Router
	front  *httptest.Server
	client *api.Client
}

// newCluster boots n shard servers each holding tracker "default" built
// from spec, and a router over them. Everything is torn down by t.Cleanup.
func newCluster(t *testing.T, n int, spec api.Spec) *cluster {
	t.Helper()
	c := &cluster{}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		reg := server.NewRegistry()
		if _, err := reg.Add("default", spec); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		srv := server.New(reg)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		t.Cleanup(func() { _ = reg.Close() })
		c.shards = append(c.shards, ts)
		c.regs = append(c.regs, reg)
		addrs[i] = ts.URL
	}
	rt, err := router.New(addrs, router.Options{
		Retries:       0,
		Timeout:       10 * time.Second,
		ProbeInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	c.router = rt
	c.front = httptest.NewServer(rt)
	t.Cleanup(c.front.Close)
	c.client = api.NewClient(c.front.URL)
	c.client.Timeout = 10 * time.Second
	return c
}

// ingestAll pushes actions through the router in fixed-size batches.
func ingestAll(t *testing.T, c *api.Client, actions []sim.Action, chunk int) {
	t.Helper()
	ctx := context.Background()
	for lo := 0; lo < len(actions); lo += chunk {
		hi := lo + chunk
		if hi > len(actions) {
			hi = len(actions)
		}
		if _, err := c.Ingest(ctx, "default", actions[lo:hi]); err != nil {
			t.Fatalf("ingest [%d,%d): %v", lo, hi, err)
		}
	}
}

// partition splits a stream by the router's own ring, preserving order —
// exactly the sub-streams the shards receive.
func partition(ring *router.Ring, actions []sim.Action) [][]sim.Action {
	parts := make([][]sim.Action, ring.Shards())
	for _, a := range actions {
		i := ring.ShardForID(a.User)
		parts[i] = append(parts[i], a)
	}
	return parts
}

// refTrackers runs one standalone sim.Tracker per sub-stream: the
// single-process reference the router's merges must reproduce bit for bit.
func refTrackers(t *testing.T, cfg sim.Config, parts [][]sim.Action) []*sim.Tracker {
	t.Helper()
	out := make([]*sim.Tracker, len(parts))
	for i, part := range parts {
		tr, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = tr.Close() })
		if err := tr.ProcessAll(part); err != nil {
			t.Fatal(err)
		}
		out[i] = tr
	}
	return out
}

func clusterDatasets(names ...string) []struct {
	name    string
	actions []sim.Action
} {
	const (
		users  = 500
		stream = 2600
		window = 700
		seed   = 11
	)
	cfgs := []gen.Config{
		gen.RedditLike(users, stream, window, seed),
		gen.TwitterLike(users, stream, window, seed),
		gen.SynO(users, stream, window, seed),
		gen.SynN(users, stream, window, seed),
	}
	var out []struct {
		name    string
		actions []sim.Action
	}
	for _, c := range cfgs {
		if len(names) > 0 {
			keep := false
			for _, n := range names {
				keep = keep || n == c.Name
			}
			if !keep {
				continue
			}
		}
		out = append(out, struct {
			name    string
			actions []sim.Action
		}{c.Name, gen.Stream(c)})
	}
	return out
}

func clusterSpec(fw sim.Framework) api.Spec {
	return api.Spec{
		K: 6, Window: 700, Slide: 50, Beta: 0.1,
		Framework: fw, TimeBased: true,
	}
}

// TestClusterAdditiveIdentity is invariant (a) of the suite: every additive
// read served by the router — value, window, checkpoints, stats — is
// bit-identical to the sum/merge over standalone reference trackers fed the
// same ring-partitioned sub-streams. User partitioning makes shard
// influence universes disjoint, so these merges are exact, and the router's
// HTTP round trip (JSON float64 round-trips losslessly) must introduce zero
// drift.
func TestClusterAdditiveIdentity(t *testing.T) {
	for _, ds := range clusterDatasets("Reddit", "SYN-O") {
		for _, fw := range []sim.Framework{sim.SIC, sim.IC} {
			for _, shards := range []int{2, 4} {
				t.Run(fmt.Sprintf("%s/%v/shards=%d", ds.name, fw, shards), func(t *testing.T) {
					spec := clusterSpec(fw)
					c := newCluster(t, shards, spec)
					ingestAll(t, c.client, ds.actions, 500)
					refs := refTrackers(t, spec.Config(), partition(c.router.Ring(), ds.actions))

					ctx := context.Background()

					// value: exact additive sum, in shard index order so
					// float accumulation order matches the router's.
					wantValue := 0.0
					for _, ref := range refs {
						wantValue += ref.Value()
					}
					gotValue, err := c.client.Value(ctx, "default")
					if err != nil {
						t.Fatal(err)
					}
					if gotValue.Value != wantValue {
						t.Errorf("value: router %v != reference sum %v", gotValue.Value, wantValue)
					}
					if gotValue.Processed != int64(len(ds.actions)) {
						t.Errorf("value: processed %d != %d", gotValue.Processed, len(ds.actions))
					}
					if gotValue.Partial {
						t.Errorf("value: unexpected partial flag with all shards up")
					}

					// window: min window start across shards, total count.
					wantWS := refs[0].WindowStart()
					for _, ref := range refs[1:] {
						if ws := ref.WindowStart(); ws < wantWS {
							wantWS = ws
						}
					}
					gotWin, err := c.client.Window(ctx, "default")
					if err != nil {
						t.Fatal(err)
					}
					if gotWin.WindowStart != wantWS || gotWin.Processed != int64(len(ds.actions)) {
						t.Errorf("window: got (%d,%d) want (%d,%d)",
							gotWin.WindowStart, gotWin.Processed, wantWS, len(ds.actions))
					}

					// checkpoints: starts union ascending, values summed per
					// start.
					wantCps := map[sim.ActionID]float64{}
					for _, ref := range refs {
						starts, values := ref.CheckpointStarts(), ref.CheckpointValues()
						for i, s := range starts {
							wantCps[s] += values[i]
						}
					}
					wantStarts := make([]sim.ActionID, 0, len(wantCps))
					for s := range wantCps {
						wantStarts = append(wantStarts, s)
					}
					sort.Slice(wantStarts, func(i, j int) bool { return wantStarts[i] < wantStarts[j] })
					gotCps, err := c.client.Checkpoints(ctx, "default")
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(gotCps.Starts, wantStarts) {
						t.Errorf("checkpoints: starts %v != %v", gotCps.Starts, wantStarts)
					}
					for i, s := range gotCps.Starts {
						if gotCps.Values[i] != wantCps[s] {
							t.Errorf("checkpoints: value at start %d: %v != %v", s, gotCps.Values[i], wantCps[s])
						}
					}

					// stats: additive counters, processed-weighted mean
					// checkpoint count.
					var wantStats api.StatsResponse
					var weighted float64
					for i, ref := range refs {
						st := ref.Stats()
						if i == 0 {
							wantStats.Stats.Framework = st.Framework
							wantStats.Stats.Oracle = st.Oracle
						}
						wantStats.Stats.Processed += st.Processed
						wantStats.Stats.Checkpoints += st.Checkpoints
						wantStats.Stats.ElementsFed += st.ElementsFed
						weighted += st.AvgCheckpoints * float64(st.Processed)
					}
					wantStats.Stats.AvgCheckpoints = weighted / float64(wantStats.Stats.Processed)
					gotStats, err := c.client.Stats(ctx, "default")
					if err != nil {
						t.Fatal(err)
					}
					if gotStats.Stats != wantStats.Stats {
						t.Errorf("stats: %+v != %+v", gotStats.Stats, wantStats.Stats)
					}
				})
			}
		}
	}
}

// TestClusterSeedQuality is invariant (b): the seed set the router picks —
// shard-local sieve candidate pools, one exact greedy re-score at the
// router — is within fixed ε of the single-tracker sieve objective on
// every dataset and both frameworks. The comparison is apples-to-apples:
// the merged seed set is re-evaluated in the single tracker's (unbroken)
// influence universe, so ε measures only selection loss — candidates the
// per-shard sieves failed to surface — not the cascade-splitting inherent
// to partitioned measurement (that structural gap is documented in
// ARCHITECTURE.md and visible in the logged partitioned-universe value).
func TestClusterSeedQuality(t *testing.T) {
	const epsilon = 0.25
	for _, ds := range clusterDatasets() {
		for _, fw := range []sim.Framework{sim.SIC, sim.IC} {
			t.Run(fmt.Sprintf("%s/%v", ds.name, fw), func(t *testing.T) {
				spec := clusterSpec(fw)
				c := newCluster(t, 4, spec)
				ingestAll(t, c.client, ds.actions, 500)

				single, err := sim.New(spec.Config())
				if err != nil {
					t.Fatal(err)
				}
				defer single.Close()
				if err := single.ProcessAll(ds.actions); err != nil {
					t.Fatal(err)
				}
				singleValue := single.Value()

				got, err := c.client.Seeds(context.Background(), "default")
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Seeds) == 0 {
					t.Fatalf("router returned no seeds")
				}
				if len(got.Seeds) > spec.K {
					t.Fatalf("router returned %d seeds > budget %d", len(got.Seeds), spec.K)
				}

				// Re-evaluate the merged seeds against the single tracker's
				// unbroken influence sets: the coverage they would achieve
				// had the whole stream been tracked in one process.
				covered := map[sim.UserID]struct{}{}
				for _, u := range got.Seeds {
					for _, v := range single.InfluenceSet(u) {
						covered[v] = struct{}{}
					}
				}
				global := float64(len(covered))
				t.Logf("merged seeds: global objective %.1f vs single-tracker sieve %.1f (ratio %.3f; partitioned-universe value %.1f)",
					global, singleValue, global/singleValue, got.Value)
				if global < (1-epsilon)*singleValue {
					t.Errorf("merged seeds' global objective %.1f < (1-%.2f)·%.1f", global, epsilon, singleValue)
				}
			})
		}
	}
}

// TestClusterQueryPushdown checks the /query scatter: the plan runs on
// every shard, and the router re-applies the trailing topk on the merged
// stream. The expectation is computed by the same deterministic recipe the
// router documents: per-shard answers concatenated in shard index order,
// stably re-sorted, truncated to K.
func TestClusterQueryPushdown(t *testing.T) {
	ds := clusterDatasets("Reddit")[0]
	spec := clusterSpec(sim.SIC)
	c := newCluster(t, 3, spec)
	ingestAll(t, c.client, ds.actions, 500)

	req := api.QueryRequest{Plan: query.Plan{
		Scan: "seeds",
		Ops:  []query.Op{{Op: "topk", Col: "influence", K: 4, Desc: true}},
	}}
	ctx := context.Background()

	var want []query.Row
	var cols []string
	for _, ts := range c.shards {
		sc := api.NewClient(ts.URL)
		resp, err := sc.Query(ctx, "default", req)
		if err != nil {
			t.Fatal(err)
		}
		cols = resp.Columns
		want = append(want, resp.Rows...)
	}
	ci := -1
	for i, col := range cols {
		if col == "influence" {
			ci = i
		}
	}
	if ci < 0 {
		t.Fatalf("no influence column in %v", cols)
	}
	sort.SliceStable(want, func(a, b int) bool { return want[a][ci].Compare(want[b][ci]) > 0 })
	if len(want) > 4 {
		want = want[:4]
	}

	got, err := c.client.Query(ctx, "default", req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Rows, want) {
		t.Errorf("merged topk rows:\n got %v\nwant %v", got.Rows, want)
	}
	if got.Partial {
		t.Errorf("unexpected partial query result")
	}
}

// TestClusterInfluenceRouting checks single-owner routing: the router's
// /influence answer for any user equals the owning shard's own answer (the
// user's whole sub-stream lives there), and unknown trackers 404 through
// the merged path.
func TestClusterInfluenceRouting(t *testing.T) {
	ds := clusterDatasets("SYN-O")[0]
	spec := clusterSpec(sim.SIC)
	c := newCluster(t, 3, spec)
	ingestAll(t, c.client, ds.actions, 500)
	ctx := context.Background()

	seen := 0
	for u := sim.UserID(0); u < 500 && seen < 25; u++ {
		owner := c.router.Ring().ShardForID(u)
		direct := api.NewClient(c.shards[owner].URL)
		want, err := direct.Influence(ctx, "default", fmt.Sprint(u))
		if err != nil {
			t.Fatal(err)
		}
		if want.Count == 0 {
			continue
		}
		seen++
		got, err := c.client.Influence(ctx, "default", fmt.Sprint(u))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("user %d: router %+v != shard %d %+v", u, got, owner, want)
		}
	}
	if seen == 0 {
		t.Fatal("no user with a non-empty influence set found")
	}

	if _, err := c.client.Value(ctx, "nope"); err == nil {
		t.Fatal("expected 404 for unknown tracker")
	} else if apiErr, ok := err.(*api.Error); !ok || apiErr.Code != http.StatusNotFound {
		t.Fatalf("unknown tracker: got %v, want 404", err)
	}
}

// TestClusterHammer is invariant (c): concurrent ingest and merged reads
// against a live cluster, run under -race in CI. Correctness here is "no
// read errors, no torn counts": the final processed total must equal the
// ingested total on every read path.
func TestClusterHammer(t *testing.T) {
	ds := clusterDatasets("Twitter")[0]
	spec := clusterSpec(sim.SIC)
	c := newCluster(t, 2, spec)
	ctx := context.Background()

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				var err error
				switch r % 4 {
				case 0:
					_, err = c.client.Seeds(ctx, "default")
				case 1:
					_, err = c.client.Value(ctx, "default")
				case 2:
					_, err = c.client.Stats(ctx, "default")
				case 3:
					_, err = c.client.Query(ctx, "default", api.QueryRequest{Plan: query.Plan{
						Scan: "seeds",
						Ops:  []query.Op{{Op: "topk", Col: "influence", K: 3, Desc: true}},
					}})
				}
				if err != nil {
					select {
					case <-done: // reads racing teardown are not failures
						return
					default:
						t.Errorf("reader %d: %v", r, err)
						return
					}
				}
			}
		}(r)
	}
	ingestAll(t, c.client, ds.actions, 100)
	close(done)
	wg.Wait()

	win, err := c.client.Window(ctx, "default")
	if err != nil {
		t.Fatal(err)
	}
	if win.Processed != int64(len(ds.actions)) {
		t.Fatalf("processed %d != ingested %d", win.Processed, len(ds.actions))
	}
}

// proxy is a TCP pass-through in front of one shard that can be killed and
// revived on the same port — the shard-failure lever of invariant (d).
type proxy struct {
	t      *testing.T
	target string
	addr   string

	mu    sync.Mutex
	ln    net.Listener
	conns map[net.Conn]struct{}
}

func newProxy(t *testing.T, target string) *proxy {
	p := &proxy{t: t, target: strings.TrimPrefix(target, "http://"), conns: map[net.Conn]struct{}{}}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p.addr = ln.Addr().String()
	p.serve(ln)
	t.Cleanup(p.stop)
	return p
}

func (p *proxy) serve(ln net.Listener) {
	p.mu.Lock()
	p.ln = ln
	p.mu.Unlock()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", p.target)
			if err != nil {
				c.Close()
				continue
			}
			p.mu.Lock()
			p.conns[c] = struct{}{}
			p.conns[up] = struct{}{}
			p.mu.Unlock()
			go func() { _, _ = io.Copy(up, c); up.Close() }()
			go func() { _, _ = io.Copy(c, up); c.Close() }()
		}
	}()
}

// stop kills the listener and every live connection: from the router's
// point of view the shard is dead (connection refused / reset).
func (p *proxy) stop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.ln != nil {
		p.ln.Close()
		p.ln = nil
	}
	for c := range p.conns {
		c.Close()
		delete(p.conns, c)
	}
}

// restart re-listens on the same port.
func (p *proxy) restart() {
	ln, err := net.Listen("tcp", p.addr)
	if err != nil {
		p.t.Fatalf("proxy restart: %v", err)
	}
	p.serve(ln)
}

// TestClusterShardDownPartial is invariant (d): killing one shard flags
// merged reads as partial (X-Partial header + DTO field) without taking
// the router down, ingest owned by the dead shard is refused retryably,
// and the background probe restores full answers once the shard returns.
func TestClusterShardDownPartial(t *testing.T) {
	ds := clusterDatasets("SYN-N")[0]
	spec := clusterSpec(sim.SIC)

	// Hand-build the cluster so shard 0 sits behind a killable proxy.
	var shardURLs []string
	for i := 0; i < 3; i++ {
		reg := server.NewRegistry()
		if _, err := reg.Add("default", spec); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(server.New(reg))
		t.Cleanup(ts.Close)
		t.Cleanup(func() { _ = reg.Close() })
		shardURLs = append(shardURLs, ts.URL)
	}
	px := newProxy(t, shardURLs[0])
	addrs := append([]string{"http://" + px.addr}, shardURLs[1:]...)
	rt, err := router.New(addrs, router.Options{Retries: 0, Timeout: 5 * time.Second, ProbeInterval: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	front := httptest.NewServer(rt)
	t.Cleanup(front.Close)
	client := api.NewClient(front.URL)

	ingestAll(t, client, ds.actions, 500)
	ctx := context.Background()
	full, err := client.Value(ctx, "default")
	if err != nil {
		t.Fatal(err)
	}
	if full.Partial {
		t.Fatal("partial before any failure")
	}

	px.stop()

	// First read after the kill marks the shard down and goes partial.
	v, err := client.Value(ctx, "default")
	if err != nil {
		t.Fatalf("read with one shard down: %v", err)
	}
	if !v.Partial {
		t.Errorf("value not flagged partial with shard 0 dead")
	}
	if v.Value >= full.Value {
		t.Errorf("partial value %v not below full value %v", v.Value, full.Value)
	}

	// The wire carries the flag too: X-Partial header on the raw response.
	raw, err := http.Get(front.URL + "/v1/trackers/default/seeds")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	if raw.Header.Get("X-Partial") != "true" {
		t.Errorf("X-Partial header = %q, want \"true\"", raw.Header.Get("X-Partial"))
	}
	var seeds api.SeedsResponse
	if err := json.NewDecoder(raw.Body).Decode(&seeds); err != nil {
		t.Fatal(err)
	}
	if !seeds.Partial || len(seeds.Seeds) == 0 {
		t.Errorf("partial seeds: partial=%v seeds=%d, want flagged and non-empty", seeds.Partial, len(seeds.Seeds))
	}

	// Cluster health: router is up, exactly one shard unhealthy.
	ch, err := client.ClusterHealth(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Status != "degraded" || ch.Healthy != 2 {
		t.Errorf("cluster health: status=%q healthy=%d, want degraded/2", ch.Status, ch.Healthy)
	}

	// Ingest that needs the dead shard is refused retryably; a batch owned
	// entirely by live shards still lands.
	var deadUser, liveUser sim.UserID
	foundDead, foundLive := false, false
	for u := sim.UserID(1000); u < 2000; u++ {
		switch rt.Ring().ShardForID(u) {
		case 0:
			if !foundDead {
				deadUser, foundDead = u, true
			}
		default:
			if !foundLive {
				liveUser, foundLive = u, true
			}
		}
		if foundDead && foundLive {
			break
		}
	}
	next := ds.actions[len(ds.actions)-1].ID
	_, err = client.Ingest(ctx, "default", []sim.Action{{ID: next + 1, User: deadUser, Parent: sim.NoParent}})
	if apiErr, ok := err.(*api.Error); !ok || apiErr.Code != http.StatusServiceUnavailable {
		t.Errorf("ingest to dead shard: got %v, want 503", err)
	}
	if _, err := client.Ingest(ctx, "default", []sim.Action{{ID: next + 2, User: liveUser, Parent: sim.NoParent}}); err != nil {
		t.Errorf("ingest to live shards: %v", err)
	}

	// Revive the shard: the background probe must mark it up and reads go
	// back to full, un-flagged answers.
	px.restart()
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, err := client.Value(ctx, "default")
		if err == nil && !v.Partial {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("shard never rejoined: last value=%+v err=%v", v, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestClusterNameMode checks the name-mode path end to end: ingest routes
// by raw external name (pre-intern), merged seeds come back with names,
// and the additive value identity holds against reference trackers fed the
// name-partitioned sub-streams through their own intern tables.
func TestClusterNameMode(t *testing.T) {
	ds := clusterDatasets("Reddit")[0]
	spec := clusterSpec(sim.SIC)
	spec.Names = true
	c := newCluster(t, 3, spec)
	ctx := context.Background()

	named := make([]api.NamedAction, len(ds.actions))
	for i, a := range ds.actions {
		named[i] = api.NamedAction{ID: a.ID, User: fmt.Sprintf("user-%d", a.User), Parent: a.Parent}
	}
	for lo := 0; lo < len(named); lo += 500 {
		hi := lo + 500
		if hi > len(named) {
			hi = len(named)
		}
		if _, err := c.client.IngestNamed(ctx, "default", named[lo:hi]); err != nil {
			t.Fatalf("ingest [%d,%d): %v", lo, hi, err)
		}
	}

	// Reference: partition by raw name, intern per shard in arrival order,
	// run standalone trackers.
	nShards := c.router.Ring().Shards()
	wantValue := 0.0
	for i := 0; i < nShards; i++ {
		tr, err := sim.New(spec.Config())
		if err != nil {
			t.Fatal(err)
		}
		defer tr.Close()
		ids := map[string]sim.UserID{}
		for _, a := range named {
			if c.router.Ring().ShardForName(a.User) != i {
				continue
			}
			id, ok := ids[a.User]
			if !ok {
				id = sim.UserID(len(ids))
				ids[a.User] = id
			}
			if err := tr.Process(sim.Action{ID: a.ID, User: id, Parent: a.Parent}); err != nil {
				t.Fatal(err)
			}
		}
		wantValue += tr.Value()
	}
	got, err := c.client.Value(ctx, "default")
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != wantValue {
		t.Errorf("name-mode value: router %v != reference sum %v", got.Value, wantValue)
	}

	seeds, err := c.client.Seeds(ctx, "default")
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds.Seeds) == 0 || len(seeds.Names) != len(seeds.Seeds) {
		t.Fatalf("name-mode seeds: %d seeds, %d names", len(seeds.Seeds), len(seeds.Names))
	}
	for _, nm := range seeds.Names {
		if !strings.HasPrefix(nm, "user-") {
			t.Errorf("seed name %q does not look like an external name", nm)
		}
	}

	// Influence routes to the name's owning shard.
	name := seeds.Names[0]
	inf, err := c.client.Influence(ctx, "default", name)
	if err != nil {
		t.Fatal(err)
	}
	if inf.Name != name || inf.Count == 0 {
		t.Errorf("influence(%q): name=%q count=%d", name, inf.Name, inf.Count)
	}
}
