package router

import (
	"fmt"
	"testing"

	"repro/sim"
)

// TestRingDeterminism: two rings of the same width agree on every
// assignment — the property that lets tests (and operators) recompute the
// partition out of band.
func TestRingDeterminism(t *testing.T) {
	a, b := NewRing(5), NewRing(5)
	for u := sim.UserID(0); u < 10000; u++ {
		if a.ShardForID(u) != b.ShardForID(u) {
			t.Fatalf("user %d: %d != %d", u, a.ShardForID(u), b.ShardForID(u))
		}
	}
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("user-%d", i)
		if a.ShardForName(name) != b.ShardForName(name) {
			t.Fatalf("name %q: %d != %d", name, a.ShardForName(name), b.ShardForName(name))
		}
	}
}

// TestRingBounds: every assignment lands on a real shard.
func TestRingBounds(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 16} {
		r := NewRing(n)
		for u := sim.UserID(0); u < 5000; u++ {
			if s := r.ShardForID(u); s < 0 || s >= n {
				t.Fatalf("n=%d user %d: shard %d out of range", n, u, s)
			}
		}
	}
}

// TestRingBalance: with 128 virtual nodes per shard, no shard owns more
// than twice its fair share of a large uniform key population.
func TestRingBalance(t *testing.T) {
	const keys = 40000
	for _, n := range []int{2, 4, 8} {
		r := NewRing(n)
		counts := make([]int, n)
		for u := sim.UserID(0); u < keys; u++ {
			counts[r.ShardForID(u)]++
		}
		fair := keys / n
		for s, c := range counts {
			if c > 2*fair || c < fair/2 {
				t.Errorf("n=%d shard %d owns %d keys (fair share %d)", n, s, c, fair)
			}
		}
	}
}

// TestRingStability: growing the ring moves only a bounded fraction of
// keys — the consistent-hashing property that makes resharding cheap.
func TestRingStability(t *testing.T) {
	const keys = 20000
	small, big := NewRing(4), NewRing(5)
	moved := 0
	for u := sim.UserID(0); u < keys; u++ {
		a, b := small.ShardForID(u), big.ShardForID(u)
		if a != b {
			if b != 4 {
				// A key that moved between two pre-existing shards would
				// break incremental resharding; consistent hashing only
				// moves keys onto the new shard.
				t.Fatalf("user %d moved %d→%d, not onto the new shard", u, a, b)
			}
			moved++
		}
	}
	// Expected movement is keys/5; allow 2× slack for hash variance.
	if moved > 2*keys/5 {
		t.Errorf("%d/%d keys moved adding one shard (expected ≈%d)", moved, keys, keys/5)
	}
	if moved == 0 {
		t.Error("no keys moved onto the new shard")
	}
}

// TestRingNamePreIntern: string routing hashes the raw external name, so
// the assignment is independent of any shard's intern table (two shards
// would intern the same name to different dense IDs).
func TestRingNamePreIntern(t *testing.T) {
	r := NewRing(3)
	got := r.ShardForName("alice")
	for i := 0; i < 100; i++ {
		if r.ShardForName("alice") != got {
			t.Fatal("name routing not stable")
		}
	}
	// Sanity: names spread across shards at all.
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[r.ShardForName(fmt.Sprintf("user-%d", i))] = true
	}
	if len(seen) != 3 {
		t.Errorf("200 names hit only %d/3 shards", len(seen))
	}
}
