package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/intern"
	"repro/internal/dataio"
	"repro/internal/greedy"
	"repro/query"
	"repro/sim"
)

// Version is the build version reported by the router's /v1/healthz.
// Override at link time like internal/server.Version.
var Version = "dev"

// DefaultMaxBodyBytes caps an ingest request body, mirroring
// internal/server's cap.
const DefaultMaxBodyBytes = 64 << 20

// DefaultQueryRowLimit mirrors internal/server's default row cap, applied
// to the merged row stream after per-shard pushdown.
const DefaultQueryRowLimit = 10000

// errShardDown marks a shard skipped because the router already considers
// it unreachable; the background probe will bring it back.
var errShardDown = errors.New("router: shard is down")

// Options configures a Router. The zero value is serviceable.
type Options struct {
	// Retries is the per-shard api.Client retry budget (see
	// api.RetryPolicy for the safety rules); 0 means 2.
	Retries int
	// Timeout bounds each shard attempt; 0 means 10s.
	Timeout time.Duration
	// ProbeInterval paces the background re-probe of down shards; 0 means
	// 1s.
	ProbeInterval time.Duration
	// MaxBodyBytes caps ingest bodies; 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Timeout == 0 {
		o.Timeout = 10 * time.Second
	}
	if o.ProbeInterval == 0 {
		o.ProbeInterval = time.Second
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return o
}

// shard is one backend simserve instance plus the router's view of its
// reachability.
type shard struct {
	addr   string
	client *api.Client
	// down flips on transport-level failure and back on a successful
	// probe. An *api.Error never marks a shard down: it proves the shard
	// answered.
	down    atomic.Bool
	lastErr atomic.Value // string: last transport failure
}

func (s *shard) isDown() bool { return s.down.Load() }

func (s *shard) markUp() { s.down.Store(false) }

// noteErr classifies err after a shard call: transport failures mark the
// shard down (the caller's read goes partial, the probe re-arms it); an
// *api.Error or the caller's own cancellation never does.
func (s *shard) noteErr(err error) {
	var apiErr *api.Error
	if err == nil || errors.As(err, &apiErr) ||
		errors.Is(err, context.Canceled) || errors.Is(err, errShardDown) {
		return
	}
	s.lastErr.Store(err.Error())
	s.down.Store(true)
}

func (s *shard) lastError() string {
	if v, ok := s.lastErr.Load().(string); ok {
		return v
	}
	return ""
}

// Router is the scatter-gather HTTP front of a shard fleet. It implements
// http.Handler with the single-server tracker routes plus a cluster-shaped
// /v1/healthz; see the package comment for the merge rules.
type Router struct {
	shards []*shard
	ring   *Ring
	mux    *http.ServeMux
	opts   Options

	mu    sync.RWMutex
	specs map[string]api.Spec // tracker name → spec, learned from shard /v1/trackers
	// procCache remembers each shard's last reported lifetime processed
	// count per tracker, so an ingest that cannot reach an idle shard can
	// still report an exact-as-of-last-contact cluster total.
	procCache map[string][]int64

	quit chan struct{}
	done chan struct{}
}

// New builds a router over the shard base URLs (scheme://host:port) and
// starts its background probe. Callers own serving it (http.Server) and
// must Close it to stop the probe.
func New(addrs []string, opts Options) (*Router, error) {
	if len(addrs) == 0 {
		return nil, errors.New("router: need at least one shard address")
	}
	opts = opts.withDefaults()
	rt := &Router{
		ring:      NewRing(len(addrs)),
		opts:      opts,
		specs:     make(map[string]api.Spec),
		procCache: make(map[string][]int64),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	for _, a := range addrs {
		c := api.NewClient(a)
		c.Timeout = opts.Timeout
		c.Retry = api.RetryPolicy{MaxRetries: opts.Retries, MinBackoff: 50 * time.Millisecond}
		rt.shards = append(rt.shards, &shard{addr: strings.TrimRight(a, "/"), client: c})
	}
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	m.HandleFunc("GET /v1/healthz", rt.handleClusterHealth)
	m.HandleFunc("GET /v1/trackers", rt.handleList)
	m.HandleFunc("POST /v1/trackers/{name}/actions", rt.handleIngest)
	m.HandleFunc("GET /v1/trackers/{name}/seeds", rt.handleSeeds)
	m.HandleFunc("GET /v1/trackers/{name}/value", rt.handleValue)
	m.HandleFunc("GET /v1/trackers/{name}/window", rt.handleWindow)
	m.HandleFunc("GET /v1/trackers/{name}/checkpoints", rt.handleCheckpoints)
	m.HandleFunc("GET /v1/trackers/{name}/stats", rt.handleStats)
	m.HandleFunc("GET /v1/trackers/{name}/candidates", rt.handleCandidates)
	m.HandleFunc("GET /v1/trackers/{name}/influence", rt.handleInfluence)
	m.HandleFunc("POST /v1/trackers/{name}/query", rt.handleQuery)
	rt.mux = m
	go rt.probeLoop()
	return rt, nil
}

// ServeHTTP dispatches to the cluster API.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Close stops the background probe. It does not touch the shards.
func (rt *Router) Close() {
	close(rt.quit)
	<-rt.done
}

// Shards returns the configured shard base URLs, in ring index order.
func (rt *Router) Shards() []string {
	out := make([]string, len(rt.shards))
	for i, s := range rt.shards {
		out[i] = s.addr
	}
	return out
}

// Ring exposes the partition map (for tests and cmd/simrouter logs).
func (rt *Router) Ring() *Ring { return rt.ring }

// probeLoop periodically re-probes down shards with a plain health check
// and marks them up on success, so a restarted shard rejoins reads without
// operator action.
func (rt *Router) probeLoop() {
	defer close(rt.done)
	t := time.NewTicker(rt.opts.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.quit:
			return
		case <-t.C:
			for _, s := range rt.shards {
				if !s.isDown() {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), rt.opts.Timeout)
				_, err := s.client.Health(ctx)
				cancel()
				if err == nil {
					s.markUp()
				}
			}
		}
	}
}

// scatter runs fn against every shard concurrently, skipping shards
// already marked down (their slot gets errShardDown). Transport failures
// observed by fn mark the shard down for subsequent requests.
func (rt *Router) scatter(fn func(i int, s *shard) error) []error {
	errs := make([]error, len(rt.shards))
	var wg sync.WaitGroup
	for i, s := range rt.shards {
		if s.isDown() {
			errs[i] = errShardDown
			continue
		}
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			err := fn(i, s)
			s.noteErr(err)
			errs[i] = err
		}(i, s)
	}
	wg.Wait()
	return errs
}

// gather classifies a scatter's outcome for a merged read. A shard that
// answered with an *api.Error fails the whole read with that error passed
// through verbatim (the shard is alive and saying something deterministic,
// e.g. 404 unknown tracker); transport failures make the result partial;
// no answers at all is a 503. Returns ok=false when gather already wrote
// the response.
func (rt *Router) gather(w http.ResponseWriter, errs []error) (partial, ok bool) {
	answered := 0
	for _, err := range errs {
		if err == nil {
			answered++
			continue
		}
		var apiErr *api.Error
		if errors.As(err, &apiErr) {
			writeAPIError(w, apiErr)
			return false, false
		}
		partial = true
	}
	if answered == 0 {
		writeError(w, http.StatusServiceUnavailable, "no shard reachable")
		return false, false
	}
	return partial, true
}

// writeJSON emits v with status code, flagging partial merges with the
// X-Partial header (set before the status line goes out).
func writeJSON(w http.ResponseWriter, code int, partial bool, v any) {
	if partial {
		w.Header().Set("X-Partial", "true")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError emits the api.ErrorResponse envelope — the same error
// contract as a single server, so clients need no router-specific casing.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, false, api.ErrorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// writeAPIError passes a shard's error through unchanged, Retry-After
// included.
func writeAPIError(w http.ResponseWriter, e *api.Error) {
	if e.RetryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(e.RetryAfter/time.Second)))
	}
	writeError(w, e.Code, "%s", e.Message)
}

// specFor resolves a tracker's spec, consulting the cache first and then
// the shard fleet's /v1/trackers (any healthy shard will do: the fleet is
// homogeneously configured). The spec drives routing decisions the router
// cannot infer from a request alone — most importantly whether the tracker
// is name-mode (hash raw names) or numeric (hash IDs).
func (rt *Router) specFor(ctx context.Context, name string) (api.Spec, error) {
	rt.mu.RLock()
	sp, ok := rt.specs[name]
	rt.mu.RUnlock()
	if ok {
		return sp, nil
	}
	var lastErr error = &api.Error{Code: http.StatusNotFound, Message: fmt.Sprintf("unknown tracker %q", name)}
	for _, s := range rt.shards {
		if s.isDown() {
			continue
		}
		resp, err := s.client.List(ctx)
		if err != nil {
			s.noteErr(err)
			lastErr = err
			continue
		}
		rt.mu.Lock()
		for _, ti := range resp.Trackers {
			rt.specs[ti.Name] = ti.Spec
		}
		sp, ok = rt.specs[name]
		rt.mu.Unlock()
		if ok {
			return sp, nil
		}
		return api.Spec{}, &api.Error{Code: http.StatusNotFound, Message: fmt.Sprintf("unknown tracker %q", name)}
	}
	return api.Spec{}, lastErr
}

// noteProcessed records shard i's last reported lifetime processed count
// for a tracker.
func (rt *Router) noteProcessed(name string, i int, processed int64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	c := rt.procCache[name]
	if c == nil {
		c = make([]int64, len(rt.shards))
		rt.procCache[name] = c
	}
	c[i] = processed
}

func (rt *Router) cachedProcessed(name string, i int) int64 {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if c := rt.procCache[name]; c != nil {
		return c[i]
	}
	return 0
}

// handleClusterHealth probes every shard — down ones included, so a GET
// doubles as an on-demand probe — and reports per-shard health with the
// rolled-up status: "ok" only when every shard answers and reports "ok".
func (rt *Router) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	resp := api.ClusterHealthResponse{Version: Version, Shards: make([]api.ShardHealth, len(rt.shards))}
	var wg sync.WaitGroup
	for i, s := range rt.shards {
		wg.Add(1)
		go func(i int, s *shard) {
			defer wg.Done()
			h, err := s.client.Health(r.Context())
			sh := api.ShardHealth{Addr: s.addr}
			if err != nil {
				s.noteErr(err)
				sh.Healthy = false
				var apiErr *api.Error
				if errors.As(err, &apiErr) {
					sh.Error = apiErr.Message
				} else {
					sh.Error = s.lastError()
				}
			} else {
				s.markUp()
				sh.Healthy = true
				sh.Status = h.Status
				sh.Trackers = h.Trackers
			}
			resp.Shards[i] = sh
		}(i, s)
	}
	wg.Wait()
	resp.Status = "ok"
	for _, sh := range resp.Shards {
		if sh.Healthy {
			resp.Healthy++
		}
		if !sh.Healthy || (sh.Status != "" && sh.Status != "ok") {
			resp.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, false, resp)
}

// handleList merges the shard fleets' tracker lists. The fleet is
// homogeneously configured, so specs come from the first shard that
// reports a tracker and Processed counts sum across shards.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	resps := make([]api.ListResponse, len(rt.shards))
	errs := rt.scatter(func(i int, s *shard) error {
		var err error
		resps[i], err = s.client.List(r.Context())
		return err
	})
	partial, ok := rt.gather(w, errs)
	if !ok {
		return
	}
	merged := api.ListResponse{Trackers: []api.TrackerInfo{}, Partial: partial}
	index := map[string]int{}
	for i := range rt.shards {
		if errs[i] != nil {
			continue
		}
		for _, ti := range resps[i].Trackers {
			rt.mu.Lock()
			rt.specs[ti.Name] = ti.Spec
			rt.mu.Unlock()
			rt.noteProcessed(ti.Name, i, ti.Processed)
			if j, seen := index[ti.Name]; seen {
				merged.Trackers[j].Processed += ti.Processed
			} else {
				index[ti.Name] = len(merged.Trackers)
				merged.Trackers = append(merged.Trackers, ti)
			}
		}
	}
	sort.Slice(merged.Trackers, func(a, b int) bool { return merged.Trackers[a].Name < merged.Trackers[b].Name })
	writeJSON(w, http.StatusOK, partial, merged)
}

// handleIngest partitions the NDJSON body by acting user and fans the
// sub-batches out to their owning shards. Every shard receives a request —
// an empty sub-batch is a cheap processed-count read — so the response's
// Processed is the exact cluster total. A down shard with an empty
// sub-batch falls back to its cached count; a down (or failing) shard that
// OWNS part of the batch fails the ingest with that shard's error, and the
// response body names the shards that did apply their part (per-shard
// atomicity: the router does not undo applied sub-batches).
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sp, err := rt.specFor(r.Context(), name)
	if err != nil {
		var apiErr *api.Error
		if errors.As(err, &apiErr) {
			writeAPIError(w, apiErr)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "resolving tracker %q: %v", name, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, rt.opts.MaxBodyBytes)
	n := len(rt.shards)
	numParts := make([][]sim.Action, n)
	nameParts := make([][]api.NamedAction, n)
	total := 0
	if sp.Names {
		err = dataio.ReadNDJSONNamed(body, func(a dataio.NamedAction) bool {
			i := rt.ring.ShardForName(a.User)
			nameParts[i] = append(nameParts[i], api.NamedAction{ID: a.ID, User: a.User, Parent: a.Parent})
			total++
			return true
		})
	} else {
		err = dataio.ReadNDJSON(body, func(a sim.Action) bool {
			i := rt.ring.ShardForID(a.User)
			numParts[i] = append(numParts[i], a)
			total++
			return true
		})
	}
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	processed := make([]int64, n)
	errs := rt.scatter(func(i int, s *shard) error {
		var resp api.IngestResponse
		var err error
		if sp.Names {
			resp, err = s.client.IngestNamed(r.Context(), name, nameParts[i])
		} else {
			resp, err = s.client.Ingest(r.Context(), name, numParts[i])
		}
		if err != nil {
			return err
		}
		processed[i] = resp.Processed
		rt.noteProcessed(name, i, resp.Processed)
		return nil
	})
	var applied, failedOwners []string
	var failErr error
	sum := int64(0)
	for i, s := range rt.shards {
		owns := len(numParts[i]) > 0 || len(nameParts[i]) > 0
		if errs[i] == nil {
			sum += processed[i]
			if owns {
				applied = append(applied, s.addr)
			}
			continue
		}
		sum += rt.cachedProcessed(name, i)
		if owns {
			failedOwners = append(failedOwners, s.addr)
			if failErr == nil {
				failErr = errs[i]
			}
		}
	}
	if failErr != nil {
		code := http.StatusServiceUnavailable
		msg := failErr.Error()
		var apiErr *api.Error
		if errors.As(failErr, &apiErr) {
			code = apiErr.Code
			msg = apiErr.Message
		}
		if code == http.StatusServiceUnavailable || code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, code, "shards %v failed (%s); shards %v applied their sub-batches",
			failedOwners, msg, applied)
		return
	}
	writeJSON(w, http.StatusOK, false, api.IngestResponse{Accepted: total, Processed: sum})
}

// handleSeeds is the distributed seed selection: scatter the candidates
// endpoint, union the shard-local pools, and run one exact lazy-greedy
// pass over the reported influence sets (greedy.SelectSets). User
// partitioning makes shard influence universes disjoint, so the reported
// coverage of the merged selection is exact — the final pass is a true
// re-score, not an estimate. Name-mode pools merge by external name
// through a router-local intern table (shard-dense IDs carry no
// cross-shard meaning).
func (rt *Router) handleSeeds(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	resps := make([]api.CandidatesResponse, len(rt.shards))
	errs := rt.scatter(func(i int, s *shard) error {
		var err error
		resps[i], err = s.client.Candidates(r.Context(), name)
		return err
	})
	partial, ok := rt.gather(w, errs)
	if !ok {
		return
	}
	var tb *intern.Table
	if rt.nameMode(r.Context(), name, resps, errs) {
		tb = intern.New(0)
	}
	k := 0
	sets := make(map[sim.UserID][]sim.UserID)
	var processed int64
	ws := sim.ActionID(-1)
	for i := range rt.shards {
		if errs[i] != nil {
			continue
		}
		resp := resps[i]
		if resp.K > k {
			k = resp.K
		}
		processed += resp.Processed
		rt.noteProcessed(name, i, resp.Processed)
		if ws < 0 || resp.WindowStart < ws {
			ws = resp.WindowStart
		}
		for _, c := range resp.Candidates {
			key := c.User
			inf := c.Influenced
			if tb != nil {
				key = sim.UserID(tb.Intern(c.Name))
				inf = make([]sim.UserID, len(c.InfluencedNames))
				for j, nm := range c.InfluencedNames {
					inf[j] = sim.UserID(tb.Intern(nm))
				}
			}
			// Shard universes are disjoint, so a key repeats only if the
			// same shard reported it twice; appending unions defensively.
			sets[key] = append(sets[key], inf...)
		}
	}
	seeds, value := greedy.SelectSets(sets, k, nil)
	if seeds == nil {
		seeds = []sim.UserID{}
	}
	resp := api.SeedsResponse{
		Seeds:       seeds,
		Value:       value,
		WindowStart: ws,
		Processed:   processed,
		Partial:     partial,
	}
	if tb != nil {
		resp.Names = make([]string, len(seeds))
		for i, u := range seeds {
			resp.Names[i], _ = tb.Name(uint32(u))
		}
	}
	writeJSON(w, http.StatusOK, partial, resp)
}

// nameMode reports whether the tracker is name-mode, preferring the spec
// cache and falling back to inspecting the candidate responses (a
// candidate with a name ⇒ name mode) so seeds still merge correctly if the
// spec lookup raced a shard restart.
func (rt *Router) nameMode(ctx context.Context, name string, resps []api.CandidatesResponse, errs []error) bool {
	if sp, err := rt.specFor(ctx, name); err == nil {
		return sp.Names
	}
	for i := range resps {
		if errs[i] != nil {
			continue
		}
		for _, c := range resps[i].Candidates {
			return c.Name != ""
		}
	}
	return false
}

// handleCandidates serves the merged candidate pool: the concatenation of
// the shard pools (disjoint universes — no dedup needed), K as the fleet's
// budget, Value as the additive sum of shard-local objectives.
func (rt *Router) handleCandidates(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	resps := make([]api.CandidatesResponse, len(rt.shards))
	errs := rt.scatter(func(i int, s *shard) error {
		var err error
		resps[i], err = s.client.Candidates(r.Context(), name)
		return err
	})
	partial, ok := rt.gather(w, errs)
	if !ok {
		return
	}
	merged := api.CandidatesResponse{Candidates: []api.CandidateSeed{}, WindowStart: -1}
	for i := range rt.shards {
		if errs[i] != nil {
			continue
		}
		resp := resps[i]
		if resp.K > merged.K {
			merged.K = resp.K
		}
		merged.Value += resp.Value
		merged.Processed += resp.Processed
		if merged.WindowStart < 0 || resp.WindowStart < merged.WindowStart {
			merged.WindowStart = resp.WindowStart
		}
		merged.Candidates = append(merged.Candidates, resp.Candidates...)
	}
	writeJSON(w, http.StatusOK, partial, merged)
}

// handleValue sums the shard objectives: shard influence universes are
// disjoint, so the sum never double counts — the merge is exact, not a
// bound (see ARCHITECTURE.md "Cluster topology").
func (rt *Router) handleValue(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	resps := make([]api.ValueResponse, len(rt.shards))
	errs := rt.scatter(func(i int, s *shard) error {
		var err error
		resps[i], err = s.client.Value(r.Context(), name)
		return err
	})
	partial, ok := rt.gather(w, errs)
	if !ok {
		return
	}
	out := api.ValueResponse{Partial: partial}
	for i := range rt.shards {
		if errs[i] != nil {
			continue
		}
		out.Value += resps[i].Value
		out.Processed += resps[i].Processed
		rt.noteProcessed(name, i, resps[i].Processed)
	}
	writeJSON(w, http.StatusOK, partial, out)
}

// handleWindow reports the merged window: the oldest window start any
// shard still covers, with the cluster-total processed count.
func (rt *Router) handleWindow(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	resps := make([]api.WindowResponse, len(rt.shards))
	errs := rt.scatter(func(i int, s *shard) error {
		var err error
		resps[i], err = s.client.Window(r.Context(), name)
		return err
	})
	partial, ok := rt.gather(w, errs)
	if !ok {
		return
	}
	out := api.WindowResponse{WindowStart: -1, Partial: partial}
	for i := range rt.shards {
		if errs[i] != nil {
			continue
		}
		if out.WindowStart < 0 || resps[i].WindowStart < out.WindowStart {
			out.WindowStart = resps[i].WindowStart
		}
		out.Processed += resps[i].Processed
	}
	writeJSON(w, http.StatusOK, partial, out)
}

// handleCheckpoints merges checkpoint ledgers by start ID: starts union
// (sorted ascending, as a single server reports them), values summing
// where shards share a start — exact for the same disjoint-universe
// reason as /value.
func (rt *Router) handleCheckpoints(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	resps := make([]api.CheckpointsResponse, len(rt.shards))
	errs := rt.scatter(func(i int, s *shard) error {
		var err error
		resps[i], err = s.client.Checkpoints(r.Context(), name)
		return err
	})
	partial, ok := rt.gather(w, errs)
	if !ok {
		return
	}
	byStart := make(map[sim.ActionID]float64)
	for i := range rt.shards {
		if errs[i] != nil {
			continue
		}
		for j, start := range resps[i].Starts {
			v := 0.0
			if j < len(resps[i].Values) {
				v = resps[i].Values[j]
			}
			byStart[start] += v
		}
	}
	out := api.CheckpointsResponse{
		Checkpoints: len(byStart),
		Starts:      make([]sim.ActionID, 0, len(byStart)),
		Values:      make([]float64, 0, len(byStart)),
		Partial:     partial,
	}
	for start := range byStart {
		out.Starts = append(out.Starts, start)
	}
	sort.Slice(out.Starts, func(a, b int) bool { return out.Starts[a] < out.Starts[b] })
	for _, start := range out.Starts {
		out.Values = append(out.Values, byStart[start])
	}
	writeJSON(w, http.StatusOK, partial, out)
}

// handleStats sums the shard counters. Processed, ElementsFed, queue
// depths and checkpoint totals add; AvgCheckpoints is the processed-
// weighted mean so the cluster figure matches what one tracker over the
// union stream would report for the same per-action checkpoint counts.
func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	resps := make([]api.StatsResponse, len(rt.shards))
	errs := rt.scatter(func(i int, s *shard) error {
		var err error
		resps[i], err = s.client.Stats(r.Context(), name)
		return err
	})
	partial, ok := rt.gather(w, errs)
	if !ok {
		return
	}
	var out api.StatsResponse
	first := true
	var weighted float64
	for i := range rt.shards {
		if errs[i] != nil {
			continue
		}
		resp := resps[i]
		if first {
			out.Stats.Framework = resp.Stats.Framework
			out.Stats.Oracle = resp.Stats.Oracle
			first = false
		}
		out.Stats.Processed += resp.Stats.Processed
		out.Stats.Checkpoints += resp.Stats.Checkpoints
		out.Stats.ElementsFed += resp.Stats.ElementsFed
		weighted += resp.Stats.AvgCheckpoints * float64(resp.Stats.Processed)
		out.CheckpointsCreated += resp.CheckpointsCreated
		out.CheckpointsDeleted += resp.CheckpointsDeleted
		out.QueueDepth += resp.QueueDepth
		out.QueueCapacity += resp.QueueCapacity
		rt.noteProcessed(name, i, resp.Stats.Processed)
	}
	if out.Stats.Processed > 0 {
		out.Stats.AvgCheckpoints = weighted / float64(out.Stats.Processed)
	}
	out.Partial = partial
	writeJSON(w, http.StatusOK, partial, out)
}

// handleInfluence routes to the single shard that owns the user: all of a
// user's actions (and so their entire influence set) live on their ring
// shard, so this read needs no merge at all. A down owner is a plain 503 —
// there is no partial answer to a single-owner read.
func (rt *Router) handleInfluence(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	sp, err := rt.specFor(r.Context(), name)
	if err != nil {
		var apiErr *api.Error
		if errors.As(err, &apiErr) {
			writeAPIError(w, apiErr)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "resolving tracker %q: %v", name, err)
		return
	}
	user := r.URL.Query().Get("user")
	var idx int
	if sp.Names {
		if user == "" {
			writeError(w, http.StatusBadRequest, "missing user parameter")
			return
		}
		idx = rt.ring.ShardForName(user)
	} else {
		u64, perr := strconv.ParseUint(user, 10, 32)
		if perr != nil {
			writeError(w, http.StatusBadRequest, "bad or missing user parameter %q", user)
			return
		}
		idx = rt.ring.ShardForID(sim.UserID(u64))
	}
	s := rt.shards[idx]
	if s.isDown() {
		writeError(w, http.StatusServiceUnavailable, "shard %s owning user %q is down", s.addr, user)
		return
	}
	resp, err := s.client.Influence(r.Context(), name, user)
	if err != nil {
		s.noteErr(err)
		var apiErr *api.Error
		if errors.As(err, &apiErr) {
			writeAPIError(w, apiErr)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "shard %s: %v", s.addr, err)
		return
	}
	writeJSON(w, http.StatusOK, false, resp)
}

// handleQuery pushes the plan down to every shard unchanged and merges the
// row streams in shard order. Order- and cardinality-sensitive trailing
// operators (topk, limit) are re-applied router-side on the merged stream:
// a per-shard topk keeps each shard's local top K, so the union is a
// superset of the global top K and one more sort/truncate yields exactly
// the single-server answer. A topk buried mid-plan (followed by joins or
// filters) cannot be re-applied after the fact; the merged result is then
// the union of per-shard answers, which is the documented pushdown
// semantics.
func (rt *Router) handleQuery(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req api.QueryRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad query request: %v", err)
		return
	}
	if req.Limit < 0 {
		writeError(w, http.StatusBadRequest, "bad query request: negative limit %d", req.Limit)
		return
	}
	resps := make([]api.QueryResponse, len(rt.shards))
	errs := rt.scatter(func(i int, s *shard) error {
		var err error
		resps[i], err = s.client.Query(r.Context(), name, req)
		return err
	})
	partial, ok := rt.gather(w, errs)
	if !ok {
		return
	}
	out := api.QueryResponse{WindowStart: -1, Partial: partial}
	for i := range rt.shards {
		if errs[i] != nil {
			continue
		}
		resp := resps[i]
		if out.Columns == nil {
			out.Columns = resp.Columns
		}
		out.Rows = append(out.Rows, resp.Rows...)
		out.Truncated = out.Truncated || resp.Truncated
		out.Processed += resp.Processed
		if out.WindowStart < 0 || resp.WindowStart < out.WindowStart {
			out.WindowStart = resp.WindowStart
		}
	}
	out.Rows = reapplyTrailing(req.Plan.Ops, out.Columns, out.Rows)
	limit := req.Limit
	if limit == 0 || limit > DefaultQueryRowLimit {
		limit = DefaultQueryRowLimit
	}
	if len(out.Rows) > limit {
		out.Rows = out.Rows[:limit]
		out.Truncated = true
	}
	if out.Rows == nil {
		out.Rows = []query.Row{}
	}
	writeJSON(w, http.StatusOK, partial, out)
}

// reapplyTrailing re-runs the plan's trailing topk/limit operators on the
// merged rows. Only the trailing run is sound to replay: an operator
// sandwiched between others already had its output transformed per-shard.
func reapplyTrailing(ops []query.Op, columns []string, rows []query.Row) []query.Row {
	start := len(ops)
	for start > 0 && (ops[start-1].Op == "topk" || ops[start-1].Op == "limit") {
		start--
	}
	for _, op := range ops[start:] {
		switch op.Op {
		case "topk":
			ci := -1
			for i, c := range columns {
				if c == op.Col {
					ci = i
					break
				}
			}
			if ci < 0 {
				continue
			}
			desc := op.Desc
			sort.SliceStable(rows, func(a, b int) bool {
				cmp := rows[a][ci].Compare(rows[b][ci])
				if desc {
					return cmp > 0
				}
				return cmp < 0
			})
			if op.K >= 0 && len(rows) > op.K {
				rows = rows[:op.K]
			}
		case "limit":
			if op.N >= 0 && len(rows) > op.N {
				rows = rows[:op.N]
			}
		}
	}
	return rows
}
