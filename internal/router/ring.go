// Package router is the scatter-gather front of a sharded tracker fleet:
// the engine behind cmd/simrouter. It partitions the NDJSON action stream
// across N simserve shards by consistent hash of the acting user, fans
// ingest out over the typed api.Client (riding its RetryPolicy), and merges
// reads back into the single-server wire shapes — additive merges for
// value/stats/checkpoints (exact: shard influence universes are disjoint
// under user partitioning), one exact greedy re-score over shard-reported
// candidate influence sets for /seeds (the GreeDi-style two-round scheme),
// and per-shard plan pushdown with router-side topk/limit re-application
// for /query.
//
// # Partitioning
//
// Every action is routed by its acting user: numeric user IDs hash
// directly, name-mode users hash their raw external name BEFORE any
// interning (per-shard dense IDs are intern order and carry no cross-shard
// meaning). All of a user's actions therefore land on one shard, so that
// shard owns the user's influence set exactly. A reply whose parent action
// lives on another shard arrives on a shard that never saw the parent; the
// shard treats it as a root (see internal/stream), which is precisely the
// paper's semantics restricted to the shard's sub-stream. The influenced
// users a shard reports are actors of its own sub-stream, so the shard
// universes are DISJOINT — additive read merges are exact sums, never
// double counts, and the merged seed re-score is an exact greedy pass over
// the union of shard candidate pools.
//
// # Partial results
//
// A shard that fails at the transport level is marked down, skipped by
// reads, and re-probed in the background. Merged reads computed without
// every shard set the X-Partial: true response header and the DTO's
// Partial field; only when no shard at all answers does a read fail (503).
// Ingest is stricter: a batch that needs a down shard is refused (503,
// retryable) rather than silently half-applied.
package router

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/sim"
)

// defaultVnodes is the number of virtual nodes per shard on the ring.
// 128 points per shard keeps the keyspace imbalance within a few percent
// while the ring stays small enough to rebuild instantly.
const defaultVnodes = 128

// Ring is a consistent-hash ring over shard indices [0, N). Keys are
// placed by 64-bit FNV-1a and assigned to the next virtual node clockwise.
// Consistent hashing (rather than mod-N) keeps the map stable under future
// shard-set changes: adding a shard moves only ~1/N of the keyspace.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring over n shards with the default virtual-node count.
func NewRing(n int) *Ring {
	if n < 1 {
		panic("router: ring needs at least one shard")
	}
	r := &Ring{shards: n, points: make([]ringPoint, 0, n*defaultVnodes)}
	var key [16]byte
	for s := 0; s < n; s++ {
		binary.LittleEndian.PutUint64(key[:8], uint64(s))
		for v := 0; v < defaultVnodes; v++ {
			binary.LittleEndian.PutUint64(key[8:], uint64(v))
			r.points = append(r.points, ringPoint{hash: hashBytes(key[:]), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Colliding virtual nodes order by shard so the ring is
		// deterministic regardless of construction order.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the number of shards the ring spans.
func (r *Ring) Shards() int { return r.shards }

// locate maps a key hash to its owning shard: the first virtual node at or
// clockwise after the hash, wrapping at the top of the keyspace.
func (r *Ring) locate(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// ShardForID returns the owning shard of a numeric user ID. IDs hash their
// 8-byte little-endian encoding, NOT their decimal spelling, so the map is
// independent of formatting.
func (r *Ring) ShardForID(u sim.UserID) int {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(u))
	return r.locate(hashBytes(b[:]))
}

// ShardForName returns the owning shard of a name-mode user. Names hash
// their raw bytes before any interning: per-shard dense IDs are
// first-appearance order on that shard and mean nothing across shards, so
// the external name is the only stable routing key in name mode.
func (r *Ring) ShardForName(name string) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return r.locate(mix64(h.Sum64()))
}

// hashBytes is 64-bit FNV-1a over b, finalized with mix64. Ring keys are
// highly structured (sequential integers with trailing zero bytes), and
// raw FNV maps those onto a lattice that clusters badly on the ring —
// measured skew was >3× between shards before finalization.
func hashBytes(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return mix64(h.Sum64())
}

// mix64 is the MurmurHash3 64-bit finalizer: a full-avalanche bijection,
// so every input bit flips each output bit with probability ≈1/2.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Describe renders the ring's shard count for logs.
func (r *Ring) Describe() string {
	return fmt.Sprintf("ring(%d shards, %d vnodes)", r.shards, len(r.points))
}
