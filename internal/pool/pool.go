// Package pool provides a small persistent worker pool for data-parallel
// loops over mutually independent shards — the concurrency substrate of the
// parallel ingestion engine. The checkpoint frameworks flatten one action's
// (checkpoint × oracle-shard) fan-out into a single Run call, so the pool
// sits directly on the ingestion hot path: workers stay parked between
// elements, and a steady-state Run performs no heap allocation — run
// descriptors are recycled through a sync.Pool and workers receive a small
// value struct per shard instead of a fresh closure.
package pool

import (
	"runtime"
	"sync"
)

// runState is one Run call's shared descriptor. Workers derive their index
// range from (n, shards, shard index), so submitting a shard costs one
// channel send of a two-word value — no per-shard closure.
type runState struct {
	fn     func(i int)
	n      int
	shards int
	wg     sync.WaitGroup
}

var runStates = sync.Pool{New: func() any { return new(runState) }}

// shardTask is the unit handed to a worker: shard s of the loop described
// by rs.
type shardTask struct {
	rs *runState
	s  int
}

// Pool is a fixed set of persistent worker goroutines that execute parallel
// for-loops submitted through Run. A nil *Pool is valid and runs every loop
// serially on the caller's goroutine, which makes "no pool" the zero-cost
// representation of Parallelism=1.
//
// Run may be called from multiple goroutines, but must not be called from
// inside a function executing on the pool (workers joining on workers can
// deadlock once all workers are occupied).
type Pool struct {
	workers int
	tasks   chan shardTask
	closed  sync.Once
}

// New returns a pool with n persistent workers, or nil — the serial pool —
// when n <= 1 leaves nothing to fan out to. n == 0 selects GOMAXPROCS.
func New(n int) *Pool {
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n <= 1 {
		return nil
	}
	p := &Pool{workers: n, tasks: make(chan shardTask, n)}
	// The submitting goroutine always runs shard 0 itself, so n-1 parked
	// workers saturate n cores.
	for i := 0; i < n-1; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for t := range p.tasks {
		rs := t.rs
		lo, hi := t.s*rs.n/rs.shards, (t.s+1)*rs.n/rs.shards
		for i := lo; i < hi; i++ {
			rs.fn(i)
		}
		rs.wg.Done()
	}
}

// Workers returns the parallel width loops submitted to p run at (1 for the
// nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run executes fn(0) … fn(n-1), partitioned into contiguous shards across
// the pool's workers, and returns when every call has completed. The shard
// executed by the calling goroutine means Run makes progress even if all
// workers are busy with loops submitted by other callers. Calls of fn must
// be safe to run concurrently with each other.
//
// Run itself is allocation-free in steady state provided fn does not
// allocate at the call site (pass a cached func value, not a freshly
// captured closure).
func (p *Pool) Run(n int, fn func(i int)) {
	shards := p.Workers()
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	rs := runStates.Get().(*runState)
	rs.fn, rs.n, rs.shards = fn, n, shards
	rs.wg.Add(shards - 1)
	for s := 1; s < shards; s++ {
		p.tasks <- shardTask{rs: rs, s: s}
	}
	for i := 0; i < n/shards; i++ { // shard 0, on the caller
		fn(i)
	}
	rs.wg.Wait()
	rs.fn = nil // do not retain the caller's func across reuse
	runStates.Put(rs)
}

// Close releases the worker goroutines. Using the pool after Close panics;
// closing a nil or already-closed pool is a no-op.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.closed.Do(func() { close(p.tasks) })
}
