// Package pool provides a small persistent worker pool for data-parallel
// loops over mutually independent shards — the concurrency substrate of the
// parallel ingestion engine. The sieve-style checkpoint oracles maintain
// O(log k / β) candidate instances that never share mutable state, so a
// per-element offer can fan out across cores and join with no algorithmic
// change; the pool keeps the workers parked between elements so the hot
// path pays a channel handoff per shard instead of a goroutine spawn.
package pool

import (
	"runtime"
	"sync"
)

// Pool is a fixed set of persistent worker goroutines that execute parallel
// for-loops submitted through Run. A nil *Pool is valid and runs every loop
// serially on the caller's goroutine, which makes "no pool" the zero-cost
// representation of Parallelism=1.
//
// Run may be called from multiple goroutines, but must not be called from
// inside a function executing on the pool (workers joining on workers can
// deadlock once all workers are occupied).
type Pool struct {
	workers int
	tasks   chan func()
	closed  sync.Once
}

// New returns a pool with n persistent workers, or nil — the serial pool —
// when n <= 1 leaves nothing to fan out to. n == 0 selects GOMAXPROCS.
func New(n int) *Pool {
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n <= 1 {
		return nil
	}
	p := &Pool{workers: n, tasks: make(chan func(), n)}
	// The submitting goroutine always runs shard 0 itself, so n-1 parked
	// workers saturate n cores.
	for i := 0; i < n-1; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for fn := range p.tasks {
		fn()
	}
}

// Workers returns the parallel width loops submitted to p run at (1 for the
// nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Run executes fn(0) … fn(n-1), partitioned into contiguous shards across
// the pool's workers, and returns when every call has completed. The shard
// executed by the calling goroutine means Run makes progress even if all
// workers are busy with loops submitted by other callers. Calls of fn must
// be safe to run concurrently with each other.
func (p *Pool) Run(n int, fn func(i int)) {
	shards := p.Workers()
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(shards - 1)
	for s := 1; s < shards; s++ {
		lo, hi := s*n/shards, (s+1)*n/shards
		p.tasks <- func() {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}
	}
	for i := 0; i < n/shards; i++ { // shard 0, on the caller
		fn(i)
	}
	wg.Wait()
}

// Close releases the worker goroutines. Using the pool after Close panics;
// closing a nil or already-closed pool is a no-op.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.closed.Do(func() { close(p.tasks) })
}
