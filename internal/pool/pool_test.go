package pool

import (
	"sync/atomic"
	"testing"
)

func TestNilPoolRunsSerially(t *testing.T) {
	var p *Pool
	if got := p.Workers(); got != 1 {
		t.Fatalf("nil pool workers = %d, want 1", got)
	}
	order := []int{}
	p.Run(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool order = %v, want 0..4 in order", order)
		}
	}
	p.Close() // must not panic
}

func TestNewSmallWidthIsNil(t *testing.T) {
	if New(1) != nil {
		t.Fatal("New(1) should be the nil (serial) pool")
	}
	if New(-3) != nil {
		t.Fatal("New(<0) should be the nil (serial) pool")
	}
}

func TestRunCoversEveryIndexOnce(t *testing.T) {
	p := New(4)
	defer p.Close()
	for _, n := range []int{0, 1, 2, 3, 4, 5, 17, 100, 1000} {
		counts := make([]int32, n)
		p.Run(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("n=%d: index %d ran %d times", n, i, c)
			}
		}
	}
}

func TestRunParallelSum(t *testing.T) {
	p := New(8)
	defer p.Close()
	const n = 10000
	var sum int64
	p.Run(n, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if want := int64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestRunReusableAcrossCalls(t *testing.T) {
	p := New(3)
	defer p.Close()
	for round := 0; round < 50; round++ {
		var hits int32
		p.Run(7, func(int) { atomic.AddInt32(&hits, 1) })
		if hits != 7 {
			t.Fatalf("round %d: %d hits, want 7", round, hits)
		}
	}
}

// TestRunSteadyStateAllocFree pins the hot-path contract: once the run
// descriptor pool is warm, Run allocates nothing — submissions are value
// sends, not closures. The fn is cached outside the loop, mirroring how the
// checkpoint frameworks call Run.
func TestRunSteadyStateAllocFree(t *testing.T) {
	p := New(4)
	defer p.Close()
	var sink [64]int64
	fn := func(i int) { atomic.AddInt64(&sink[i%64], 1) }
	// Warm the descriptor pool and worker scheduling.
	for i := 0; i < 100; i++ {
		p.Run(64, fn)
	}
	avg := testing.AllocsPerRun(200, func() { p.Run(64, fn) })
	// sync.Pool can miss under GC pressure; allow a small residue rather
	// than flaking, but fail on anything resembling per-shard allocation.
	if avg > 0.5 {
		t.Fatalf("Run allocates %.2f objects per call in steady state, want ~0", avg)
	}
}

func TestCloseIdempotent(t *testing.T) {
	p := New(2)
	p.Close()
	p.Close()
}

func TestWorkersCap(t *testing.T) {
	if got := New(6).Workers(); got != 6 {
		t.Fatalf("Workers = %d, want 6", got)
	}
	if New(0) != nil && New(0).Workers() < 1 {
		t.Fatal("New(0) must select at least one worker")
	}
}
