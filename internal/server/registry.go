package server

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/intern"
	"repro/internal/fault"
	"repro/sim"
)

// ErrClosed is returned by Submit and Query once a tracker (or its whole
// registry) has started draining.
var ErrClosed = errors.New("server: tracker is draining")

// ErrOverloaded is returned by Submit and Query when the ingest queue stays
// full past the enqueue deadline: the tracker is shedding load (HTTP 429)
// instead of wedging its callers behind a slow consumer. The command was
// NOT enqueued; retry after backing off.
var ErrOverloaded = errors.New("server: ingest queue overloaded")

// ErrReadOnly is returned by Submit while a durable tracker is in
// degraded-readonly mode: its WAL (or names log) is poisoned, so ingest
// would lose the durability guarantee. Reads and queries keep answering
// from the published snapshot; ingest resumes automatically once the
// periodic probe re-arms the log (HTTP 503 + Retry-After meanwhile).
var ErrReadOnly = errors.New("server: tracker is read-only (degraded durability)")

// defaultQueueLen is the ingest queue capacity, in commands, when a Spec
// does not set one.
const defaultQueueLen = 256

// DefaultEnqueueDeadline bounds how long Submit/Query wait for space in a
// full ingest queue before shedding with ErrOverloaded, when the Spec does
// not set its own deadline.
const DefaultEnqueueDeadline = 2 * time.Second

// rearmProbeInterval paces the degraded-readonly recovery probe (and is a
// variable so the chaos tests can compress time).
var rearmProbeInterval = 1 * time.Second

// TrackerState is the serving state of one tracker, reported by
// /v1/healthz and /v1/trackers/{name}/metrics.
type TrackerState int32

const (
	// StateOK: fully serving; ingest and reads both available.
	StateOK TrackerState = iota
	// StateDegradedReadOnly: the durable log is poisoned; reads and queries
	// keep answering, ingest sheds with 503 until the disk heals.
	StateDegradedReadOnly
	// StateRecovering: a re-arm probe is in flight (fresh snapshot + log
	// recreation); transitions to ok on success, back to degraded on
	// failure.
	StateRecovering
)

func (s TrackerState) String() string {
	switch s {
	case StateDegradedReadOnly:
		return "degraded-readonly"
	case StateRecovering:
		return "recovering"
	default:
		return "ok"
	}
}

// command is one unit of work for a Tracked's single-writer loop: either an
// ingest batch or a read closure. reply (when non-nil) receives the batch's
// outcome; it must be buffered so the loop never blocks on a caller that
// gave up.
type command struct {
	batch []sim.Action
	query func(*sim.Tracker)
	reply chan outcome
}

// outcome is what the loop reports back for one command: the ingestion
// error and the tracker's processed count at the moment the command was
// applied (so callers see their own batch's effect, not a later one's).
type outcome struct {
	err       error
	processed int64
}

// Tracked is one served tracker: a sim.Tracker owned by a single-writer
// goroutine, fed through a bounded command channel (backpressure: Submit
// blocks while the queue is full), with an atomically published read
// snapshot refreshed after every applied command.
//
// The split mirrors the serve/analyze separation argued for by Polynesia:
// the write path (ingest loop) is strictly serial — sim.Tracker is not safe
// for concurrent use — while reads either consume the immutable published
// Snapshot (no coordination at all) or run as closures on the loop itself
// (Query) when they need state that is not precomputed, such as per-user
// influence sets.
type Tracked struct {
	name    string
	spec    api.Spec
	tr      *sim.Tracker
	in      chan command
	quit    chan struct{} // closed by Close: unblocks pending enqueues
	done    chan struct{} // closed when the loop has drained and exited
	started time.Time

	// names interns external user names to dense IDs on name-mode trackers
	// (Spec.Names); nil otherwise. Handlers intern concurrently (the table
	// locks internally); the ingest loop persists new names to names.log
	// before the WAL batch that references them.
	names *intern.Table

	// dur, when non-nil, makes the tracker durable: the loop appends every
	// batch to a write-ahead log before applying it and periodically
	// snapshots + truncates (see durable.go). Owned by the loop after
	// construction. recovered describes what boot restored.
	dur       *durability
	recovered RecoveryInfo

	// state is the serving state (ok / degraded-readonly / recovering),
	// written by the ingest loop, read by handlers and Submit.
	state atomic.Int32

	// enqueueDeadline bounds the wait for space in a full queue before
	// shedding (ErrOverloaded); < 0 means block until the context expires
	// (the pre-admission-control behavior).
	enqueueDeadline time.Duration
	// shed counts commands rejected by the enqueue deadline; qHighWater is
	// the deepest the queue has been at an enqueue.
	shed       atomic.Int64
	qHighWater atomic.Int64

	mu         sync.Mutex // guards closed
	closed     bool
	submitters sync.WaitGroup // enqueues in flight past the closed check
	closeOnce  sync.Once
	closeErr   error

	snap atomic.Pointer[sim.Snapshot]
	// prev is the last published snapshot whose Processed differed from the
	// current one — the "previous" side of the query layer's window-compare
	// sources. Nil until the first ingest progress after boot.
	prev atomic.Pointer[sim.Snapshot]
}

// newTracked builds the tracker for spec and starts its ingest loop. A
// non-empty dataDir makes the tracker durable: its state is recovered from
// dataDir (snapshot + WAL replay) and every subsequent batch is logged
// before it is applied. A non-empty spillDir attaches the cold tier there
// (see sim.Config.SpillDir); cold segments referenced by the recovered
// snapshot are mapped from it instead of replayed. fs/clock are the
// environment seam (nil = real).
func newTracked(name string, spec api.Spec, dataDir, spillDir string, fs fault.FS, clock fault.Clock) (*Tracked, error) {
	var (
		tr    *sim.Tracker
		dur   *durability
		info  RecoveryInfo
		err   error
		names *intern.Table
	)
	if spec.Names {
		names = intern.New(spec.ExpectedUsers)
	}
	cfg := spec.Config()
	cfg.MemoryBudgetBytes = spec.MemoryBudgetBytes
	if spillDir != "" {
		cfg.SpillDir = spillDir
		if fs != nil {
			cfg.SpillFS = fs
		}
	}
	if dataDir != "" {
		tr, dur, info, err = recoverTracker(fs, clock, dataDir, cfg, spec.SnapshotWALBytes, names)
	} else {
		tr, err = sim.New(cfg)
	}
	if err != nil {
		return nil, err
	}
	// Boot GC: recovery re-adopted exactly the segments the snapshot (plus
	// WAL-replay respills) references; anything else in the spill dir is a
	// stray from a pre-crash spill that never made a snapshot. Runs before
	// the loop starts, so the single-writer rule holds.
	if spillDir != "" {
		if _, gerr := tr.GC(); gerr != nil {
			tr.Close()
			return nil, fmt.Errorf("server: collecting stray cold segments: %w", gerr)
		}
	}
	queue := spec.Queue
	if queue <= 0 {
		queue = defaultQueueLen
	}
	deadline := DefaultEnqueueDeadline
	if spec.EnqueueDeadlineMillis != 0 {
		deadline = time.Duration(spec.EnqueueDeadlineMillis) * time.Millisecond
	}
	t := &Tracked{
		name:            name,
		spec:            spec,
		tr:              tr,
		in:              make(chan command, queue),
		quit:            make(chan struct{}),
		done:            make(chan struct{}),
		started:         time.Now(),
		names:           names,
		dur:             dur,
		recovered:       info,
		enqueueDeadline: deadline,
	}
	t.publish() // queries before the first ingest see the recovered snapshot
	go t.loop()
	return t, nil
}

// Recovery reports what boot restored for a durable tracker; ok is false
// for trackers without durability.
func (t *Tracked) Recovery() (info RecoveryInfo, ok bool) {
	return t.recovered, t.dur != nil
}

// DurabilityError returns the most recent snapshot failure message of a
// durable tracker, or "" when it is healthy (or memory-only). A non-empty
// value means the WAL is growing unbounded and recovery replays lengthen —
// degraded durability, not data loss — and is surfaced by GET /v1/healthz.
func (t *Tracked) DurabilityError() string {
	if t.dur == nil {
		return ""
	}
	return t.dur.snapshotErr()
}

// State returns the tracker's serving state: StateOK, or — for durable
// trackers whose log is poisoned — StateDegradedReadOnly/StateRecovering.
// In the degraded states snapshot reads and queries keep answering; only
// ingest is refused (503 + Retry-After) until the recovery probe re-arms
// the log.
func (t *Tracked) State() TrackerState { return TrackerState(t.state.Load()) }

// Counters returns the tracker's robustness counters: failed snapshot
// attempts (retried with backoff), poisoned-WAL re-arms, requests shed by
// the enqueue deadline, and the ingest queue's high-water depth. Safe from
// any goroutine.
func (t *Tracked) Counters() (snapshotRetries, walRearms, shedRequests, queueHighWater int64) {
	if t.dur != nil {
		snapshotRetries = t.dur.snapRetries.Load()
		walRearms = t.dur.rearms.Load()
	}
	return snapshotRetries, walRearms, t.shed.Load(), t.qHighWater.Load()
}

// Name returns the tracker's registry name.
func (t *Tracked) Name() string { return t.name }

// Spec returns the spec the tracker was built from.
func (t *Tracked) Spec() api.Spec { return t.spec }

// Names returns the tracker's intern table on name-mode trackers
// (Spec.Names), nil otherwise.
func (t *Tracked) Names() *intern.Table { return t.names }

// Started returns when the tracker began serving.
func (t *Tracked) Started() time.Time { return t.started }

// QueueDepth returns the number of commands waiting for the ingest loop and
// the queue's capacity.
func (t *Tracked) QueueDepth() (depth, capacity int) { return len(t.in), cap(t.in) }

// Snapshot returns the most recently published read snapshot. The snapshot
// is immutable and shared; callers must not modify its slices.
func (t *Tracked) Snapshot() *sim.Snapshot { return t.snap.Load() }

// PrevSnapshot returns the snapshot published before the last ingest
// progress (the baseline of the query layer's window-compare sources), or
// nil when nothing has been ingested since boot.
func (t *Tracked) PrevSnapshot() *sim.Snapshot { return t.prev.Load() }

// loop is the single writer: it owns t.tr, applies commands in arrival
// order, and republishes the read snapshot after each one. Durable trackers
// additionally run a periodic recovery probe: while the durable path is
// poisoned (degraded-readonly), each tick attempts a re-arm — fresh
// covering snapshot, WAL recreated empty — so ingest resumes by itself once
// the disk heals. The loop exits when the command channel is closed (by
// Close) after draining everything still queued — the graceful-drain
// guarantee.
func (t *Tracked) loop() {
	defer close(t.done)
	var probeC <-chan time.Time
	if t.dur != nil {
		probe := time.NewTicker(rearmProbeInterval)
		defer probe.Stop()
		probeC = probe.C
	}
	for {
		select {
		case c, ok := <-t.in:
			if !ok {
				// Drained: take a final snapshot so the next boot skips WAL
				// replay entirely. Still on the loop goroutine, so t.tr is
				// safe to serialize.
				if t.dur != nil {
					if t.dur.maybeSnapshot(t.tr, true) {
						t.gcCold()
					}
					t.dur.close()
				}
				return
			}
			t.apply(c)
		case <-probeC:
			t.tryRearm()
		}
	}
}

// apply executes one command on the loop goroutine.
func (t *Tracked) apply(c command) {
	var err error
	switch {
	case c.batch != nil:
		// Durable trackers log the batch (fsync included) before
		// applying it: once the caller sees success, the actions are on
		// disk. A WAL failure rejects the batch unapplied — the
		// in-memory state never runs ahead of the log. Name-mode
		// trackers persist newly interned names first, so every ID a
		// WAL batch references is resolvable on recovery.
		if t.dur != nil && t.dur.poisoned() {
			// Read-only until the probe re-arms the log: accepting the
			// batch would acknowledge an action the poisoned log cannot
			// make durable.
			err = ErrReadOnly
		} else if t.dur != nil {
			if t.names != nil {
				err = t.dur.logNames(t.names)
			}
			if err == nil {
				err = t.dur.logBatch(c.batch)
			}
		}
		if err == nil {
			err = t.tr.ProcessAll(c.batch)
		}
		t.publish()
		if t.dur != nil {
			if t.dur.poisoned() {
				// This batch's failure (or an earlier one's) left junk the
				// rollback could not remove: flip to degraded-readonly; the
				// probe takes it from here.
				t.state.Store(int32(StateDegradedReadOnly))
			} else if t.dur.maybeSnapshot(t.tr, false) {
				// The fresh on-disk snapshot's segment manifest now matches
				// the in-memory extents exactly, so cold segments no longer
				// referenced are unreachable from any recovery — collect them.
				t.gcCold()
			}
		}
	case c.query != nil:
		c.query(t.tr)
		// Queries flush actions buffered by sim batching, which can
		// sharpen the answer; keep the published snapshot in step.
		t.publish()
	}
	if c.reply != nil {
		c.reply <- outcome{err: err, processed: t.snap.Load().Processed}
	}
}

// tryRearm attempts to recover a poisoned durable path, on the loop
// goroutine. The state dance is observable: recovering while the probe
// runs, ok on success, back to degraded-readonly on failure (the probe
// fires again next tick, paced by the snapshot backoff schedule).
func (t *Tracked) tryRearm() {
	if t.dur == nil || !t.dur.poisoned() {
		return
	}
	t.state.Store(int32(StateRecovering))
	if t.dur.rearm(t.tr) {
		t.state.Store(int32(StateOK))
		t.gcCold() // the re-arm snapshot covers the live extents
		return
	}
	t.state.Store(int32(StateDegradedReadOnly))
}

// gcCold collects unreferenced cold segment files after a successful
// snapshot, on the loop goroutine. Failure is benign — the files are
// retried by the next snapshot's GC — so it is logged via the durability
// error channel only implicitly (not at all): a stray file costs disk,
// never correctness.
func (t *Tracked) gcCold() {
	_, _ = t.tr.GC()
}

// publish refreshes the shared read snapshot, rotating the old one into
// prev when ingest progressed — window-compare queries diff the two. Called
// only from the goroutine that owns t.tr (the loop, or newTracked before
// the loop starts).
func (t *Tracked) publish() {
	s := t.tr.Snapshot()
	if old := t.snap.Load(); old != nil && old.Processed != s.Processed {
		t.prev.Store(old)
	}
	t.snap.Store(&s)
}

// enqueue hands c to the loop. A full queue applies backpressure only up
// to the tracker's enqueue deadline; past it the command is shed with
// ErrOverloaded (admission control: a wedged consumer must not wedge HTTP
// handlers too). It fails with ErrClosed once draining has begun and with
// ctx.Err() if the caller's context expires first. A negative deadline
// restores the unbounded-blocking behavior.
func (t *Tracked) enqueue(ctx context.Context, c command) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	t.submitters.Add(1)
	t.mu.Unlock()
	defer t.submitters.Done()
	select {
	case t.in <- c:
		t.noteQueueDepth()
		return nil
	default:
	}
	if t.enqueueDeadline < 0 { // explicit opt-out: block until ctx/close
		select {
		case t.in <- c:
			t.noteQueueDepth()
			return nil
		case <-t.quit:
			return ErrClosed
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	timer := time.NewTimer(t.enqueueDeadline)
	defer timer.Stop()
	select {
	case t.in <- c:
		t.noteQueueDepth()
		return nil
	case <-timer.C:
		t.shed.Add(1)
		return ErrOverloaded
	case <-t.quit:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// noteQueueDepth records the queue's depth after an enqueue in the
// high-water gauge.
func (t *Tracked) noteQueueDepth() {
	depth := int64(len(t.in))
	for {
		hw := t.qHighWater.Load()
		if depth <= hw || t.qHighWater.CompareAndSwap(hw, depth) {
			return
		}
	}
}

// Submit ingests one batch of actions through the single-writer loop and
// waits for the result, returning the tracker's lifetime accepted-action
// count as of the moment this batch was applied (not a later snapshot's).
// Actions are applied in submission order; an error (e.g. a non-monotonic
// ID) aborts the batch at the offending action.
func (t *Tracked) Submit(ctx context.Context, batch []sim.Action) (processed int64, err error) {
	c := command{batch: batch, reply: make(chan outcome, 1)}
	if err := t.enqueue(ctx, c); err != nil {
		return 0, err
	}
	select {
	case out := <-c.reply:
		return out.processed, out.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// SubmitAsync enqueues a batch without waiting for it to be applied; the
// returned error covers enqueueing only, and ingestion errors surface in
// later snapshots' Processed counts rather than to the caller. The bounded
// queue still applies backpressure: SubmitAsync blocks while it is full.
// For embedded producers that want to pipeline ingest ahead of the loop;
// the HTTP and replay paths use the synchronous Submit so errors reach the
// producer.
func (t *Tracked) SubmitAsync(ctx context.Context, batch []sim.Action) error {
	return t.enqueue(ctx, command{batch: batch})
}

// Query runs fn on the tracker from the single-writer loop, after
// everything submitted before it, and waits for completion. fn may call any
// Tracker method but must copy out what it needs; it must not retain the
// *sim.Tracker.
func (t *Tracked) Query(ctx context.Context, fn func(*sim.Tracker)) error {
	c := command{query: fn, reply: make(chan outcome, 1)}
	if err := t.enqueue(ctx, c); err != nil {
		return err
	}
	select {
	case <-c.reply:
		return nil
	case <-ctx.Done():
		// fn may still run later; the caller must discard its results.
		return ctx.Err()
	}
}

// Close drains and stops the tracker: new submissions fail with ErrClosed,
// everything already queued is applied, and only then are the tracker's
// worker goroutines released. Safe to call concurrently and more than
// once: every caller returns only after the full shutdown sequence has
// finished, and all see the same error.
func (t *Tracked) Close() error {
	t.closeOnce.Do(func() {
		t.mu.Lock()
		t.closed = true
		t.mu.Unlock()
		close(t.quit)       // unblock enqueues waiting on a full queue
		t.submitters.Wait() // no enqueue past the closed check is still in flight
		close(t.in)         // loop drains the queue, then exits
		<-t.done
		t.closeErr = t.tr.Close()
	})
	return t.closeErr
}

// Registry is the set of named trackers a server instance owns.
type Registry struct {
	mu        sync.RWMutex
	trackers  map[string]*Tracked
	refused   map[string]string
	dataDir   string
	spillBase string
	fs        fault.FS
	clock     fault.Clock
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{trackers: make(map[string]*Tracked)}
}

// Refuse records that the named tracker was declared but could not be
// served (e.g. its spec combines batch > 1 with durability, which cannot
// guarantee recovery identity). The server keeps running: /v1/healthz
// reports the name and reason under "refused" (status "degraded"), and
// every /v1/trackers/{name}/... request answers 503 with the same reason
// through the standard error contract — one consistent story for probes
// and clients instead of a crash at boot.
func (r *Registry) Refuse(name, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.refused == nil {
		r.refused = make(map[string]string)
	}
	r.refused[name] = reason
}

// RefusedReason returns why the named tracker was refused at startup, if it
// was (see Refuse).
func (r *Registry) RefusedReason(name string) (string, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	reason, ok := r.refused[name]
	return reason, ok
}

// Refused returns a copy of the refused-tracker map (name → reason), nil
// when nothing was refused.
func (r *Registry) Refused() map[string]string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.refused) == 0 {
		return nil
	}
	out := make(map[string]string, len(r.refused))
	for n, reason := range r.refused {
		out[n] = reason
	}
	return out
}

// SetFS routes all durable-path filesystem access of trackers added
// afterwards through fs — the fault-injection seam. Call before Add; nil
// (the default) means the real filesystem.
func (r *Registry) SetFS(fs fault.FS) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fs = fs
}

// SetClock overrides the time source of trackers added afterwards (backoff
// schedules); nil means the wall clock. Call before Add.
func (r *Registry) SetClock(c fault.Clock) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock = c
}

// SetDataDir enables durability for trackers added afterwards: each gets
// <dir>/<name>/ holding its snapshot and write-ahead log (see durable.go),
// is recovered from it on Add and persists every applied batch. Call before
// Add; an empty dir (the default) keeps trackers memory-only.
func (r *Registry) SetDataDir(dir string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dataDir = dir
}

// DataDir returns the durability root, or "" when trackers are memory-only.
func (r *Registry) DataDir() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dataDir
}

// SetSpillDir sets the cold-tier root for trackers added afterwards: each
// gets <dir>/<name>/ for its spilled segment files. Without it, durable
// trackers spill under <data dir>/<name>/spill and memory-only trackers
// cannot take a memory budget. Call before Add.
func (r *Registry) SetSpillDir(dir string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spillBase = dir
}

// Add builds the tracker described by spec, registers it under name and
// starts its ingest loop. On a durable registry (SetDataDir) the tracker
// first recovers its state from disk.
func (r *Registry) Add(name string, spec api.Spec) (*Tracked, error) {
	if name == "" {
		return nil, errors.New("server: tracker name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.trackers[name]; ok {
		return nil, fmt.Errorf("server: tracker %q already exists", name)
	}
	dir, spillDir := "", ""
	if r.dataDir != "" || r.spillBase != "" {
		// The name becomes a directory component; keep it one.
		if strings.ContainsAny(name, `/\`) || name == "." || name == ".." {
			return nil, fmt.Errorf("server: tracker name %q is not usable as a data directory", name)
		}
	}
	if r.dataDir != "" {
		dir = filepath.Join(r.dataDir, name)
	}
	switch {
	case r.spillBase != "":
		spillDir = filepath.Join(r.spillBase, name)
	case dir != "":
		// Durable trackers always get a cold tier next to their WAL: even
		// without a budget it is what re-adopts cold segments referenced by
		// a snapshot taken under one (the budget is a runtime knob).
		spillDir = filepath.Join(dir, "spill")
	}
	t, err := newTracked(name, spec, dir, spillDir, r.fs, r.clock)
	if err != nil {
		return nil, fmt.Errorf("server: tracker %q: %w", name, err)
	}
	r.trackers[name] = t
	return t, nil
}

// Get returns the named tracker.
func (r *Registry) Get(name string) (*Tracked, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.trackers[name]
	return t, ok
}

// Names returns the registered tracker names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.names()
}

// Close drains and stops every tracker, returning the first error.
func (r *Registry) Close() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var first error
	for _, n := range r.names() {
		if err := r.trackers[n].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// names returns sorted names; callers hold r.mu.
func (r *Registry) names() []string {
	names := make([]string, 0, len(r.trackers))
	for n := range r.trackers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
