package server

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/api"
	"repro/intern"
	"repro/sim"
)

// ErrClosed is returned by Submit and Query once a tracker (or its whole
// registry) has started draining.
var ErrClosed = errors.New("server: tracker is draining")

// defaultQueueLen is the ingest queue capacity, in commands, when a Spec
// does not set one.
const defaultQueueLen = 256

// command is one unit of work for a Tracked's single-writer loop: either an
// ingest batch or a read closure. reply (when non-nil) receives the batch's
// outcome; it must be buffered so the loop never blocks on a caller that
// gave up.
type command struct {
	batch []sim.Action
	query func(*sim.Tracker)
	reply chan outcome
}

// outcome is what the loop reports back for one command: the ingestion
// error and the tracker's processed count at the moment the command was
// applied (so callers see their own batch's effect, not a later one's).
type outcome struct {
	err       error
	processed int64
}

// Tracked is one served tracker: a sim.Tracker owned by a single-writer
// goroutine, fed through a bounded command channel (backpressure: Submit
// blocks while the queue is full), with an atomically published read
// snapshot refreshed after every applied command.
//
// The split mirrors the serve/analyze separation argued for by Polynesia:
// the write path (ingest loop) is strictly serial — sim.Tracker is not safe
// for concurrent use — while reads either consume the immutable published
// Snapshot (no coordination at all) or run as closures on the loop itself
// (Query) when they need state that is not precomputed, such as per-user
// influence sets.
type Tracked struct {
	name    string
	spec    api.Spec
	tr      *sim.Tracker
	in      chan command
	quit    chan struct{} // closed by Close: unblocks pending enqueues
	done    chan struct{} // closed when the loop has drained and exited
	started time.Time

	// names interns external user names to dense IDs on name-mode trackers
	// (Spec.Names); nil otherwise. Handlers intern concurrently (the table
	// locks internally); the ingest loop persists new names to names.log
	// before the WAL batch that references them.
	names *intern.Table

	// dur, when non-nil, makes the tracker durable: the loop appends every
	// batch to a write-ahead log before applying it and periodically
	// snapshots + truncates (see durable.go). Owned by the loop after
	// construction. recovered describes what boot restored.
	dur       *durability
	recovered RecoveryInfo

	mu         sync.Mutex // guards closed
	closed     bool
	submitters sync.WaitGroup // enqueues in flight past the closed check
	closeOnce  sync.Once
	closeErr   error

	snap atomic.Pointer[sim.Snapshot]
	// prev is the last published snapshot whose Processed differed from the
	// current one — the "previous" side of the query layer's window-compare
	// sources. Nil until the first ingest progress after boot.
	prev atomic.Pointer[sim.Snapshot]
}

// newTracked builds the tracker for spec and starts its ingest loop. A
// non-empty dataDir makes the tracker durable: its state is recovered from
// dataDir (snapshot + WAL replay) and every subsequent batch is logged
// before it is applied.
func newTracked(name string, spec api.Spec, dataDir string) (*Tracked, error) {
	var (
		tr    *sim.Tracker
		dur   *durability
		info  RecoveryInfo
		err   error
		names *intern.Table
	)
	if spec.Names {
		names = intern.New(spec.ExpectedUsers)
	}
	if dataDir != "" {
		tr, dur, info, err = recoverTracker(dataDir, spec.Config(), spec.SnapshotWALBytes, names)
	} else {
		tr, err = sim.New(spec.Config())
	}
	if err != nil {
		return nil, err
	}
	queue := spec.Queue
	if queue <= 0 {
		queue = defaultQueueLen
	}
	t := &Tracked{
		name:      name,
		spec:      spec,
		tr:        tr,
		in:        make(chan command, queue),
		quit:      make(chan struct{}),
		done:      make(chan struct{}),
		started:   time.Now(),
		names:     names,
		dur:       dur,
		recovered: info,
	}
	t.publish() // queries before the first ingest see the recovered snapshot
	go t.loop()
	return t, nil
}

// Recovery reports what boot restored for a durable tracker; ok is false
// for trackers without durability.
func (t *Tracked) Recovery() (info RecoveryInfo, ok bool) {
	return t.recovered, t.dur != nil
}

// DurabilityError returns the most recent snapshot failure message of a
// durable tracker, or "" when it is healthy (or memory-only). A non-empty
// value means the WAL is growing unbounded and recovery replays lengthen —
// degraded durability, not data loss — and is surfaced by GET /v1/healthz.
func (t *Tracked) DurabilityError() string {
	if t.dur == nil {
		return ""
	}
	return t.dur.snapshotErr()
}

// Name returns the tracker's registry name.
func (t *Tracked) Name() string { return t.name }

// Spec returns the spec the tracker was built from.
func (t *Tracked) Spec() api.Spec { return t.spec }

// Names returns the tracker's intern table on name-mode trackers
// (Spec.Names), nil otherwise.
func (t *Tracked) Names() *intern.Table { return t.names }

// Started returns when the tracker began serving.
func (t *Tracked) Started() time.Time { return t.started }

// QueueDepth returns the number of commands waiting for the ingest loop and
// the queue's capacity.
func (t *Tracked) QueueDepth() (depth, capacity int) { return len(t.in), cap(t.in) }

// Snapshot returns the most recently published read snapshot. The snapshot
// is immutable and shared; callers must not modify its slices.
func (t *Tracked) Snapshot() *sim.Snapshot { return t.snap.Load() }

// PrevSnapshot returns the snapshot published before the last ingest
// progress (the baseline of the query layer's window-compare sources), or
// nil when nothing has been ingested since boot.
func (t *Tracked) PrevSnapshot() *sim.Snapshot { return t.prev.Load() }

// loop is the single writer: it owns t.tr, applies commands in arrival
// order, and republishes the read snapshot after each one. It exits when
// the command channel is closed (by Close) after draining everything still
// queued — the graceful-drain guarantee.
func (t *Tracked) loop() {
	defer close(t.done)
	for c := range t.in {
		var err error
		switch {
		case c.batch != nil:
			// Durable trackers log the batch (fsync included) before
			// applying it: once the caller sees success, the actions are on
			// disk. A WAL failure rejects the batch unapplied — the
			// in-memory state never runs ahead of the log. Name-mode
			// trackers persist newly interned names first, so every ID a
			// WAL batch references is resolvable on recovery.
			if t.dur != nil {
				if t.names != nil {
					err = t.dur.logNames(t.names)
				}
				if err == nil {
					err = t.dur.logBatch(c.batch)
				}
			}
			if err == nil {
				err = t.tr.ProcessAll(c.batch)
			}
			t.publish()
			if t.dur != nil {
				t.dur.maybeSnapshot(t.tr, false)
			}
		case c.query != nil:
			c.query(t.tr)
			// Queries flush actions buffered by sim batching, which can
			// sharpen the answer; keep the published snapshot in step.
			t.publish()
		}
		if c.reply != nil {
			c.reply <- outcome{err: err, processed: t.snap.Load().Processed}
		}
	}
	// Drained: take a final snapshot so the next boot skips WAL replay
	// entirely. Still on the loop goroutine, so t.tr is safe to serialize.
	if t.dur != nil {
		t.dur.maybeSnapshot(t.tr, true)
		t.dur.close()
	}
}

// publish refreshes the shared read snapshot, rotating the old one into
// prev when ingest progressed — window-compare queries diff the two. Called
// only from the goroutine that owns t.tr (the loop, or newTracked before
// the loop starts).
func (t *Tracked) publish() {
	s := t.tr.Snapshot()
	if old := t.snap.Load(); old != nil && old.Processed != s.Processed {
		t.prev.Store(old)
	}
	t.snap.Store(&s)
}

// enqueue hands c to the loop, blocking while the queue is full (this is
// the ingest backpressure). It fails with ErrClosed once draining has
// begun and with ctx.Err() if the caller's context expires first.
func (t *Tracked) enqueue(ctx context.Context, c command) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return ErrClosed
	}
	t.submitters.Add(1)
	t.mu.Unlock()
	defer t.submitters.Done()
	select {
	case t.in <- c:
		return nil
	case <-t.quit:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit ingests one batch of actions through the single-writer loop and
// waits for the result, returning the tracker's lifetime accepted-action
// count as of the moment this batch was applied (not a later snapshot's).
// Actions are applied in submission order; an error (e.g. a non-monotonic
// ID) aborts the batch at the offending action.
func (t *Tracked) Submit(ctx context.Context, batch []sim.Action) (processed int64, err error) {
	c := command{batch: batch, reply: make(chan outcome, 1)}
	if err := t.enqueue(ctx, c); err != nil {
		return 0, err
	}
	select {
	case out := <-c.reply:
		return out.processed, out.err
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// SubmitAsync enqueues a batch without waiting for it to be applied; the
// returned error covers enqueueing only, and ingestion errors surface in
// later snapshots' Processed counts rather than to the caller. The bounded
// queue still applies backpressure: SubmitAsync blocks while it is full.
// For embedded producers that want to pipeline ingest ahead of the loop;
// the HTTP and replay paths use the synchronous Submit so errors reach the
// producer.
func (t *Tracked) SubmitAsync(ctx context.Context, batch []sim.Action) error {
	return t.enqueue(ctx, command{batch: batch})
}

// Query runs fn on the tracker from the single-writer loop, after
// everything submitted before it, and waits for completion. fn may call any
// Tracker method but must copy out what it needs; it must not retain the
// *sim.Tracker.
func (t *Tracked) Query(ctx context.Context, fn func(*sim.Tracker)) error {
	c := command{query: fn, reply: make(chan outcome, 1)}
	if err := t.enqueue(ctx, c); err != nil {
		return err
	}
	select {
	case <-c.reply:
		return nil
	case <-ctx.Done():
		// fn may still run later; the caller must discard its results.
		return ctx.Err()
	}
}

// Close drains and stops the tracker: new submissions fail with ErrClosed,
// everything already queued is applied, and only then are the tracker's
// worker goroutines released. Safe to call concurrently and more than
// once: every caller returns only after the full shutdown sequence has
// finished, and all see the same error.
func (t *Tracked) Close() error {
	t.closeOnce.Do(func() {
		t.mu.Lock()
		t.closed = true
		t.mu.Unlock()
		close(t.quit)       // unblock enqueues waiting on a full queue
		t.submitters.Wait() // no enqueue past the closed check is still in flight
		close(t.in)         // loop drains the queue, then exits
		<-t.done
		t.closeErr = t.tr.Close()
	})
	return t.closeErr
}

// Registry is the set of named trackers a server instance owns.
type Registry struct {
	mu       sync.RWMutex
	trackers map[string]*Tracked
	dataDir  string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{trackers: make(map[string]*Tracked)}
}

// SetDataDir enables durability for trackers added afterwards: each gets
// <dir>/<name>/ holding its snapshot and write-ahead log (see durable.go),
// is recovered from it on Add and persists every applied batch. Call before
// Add; an empty dir (the default) keeps trackers memory-only.
func (r *Registry) SetDataDir(dir string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dataDir = dir
}

// DataDir returns the durability root, or "" when trackers are memory-only.
func (r *Registry) DataDir() string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dataDir
}

// Add builds the tracker described by spec, registers it under name and
// starts its ingest loop. On a durable registry (SetDataDir) the tracker
// first recovers its state from disk.
func (r *Registry) Add(name string, spec api.Spec) (*Tracked, error) {
	if name == "" {
		return nil, errors.New("server: tracker name must not be empty")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.trackers[name]; ok {
		return nil, fmt.Errorf("server: tracker %q already exists", name)
	}
	dir := ""
	if r.dataDir != "" {
		// The name becomes a directory component; keep it one.
		if strings.ContainsAny(name, `/\`) || name == "." || name == ".." {
			return nil, fmt.Errorf("server: tracker name %q is not usable as a data directory", name)
		}
		dir = filepath.Join(r.dataDir, name)
	}
	t, err := newTracked(name, spec, dir)
	if err != nil {
		return nil, fmt.Errorf("server: tracker %q: %w", name, err)
	}
	r.trackers[name] = t
	return t, nil
}

// Get returns the named tracker.
func (r *Registry) Get(name string) (*Tracked, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.trackers[name]
	return t, ok
}

// Names returns the registered tracker names in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.names()
}

// Close drains and stops every tracker, returning the first error.
func (r *Registry) Close() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var first error
	for _, n := range r.names() {
		if err := r.trackers[n].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// names returns sorted names; callers hold r.mu.
func (r *Registry) names() []string {
	names := make([]string, 0, len(r.trackers))
	for n := range r.trackers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
