package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"repro/api"
	"repro/internal/fault"
	"repro/internal/gen"
	"repro/sim"
)

// durableSpec is a small tracker configuration shared by the tests.
var durableSpec = api.Spec{K: 5, Window: 1500, Slide: 10}

// durableStream generates a deterministic action stream.
func durableStream(n int) []sim.Action {
	cfg := gen.SynO(400, n, 1000, 42)
	return gen.Stream(cfg)
}

// submitChunks feeds actions through the Tracked in fixed-size batches.
func submitChunks(t *testing.T, tr *Tracked, actions []sim.Action, chunk int) {
	t.Helper()
	for len(actions) > 0 {
		n := min(chunk, len(actions))
		if _, err := tr.Submit(context.Background(), actions[:n]); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		actions = actions[n:]
	}
}

// serialReference replays actions through a bare sim.Tracker.
func serialReference(t *testing.T, actions []sim.Action) sim.Snapshot {
	t.Helper()
	tr, err := sim.New(durableSpec.Config())
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.ProcessAll(actions); err != nil {
		t.Fatal(err)
	}
	return tr.Snapshot()
}

// checkAnswer compares the served snapshot's answer to the reference.
func checkAnswer(t *testing.T, label string, got *sim.Snapshot, want sim.Snapshot) {
	t.Helper()
	if got.Processed != want.Processed {
		t.Fatalf("%s: processed = %d, want %d", label, got.Processed, want.Processed)
	}
	if got.Value != want.Value {
		t.Fatalf("%s: value = %v, want %v", label, got.Value, want.Value)
	}
	if !reflect.DeepEqual(got.Seeds, want.Seeds) {
		t.Fatalf("%s: seeds = %v, want %v", label, got.Seeds, want.Seeds)
	}
	if !reflect.DeepEqual(got.CheckpointStarts, want.CheckpointStarts) {
		t.Fatalf("%s: checkpoint starts = %v, want %v", label, got.CheckpointStarts, want.CheckpointStarts)
	}
}

// TestDurableGracefulRestart round-trips through the graceful path: Close
// takes a final snapshot, and a new registry over the same data dir comes
// back with identical state (and an empty WAL to replay).
func TestDurableGracefulRestart(t *testing.T) {
	dir := t.TempDir()
	actions := durableStream(2000)

	reg := NewRegistry()
	reg.SetDataDir(dir)
	tr, err := reg.Add("t", durableSpec)
	if err != nil {
		t.Fatal(err)
	}
	submitChunks(t, tr, actions, 128)
	if err := reg.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reg2 := NewRegistry()
	reg2.SetDataDir(dir)
	tr2, err := reg2.Add("t", durableSpec)
	if err != nil {
		t.Fatalf("recovery Add: %v", err)
	}
	defer reg2.Close()
	info, durable := tr2.Recovery()
	if !durable || !info.SnapshotLoaded {
		t.Fatalf("expected snapshot-backed recovery, got %+v (durable=%v)", info, durable)
	}
	if info.WALBatches != 0 {
		t.Fatalf("graceful shutdown left %d WAL batches", info.WALBatches)
	}
	checkAnswer(t, "recovered", tr2.Snapshot(), serialReference(t, actions))
}

// TestDurableCrashRecovery simulates kill -9: the data directory is copied
// while the tracker is live (snapshots and WAL are fsynced, so the copy is
// what a crash would leave) and a fresh registry recovers from the copy.
// The recovered answer must match an uninterrupted serial replay, both with
// and without a mid-life snapshot in the mix.
func TestDurableCrashRecovery(t *testing.T) {
	actions := durableStream(2400)
	for _, walLimit := range []int64{0, 2048} { // 0: WAL-only; 2048: snapshot + WAL tail
		t.Run(fmt.Sprintf("walLimit=%d", walLimit), func(t *testing.T) {
			dir := t.TempDir()
			spec := durableSpec
			spec.SnapshotWALBytes = walLimit

			reg := NewRegistry()
			reg.SetDataDir(dir)
			tr, err := reg.Add("t", spec)
			if err != nil {
				t.Fatal(err)
			}
			submitChunks(t, tr, actions, 100)

			// "Crash": copy the synced files out from under the live server.
			crashDir := t.TempDir()
			copyTree(t, filepath.Join(dir, "t"), filepath.Join(crashDir, "t"))
			if walLimit > 0 {
				if _, err := os.Stat(filepath.Join(crashDir, "t", snapshotFileName)); err != nil {
					t.Fatalf("expected a mid-life snapshot to exist: %v", err)
				}
			}
			if err := reg.Close(); err != nil {
				t.Fatal(err)
			}

			reg2 := NewRegistry()
			reg2.SetDataDir(crashDir)
			tr2, err := reg2.Add("t", spec)
			if err != nil {
				t.Fatalf("crash recovery Add: %v", err)
			}
			defer reg2.Close()
			info, _ := tr2.Recovery()
			if walLimit > 0 && !info.SnapshotLoaded {
				t.Fatalf("expected snapshot-backed recovery, got %+v", info)
			}
			if walLimit == 0 && info.WALBatches == 0 {
				t.Fatalf("expected WAL replay, got %+v", info)
			}
			checkAnswer(t, "crash-recovered", tr2.Snapshot(), serialReference(t, actions))

			// The recovered tracker keeps serving: ingest more on top.
			more := durableStream(3000)[2400:]
			submitChunks(t, tr2, more, 100)
			checkAnswer(t, "post-recovery ingest", tr2.Snapshot(), serialReference(t, durableStream(3000)))
		})
	}
}

// TestDurableTornWALTail appends garbage to the WAL (a torn final write)
// and asserts recovery stops cleanly at the tear instead of failing.
func TestDurableTornWALTail(t *testing.T) {
	dir := t.TempDir()
	actions := durableStream(1000)

	reg := NewRegistry()
	reg.SetDataDir(dir)
	tr, err := reg.Add("t", durableSpec)
	if err != nil {
		t.Fatal(err)
	}
	submitChunks(t, tr, actions, 250)
	crashDir := t.TempDir()
	copyTree(t, filepath.Join(dir, "t"), filepath.Join(crashDir, "t"))
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: a record header claiming more bytes than exist.
	walPath := filepath.Join(crashDir, "t", walFileName)
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{walRecordTag, 0xff, 0x07, 'x', 'y'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	reg2 := NewRegistry()
	reg2.SetDataDir(crashDir)
	tr2, err := reg2.Add("t", durableSpec)
	if err != nil {
		t.Fatalf("recovery with torn WAL tail: %v", err)
	}
	defer reg2.Close()
	checkAnswer(t, "torn-tail recovery", tr2.Snapshot(), serialReference(t, actions))
}

// TestDurableConflictBatchReplay pins that a live stream-order rejection
// (prefix applied, batch aborted) recovers to the identical state: the WAL
// preserves batch boundaries and replay tolerates the same rejection.
func TestDurableConflictBatchReplay(t *testing.T) {
	dir := t.TempDir()
	actions := durableStream(600)

	reg := NewRegistry()
	reg.SetDataDir(dir)
	tr, err := reg.Add("t", durableSpec)
	if err != nil {
		t.Fatal(err)
	}
	submitChunks(t, tr, actions[:400], 100)
	// A bad batch: valid prefix, then an ID that rewinds.
	bad := append(append([]sim.Action{}, actions[400:420]...), sim.Action{ID: 3, User: 1, Parent: sim.NoParent})
	if _, err := tr.Submit(context.Background(), bad); err == nil {
		t.Fatal("non-monotonic batch accepted")
	}
	live := tr.Snapshot()

	crashDir := t.TempDir()
	copyTree(t, filepath.Join(dir, "t"), filepath.Join(crashDir, "t"))
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry()
	reg2.SetDataDir(crashDir)
	tr2, err := reg2.Add("t", durableSpec)
	if err != nil {
		t.Fatalf("recovery Add: %v", err)
	}
	defer reg2.Close()
	checkAnswer(t, "conflict replay", tr2.Snapshot(), *live)
}

// TestDurableTrackerNameValidation rejects names that cannot be directory
// components on a durable registry.
func TestDurableTrackerNameValidation(t *testing.T) {
	reg := NewRegistry()
	reg.SetDataDir(t.TempDir())
	for _, name := range []string{"a/b", `a\b`, ".", ".."} {
		if _, err := reg.Add(name, durableSpec); err == nil {
			t.Errorf("durable registry accepted tracker name %q", name)
		}
	}
}

// TestDurableConflictBatchAfterSnapshot: a conflict batch ends on a LOW id
// (the rewinding offender) while its applied prefix lies beyond the last
// snapshot. Replay coverage must therefore be judged by the batch's max ID
// — judging by its final element skips the record and loses the
// acknowledged prefix.
func TestDurableConflictBatchAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	actions := durableStream(600)

	// Phase 1: ingest a prefix and close gracefully — the forced final
	// snapshot now covers it and the WAL is empty.
	reg := NewRegistry()
	reg.SetDataDir(dir)
	tr, err := reg.Add("t", durableSpec)
	if err != nil {
		t.Fatal(err)
	}
	submitChunks(t, tr, actions[:400], 100)
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: the conflict batch [401..420, rewind] — prefix applied, 409,
	// record in the WAL, no snapshot taken. Crash before any.
	reg = NewRegistry()
	reg.SetDataDir(dir)
	if tr, err = reg.Add("t", durableSpec); err != nil {
		t.Fatal(err)
	}
	bad := append(append([]sim.Action{}, actions[400:420]...), sim.Action{ID: 3, User: 1, Parent: sim.NoParent})
	if _, err := tr.Submit(context.Background(), bad); err == nil {
		t.Fatal("non-monotonic batch accepted")
	}
	live := tr.Snapshot()
	if live.Processed != 420 {
		t.Fatalf("live processed = %d, want 420 (applied prefix)", live.Processed)
	}

	crashDir := t.TempDir()
	copyTree(t, filepath.Join(dir, "t"), filepath.Join(crashDir, "t"))
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry()
	reg2.SetDataDir(crashDir)
	tr2, err := reg2.Add("t", durableSpec)
	if err != nil {
		t.Fatalf("recovery Add: %v", err)
	}
	defer reg2.Close()
	checkAnswer(t, "conflict batch after snapshot", tr2.Snapshot(), *live)
}

// TestDataDirLock: a second process (here: a second recovery) pointed at a
// live tracker's data dir must fail fast instead of interleaving WAL
// appends, and the lock must be released by a graceful Close.
func TestDataDirLock(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("flock is advisory-unix only")
	}
	dir := t.TempDir()
	reg := NewRegistry()
	reg.SetDataDir(dir)
	if _, err := reg.Add("default", durableSpec); err != nil {
		t.Fatal(err)
	}
	if tr, _, _, err := recoverTracker(nil, nil, filepath.Join(dir, "default"), durableSpec.Config(), 0, nil); err == nil {
		tr.Close()
		t.Fatal("second recovery of a locked data dir succeeded")
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	tr, d, _, err := recoverTracker(nil, nil, filepath.Join(dir, "default"), durableSpec.Config(), 0, nil)
	if err != nil {
		t.Fatalf("recovery after Close: %v", err)
	}
	d.close()
	tr.Close()
}

// TestWALRollbackPoison: an append whose rollback also fails must poison
// the log — acknowledging records appended after leftover junk would
// strand them behind what replay treats as the torn tail.
func TestWALRollbackPoison(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(fault.OS(), path)
	if err != nil {
		t.Fatal(err)
	}
	good := []sim.Action{{ID: 1, User: 2, Parent: -1}}
	if err := w.append(good); err != nil {
		t.Fatal(err)
	}
	// Close the fd out from under the wal: the next append's write fails,
	// and so does the rollback truncate.
	w.f.Close()
	if err := w.append(good); err == nil {
		t.Fatal("append on a closed file succeeded")
	}
	if w.broken == nil {
		t.Fatal("failed rollback did not poison the WAL")
	}
	if err := w.append(good); err == nil || !strings.Contains(err.Error(), "unusable") {
		t.Fatalf("poisoned WAL accepted an append (err = %v)", err)
	}
	// The record synced before the failure is still replayable.
	batches, actions, err := replayWAL(fault.OS(), path, func([]sim.Action) error { return nil })
	if err != nil || batches != 1 || actions != 1 {
		t.Fatalf("replay after poison: batches=%d actions=%d err=%v", batches, actions, err)
	}
}

// TestHealthDegradedOnSnapshotFailure: a durable tracker whose snapshot
// writes fail must flip /v1/healthz to "degraded" with the failure message,
// and recover to "ok" once snapshots succeed again.
func TestHealthDegradedOnSnapshotFailure(t *testing.T) {
	reg := NewRegistry()
	reg.SetDataDir(t.TempDir())
	tr, err := reg.Add("default", durableSpec)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	srv := httptest.NewServer(New(reg))
	defer srv.Close()

	health := func() api.HealthResponse {
		resp, err := http.Get(srv.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h api.HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	if h := health(); h.Status != "ok" || !h.Durable || len(h.Degraded) != 0 {
		t.Fatalf("healthy probe: %+v", h)
	}
	tr.dur.snapErr.Store("server: snapshot: disk full")
	if h := health(); h.Status != "degraded" || h.Degraded["default"] == "" {
		t.Fatalf("degraded probe: %+v", h)
	}
	tr.dur.snapErr.Store("")
	if h := health(); h.Status != "ok" || len(h.Degraded) != 0 {
		t.Fatalf("recovered probe: %+v", h)
	}
}

// copyTree copies a small directory tree of regular files (recursing into
// subdirectories, e.g. a durable tracker's spill/ directory).
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			copyTree(t, filepath.Join(src, e.Name()), filepath.Join(dst, e.Name()))
			continue
		}
		b, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
