//go:build unix

package server

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"

	"repro/internal/fault"
)

// lockDataDir takes an exclusive, non-blocking advisory flock on
// dir/.lock. Two simserve processes pointed at the same data directory
// (a deploy overlap, a copy-pasted unit file) would otherwise interleave
// WAL appends through their O_APPEND handles and race snapshot renames —
// the second process must fail fast instead. The lock lives as long as
// the returned file handle (released automatically by the kernel if the
// process dies, so a kill -9 never leaves a stale lock). The open goes
// through the fault.FS seam; the flock itself acts on the real descriptor.
func lockDataDir(fs fault.FS, dir string) (fault.File, error) {
	path := filepath.Join(dir, lockFileName)
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: opening data-dir lock: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("server: data dir %s is in use by another process (flock: %w)", dir, err)
	}
	return f, nil
}
