package server

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/sim"
)

// Spec is the JSON/flag-configurable description of one served tracker: the
// sim.Config knobs plus serving-only settings. The zero value of every
// optional field means "sim's default".
type Spec struct {
	// K and Window are sim.Config.K and sim.Config.WindowSize; mandatory.
	K      int `json:"k"`
	Window int `json:"window"`
	// Slide, Beta, Framework ("sic"/"ic"), Oracle ("sieve", "threshold",
	// "blogwatch", "mkc"), TimeBased, Parallelism, Batch and ExpectedUsers
	// map onto the sim.Config fields of the same meaning.
	Slide         int           `json:"slide,omitempty"`
	Beta          float64       `json:"beta,omitempty"`
	Framework     sim.Framework `json:"framework,omitempty"`
	Oracle        sim.Oracle    `json:"oracle,omitempty"`
	TimeBased     bool          `json:"time_based,omitempty"`
	Parallelism   int           `json:"parallelism,omitempty"`
	Batch         int           `json:"batch,omitempty"`
	ExpectedUsers int           `json:"expected_users,omitempty"`
	// Queue is the ingest queue capacity in commands (batches), the bound
	// behind the Submit backpressure. 0 means the server default (256).
	Queue int `json:"queue,omitempty"`
	// SnapshotWALBytes is the write-ahead-log size that triggers a
	// snapshot+truncate on a durable registry (one with a data dir). 0
	// means the server default (4 MiB). Ignored without durability.
	SnapshotWALBytes int64 `json:"snapshot_wal_bytes,omitempty"`
}

// Config converts the spec to the sim.Config it describes.
func (s Spec) Config() sim.Config {
	return sim.Config{
		K:             s.K,
		WindowSize:    s.Window,
		Slide:         s.Slide,
		Beta:          s.Beta,
		Framework:     s.Framework,
		Oracle:        s.Oracle,
		TimeBased:     s.TimeBased,
		Parallelism:   s.Parallelism,
		BatchSize:     s.Batch,
		ExpectedUsers: s.ExpectedUsers,
	}
}

// specFile is the on-disk shape of a multi-tracker spec:
//
//	{"trackers": {"default": {"k": 10, "window": 50000, "oracle": "sieve"}}}
type specFile struct {
	Trackers map[string]Spec `json:"trackers"`
}

// ReadSpecs parses a tracker spec document (see specFile) and returns the
// named specs. Unknown fields are rejected so typos fail loudly at startup.
func ReadSpecs(r io.Reader) (map[string]Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f specFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("server: parsing tracker specs: %w", err)
	}
	if len(f.Trackers) == 0 {
		return nil, fmt.Errorf("server: spec declares no trackers")
	}
	return f.Trackers, nil
}

// Wire types of the HTTP API. Every response body is one of these structs
// (or sim.Snapshot / sim.Stats, which marshal by name).

// IngestResponse answers POST /v1/trackers/{name}/actions.
type IngestResponse struct {
	// Accepted is the number of actions in the request body.
	Accepted int `json:"accepted"`
	// Processed is the tracker's lifetime accepted-action count after this
	// batch was applied.
	Processed int64 `json:"processed"`
}

// SeedsResponse answers GET /v1/trackers/{name}/seeds.
type SeedsResponse struct {
	Seeds       []sim.UserID `json:"seeds"`
	Value       float64      `json:"value"`
	WindowStart sim.ActionID `json:"window_start"`
	Processed   int64        `json:"processed"`
}

// ValueResponse answers GET /v1/trackers/{name}/value.
type ValueResponse struct {
	Value     float64 `json:"value"`
	Processed int64   `json:"processed"`
}

// WindowResponse answers GET /v1/trackers/{name}/window.
type WindowResponse struct {
	WindowStart sim.ActionID `json:"window_start"`
	Processed   int64        `json:"processed"`
}

// CheckpointsResponse answers GET /v1/trackers/{name}/checkpoints: the live
// checkpoints' start IDs and oracle values in ascending start order.
type CheckpointsResponse struct {
	Checkpoints int            `json:"checkpoints"`
	Starts      []sim.ActionID `json:"starts"`
	Values      []float64      `json:"values"`
}

// InfluenceResponse answers GET /v1/trackers/{name}/influence?user=U: the
// users U currently influences within the window (Definition 1).
type InfluenceResponse struct {
	User        sim.UserID   `json:"user"`
	Influenced  []sim.UserID `json:"influenced"`
	Count       int          `json:"count"`
	WindowStart sim.ActionID `json:"window_start"`
}

// TrackerInfo is one entry of ListResponse.
type TrackerInfo struct {
	Name      string `json:"name"`
	Spec      Spec   `json:"spec"`
	Processed int64  `json:"processed"`
}

// ListResponse answers GET /v1/trackers.
type ListResponse struct {
	Trackers []TrackerInfo `json:"trackers"`
}

// StatsResponse answers GET /v1/trackers/{name}/stats: the sim.Stats view
// plus the cumulative framework counters.
type StatsResponse struct {
	Stats              sim.Stats `json:"stats"`
	CheckpointsCreated int64     `json:"checkpoints_created"`
	CheckpointsDeleted int64     `json:"checkpoints_deleted"`
	QueueDepth         int       `json:"queue_depth"`
	QueueCapacity      int       `json:"queue_capacity"`
}

// HealthResponse answers GET /v1/healthz: build info plus the coarse
// liveness facts an orchestration probe wants.
type HealthResponse struct {
	Status        string  `json:"status"`
	Version       string  `json:"version"`
	GoVersion     string  `json:"go_version"`
	Trackers      int     `json:"trackers"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Durable reports whether the registry persists tracker state (a data
	// dir is configured).
	Durable bool `json:"durable"`
	// Degraded maps tracker names to their latest snapshot-write failure.
	// Present (and Status "degraded") only while a durable tracker cannot
	// snapshot: batches stay safe in its ever-growing WAL, but recovery
	// replays lengthen until the underlying condition clears.
	Degraded map[string]string `json:"degraded,omitempty"`
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	Error string `json:"error"`
}
