//go:build !unix

package server

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fault"
)

// lockDataDir on platforms without flock only creates the marker file;
// single-process use of a data directory is not enforced there.
func lockDataDir(fs fault.FS, dir string) (fault.File, error) {
	f, err := fs.OpenFile(filepath.Join(dir, lockFileName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: opening data-dir lock: %w", err)
	}
	return f, nil
}
