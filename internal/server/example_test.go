package server_test

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	"repro/internal/server"
	"repro/sim"
)

// ExampleServer is the HTTP client path end to end: boot a server over one
// tracker, POST the paper's Figure 1 stream as NDJSON, and query the seeds.
func ExampleServer() {
	reg := server.NewRegistry()
	if _, err := reg.Add("default", server.Spec{K: 2, Window: 8}); err != nil {
		panic(err)
	}
	srv := httptest.NewServer(server.New(reg))
	defer srv.Close()
	defer reg.Close()

	body := `{"id":1,"user":1}
{"id":2,"user":2,"parent":1}
{"id":3,"user":3}
{"id":4,"user":3,"parent":1}
{"id":5,"user":4,"parent":3}
{"id":6,"user":1,"parent":3}
{"id":7,"user":5,"parent":3}
{"id":8,"user":4,"parent":7}
`
	resp, err := http.Post(srv.URL+"/v1/trackers/default/actions",
		"application/x-ndjson", strings.NewReader(body))
	if err != nil {
		panic(err)
	}
	io.Copy(os.Stdout, resp.Body)
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/v1/trackers/default/seeds")
	if err != nil {
		panic(err)
	}
	io.Copy(os.Stdout, resp.Body)
	resp.Body.Close()
	// Output:
	// {"accepted":8,"processed":8}
	// {"seeds":[1,3],"value":5,"window_start":1,"processed":8}
}

// ExampleTracked is the embedded client path: the same serving loop without
// HTTP — submit batches through the bounded queue and read the published
// snapshot from any goroutine.
func ExampleTracked() {
	reg := server.NewRegistry()
	tracked, err := reg.Add("demo", server.Spec{K: 2, Window: 8})
	if err != nil {
		panic(err)
	}
	defer reg.Close()

	batch := []sim.Action{
		{ID: 1, User: 1, Parent: sim.NoParent},
		{ID: 2, User: 2, Parent: 1},
		{ID: 3, User: 3, Parent: sim.NoParent},
		{ID: 4, User: 3, Parent: 1},
		{ID: 5, User: 4, Parent: 3},
	}
	processed, err := tracked.Submit(context.Background(), batch)
	if err != nil {
		panic(err)
	}
	snap := tracked.Snapshot()
	fmt.Printf("processed=%d seeds=%v value=%.0f\n", processed, snap.Seeds, snap.Value)
	// Output: processed=5 seeds=[1 3] value=4
}
