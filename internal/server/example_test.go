package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"repro/api"
	"repro/internal/server"
	"repro/query"
	"repro/sim"
)

// ExampleServer is the HTTP client path end to end: boot a server over one
// tracker, ingest the paper's Figure 1 stream through the typed api.Client,
// read the seeds, and run a relational plan against the published snapshot.
func ExampleServer() {
	reg := server.NewRegistry()
	if _, err := reg.Add("default", api.Spec{K: 2, Window: 8}); err != nil {
		panic(err)
	}
	srv := httptest.NewServer(server.New(reg))
	defer srv.Close()
	defer reg.Close()

	ctx := context.Background()
	client := api.NewClient(srv.URL)
	np := sim.NoParent
	ir, err := client.Ingest(ctx, "default", []sim.Action{
		{ID: 1, User: 1, Parent: np}, {ID: 2, User: 2, Parent: 1},
		{ID: 3, User: 3, Parent: np}, {ID: 4, User: 3, Parent: 1},
		{ID: 5, User: 4, Parent: 3}, {ID: 6, User: 1, Parent: 3},
		{ID: 7, User: 5, Parent: 3}, {ID: 8, User: 4, Parent: 7},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("accepted=%d processed=%d\n", ir.Accepted, ir.Processed)

	seeds, err := client.Seeds(ctx, "default")
	if err != nil {
		panic(err)
	}
	fmt.Printf("seeds=%v value=%.0f\n", seeds.Seeds, seeds.Value)

	// The most influential seed, computed server-side by a lazy plan.
	res, err := client.Query(ctx, "default", api.QueryRequest{Plan: query.Plan{
		Scan: "seeds",
		Ops:  []query.Op{{Op: "topk", Col: "influence", K: 1, Desc: true}},
	}})
	if err != nil {
		panic(err)
	}
	top := res.Rows[0]
	fmt.Printf("top seed: user=%d influence=%d\n", top[1].Int(), top[2].Int())
	// Output:
	// accepted=8 processed=8
	// seeds=[1 3] value=5
	// top seed: user=3 influence=4
}

// ExampleTracked is the embedded client path: the same serving loop without
// HTTP — submit batches through the bounded queue and read the published
// snapshot from any goroutine.
func ExampleTracked() {
	reg := server.NewRegistry()
	tracked, err := reg.Add("demo", api.Spec{K: 2, Window: 8})
	if err != nil {
		panic(err)
	}
	defer reg.Close()

	batch := []sim.Action{
		{ID: 1, User: 1, Parent: sim.NoParent},
		{ID: 2, User: 2, Parent: 1},
		{ID: 3, User: 3, Parent: sim.NoParent},
		{ID: 4, User: 3, Parent: 1},
		{ID: 5, User: 4, Parent: 3},
	}
	processed, err := tracked.Submit(context.Background(), batch)
	if err != nil {
		panic(err)
	}
	snap := tracked.Snapshot()
	fmt.Printf("processed=%d seeds=%v value=%.0f\n", processed, snap.Seeds, snap.Value)
	// Output: processed=5 seeds=[1 3] value=4
}
