package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/dataio"
	"repro/internal/gen"
	"repro/internal/server"
	"repro/sim"
)

// testStream generates a small deterministic SYN-O-like stream.
func testStream(n int) []sim.Action {
	return gen.Stream(gen.SynO(300, n, 500, 42))
}

// ndjsonBody encodes actions as an NDJSON request body.
func ndjsonBody(t *testing.T, actions []sim.Action) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := dataio.WriteNDJSON(&buf, actions); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func mustGetJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
}

// TestIngestQueryRoundTripIdentity is the end-to-end acceptance test: the
// same NDJSON stream POSTed in chunks — with GET queries hammering the
// server concurrently — must leave the served tracker bit-identical to a
// serial sim.Tracker replay (seeds, value, window start, checkpoint
// structure). Run under -race this also proves the read path never races
// the single-writer ingest loop.
func TestIngestQueryRoundTripIdentity(t *testing.T) {
	specs := map[string]server.Spec{
		"sic-sieve":    {K: 5, Window: 400},
		"ic-threshold": {K: 5, Window: 400, Framework: sim.IC, Oracle: sim.ThresholdStream},
		"sic-batched":  {K: 5, Window: 400, Batch: 64, Parallelism: 2},
	}
	actions := testStream(2000)
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			reg := server.NewRegistry()
			if _, err := reg.Add("default", spec); err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(server.New(reg))
			defer srv.Close()
			defer reg.Close()

			// Concurrent readers for the duration of the ingest.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			for _, path := range []string{
				"/v1/trackers/default/seeds",
				"/v1/trackers/default/checkpoints",
				"/v1/trackers/default/influence?user=1",
				"/metrics",
			} {
				wg.Add(1)
				go func(url string) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						resp, err := http.Get(url)
						if err != nil {
							t.Errorf("GET %s: %v", url, err)
							return
						}
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
				}(srv.URL + path)
			}

			// Ingest in NDJSON chunks of 100.
			for i := 0; i < len(actions); i += 100 {
				end := min(i+100, len(actions))
				resp, err := http.Post(srv.URL+"/v1/trackers/default/actions",
					"application/x-ndjson", ndjsonBody(t, actions[i:end]))
				if err != nil {
					t.Fatal(err)
				}
				var ir server.IngestResponse
				if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
					t.Fatal(err)
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("ingest chunk at %d: status %d", i, resp.StatusCode)
				}
				if ir.Accepted != end-i || ir.Processed != int64(end) {
					t.Fatalf("chunk at %d: accepted=%d processed=%d, want %d/%d",
						i, ir.Accepted, ir.Processed, end-i, end)
				}
			}
			close(stop)
			wg.Wait()

			// Serial reference replay of the same actions, mirroring the
			// served call sequence: one ProcessAll per POSTed chunk followed
			// by a snapshot (the ingest loop publishes — and therefore
			// flushes sim batching — after every applied batch).
			ref, err := sim.New(spec.Config())
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			var want sim.Snapshot
			for i := 0; i < len(actions); i += 100 {
				if err := ref.ProcessAll(actions[i:min(i+100, len(actions))]); err != nil {
					t.Fatal(err)
				}
				want = ref.Snapshot()
			}

			var got sim.Snapshot
			mustGetJSON(t, srv.URL+"/v1/trackers/default", &got)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("served snapshot differs from serial replay:\n got %+v\nwant %+v", got, want)
			}

			var seeds server.SeedsResponse
			mustGetJSON(t, srv.URL+"/v1/trackers/default/seeds", &seeds)
			if !reflect.DeepEqual(seeds.Seeds, want.Seeds) || seeds.Value != want.Value {
				t.Errorf("seeds endpoint: %+v, want seeds=%v value=%v", seeds, want.Seeds, want.Value)
			}

			var cps server.CheckpointsResponse
			mustGetJSON(t, srv.URL+"/v1/trackers/default/checkpoints", &cps)
			if !reflect.DeepEqual(cps.Starts, want.CheckpointStarts) ||
				!reflect.DeepEqual(cps.Values, want.CheckpointValues) {
				t.Errorf("checkpoints endpoint: %+v, want starts=%v values=%v",
					cps, want.CheckpointStarts, want.CheckpointValues)
			}

			// Influence endpoint vs the reference tracker, for a seed user.
			if len(want.Seeds) > 0 {
				u := want.Seeds[0]
				var inf server.InfluenceResponse
				mustGetJSON(t, fmt.Sprintf("%s/v1/trackers/default/influence?user=%d", srv.URL, u), &inf)
				wantSet := ref.InfluenceSet(u)
				if !reflect.DeepEqual(inf.Influenced, wantSet) || inf.Count != len(wantSet) {
					t.Errorf("influence(%d) = %+v, want %v", u, inf, wantSet)
				}
			}
		})
	}
}

// TestShutdownDrainsQueue fills the bounded ingest queue asynchronously and
// closes the registry: every queued batch must be applied before Close
// returns, and the drained state must match a serial replay.
func TestShutdownDrainsQueue(t *testing.T) {
	reg := server.NewRegistry()
	tk, err := reg.Add("default", server.Spec{K: 5, Window: 400, Queue: 128})
	if err != nil {
		t.Fatal(err)
	}
	actions := testStream(3000)
	ctx := context.Background()
	for i := 0; i < len(actions); i += 50 {
		end := min(i+50, len(actions))
		if err := tk.SubmitAsync(ctx, actions[i:end]); err != nil {
			t.Fatalf("enqueue at %d: %v", i, err)
		}
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	snap := tk.Snapshot()
	if snap.Processed != int64(len(actions)) {
		t.Fatalf("drained %d actions, want %d", snap.Processed, len(actions))
	}
	ref, err := sim.New(server.Spec{K: 5, Window: 400}.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.ProcessAll(actions); err != nil {
		t.Fatal(err)
	}
	if want := ref.Snapshot(); !reflect.DeepEqual(*snap, want) {
		t.Errorf("drained snapshot differs from serial replay:\n got %+v\nwant %+v", *snap, want)
	}

	// After Close, all entry points fail with ErrClosed.
	if _, err := tk.Submit(ctx, actions[:1]); err != server.ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := tk.Query(ctx, func(*sim.Tracker) {}); err != server.ErrClosed {
		t.Errorf("Query after Close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := reg.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestHTTPErrorPaths exercises the API's failure contract.
func TestHTTPErrorPaths(t *testing.T) {
	reg := server.NewRegistry()
	if _, err := reg.Add("default", server.Spec{K: 2, Window: 100}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.New(reg))
	defer srv.Close()
	defer reg.Close()

	post := func(path, body string) *http.Response {
		resp, err := http.Post(srv.URL+path, "application/x-ndjson", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	get := func(path string) *http.Response {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := get("/v1/trackers/nope/seeds"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown tracker: status %d, want 404", resp.StatusCode)
	}
	if resp := post("/v1/trackers/default/actions", "{oops}\n"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed NDJSON: status %d, want 400", resp.StatusCode)
	}
	if resp := get("/v1/trackers/default/influence?user=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad user param: status %d, want 400", resp.StatusCode)
	}
	if resp := get("/v1/trackers/default/influence"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing user param: status %d, want 400", resp.StatusCode)
	}
	// Out-of-order IDs: first batch applies, replay of the same IDs conflicts.
	if resp := post("/v1/trackers/default/actions", `{"id":5,"user":1}`+"\n"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first ingest: status %d", resp.StatusCode)
	}
	resp := post("/v1/trackers/default/actions", `{"id":5,"user":1}`+"\n")
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("non-monotonic ID: status %d, want 409", resp.StatusCode)
	}
	var er server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
		t.Errorf("conflict body not an ErrorResponse: %v %+v", err, er)
	}
	// Method mismatch on a registered pattern.
	if resp := get("/v1/trackers/default/actions"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on ingest: status %d, want 405", resp.StatusCode)
	}
	// Empty body is a no-op ingest.
	if resp := post("/v1/trackers/default/actions", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("empty ingest: status %d, want 200", resp.StatusCode)
	}
}

// TestMetricsAndList checks the operational endpoints.
func TestMetricsAndList(t *testing.T) {
	reg := server.NewRegistry()
	if _, err := reg.Add("default", server.Spec{K: 2, Window: 100}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.New(reg))
	defer srv.Close()
	defer reg.Close()

	resp, err := http.Post(srv.URL+"/v1/trackers/default/actions", "application/x-ndjson",
		ndjsonBody(t, testStream(100)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"simserve_trackers 1",
		`simserve_ingested_total{tracker="default"} 100`,
		`simserve_checkpoints_live{tracker="default"}`,
		`simserve_queue_capacity{tracker="default"} 256`,
		"simserve_uptime_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}

	var list server.ListResponse
	mustGetJSON(t, srv.URL+"/v1/trackers", &list)
	if len(list.Trackers) != 1 || list.Trackers[0].Name != "default" ||
		list.Trackers[0].Processed != 100 || list.Trackers[0].Spec.K != 2 {
		t.Errorf("list = %+v", list)
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if strings.TrimSpace(string(hbody)) != "ok" {
		t.Errorf("healthz = %q", hbody)
	}
}

// TestReadSpecs checks spec-file parsing, including failure on typos.
func TestReadSpecs(t *testing.T) {
	specs, err := server.ReadSpecs(strings.NewReader(
		`{"trackers": {"a": {"k": 3, "window": 100, "framework": "ic", "oracle": "threshold"},
		               "b": {"k": 1, "window": 50, "batch": 10, "queue": 7}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("want 2 specs, got %d", len(specs))
	}
	a := specs["a"]
	if a.K != 3 || a.Window != 100 || a.Framework != sim.IC || a.Oracle != sim.ThresholdStream {
		t.Errorf("spec a = %+v", a)
	}
	if b := specs["b"]; b.Batch != 10 || b.Queue != 7 {
		t.Errorf("spec b = %+v", b)
	}
	if _, err := server.ReadSpecs(strings.NewReader(`{"trackers": {"a": {"k": 3, "windoww": 9}}}`)); err == nil {
		t.Error("typo in spec field should fail")
	}
	if _, err := server.ReadSpecs(strings.NewReader(`{"trackers": {}}`)); err == nil {
		t.Error("empty spec should fail")
	}
	if _, err := server.ReadSpecs(strings.NewReader(`{"trackers": {"a": {"k": 3, "window": 10, "oracle": "bogus"}}}`)); err == nil {
		t.Error("unknown oracle name should fail")
	}
}

// TestRegistryAdd covers registry-level validation.
func TestRegistryAdd(t *testing.T) {
	reg := server.NewRegistry()
	if _, err := reg.Add("", server.Spec{K: 1, Window: 10}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := reg.Add("a", server.Spec{K: 0, Window: 10}); err == nil {
		t.Error("invalid sim config should fail")
	}
	if _, err := reg.Add("a", server.Spec{K: 1, Window: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("a", server.Spec{K: 1, Window: 10}); err == nil {
		t.Error("duplicate name should fail")
	}
	if got := reg.Names(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("Names = %v", got)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
}
