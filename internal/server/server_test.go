package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/api"
	"repro/internal/dataio"
	"repro/internal/gen"
	"repro/internal/server"
	"repro/query"
	"repro/sim"
)

// testStream generates a small deterministic SYN-O-like stream.
func testStream(n int) []sim.Action {
	return gen.Stream(gen.SynO(300, n, 500, 42))
}

// newTestServer boots a registry with one tracker behind httptest and
// returns the typed client for it. Cleanup closes both.
func newTestServer(t *testing.T, spec api.Spec) (*api.Client, *server.Registry) {
	t.Helper()
	reg := server.NewRegistry()
	if _, err := reg.Add("default", spec); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.New(reg))
	t.Cleanup(srv.Close)
	t.Cleanup(func() { reg.Close() })
	return api.NewClient(srv.URL), reg
}

// TestIngestQueryRoundTripIdentity is the end-to-end acceptance test: the
// same NDJSON stream POSTed in chunks through the typed client — with
// reads, including relational /query plans, hammering the server
// concurrently — must leave the served tracker bit-identical to a serial
// sim.Tracker replay. Run under -race this also proves the read path never
// races the single-writer ingest loop.
func TestIngestQueryRoundTripIdentity(t *testing.T) {
	specs := map[string]api.Spec{
		"sic-sieve":    {K: 5, Window: 400},
		"ic-threshold": {K: 5, Window: 400, Framework: sim.IC, Oracle: sim.ThresholdStream},
		"sic-batched":  {K: 5, Window: 400, Batch: 64, Parallelism: 2},
	}
	actions := testStream(2000)
	for name, spec := range specs {
		t.Run(name, func(t *testing.T) {
			client, _ := newTestServer(t, spec)
			ctx := context.Background()

			// Concurrent readers for the duration of the ingest.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			reads := []func() error{
				func() error { _, err := client.Seeds(ctx, "default"); return err },
				func() error { _, err := client.Checkpoints(ctx, "default"); return err },
				func() error { _, err := client.Influence(ctx, "default", "1"); return err },
				func() error {
					_, err := client.Query(ctx, "default", api.QueryRequest{Plan: query.Plan{
						Scan: "seeds",
						Ops:  []query.Op{{Op: "topk", Col: "influence", K: 3, Desc: true}},
					}})
					return err
				},
			}
			for _, read := range reads {
				wg.Add(1)
				go func(read func() error) {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						if err := read(); err != nil {
							t.Error(err)
							return
						}
					}
				}(read)
			}

			// Ingest in NDJSON chunks of 100.
			for i := 0; i < len(actions); i += 100 {
				end := min(i+100, len(actions))
				ir, err := client.Ingest(ctx, "default", actions[i:end])
				if err != nil {
					t.Fatalf("ingest chunk at %d: %v", i, err)
				}
				if ir.Accepted != end-i || ir.Processed != int64(end) {
					t.Fatalf("chunk at %d: accepted=%d processed=%d, want %d/%d",
						i, ir.Accepted, ir.Processed, end-i, end)
				}
			}
			close(stop)
			wg.Wait()

			// Serial reference replay of the same actions, mirroring the
			// served call sequence: one ProcessAll per POSTed chunk followed
			// by a snapshot (the ingest loop publishes — and therefore
			// flushes sim batching — after every applied batch).
			ref, err := sim.New(spec.Config())
			if err != nil {
				t.Fatal(err)
			}
			defer ref.Close()
			var want sim.Snapshot
			for i := 0; i < len(actions); i += 100 {
				if err := ref.ProcessAll(actions[i:min(i+100, len(actions))]); err != nil {
					t.Fatal(err)
				}
				want = ref.Snapshot()
			}

			got, err := client.Snapshot(ctx, "default")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("served snapshot differs from serial replay:\n got %+v\nwant %+v", got, want)
			}

			seeds, err := client.Seeds(ctx, "default")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seeds.Seeds, want.Seeds) || seeds.Value != want.Value {
				t.Errorf("seeds endpoint: %+v, want seeds=%v value=%v", seeds, want.Seeds, want.Value)
			}

			cps, err := client.Checkpoints(ctx, "default")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cps.Starts, want.CheckpointStarts) ||
				!reflect.DeepEqual(cps.Values, want.CheckpointValues) {
				t.Errorf("checkpoints endpoint: %+v, want starts=%v values=%v",
					cps, want.CheckpointStarts, want.CheckpointValues)
			}

			// Influence endpoint vs the reference tracker, for a seed user.
			if len(want.Seeds) > 0 {
				u := want.Seeds[0]
				inf, err := client.Influence(ctx, "default", fmt.Sprint(u))
				if err != nil {
					t.Fatal(err)
				}
				wantSet := ref.InfluenceSet(u)
				if !reflect.DeepEqual(inf.Influenced, wantSet) || inf.Count != len(wantSet) {
					t.Errorf("influence(%d) = %+v, want %v", u, inf, wantSet)
				}
			}

			// A served query plan vs the same plan run locally against the
			// snapshot the server just handed back: bit-identical rows.
			plan := query.Plan{Scan: "seeds", Ops: []query.Op{
				{Op: "topk", Col: "influence", K: 3, Desc: true},
				{Op: "project", Cols: []string{"user", "influence"}},
			}}
			res, err := client.Query(ctx, "default", api.QueryRequest{Plan: plan})
			if err != nil {
				t.Fatal(err)
			}
			wantSchema, wantRows, err := plan.Materialize(query.Env{Current: &got})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Columns, []string(wantSchema)) {
				t.Errorf("query columns = %v, want %v", res.Columns, wantSchema)
			}
			if len(res.Rows) != len(wantRows) {
				t.Fatalf("query rows = %d, want %d", len(res.Rows), len(wantRows))
			}
			for i := range wantRows {
				if !reflect.DeepEqual(res.Rows[i], wantRows[i]) {
					t.Errorf("query row %d = %v, want %v", i, res.Rows[i], wantRows[i])
				}
			}
			if res.Processed != want.Processed {
				t.Errorf("query processed = %d, want %d", res.Processed, want.Processed)
			}
		})
	}
}

// TestQueryBlockedLoopIndependence is the HTAP-split proof: /query must
// answer even while the single-writer ingest loop is wedged, because plan
// execution reads only the atomically published snapshot. A closure parked
// on the loop simulates the wedge; influence (which DOES ride the loop)
// would block here, /query must not.
func TestQueryBlockedLoopIndependence(t *testing.T) {
	client, reg := newTestServer(t, api.Spec{K: 3, Window: 200})
	ctx := context.Background()
	if _, err := client.Ingest(ctx, "default", testStream(500)); err != nil {
		t.Fatal(err)
	}

	tk, _ := reg.Get("default")
	release := make(chan struct{})
	parked := make(chan struct{})
	loopDone := make(chan error, 1)
	go func() {
		loopDone <- tk.Query(context.Background(), func(*sim.Tracker) {
			close(parked)
			<-release
		})
	}()
	<-parked // the ingest loop is now blocked inside the closure

	res, err := client.Query(ctx, "default", api.QueryRequest{Plan: query.Plan{
		Scan: "seeds",
		Ops:  []query.Op{{Op: "topk", Col: "influence", K: 3, Desc: true}},
	}})
	if err != nil {
		t.Fatalf("query with a blocked ingest loop: %v", err)
	}
	if len(res.Rows) == 0 || res.Processed != 500 {
		t.Fatalf("query under blocked loop: %d rows, processed=%d", len(res.Rows), res.Processed)
	}
	close(release)
	if err := <-loopDone; err != nil {
		t.Fatal(err)
	}
}

// TestQueryIngestHammer runs sustained concurrent ingest and query load
// (under -race) and checks every query observes a consistent snapshot:
// Processed never goes backwards across successive responses on one
// goroutine, and rows always match the schema width.
func TestQueryIngestHammer(t *testing.T) {
	client, _ := newTestServer(t, api.Spec{K: 5, Window: 400})
	ctx := context.Background()
	actions := testStream(4000)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastProcessed int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := client.Query(ctx, "default", api.QueryRequest{Plan: query.Plan{
					Scan: "influence",
					Ops: []query.Op{
						{Op: "filter", Col: "seed", Cmp: ">=", Value: intVal(0)},
						{Op: "topk", Col: "user", K: 5, Desc: true},
					},
				}})
				if err != nil {
					t.Error(err)
					return
				}
				if res.Processed < lastProcessed {
					t.Errorf("query processed went backwards: %d after %d", res.Processed, lastProcessed)
					return
				}
				lastProcessed = res.Processed
				for _, row := range res.Rows {
					if len(row) != len(res.Columns) {
						t.Errorf("row width %d vs %d columns", len(row), len(res.Columns))
						return
					}
				}
			}
		}()
	}
	for i := 0; i < len(actions); i += 200 {
		if _, err := client.Ingest(ctx, "default", actions[i:min(i+200, len(actions))]); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func intVal(v int64) *query.Value {
	x := query.IntValue(v)
	return &x
}

// TestQueryEndpointShapes covers the request surface of /query: limits and
// truncation, window-compare sources, and the 400 contract for bad plans.
func TestQueryEndpointShapes(t *testing.T) {
	client, _ := newTestServer(t, api.Spec{K: 5, Window: 400})
	ctx := context.Background()
	actions := testStream(1500)
	// Two chunks so a previous snapshot exists for compare sources.
	if _, err := client.Ingest(ctx, "default", actions[:1000]); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Ingest(ctx, "default", actions[1000:]); err != nil {
		t.Fatal(err)
	}

	// limit + truncated: the influence scan has many rows; cap at 3.
	res, err := client.Query(ctx, "default", api.QueryRequest{
		Plan:  query.Plan{Scan: "influence"},
		Limit: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || !res.Truncated {
		t.Errorf("limited query: %d rows truncated=%v, want 3/true", len(res.Rows), res.Truncated)
	}

	// Window compare runs off the previous published snapshot.
	res, err = client.Query(ctx, "default", api.QueryRequest{
		Plan: query.Plan{Compare: "checkpoints"},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantCols := []string{"start", "status", "value_old", "value_new", "delta"}
	if !reflect.DeepEqual(res.Columns, wantCols) {
		t.Errorf("compare columns = %v, want %v", res.Columns, wantCols)
	}
	if len(res.Rows) == 0 {
		t.Error("checkpoint compare returned no rows")
	}

	// Bad plans and bad requests are 400s through the typed error.
	for name, req := range map[string]api.QueryRequest{
		"unknown scan":   {Plan: query.Plan{Scan: "bogus"}},
		"unknown op":     {Plan: query.Plan{Scan: "seeds", Ops: []query.Op{{Op: "frobnicate"}}}},
		"unknown column": {Plan: query.Plan{Scan: "seeds", Ops: []query.Op{{Op: "topk", Col: "nope", K: 1}}}},
		"negative limit": {Plan: query.Plan{Scan: "seeds"}, Limit: -1},
		"empty plan":     {},
	} {
		_, err := client.Query(ctx, "default", req)
		var apiErr *api.Error
		if !errors.As(err, &apiErr) || apiErr.Code != http.StatusBadRequest {
			t.Errorf("%s: err = %v, want *api.Error with 400", name, err)
		}
	}
}

// TestShutdownDrainsQueue fills the bounded ingest queue asynchronously and
// closes the registry: every queued batch must be applied before Close
// returns, and the drained state must match a serial replay.
func TestShutdownDrainsQueue(t *testing.T) {
	reg := server.NewRegistry()
	tk, err := reg.Add("default", api.Spec{K: 5, Window: 400, Queue: 128})
	if err != nil {
		t.Fatal(err)
	}
	actions := testStream(3000)
	ctx := context.Background()
	for i := 0; i < len(actions); i += 50 {
		end := min(i+50, len(actions))
		if err := tk.SubmitAsync(ctx, actions[i:end]); err != nil {
			t.Fatalf("enqueue at %d: %v", i, err)
		}
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	snap := tk.Snapshot()
	if snap.Processed != int64(len(actions)) {
		t.Fatalf("drained %d actions, want %d", snap.Processed, len(actions))
	}
	ref, err := sim.New(api.Spec{K: 5, Window: 400}.Config())
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.ProcessAll(actions); err != nil {
		t.Fatal(err)
	}
	if want := ref.Snapshot(); !reflect.DeepEqual(*snap, want) {
		t.Errorf("drained snapshot differs from serial replay:\n got %+v\nwant %+v", *snap, want)
	}

	// After Close, all entry points fail with ErrClosed.
	if _, err := tk.Submit(ctx, actions[:1]); err != server.ErrClosed {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
	if err := tk.Query(ctx, func(*sim.Tracker) {}); err != server.ErrClosed {
		t.Errorf("Query after Close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := reg.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestErrorContract is the error-contract table of ISSUE 6: every non-2xx
// response carries the JSON envelope {"error": ..., "code": <status>}, with
// the documented status per failure class.
func TestErrorContract(t *testing.T) {
	reg := server.NewRegistry()
	if _, err := reg.Add("default", api.Spec{K: 2, Window: 100}); err != nil {
		t.Fatal(err)
	}
	// A tracker refused at startup (simserve's refuse-and-serve path for
	// spec validation failures, e.g. batch>1 without -data-dir) serves 503
	// with the refusal reason instead of vanishing into a 404.
	reg.Refuse("badbatch", "durable batching (batch=3) without unsafe-batch-recovery")
	handler := server.New(reg)
	handler.MaxBodyBytes = 1 << 10 // make 413 reachable with a small body
	srv := httptest.NewServer(handler)
	defer srv.Close()

	// Seed one action so a duplicate-ID replay conflicts below.
	if resp, err := http.Post(srv.URL+"/v1/trackers/default/actions",
		"application/x-ndjson", strings.NewReader(`{"id":5,"user":1}`+"\n")); err != nil || resp.StatusCode != 200 {
		t.Fatalf("setup ingest: %v %v", err, resp.Status)
	}

	bigBody := strings.Repeat(`{"id":9,"user":1}`+"\n", 200) // > 1 KiB

	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
	}{
		{"unknown tracker read", "GET", "/v1/trackers/nope/seeds", "", 404},
		{"unknown tracker ingest", "POST", "/v1/trackers/nope/actions", `{"id":1,"user":1}` + "\n", 404},
		{"unknown tracker query", "POST", "/v1/trackers/nope/query", `{"plan":{"scan":"seeds"}}`, 404},
		{"malformed ndjson", "POST", "/v1/trackers/default/actions", "{oops}\n", 400},
		{"named action on numeric tracker", "POST", "/v1/trackers/default/actions", `{"id":9,"user":"alice"}` + "\n", 400},
		{"bad user param", "GET", "/v1/trackers/default/influence?user=bogus", "", 400},
		{"missing user param", "GET", "/v1/trackers/default/influence", "", 400},
		{"non-monotonic id", "POST", "/v1/trackers/default/actions", `{"id":5,"user":1}` + "\n", 409},
		{"oversized ingest body", "POST", "/v1/trackers/default/actions", bigBody, 413},
		{"undecodable query body", "POST", "/v1/trackers/default/query", "not json", 400},
		{"unknown query field", "POST", "/v1/trackers/default/query", `{"plam":{}}`, 400},
		{"bad plan", "POST", "/v1/trackers/default/query", `{"plan":{"scan":"bogus"}}`, 400},
		{"refused tracker read", "GET", "/v1/trackers/badbatch/seeds", "", 503},
		{"refused tracker ingest", "POST", "/v1/trackers/badbatch/actions", `{"id":1,"user":1}` + "\n", 503},
		{"refused tracker query", "POST", "/v1/trackers/badbatch/query", `{"plan":{"scan":"seeds"}}`, 503},
	}
	check := func(t *testing.T, resp *http.Response, wantCode int) {
		t.Helper()
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("status = %d, want %d", resp.StatusCode, wantCode)
		}
		var er api.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("non-2xx body is not the error envelope: %v", err)
		}
		if er.Error == "" || er.Code != wantCode {
			t.Fatalf("envelope = %+v, want non-empty error with code %d", er, wantCode)
		}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var resp *http.Response
			var err error
			switch c.method {
			case "GET":
				resp, err = http.Get(srv.URL + c.path)
			default:
				ct := "application/x-ndjson"
				if strings.HasSuffix(c.path, "/query") {
					ct = "application/json"
				}
				resp, err = http.Post(srv.URL+c.path, ct, strings.NewReader(c.body))
			}
			if err != nil {
				t.Fatal(err)
			}
			check(t, resp, c.wantCode)
		})
	}

	// The refusal reason survives the envelope round trip, and healthz
	// reports the tracker as refused with a degraded status.
	resp0, err := http.Get(srv.URL + "/v1/trackers/badbatch/seeds")
	if err != nil {
		t.Fatal(err)
	}
	var refusedErr api.ErrorResponse
	if err := json.NewDecoder(resp0.Body).Decode(&refusedErr); err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	if !strings.Contains(refusedErr.Error, "unsafe-batch-recovery") {
		t.Fatalf("refusal reason lost: %q", refusedErr.Error)
	}
	hresp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health api.HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "degraded" {
		t.Fatalf("healthz status = %q with a refused tracker, want degraded", health.Status)
	}
	if reason, ok := health.Refused["badbatch"]; !ok || !strings.Contains(reason, "unsafe-batch-recovery") {
		t.Fatalf("healthz refused map = %v, want badbatch with its reason", health.Refused)
	}

	// 503 while draining: close the registry under the live listener.
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/trackers/default/actions",
		"application/x-ndjson", strings.NewReader(`{"id":6,"user":1}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	check(t, resp, 503)

	// The typed client surfaces the same contract as *api.Error.
	client := api.NewClient(srv.URL)
	_, err = client.Seeds(context.Background(), "nope")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != 404 ||
		!strings.Contains(apiErr.Error(), "unknown tracker") {
		t.Errorf("client error = %v, want *api.Error 404 mentioning the tracker", err)
	}
}

// TestNamesMode exercises a name-mode tracker end to end: named NDJSON in,
// names on seeds and influence out, the names query operator, and strict
// mode exclusivity at the wire.
func TestNamesMode(t *testing.T) {
	client, _ := newTestServer(t, api.Spec{K: 2, Window: 64, Names: true})
	ctx := context.Background()

	// The paper's Figure 1 cascade, with names instead of raw IDs.
	np := sim.NoParent
	batch := []api.NamedAction{
		{ID: 1, User: "alice", Parent: np},
		{ID: 2, User: "bob", Parent: 1},
		{ID: 3, User: "carol", Parent: np},
		{ID: 4, User: "carol", Parent: 1},
		{ID: 5, User: "dave", Parent: 3},
		{ID: 6, User: "alice", Parent: 3},
		{ID: 7, User: "erin", Parent: 3},
		{ID: 8, User: "dave", Parent: 7},
	}
	ir, err := client.IngestNamed(ctx, "default", batch)
	if err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 8 || ir.Processed != 8 {
		t.Fatalf("named ingest: %+v", ir)
	}

	seeds, err := client.Seeds(ctx, "default")
	if err != nil {
		t.Fatal(err)
	}
	// Interning is first-appearance dense: alice=0, bob=1, carol=2, ...
	if !reflect.DeepEqual(seeds.Seeds, []sim.UserID{0, 2}) ||
		!reflect.DeepEqual(seeds.Names, []string{"alice", "carol"}) {
		t.Fatalf("seeds = %+v, want users [0 2] named [alice carol]", seeds)
	}

	inf, err := client.Influence(ctx, "default", "carol")
	if err != nil {
		t.Fatal(err)
	}
	if inf.Name != "carol" || inf.Count == 0 {
		t.Errorf("influence(carol) = %+v", inf)
	}
	if _, err := client.Influence(ctx, "default", "mallory"); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("unknown name: err = %v, want 404", err)
	}

	// The names operator resolves the dense user column back to names.
	res, err := client.Query(ctx, "default", api.QueryRequest{Plan: query.Plan{
		Scan: "seeds",
		Ops: []query.Op{
			{Op: "names", Cols: []string{"user"}},
			{Op: "project", Cols: []string{"user"}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, row := range res.Rows {
		got = append(got, row[0].Str())
	}
	if !reflect.DeepEqual(got, []string{"alice", "carol"}) {
		t.Errorf("names query = %v, want [alice carol]", got)
	}

	// Mode exclusivity: numeric users on a name-mode tracker are a 400.
	_, err = client.Ingest(ctx, "default", []sim.Action{{ID: 9, User: 1, Parent: np}})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != 400 {
		t.Errorf("numeric ingest on name-mode tracker: %v, want 400", err)
	}
}

// TestNamesDurableRecovery round-trips the intern table through names.log:
// a durable name-mode tracker must come back resolving the same names to
// the same dense IDs, both for lookups and for continued ingest.
func TestNamesDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := api.Spec{K: 2, Window: 64, Names: true}
	ctx := context.Background()
	np := sim.NoParent

	reg := server.NewRegistry()
	reg.SetDataDir(dir)
	if _, err := reg.Add("t", spec); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(server.New(reg))
	client := api.NewClient(srv.URL)
	if _, err := client.IngestNamed(ctx, "t", []api.NamedAction{
		{ID: 1, User: "alice", Parent: np},
		{ID: 2, User: "bob", Parent: 1},
		{ID: 3, User: "carol", Parent: 1},
	}); err != nil {
		t.Fatal(err)
	}
	wantInf, err := client.Influence(ctx, "t", "alice")
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	reg2 := server.NewRegistry()
	reg2.SetDataDir(dir)
	if _, err := reg2.Add("t", spec); err != nil {
		t.Fatalf("recovery Add: %v", err)
	}
	defer reg2.Close()
	srv2 := httptest.NewServer(server.New(reg2))
	defer srv2.Close()
	client2 := api.NewClient(srv2.URL)

	inf, err := client2.Influence(ctx, "t", "alice")
	if err != nil {
		t.Fatalf("influence by name after recovery: %v", err)
	}
	if !reflect.DeepEqual(inf, wantInf) {
		t.Errorf("recovered influence(alice) = %+v, want %+v", inf, wantInf)
	}
	// Continued ingest: an existing name keeps its ID, a new one extends.
	if _, err := client2.IngestNamed(ctx, "t", []api.NamedAction{
		{ID: 4, User: "dave", Parent: 3},
		{ID: 5, User: "alice", Parent: 4},
	}); err != nil {
		t.Fatal(err)
	}
	seeds, err := client2.Seeds(ctx, "t")
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds.Names) != len(seeds.Seeds) {
		t.Fatalf("seeds names out of step: %+v", seeds)
	}
	for i, n := range seeds.Names {
		if n == "" {
			t.Errorf("seed %d (user %d) has no recovered name", i, seeds.Seeds[i])
		}
	}
}

// TestMetricsAndList checks the operational endpoints.
func TestMetricsAndList(t *testing.T) {
	client, _ := newTestServer(t, api.Spec{K: 2, Window: 100})
	ctx := context.Background()
	if _, err := client.Ingest(ctx, "default", testStream(100)); err != nil {
		t.Fatal(err)
	}

	mresp, err := http.Get(client.BaseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"simserve_trackers 1",
		`simserve_ingested_total{tracker="default"} 100`,
		`simserve_checkpoints_live{tracker="default"}`,
		`simserve_queue_capacity{tracker="default"} 256`,
		"simserve_uptime_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics output missing %q:\n%s", want, body)
		}
	}

	list, err := client.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Trackers) != 1 || list.Trackers[0].Name != "default" ||
		list.Trackers[0].Processed != 100 || list.Trackers[0].Spec.K != 2 {
		t.Errorf("list = %+v", list)
	}

	health, err := client.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("health = %+v", health)
	}

	hresp, err := http.Get(client.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if strings.TrimSpace(string(hbody)) != "ok" {
		t.Errorf("healthz = %q", hbody)
	}
}

// TestRegistryAdd covers registry-level validation.
func TestRegistryAdd(t *testing.T) {
	reg := server.NewRegistry()
	if _, err := reg.Add("", api.Spec{K: 1, Window: 10}); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := reg.Add("a", api.Spec{K: 0, Window: 10}); err == nil {
		t.Error("invalid sim config should fail")
	}
	if _, err := reg.Add("a", api.Spec{K: 1, Window: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Add("a", api.Spec{K: 1, Window: 10}); err == nil {
		t.Error("duplicate name should fail")
	}
	if got := reg.Names(); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("Names = %v", got)
	}
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
}

// ndjsonBody encodes actions as an NDJSON request body (raw-wire tests).
func ndjsonBody(t *testing.T, actions []sim.Action) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := dataio.WriteNDJSON(&buf, actions); err != nil {
		t.Fatal(err)
	}
	return &buf
}

// TestRawWireCompatibility pins the documented curl-level wire format: the
// same NDJSON bytes and JSON plan a shell client would send, no api.Client.
func TestRawWireCompatibility(t *testing.T) {
	client, _ := newTestServer(t, api.Spec{K: 2, Window: 100})
	resp, err := http.Post(client.BaseURL+"/v1/trackers/default/actions",
		"application/x-ndjson", ndjsonBody(t, testStream(50)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("raw ingest: %d", resp.StatusCode)
	}
	qresp, err := http.Post(client.BaseURL+"/v1/trackers/default/query", "application/json",
		strings.NewReader(`{"plan":{"scan":"seeds","ops":[{"op":"topk","col":"influence","k":1,"desc":true}]}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	if qresp.StatusCode != 200 {
		body, _ := io.ReadAll(qresp.Body)
		t.Fatalf("raw query: %d: %s", qresp.StatusCode, body)
	}
	var qr api.QueryResponse
	if err := json.NewDecoder(qresp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Rows) != 1 || qr.Processed != 50 {
		t.Errorf("raw query response: %+v", qr)
	}
}
