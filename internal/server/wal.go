package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/fault"
	"repro/internal/wire"
	"repro/sim"
)

// The write-ahead log of a durable tracker: one framed record per applied
// ingest batch, appended and fsynced BEFORE the batch reaches the tracker,
// so an acknowledged batch is always recoverable after a crash. Record
// framing:
//
//	'B' · uvarint payload length · payload · CRC-32 (IEEE, LE)
//	payload: uvarint action count · per action varint ID · uvarint user · varint parent
//
// Batch boundaries are semantic, not incidental: replay re-submits each
// record as one ProcessAll batch, so a mid-batch stream-order rejection
// (the live 409 path, which applies the prefix and drops the rest) replays
// to exactly the same state.
//
// The log has a single appender (the tracker's ingest loop), so torn writes
// can only occur at the tail — a kill -9 mid-append. Replay therefore stops
// at the first frame that fails to parse or checksum: everything before it
// was written by a completed, synced append; everything from it on was
// never acknowledged. A *failed* append (short write, ENOSPC, fsync error)
// is rolled back by truncating the file to its pre-append size, so the
// rejected record's bytes cannot linger mid-log where they would make
// replay stop early and drop batches acknowledged after them; if the
// rollback itself fails the log is poisoned — every later append is
// refused — which keeps the invariant that acknowledged records are never
// preceded by junk. A poisoned log is not terminal: once a fresh snapshot
// has made every acknowledged batch durable again, rearm recreates the log
// empty (junk and all gone) and appends resume — the serving layer's
// degraded-readonly → recovering → ok cycle (see registry.go).

// walRecordTag starts every WAL record.
const walRecordTag = byte('B')

// maxWALRecordBytes bounds one record's payload; a corrupt length claim at
// the tail fails fast instead of attempting a giant allocation.
const maxWALRecordBytes = 1 << 30

// wal is an append-only, fsync-per-append batch log. All file access goes
// through the fault.FS seam so every failure edge (short write, ENOSPC,
// fsync error, failed rollback) is injectable.
type wal struct {
	fs     fault.FS
	f      fault.File
	path   string
	size   int64        // current file size, the snapshot-policy input
	buf    bytes.Buffer // payload scratch, reused across appends
	frame  bytes.Buffer // framed-record scratch, reused across appends
	broken error        // a failed append that could not be rolled back
}

// openWAL opens (creating if needed) the log at path for appending.
func openWAL(fs fault.FS, path string) (*wal, error) {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("server: opening WAL: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("server: opening WAL: %w", err)
	}
	return &wal{fs: fs, f: f, path: path, size: st.Size()}, nil
}

// append frames, writes and fsyncs one batch. Only after append returns nil
// may the batch be applied and acknowledged. A failed append is rolled back
// (see the package comment), so the error means the log is exactly as it
// was before the call — or poisoned, refusing everything thereafter.
func (w *wal) append(batch []sim.Action) error {
	if w.broken != nil {
		return fmt.Errorf("server: WAL unusable after failed rollback: %w", w.broken)
	}

	// Payload, via the same wire primitives every snapshot layer uses
	// (bytes.Buffer writes cannot fail, so enc.Err is statically nil).
	w.buf.Reset()
	enc := wire.NewWriter(&w.buf)
	enc.Uvarint(uint64(len(batch)))
	for _, a := range batch {
		enc.Varint(int64(a.ID))
		enc.Uvarint(uint64(a.User))
		enc.Varint(int64(a.Parent))
	}
	payload := w.buf.Bytes()

	// Frame around it (header before, CRC after), assembled in one reused
	// buffer so the record hits the file in a single Write.
	w.frame.Reset()
	w.frame.Grow(len(payload) + 16)
	w.frame.WriteByte(walRecordTag)
	wire.NewWriter(&w.frame).Uvarint(uint64(len(payload)))
	w.frame.Write(payload)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	w.frame.Write(crc[:])

	prev := w.size
	n, err := w.f.Write(w.frame.Bytes())
	w.size += int64(n)
	if err != nil {
		return w.rollback(prev, fmt.Errorf("server: WAL append: %w", err))
	}
	if err := w.f.Sync(); err != nil {
		// The record may be fully written but is not durable — and the batch
		// is about to be rejected, so it must not resurface on replay.
		return w.rollback(prev, fmt.Errorf("server: WAL sync: %w", err))
	}
	return nil
}

// rollback restores the log to its pre-append size after a failed append
// and returns cause. The truncation is itself synced so the rejected bytes
// cannot reappear after a crash. If any step fails the log is poisoned:
// appending past leftover junk would strand every later record behind a
// frame replay treats as the torn tail.
func (w *wal) rollback(prev int64, cause error) error {
	if err := w.f.Truncate(prev); err != nil {
		w.broken = fmt.Errorf("%w; rollback truncate: %v", cause, err)
		return w.broken
	}
	if err := w.f.Sync(); err != nil {
		w.broken = fmt.Errorf("%w; rollback sync: %v", cause, err)
		return w.broken
	}
	w.size = prev
	return cause
}

// reset truncates the log after a successful snapshot. With O_APPEND,
// subsequent appends land at the new end of file.
func (w *wal) reset() error {
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("server: WAL truncate: %w", err)
	}
	w.size = 0
	return nil
}

// rearm recovers a poisoned log by recreating it empty: close the (possibly
// unusable) handle and reopen with O_TRUNC, dropping any rollback junk.
// Callers MUST have persisted a snapshot covering every acknowledged batch
// first — rearm discards the log's contents. A crash between that snapshot's
// rename and this truncate is safe: replay skips snapshot-covered records by
// ID and stops at the junk tail, before which every record is covered.
func (w *wal) rearm() error {
	_ = w.f.Close() // best effort; the fd may already be dead
	f, err := w.fs.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("server: WAL rearm: %w", err)
	}
	w.f = f
	w.size = 0
	w.broken = nil
	return nil
}

// close releases the file handle.
func (w *wal) close() error { return w.f.Close() }

// replayWAL streams the log's batches to apply in append order. It
// tolerates a torn tail (see the package comment above): parsing stops
// cleanly at the first incomplete or checksum-failing frame. A missing file
// is an empty log. apply errors abort the replay.
func replayWAL(fs fault.FS, path string, apply func(batch []sim.Action) error) (batches, actions int, err error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("server: opening WAL for replay: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	for {
		tag, err := br.ReadByte()
		if err == io.EOF {
			return batches, actions, nil
		}
		if err != nil {
			return batches, actions, fmt.Errorf("server: reading WAL: %w", err)
		}
		if tag != walRecordTag {
			return batches, actions, nil // torn tail
		}
		n, err := binary.ReadUvarint(br)
		if err != nil || n > maxWALRecordBytes {
			return batches, actions, nil // torn tail
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return batches, actions, nil // torn tail
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return batches, actions, nil // torn tail
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcBuf[:]) {
			return batches, actions, nil // torn tail
		}
		batch, err := decodeWALBatch(payload)
		if err != nil {
			// A CRC-valid record that does not decode is real corruption,
			// not a torn write: surface it.
			return batches, actions, fmt.Errorf("server: WAL record %d: %w", batches+1, err)
		}
		if err := apply(batch); err != nil {
			return batches, actions, err
		}
		batches++
		actions += len(batch)
	}
}

// decodeWALBatch parses one record payload (the encoding in append).
func decodeWALBatch(payload []byte) ([]sim.Action, error) {
	br := bytes.NewReader(payload)
	r := wire.NewReader(br)
	n := r.Len(len(payload)) // every action takes >= 3 bytes
	batch := make([]sim.Action, 0, n)
	for i := 0; i < n && r.Err() == nil; i++ {
		id := sim.ActionID(r.Varint())
		user := sim.UserID(r.Uvarint())
		parent := sim.ActionID(r.Varint())
		batch = append(batch, sim.Action{ID: id, User: user, Parent: parent})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("%d trailing bytes", br.Len())
	}
	return batch, nil
}
