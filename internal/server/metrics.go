package server

import (
	"fmt"
	"net/http"
	"time"
)

// handleMetrics serves plain-text operational counters in the Prometheus
// exposition format (gauges only, no client library needed):
//
//	simserve_uptime_seconds                          server uptime
//	simserve_trackers                                registered trackers
//	simserve_ingested_total{tracker="..."}           accepted actions
//	simserve_actions_per_sec{tracker="..."}          lifetime average ingest rate
//	simserve_value{tracker="..."}                    current influence value
//	simserve_checkpoints_live{tracker="..."}         live checkpoints
//	simserve_elements_fed_total{tracker="..."}       oracle updates (the O(d·N) term)
//	simserve_queue_depth{tracker="..."}              commands waiting for the ingest loop
//	simserve_queue_capacity{tracker="..."}           ingest queue bound
//	simserve_queue_high_water{tracker="..."}         deepest the queue has been
//	simserve_shed_total{tracker="..."}               ingests rejected 429 by admission control
//	simserve_snapshot_retries_total{tracker="..."}   failed snapshot-write attempts
//	simserve_wal_rearms_total{tracker="..."}         durability re-arms after poisoning
//	simserve_state{tracker="..."}                    0 ok, 1 degraded-readonly, 2 recovering
//	simserve_resident_bytes{tracker="..."}           estimated resident stream-index bytes
//	simserve_hot_log_bytes{tracker="..."}            in-memory contribution-log bytes
//	simserve_cold_log_bytes{tracker="..."}           spilled contribution-log bytes on disk
//	simserve_cold_segments{tracker="..."}            live cold segment files
//	simserve_spills_total{tracker="..."}             spill passes since boot
//	simserve_cold_faults_total{tracker="..."}        cold segment reads (query-triggered) since boot
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "simserve_uptime_seconds %g\n", time.Since(s.started).Seconds())
	names := s.reg.Names()
	fmt.Fprintf(w, "simserve_trackers %d\n", len(names))
	for _, name := range names {
		t, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		snap := t.Snapshot()
		depth, capacity := t.QueueDepth()
		rate := 0.0
		if up := time.Since(t.Started()).Seconds(); up > 0 {
			rate = float64(snap.Processed) / up
		}
		fmt.Fprintf(w, "simserve_ingested_total{tracker=%q} %d\n", name, snap.Processed)
		fmt.Fprintf(w, "simserve_actions_per_sec{tracker=%q} %.1f\n", name, rate)
		fmt.Fprintf(w, "simserve_value{tracker=%q} %g\n", name, snap.Value)
		fmt.Fprintf(w, "simserve_checkpoints_live{tracker=%q} %d\n", name, snap.Checkpoints)
		fmt.Fprintf(w, "simserve_elements_fed_total{tracker=%q} %d\n", name, snap.ElementsFed)
		fmt.Fprintf(w, "simserve_queue_depth{tracker=%q} %d\n", name, depth)
		fmt.Fprintf(w, "simserve_queue_capacity{tracker=%q} %d\n", name, capacity)
		retries, rearms, shed, highWater := t.Counters()
		fmt.Fprintf(w, "simserve_queue_high_water{tracker=%q} %d\n", name, highWater)
		fmt.Fprintf(w, "simserve_shed_total{tracker=%q} %d\n", name, shed)
		fmt.Fprintf(w, "simserve_snapshot_retries_total{tracker=%q} %d\n", name, retries)
		fmt.Fprintf(w, "simserve_wal_rearms_total{tracker=%q} %d\n", name, rearms)
		fmt.Fprintf(w, "simserve_state{tracker=%q} %d\n", name, t.State())
		fmt.Fprintf(w, "simserve_resident_bytes{tracker=%q} %d\n", name, snap.ResidentBytes)
		fmt.Fprintf(w, "simserve_hot_log_bytes{tracker=%q} %d\n", name, snap.HotLogBytes)
		fmt.Fprintf(w, "simserve_cold_log_bytes{tracker=%q} %d\n", name, snap.ColdLogBytes)
		fmt.Fprintf(w, "simserve_cold_segments{tracker=%q} %d\n", name, snap.ColdSegments)
		fmt.Fprintf(w, "simserve_spills_total{tracker=%q} %d\n", name, snap.Spills)
		fmt.Fprintf(w, "simserve_cold_faults_total{tracker=%q} %d\n", name, snap.ColdFaults)
	}
}
