package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/intern"
	"repro/internal/dataio"
	"repro/internal/fault"
	"repro/internal/wire"
	"repro/sim"
)

// Durability of a served tracker: an in-memory hot path paired with a
// write-ahead log and periodic SIM2 snapshots, the standard
// snapshot-plus-log recovery design of production stream systems.
//
// Layout of a tracker's data directory (<registry data dir>/<name>/):
//
//	snapshot.sim2       latest complete snapshot (sim.Tracker.SaveTo)
//	snapshot.sim2.tmp   in-flight snapshot write; never loaded
//	wal.log             batches applied since that snapshot (see wal.go)
//
// Write path (all on the tracker's single-writer ingest loop): every batch
// is appended to the WAL and fsynced BEFORE it is applied and the refreshed
// snapshot published — an acknowledged action is on disk, so a kill -9
// mid-ingest loses nothing acknowledged. Once the WAL exceeds its size
// threshold the loop writes a fresh snapshot to snapshot.sim2.tmp, fsyncs,
// atomically renames it over snapshot.sim2 and truncates the WAL. A crash
// between rename and truncate only leaves WAL entries the snapshot already
// covers; recovery skips them by ID.
//
// Every disk touch goes through the fault.FS seam, so tests and the chaos
// smoke can fail any single operation deterministically.
//
// Failure handling is self-healing rather than fail-stop:
//
//   - A failed snapshot write degrades durability (WAL keeps growing) but
//     retries with capped exponential backoff + jitter instead of
//     re-attempting on every batch; /v1/healthz reports the condition and
//     the retry counter until a write succeeds.
//   - A failed WAL append rejects the batch (503, retryable: the in-memory
//     state never runs ahead of the log) after rolling the partial record
//     back out of the log. Only a rollback that itself fails poisons the
//     log; the tracker then enters degraded-readonly mode (reads keep
//     serving, ingest sheds with 503 + Retry-After) and a periodic probe
//     re-arms the WAL — fresh covering snapshot, log recreated empty — once
//     the disk heals.
//   - names.log appends get the same rollback treatment: a partial name
//     record is truncated back out so a retry cannot append after junk.
//
// Recovery (tracker construction): load snapshot.sim2 if present, then
// replay wal.log — skipping batches whose newest ID is not beyond the
// snapshot — through the same ProcessAll path the live loop uses, so a
// batch that was partially rejected live (stream-order conflict) replays to
// the identical partially-applied state. A torn WAL tail (the crash's
// unacknowledged in-flight append) is dropped by the frame parser.
const (
	snapshotFileName = "snapshot.sim2"
	snapshotTempName = "snapshot.sim2.tmp"
	walFileName      = "wal.log"
	namesFileName    = "names.log"
	lockFileName     = ".lock"
)

// DefaultSnapshotWALBytes is the WAL size that triggers a snapshot+truncate
// when the Spec does not set one.
const DefaultSnapshotWALBytes int64 = 4 << 20

// Snapshot-retry backoff bounds: after a failed snapshot write the next
// attempt waits base, then 2·base, … capped at max, each with ±50% jitter.
// Package variables so the chaos tests can compress time.
var (
	snapshotBackoffBase = 500 * time.Millisecond
	snapshotBackoffMax  = 30 * time.Second
)

// ErrDurability wraps disk failures of the durable path (WAL and names-log
// appends). Batches rejected with it were NOT applied: the in-memory state
// never runs ahead of the log. The condition is transient — the log was
// rolled back to its pre-append state — so callers may retry (HTTP: 503 +
// Retry-After).
var ErrDurability = errors.New("server: durability failure")

// RecoveryInfo summarizes what a durable tracker's boot recovered.
type RecoveryInfo struct {
	// SnapshotLoaded reports whether a snapshot file was restored.
	SnapshotLoaded bool
	// SnapshotProcessed is the tracker's accepted-action count immediately
	// after the snapshot load (0 without a snapshot).
	SnapshotProcessed int64
	// WALBatches / WALActions count the log records replayed on top.
	WALBatches, WALActions int
}

// durability is the per-tracker durable state, owned — like the tracker
// itself — by the single-writer ingest loop after construction.
type durability struct {
	dir      string
	fs       fault.FS
	clock    fault.Clock
	lock     fault.File // exclusive data-dir flock, held for the tracker's lifetime
	wal      *wal
	walLimit int64
	// namesFile / namesPersisted persist a name-mode tracker's intern table
	// as an append-only log of length-prefixed names in ID order (names.log).
	// Unlike the WAL it is never truncated: it IS the authoritative name→ID
	// mapping, append-only by construction since IDs are dense and stable.
	// Nil for numeric-ID trackers. namesSize is the byte offset after the
	// last successful append (the rollback target); namesBroken records an
	// append whose rollback also failed — junk is on disk, so appends are
	// refused until namesRearm truncates it away.
	namesFile      fault.File
	namesPersisted int
	namesSize      int64
	namesBroken    error

	// snapErr publishes the most recent snapshot failure (reported via
	// /v1/healthz as a degraded-durability signal: the WAL keeps growing
	// and every reboot replays more, so an operator must hear about it;
	// appends failing is surfaced per-request instead). Written only by
	// the ingest loop, read by the HTTP health handler — hence atomic.
	// Holds a string; empty means healthy.
	snapErr atomic.Value
	// snapRetries counts failed snapshot attempts; rearms counts poisoned-
	// WAL recoveries. Loop-written, handler-read.
	snapRetries atomic.Int64
	rearms      atomic.Int64

	// backoff / nextAttempt gate snapshot retries (loop-owned): after a
	// failure no new attempt is made before nextAttempt.
	backoff     time.Duration
	nextAttempt time.Time
	rng         *rand.Rand
}

// recoverTracker rebuilds a tracker from dir (snapshot + WAL replay) and
// returns it with the open durable state. With no prior files it starts
// fresh. A snapshot that exists but fails to load is a hard error: silently
// starting empty would masquerade as data loss.
func recoverTracker(fs fault.FS, clock fault.Clock, dir string, cfg sim.Config, walLimit int64, names *intern.Table) (*sim.Tracker, *durability, RecoveryInfo, error) {
	if fs == nil {
		fs = fault.OS()
	}
	if clock == nil {
		clock = fault.WallClock()
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, RecoveryInfo{}, fmt.Errorf("server: creating data dir: %w", err)
	}
	lock, err := lockDataDir(fs, dir)
	if err != nil {
		return nil, nil, RecoveryInfo{}, err
	}
	recovered := false
	defer func() {
		if !recovered {
			lock.Close() // releases the flock on every error path
		}
	}()
	// A leftover temp snapshot is an interrupted write; the real file (if
	// any) is the authoritative one.
	_ = fs.Remove(filepath.Join(dir, snapshotTempName))

	var (
		tr   *sim.Tracker
		info RecoveryInfo
	)
	snapPath := filepath.Join(dir, snapshotFileName)
	if f, oerr := fs.OpenFile(snapPath, os.O_RDONLY, 0); oerr == nil {
		tr, err = sim.Load(f, cfg)
		f.Close()
		if err != nil {
			return nil, nil, info, fmt.Errorf("server: loading %s: %w", snapPath, err)
		}
		info.SnapshotLoaded = true
		info.SnapshotProcessed = tr.Processed()
	} else if !errors.Is(oerr, os.ErrNotExist) {
		return nil, nil, info, fmt.Errorf("server: opening snapshot: %w", oerr)
	} else if tr, err = sim.New(cfg); err != nil {
		return nil, nil, info, err
	}

	last := tr.LastID()
	info.WALBatches, info.WALActions, err = replayWAL(fs, filepath.Join(dir, walFileName), func(batch []sim.Action) error {
		// Skip records entirely covered by the snapshot (the crash-window
		// leftovers between snapshot rename and WAL truncate). Snapshots are
		// taken at batch boundaries, so coverage is all-or-nothing per
		// record — but "covered" must mean the batch's MAXIMUM ID, not its
		// final element's: a conflict batch (valid prefix applied live, then
		// a rewinding ID, 409) can end on a low ID while its applied prefix
		// lies beyond the snapshot.
		covered := true
		for _, a := range batch {
			if a.ID > last {
				covered = false
				break
			}
		}
		if covered {
			return nil
		}
		if err := tr.ProcessAll(batch); err != nil {
			// Stream-order rejections replay the live outcome (prefix
			// applied, batch aborted, client saw 409) — not a recovery
			// failure. Anything else is.
			if errors.Is(err, sim.ErrNonMonotonicID) || errors.Is(err, sim.ErrBadParent) {
				return nil
			}
			return err
		}
		return nil
	})
	if err != nil {
		tr.Close()
		return nil, nil, info, err
	}

	w, err := openWAL(fs, filepath.Join(dir, walFileName))
	if err != nil {
		tr.Close()
		return nil, nil, info, err
	}
	if walLimit <= 0 {
		walLimit = DefaultSnapshotWALBytes
	}
	d := &durability{
		dir: dir, fs: fs, clock: clock, lock: lock, wal: w, walLimit: walLimit,
		// Deterministic per-boot jitter stream; the seed value is irrelevant
		// to correctness (jitter only de-synchronizes retry storms).
		rng: rand.New(rand.NewSource(clock.Now().UnixNano())),
	}
	if names != nil {
		if err := d.openNames(names); err != nil {
			tr.Close()
			w.close()
			return nil, nil, info, err
		}
	}
	recovered = true
	return tr, d, info, nil
}

// openNames replays names.log into the intern table — restoring the dense
// name→ID mapping the snapshot and WAL reference — and opens the log for
// appending. A torn trailing record (crash mid-append) is truncated away;
// the IDs it would have named cannot appear in the WAL, whose batches are
// only acknowledged after their names are on disk.
func (d *durability) openNames(tb *intern.Table) error {
	path := filepath.Join(d.dir, namesFileName)
	data, err := d.fs.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("server: reading %s: %w", path, err)
	}
	off := 0
	for off < len(data) {
		l, n := binary.Uvarint(data[off:])
		if n <= 0 || off+n+int(l) > len(data) {
			break // torn tail
		}
		tb.Intern(string(data[off+n : off+n+int(l)]))
		off += n + int(l)
	}
	f, err := d.fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("server: opening %s: %w", path, err)
	}
	if err := f.Truncate(int64(off)); err != nil { // drop the torn tail, if any
		f.Close()
		return fmt.Errorf("server: truncating %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("server: seeking %s: %w", path, err)
	}
	d.namesFile = f
	d.namesPersisted = tb.Len()
	d.namesSize = int64(off)
	return nil
}

// logNames appends names interned since the last call (fsync included);
// called by the ingest loop BEFORE the WAL append of the batch that may
// reference them. On failure the batch must not be logged or applied, and
// the partial record is rolled back (truncated) so a retry cannot append
// after junk; a rollback that itself fails marks the names log broken —
// poisoned(), degraded-readonly — until namesRearm truncates it away.
func (d *durability) logNames(tb *intern.Table) error {
	if d.namesBroken != nil {
		return fmt.Errorf("%w: names log unusable after failed rollback: %v", ErrDurability, d.namesBroken)
	}
	fresh := tb.AppendedSince(d.namesPersisted)
	if len(fresh) == 0 {
		return nil
	}
	w := wire.NewWriter(d.namesFile)
	for _, name := range fresh {
		w.Bytes([]byte(name))
	}
	err := w.Err()
	if err == nil {
		err = d.namesFile.Sync()
	}
	if err != nil {
		return d.rollbackNames(fmt.Errorf("%w: names log: %v", ErrDurability, err))
	}
	pos, err := d.namesFile.Seek(0, io.SeekCurrent)
	if err != nil {
		return d.rollbackNames(fmt.Errorf("%w: names log: %v", ErrDurability, err))
	}
	d.namesPersisted += len(fresh)
	d.namesSize = pos
	return nil
}

// rollbackNames restores names.log to its last-good size after a failed
// append and returns cause. If the truncate (or its sync) fails, junk may
// linger at the tail and the log is marked broken until namesRearm.
func (d *durability) rollbackNames(cause error) error {
	if err := d.namesFile.Truncate(d.namesSize); err != nil {
		d.namesBroken = fmt.Errorf("%v; rollback truncate: %v", cause, err)
		return cause
	}
	if err := d.namesFile.Sync(); err != nil {
		d.namesBroken = fmt.Errorf("%v; rollback sync: %v", cause, err)
		return cause
	}
	if _, err := d.namesFile.Seek(d.namesSize, io.SeekStart); err != nil {
		d.namesBroken = fmt.Errorf("%v; rollback seek: %v", cause, err)
		return cause
	}
	return cause
}

// namesRearm recovers a broken names log: reopen the file and truncate it
// back to the last-good size (dropping rollback junk). The in-memory table
// keeps every name — only the not-yet-persisted suffix re-appends on the
// next logNames.
func (d *durability) namesRearm() error {
	_ = d.namesFile.Close()
	path := filepath.Join(d.dir, namesFileName)
	f, err := d.fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("server: names rearm: %w", err)
	}
	if err := f.Truncate(d.namesSize); err != nil {
		f.Close()
		return fmt.Errorf("server: names rearm: %w", err)
	}
	if _, err := f.Seek(d.namesSize, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("server: names rearm: %w", err)
	}
	d.namesFile = f
	d.namesBroken = nil
	return nil
}

// logBatch appends one batch to the WAL; called by the ingest loop before
// applying the batch. On failure the batch must not be applied.
func (d *durability) logBatch(batch []sim.Action) error {
	if err := d.wal.append(batch); err != nil {
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return nil
}

// poisoned reports whether the durable path is unusable (WAL or names log
// holding junk a failed rollback left behind): ingest must stop — the
// degraded-readonly state — until rearm succeeds.
func (d *durability) poisoned() bool {
	return d.wal.broken != nil || d.namesBroken != nil
}

// maybeSnapshot writes a snapshot and truncates the WAL once the log has
// outgrown its threshold, reporting whether a fresh snapshot was published
// (the caller may then collect cold segments the new manifest no longer
// references). force skips the threshold (the graceful-shutdown final
// snapshot). Runs on the ingest loop; tr is safe to use. Failures are
// remembered, not fatal: the WAL keeps every batch, so durability degrades
// to longer replays, never to loss — and retries are paced by capped
// exponential backoff with jitter instead of hammering a sick disk on
// every subsequent batch.
func (d *durability) maybeSnapshot(tr *sim.Tracker, force bool) bool {
	if d.wal.size == 0 {
		return false // the last snapshot (or empty state) already covers everything
	}
	if !force && d.wal.size < d.walLimit {
		return false
	}
	if !force && d.clock.Now().Before(d.nextAttempt) {
		return false // backing off after a recent failure
	}
	if err := d.writeSnapshot(tr); err != nil {
		d.snapshotFailed(err)
		return false
	}
	if err := d.wal.reset(); err != nil {
		d.snapshotFailed(err)
		// The snapshot itself is published and covering; only the truncate
		// failed. Still report success so segment GC can run — the WAL
		// retry path owns the rest.
		return true
	}
	d.snapshotSucceeded()
	return true
}

// snapshotFailed records a failed snapshot attempt and schedules the next
// one: exponential backoff doubling from base to max, jittered to ±50% so
// a fleet of trackers degraded by the same disk does not retry in lockstep.
func (d *durability) snapshotFailed(err error) {
	d.snapErr.Store(err.Error())
	d.snapRetries.Add(1)
	if d.backoff == 0 {
		d.backoff = snapshotBackoffBase
	} else if d.backoff < snapshotBackoffMax {
		d.backoff *= 2
		if d.backoff > snapshotBackoffMax {
			d.backoff = snapshotBackoffMax
		}
	}
	wait := d.backoff/2 + time.Duration(d.rng.Int63n(int64(d.backoff/2)+1))
	d.nextAttempt = d.clock.Now().Add(wait)
}

// snapshotSucceeded clears the degraded-durability signal and backoff.
func (d *durability) snapshotSucceeded() {
	d.snapErr.Store("")
	d.backoff = 0
	d.nextAttempt = time.Time{}
}

// rearm recovers a poisoned durable path, on the ingest loop: persist a
// fresh snapshot covering every acknowledged batch, then recreate the WAL
// empty (dropping rollback junk) and repair the names log. Returns true
// when the tracker is fully durable again. Attempts respect the snapshot
// backoff schedule so a still-sick disk is probed, not hammered.
func (d *durability) rearm(tr *sim.Tracker) bool {
	if d.clock.Now().Before(d.nextAttempt) {
		return false
	}
	if err := d.writeSnapshot(tr); err != nil {
		d.snapshotFailed(err)
		return false
	}
	if d.wal.broken != nil {
		if err := d.wal.rearm(); err != nil {
			d.snapshotFailed(err)
			return false
		}
	} else if err := d.wal.reset(); err != nil {
		// Not poisoned, but the snapshot now covers the log: truncate it.
		d.snapshotFailed(err)
		return false
	}
	if d.namesBroken != nil {
		if err := d.namesRearm(); err != nil {
			d.snapshotFailed(err)
			return false
		}
	}
	d.snapshotSucceeded()
	d.rearms.Add(1)
	return true
}

// snapshotErr returns the most recent snapshot failure message, or "" when
// the durable path is healthy. Safe to call from any goroutine.
func (d *durability) snapshotErr() string {
	s, _ := d.snapErr.Load().(string)
	return s
}

// writeSnapshot persists tr via the temp-file/fsync/rename dance (see
// dataio.AtomicWriteFile), so snapshot.sim2 always names a complete
// snapshot.
func (d *durability) writeSnapshot(tr *sim.Tracker) error {
	path := filepath.Join(d.dir, snapshotFileName)
	if err := dataio.AtomicWriteFile(d.fs, path, tr.SaveTo); err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	return nil
}

// close releases the WAL and names-log handles and the data-dir lock.
func (d *durability) close() {
	if d.wal != nil {
		d.wal.close()
	}
	if d.namesFile != nil {
		d.namesFile.Close()
	}
	if d.lock != nil {
		d.lock.Close()
	}
}
