package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/intern"
	"repro/internal/wire"
	"repro/sim"
)

// Durability of a served tracker: an in-memory hot path paired with a
// write-ahead log and periodic SIM2 snapshots, the standard
// snapshot-plus-log recovery design of production stream systems.
//
// Layout of a tracker's data directory (<registry data dir>/<name>/):
//
//	snapshot.sim2       latest complete snapshot (sim.Tracker.SaveTo)
//	snapshot.sim2.tmp   in-flight snapshot write; never loaded
//	wal.log             batches applied since that snapshot (see wal.go)
//
// Write path (all on the tracker's single-writer ingest loop): every batch
// is appended to the WAL and fsynced BEFORE it is applied and the refreshed
// snapshot published — an acknowledged action is on disk, so a kill -9
// mid-ingest loses nothing acknowledged. Once the WAL exceeds its size
// threshold the loop writes a fresh snapshot to snapshot.sim2.tmp, fsyncs,
// atomically renames it over snapshot.sim2 and truncates the WAL. A crash
// between rename and truncate only leaves WAL entries the snapshot already
// covers; recovery skips them by ID.
//
// Recovery (tracker construction): load snapshot.sim2 if present, then
// replay wal.log — skipping batches whose newest ID is not beyond the
// snapshot — through the same ProcessAll path the live loop uses, so a
// batch that was partially rejected live (stream-order conflict) replays to
// the identical partially-applied state. A torn WAL tail (the crash's
// unacknowledged in-flight append) is dropped by the frame parser.
const (
	snapshotFileName = "snapshot.sim2"
	snapshotTempName = "snapshot.sim2.tmp"
	walFileName      = "wal.log"
	namesFileName    = "names.log"
	lockFileName     = ".lock"
)

// DefaultSnapshotWALBytes is the WAL size that triggers a snapshot+truncate
// when the Spec does not set one.
const DefaultSnapshotWALBytes int64 = 4 << 20

// ErrDurability wraps disk failures of the durable path (WAL appends).
// Batches rejected with it were NOT applied: the in-memory state never runs
// ahead of the log.
var ErrDurability = errors.New("server: durability failure")

// RecoveryInfo summarizes what a durable tracker's boot recovered.
type RecoveryInfo struct {
	// SnapshotLoaded reports whether a snapshot file was restored.
	SnapshotLoaded bool
	// SnapshotProcessed is the tracker's accepted-action count immediately
	// after the snapshot load (0 without a snapshot).
	SnapshotProcessed int64
	// WALBatches / WALActions count the log records replayed on top.
	WALBatches, WALActions int
}

// durability is the per-tracker durable state, owned — like the tracker
// itself — by the single-writer ingest loop after construction.
type durability struct {
	dir      string
	lock     *os.File // exclusive data-dir flock, held for the tracker's lifetime
	wal      *wal
	walLimit int64
	// namesFile / namesPersisted persist a name-mode tracker's intern table
	// as an append-only log of length-prefixed names in ID order (names.log).
	// Unlike the WAL it is never truncated: it IS the authoritative name→ID
	// mapping, append-only by construction since IDs are dense and stable.
	// Nil for numeric-ID trackers.
	namesFile      *os.File
	namesPersisted int
	// snapErr publishes the most recent snapshot failure (reported via
	// /v1/healthz as a degraded-durability signal: the WAL keeps growing
	// and every reboot replays more, so an operator must hear about it;
	// appends failing is surfaced per-request instead). Written only by
	// the ingest loop, read by the HTTP health handler — hence atomic.
	// Holds a string; empty means healthy.
	snapErr atomic.Value
}

// recoverTracker rebuilds a tracker from dir (snapshot + WAL replay) and
// returns it with the open durable state. With no prior files it starts
// fresh. A snapshot that exists but fails to load is a hard error: silently
// starting empty would masquerade as data loss.
func recoverTracker(dir string, cfg sim.Config, walLimit int64, names *intern.Table) (*sim.Tracker, *durability, RecoveryInfo, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, RecoveryInfo{}, fmt.Errorf("server: creating data dir: %w", err)
	}
	lock, err := lockDataDir(dir)
	if err != nil {
		return nil, nil, RecoveryInfo{}, err
	}
	recovered := false
	defer func() {
		if !recovered {
			lock.Close() // releases the flock on every error path
		}
	}()
	// A leftover temp snapshot is an interrupted write; the real file (if
	// any) is the authoritative one.
	_ = os.Remove(filepath.Join(dir, snapshotTempName))

	var (
		tr   *sim.Tracker
		info RecoveryInfo
	)
	snapPath := filepath.Join(dir, snapshotFileName)
	if f, oerr := os.Open(snapPath); oerr == nil {
		tr, err = sim.Load(f, cfg)
		f.Close()
		if err != nil {
			return nil, nil, info, fmt.Errorf("server: loading %s: %w", snapPath, err)
		}
		info.SnapshotLoaded = true
		info.SnapshotProcessed = tr.Processed()
	} else if !errors.Is(oerr, os.ErrNotExist) {
		return nil, nil, info, fmt.Errorf("server: opening snapshot: %w", oerr)
	} else if tr, err = sim.New(cfg); err != nil {
		return nil, nil, info, err
	}

	last := tr.LastID()
	info.WALBatches, info.WALActions, err = replayWAL(filepath.Join(dir, walFileName), func(batch []sim.Action) error {
		// Skip records entirely covered by the snapshot (the crash-window
		// leftovers between snapshot rename and WAL truncate). Snapshots are
		// taken at batch boundaries, so coverage is all-or-nothing per
		// record — but "covered" must mean the batch's MAXIMUM ID, not its
		// final element's: a conflict batch (valid prefix applied live, then
		// a rewinding ID, 409) can end on a low ID while its applied prefix
		// lies beyond the snapshot.
		covered := true
		for _, a := range batch {
			if a.ID > last {
				covered = false
				break
			}
		}
		if covered {
			return nil
		}
		if err := tr.ProcessAll(batch); err != nil {
			// Stream-order rejections replay the live outcome (prefix
			// applied, batch aborted, client saw 409) — not a recovery
			// failure. Anything else is.
			if errors.Is(err, sim.ErrNonMonotonicID) || errors.Is(err, sim.ErrBadParent) {
				return nil
			}
			return err
		}
		return nil
	})
	if err != nil {
		tr.Close()
		return nil, nil, info, err
	}

	w, err := openWAL(filepath.Join(dir, walFileName))
	if err != nil {
		tr.Close()
		return nil, nil, info, err
	}
	if walLimit <= 0 {
		walLimit = DefaultSnapshotWALBytes
	}
	d := &durability{dir: dir, lock: lock, wal: w, walLimit: walLimit}
	if names != nil {
		if err := d.openNames(names); err != nil {
			tr.Close()
			w.close()
			return nil, nil, info, err
		}
	}
	recovered = true
	return tr, d, info, nil
}

// openNames replays names.log into the intern table — restoring the dense
// name→ID mapping the snapshot and WAL reference — and opens the log for
// appending. A torn trailing record (crash mid-append) is truncated away;
// the IDs it would have named cannot appear in the WAL, whose batches are
// only acknowledged after their names are on disk.
func (d *durability) openNames(tb *intern.Table) error {
	path := filepath.Join(d.dir, namesFileName)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("server: reading %s: %w", path, err)
	}
	off := 0
	for off < len(data) {
		l, n := binary.Uvarint(data[off:])
		if n <= 0 || off+n+int(l) > len(data) {
			break // torn tail
		}
		tb.Intern(string(data[off+n : off+n+int(l)]))
		off += n + int(l)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("server: opening %s: %w", path, err)
	}
	if err := f.Truncate(int64(off)); err != nil { // drop the torn tail, if any
		f.Close()
		return fmt.Errorf("server: truncating %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return fmt.Errorf("server: seeking %s: %w", path, err)
	}
	d.namesFile = f
	d.namesPersisted = tb.Len()
	return nil
}

// logNames appends names interned since the last call (fsync included);
// called by the ingest loop BEFORE the WAL append of the batch that may
// reference them. On failure the batch must not be logged or applied.
func (d *durability) logNames(tb *intern.Table) error {
	fresh := tb.AppendedSince(d.namesPersisted)
	if len(fresh) == 0 {
		return nil
	}
	w := wire.NewWriter(d.namesFile)
	for _, name := range fresh {
		w.Bytes([]byte(name))
	}
	if err := w.Err(); err != nil {
		return fmt.Errorf("%w: names log: %v", ErrDurability, err)
	}
	if err := d.namesFile.Sync(); err != nil {
		return fmt.Errorf("%w: names log sync: %v", ErrDurability, err)
	}
	d.namesPersisted += len(fresh)
	return nil
}

// logBatch appends one batch to the WAL; called by the ingest loop before
// applying the batch. On failure the batch must not be applied.
func (d *durability) logBatch(batch []sim.Action) error {
	if err := d.wal.append(batch); err != nil {
		return fmt.Errorf("%w: %v", ErrDurability, err)
	}
	return nil
}

// maybeSnapshot writes a snapshot and truncates the WAL once the log has
// outgrown its threshold. force skips the threshold (the graceful-shutdown
// final snapshot). Runs on the ingest loop; tr is safe to use. Failures are
// remembered, not fatal: the WAL keeps every batch, so durability degrades
// to longer replays, never to loss.
func (d *durability) maybeSnapshot(tr *sim.Tracker, force bool) {
	if d.wal.size == 0 {
		return // the last snapshot (or empty state) already covers everything
	}
	if !force && d.wal.size < d.walLimit {
		return
	}
	if err := d.writeSnapshot(tr); err != nil {
		d.snapErr.Store(err.Error())
		return
	}
	if err := d.wal.reset(); err != nil {
		d.snapErr.Store(err.Error())
		return
	}
	d.snapErr.Store("")
}

// snapshotErr returns the most recent snapshot failure message, or "" when
// the durable path is healthy. Safe to call from any goroutine.
func (d *durability) snapshotErr() string {
	s, _ := d.snapErr.Load().(string)
	return s
}

// writeSnapshot persists tr via the temp-file/fsync/rename dance, so
// snapshot.sim2 always names a complete snapshot.
func (d *durability) writeSnapshot(tr *sim.Tracker) error {
	tmp := filepath.Join(d.dir, snapshotTempName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("server: snapshot: %w", err)
	}
	if err := tr.SaveTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("server: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("server: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: snapshot close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(d.dir, snapshotFileName)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("server: snapshot rename: %w", err)
	}
	return nil
}

// close releases the WAL and names-log handles and the data-dir lock.
func (d *durability) close() {
	if d.wal != nil {
		d.wal.close()
	}
	if d.namesFile != nil {
		d.namesFile.Close()
	}
	if d.lock != nil {
		d.lock.Close()
	}
}
