// Package server is the long-lived serving layer over the sim library: the
// engine behind cmd/simserve. It turns the single-goroutine sim.Tracker
// into a system that ingests a social stream and answers queries
// concurrently, the "real-time" operating mode the paper targets.
//
// # Architecture
//
// A Registry owns named Tracked instances. Each Tracked wraps one
// sim.Tracker behind a single-writer ingest goroutine fed by a bounded
// command channel: POST bodies, replay batches and read closures all enter
// that queue, so the tracker only ever sees one goroutine and ingestion
// order is total. A full queue blocks producers — backpressure, not load
// shedding. After every applied command the loop publishes an immutable
// sim.Snapshot through an atomic pointer; the GET handlers for seeds,
// value, window, checkpoints and stats read only that snapshot and
// therefore never contend with ingestion. Queries that need non-precomputed
// state (per-user influence sets) run as closures on the ingest loop itself
// (Tracked.Query), serialized with the writes. Closing a Tracked first
// rejects new work, then drains everything already queued, then releases
// the tracker's worker goroutines — the graceful-drain path wired to
// SIGTERM in cmd/simserve.
//
// # HTTP API
//
//	POST /v1/trackers/{name}/actions    NDJSON body -> IngestResponse
//	GET  /v1/trackers                   ListResponse
//	GET  /v1/trackers/{name}            sim.Snapshot (the full read snapshot)
//	GET  /v1/trackers/{name}/seeds      SeedsResponse
//	GET  /v1/trackers/{name}/value      ValueResponse
//	GET  /v1/trackers/{name}/window     WindowResponse
//	GET  /v1/trackers/{name}/checkpoints CheckpointsResponse
//	GET  /v1/trackers/{name}/stats      StatsResponse
//	GET  /v1/trackers/{name}/influence?user=U InfluenceResponse
//	GET  /metrics                       text counters (see metrics.go)
//	GET  /healthz                       "ok"
//
// Ingest bodies are NDJSON — one {"id":…,"user":…,"parent":…} object per
// line, "parent" omitted or -1 for roots (internal/dataio). A bulk body is
// applied as one batch through sim.Tracker.ProcessAll, riding the batched
// ingestion path when the tracker's spec sets "batch" > 1.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/dataio"
	"repro/sim"
)

// DefaultMaxBodyBytes caps an ingest request body (64 MiB, roughly 3M
// NDJSON actions).
const DefaultMaxBodyBytes = 64 << 20

// Version is the build version reported by GET /v1/healthz and the
// simserve -version flag. Override at link time:
//
//	go build -ldflags "-X repro/internal/server.Version=v1.2.3" ./cmd/simserve
var Version = "dev"

// Server is the HTTP front of a Registry. It implements http.Handler.
type Server struct {
	reg     *Registry
	mux     *http.ServeMux
	started time.Time

	// MaxBodyBytes caps ingest request bodies; 0 means DefaultMaxBodyBytes.
	// Set before serving.
	MaxBodyBytes int64
}

// New returns a Server over reg.
func New(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("POST /v1/trackers/{name}/actions", s.handleIngest)
	s.mux.HandleFunc("GET /v1/trackers", s.handleList)
	s.mux.HandleFunc("GET /v1/trackers/{name}", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/trackers/{name}/seeds", s.handleSeeds)
	s.mux.HandleFunc("GET /v1/trackers/{name}/value", s.handleValue)
	s.mux.HandleFunc("GET /v1/trackers/{name}/window", s.handleWindow)
	s.mux.HandleFunc("GET /v1/trackers/{name}/checkpoints", s.handleCheckpoints)
	s.mux.HandleFunc("GET /v1/trackers/{name}/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/trackers/{name}/influence", s.handleInfluence)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return s
}

// handleHealth serves the structured probe endpoint (the plain /healthz
// stays as the minimal liveness check). Status degrades when a durable
// tracker's snapshot writes are failing: ingestion still works and the WAL
// keeps every batch, but the log grows unbounded until the condition —
// reported per tracker in "degraded" — clears.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	names := s.reg.Names()
	var degraded map[string]string
	for _, n := range names {
		if t, ok := s.reg.Get(n); ok {
			if msg := t.DurabilityError(); msg != "" {
				if degraded == nil {
					degraded = make(map[string]string)
				}
				degraded[n] = msg
			}
		}
	}
	status := "ok"
	if len(degraded) > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        status,
		Version:       Version,
		GoVersion:     runtime.Version(),
		Trackers:      len(names),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Durable:       s.reg.DataDir() != "",
		Degraded:      degraded,
	})
}

// ServeHTTP dispatches to the v1 API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry returns the registry the server fronts.
func (s *Server) Registry() *Registry { return s.reg }

// Close drains and stops every tracker (see Registry.Close). Call after the
// HTTP listener has shut down so in-flight requests finish first.
func (s *Server) Close() error { return s.reg.Close() }

// writeJSON emits v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// writeError emits an ErrorResponse.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// tracked resolves the {name} path value, answering 404 when unknown.
func (s *Server) tracked(w http.ResponseWriter, r *http.Request) (*Tracked, bool) {
	name := r.PathValue("name")
	t, ok := s.reg.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown tracker %q", name)
		return nil, false
	}
	return t, true
}

// handleIngest parses an NDJSON body and applies it as one batch through
// the tracker's single-writer loop. Responses: 200 IngestResponse, 400 for
// malformed NDJSON, 409 for stream-order violations (non-monotonic IDs,
// future parents), 503 while draining.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	maxBody := s.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	body := http.MaxBytesReader(w, r.Body, maxBody)
	var batch []sim.Action
	if err := dataio.ReadNDJSON(body, func(a sim.Action) bool {
		batch = append(batch, a)
		return true
	}); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	processed := t.Snapshot().Processed
	if len(batch) > 0 {
		var err error
		processed, err = t.Submit(r.Context(), batch)
		if err != nil {
			switch {
			case errors.Is(err, ErrClosed),
				errors.Is(err, context.Canceled),
				errors.Is(err, context.DeadlineExceeded):
				writeError(w, http.StatusServiceUnavailable, "%v", err)
			case errors.Is(err, ErrDurability):
				// WAL append failed: the batch was rejected unapplied so
				// the log never lags the tracker. Retryable server fault.
				writeError(w, http.StatusInternalServerError, "%v", err)
			default:
				// Stream-order violation: the batch aborted at the
				// offending action; everything before it is applied.
				writeError(w, http.StatusConflict, "%v", err)
			}
			return
		}
	}
	writeJSON(w, http.StatusOK, IngestResponse{
		Accepted:  len(batch),
		Processed: processed,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	resp := ListResponse{Trackers: []TrackerInfo{}}
	for _, name := range s.reg.Names() {
		t, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		resp.Trackers = append(resp.Trackers, TrackerInfo{
			Name:      name,
			Spec:      t.Spec(),
			Processed: t.Snapshot().Processed,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if t, ok := s.tracked(w, r); ok {
		writeJSON(w, http.StatusOK, t.Snapshot())
	}
}

func (s *Server) handleSeeds(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	snap := t.Snapshot()
	writeJSON(w, http.StatusOK, SeedsResponse{
		Seeds:       snap.Seeds,
		Value:       snap.Value,
		WindowStart: snap.WindowStart,
		Processed:   snap.Processed,
	})
}

func (s *Server) handleValue(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	snap := t.Snapshot()
	writeJSON(w, http.StatusOK, ValueResponse{Value: snap.Value, Processed: snap.Processed})
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	snap := t.Snapshot()
	writeJSON(w, http.StatusOK, WindowResponse{WindowStart: snap.WindowStart, Processed: snap.Processed})
}

func (s *Server) handleCheckpoints(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	snap := t.Snapshot()
	writeJSON(w, http.StatusOK, CheckpointsResponse{
		Checkpoints: snap.Checkpoints,
		Starts:      snap.CheckpointStarts,
		Values:      snap.CheckpointValues,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	snap := t.Snapshot()
	depth, capacity := t.QueueDepth()
	writeJSON(w, http.StatusOK, StatsResponse{
		Stats:              snap.Stats(),
		CheckpointsCreated: snap.CheckpointsCreated,
		CheckpointsDeleted: snap.CheckpointsDeleted,
		QueueDepth:         depth,
		QueueCapacity:      capacity,
	})
}

// handleInfluence serves per-user influence sets. Unlike the other reads
// this needs the live stream index, so it runs as a closure on the ingest
// loop, serialized after everything already queued.
func (s *Server) handleInfluence(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	userParam := r.URL.Query().Get("user")
	u64, err := strconv.ParseUint(userParam, 10, 32)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad or missing user parameter %q", userParam)
		return
	}
	u := sim.UserID(u64)
	var resp InfluenceResponse
	qErr := t.Query(r.Context(), func(tr *sim.Tracker) {
		resp = InfluenceResponse{
			User:        u,
			Influenced:  tr.InfluenceSet(u),
			WindowStart: tr.WindowStart(),
		}
		if resp.Influenced == nil {
			resp.Influenced = []sim.UserID{}
		}
		resp.Count = len(resp.Influenced)
	})
	if qErr != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", qErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
