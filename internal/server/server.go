// Package server is the long-lived serving layer over the sim library: the
// engine behind cmd/simserve. It turns the single-goroutine sim.Tracker
// into a system that ingests a social stream and answers queries
// concurrently, the "real-time" operating mode the paper targets.
//
// # Architecture
//
// A Registry owns named Tracked instances. Each Tracked wraps one
// sim.Tracker behind a single-writer ingest goroutine fed by a bounded
// command channel: POST bodies, replay batches and read closures all enter
// that queue, so the tracker only ever sees one goroutine and ingestion
// order is total. A full queue applies backpressure briefly, then admission
// control sheds the request (ErrOverloaded → 429) once it has waited past
// the tracker's enqueue deadline, so a wedged loop cannot wedge every HTTP
// handler goroutine with it. After every applied command the loop
// publishes an immutable
// sim.Snapshot through an atomic pointer; the GET handlers for seeds,
// value, window, checkpoints and stats — and the relational /query endpoint
// (package query) — read only that snapshot and therefore never contend
// with ingestion. Queries that need non-precomputed state (per-user
// influence sets for arbitrary users) run as closures on the ingest loop
// itself (Tracked.Query), serialized with the writes. Closing a Tracked
// first rejects new work, then drains everything already queued, then
// releases the tracker's worker goroutines — the graceful-drain path wired
// to SIGTERM in cmd/simserve.
//
// Name-mode trackers (api.Spec.Names) accept external string user names on
// ingest, interned to dense IDs (package intern) before the batch enters
// the queue; reads resolve IDs back through the same table.
//
// # HTTP API
//
// The wire surface — endpoint list, request/response DTOs, the error
// contract ({"error": ..., "code": ...} on every non-2xx) and a typed
// client — is package api. This package declares no wire types of its own.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/api"
	"repro/internal/dataio"
	"repro/query"
	"repro/sim"
)

// DefaultMaxBodyBytes caps an ingest request body (64 MiB, roughly 3M
// NDJSON actions).
const DefaultMaxBodyBytes = 64 << 20

// DefaultQueryRowLimit caps the rows a /query response returns when the
// request does not set its own limit. Truncation is reported in the
// response, never an error.
const DefaultQueryRowLimit = 10000

// maxQueryBodyBytes caps a /query request body; plans are small.
const maxQueryBodyBytes = 1 << 20

// Version is the build version reported by GET /v1/healthz and the
// simserve -version flag. Override at link time:
//
//	go build -ldflags "-X repro/internal/server.Version=v1.2.3" ./cmd/simserve
var Version = "dev"

// Server is the HTTP front of a Registry. It implements http.Handler.
type Server struct {
	reg     *Registry
	mux     *http.ServeMux
	started time.Time

	// MaxBodyBytes caps ingest request bodies; 0 means DefaultMaxBodyBytes.
	// Set before serving.
	MaxBodyBytes int64
}

// New returns a Server over reg.
func New(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), started: time.Now()}
	s.mux.HandleFunc("POST /v1/trackers/{name}/actions", s.handleIngest)
	s.mux.HandleFunc("POST /v1/trackers/{name}/query", s.handleQuery)
	s.mux.HandleFunc("GET /v1/trackers", s.handleList)
	s.mux.HandleFunc("GET /v1/trackers/{name}", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/trackers/{name}/seeds", s.handleSeeds)
	s.mux.HandleFunc("GET /v1/trackers/{name}/value", s.handleValue)
	s.mux.HandleFunc("GET /v1/trackers/{name}/window", s.handleWindow)
	s.mux.HandleFunc("GET /v1/trackers/{name}/checkpoints", s.handleCheckpoints)
	s.mux.HandleFunc("GET /v1/trackers/{name}/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/trackers/{name}/metrics", s.handleTrackerMetrics)
	s.mux.HandleFunc("GET /v1/trackers/{name}/influence", s.handleInfluence)
	s.mux.HandleFunc("GET /v1/trackers/{name}/candidates", s.handleCandidates)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return s
}

// handleHealth serves the structured probe endpoint (the plain /healthz
// stays as the minimal liveness check). Status degrades when a durable
// tracker's snapshot writes are failing (ingestion still works, the WAL
// keeps every batch, but the log grows until the condition clears) or when
// a tracker's durability path is poisoned outright and it is serving in
// degraded-readonly mode; per-tracker detail lives in "degraded" (latest
// failure message) and "states" (serving state).
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	names := s.reg.Names()
	var degraded map[string]string
	var states map[string]string
	var memory map[string]api.TrackerMemory
	for _, n := range names {
		t, ok := s.reg.Get(n)
		if !ok {
			continue
		}
		if msg := t.DurabilityError(); msg != "" {
			if degraded == nil {
				degraded = make(map[string]string)
			}
			degraded[n] = msg
		}
		if st := t.State(); st != StateOK {
			if states == nil {
				states = make(map[string]string)
			}
			states[n] = st.String()
		}
		// Report memory facts for trackers running a tiered window (spills
		// observed or cold state held) so a probe can watch residency.
		if snap := t.Snapshot(); snap.Spills > 0 || snap.ColdSegments > 0 || snap.ColdUsers > 0 {
			if memory == nil {
				memory = make(map[string]api.TrackerMemory)
			}
			memory[n] = api.TrackerMemory{
				ResidentBytes: snap.ResidentBytes,
				ColdSegments:  snap.ColdSegments,
				ColdFaults:    snap.ColdFaults,
			}
		}
	}
	refused := s.reg.Refused()
	status := "ok"
	if len(degraded) > 0 || len(states) > 0 || len(refused) > 0 {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, api.HealthResponse{
		Status:        status,
		Version:       Version,
		GoVersion:     runtime.Version(),
		Trackers:      len(names),
		UptimeSeconds: time.Since(s.started).Seconds(),
		Durable:       s.reg.DataDir() != "",
		Degraded:      degraded,
		States:        states,
		Refused:       refused,
		Memory:        memory,
	})
}

// handleTrackerMetrics serves one tracker's self-healing and admission
// counters: serving state, snapshot retry / WAL re-arm / shed totals and
// the queue high-water mark. The JSON sibling of the Prometheus /metrics
// endpoint, for scripts and tests that want typed access.
func (s *Server) handleTrackerMetrics(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	retries, rearms, shed, highWater := t.Counters()
	depth, capacity := t.QueueDepth()
	snap := t.Snapshot()
	resp := api.TrackerMetricsResponse{
		State:               t.State().String(),
		SnapshotRetries:     retries,
		WALRearms:           rearms,
		ShedRequests:        shed,
		QueueDepthHighWater: highWater,
		QueueDepth:          depth,
		QueueCapacity:       capacity,
		DurabilityError:     t.DurabilityError(),
		ResidentBytes:       snap.ResidentBytes,
		HotLogBytes:         snap.HotLogBytes,
		ColdLogBytes:        snap.ColdLogBytes,
		ColdUsers:           snap.ColdUsers,
		ColdSegments:        snap.ColdSegments,
		Spills:              snap.Spills,
		ColdFaults:          snap.ColdFaults,
	}
	if info, durable := t.Recovery(); durable {
		resp.RecoveredSnapshot = info.SnapshotLoaded
		resp.RecoveredSnapshotProcessed = info.SnapshotProcessed
		resp.RecoveredWALBatches = info.WALBatches
		resp.RecoveredWALActions = info.WALActions
	}
	writeJSON(w, http.StatusOK, resp)
}

// ServeHTTP dispatches to the v1 API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Registry returns the registry the server fronts.
func (s *Server) Registry() *Registry { return s.reg }

// Close drains and stops every tracker (see Registry.Close). Call after the
// HTTP listener has shut down so in-flight requests finish first.
func (s *Server) Close() error { return s.reg.Close() }

// writeJSON emits v with status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// writeError emits the api.ErrorResponse envelope: every non-2xx body is
// {"error": ..., "code": <the HTTP status>}.
func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, api.ErrorResponse{Error: fmt.Sprintf(format, args...), Code: code})
}

// retryAfterHint is the Retry-After value (seconds) sent with 429 and 503
// responses. Coarse on purpose: it tells well-behaved clients to back off,
// not when recovery will actually finish.
const retryAfterHint = "1"

// writeRetryable emits a 429/503 with a Retry-After header, the signal
// that the request was NOT applied and may safely be retried.
func writeRetryable(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Retry-After", retryAfterHint)
	writeError(w, code, format, args...)
}

// tracked resolves the {name} path value, answering 404 when unknown and
// 503 — with the startup refusal reason — for trackers the registry refused
// to serve (Registry.Refuse), so clients see the same story /v1/healthz
// tells instead of a misleading "unknown tracker".
func (s *Server) tracked(w http.ResponseWriter, r *http.Request) (*Tracked, bool) {
	name := r.PathValue("name")
	t, ok := s.reg.Get(name)
	if !ok {
		if reason, refused := s.reg.RefusedReason(name); refused {
			writeError(w, http.StatusServiceUnavailable, "tracker %q refused at startup: %s", name, reason)
			return nil, false
		}
		writeError(w, http.StatusNotFound, "unknown tracker %q", name)
		return nil, false
	}
	return t, true
}

// handleIngest parses an NDJSON body and applies it as one batch through
// the tracker's single-writer loop. On name-mode trackers the "user" field
// is a string name, interned here — concurrently safe — so the loop only
// ever sees dense IDs. Responses: 200 IngestResponse, 400 for malformed
// NDJSON (including a numeric user on a name-mode tracker and vice versa),
// 409 for stream-order violations (non-monotonic IDs, future parents), 413
// over the body cap, 429 when admission control sheds the request, 503
// while draining, after a WAL append failure, or while the tracker is in
// degraded-readonly mode — all three 503 causes guarantee the batch was
// not applied, so retrying is safe.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	if t.State() == StateDegradedReadOnly {
		// Fast path: no point parsing megabytes of NDJSON that the loop
		// will refuse. Reads stay up; ingest resumes after the re-arm.
		writeRetryable(w, http.StatusServiceUnavailable, "%v", ErrReadOnly)
		return
	}
	maxBody := s.MaxBodyBytes
	if maxBody <= 0 {
		maxBody = DefaultMaxBodyBytes
	}
	body := http.MaxBytesReader(w, r.Body, maxBody)
	var batch []sim.Action
	var err error
	if tb := t.Names(); tb != nil {
		err = dataio.ReadNDJSONNamed(body, func(a dataio.NamedAction) bool {
			batch = append(batch, sim.Action{
				ID:     a.ID,
				User:   sim.UserID(tb.Intern(a.User)),
				Parent: a.Parent,
			})
			return true
		})
	} else {
		err = dataio.ReadNDJSON(body, func(a sim.Action) bool {
			batch = append(batch, a)
			return true
		})
	}
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooLarge.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	processed := t.Snapshot().Processed
	if len(batch) > 0 {
		processed, err = t.Submit(r.Context(), batch)
		if err != nil {
			switch {
			case errors.Is(err, ErrOverloaded):
				// Admission control: the queue stayed full past the
				// enqueue deadline. Shed, not applied — back off and retry.
				writeRetryable(w, http.StatusTooManyRequests, "%v", err)
			case errors.Is(err, ErrReadOnly):
				// Degraded-readonly: the durability path is poisoned.
				// Rejected unapplied; the tracker re-arms itself when the
				// disk heals.
				writeRetryable(w, http.StatusServiceUnavailable, "%v", err)
			case errors.Is(err, ErrDurability):
				// WAL append failed: the batch was rejected unapplied so
				// the log never lags the tracker. Retryable server fault.
				writeRetryable(w, http.StatusServiceUnavailable, "%v", err)
			case errors.Is(err, ErrClosed),
				errors.Is(err, context.Canceled),
				errors.Is(err, context.DeadlineExceeded):
				writeError(w, http.StatusServiceUnavailable, "%v", err)
			default:
				// Stream-order violation: the batch aborted at the
				// offending action; everything before it is applied.
				writeError(w, http.StatusConflict, "%v", err)
			}
			return
		}
	}
	writeJSON(w, http.StatusOK, api.IngestResponse{
		Accepted:  len(batch),
		Processed: processed,
	})
}

// handleQuery executes a relational plan (package query) against the
// tracker's published snapshot — and, for window-compare sources, the
// previously published one. Execution never touches the ingest loop or the
// live tracker: a query of any cost runs concurrently with ingestion.
// Responses: 200 QueryResponse, 400 for an undecodable body or a plan that
// fails compilation (unknown source/op/column, bad comparator).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBodyBytes))
	dec.DisallowUnknownFields()
	var req api.QueryRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad query request: %v", err)
		return
	}
	if req.Limit < 0 {
		writeError(w, http.StatusBadRequest, "bad query request: negative limit %d", req.Limit)
		return
	}
	limit := req.Limit
	if limit == 0 || limit > DefaultQueryRowLimit {
		limit = DefaultQueryRowLimit
	}
	snap := t.Snapshot()
	env := query.Env{Current: snap, Previous: t.PrevSnapshot()}
	if tb := t.Names(); tb != nil {
		env.Name = tb.Name
	}
	rel, err := req.Plan.Open(env)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	rows, truncated := query.Collect(rel, limit)
	if rows == nil {
		rows = []query.Row{}
	}
	writeJSON(w, http.StatusOK, api.QueryResponse{
		Columns:     []string(rel.Schema()),
		Rows:        rows,
		Truncated:   truncated,
		Processed:   snap.Processed,
		WindowStart: snap.WindowStart,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	resp := api.ListResponse{Trackers: []api.TrackerInfo{}}
	for _, name := range s.reg.Names() {
		t, ok := s.reg.Get(name)
		if !ok {
			continue
		}
		resp.Trackers = append(resp.Trackers, api.TrackerInfo{
			Name:      name,
			Spec:      t.Spec(),
			Processed: t.Snapshot().Processed,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if t, ok := s.tracked(w, r); ok {
		writeJSON(w, http.StatusOK, t.Snapshot())
	}
}

func (s *Server) handleSeeds(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	snap := t.Snapshot()
	resp := api.SeedsResponse{
		Seeds:       snap.Seeds,
		Value:       snap.Value,
		WindowStart: snap.WindowStart,
		Processed:   snap.Processed,
	}
	if tb := t.Names(); tb != nil {
		resp.Names = make([]string, len(snap.Seeds))
		for i, u := range snap.Seeds {
			resp.Names[i], _ = tb.Name(uint32(u))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleValue(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	snap := t.Snapshot()
	writeJSON(w, http.StatusOK, api.ValueResponse{Value: snap.Value, Processed: snap.Processed})
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	snap := t.Snapshot()
	writeJSON(w, http.StatusOK, api.WindowResponse{WindowStart: snap.WindowStart, Processed: snap.Processed})
}

func (s *Server) handleCheckpoints(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	snap := t.Snapshot()
	writeJSON(w, http.StatusOK, api.CheckpointsResponse{
		Checkpoints: snap.Checkpoints,
		Starts:      snap.CheckpointStarts,
		Values:      snap.CheckpointValues,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	snap := t.Snapshot()
	depth, capacity := t.QueueDepth()
	writeJSON(w, http.StatusOK, api.StatsResponse{
		Stats:              snap.Stats(),
		CheckpointsCreated: snap.CheckpointsCreated,
		CheckpointsDeleted: snap.CheckpointsDeleted,
		QueueDepth:         depth,
		QueueCapacity:      capacity,
	})
}

// handleCandidates serves the answering checkpoint's full candidate pool
// with per-candidate influence sets — the shard-local half of the
// scatter-gather seed selection (see internal/router). Influence sets need
// the live stream index, so like /influence this runs as a closure on the
// ingest loop, serialized after everything already queued. On name-mode
// trackers each candidate (and its influence set) also carries external
// names, the only identity comparable across trackers.
func (s *Server) handleCandidates(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	var resp api.CandidatesResponse
	qErr := t.Query(r.Context(), func(tr *sim.Tracker) {
		users := tr.Candidates()
		resp.K = t.Spec().K
		resp.Value = tr.Value()
		resp.WindowStart = tr.WindowStart()
		resp.Processed = tr.Processed()
		resp.Candidates = make([]api.CandidateSeed, 0, len(users))
		for _, u := range users {
			inf := tr.InfluenceSet(u)
			if inf == nil {
				inf = []sim.UserID{}
			}
			resp.Candidates = append(resp.Candidates, api.CandidateSeed{
				User:       u,
				Influenced: inf,
				Coverage:   float64(len(inf)),
			})
		}
	})
	if qErr != nil {
		if errors.Is(qErr, ErrOverloaded) {
			writeRetryable(w, http.StatusTooManyRequests, "%v", qErr)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "%v", qErr)
		return
	}
	if tb := t.Names(); tb != nil {
		for i := range resp.Candidates {
			c := &resp.Candidates[i]
			c.Name, _ = tb.Name(uint32(c.User))
			c.InfluencedNames = make([]string, len(c.Influenced))
			for j, v := range c.Influenced {
				c.InfluencedNames[j], _ = tb.Name(uint32(v))
			}
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleInfluence serves per-user influence sets. Unlike the other reads
// this needs the live stream index, so it runs as a closure on the ingest
// loop, serialized after everything already queued. The user parameter is a
// decimal ID on numeric trackers and an external name on name-mode ones
// (404 when the name has never been ingested).
func (s *Server) handleInfluence(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tracked(w, r)
	if !ok {
		return
	}
	userParam := r.URL.Query().Get("user")
	var u sim.UserID
	var resp api.InfluenceResponse
	if tb := t.Names(); tb != nil {
		if userParam == "" {
			writeError(w, http.StatusBadRequest, "missing user parameter")
			return
		}
		id, ok := tb.Lookup(userParam)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown user %q", userParam)
			return
		}
		u = sim.UserID(id)
		resp.Name = userParam
	} else {
		u64, err := strconv.ParseUint(userParam, 10, 32)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad or missing user parameter %q", userParam)
			return
		}
		u = sim.UserID(u64)
	}
	qErr := t.Query(r.Context(), func(tr *sim.Tracker) {
		resp.User = u
		resp.Influenced = tr.InfluenceSet(u)
		resp.WindowStart = tr.WindowStart()
		if resp.Influenced == nil {
			resp.Influenced = []sim.UserID{}
		}
		resp.Count = len(resp.Influenced)
	})
	if qErr != nil {
		if errors.Is(qErr, ErrOverloaded) {
			writeRetryable(w, http.StatusTooManyRequests, "%v", qErr)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "%v", qErr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
