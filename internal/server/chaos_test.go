package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/api"
	"repro/intern"
	"repro/internal/dataio"
	"repro/internal/fault"
	"repro/internal/stream"
	"repro/sim"
)

// errEIO is the injected-error shorthand the HTTP-level tests arm rules with.
var errEIO error = syscall.EIO

// internStream relabels a numeric stream the way the name-mode ingest
// handler does: each user becomes the external name "u<id>", interned into
// tb to a dense first-appearance ID. Interning the same stream in the same
// order — whether into a scratch table or a tracker's live one — yields
// identical IDs, which is what makes reference replays comparable.
func internStream(actions []sim.Action, tb *intern.Table) []sim.Action {
	out := make([]sim.Action, len(actions))
	for i, a := range actions {
		out[i] = a
		out[i].User = sim.UserID(tb.Intern(fmt.Sprintf("u%d", a.User)))
	}
	return out
}

// compressTimers shrinks the recovery probe and snapshot backoff for the
// duration of a test so self-healing happens in milliseconds, restoring the
// production values afterwards. Tests in this package run sequentially, so
// mutating the package variables is safe.
func compressTimers(t *testing.T) {
	t.Helper()
	probe, base, max := rearmProbeInterval, snapshotBackoffBase, snapshotBackoffMax
	rearmProbeInterval = 5 * time.Millisecond
	snapshotBackoffBase = 1 * time.Millisecond
	snapshotBackoffMax = 10 * time.Millisecond
	t.Cleanup(func() {
		rearmProbeInterval = probe
		snapshotBackoffBase = base
		snapshotBackoffMax = max
	})
}

// submitRetry submits one batch, retrying the retryable rejections — WAL
// append failure (503), degraded-readonly (503) and overload shed (429) —
// until the batch is acknowledged. This is exactly the loop a well-behaved
// client runs; anything non-retryable fails the test.
func submitRetry(t *testing.T, tr *Tracked, batch []sim.Action) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, err := tr.Submit(context.Background(), batch)
		if err == nil {
			return
		}
		if !errors.Is(err, ErrDurability) && !errors.Is(err, ErrReadOnly) && !errors.Is(err, ErrOverloaded) {
			t.Fatalf("Submit failed non-retryably: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("Submit never acknowledged: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestChaosCrashMatrix drives a durable tracker through a matrix of
// injected single-fault scenarios — WAL writes/syncs failing (full and
// torn), every step of the snapshot dance failing, names.log appends
// failing, and rollback failures that poison the log outright — while a
// client retries every retryable rejection. The invariants, per cell:
//
//   - every acknowledged batch survives: a kill -9 (directory copy) after
//     the last ack recovers, WITHOUT the injector, to a state identical to
//     an uninterrupted serial replay;
//   - the poisoning cells additionally exercise the self-healing path
//     (degraded-readonly → probe re-arm → ingest resumes), visible in the
//     re-arm counter.
func TestChaosCrashMatrix(t *testing.T) {
	compressTimers(t)
	// Rule paths name the exact files (snapshot.sim2, not "snapshot"): the
	// subtest name is part of t.TempDir(), so a loose substring would match
	// every file in the data dir. Boot-time operations on the same files
	// (the recovery open of snapshot.sim2, the names.log torn-tail
	// truncate) are skipped with after= so the fault lands on the live path
	// the cell is about.
	cases := []struct {
		name   string
		rules  string
		names  bool // name-mode tracker: exercises the names.log path too
		rearms bool // expect the poisoned-log re-arm path to have run
	}{
		{name: "wal-write-eio", rules: "op=write,path=wal.log,after=2,times=1,err=EIO"},
		{name: "wal-write-torn-enospc", rules: "op=write,path=wal.log,after=1,times=2,err=ENOSPC,short"},
		{name: "wal-sync-eio", rules: "op=sync,path=wal.log,after=3,times=2,err=EIO"},
		{name: "wal-poisoned-rollback", rules: "op=write,path=wal.log,after=4,times=1,err=EIO;op=truncate,path=wal.log,times=1,err=EIO", rearms: true},
		{name: "snapshot-open-eio", rules: "op=open,path=snapshot.sim2,after=1,times=1,err=EIO"},
		{name: "snapshot-write-enospc", rules: "op=write,path=snapshot.sim2,times=2,err=ENOSPC"},
		{name: "snapshot-sync-eio", rules: "op=sync,path=snapshot.sim2,times=1,err=EIO"},
		{name: "snapshot-rename-eio", rules: "op=rename,path=snapshot.sim2,times=1,err=EIO"},
		{name: "names-write-eio", rules: "op=write,path=names.log,times=1,err=EIO", names: true},
		{name: "names-poisoned-rollback", rules: "op=write,path=names.log,times=1,err=EIO;op=truncate,path=names.log,after=1,times=1,err=EIO", names: true, rearms: true},
		{name: "slow-disk-delay", rules: "op=sync,path=wal.log,times=4,delay=5ms,delayonly"},
	}
	actions := durableStream(2400)
	numericWant := serialReference(t, actions)
	// Name-mode cells intern external names to dense first-appearance IDs,
	// relabeling the users; their reference replays the same relabeled
	// stream (interning through a tracker's table reproduces it exactly,
	// because the appearance order is identical).
	namedWant := serialReference(t, internStream(actions, intern.New(0)))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := numericWant
			if tc.names {
				want = namedWant
			}
			rules, err := fault.ParseRules(tc.rules)
			if err != nil {
				t.Fatal(err)
			}
			inj := fault.NewInjector(fault.OS())
			for _, r := range rules {
				inj.Add(r)
			}
			dir := t.TempDir()
			reg := NewRegistry()
			reg.SetFS(inj)
			reg.SetDataDir(dir)
			spec := durableSpec
			spec.SnapshotWALBytes = 2048 // several snapshot cycles over the stream
			spec.Names = tc.names
			tr, err := reg.Add("t", spec)
			if err != nil {
				t.Fatal(err)
			}
			for rest := actions; len(rest) > 0; {
				n := min(100, len(rest))
				batch := rest[:n]
				if tc.names {
					// Mirror the HTTP handler: intern external names to the
					// dense IDs the loop and WAL operate on.
					batch = internStream(batch, tr.Names())
				}
				submitRetry(t, tr, batch)
				rest = rest[n:]
			}
			if inj.Fired() == 0 {
				t.Fatalf("no fault fired; the %s cell is vacuous", tc.name)
			}
			if tc.rearms {
				if _, rearms, _, _ := tr.Counters(); rearms == 0 {
					t.Error("poisoning cell never exercised the re-arm path")
				}
			}
			checkAnswer(t, "live under faults", tr.Snapshot(), want)

			// kill -9 after the final ack: recover the copied directory with
			// a clean filesystem and compare against the serial replay.
			crashDir := t.TempDir()
			copyTree(t, filepath.Join(dir, "t"), filepath.Join(crashDir, "t"))
			if err := reg.Close(); err != nil {
				t.Fatal(err)
			}
			reg2 := NewRegistry()
			reg2.SetDataDir(crashDir)
			tr2, err := reg2.Add("t", spec)
			if err != nil {
				t.Fatalf("crash recovery: %v", err)
			}
			defer reg2.Close()
			checkAnswer(t, "chaos-recovered", tr2.Snapshot(), want)
		})
	}
}

// TestChaosSpillMatrix extends the crash matrix to the cold tier: a durable
// tracker under a tight memory budget spills segment files continuously
// while injected faults hit every step of the spill write (torn data write,
// fsync, the publishing rename, the read-back verification) and the cold
// read path. The invariants, per cell:
//
//   - spill-write faults are correctness-neutral by design — the logs stay
//     hot and both the live answers and the kill -9 recovery match an
//     unbudgeted serial replay bit for bit;
//   - cold-READ faults may degrade answers to hot-only while the fault is
//     live (the extent stays cold for retry), but never lose acked actions:
//     the recovered tracker replays every acknowledged batch.
func TestChaosSpillMatrix(t *testing.T) {
	compressTimers(t)
	// "spill/seg-" scopes the rules to segment files under the tracker's
	// spill directory (<data-dir>/t/spill), away from wal.log and
	// snapshot.sim2. The injected FS also disables mmap, so cold reads go
	// through open/read on the seam — every cell is reachable.
	cases := []struct {
		name   string
		rules  string
		strict bool // live answers must equal the serial reference
	}{
		{name: "spill-write-torn-enospc", rules: "op=write,path=spill/seg-,times=2,err=ENOSPC,short", strict: true},
		{name: "spill-sync-eio", rules: "op=sync,path=spill/seg-,times=1,err=EIO", strict: true},
		{name: "spill-rename-eio", rules: "op=rename,path=spill/seg-,times=1,err=EIO", strict: true},
		{name: "spill-readback-eio", rules: "op=readfile,path=spill/seg-,times=1,err=EIO", strict: true},
		{name: "cold-read-eio", rules: "op=open,path=spill/seg-,times=3,err=EIO"},
	}
	actions := durableStream(2400)
	want := serialReference(t, actions)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rules, err := fault.ParseRules(tc.rules)
			if err != nil {
				t.Fatal(err)
			}
			inj := fault.NewInjector(fault.OS())
			for _, r := range rules {
				inj.Add(r)
			}
			dir := t.TempDir()
			reg := NewRegistry()
			reg.SetFS(inj)
			reg.SetDataDir(dir)
			spec := durableSpec
			spec.SnapshotWALBytes = 2048
			spec.MemoryBudgetBytes = 4096 // 256 hot entries: spills constantly
			tr, err := reg.Add("t", spec)
			if err != nil {
				t.Fatal(err)
			}
			for rest := actions; len(rest) > 0; {
				n := min(100, len(rest))
				submitRetry(t, tr, rest[:n])
				rest = rest[n:]
			}
			if inj.Fired() == 0 {
				t.Fatalf("no fault fired; the %s cell is vacuous", tc.name)
			}
			snap := tr.Snapshot()
			if snap.Spills == 0 {
				t.Fatalf("budget never spilled; the cell exercised nothing (%+v)", snap)
			}
			if tc.strict {
				checkAnswer(t, "live under spill faults", snap, want)
			} else if snap.Processed != int64(len(actions)) {
				t.Fatalf("acked actions lost live: processed = %d, want %d", snap.Processed, len(actions))
			}

			// kill -9 after the final ack: recover the copied directory with
			// a clean filesystem.
			crashDir := t.TempDir()
			copyTree(t, filepath.Join(dir, "t"), filepath.Join(crashDir, "t"))
			if err := reg.Close(); err != nil {
				t.Fatal(err)
			}
			reg2 := NewRegistry()
			reg2.SetDataDir(crashDir)
			tr2, err := reg2.Add("t", spec)
			if err != nil {
				t.Fatalf("crash recovery: %v", err)
			}
			defer reg2.Close()
			snap2 := tr2.Snapshot()
			if tc.strict {
				checkAnswer(t, "spill-chaos-recovered", snap2, want)
			} else if snap2.Processed != int64(len(actions)) {
				t.Fatalf("acked actions lost in recovery: processed = %d, want %d", snap2.Processed, len(actions))
			}
		})
	}
}

// TestChaosKillMidSpill emulates a kill -9 in the middle of a spill pass:
// the copied data directory is salted with everything such a crash can leave
// in the spill directory — a torn seg-*.tmp, a fully published orphan
// segment no snapshot references, and a corrupted segment file. Recovery
// must map the snapshot's segments, replay the WAL tail, answer identically
// to a serial replay, and garbage-collect all three strays at boot.
func TestChaosKillMidSpill(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	reg.SetDataDir(dir)
	spec := durableSpec
	spec.SnapshotWALBytes = 2048
	spec.MemoryBudgetBytes = 4096
	tr, err := reg.Add("t", spec)
	if err != nil {
		t.Fatal(err)
	}
	actions := durableStream(2400)
	submitChunks(t, tr, actions, 100)
	if snap := tr.Snapshot(); snap.Spills == 0 || snap.ColdUsers == 0 {
		t.Fatalf("budget never built a cold tier: %+v", snap)
	}

	crashDir := t.TempDir()
	copyTree(t, filepath.Join(dir, "t"), filepath.Join(crashDir, "t"))
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Salt the copied spill directory. The orphan is written through the
	// real segment writer (valid file, correct ID header, zero snapshot
	// references); the torn .tmp and the corrupted segment are raw damage.
	spillDir := filepath.Join(crashDir, "t", "spill")
	st, err := dataio.OpenSegmentStore(fault.OS(), spillDir)
	if err != nil {
		t.Fatal(err)
	}
	orphanExts, err := st.WriteLogs([][]stream.Contrib{{{V: 1, T: 99}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(spillDir, dataio.SegmentFileName(orphanExts[0].Seg))
	torn := filepath.Join(spillDir, "seg-999999.sim2.tmp")
	if err := os.WriteFile(torn, []byte("SIM2\x01SG"), 0o644); err != nil {
		t.Fatal(err)
	}
	corrupt := filepath.Join(spillDir, "seg-999998.sim2")
	if err := os.WriteFile(corrupt, []byte("SIM2\x01 garbage segment"), 0o644); err != nil {
		t.Fatal(err)
	}

	reg2 := NewRegistry()
	reg2.SetDataDir(crashDir)
	tr2, err := reg2.Add("t", spec)
	if err != nil {
		t.Fatalf("recovery over salted spill dir: %v", err)
	}
	defer reg2.Close()
	snap2 := tr2.Snapshot()
	checkAnswer(t, "mid-spill-recovered", snap2, serialReference(t, actions))
	if snap2.ColdUsers == 0 {
		t.Fatalf("recovery rehydrated the cold tier instead of mapping it: %+v", snap2)
	}
	for _, stray := range []string{orphan, torn, corrupt} {
		if _, err := os.Stat(stray); !os.IsNotExist(err) {
			t.Errorf("stray %s survived boot GC (%v)", filepath.Base(stray), err)
		}
	}

	// The recovered tracker keeps serving under the same budget.
	more := durableStream(2600)[2400:]
	submitChunks(t, tr2, more, 100)
	checkAnswer(t, "post-recovery ingest", tr2.Snapshot(), serialReference(t, durableStream(2600)))
}

// TestChaosCorruptReferencedSegment flips bytes in every cold segment of a
// crash image: a snapshot that references a now-corrupt segment must fail
// recovery loudly instead of serving silently wrong influence data.
func TestChaosCorruptReferencedSegment(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	reg.SetDataDir(dir)
	spec := durableSpec
	spec.SnapshotWALBytes = 2048
	spec.MemoryBudgetBytes = 4096
	tr, err := reg.Add("t", spec)
	if err != nil {
		t.Fatal(err)
	}
	submitChunks(t, tr, durableStream(2400), 100)
	if snap := tr.Snapshot(); snap.ColdUsers == 0 {
		t.Fatalf("no cold tier to corrupt: %+v", snap)
	}
	crashDir := t.TempDir()
	copyTree(t, filepath.Join(dir, "t"), filepath.Join(crashDir, "t"))
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	spillDir := filepath.Join(crashDir, "t", "spill")
	segs, err := filepath.Glob(filepath.Join(spillDir, "seg-*.sim2"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segment files in crash image (%v)", err)
	}
	for _, path := range segs {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0x40
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	reg2 := NewRegistry()
	reg2.SetDataDir(crashDir)
	if _, err := reg2.Add("t", spec); err == nil {
		reg2.Close()
		t.Fatal("recovery served a snapshot whose cold segments are corrupt")
	}
}

// TestDegradedReadOnlyMode pins the full degraded-mode contract over HTTP:
// a poisoned WAL flips the tracker to degraded-readonly, where ingest gets
// 503 + Retry-After but snapshot reads, queries and metrics keep answering;
// once the disk heals the periodic probe re-arms the log and ingest resumes
// with nothing lost.
func TestDegradedReadOnlyMode(t *testing.T) {
	compressTimers(t)
	inj := fault.NewInjector(fault.OS())
	reg := NewRegistry()
	reg.SetFS(inj)
	reg.SetDataDir(t.TempDir())
	tr, err := reg.Add("default", durableSpec)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	srv := httptest.NewServer(New(reg))
	defer srv.Close()
	client := api.NewClient(srv.URL)
	ctx := context.Background()

	actions := durableStream(500)
	submitChunks(t, tr, actions[:400], 100)
	want := tr.Snapshot()

	// Sticky faults: appends fail, rollbacks fail (poisoning the log) and
	// re-opens fail, so re-arm attempts cannot succeed until the heal.
	inj.Add(fault.Rule{Op: fault.OpWrite, Path: walFileName, Err: errEIO})
	inj.Add(fault.Rule{Op: fault.OpTruncate, Path: walFileName, Err: errEIO})
	inj.Add(fault.Rule{Op: fault.OpOpen, Path: walFileName, Err: errEIO})

	if _, err := tr.Submit(ctx, actions[400:420]); !errors.Is(err, ErrDurability) {
		t.Fatalf("poisoning submit: err = %v, want ErrDurability", err)
	}
	if st := tr.State(); st != StateDegradedReadOnly {
		t.Fatalf("state after poisoning = %v, want degraded-readonly", st)
	}

	// Ingest: 503 + Retry-After, batch not applied.
	_, err = client.Ingest(ctx, "default", actions[400:420])
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest: %v, want 503", err)
	}
	if apiErr.RetryAfter <= 0 {
		t.Fatalf("degraded 503 carried no Retry-After (%+v)", apiErr)
	}
	if !apiErr.Temporary() {
		t.Fatal("degraded 503 not Temporary()")
	}

	// Reads and queries keep answering from the published snapshot.
	seeds, err := client.Seeds(ctx, "default")
	if err != nil || seeds.Processed != want.Processed {
		t.Fatalf("degraded seeds read: %+v, %v", seeds, err)
	}
	if _, err := client.Snapshot(ctx, "default"); err != nil {
		t.Fatalf("degraded snapshot read: %v", err)
	}

	// Health and metrics surface the condition.
	h, err := client.Health(ctx)
	if err != nil || h.Status != "degraded" || h.States["default"] == "" {
		t.Fatalf("degraded health: %+v, %v", h, err)
	}
	m, err := client.TrackerMetrics(ctx, "default")
	if err != nil || m.State == "ok" {
		t.Fatalf("degraded metrics: %+v, %v", m, err)
	}

	// Heal the disk: the probe must re-arm the WAL and ingest must resume,
	// all without outside intervention.
	inj.Clear()
	var resp api.IngestResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = client.Ingest(ctx, "default", actions[400:500])
		if err == nil {
			break
		}
		if !errors.As(err, &apiErr) || !apiErr.Temporary() {
			t.Fatalf("post-heal ingest: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("tracker never re-armed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if resp.Processed != 500 {
		t.Fatalf("post-heal processed = %d, want 500", resp.Processed)
	}
	if st := tr.State(); st != StateOK {
		t.Fatalf("state after heal = %v, want ok", st)
	}
	if _, rearms, _, _ := tr.Counters(); rearms == 0 {
		t.Fatal("re-arm counter stayed 0 after a successful recovery")
	}
	if h, err := client.Health(ctx); err != nil || h.Status != "ok" || len(h.States) != 0 {
		t.Fatalf("post-heal health: %+v, %v", h, err)
	}
	checkAnswer(t, "post-heal state", tr.Snapshot(), serialReference(t, actions))

	// The re-armed state is durable: a restart recovers it.
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}
	reg2 := NewRegistry()
	reg2.SetDataDir(reg.DataDir())
	tr2, err := reg2.Add("default", durableSpec)
	if err != nil {
		t.Fatalf("recovery after re-arm: %v", err)
	}
	defer reg2.Close()
	checkAnswer(t, "recovered after re-arm", tr2.Snapshot(), serialReference(t, actions))
}

// TestIngestWALFailure503 pins the transient-fault contract: a WAL append
// failure whose rollback succeeds is a 503 (retryable, batch not applied,
// log intact) — not a 500 and not a poisoning — and the very next attempt
// lands.
func TestIngestWALFailure503(t *testing.T) {
	inj := fault.NewInjector(fault.OS())
	inj.Add(fault.Rule{Op: fault.OpWrite, Path: walFileName, Times: 1, Err: errEIO})
	reg := NewRegistry()
	reg.SetFS(inj)
	reg.SetDataDir(t.TempDir())
	tr, err := reg.Add("default", durableSpec)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	srv := httptest.NewServer(New(reg))
	defer srv.Close()
	ctx := context.Background()
	client := api.NewClient(srv.URL)

	actions := durableStream(100)
	_, err = client.Ingest(ctx, "default", actions)
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusServiceUnavailable {
		t.Fatalf("WAL-failed ingest: %v, want 503", err)
	}
	if tr.State() != StateOK {
		t.Fatalf("clean rollback must not degrade the tracker (state %v)", tr.State())
	}
	if got := tr.Snapshot().Processed; got != 0 {
		t.Fatalf("rejected batch partially applied: processed = %d", got)
	}
	resp, err := client.Ingest(ctx, "default", actions) // the fault healed
	if err != nil || resp.Processed != 100 {
		t.Fatalf("retry after WAL failure: %+v, %v", resp, err)
	}
	// The client's own retry loop closes the same gap in one call.
	rc := api.NewClient(srv.URL)
	rc.Retry = api.RetryPolicy{MaxRetries: 3, MinBackoff: time.Millisecond}
	inj.Add(fault.Rule{Op: fault.OpWrite, Path: walFileName, Times: 1, Err: errEIO})
	resp, err = rc.Ingest(ctx, "default", durableStream(200)[100:])
	if err != nil || resp.Processed != 200 {
		t.Fatalf("client retry over WAL failure: %+v, %v", resp, err)
	}
}

// TestAdmissionControlSheds wedges a tracker's ingest loop and asserts the
// enqueue deadline sheds further work quickly — ErrOverloaded at the API,
// 429 + Retry-After over HTTP — instead of hanging every producer.
func TestAdmissionControlSheds(t *testing.T) {
	reg := NewRegistry()
	spec := durableSpec
	spec.Queue = 1
	spec.EnqueueDeadlineMillis = 50
	tr, err := reg.Add("default", spec)
	if err != nil {
		t.Fatal(err)
	}
	defer reg.Close()
	srv := httptest.NewServer(New(reg))
	defer srv.Close()
	ctx := context.Background()

	// Wedge the loop: a query closure that blocks until released.
	started := make(chan struct{})
	release := make(chan struct{})
	queryDone := make(chan error, 1)
	go func() {
		queryDone <- tr.Query(ctx, func(*sim.Tracker) {
			close(started)
			<-release
		})
	}()
	<-started

	// Fill the (capacity 1) queue behind the wedged loop.
	batch := durableStream(10)
	if err := tr.SubmitAsync(ctx, batch); err != nil {
		t.Fatalf("filling queue: %v", err)
	}

	// Now the queue is full and the consumer is stuck: Submit must shed
	// within the deadline, not hang for the caller's lifetime.
	begin := time.Now()
	_, err = tr.Submit(ctx, durableStream(20)[10:])
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overloaded Submit: err = %v, want ErrOverloaded", err)
	}
	if waited := time.Since(begin); waited > 2*time.Second {
		t.Fatalf("shedding took %v; deadline is 50ms", waited)
	}

	// Same over HTTP: 429 with a Retry-After hint.
	client := api.NewClient(srv.URL)
	_, err = client.Ingest(ctx, "default", durableStream(20)[10:])
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != http.StatusTooManyRequests {
		t.Fatalf("overloaded ingest: %v, want 429", err)
	}
	if apiErr.RetryAfter <= 0 || !apiErr.Temporary() {
		t.Fatalf("429 without retry semantics: %+v", apiErr)
	}

	close(release)
	if err := <-queryDone; err != nil {
		t.Fatalf("wedge query: %v", err)
	}

	// The shed bookkeeping surfaced, and the queued batch was not lost.
	_, _, shed, highWater := tr.Counters()
	if shed < 2 {
		t.Fatalf("shed counter = %d, want >= 2", shed)
	}
	if highWater < 1 {
		t.Fatalf("queue high-water = %d, want >= 1", highWater)
	}
	deadline := time.Now().Add(5 * time.Second)
	for tr.Snapshot().Processed != int64(len(batch)) {
		if time.Now().After(deadline) {
			t.Fatalf("queued batch lost: processed = %d", tr.Snapshot().Processed)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCombinedTornTails crashes a name-mode tracker so that BOTH names.log
// and wal.log end in torn records. Boot must truncate the two tails
// consistently: the torn WAL batch was never acknowledged, and the torn
// name record can only belong to that batch, so dropping both recovers the
// exact acknowledged state — and further ingest (re-interning the dropped
// name) works.
func TestCombinedTornTails(t *testing.T) {
	dir := t.TempDir()
	reg := NewRegistry()
	reg.SetDataDir(dir)
	spec := durableSpec
	spec.Names = true
	tr, err := reg.Add("t", spec)
	if err != nil {
		t.Fatal(err)
	}
	actions := durableStream(600)
	named := internStream(actions, intern.New(0))
	submitChunks(t, tr, internStream(actions[:500], tr.Names()), 100)
	want := tr.Snapshot()

	crashDir := t.TempDir()
	copyTree(t, filepath.Join(dir, "t"), filepath.Join(crashDir, "t"))
	if err := reg.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear both tails, as a crash mid-(names append, WAL append) would:
	// names.log gets a length header promising more bytes than exist, the
	// WAL gets a truncated record.
	appendBytes := func(name string, b []byte) {
		t.Helper()
		f, err := os.OpenFile(filepath.Join(crashDir, "t", name), os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(b); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	appendBytes(namesFileName, []byte{0x20, 'u', '9'})                   // claims 32 bytes, has 2
	appendBytes(walFileName, []byte{walRecordTag, 0xff, 0x07, 'x', 'y'}) // claims 1023 bytes

	reg2 := NewRegistry()
	reg2.SetDataDir(crashDir)
	tr2, err := reg2.Add("t", spec)
	if err != nil {
		t.Fatalf("recovery with combined torn tails: %v", err)
	}
	defer reg2.Close()
	checkAnswer(t, "combined torn tails", tr2.Snapshot(), *want)
	if got, wantLen := tr2.Names().Len(), tr.Names().Len(); got > wantLen {
		t.Fatalf("recovered intern table has %d names, live had %d", got, wantLen)
	}

	// The recovered tracker keeps serving: the remaining actions intern
	// their names again (same first-appearance order → same dense IDs).
	submitChunks(t, tr2, internStream(actions[500:], tr2.Names()), 100)
	checkAnswer(t, "post-torn-tail ingest", tr2.Snapshot(), serialReference(t, named))
}
