package uintset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	var s Set // zero value usable
	if s.Has(1) || s.Len() != 0 {
		t.Fatal("empty set misbehaves")
	}
	if !s.Add(1) {
		t.Fatal("first Add must report true")
	}
	if s.Add(1) {
		t.Fatal("second Add must report false")
	}
	if !s.Has(1) || s.Has(2) || s.Len() != 1 {
		t.Fatal("membership wrong")
	}
}

func TestZeroKey(t *testing.T) {
	s := New(4)
	if s.Has(0) {
		t.Fatal("0 must be absent initially")
	}
	if !s.Add(0) || !s.Has(0) || s.Len() != 1 {
		t.Fatal("key 0 not stored correctly")
	}
	if s.Add(0) {
		t.Fatal("0 reinserted")
	}
}

func TestMaxKey(t *testing.T) {
	s := New(4)
	const k = ^uint32(0)
	if !s.Add(k) || !s.Has(k) {
		t.Fatal("MaxUint32 not stored")
	}
}

func TestGrowthKeepsMembers(t *testing.T) {
	s := New(0)
	for i := uint32(0); i < 10000; i++ {
		s.Add(i * 7)
	}
	if s.Len() != 10000 {
		t.Fatalf("len = %d", s.Len())
	}
	for i := uint32(0); i < 10000; i++ {
		if !s.Has(i * 7) {
			t.Fatalf("lost key %d", i*7)
		}
		if s.Has(i*7 + 1) {
			t.Fatalf("phantom key %d", i*7+1)
		}
	}
}

func TestResetAndReuse(t *testing.T) {
	s := New(8)
	for i := uint32(0); i < 100; i++ {
		s.Add(i)
	}
	s.Reset()
	if s.Len() != 0 || s.Has(5) {
		t.Fatal("Reset incomplete")
	}
	if !s.Add(5) || s.Len() != 1 {
		t.Fatal("unusable after Reset")
	}
}

func TestCloneIndependent(t *testing.T) {
	s := New(8)
	s.Add(1)
	cp := s.Clone()
	cp.Add(2)
	if s.Has(2) || !cp.Has(1) || cp.Len() != 2 || s.Len() != 1 {
		t.Fatal("clone not independent")
	}
}

func TestForEach(t *testing.T) {
	s := New(8)
	want := map[uint32]bool{3: true, 9: true, 27: true}
	for k := range want {
		s.Add(k)
	}
	got := map[uint32]bool{}
	s.ForEach(func(k uint32) bool { got[k] = true; return true })
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	// Early stop.
	n := 0
	s.ForEach(func(uint32) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

// TestMatchesMapSemantics drives the set and a reference map with the same
// random operations.
func TestMatchesMapSemantics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(0)
		ref := map[uint32]bool{}
		for op := 0; op < 2000; op++ {
			k := uint32(rng.Intn(300))
			switch rng.Intn(3) {
			case 0:
				added := s.Add(k)
				if added == ref[k] {
					return false
				}
				ref[k] = true
			case 1:
				if s.Has(k) != ref[k] {
					return false
				}
			case 2:
				if s.Len() != len(ref) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMapBasicOps(t *testing.T) {
	var m Map
	if _, ok := m.Get(1); ok || m.Len() != 0 {
		t.Fatal("empty map misbehaves")
	}
	m.Set(1, 1.5)
	m.Set(0, 2.5) // zero key
	m.Set(1, 3.5) // overwrite
	if v, ok := m.Get(1); !ok || v != 3.5 {
		t.Fatalf("Get(1) = %v, %v", v, ok)
	}
	if v, ok := m.Get(0); !ok || v != 2.5 {
		t.Fatalf("Get(0) = %v, %v", v, ok)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
	if _, ok := m.Get(9); ok {
		t.Fatal("phantom key")
	}
}

func TestMapGrowthKeepsEntries(t *testing.T) {
	m := NewMap(0)
	for i := uint32(0); i < 5000; i++ {
		m.Set(i*3, float64(i))
	}
	if m.Len() != 5000 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := uint32(0); i < 5000; i++ {
		if v, ok := m.Get(i * 3); !ok || v != float64(i) {
			t.Fatalf("lost entry %d: %v %v", i, v, ok)
		}
	}
}

func TestMapMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMap(0)
		ref := map[uint32]float64{}
		for op := 0; op < 1500; op++ {
			k := uint32(rng.Intn(200))
			if rng.Intn(2) == 0 {
				v := rng.Float64()
				m.Set(k, v)
				ref[k] = v
			} else {
				v, ok := m.Get(k)
				rv, rok := ref[k]
				if ok != rok || (ok && v != rv) {
					return false
				}
			}
		}
		return m.Len() == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAddHas(b *testing.B) {
	s := New(1024)
	for i := 0; i < b.N; i++ {
		k := uint32(i) % 4096
		s.Add(k)
		s.Has(k + 1)
	}
}

func BenchmarkMapBaseline(b *testing.B) {
	m := make(map[uint32]struct{}, 1024)
	for i := 0; i < b.N; i++ {
		k := uint32(i) % 4096
		m[k] = struct{}{}
		_, _ = m[k+1]
	}
}
