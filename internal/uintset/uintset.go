// Package uintset provides a compact open-addressing hash set of uint32
// keys. It exists because the checkpoint oracles perform hundreds of
// membership tests per stream action; profiling shows the general-purpose
// map[uint32]struct{} spends most of its time in hashing and group probing,
// while this set's Fibonacci hash plus linear probing is a few instructions
// per lookup.
package uintset

// Set is a hash set of uint32 values. The zero value is an empty, usable
// set. Not safe for concurrent use.
type Set struct {
	// slots stores key+1 so that 0 means empty; keys up to MaxUint32 fit in
	// the uint64 slot.
	slots []uint64
	count int
}

const (
	minCap = 16
	// fib is 2^64 / phi, the Fibonacci hashing multiplier.
	fib = 11400714819323198485
)

// New returns a set pre-sized for n elements.
func New(n int) *Set {
	s := &Set{}
	s.grow(capFor(n))
	return s
}

func capFor(n int) int {
	c := minCap
	for c*3 < n*4 { // keep load factor below 3/4
		c *= 2
	}
	return c
}

func (s *Set) grow(to int) {
	old := s.slots
	s.slots = make([]uint64, to)
	s.count = 0
	for _, v := range old {
		if v != 0 {
			s.insert(uint32(v - 1))
		}
	}
}

func (s *Set) insert(k uint32) {
	mask := uint64(len(s.slots) - 1)
	i := (uint64(k) * fib >> 32) & mask
	for {
		v := s.slots[i]
		if v == 0 {
			s.slots[i] = uint64(k) + 1
			s.count++
			return
		}
		if uint32(v-1) == k {
			return
		}
		i = (i + 1) & mask
	}
}

// Add inserts k, reporting whether it was absent.
func (s *Set) Add(k uint32) bool {
	if len(s.slots) == 0 {
		s.grow(minCap)
	} else if s.count*4 >= len(s.slots)*3 {
		s.grow(len(s.slots) * 2)
	}
	before := s.count
	s.insert(k)
	return s.count > before
}

// Has reports whether k is in the set.
func (s *Set) Has(k uint32) bool {
	if len(s.slots) == 0 {
		return false
	}
	mask := uint64(len(s.slots) - 1)
	i := (uint64(k) * fib >> 32) & mask
	for {
		v := s.slots[i]
		if v == 0 {
			return false
		}
		if uint32(v-1) == k {
			return true
		}
		i = (i + 1) & mask
	}
}

// Len returns the number of elements.
func (s *Set) Len() int { return s.count }

// Reset empties the set, keeping its capacity.
func (s *Set) Reset() {
	clear(s.slots)
	s.count = 0
}

// Clone returns an independent copy.
func (s *Set) Clone() *Set {
	cp := &Set{slots: make([]uint64, len(s.slots)), count: s.count}
	copy(cp.slots, s.slots)
	return cp
}

// ForEach visits every element in unspecified order; stops early when visit
// returns false.
func (s *Set) ForEach(visit func(uint32) bool) {
	for _, v := range s.slots {
		if v != 0 {
			if !visit(uint32(v - 1)) {
				return
			}
		}
	}
}

// Map is an open-addressing hash map from uint32 keys to float64 values,
// with the same design rationale as Set. The zero value is an empty, usable
// map. Not safe for concurrent use.
type Map struct {
	keys  []uint64 // key+1; 0 = empty
	vals  []float64
	count int
}

// NewMap returns a map pre-sized for n entries.
func NewMap(n int) *Map {
	m := &Map{}
	m.growMap(capFor(n))
	return m
}

func (m *Map) growMap(to int) {
	ok, ov := m.keys, m.vals
	m.keys = make([]uint64, to)
	m.vals = make([]float64, to)
	m.count = 0
	for i, k := range ok {
		if k != 0 {
			m.Set(uint32(k-1), ov[i])
		}
	}
}

// Set stores v under k.
func (m *Map) Set(k uint32, v float64) {
	if len(m.keys) == 0 {
		m.growMap(minCap)
	} else if m.count*4 >= len(m.keys)*3 {
		m.growMap(len(m.keys) * 2)
	}
	mask := uint64(len(m.keys) - 1)
	i := (uint64(k) * fib >> 32) & mask
	for {
		kv := m.keys[i]
		if kv == 0 {
			m.keys[i] = uint64(k) + 1
			m.vals[i] = v
			m.count++
			return
		}
		if uint32(kv-1) == k {
			m.vals[i] = v
			return
		}
		i = (i + 1) & mask
	}
}

// Get returns the value stored under k, if any.
func (m *Map) Get(k uint32) (float64, bool) {
	if len(m.keys) == 0 {
		return 0, false
	}
	mask := uint64(len(m.keys) - 1)
	i := (uint64(k) * fib >> 32) & mask
	for {
		kv := m.keys[i]
		if kv == 0 {
			return 0, false
		}
		if uint32(kv-1) == k {
			return m.vals[i], true
		}
		i = (i + 1) & mask
	}
}

// Len returns the number of entries.
func (m *Map) Len() int { return m.count }

// ForEach visits every entry in unspecified order; stops early when visit
// returns false.
func (m *Map) ForEach(visit func(k uint32, v float64) bool) {
	for i, k := range m.keys {
		if k != 0 {
			if !visit(uint32(k-1), m.vals[i]) {
				return
			}
		}
	}
}

// Reset empties the map, keeping its capacity. Stale values behind cleared
// keys are unreachable and overwritten on reuse.
func (m *Map) Reset() {
	clear(m.keys)
	m.count = 0
}
