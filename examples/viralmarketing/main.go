// Viral marketing: the paper's motivating scenario. A brand wants to seed a
// campaign with the users who are influential *right now* on a fast-moving
// Twitter-like stream — not the users who were influential last week.
//
// This example streams 200K synthetic retweet actions through a SIC tracker
// and shows (1) real-time tracking of the top-k seed set, (2) how the seed
// set turns over as trends move, and (3) the conformity-aware variant of
// Appendix A, where covering high-value audiences (here: verified users)
// counts more.
//
// Run with: go run ./examples/viralmarketing
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/sim"
)

func main() {
	const (
		users   = 20000
		actions = 200000
		window  = 50000
		k       = 10
	)
	stream := gen.Stream(gen.TwitterLike(users, actions, window, 42))

	tracker, err := sim.New(sim.Config{K: k, WindowSize: window, Slide: 100})
	if err != nil {
		log.Fatal(err)
	}

	// "Verified" accounts are worth 5x as an audience: the conformity-aware
	// objective of Appendix A as a weighted coverage function.
	verified := func(u sim.UserID) bool { return u%97 == 0 }
	weighted, err := sim.New(sim.Config{
		K: k, WindowSize: window, Slide: 100,
		Weights: weightFunc(func(u sim.UserID) float64 {
			if verified(u) {
				return 5
			}
			return 1
		}),
	})
	if err != nil {
		log.Fatal(err)
	}

	var prev map[sim.UserID]bool
	for i, a := range stream {
		if err := tracker.Process(a); err != nil {
			log.Fatal(err)
		}
		if err := weighted.Process(a); err != nil {
			log.Fatal(err)
		}
		if (i+1)%50000 != 0 {
			continue
		}
		seeds := tracker.Seeds()
		turnover := 0
		cur := map[sim.UserID]bool{}
		for _, s := range seeds {
			cur[s] = true
			if prev != nil && !prev[s] {
				turnover++
			}
		}
		prev = cur
		fmt.Printf("t=%-7d campaign seeds=%v\n", a.ID, seeds)
		fmt.Printf("          influence value=%.0f users, seed turnover since last report: %d/%d\n",
			tracker.Value(), turnover, len(seeds))
	}

	st := tracker.Stats()
	fmt.Printf("\ntracker: %v over %v, %d live checkpoints (avg %.1f), %d oracle updates\n",
		st.Framework, st.Oracle, st.Checkpoints, st.AvgCheckpoints, st.ElementsFed)

	fmt.Printf("\naudience-weighted campaign (verified accounts count 5x):\n")
	fmt.Printf("  plain seeds:    %v\n", tracker.Seeds())
	fmt.Printf("  weighted seeds: %v (value %.0f)\n", weighted.Seeds(), weighted.Value())
}

// weightFunc adapts a closure to sim.Weights.
type weightFunc func(sim.UserID) float64

func (f weightFunc) Weight(u sim.UserID) float64 { return f(u) }
