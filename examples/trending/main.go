// Trending topics: the topic-aware SIM adaptation of the paper's Appendix A.
// One physical stream carries actions about several topics; a topic oracle
// labels each action, and each SIM query runs over its own filtered
// sub-stream. We track the influencers of "sports" and "politics"
// independently and show they are different user populations.
//
// Run with: go run ./examples/trending
package main

import (
	"fmt"
	"log"

	"repro/internal/gen"
	"repro/sim"
)

// topicOf is the topic oracle: in this synthetic feed, a root's topic is
// derived from its author community and replies inherit it. For the demo we
// use a deterministic rule so both the generator and the filter agree.
func topicOf(a sim.Action) string {
	if a.User < 5000 {
		return "sports"
	}
	if a.User < 10000 {
		return "politics"
	}
	return "other"
}

func main() {
	const (
		users   = 15000
		actions = 120000
		window  = 30000
		k       = 5
	)
	stream := gen.Stream(gen.RedditLike(users, actions, window, 7))

	newTopicTracker := func(topic string) *sim.Tracker {
		tr, err := sim.New(sim.Config{
			K:          k,
			WindowSize: window,
			Slide:      100,
			Filter:     func(a sim.Action) bool { return topicOf(a) == topic },
		})
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}
	sports := newTopicTracker("sports")
	politics := newTopicTracker("politics")

	for _, a := range stream {
		if err := sports.Process(a); err != nil {
			log.Fatal(err)
		}
		if err := politics.Process(a); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("sports:   %6d on-topic actions, influencers %v (value %.0f)\n",
		sports.Processed(), sports.Seeds(), sports.Value())
	fmt.Printf("politics: %6d on-topic actions, influencers %v (value %.0f)\n",
		politics.Processed(), politics.Seeds(), politics.Value())

	// The two seed sets must be disjoint: each query only ever saw its own
	// community's actions.
	seen := map[sim.UserID]bool{}
	for _, s := range sports.Seeds() {
		seen[s] = true
	}
	for _, s := range politics.Seeds() {
		if seen[s] {
			fmt.Printf("unexpected overlap on user %d\n", s)
		}
	}
	fmt.Println("\nseed sets are disjoint: topic filters isolate the sub-streams")
}
